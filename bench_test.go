package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see the per-experiment index in DESIGN.md), plus
// micro-benchmarks for the individual pipeline stages. Regenerate the full
// tables with `go run ./cmd/bench -fig all`; run the benchmarks with
//
//	go test -bench=. -benchmem
//
// The Fig17/Fig18 benchmarks use reduced sample counts per iteration to
// keep benchmark wall time reasonable; the cmd/bench tool runs the paper's
// full sample sizes (10 and 15 proofs per length).

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/enhancer"
	"repro/internal/figures"
	"repro/internal/glossary"
	"repro/internal/llm"
	"repro/internal/parser"
	"repro/internal/paths"
	"repro/internal/synth"
	"repro/internal/template"
)

// BenchmarkFig9DependencyGraphs builds the dependency graphs of every
// bundled application (Figures 3 and 9).
func BenchmarkFig9DependencyGraphs(b *testing.B) {
	var progs []*ast.Program
	for _, app := range apps.All() {
		progs = append(progs, app.Program())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range progs {
			g := depgraph.New(p)
			if g.Leaf() == "" {
				b.Fatal("no leaf")
			}
		}
	}
}

// BenchmarkFig4Fig5ReasoningPaths runs the structural analysis of the
// simplified stress test (Figures 4 and 5).
func BenchmarkFig4Fig5ReasoningPaths(b *testing.B) {
	app, _ := apps.ByName(apps.NameStressSimple)
	g := depgraph.New(app.Program())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := paths.Analyze(g)
		if len(a.Simple) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkFig10PathTables enumerates the reasoning paths of all bundled
// applications (Figure 10).
func BenchmarkFig10PathTables(b *testing.B) {
	var graphs []*depgraph.Graph
	for _, app := range apps.All() {
		graphs = append(graphs, depgraph.New(app.Program()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			if a := paths.Analyze(g); len(a.Simple) == 0 {
				b.Fatal("no paths")
			}
		}
	}
}

// BenchmarkFig6Templates generates and enhances the templates of the
// simplified stress test (Figure 6).
func BenchmarkFig6Templates(b *testing.B) {
	app, _ := apps.ByName(apps.NameStressSimple)
	a := paths.Analyze(depgraph.New(app.Program()))
	g := app.Glossary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := template.Generate(a, g)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := enhancer.EnhanceStore(store, &enhancer.Fluent{Variants: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Glossary parses the domain glossaries of all applications
// (Figures 7 and 11).
func BenchmarkFig11Glossary(b *testing.B) {
	var sources []string
	for _, app := range apps.All() {
		sources = append(sources, app.GlossarySource)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range sources {
			g, err := glossary.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			if len(g.Predicates()) == 0 {
				b.Fatal("empty glossary")
			}
		}
	}
}

// BenchmarkEx48Explanation runs the full Example 4.7/4.8 pipeline: chase +
// proof extraction + template mapping + instantiation.
func BenchmarkEx48Explanation(b *testing.B) {
	app, _ := apps.ByName(apps.NameStressSimple)
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	scenario := app.Scenario()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pipe.Reason(scenario...)
		if err != nil {
			b.Fatal(err)
		}
		e, err := pipe.ExplainQuery(res, `Default("C")`)
		if err != nil {
			b.Fatal(err)
		}
		if len(e.Text) == 0 {
			b.Fatal("empty explanation")
		}
	}
}

// BenchmarkFig13DerivedKnowledge runs the representative scenarios of the
// company control and stress test applications (Figures 12-13).
func BenchmarkFig13DerivedKnowledge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := figures.Fig13DerivedKnowledge()
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig14Comprehension simulates the comprehension user study
// (Figure 14: 24 participants, 5 cases).
func BenchmarkFig14Comprehension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Fig14Comprehension(42, 24); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15ExampleTexts produces the four explanation texts of the
// Irish Bank example (Figure 15).
func BenchmarkFig15ExampleTexts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig15ExampleTexts(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16ExpertStudy simulates the expert study (Figure 16: 14
// experts, 4 scenarios, 3 methods, Wilcoxon tests).
func BenchmarkFig16ExpertStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Fig16ExpertStudy(42, 14); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17Omissions runs a reduced omission sweep (Figure 17; 3
// proofs per length instead of the paper's 10).
func BenchmarkFig17Omissions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Fig17Omissions(42, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18Performance runs a reduced performance sweep (Figure 18; 2
// proofs per length instead of the paper's 15).
func BenchmarkFig18Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := figures.Fig18Performance(42, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Micro-benchmarks for the individual pipeline stages. ----

// BenchmarkChaseControlChain measures the chase on a 50-hop control chain.
func BenchmarkChaseControlChain(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	prog := app.Program()
	sc := synth.ControlChain(50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers()) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkChaseControlChainNaive is the ablation twin of
// BenchmarkChaseControlChain with semi-naive evaluation disabled: every
// round re-joins every rule against the whole store (the design choice
// DESIGN.md calls out; results are identical, only cost differs).
func BenchmarkChaseControlChainNaive(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	prog := app.Program()
	sc := synth.ControlChain(50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts, Naive: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers()) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkChaseControlChainParallel is BenchmarkChaseControlChain with a
// four-worker join pool (chase.Options{Workers: 4}); results are
// byte-for-byte identical to the sequential run, only wall time differs.
func BenchmarkChaseControlChainParallel(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	prog := app.Program()
	sc := synth.ControlChain(50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers()) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkChaseStressCascade measures the chase on a 21-step cascade.
func BenchmarkChaseStressCascade(b *testing.B) {
	app, _ := apps.ByName(apps.NameStressTest)
	prog := app.Program()
	sc := synth.StressCascade(21, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaseStressCascadeParallel is the Workers: 4 twin of
// BenchmarkChaseStressCascade.
func BenchmarkChaseStressCascadeParallel(b *testing.B) {
	app, _ := apps.ByName(apps.NameStressTest)
	prog := app.Program()
	sc := synth.StressCascade(21, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWideOwnership runs the chase over a wide random ownership graph (the
// stresstest-scale workload of the README benchmark table): each semi-naive
// round carries a broad frontier, which is the shape the parallel join is
// built for.
func benchWideOwnership(b *testing.B, workers int) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	prog := app.Program()
	sc := synth.RandomControl(12, 24, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.Run(prog, chase.Options{ExtraFacts: sc.Facts, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers()) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkChaseWideOwnership is the sequential baseline over the wide
// ownership workload.
func BenchmarkChaseWideOwnership(b *testing.B) { benchWideOwnership(b, 0) }

// BenchmarkChaseWideOwnershipParallel runs the same workload with a
// four-worker join pool.
func BenchmarkChaseWideOwnershipParallel(b *testing.B) { benchWideOwnership(b, 4) }

// BenchmarkExplainOnly isolates explanation generation (proof extraction,
// mapping, instantiation) from reasoning, on a 21-step proof.
func BenchmarkExplainOnly(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sc := synth.ControlChain(21, 1)
	res, err := pipe.Reason(sc.Facts...)
	if err != nil {
		b.Fatal(err)
	}
	pattern, err := parser.ParseAtom(sc.Query)
	if err != nil {
		b.Fatal(err)
	}
	id, err := res.LookupDerived(pattern)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.ExplainFact(res, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerbalizeProof measures the deterministic proof verbalization
// used as the LLM baseline input.
func BenchmarkVerbalizeProof(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	pipe, err := app.Pipeline(core.Config{SkipEnhancement: true})
	if err != nil {
		b.Fatal(err)
	}
	sc := synth.ControlChain(21, 1)
	res, err := pipe.Reason(sc.Facts...)
	if err != nil {
		b.Fatal(err)
	}
	pattern, _ := parser.ParseAtom(sc.Query)
	id, err := res.LookupDerived(pattern)
	if err != nil {
		b.Fatal(err)
	}
	proof, err := res.ExtractProof(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.VerbalizeProof(proof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedLLM measures the baseline generator on a long proof.
func BenchmarkSimulatedLLM(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	pipe, err := app.Pipeline(core.Config{SkipEnhancement: true})
	if err != nil {
		b.Fatal(err)
	}
	sc := synth.ControlChain(21, 1)
	res, err := pipe.Reason(sc.Facts...)
	if err != nil {
		b.Fatal(err)
	}
	pattern, _ := parser.ParseAtom(sc.Query)
	id, _ := res.LookupDerived(pattern)
	proof, _ := res.ExtractProof(id)
	text, err := pipe.VerbalizeProof(proof)
	if err != nil {
		b.Fatal(err)
	}
	g := &llm.Simulated{Mode: llm.Summarize, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := g.Generate(text); len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkParser measures parsing of a ~400-clause program.
func BenchmarkParser(b *testing.B) {
	app, _ := apps.ByName(apps.NameCompanyControl)
	src := app.ProgramSource
	sc := synth.ControlChain(200, 1)
	for _, f := range sc.Facts {
		src += f.String() + ".\n"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
