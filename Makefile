# Repository tooling. The `race` target guards the parallel chase engine:
# any data race between join workers and the store fails the build.

GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the concurrent packages: the chase engine's parallel join, the
# fact store it reads, the incremental maintainer, and the serving layer
# (shared LRUs, singleflight, proof-closure memo, session mutations, the
# admission/deadline middleware, and the mid-chase cancellation paths —
# cancel_test.go in chase/incremental/core and the hardening tests in
# server), plus the serving tier's snapshot envelope and consistent-hash
# router. Run this after touching concurrency or cancellation in any of
# them.
race:
	$(GO) test -race ./internal/chase/... ./internal/database/... ./internal/incremental/... ./internal/core/... ./internal/server/... ./internal/lru/... ./internal/leakcheck/... ./internal/wal/... ./internal/figures/... ./internal/snapshot/... ./internal/router/...

# Micro-benchmarks (one per paper table/figure plus pipeline stages);
# BENCH narrows the pattern, e.g. `make bench BENCH=BenchmarkChase`.
BENCH ?= .
bench:
	$(GO) test -run NONE -bench '$(BENCH)' -benchmem ./...
