// Close links with pseudonymization: detects integrated ownerships of at
// least 20% (the close link application the paper's expert study uses) and
// shows the confidentiality workflow: the explanation is pseudonymized
// before it could ever leave the trust boundary, and restored afterwards.
//
// Run with:
//
//	go run ./examples/closelink
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/privacy"
)

func main() {
	app, err := apps.ByName(apps.NameCloseLink)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A confidential ownership structure: integrated ownership of D by
	// AlphaHolding runs over two chained paths plus a direct stake.
	facts := `
Own("AlphaHolding", "BetaBank", 0.8).
Own("BetaBank", "GammaCredit", 0.5).
Own("AlphaHolding", "GammaCredit", 0.15).
Own("GammaCredit", "DeltaRe", 0.6).
`
	factProg, err := parser.Parse(facts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Reason(factProg.Facts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("close links derived:")
	for _, id := range res.Answers() {
		fmt.Printf("  %s\n", res.Store.Get(id))
	}
	fmt.Println()

	e, err := pipe.ExplainQuery(res, `CloseLink("AlphaHolding", "GammaCredit")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("internal explanation (paths %v):\n%s\n\n", e.PathIDs(), e.Text)

	// Before the text leaves the trust boundary, entity names become
	// pseudonyms; the mapping never leaves.
	pseudo := privacy.New()
	anon, err := privacy.AnonymizeExplanation(e, pseudo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pseudonymized for external use:\n%s\n\n", anon)
	fmt.Printf("restored internally:\n%s\n", pseudo.Deanonymize(anon))
}
