// Stress test: the two-channel shock propagation application of the
// paper's Section 5. Simulates a financial shock, derives the cascade of
// defaults over long-term and short-term debt exposures, and contrasts the
// template-based explanation with the LLM baseline (deterministic proof
// fed to a paraphrasing/summarizing generator), reporting the information
// each one loses.
//
// Run with:
//
//	go run ./examples/stresstest
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/llm"
)

func main() {
	app, err := apps.ByName(apps.NameStressTest)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The Section 5 representative scenario: a 14M shock hits A.
	res, err := pipe.Reason(app.Scenario()...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("defaults derived by the stress test:")
	for _, id := range res.Answers() {
		fmt.Printf("  %s\n", res.Store.Get(id))
	}
	fmt.Println()

	// Explain how the shock reached F over both channels.
	e, err := pipe.ExplainQuery(res, `Default("F")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q_e = {Default(F)} — reasoning paths %v:\n\n%s\n\n", e.PathIDs(), e.Text)

	// The LLM baseline of the paper's Section 6.3: paraphrase and summary
	// of the deterministic proof verbalization, with measured omissions.
	det, err := pipe.VerbalizeProof(e.Proof)
	if err != nil {
		log.Fatal(err)
	}
	consts := e.Proof.Constants()
	fmt.Printf("deterministic proof (%d chase steps, %d constants):\n%s\n\n", e.Proof.Size(), len(consts), det)
	for _, mode := range []llm.Mode{llm.Paraphrase, llm.Summarize} {
		g := &llm.Simulated{Mode: mode, Seed: 7}
		out := g.Generate(det)
		fmt.Printf("LLM %s (omission ratio %.2f):\n%s\n\n", mode, llm.OmissionRatio(out, consts), out)
	}
	fmt.Printf("template-based approach omission ratio: %.2f (complete by construction)\n",
		llm.OmissionRatio(e.Text, consts))
}
