// Company control: the Section 5 application of the paper. Discovers
// chains of corporate control over a synthetic ownership graph (in the
// spirit of the paper's Figures 12-13 and its Figure 15 Irish Bank
// example) and produces business-report explanations for the derived
// control edges.
//
// Run with:
//
//	go run ./examples/companycontrol
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parser"
)

func main() {
	app, err := apps.ByName(apps.NameCompanyControl)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := app.Pipeline(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 15 scenario: Irish Bank controls Madrid Credit through
	// the joint 21% + 36% shares of the companies it controls.
	facts := `
Company("IrishBank").
Company("FondoItaliano").
Company("FrenchPLC").
Company("MadridCredit").
Own("IrishBank", "FondoItaliano", 0.83).
Own("IrishBank", "FrenchPLC", 0.54).
Own("FrenchPLC", "MadridCredit", 0.21).
Own("FondoItaliano", "MadridCredit", 0.36).
`
	factProg, err := parser.Parse(facts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Reason(factProg.Facts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("derived control edges:")
	for _, id := range res.Answers() {
		f := res.Store.Get(id)
		if f.Atom.Terms[0].Equal(f.Atom.Terms[1]) {
			continue // omit auto-control, as the paper's Figure 13 does
		}
		fmt.Printf("  %s\n", f)
	}
	fmt.Println()

	// The business analyst asks: how was Control(IrishBank, MadridCredit)
	// derived?
	e, err := pipe.ExplainQuery(res, `Control("IrishBank", "MadridCredit")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q_e = {Control(IrishBank, MadridCredit)} — reasoning paths %v:\n\n%s\n\n", e.PathIDs(), e.Text)

	// A long control chain engages the reasoning cycle once per layer.
	chain := `
Own("N0", "N1", 0.6).
Own("N1", "N2", 0.55).
Own("N2", "N3", 0.7).
Own("N3", "N4", 0.52).
`
	chainProg, err := parser.Parse(chain)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := pipe.Reason(chainProg.Facts...)
	if err != nil {
		log.Fatal(err)
	}
	e2, err := pipe.ExplainQuery(res2, `Control("N0", "N4")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a four-layer chain (paths %v, %d chase steps):\n\n%s\n", e2.PathIDs(), e2.Proof.Size(), e2.Text)
}
