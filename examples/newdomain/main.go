// New domain: the paper argues (its Section 6.5) that the approach carries
// to any domain equipped with a data dictionary, since the quality of the
// results depends on the internal glossary rather than on training data.
// This example demonstrates that claim by building an anti-money-laundering
// application from scratch — suspicious funds flowing through chains of
// transfers, with per-account aggregation — and obtaining fluent, complete
// explanations without touching any financial-domain code.
//
// Run with:
//
//	go run ./examples/newdomain
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const program = `
@name("aml-flows").
@output("Flagged").

% An account that receives funds from a sanctioned origin is tainted by the
% received amount.
@label("t1") Tainted(A, M) :- Sanctioned(O), Transfer(O, A, M).

% Taint propagates along onward transfers, capped by the transferred amount
% (the flow cannot carry more than what was moved).
@label("t2") Tainted(B, M) :- Tainted(A, T), Transfer(A, B, M), M <= T.

% An account is flagged when its total tainted inflow exceeds the reporting
% threshold.
@label("t3") Flagged(A) :- Tainted(A, M), Total = sum(M), Threshold(K), Total > K.

Threshold(10.0).
Sanctioned("ShellCo").
Transfer("ShellCo", "Intermediary1", 8.0).
Transfer("ShellCo", "Intermediary2", 7.0).
Transfer("Intermediary1", "Collector", 6.0).
Transfer("Intermediary2", "Collector", 5.0).
Transfer("Collector", "Exit", 4.0).
`

const glossary = `
Sanctioned(o): <o> is a sanctioned entity.
Transfer(a, b, m): <a> transfers <m> thousand euros to <b>.
Tainted(a, m): account <a> holds <m> thousand euros of tainted funds.
Flagged(a): account <a> is flagged for investigation.
Threshold(k): the reporting threshold is <k> thousand euros.
`

func main() {
	pipe, err := core.NewPipelineFromSource(program, glossary, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("structural analysis of the AML application:")
	fmt.Println(pipe.Analysis().Table())

	res, err := pipe.Reason()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("flagged accounts:")
	for _, id := range res.Answers() {
		fmt.Printf("  %s\n", res.Store.Get(id))
	}
	fmt.Println()

	exps, err := pipe.ExplainAll(res)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range exps {
		fmt.Printf("== why %s? (paths %v) ==\n%s\n\n", e.Fact, e.PathIDs(), e.Text)
		if err := e.Verify(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("all explanations passed the completeness check")
}
