// Quickstart: define a rule-based Knowledge Graph application and a domain
// glossary, run the reasoning task, and ask for natural-language
// explanations of the derived facts — entirely offline, with no instance
// data ever leaving the process.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// The simplified stress test of the paper's Example 4.3: a financial shock
// defaults an entity (α); defaults put creditors at risk through their
// aggregated debt exposures (β); an exposed creditor with insufficient
// capital defaults in turn (γ).
const program = `
@name("quickstart-stress").
@output("Default").

@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

% The artificial EDB of the paper's Figure 8.
Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

// The domain glossary of the paper's Figure 7: the only domain-specific
// input the explanation pipeline needs.
const glossary = `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

func main() {
	// Compile the application: structural analysis + template generation
	// happen once, before any data is touched.
	pipe, err := core.NewPipelineFromSource(program, glossary, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reasoning paths found by the structural analysis:")
	fmt.Println(pipe.Analysis().Table())

	// Run the reasoning task (the chase) until fixpoint.
	res, err := pipe.Reason()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d facts in %d rounds\n\n", len(res.Steps), res.Rounds)

	// Ask the explanation query of the paper's Example 4.8.
	e, err := pipe.ExplainQuery(res, `Default("C")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("why is C in default? (composed from reasoning paths %v)\n\n%s\n\n", e.PathIDs(), e.Text)

	// The explanation is provably complete: every constant used in the
	// inference is present.
	if err := e.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("completeness check: ok —", len(e.Proof.Constants()), "constants all present")
}
