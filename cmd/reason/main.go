// Command reason runs a Vadalog reasoning task until fixpoint and prints
// the derived knowledge, optionally with the full chase graph.
//
// Usage:
//
//	reason -app company-control                 # bundled app + its scenario
//	reason -program rules.vada -facts data.vada # user-provided files
//	reason -app stress-test -graph              # also dump the chase graph
//	reason -app stress-test -dot > chase.dot    # Graphviz output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/cmdutil"
	"repro/internal/parser"
)

func main() {
	var (
		appName  = flag.String("app", "", "bundled application: stress-simple, company-control, stress-test, close-link")
		progPath = flag.String("program", "", "path to a Vadalog program file")
		factPath = flag.String("facts", "", "path to an additional facts file")
		noScen   = flag.Bool("no-scenario", false, "with -app: do not load the bundled scenario facts")
		graph    = flag.Bool("graph", false, "print the chase graph")
		dot      = flag.Bool("dot", false, "print the chase graph in Graphviz DOT syntax")
		workers  = flag.Int("workers", 0, "chase worker-pool size: 0 = sequential, -1 = all cores; results are identical at any setting")
		batch    = flag.Bool("batch", false, "use the batch-at-a-time columnar join executor; results are identical either way")
		timeout  = flag.Duration("timeout", 0, "abort the chase after this long (0 = no deadline); Ctrl-C always cancels cleanly")
	)
	flag.Parse()

	prog, extra, err := loadProgram(*appName, *progPath, *factPath, *noScen)
	if err != nil {
		fatal(err)
	}
	ctx, stop := cmdutil.SignalContext(*timeout)
	defer stop()
	res, err := chase.RunContext(ctx, prog, chase.Options{ExtraFacts: extra, Workers: *workers, Batch: *batch})
	if err != nil {
		fatal(err)
	}

	switch {
	case *dot:
		fmt.Print(res.DOT())
	case *graph:
		fmt.Print(res.Graph())
	default:
		fmt.Printf("fixpoint after %d rounds, %d facts (%d derived)\n",
			res.Rounds, res.Store.Len(), len(res.Steps))
		fmt.Printf("answers for %s:\n", prog.Output)
		for _, id := range res.Answers() {
			fmt.Printf("  %s\n", res.Store.Get(id))
		}
	}
}

// loadProgram resolves the program and extra facts from the flags.
func loadProgram(appName, progPath, factPath string, noScenario bool) (*ast.Program, []ast.Atom, error) {
	var prog *ast.Program
	var extra []ast.Atom
	switch {
	case appName != "" && progPath != "":
		return nil, nil, fmt.Errorf("use either -app or -program, not both")
	case appName != "":
		app, err := apps.ByName(appName)
		if err != nil {
			return nil, nil, err
		}
		prog = app.Program()
		if !noScenario {
			extra = app.Scenario()
		}
	case progPath != "":
		src, err := os.ReadFile(progPath)
		if err != nil {
			return nil, nil, err
		}
		prog, err = parser.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("one of -app or -program is required")
	}
	if factPath != "" {
		src, err := os.ReadFile(factPath)
		if err != nil {
			return nil, nil, err
		}
		factProg, err := parser.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
		extra = append(extra, factProg.Facts...)
	}
	return prog, extra, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reason:", err)
	os.Exit(1)
}
