// Command analyze runs the preventive structural analysis of a KG
// application: it prints the dependency graph, the reasoning paths
// (Definition 4.2 of the paper) and the generated explanation templates.
//
// Usage:
//
//	analyze -app company-control
//	analyze -app stress-test -templates
//	analyze -program rules.vada -glossary glossary.txt -dot
//	analyze -program rules.vada -draft-glossary          # bootstrap a data dictionary
//	analyze -app stress-simple -export-templates rev.md  # human-in-the-loop review
//	analyze -app stress-simple -import-templates rev.md  # re-import edited texts
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/cmdutil"
	"repro/internal/core"
	"repro/internal/enhancer"
	"repro/internal/glossary"
	"repro/internal/parser"
)

func main() {
	var (
		appName   = flag.String("app", "", "bundled application name")
		progPath  = flag.String("program", "", "path to a Vadalog program file")
		glosPath  = flag.String("glossary", "", "path to a domain glossary file")
		dot       = flag.Bool("dot", false, "print the dependency graph in Graphviz DOT syntax")
		templates = flag.Bool("templates", false, "print the explanation templates")
		variants  = flag.Int("variants", 2, "enhanced variants per template")
		draft     = flag.Bool("draft-glossary", false, "print drafted glossary entries for undocumented predicates and exit")
		exportTo  = flag.String("export-templates", "", "write the template review document to this file and exit")
		importFr  = flag.String("import-templates", "", "import an edited template review document and report the outcome")
		timeout   = flag.Duration("timeout", 0, "abort the analysis after this long (0 = no deadline); Ctrl-C always interrupts cleanly")
	)
	flag.Parse()
	ctx, stop := cmdutil.SignalContext(*timeout)
	defer stop()

	if *draft {
		if err := draftGlossary(*appName, *progPath, *glosPath); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}

	var pipe *core.Pipeline
	err := cmdutil.RunInterruptible(ctx, func() error {
		var err error
		pipe, err = buildPipeline(*appName, *progPath, *glosPath, *variants)
		return err
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}

	if *exportTo != "" {
		if err := os.WriteFile(*exportTo, []byte(pipe.Templates().Export()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d templates to %s\n", len(pipe.Templates().All()), *exportTo)
		return
	}
	if *importFr != "" {
		doc, err := os.ReadFile(*importFr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		attached, err := pipe.Templates().ImportEnhanced(string(doc))
		fmt.Printf("attached %d reviewed variants\n", attached)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		return
	}
	if *dot {
		fmt.Print(pipe.Graph().DOT())
		return
	}

	g := pipe.Graph()
	fmt.Printf("program: %s\n", pipe.Program().Name)
	fmt.Printf("roots: %v\nleaf: %s\ncritical nodes: %v\ncyclic: %v\n\n",
		g.Roots(), g.Leaf(), g.CriticalNodes(), g.Cyclic())
	fmt.Println("dependency graph:")
	fmt.Println(g.String())
	fmt.Println()
	fmt.Println(pipe.Analysis().Table())

	if *templates {
		fmt.Println("explanation templates:")
		for _, tpl := range pipe.Templates().All() {
			fmt.Printf("\n== %s ==\n%s\n", tpl.Path.ID, tpl.Text)
			for i, v := range tpl.Enhanced {
				fmt.Printf("enhanced %d: %s\n", i+1, v)
			}
		}
	}
}

func buildPipeline(appName, progPath, glosPath string, variants int) (*core.Pipeline, error) {
	cfg := core.Config{Enhancer: &enhancer.Fluent{Variants: variants, Seed: 1}}
	switch {
	case appName != "":
		app, err := apps.ByName(appName)
		if err != nil {
			return nil, err
		}
		return app.Pipeline(cfg)
	case progPath != "" && glosPath != "":
		prog, err := os.ReadFile(progPath)
		if err != nil {
			return nil, err
		}
		glos, err := os.ReadFile(glosPath)
		if err != nil {
			return nil, err
		}
		return core.NewPipelineFromSource(string(prog), string(glos), cfg)
	default:
		return nil, fmt.Errorf("either -app, or both -program and -glossary, are required")
	}
}

// draftGlossary prints placeholder glossary entries for every predicate the
// (possibly empty) glossary does not describe.
func draftGlossary(appName, progPath, glosPath string) error {
	var prog *ast.Program
	g := glossary.New()
	switch {
	case appName != "":
		app, err := apps.ByName(appName)
		if err != nil {
			return err
		}
		prog = app.Program()
		g = app.Glossary()
	case progPath != "":
		src, err := os.ReadFile(progPath)
		if err != nil {
			return err
		}
		prog, err = parser.Parse(string(src))
		if err != nil {
			return err
		}
		if glosPath != "" {
			gsrc, err := os.ReadFile(glosPath)
			if err != nil {
				return err
			}
			g, err = glossary.Parse(string(gsrc))
			if err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("either -app or -program is required")
	}
	draft := g.Draft(prog)
	if draft == "" {
		fmt.Println("% every predicate is already documented")
		return nil
	}
	fmt.Print(draft)
	return nil
}
