// Command loadgen drives the serving-tier load harness against a running
// worker or routed tier: it opens a large population of concurrent
// sessions, applies a mixed read/explain/write steady state, and reports
// per-class latency percentiles plus the durability churn (restores,
// snapshot restores, compactions) the run induced on the target.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -sessions 100000 -ops 100000
//	loadgen -url http://localhost:8080 -mix 80/15/5 -concurrency 128
//	loadgen -url http://localhost:8080 -sessions 1000 -ops 5000 -json report.json
//
// The target needs a -wal-dir (sessions beyond the resident LRU restore
// from disk; against a volatile server evicted sessions answer 404 and the
// run aborts on the error budget). Session ids are never reused, so reruns
// against one durable directory need distinct -prefix values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/loadgen"
)

func main() {
	url := flag.String("url", "", "target base URL: a serve worker or a router (required)")
	sessions := flag.Int("sessions", 100_000, "concurrent-session population to open")
	ops := flag.Int("ops", 100_000, "steady-state operations after the open phase")
	concurrency := flag.Int("concurrency", 64, "client goroutines")
	mix := flag.String("mix", "70/20/10", "steady-state read/explain/write percentages")
	seed := flag.Int64("seed", 1, "session-selection seed")
	prefix := flag.String("prefix", "ld", "session id prefix (ids are never reused; vary per run)")
	jsonPath := flag.String("json", "", "also write the full report as JSON to this path")
	flag.Parse()

	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url is required")
		os.Exit(1)
	}
	var readPct, explainPct, writePct int
	if _, err := fmt.Sscanf(strings.ReplaceAll(*mix, "/", " "), "%d %d %d", &readPct, &explainPct, &writePct); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: bad -mix %q (want e.g. 70/20/10)\n", *mix)
		os.Exit(1)
	}
	rep, err := loadgen.Run(loadgen.Config{
		BaseURL:     *url,
		Sessions:    *sessions,
		Ops:         *ops,
		Concurrency: *concurrency,
		ReadPct:     readPct,
		ExplainPct:  explainPct,
		WritePct:    writePct,
		Seed:        *seed,
		IDPrefix:    *prefix,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Printf("opened %d sessions in %.1fs (p50 %.2fms p99 %.2fms, %d errors)\n",
		rep.Sessions, rep.OpenWallSeconds, rep.Open.Latency.P50, rep.Open.Latency.P99, rep.Open.Errors)
	fmt.Printf("steady state: %d ops in %.1fs = %.0f ops/s over %d client goroutines\n",
		*ops, rep.WallSeconds, rep.Throughput, rep.Concurrency)
	class := func(name string, cr loadgen.ClassReport) {
		fmt.Printf("  %-8s %8d ops  p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  max %8.2fms  errors %d\n",
			name, cr.Ops, cr.Latency.P50, cr.Latency.P90, cr.Latency.P99, cr.Latency.Max, cr.Errors)
	}
	class("read", rep.Read)
	class("explain", rep.Explain)
	class("write", rep.Write)
	fmt.Printf("durability churn: %d restores (%d from snapshots, %d tail deltas), %d snapshot writes, %d compactions\n",
		rep.Counters.Restores, rep.Counters.SnapshotRestores, rep.Counters.TailReplays,
		rep.Counters.SnapshotWrites, rep.Counters.Compactions)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: marshal report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: wrote", *jsonPath)
	}
}
