// Command bench regenerates the paper's tables and figures (see DESIGN.md
// for the experiment index).
//
// Usage:
//
//	bench -fig all
//	bench -fig fig17 -proofs 10 -seed 42
//	bench -fig fig16 -experts 14
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/figures"
)

func main() {
	var (
		fig          = flag.String("fig", "all", "figure id (fig3, fig10, fig6, fig7, fig8, ex48, fig13, fig14, fig15, fig16, fig17, fig18) or 'all'")
		seed         = flag.Int64("seed", 42, "experiment seed")
		proofs       = flag.Int("proofs", 10, "proofs per length (fig17: paper uses 10; fig18: 15)")
		participants = flag.Int("participants", 24, "comprehension-study participants (fig14)")
		experts      = flag.Int("experts", 14, "expert-study raters (fig16)")
		workers      = flag.Int("workers", 0, "chase worker-pool size: 0 = sequential, -1 = all cores; figures are identical at any setting")
	)
	flag.Parse()
	figures.SetChaseWorkers(*workers)

	runners := map[string]func() (string, error){
		"fig3": func() (string, error) { return figures.Fig3Fig9DependencyGraphs() },
		"fig10": func() (string, error) {
			return figures.Fig4Fig5Fig10ReasoningPaths()
		},
		"fig6": figures.Fig6Templates,
		"fig7": func() (string, error) { return figures.Fig7Fig11Glossaries(), nil },
		"fig8": figures.Fig8ChaseGraph,
		"ex48": figures.Ex48Explanation,
		"fig13": func() (string, error) {
			return figures.Fig13DerivedKnowledge()
		},
		"fig14": func() (string, error) {
			out, _, err := figures.Fig14Comprehension(*seed, *participants)
			return out, err
		},
		"fig15": func() (string, error) { return figures.Fig15ExampleTexts(*seed) },
		"fig16": func() (string, error) {
			out, _, err := figures.Fig16ExpertStudy(*seed, *experts)
			return out, err
		},
		"fig17": func() (string, error) {
			out, points, err := figures.Fig17Omissions(*seed, *proofs)
			if err != nil {
				return "", err
			}
			return out + "\n" + figures.OmissionBoxplots(points, 56), nil
		},
		"fig18": func() (string, error) {
			out, points, err := figures.Fig18Performance(*seed, *proofs)
			if err != nil {
				return "", err
			}
			return out + "\n" + figures.TimingBoxplots(points, 56), nil
		},
	}
	// Aliases: the paper's figure numbers group several renderings.
	for alias, target := range map[string]string{
		"fig4": "fig10", "fig5": "fig10", "fig9": "fig3", "fig11": "fig7", "fig12": "fig13",
	} {
		runners[alias] = runners[target]
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"fig3", "fig10", "fig6", "fig7", "fig8", "ex48", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18"}
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			var known []string
			for k := range runners {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "bench: unknown figure %q (known: %s)\n", id, strings.Join(known, ", "))
			os.Exit(1)
		}
		fmt.Printf("######## %s ########\n", id)
		out, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
