// Command bench regenerates the paper's tables and figures (see DESIGN.md
// for the experiment index).
//
// Usage:
//
//	bench -fig all
//	bench -fig fig17 -proofs 10 -seed 42
//	bench -fig fig16 -experts 14
//	bench -fig all -json compiled && bench -fig all -legacy -json legacy
//	bench -fig serving    # cold vs warm explain-all; writes BENCH_serving.json
//	bench -fig incremental # single-fact update vs full re-chase; writes BENCH_incremental.json
//	bench -fig columnar   # join engines on a million-fact EKG; writes BENCH_columnar.json
//	bench -fig write      # serialized vs group-commit write throughput; writes BENCH_write.json
//	bench -fig load       # 100k-session serving-tier load harness; writes BENCH_load.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cmdutil"
	"repro/internal/figures"
)

// benchSnapshot is the machine-readable timing record written by -json.
type benchSnapshot struct {
	Label     string        `json:"label"`
	Generated string        `json:"generated"`
	Go        string        `json:"go"`
	Workers   int           `json:"workers"`
	Legacy    bool          `json:"legacy"`
	Figures   []figureTimes `json:"figures"`
}

type figureTimes struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// servingSnapshot is the machine-readable cold/warm serving-latency record
// written to BENCH_serving.json by `bench -fig serving`.
type servingSnapshot struct {
	Generated string                 `json:"generated"`
	Go        string                 `json:"go"`
	Workers   int                    `json:"workers"`
	Workloads []figures.ServingPoint `json:"workloads"`
}

// incrementalSnapshot is the machine-readable update-vs-re-chase record
// written to BENCH_incremental.json by `bench -fig incremental`.
type incrementalSnapshot struct {
	Generated string                     `json:"generated"`
	Go        string                     `json:"go"`
	Workers   int                        `json:"workers"`
	Workloads []figures.IncrementalPoint `json:"workloads"`
}

// columnarSnapshot is the machine-readable join-engine comparison record
// written to BENCH_columnar.json by `bench -fig columnar`.
type columnarSnapshot struct {
	Generated string                  `json:"generated"`
	Go        string                  `json:"go"`
	Workloads []figures.ColumnarPoint `json:"workloads"`
}

// writeSnapshot is the machine-readable write-throughput record written to
// BENCH_write.json by `bench -fig write`.
type writeSnapshot struct {
	Generated string               `json:"generated"`
	Go        string               `json:"go"`
	Workers   int                  `json:"workers"`
	Workloads []figures.WritePoint `json:"workloads"`
	// CrossSessions holds the before/after rows of cross-session fsync
	// batching: independent per-session flushing vs the shared SyncBatcher.
	CrossSessions []figures.CrossSyncPoint `json:"crossSessions"`
}

// loadSnapshot is the machine-readable serving-tier load record written to
// BENCH_load.json by `bench -fig load`. Each workload carries the per-class
// latency percentiles and durability counters plus the restore-latency
// summary and, for the routed topology, the routing-layer delta
// (retries/failovers and session-location-cache activity).
type loadSnapshot struct {
	Generated string              `json:"generated"`
	Go        string              `json:"go"`
	Workers   int                 `json:"workers"`
	Workloads []figures.LoadPoint `json:"workloads"`
}

func main() {
	var (
		fig          = flag.String("fig", "all", "figure id (fig3, fig10, fig6, fig7, fig8, ex48, fig13, fig14, fig15, fig16, fig17, fig18, serving, incremental, columnar, write, load) or 'all'")
		seed         = flag.Int64("seed", 42, "experiment seed")
		proofs       = flag.Int("proofs", 10, "proofs per length (fig17: paper uses 10; fig18: 15)")
		participants = flag.Int("participants", 24, "comprehension-study participants (fig14)")
		experts      = flag.Int("experts", 14, "expert-study raters (fig16)")
		workers      = flag.Int("workers", 0, "chase worker-pool size: 0 = sequential, -1 = all cores; figures are identical at any setting")
		legacy       = flag.Bool("legacy", false, "use the legacy map-based join engine (timing baseline; figures are identical)")
		batch        = flag.Bool("batch", false, "use the batch-at-a-time columnar join executor (figures are identical)")
		sessions     = flag.Int("sessions", 0, "load: concurrent-session population (0 = the official 100k)")
		ops          = flag.Int("ops", 0, "load: steady-state operations (0 = 100k)")
		concurrency  = flag.Int("concurrency", 0, "load: client goroutines (0 = 64)")
		jsonLabel    = flag.String("json", "", "also write per-figure wall times to BENCH_<label>.json")
		timeout      = flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline); Ctrl-C always interrupts cleanly")
	)
	flag.Parse()
	ctx, stopSignals := cmdutil.SignalContext(*timeout)
	defer stopSignals()
	figures.SetChaseWorkers(*workers)
	figures.SetChaseLegacy(*legacy)
	figures.SetChaseBatch(*batch)

	runners := map[string]func() (string, error){
		"fig3": func() (string, error) { return figures.Fig3Fig9DependencyGraphs() },
		"fig10": func() (string, error) {
			return figures.Fig4Fig5Fig10ReasoningPaths()
		},
		"fig6": figures.Fig6Templates,
		"fig7": func() (string, error) { return figures.Fig7Fig11Glossaries(), nil },
		"fig8": figures.Fig8ChaseGraph,
		"ex48": figures.Ex48Explanation,
		"fig13": func() (string, error) {
			return figures.Fig13DerivedKnowledge()
		},
		"fig14": func() (string, error) {
			out, _, err := figures.Fig14Comprehension(*seed, *participants)
			return out, err
		},
		"fig15": func() (string, error) { return figures.Fig15ExampleTexts(*seed) },
		"fig16": func() (string, error) {
			out, _, err := figures.Fig16ExpertStudy(*seed, *experts)
			return out, err
		},
		"fig17": func() (string, error) {
			out, points, err := figures.Fig17Omissions(*seed, *proofs)
			if err != nil {
				return "", err
			}
			return out + "\n" + figures.OmissionBoxplots(points, 56), nil
		},
		"fig18": func() (string, error) {
			out, points, err := figures.Fig18Performance(*seed, *proofs)
			if err != nil {
				return "", err
			}
			return out + "\n" + figures.TimingBoxplots(points, 56), nil
		},
		"serving": func() (string, error) {
			out, points, err := figures.ServingLatency()
			if err != nil {
				return "", err
			}
			snap := servingSnapshot{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Go:        runtime.Version(),
				Workers:   *workers,
				Workloads: points,
			}
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return "", fmt.Errorf("marshal serving snapshot: %w", err)
			}
			if err := os.WriteFile("BENCH_serving.json", append(data, '\n'), 0o644); err != nil {
				return "", fmt.Errorf("write BENCH_serving.json: %w", err)
			}
			fmt.Fprintln(os.Stderr, "bench: wrote BENCH_serving.json")
			return out, nil
		},
		"incremental": func() (string, error) {
			out, points, err := figures.IncrementalLatency()
			if err != nil {
				return "", err
			}
			snap := incrementalSnapshot{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Go:        runtime.Version(),
				Workers:   *workers,
				Workloads: points,
			}
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return "", fmt.Errorf("marshal incremental snapshot: %w", err)
			}
			if err := os.WriteFile("BENCH_incremental.json", append(data, '\n'), 0o644); err != nil {
				return "", fmt.Errorf("write BENCH_incremental.json: %w", err)
			}
			fmt.Fprintln(os.Stderr, "bench: wrote BENCH_incremental.json")
			return out, nil
		},
		"columnar": func() (string, error) {
			out, points, err := figures.ColumnarThroughput()
			if err != nil {
				return "", err
			}
			snap := columnarSnapshot{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Go:        runtime.Version(),
				Workloads: points,
			}
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return "", fmt.Errorf("marshal columnar snapshot: %w", err)
			}
			if err := os.WriteFile("BENCH_columnar.json", append(data, '\n'), 0o644); err != nil {
				return "", fmt.Errorf("write BENCH_columnar.json: %w", err)
			}
			fmt.Fprintln(os.Stderr, "bench: wrote BENCH_columnar.json")
			return out, nil
		},
		"write": func() (string, error) {
			out, points, cross, err := figures.WriteThroughput()
			if err != nil {
				return "", err
			}
			snap := writeSnapshot{
				Generated:     time.Now().UTC().Format(time.RFC3339),
				Go:            runtime.Version(),
				Workers:       *workers,
				Workloads:     points,
				CrossSessions: cross,
			}
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return "", fmt.Errorf("marshal write snapshot: %w", err)
			}
			if err := os.WriteFile("BENCH_write.json", append(data, '\n'), 0o644); err != nil {
				return "", fmt.Errorf("write BENCH_write.json: %w", err)
			}
			fmt.Fprintln(os.Stderr, "bench: wrote BENCH_write.json")
			return out, nil
		},
		"load": func() (string, error) {
			out, points, err := figures.LoadCapacity(*sessions, *ops, *concurrency)
			if err != nil {
				return "", err
			}
			snap := loadSnapshot{
				Generated: time.Now().UTC().Format(time.RFC3339),
				Go:        runtime.Version(),
				Workers:   *workers,
				Workloads: points,
			}
			data, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				return "", fmt.Errorf("marshal load snapshot: %w", err)
			}
			if err := os.WriteFile("BENCH_load.json", append(data, '\n'), 0o644); err != nil {
				return "", fmt.Errorf("write BENCH_load.json: %w", err)
			}
			fmt.Fprintln(os.Stderr, "bench: wrote BENCH_load.json")
			return out, nil
		},
	}
	// Aliases: the paper's figure numbers group several renderings.
	for alias, target := range map[string]string{
		"fig4": "fig10", "fig5": "fig10", "fig9": "fig3", "fig11": "fig7", "fig12": "fig13",
	} {
		runners[alias] = runners[target]
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"fig3", "fig10", "fig6", "fig7", "fig8", "ex48", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18"}
	}
	snap := benchSnapshot{
		Label:     *jsonLabel,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		Workers:   *workers,
		Legacy:    *legacy,
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			var known []string
			for k := range runners {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "bench: unknown figure %q (known: %s)\n", id, strings.Join(known, ", "))
			os.Exit(1)
		}
		fmt.Printf("######## %s ########\n", id)
		start := time.Now()
		var out string
		err := cmdutil.RunInterruptible(ctx, func() error {
			var err error
			out, err = run()
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		snap.Figures = append(snap.Figures, figureTimes{ID: id, Seconds: time.Since(start).Seconds()})
		fmt.Println(out)
	}
	if *jsonLabel != "" {
		path := "BENCH_" + *jsonLabel + ".json"
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: marshal snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: wrote %s\n", path)
	}
}
