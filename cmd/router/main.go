// Command router fronts a fleet of serve workers with a consistent-hash
// sharding proxy: each session id maps to one worker, so a session's live
// engine state has a single home, and worker failures or drains reroute
// only the sessions that worker owned — their new owners restore them from
// the shared WAL directory (snapshot plus tail replay).
//
// Usage:
//
//	router -addr :8080 -workers http://127.0.0.1:8081,http://127.0.0.1:8082
//	router -addr :8080 -workers ... -vnodes 256 -retries 2
//
// The workers must share one -wal-dir (the handoff medium) and speak the
// ordinary serve HTTP protocol. The router polls each worker's /stats for
// liveness and drain state, ejects unresponsive workers from the ring, and
// aggregates /stats across the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.String("workers", "", "comma-separated worker base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per worker on the hash ring (0 = 128)")
	healthInterval := flag.Duration("health-interval", time.Second, "worker /stats poll interval")
	healthFailures := flag.Int("health-failures", 3, "consecutive failures before a worker is ejected from the ring")
	retries := flag.Int("retries", 3, "distinct workers to offer one request to before answering 502")
	backoff := flag.Duration("retry-backoff", 25*time.Millisecond, "pause before the second attempt; doubles per further attempt")
	locationCache := flag.Int("location-cache", 0, "session-location cache capacity: keyed requests route straight to the worker that last answered for the session (0 = default 65536, negative = disabled)")
	rebalance := flag.Bool("rebalance", true, "proactively migrate sessions to their new ring owner when a worker joins or recovers, instead of restoring on first touch")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	flag.Parse()

	if *workers == "" {
		fmt.Fprintln(os.Stderr, "router: -workers is required")
		os.Exit(1)
	}
	rt, err := router.New(router.Options{
		Workers:        strings.Split(*workers, ","),
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		HealthFailures: *healthFailures,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		LocationCache:  *locationCache,
		Rebalance:      *rebalance,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "router:", err)
		os.Exit(1)
	}
	rt.Start()
	defer rt.Close()

	srv := server.NewHTTPServer(*addr, rt.Handler(), server.HTTPTimeouts{})
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("router listening on %s, %d workers\n", *addr, len(strings.Split(*workers, ",")))

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "router:", err)
			os.Exit(1)
		}
	case <-sigCtx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "router: shutting down (drain budget %s)\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			_ = srv.Close()
			os.Exit(1)
		}
	}
}
