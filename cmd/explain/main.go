// Command explain answers explanation queries: it runs the reasoning task,
// extracts the proof of the queried fact, maps the chase steps to
// explanation templates (Section 4.3 of the paper) and prints the resulting
// natural-language explanation.
//
// Usage:
//
//	explain -app stress-simple -query 'Default("C")'
//	explain -app company-control -query 'Control("B", "D")' -paths
//	explain -app stress-test -all
//	explain -program rules.vada -glossary g.txt -facts data.vada -query 'Ans("x")'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/cmdutil"
	"repro/internal/core"
	"repro/internal/enhancer"
	"repro/internal/parser"
	"repro/internal/privacy"
)

func main() {
	var (
		appName  = flag.String("app", "", "bundled application name")
		progPath = flag.String("program", "", "path to a Vadalog program file")
		glosPath = flag.String("glossary", "", "path to a domain glossary file")
		factPath = flag.String("facts", "", "path to an additional facts file")
		noScen   = flag.Bool("no-scenario", false, "with -app: do not load the bundled scenario facts")
		query    = flag.String("query", "", `explanation query, e.g. 'Default("C")'`)
		all      = flag.Bool("all", false, "explain every derived answer")
		det      = flag.Bool("deterministic", false, "print the unenhanced template text")
		proof    = flag.Bool("proof", false, "also print the deterministic step-by-step proof verbalization")
		paths    = flag.Bool("paths", false, "also print the reasoning paths composed")
		anon     = flag.Bool("anonymize", false, "pseudonymize entity names in the explanation")
		workers  = flag.Int("workers", 0, "chase worker-pool size: 0 = sequential, -1 = all cores; explanations are identical at any setting")
		batch    = flag.Bool("batch", false, "use the batch-at-a-time columnar join executor; explanations are identical either way")
		timeout  = flag.Duration("timeout", 0, "abort reasoning after this long (0 = no deadline); Ctrl-C always cancels cleanly")
	)
	flag.Parse()

	pipe, extra, err := buildPipeline(*appName, *progPath, *glosPath, *factPath, *noScen, *workers, *batch)
	if err != nil {
		fatal(err)
	}
	ctx, stop := cmdutil.SignalContext(*timeout)
	defer stop()
	res, err := pipe.ReasonContext(ctx, extra...)
	if err != nil {
		fatal(err)
	}

	var exps []*core.Explanation
	switch {
	case *all:
		exps, err = pipe.ExplainAll(res)
	case *query != "":
		var e *core.Explanation
		e, err = pipe.ExplainQuery(res, *query)
		exps = []*core.Explanation{e}
	default:
		err = fmt.Errorf("one of -query or -all is required")
	}
	if err != nil {
		fatal(err)
	}

	for i, e := range exps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", e.Fact)
		if *paths {
			fmt.Printf("reasoning paths: %v (proof: %d chase steps)\n", e.PathIDs(), e.Proof.Size())
		}
		text := e.Text
		if *det {
			text = e.Deterministic
		}
		if *anon {
			pseudo := privacy.New()
			anonText, err := privacy.AnonymizeExplanation(e, pseudo)
			if err != nil {
				fatal(err)
			}
			text = anonText
		}
		fmt.Println(text)
		if *proof {
			text, err := pipe.VerbalizeProof(e.Proof)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\nstep-by-step proof:\n%s\n", text)
		}
		if err := e.Verify(); err != nil {
			fatal(fmt.Errorf("completeness check failed: %w", err))
		}
	}
}

func buildPipeline(appName, progPath, glosPath, factPath string, noScenario bool, workers int, batch bool) (*core.Pipeline, []ast.Atom, error) {
	cfg := core.Config{Enhancer: &enhancer.Fluent{Variants: 2, Seed: 1}}
	cfg.Chase.Workers = workers
	cfg.Chase.Batch = batch
	var pipe *core.Pipeline
	var extra []ast.Atom
	switch {
	case appName != "":
		app, err := apps.ByName(appName)
		if err != nil {
			return nil, nil, err
		}
		pipe, err = app.Pipeline(cfg)
		if err != nil {
			return nil, nil, err
		}
		if !noScenario {
			extra = app.Scenario()
		}
	case progPath != "" && glosPath != "":
		prog, err := os.ReadFile(progPath)
		if err != nil {
			return nil, nil, err
		}
		glos, err := os.ReadFile(glosPath)
		if err != nil {
			return nil, nil, err
		}
		pipe, err = core.NewPipelineFromSource(string(prog), string(glos), cfg)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("either -app, or both -program and -glossary, are required")
	}
	if factPath != "" {
		src, err := os.ReadFile(factPath)
		if err != nil {
			return nil, nil, err
		}
		factProg, err := parser.Parse(string(src))
		if err != nil {
			return nil, nil, err
		}
		extra = append(extra, factProg.Facts...)
	}
	return pipe, extra, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explain:", err)
	os.Exit(1)
}
