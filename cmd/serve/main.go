// Command serve runs the explanation service: a JSON-over-HTTP API exposing
// the deployed KG applications for interactive front-ends (the paper's
// Section 4.4 pipeline behind its reference-[10]-style graph environment).
//
// Usage:
//
//	serve -addr :8080
//	serve -addr :8080 -timeout 10s -max-inflight 16   # tighter overload posture
//	serve -addr :8080 -wal-dir wal -fsync group       # durable sessions (WAL + restore)
//
// Then:
//
//	curl localhost:8080/apps
//	curl -X POST localhost:8080/reason -d '{"app":"stress-simple","scenario":true}'
//	curl 'localhost:8080/explain?session=s1&query=Default("C")'
//	curl localhost:8080/stats
//
// The listener carries full transport timeouts (no slowloris exposure) and
// SIGINT/SIGTERM triggers a graceful shutdown: new requests answer 503
// while in-flight ones drain, and requests still running when the drain
// budget expires have their reasoning canceled at the next round boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "chase worker-pool size per reasoning request: 0 = sequential, -1 = all cores")
	batch := flag.Bool("batch", false, "use the batch-at-a-time columnar join executor for reasoning requests; responses are identical either way")
	maxSessions := flag.Int("max-sessions", 0, "session LRU capacity (0 = default)")
	maxExplanations := flag.Int("max-explanations", 0, "rendered-explanation LRU capacity (0 = default)")
	resultCache := flag.Int("result-cache", 0, "per-app reasoning-result cache capacity (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-request reasoning deadline (0 = default 30s, negative = no deadline)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently admitted reasoning requests; above it requests answer 503 (0 = default 64)")
	maxFacts := flag.Int("max-facts", 0, "fact-store cap per reasoning run; exceeding it answers 422 (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
	walDir := flag.String("wal-dir", "", "directory for per-session write-ahead logs; mutated sessions survive eviction and restarts (empty = volatile sessions)")
	fsync := flag.String("fsync", "group", "WAL fsync policy: group (once per commit batch), per-commit, or off")
	commitWindow := flag.Duration("commit-window", 0, "how long a session's commit leader collects concurrent writes per batch (0 = commit whatever has queued)")
	writeQueue := flag.Int("write-queue", 0, "per-session pending-write queue bound; beyond it writes answer 429 (0 = default 64)")
	compactThreshold := flag.Int("compact-threshold", 0, "checkpoint a session to its snapshot and truncate its WAL after this many committed deltas (0 = no count-based compaction)")
	compactBytes := flag.Int64("compact-bytes", 0, "checkpoint and truncate when a session's WAL exceeds this size in bytes (0 = no size-based compaction)")
	retireQueue := flag.Int("retire-queue", 0, "max concurrent background session retirements on LRU eviction; beyond it evictions checkpoint inline (0 = default 1, negative = always inline)")
	flag.Parse()

	sync, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	s, err := server.NewWithOptions(server.Options{
		ChaseWorkers:    *workers,
		ChaseBatch:      *batch,
		MaxSessions:     *maxSessions,
		MaxExplanations: *maxExplanations,
		ResultCacheSize: *resultCache,
		RequestTimeout:  *timeout,
		MaxInflight:     *maxInflight,
		MaxFacts:        *maxFacts,
		WALDir:          *walDir,
		WALSync:         sync,
		CommitWindow:    *commitWindow,
		WriteQueue:      *writeQueue,
		CompactCommits:  *compactThreshold,
		CompactBytes:    *compactBytes,
		RetireQueue:     *retireQueue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	srv := server.NewHTTPServer(*addr, s.Handler(), server.HTTPTimeouts{})
	// Every request context derives from baseCtx: canceling it (when the
	// drain budget runs out) stops still-running chases at their next
	// round/chunk boundary instead of abandoning them.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv.BaseContext = func(net.Listener) context.Context { return baseCtx }

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("explanation service listening on %s\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
	case <-sigCtx.Done():
		stop() // a second signal kills the process the default way
		fmt.Fprintf(os.Stderr, "serve: shutting down, draining in-flight requests (budget %s)\n", *drain)
		s.SetDraining(true)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: drain budget exceeded, canceling remaining requests")
			cancelBase()
			_ = srv.Close()
			os.Exit(1)
		}
		// Snapshot-then-handoff: checkpoint every live session so the next
		// worker over this WAL directory restores from snapshots, not
		// replays.
		if n := s.SnapshotAll(); n > 0 {
			fmt.Fprintf(os.Stderr, "serve: checkpointed %d sessions for handoff\n", n)
		}
		fmt.Fprintln(os.Stderr, "serve: drained cleanly")
	}
}
