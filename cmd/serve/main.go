// Command serve runs the explanation service: a JSON-over-HTTP API exposing
// the deployed KG applications for interactive front-ends (the paper's
// Section 4.4 pipeline behind its reference-[10]-style graph environment).
//
// Usage:
//
//	serve -addr :8080
//
// Then:
//
//	curl localhost:8080/apps
//	curl -X POST localhost:8080/reason -d '{"app":"stress-simple","scenario":true}'
//	curl 'localhost:8080/explain?session=s1&query=Default("C")'
//	curl localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "chase worker-pool size per reasoning request: 0 = sequential, -1 = all cores")
	maxSessions := flag.Int("max-sessions", 0, "session LRU capacity (0 = default)")
	maxExplanations := flag.Int("max-explanations", 0, "rendered-explanation LRU capacity (0 = default)")
	resultCache := flag.Int("result-cache", 0, "per-app reasoning-result cache capacity (0 = default)")
	flag.Parse()

	s, err := server.NewWithOptions(server.Options{
		ChaseWorkers:    *workers,
		MaxSessions:     *maxSessions,
		MaxExplanations: *maxExplanations,
		ResultCacheSize: *resultCache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	fmt.Printf("explanation service listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
