// Package wal implements the per-session write-ahead log of the serving
// layer: an append-only, checksummed record stream that makes a live
// reasoning session durable across eviction and process crashes.
//
// A log begins with a header record naming the compiled program the session
// runs on (the application registry name plus a fingerprint of the compiled
// rules, so replay refuses to resurrect a session against different rules)
// and the session's initial extensional base facts. Every committed write
// batch follows as one delta record: a monotonically increasing commit
// sequence number and the merged add/retract atom lists exactly as they
// were handed to the incremental maintainer. Because the maintainer is
// deterministic, replaying the same deltas in the same order against the
// same program rebuilds a byte-identical engine — same fact ids, same
// provenance, same proofs. A batch whose application failed after it was
// logged is followed by an abort record, so replay skips it instead of
// re-poisoning the restored session.
//
// # Record format
//
// The file opens with an 8-byte magic. Each record is
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// in little-endian byte order. The payload's first byte is the record type;
// the rest is type-specific, built from uvarints and raw bytes. Atoms are
// written in their canonical concrete syntax through a per-log string
// dictionary: the first occurrence of an atom carries its bytes and
// implicitly assigns the next dense id, later occurrences are a single
// uvarint — the same interning idea the fact store uses for values, applied
// at the log layer so long-lived sessions that toggle the same facts pay
// for each atom's text once.
//
// # Corruption and torn writes
//
// Replay reads the longest valid prefix: a truncated final record, a length
// that overruns the file, or a checksum mismatch ends replay at the last
// record that decoded cleanly (Recovered.Truncated reports that damage was
// discarded). This is exactly the crash contract of log-structured storage:
// an interrupted append can only damage the tail, and the tail was never
// acknowledged. OpenAppend truncates the damaged bytes and resumes
// appending after the valid prefix.
//
// # Fsync policy
//
// SyncPerCommit makes every Append durable before it returns (one
// fsync per committed batch); SyncGroup leaves syncing to the caller's
// explicit Sync calls, which the serving layer issues once per group
// commit; SyncOff never syncs and leaves durability to the kernel's
// writeback (crash may lose the last seconds of acknowledged writes, but
// the prefix property still holds). Sync counts are reported on
// GlobalStats for the /stats endpoint.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/parser"
)

// magic identifies a session WAL file and its format version.
var magic = [8]byte{'E', 'K', 'G', 'W', 'A', 'L', '0', '1'}

// Record types.
const (
	recHeader byte = 1
	recDelta  byte = 2
	recAbort  byte = 3
)

// maxRecord bounds a single record payload; a length prefix beyond it is
// treated as tail corruption rather than an allocation request.
const maxRecord = 64 << 20

// SyncPolicy selects when an appended record is flushed to stable storage.
type SyncPolicy int

const (
	// SyncGroup defers fsync to explicit Sync calls — the serving layer
	// calls Sync once per group commit, so one fsync covers every write
	// coalesced into the batch.
	SyncGroup SyncPolicy = iota
	// SyncPerCommit fsyncs inside every Append before it returns.
	SyncPerCommit
	// SyncOff never fsyncs; durability is whatever the kernel's writeback
	// provides.
	SyncOff
)

// ParseSyncPolicy parses the cmd/serve -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group":
		return SyncGroup, nil
	case "per-commit":
		return SyncPerCommit, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want group, per-commit or off)", s)
}

// String renders the policy as its flag value.
func (p SyncPolicy) String() string {
	switch p {
	case SyncPerCommit:
		return "per-commit"
	case SyncOff:
		return "off"
	default:
		return "group"
	}
}

// Header is the first record of every log: which compiled application the
// session runs on and the extensional base it was opened with.
type Header struct {
	// App is the application registry name.
	App string
	// Program fingerprints the compiled rules; replay refuses a log whose
	// fingerprint does not match the currently compiled program.
	Program string
	// Base is the session's initial extensional fact list.
	Base []ast.Atom
	// StartSeq is the commit sequence number the log starts after: 0 for a
	// log that records the session from its beginning, E for a log recreated
	// by compaction against a snapshot at epoch E. A log with StartSeq > 0
	// is a tail — replaying it from Base alone would silently skip the
	// compacted prefix, so restore refuses unless the snapshot is readable.
	StartSeq uint64
}

// Delta is one committed write batch: the merged add/retract lists applied
// to the maintainer under commit sequence number Seq.
type Delta struct {
	Seq     uint64
	Add     []ast.Atom
	Retract []ast.Atom
}

// Stats is the package-wide WAL accounting snapshot reported on /stats.
type Stats struct {
	// Appends counts records written (header, delta and abort).
	Appends uint64 `json:"appends"`
	// Syncs counts fsync calls actually issued.
	Syncs uint64 `json:"syncs"`
	// Bytes counts bytes appended across all logs.
	Bytes uint64 `json:"bytes"`
	// Replays counts Replay calls that decoded a valid header.
	Replays uint64 `json:"replays"`
	// GroupWindows counts cross-session flush rounds led by one
	// SyncBatcher caller on behalf of every log pending at that moment.
	GroupWindows uint64 `json:"groupWindows"`
	// BatchedSyncs counts sync requests routed through a SyncBatcher.
	BatchedSyncs uint64 `json:"batchedSyncs"`
	// SyncsSaved counts batched requests that piggybacked on another
	// request's fsync of the same log instead of issuing their own —
	// the fsyncs the cross-session batching eliminated.
	SyncsSaved uint64 `json:"syncsSaved"`
}

var global struct {
	appends      atomic.Uint64
	syncs        atomic.Uint64
	bytes        atomic.Uint64
	replays      atomic.Uint64
	groupWindows atomic.Uint64
	batchedSyncs atomic.Uint64
	syncsSaved   atomic.Uint64
}

// GlobalStats snapshots the process-wide WAL counters.
func GlobalStats() Stats {
	return Stats{
		Appends:      global.appends.Load(),
		Syncs:        global.syncs.Load(),
		Bytes:        global.bytes.Load(),
		Replays:      global.replays.Load(),
		GroupWindows: global.groupWindows.Load(),
		BatchedSyncs: global.batchedSyncs.Load(),
		SyncsSaved:   global.syncsSaved.Load(),
	}
}

// ErrClosed is returned by appends to a closed log (e.g. a session evicted
// while a late write was still in flight).
var ErrClosed = errors.New("wal: log is closed")

// Log is an open, appendable session WAL. Methods are safe for concurrent
// use, though the serving layer funnels all appends through one committer
// goroutine per session.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	policy SyncPolicy
	// dict maps an atom's canonical string to its 1-based dictionary id.
	dict   map[string]uint64
	dirty  bool // appended since the last sync
	closed bool
}

// Create creates a fresh log at path, writes the header record and makes
// the file durable (unless the policy is SyncOff). An existing file at path
// is truncated: session ids are never reused, so a leftover can only be
// damage from a previous crash of the same session id space.
func Create(path string, h Header, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	l := &Log{f: f, path: path, policy: policy, dict: map[string]uint64{}}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write magic: %w", err)
	}
	global.bytes.Add(uint64(len(magic)))
	var p payload
	p.byte(recHeader)
	p.bytes([]byte(h.App))
	p.bytes([]byte(h.Program))
	p.atoms(l.dict, h.Base)
	p.uvarint(h.StartSeq)
	if err := l.append(p); err != nil {
		f.Close()
		return nil, err
	}
	// The header must survive a crash even under the group policy: it is
	// written once, before any commit is acknowledged against it.
	if policy != SyncOff {
		if err := l.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// Append logs one committed delta. Under SyncPerCommit the record is
// durable when Append returns; under SyncGroup the caller issues Sync once
// per group commit; under SyncOff durability is best-effort.
func (l *Log) Append(d Delta) error {
	var p payload
	p.byte(recDelta)
	p.uvarint(d.Seq)
	p.atoms(l.dictLocked(), d.Add)
	p.atoms(l.dict, d.Retract)
	return l.appendPolicy(p)
}

// AppendAbort marks the delta logged under seq as never applied: the batch
// failed after it was logged, and replay must skip it.
func (l *Log) AppendAbort(seq uint64) error {
	var p payload
	p.byte(recAbort)
	p.uvarint(seq)
	return l.appendPolicy(p)
}

// dictLocked returns the dictionary; encoding happens outside l.mu but the
// serving layer serializes appends per log, so the map is single-writer.
func (l *Log) dictLocked() map[string]uint64 { return l.dict }

func (l *Log) appendPolicy(p payload) error {
	if err := l.append(p); err != nil {
		return err
	}
	if l.policy == SyncPerCommit {
		return l.Sync()
	}
	return nil
}

// append frames and writes one record.
func (l *Log) append(p payload) error {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p.buf)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p.buf))
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, err := l.f.Write(frame[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(p.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	global.appends.Add(1)
	global.bytes.Add(uint64(len(frame) + len(p.buf)))
	return nil
}

// Sync flushes appended records to stable storage. It is a no-op when
// nothing was appended since the last sync or the policy is SyncOff.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.dirty || l.policy == SyncOff {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	global.syncs.Add(1)
	return nil
}

// SyncBatcher coalesces fsyncs across sessions. The per-session group
// committer already amortizes one fsync over every write coalesced into a
// commit window, but concurrent sessions each still pay their own: N busy
// sessions cost N fsyncs per window even though the device serializes them
// anyway. A SyncBatcher funnels those through a lazy leader — the first
// caller to arrive while no flush is running flushes every pending log (one
// fsync per distinct log, shared by all of that log's waiters) and keeps
// flushing while new requests pile up behind it; everyone else parks until
// the round covering their log completes. Callers for the same log that
// land in one window share a single fsync, which is the cross-session
// saving the SyncsSaved counter reports.
//
// Durability is unchanged: Sync returns only after an fsync that began
// after the caller's records were appended has completed, exactly the
// guarantee of calling Log.Sync directly.
type SyncBatcher struct {
	mu      sync.Mutex
	leading bool
	pending map[*Log]*syncWait
}

// syncWait is one pending log's flush rendezvous: every caller for that log
// in the current window blocks on done and shares err.
type syncWait struct {
	done chan struct{}
	err  error
}

// NewSyncBatcher returns an empty batcher; the serving layer creates one per
// process when the group sync policy is active.
func NewSyncBatcher() *SyncBatcher {
	return &SyncBatcher{pending: map[*Log]*syncWait{}}
}

// Sync makes every record appended to l before the call durable, combining
// the fsync with other sessions' concurrent requests when possible.
func (b *SyncBatcher) Sync(l *Log) error {
	global.batchedSyncs.Add(1)
	b.mu.Lock()
	w, joined := b.pending[l]
	if !joined {
		w = &syncWait{done: make(chan struct{})}
		b.pending[l] = w
	} else {
		global.syncsSaved.Add(1)
	}
	if b.leading {
		// A leader is flushing; it re-checks pending before stepping down,
		// so this entry is guaranteed a round. Park until it completes.
		b.mu.Unlock()
		<-w.done
		return w.err
	}
	b.leading = true
	for len(b.pending) > 0 {
		batch := b.pending
		b.pending = map[*Log]*syncWait{}
		b.mu.Unlock()
		global.groupWindows.Add(1)
		for log, bw := range batch {
			bw.err = log.Sync()
			close(bw.done)
		}
		b.mu.Lock()
	}
	b.leading = false
	b.mu.Unlock()
	return w.err
}

// Close syncs (policy permitting) and closes the file. Appends after Close
// return ErrClosed; Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.dirty && l.policy != SyncOff {
		if serr := l.f.Sync(); serr == nil {
			global.syncs.Add(1)
		} else {
			err = serr
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Path returns the file path the log appends to.
func (l *Log) Path() string { return l.path }

// payload builds one record payload.
type payload struct{ buf []byte }

func (p *payload) byte(b byte) { p.buf = append(p.buf, b) }

func (p *payload) uvarint(v uint64) {
	p.buf = binary.AppendUvarint(p.buf, v)
}

func (p *payload) bytes(b []byte) {
	p.uvarint(uint64(len(b)))
	p.buf = append(p.buf, b...)
}

// atoms encodes an atom list against the log dictionary: known atoms as
// their 1-based id, new atoms as id 0 followed by their canonical bytes
// (assigning the next dense id).
func (p *payload) atoms(dict map[string]uint64, list []ast.Atom) {
	p.uvarint(uint64(len(list)))
	for _, a := range list {
		key := a.String()
		if id, ok := dict[key]; ok {
			p.uvarint(id)
			continue
		}
		p.uvarint(0)
		p.bytes([]byte(key))
		dict[key] = uint64(len(dict) + 1)
	}
}

// Recovered is the result of replaying a log: the decoded header, every
// committed delta of the valid prefix in commit order, and enough state to
// resume appending after the prefix.
type Recovered struct {
	Header Header
	// Deltas lists the committed write batches in commit order, including
	// aborted ones; Aborted marks the sequence numbers replay must skip.
	Deltas  []Delta
	Aborted map[uint64]bool
	// Truncated reports that damaged or torn tail bytes were discarded.
	Truncated bool

	path   string
	offset int64    // end of the valid prefix
	dict   []string // dictionary state at the end of the prefix
}

// LastSeq returns the highest commit sequence number the log accounts for
// (the header's StartSeq when no delta was ever logged). Aborted sequence
// numbers count: they were issued.
func (r *Recovered) LastSeq() uint64 {
	max := r.Header.StartSeq
	for _, d := range r.Deltas {
		if d.Seq > max {
			max = d.Seq
		}
	}
	for seq := range r.Aborted {
		if seq > max {
			max = seq
		}
	}
	return max
}

// Live returns the deltas replay should apply: the committed prefix minus
// aborted batches, in commit order.
func (r *Recovered) Live() []Delta {
	out := make([]Delta, 0, len(r.Deltas))
	for _, d := range r.Deltas {
		if !r.Aborted[d.Seq] {
			out = append(out, d)
		}
	}
	return out
}

// OpenAppend truncates any damaged tail and reopens the log for appending
// with the recovered dictionary, so a restored session keeps writing the
// same file.
func (r *Recovered) OpenAppend(policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(r.path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: reopen: %w", err)
	}
	if err := f.Truncate(r.offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate damaged tail: %w", err)
	}
	if _, err := f.Seek(r.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	dict := make(map[string]uint64, len(r.dict))
	for i, s := range r.dict {
		dict[s] = uint64(i + 1)
	}
	return &Log{f: f, path: r.path, policy: policy, dict: dict}, nil
}

// Replay reads the longest valid prefix of the log at path. It fails only
// when the file cannot be read at all or its header is unreadable — there
// is no session to restore without one; tail damage is reported through
// Recovered.Truncated instead of an error.
func Replay(path string) (*Recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("wal: %s: bad magic", path)
	}
	r := &Recovered{Aborted: map[uint64]bool{}, path: path}
	dec := decoder{}
	pos := int64(len(magic))
	sawHeader := false
	for {
		payload, next, ok := frame(data, pos)
		if !ok {
			r.Truncated = next != int64(len(data)) || pos != int64(len(data))
			break
		}
		if err := dec.record(payload, r, sawHeader); err != nil {
			// A record that frames correctly but does not decode is
			// corruption like any other: the prefix before it stands.
			r.Truncated = true
			break
		}
		sawHeader = true
		pos = next
		r.offset = pos
	}
	if !sawHeader {
		return nil, fmt.Errorf("wal: %s: no readable header record", path)
	}
	r.dict = dec.dict
	global.replays.Add(1)
	return r, nil
}

// frame extracts one record payload at pos, returning (payload, next
// offset, true) or (nil, end-of-valid-bytes, false) on a torn or corrupt
// frame.
func frame(data []byte, pos int64) ([]byte, int64, bool) {
	if pos+8 > int64(len(data)) {
		return nil, pos, false
	}
	n := int64(binary.LittleEndian.Uint32(data[pos : pos+4]))
	sum := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
	if n > maxRecord || pos+8+n > int64(len(data)) {
		return nil, pos, false
	}
	payload := data[pos+8 : pos+8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, pos, false
	}
	return payload, pos + 8 + n, true
}

// decoder decodes record payloads, growing the dictionary as atom
// definitions stream past.
type decoder struct {
	dict  []string
	atoms []ast.Atom // parsed form, parallel to dict
}

func (d *decoder) record(p []byte, r *Recovered, sawHeader bool) error {
	if len(p) == 0 {
		return errors.New("empty record")
	}
	typ, p := p[0], p[1:]
	switch typ {
	case recHeader:
		if sawHeader {
			return errors.New("duplicate header record")
		}
		app, p, err := readBytes(p)
		if err != nil {
			return err
		}
		prog, p, err := readBytes(p)
		if err != nil {
			return err
		}
		base, p, err := d.readAtoms(p)
		if err != nil {
			return err
		}
		// StartSeq was added for compaction; logs written before it simply
		// end here and read as StartSeq 0 (a from-the-beginning log).
		var startSeq uint64
		if len(p) != 0 {
			if startSeq, p, err = readUvarint(p); err != nil {
				return err
			}
		}
		if len(p) != 0 {
			return errors.New("trailing bytes in header record")
		}
		r.Header = Header{App: string(app), Program: string(prog), Base: base, StartSeq: startSeq}
	case recDelta:
		if !sawHeader {
			return errors.New("delta before header")
		}
		seq, p, err := readUvarint(p)
		if err != nil {
			return err
		}
		add, p, err := d.readAtoms(p)
		if err != nil {
			return err
		}
		retract, p, err := d.readAtoms(p)
		if err != nil {
			return err
		}
		if len(p) != 0 {
			return errors.New("trailing bytes in delta record")
		}
		r.Deltas = append(r.Deltas, Delta{Seq: seq, Add: add, Retract: retract})
	case recAbort:
		if !sawHeader {
			return errors.New("abort before header")
		}
		seq, p, err := readUvarint(p)
		if err != nil {
			return err
		}
		if len(p) != 0 {
			return errors.New("trailing bytes in abort record")
		}
		r.Aborted[seq] = true
	default:
		return fmt.Errorf("unknown record type %d", typ)
	}
	return nil
}

func (d *decoder) readAtoms(p []byte) ([]ast.Atom, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) { // each atom needs at least one byte
		return nil, nil, errors.New("atom count overruns record")
	}
	out := make([]ast.Atom, 0, n)
	for i := uint64(0); i < n; i++ {
		var id uint64
		id, p, err = readUvarint(p)
		if err != nil {
			return nil, nil, err
		}
		if id == 0 {
			var raw []byte
			raw, p, err = readBytes(p)
			if err != nil {
				return nil, nil, err
			}
			a, err := parser.ParseAtom(string(raw))
			if err != nil {
				return nil, nil, fmt.Errorf("atom %q: %w", raw, err)
			}
			if !a.IsGround() {
				return nil, nil, fmt.Errorf("atom %q: not ground", raw)
			}
			d.dict = append(d.dict, string(raw))
			d.atoms = append(d.atoms, a)
			out = append(out, a)
			continue
		}
		if id > uint64(len(d.atoms)) {
			return nil, nil, fmt.Errorf("atom id %d beyond dictionary (%d entries)", id, len(d.atoms))
		}
		out = append(out, d.atoms[id-1])
	}
	return out, p, nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errors.New("bad uvarint")
	}
	return v, p[n:], nil
}

func readBytes(p []byte) ([]byte, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, errors.New("byte string overruns record")
	}
	return p[:n], p[n:], nil
}
