package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func atom(t testing.TB, src string) ast.Atom {
	t.Helper()
	a, err := parser.ParseAtom(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return a
}

func atoms(t testing.TB, srcs ...string) []ast.Atom {
	out := make([]ast.Atom, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, atom(t, s))
	}
	return out
}

func sameAtoms(a, b []ast.Atom) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

func testHeader(t testing.TB) Header {
	return Header{
		App:     "company-control",
		Program: "sha256:deadbeef",
		Base:    atoms(t, `own("a","b",60)`, `own("b","c",80)`),
	}
}

func testDeltas(t testing.TB) []Delta {
	return []Delta{
		{Seq: 1, Add: atoms(t, `own("c","d",55)`)},
		{Seq: 2, Retract: atoms(t, `own("a","b",60)`)},
		// Repeats exercise the dictionary path: own("c","d",55) and the
		// header base atoms are already interned.
		{Seq: 3, Add: atoms(t, `own("a","b",60)`, `own("x","y",10)`), Retract: atoms(t, `own("c","d",55)`)},
	}
}

func writeLog(t testing.TB, dir string, policy SyncPolicy) string {
	t.Helper()
	path := filepath.Join(dir, "s1.wal")
	l, err := Create(path, testHeader(t), policy)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, d := range testDeltas(t) {
		if err := l.Append(d); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestRoundtrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncGroup, SyncPerCommit, SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			path := writeLog(t, t.TempDir(), policy)
			r, err := Replay(path)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if r.Truncated {
				t.Fatal("clean log reported truncated")
			}
			h := testHeader(t)
			if r.Header.App != h.App || r.Header.Program != h.Program || !sameAtoms(r.Header.Base, h.Base) {
				t.Fatalf("header mismatch: %+v", r.Header)
			}
			want := testDeltas(t)
			if len(r.Deltas) != len(want) {
				t.Fatalf("got %d deltas, want %d", len(r.Deltas), len(want))
			}
			for i := range want {
				if r.Deltas[i].Seq != want[i].Seq ||
					!sameAtoms(r.Deltas[i].Add, want[i].Add) ||
					!sameAtoms(r.Deltas[i].Retract, want[i].Retract) {
					t.Fatalf("delta %d mismatch: got %+v want %+v", i, r.Deltas[i], want[i])
				}
			}
			if got := r.LastSeq(); got != 3 {
				t.Fatalf("LastSeq = %d, want 3", got)
			}
		})
	}
}

func TestAbortSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s1.wal")
	l, err := Create(path, testHeader(t), SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Delta{Seq: 1, Add: atoms(t, `own("c","d",55)`)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Delta{Seq: 2, Add: atoms(t, `own("d","e",55)`)}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAbort(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Delta{Seq: 3, Add: atoms(t, `own("e","f",55)`)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	live := r.Live()
	if len(live) != 2 || live[0].Seq != 1 || live[1].Seq != 3 {
		t.Fatalf("Live() = %+v, want seqs [1 3]", live)
	}
	if got := r.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
}

// TestCorruptionMatrix truncates the log at every byte offset and flips a
// byte at every offset, asserting replay always yields a valid prefix of
// the uninterrupted log and never an error (past the header) or a mangled
// delta.
func TestCorruptionMatrix(t *testing.T) {
	path := writeLog(t, t.TempDir(), SyncOff)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	// isPrefix checks r's deltas form a prefix of the oracle's.
	isPrefix := func(r *Recovered) bool {
		if len(r.Deltas) > len(oracle.Deltas) {
			return false
		}
		for i, d := range r.Deltas {
			o := oracle.Deltas[i]
			if d.Seq != o.Seq || !sameAtoms(d.Add, o.Add) || !sameAtoms(d.Retract, o.Retract) {
				return false
			}
		}
		return true
	}
	headerEnd := int64(len(magic))
	if p, next, ok := frame(clean, headerEnd); !ok || p[0] != recHeader {
		t.Fatal("cannot locate header record")
	} else {
		headerEnd = next
	}
	// Record boundaries: a cut exactly at one is indistinguishable from a
	// shorter valid log, so Truncated is only required for mid-record cuts.
	boundary := map[int]bool{len(magic): true}
	for pos := int64(len(magic)); ; {
		_, next, ok := frame(clean, pos)
		if !ok {
			break
		}
		boundary[int(next)] = true
		pos = next
	}

	dir := t.TempDir()
	check := func(t *testing.T, data []byte, headerIntact bool) {
		mut := filepath.Join(dir, "mut.wal")
		if err := os.WriteFile(mut, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Replay(mut)
		if !headerIntact {
			// Damage inside magic or the header record may make the whole
			// log unreadable — that is allowed; a readable result must
			// still be a valid prefix.
			if err != nil {
				return
			}
		} else if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		if !isPrefix(r) {
			t.Fatalf("recovered deltas are not a prefix of the oracle: %+v", r.Deltas)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut <= len(clean); cut++ {
			check(t, clean[:cut], int64(cut) >= headerEnd)
			if int64(cut) >= headerEnd {
				// A truncated-but-readable log must notice missing bytes.
				mut := filepath.Join(dir, "mut.wal")
				os.WriteFile(mut, clean[:cut], 0o644)
				r, err := Replay(mut)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				if cut < len(clean) && !boundary[cut] && !r.Truncated {
					t.Fatalf("cut %d: mid-record truncation not reported", cut)
				}
			}
		}
	})
	t.Run("flip", func(t *testing.T) {
		for off := 0; off < len(clean); off++ {
			data := bytes.Clone(clean)
			data[off] ^= 0x5a
			check(t, data, false)
		}
	})
	t.Run("garbage-tail", func(t *testing.T) {
		data := append(bytes.Clone(clean), 0xff, 0xff, 0xff, 0x7f, 1, 2, 3)
		mut := filepath.Join(dir, "mut.wal")
		os.WriteFile(mut, data, 0o644)
		r, err := Replay(mut)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Truncated || !isPrefix(r) || len(r.Deltas) != len(oracle.Deltas) {
			t.Fatalf("garbage tail: Truncated=%v deltas=%d", r.Truncated, len(r.Deltas))
		}
	})
}

// TestOpenAppend corrupts the tail, replays, resumes appending and checks
// the resumed log replays to prefix + new delta with the dictionary intact.
func TestOpenAppend(t *testing.T) {
	path := writeLog(t, t.TempDir(), SyncOff)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	if err := os.WriteFile(path, clean[:len(clean)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Truncated || len(r.Deltas) != 2 {
		t.Fatalf("Truncated=%v deltas=%d, want torn tail with 2 deltas", r.Truncated, len(r.Deltas))
	}
	l, err := r.OpenAppend(SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	// Re-log seq 3 with a dictionary-hit atom from the header base.
	if err := l.Append(Delta{Seq: 3, Add: atoms(t, `own("a","b",60)`)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Truncated || len(r2.Deltas) != 3 {
		t.Fatalf("after resume: Truncated=%v deltas=%d", r2.Truncated, len(r2.Deltas))
	}
	last := r2.Deltas[2]
	if last.Seq != 3 || !sameAtoms(last.Add, atoms(t, `own("a","b",60)`)) {
		t.Fatalf("resumed delta mismatch: %+v", last)
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s1.wal")
	l, err := Create(path, testHeader(t), SyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(Delta{Seq: 1}); err != ErrClosed {
		t.Fatalf("Append after close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v, want ErrClosed", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"group", SyncGroup, false},
		{"per-commit", SyncPerCommit, false},
		{"off", SyncOff, false},
		{"always", 0, true},
		{"", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncPerCommit.String() != "per-commit" || SyncGroup.String() != "group" || SyncOff.String() != "off" {
		t.Fatal("SyncPolicy.String mismatch")
	}
}

func TestReplayErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Replay(filepath.Join(dir, "missing.wal")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.wal")
	os.WriteFile(bad, []byte("not a wal file"), 0o644)
	if _, err := Replay(bad); err == nil {
		t.Fatal("bad magic: want error")
	}
	empty := filepath.Join(dir, "empty.wal")
	os.WriteFile(empty, magic[:], 0o644)
	if _, err := Replay(empty); err == nil {
		t.Fatal("magic without header: want error")
	}
}

// FuzzWALReplay drives random delta sequences through write+replay and
// random mutations through the prefix property.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint64(3), []byte{0, 1, 2, 3}, -1, byte(0))
	f.Add(uint64(7), []byte{5, 4, 3, 2, 1, 0}, 20, byte(0x5a))
	f.Add(uint64(1), []byte{}, 5, byte(0xff))
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte, mutate int, flip byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		// Deterministically derive a delta sequence from ops.
		mk := func(i int, b byte) Delta {
			d := Delta{Seq: uint64(i + 1)}
			n := int(b%3) + 1
			for j := 0; j < n; j++ {
				a := atom(t, fmt.Sprintf(`own("n%d","n%d",%d)`, (int(b)+j)%9, (int(b)*7+j)%9, seed%100))
				if (int(b)+j)%4 == 0 {
					d.Retract = append(d.Retract, a)
				} else {
					d.Add = append(d.Add, a)
				}
			}
			return d
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "f.wal")
		h := Header{App: "fuzz", Program: "p", Base: atoms(t, fmt.Sprintf(`own("b","b",%d)`, seed%50))}
		l, err := Create(path, h, SyncOff)
		if err != nil {
			t.Fatal(err)
		}
		var want []Delta
		for i, b := range ops {
			d := mk(i, b)
			if err := l.Append(d); err != nil {
				t.Fatal(err)
			}
			want = append(want, d)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := Replay(path)
		if err != nil {
			t.Fatal(err)
		}
		if r.Truncated || len(r.Deltas) != len(want) {
			t.Fatalf("clean replay: Truncated=%v got %d deltas want %d", r.Truncated, len(r.Deltas), len(want))
		}
		for i := range want {
			if r.Deltas[i].Seq != want[i].Seq ||
				!sameAtoms(r.Deltas[i].Add, want[i].Add) ||
				!sameAtoms(r.Deltas[i].Retract, want[i].Retract) {
				t.Fatalf("delta %d mismatch", i)
			}
		}
		// Mutate and require the prefix property.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if mutate >= 0 && mutate < len(data) {
			data[mutate] ^= flip | 1
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			r2, err := Replay(path)
			if err != nil {
				return // header damage: whole log rejected, acceptable
			}
			if len(r2.Deltas) > len(want) {
				t.Fatal("mutation grew the log")
			}
			for i := range r2.Deltas {
				if r2.Deltas[i].Seq != want[i].Seq ||
					!sameAtoms(r2.Deltas[i].Add, want[i].Add) ||
					!sameAtoms(r2.Deltas[i].Retract, want[i].Retract) {
					t.Fatalf("mutated replay: delta %d is not an oracle prefix", i)
				}
			}
		}
	})
}

// TestSyncBatcherSharesFsync drives many concurrent Sync requests against
// one log through a batcher: every caller must return durably (no error),
// and at least some requests must have piggybacked on another's fsync
// (SyncsSaved advances) while flush rounds stay bounded by requests.
func TestSyncBatcherSharesFsync(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(filepath.Join(dir, "s1.wal"), testHeader(t), SyncGroup)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()

	before := GlobalStats()
	b := NewSyncBatcher()
	const callers = 32
	errs := make(chan error, callers)
	var wg sync.WaitGroup
	// Appends are single-writer per log (the committer serializes them);
	// only the Sync requests race, which is the path under test.
	var appendMu sync.Mutex
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			appendMu.Lock()
			err := l.Append(Delta{Seq: uint64(i + 1), Add: atoms(t, fmt.Sprintf(`own("w%d","t",1)`, i))})
			appendMu.Unlock()
			if err != nil {
				errs <- err
				return
			}
			errs <- b.Sync(l)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("batched sync: %v", err)
		}
	}
	after := GlobalStats()
	if got := after.BatchedSyncs - before.BatchedSyncs; got != callers {
		t.Fatalf("BatchedSyncs advanced by %d, want %d", got, callers)
	}
	if after.GroupWindows == before.GroupWindows {
		t.Fatal("no flush round was led")
	}
	windows := after.GroupWindows - before.GroupWindows
	saved := after.SyncsSaved - before.SyncsSaved
	if windows+saved > callers {
		t.Fatalf("accounting overruns requests: windows=%d saved=%d callers=%d", windows, saved, callers)
	}
}

// TestSyncBatcherManyLogs checks a flush round covers several distinct
// logs: all waiters complete, every log's records are durable and
// replayable afterward.
func TestSyncBatcherManyLogs(t *testing.T) {
	dir := t.TempDir()
	const logs = 8
	b := NewSyncBatcher()
	var wg sync.WaitGroup
	paths := make([]string, logs)
	errs := make(chan error, logs)
	for i := 0; i < logs; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.wal", i+1))
		l, err := Create(paths[i], testHeader(t), SyncGroup)
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		wg.Add(1)
		go func(l *Log) {
			defer wg.Done()
			defer l.Close()
			for _, d := range testDeltas(t) {
				if err := l.Append(d); err != nil {
					errs <- err
					return
				}
				if err := b.Sync(l); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("session: %v", err)
		}
	}
	want := testDeltas(t)
	for _, p := range paths {
		r, err := Replay(p)
		if err != nil {
			t.Fatalf("Replay %s: %v", p, err)
		}
		if len(r.Deltas) != len(want) {
			t.Fatalf("%s: %d deltas, want %d", p, len(r.Deltas), len(want))
		}
	}
}

// TestSyncBatcherClosedLog: a closed log's waiters get ErrClosed while
// other logs in the same round still flush cleanly.
func TestSyncBatcherClosedLog(t *testing.T) {
	dir := t.TempDir()
	closed, err := Create(filepath.Join(dir, "dead.wal"), testHeader(t), SyncGroup)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := closed.Append(testDeltas(t)[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := closed.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	live, err := Create(filepath.Join(dir, "live.wal"), testHeader(t), SyncGroup)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer live.Close()
	if err := live.Append(testDeltas(t)[0]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	b := NewSyncBatcher()
	if err := b.Sync(closed); err != ErrClosed {
		t.Fatalf("closed log sync = %v, want ErrClosed", err)
	}
	if err := b.Sync(live); err != nil {
		t.Fatalf("live log sync: %v", err)
	}
}
