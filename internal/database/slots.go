package database

// Slot-based matching: the allocation-free counterpart of MatchBind used by
// the compiled-plan join executor (internal/chase/plan.go).
//
// Where MatchBind clones a map[string]Term per candidate fact, the slot API
// writes interned value ids into a caller-owned flat binding frame. A
// SlotPattern is a rule body atom compiled against a fixed join order: every
// argument position is pre-resolved to either a constant id, a frame slot
// that is already bound when the atom is reached, or a frame slot the atom
// binds. Matching a candidate row is then a handful of int32 comparisons and
// stores — zero allocations per candidate.
//
// All slot methods only read the store (SlotWrite writes the caller's frame,
// never the store) and are safe under the reader side of the Store
// concurrency contract.

import "repro/internal/term"

// SlotOpKind says how one argument position of a SlotPattern constrains a
// candidate row against the binding frame.
type SlotOpKind uint8

const (
	// SlotConst requires row[pos] == Val (a pre-interned constant).
	SlotConst SlotOpKind = iota
	// SlotBound requires row[pos] == frame[Slot], where the slot was bound
	// by an earlier atom of the join order. Bound slots participate in
	// index-bucket selection.
	SlotBound
	// SlotWrite binds frame[Slot] = row[pos]: the first occurrence of a
	// free variable. The write happens unconditionally while the row is
	// scanned; callers treat write slots as scratch until the whole
	// pattern has matched.
	SlotWrite
	// SlotSame requires row[pos] == frame[Slot] where the slot was written
	// by an earlier position of this same pattern (a repeated variable,
	// e.g. Own(X, X)). Unlike SlotBound it carries no value before the
	// row scan, so it is excluded from bucket selection.
	SlotSame
)

// SlotOp is the compiled constraint of one argument position.
type SlotOp struct {
	Kind SlotOpKind
	// Slot is the frame index for SlotBound/SlotWrite/SlotSame.
	Slot int
	// Val is the constant id for SlotConst.
	Val term.ValueID
}

// SlotPattern is an atom compiled against a fixed join order: one SlotOp per
// argument position.
type SlotPattern struct {
	Predicate string
	Ops       []SlotOp
}

// CandidatesSlots picks the smallest index bucket applicable to the pattern
// under the current frame, mirroring the bucket choice of Match/MatchBind:
// the per-predicate extent and every SlotConst or SlotBound position
// compete, first smallest wins. The returned slice is shared; callers must
// not mutate it.
func (s *Store) CandidatesSlots(p SlotPattern, frame []term.ValueID) []FactID {
	best := s.byPred[p.Predicate]
	for pos := range p.Ops {
		var v term.ValueID
		switch p.Ops[pos].Kind {
		case SlotConst:
			v = p.Ops[pos].Val
		case SlotBound:
			v = frame[p.Ops[pos].Slot]
		default:
			continue
		}
		bucket := s.index[indexKey{p.Predicate, pos, v}]
		if len(bucket) < len(best) {
			best = bucket
		}
	}
	return best
}

// BindRowSlots matches the fact's row against the pattern, writing SlotWrite
// positions into the frame as it scans left to right. It reports whether the
// row matches; on a mismatch, write slots scanned before the failing
// position retain the candidate's values (they are scratch until the next
// candidate or a successful match).
func (s *Store) BindRowSlots(p SlotPattern, id FactID, frame []term.ValueID) bool {
	row := s.rows[id]
	if len(row) != len(p.Ops) {
		return false
	}
	for pos := range p.Ops {
		op := &p.Ops[pos]
		switch op.Kind {
		case SlotConst:
			if row[pos] != op.Val {
				return false
			}
		case SlotBound, SlotSame:
			if row[pos] != frame[op.Slot] {
				return false
			}
		case SlotWrite:
			frame[op.Slot] = row[pos]
		}
	}
	return true
}

// MatchBindSlots yields every fact matching the pattern under the frame, in
// candidate (insertion) order. For each yielded fact the frame's SlotWrite
// slots hold that fact's values; the frame is reused across candidates, so
// the callback must consume (or copy) the bindings before returning true to
// continue. No per-candidate allocation occurs.
func (s *Store) MatchBindSlots(p SlotPattern, frame []term.ValueID, yield func(f *Fact) bool) {
	for _, id := range s.CandidatesSlots(p, frame) {
		if s.BindRowSlots(p, id, frame) {
			if !yield(s.facts[id]) {
				return
			}
		}
	}
}
