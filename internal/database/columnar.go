package database

// Columnar sorted indexes: the storage half of the batch-at-a-time join
// executor (internal/chase/batch.go).
//
// For every predicate the store can materialize a column-major mirror of the
// predicate's live extent: ids is the live fact-id list in ascending order
// (the "dense" numbering 0..n-1), cols[pos][k] is the interned value at
// argument position pos of the k-th live fact, and per position a
// permutation of the dense indexes sorted by (value, dense index). A probe
// for "all facts with value v at position p" is a binary search yielding a
// run of dense indexes, and checking the remaining positions of each
// candidate reads other dense columns — no per-row slice header is touched.
// Because ids is ascending, dense order is fact-id order, which is exactly
// the candidate order the hash-index buckets of Match/CandidatesSlots
// enumerate; that is what keeps the batch executor byte-identical to the
// tuple-at-a-time one.
//
// # Maintenance
//
// Indexes are built lazily and maintained with a two-run scheme (a small
// LSM): the base runs cover the dense prefix [0, baseN) incorporated at the
// last full sort, the tail runs cover [baseN, n) and are re-sorted per
// refresh, and the tail is merged into the base once it outgrows a quarter
// of it, keeping total merge work O(n log n) over the life of the index. A
// probe consults both runs; every base candidate precedes every tail
// candidate in dense order, so the two runs concatenate without merging.
//
// Sorted runs are built per position, on demand: the batch executor only
// ever probes positions its compiled plans bind to a constant or an
// already-bound slot, so EnsureColumnarRuns sorts exactly those (the write
// positions of a million-row predicate never pay a sort). EnsureColumnar
// without a position list is the build-everything form used by tests and
// ad-hoc callers. Large runs sort by a two-pass LSD radix on the 32-bit
// value id rather than a comparator sort — the input dense order makes the
// stable radix produce the (value, dense) order directly — which keeps the
// index build a small fraction of a million-fact join.
//
// Retraction is the rare, expensive path: tombstoning any fact of a
// predicate marks its index stale and the next refresh rebuilds it from the
// live extent. The incremental maintainer retracts in batches between
// saturation passes, so one rebuild amortizes a whole over-delete closure.
//
// # Coherence contract
//
// Refresh mutates the store (it is a writer in the Store concurrency
// contract) and is therefore forbidden during a frozen snapshot phase:
// EnsureColumnar panics if called with pending work while frozen. The chase
// engine refreshes every body predicate before freezing for a parallel join
// phase; sequential passes refresh lazily. All other Columnar methods only
// read and are safe alongside any number of concurrent readers.
//
// Maintenance work is counted per store (Store.ColumnarStats) and aggregated
// process-wide (GlobalColumnarStats) so serving-tier regressions — e.g. a
// workload that retracts so often every probe rebuilds — are observable on
// the /stats endpoint.

import (
	"slices"
	"sort"
	"sync/atomic"

	"repro/internal/term"
)

// ColumnarStats counts index-maintenance work — full rebuilds (first build or
// post-retraction), tail→base merges, refreshes that only re-sorted the
// tail, and the total rows appended into tails — plus the join-path
// selection counters the batch executor reports back: how many extension
// passes ran as a sorted merge (leapfrog triejoin), as per-tuple run probes,
// as dense-extent scans, or fell back to the tuple-at-a-time frame executor,
// and the iterator work (seeks, galloping steps) the merge passes did.
type ColumnarStats struct {
	Rebuilds      uint64 `json:"rebuilds"`
	Merges        uint64 `json:"merges"`
	TailRefreshes uint64 `json:"tailRefreshes"`
	AppendedRows  uint64 `json:"appendedRows"`
	// Join-path selection (reported by internal/chase/batch.go).
	TriejoinPasses uint64 `json:"triejoinPasses"`
	ProbePasses    uint64 `json:"probePasses"`
	ScanPasses     uint64 `json:"scanPasses"`
	FrameFallbacks uint64 `json:"frameFallbacks"`
	Seeks          uint64 `json:"seeks"`
	GallopSteps    uint64 `json:"gallopSteps"`
}

// globalColumnar aggregates maintenance counters across every store in the
// process for the serving tier's /stats endpoint (sessions own independent
// stores; the per-store counters die with them).
var globalColumnar struct {
	rebuilds, merges, tailRefreshes, appended       atomic.Uint64
	triejoin, probe, scan, fallback, seeks, gallops atomic.Uint64
}

// GlobalColumnarStats snapshots the process-wide columnar maintenance
// counters.
func GlobalColumnarStats() ColumnarStats {
	return ColumnarStats{
		Rebuilds:       globalColumnar.rebuilds.Load(),
		Merges:         globalColumnar.merges.Load(),
		TailRefreshes:  globalColumnar.tailRefreshes.Load(),
		AppendedRows:   globalColumnar.appended.Load(),
		TriejoinPasses: globalColumnar.triejoin.Load(),
		ProbePasses:    globalColumnar.probe.Load(),
		ScanPasses:     globalColumnar.scan.Load(),
		FrameFallbacks: globalColumnar.fallback.Load(),
		Seeks:          globalColumnar.seeks.Load(),
		GallopSteps:    globalColumnar.gallops.Load(),
	}
}

// ColumnarStats snapshots this store's columnar maintenance counters.
func (s *Store) ColumnarStats() ColumnarStats { return s.colStats }

// AddJoinStats folds a batch of join-path selection counters into the
// store's (and the process-wide) columnar stats. The batch executor
// accumulates counters locally during its read-only (possibly frozen and
// concurrent) join phase and flushes them here once per join, from the
// single-threaded side of the phase boundary.
func (s *Store) AddJoinStats(d ColumnarStats) {
	s.colStats.TriejoinPasses += d.TriejoinPasses
	s.colStats.ProbePasses += d.ProbePasses
	s.colStats.ScanPasses += d.ScanPasses
	s.colStats.FrameFallbacks += d.FrameFallbacks
	s.colStats.Seeks += d.Seeks
	s.colStats.GallopSteps += d.GallopSteps
	globalColumnar.triejoin.Add(d.TriejoinPasses)
	globalColumnar.probe.Add(d.ProbePasses)
	globalColumnar.scan.Add(d.ScanPasses)
	globalColumnar.fallback.Add(d.FrameFallbacks)
	globalColumnar.seeks.Add(d.Seeks)
	globalColumnar.gallops.Add(d.GallopSteps)
}

// colRun is one sorted run of a positional permutation: dense indexes sorted
// by (value at the position, dense index), with the values alongside so the
// binary search walks one contiguous array.
type colRun struct {
	ks   []int32
	vals []term.ValueID
}

// search returns the subrange of the run holding value v; dense indexes
// within it are ascending (the sort tie-breaks on the index).
func (r *colRun) search(v term.ValueID) (lo, hi int) {
	lo = sort.Search(len(r.vals), func(i int) bool { return r.vals[i] >= v })
	hi = lo + sort.Search(len(r.vals)-lo, func(i int) bool { return r.vals[lo+i] > v })
	return lo, hi
}

// Columnar is the sorted columnar index of one predicate. It is owned by the
// store; callers obtain it through EnsureColumnar and must treat it as
// read-only.
type Columnar struct {
	pred string
	// ids maps dense index → fact id; ascending, so dense order is id
	// order. cols[pos][k] is the value of fact ids[k] at position pos
	// (term.NoValue when the fact's arity is ≤ pos); lens[k] is its arity.
	ids  []FactID
	cols [][]term.ValueID
	lens []int32
	// base and tail are the per-position sorted runs: base permutes the
	// dense prefix [0, baseN), tail the suffix [baseN, len(ids)).
	base  []colRun
	tail  []colRun
	baseN int
	// distinct[pos] counts distinct values in the base run — the
	// selectivity estimate behind AvgRun.
	distinct []int
	// want marks positions whose sorted runs callers asked for; built marks
	// those actually constructed (cleared by a rebuild). wantAll is the
	// EnsureColumnar build-everything form.
	want    []bool
	built   []bool
	wantAll bool
	// incorporated is the store frontier the index covers; stale marks a
	// retraction that invalidates everything until the next rebuild.
	incorporated FactID
	stale        bool
}

// Pred returns the indexed predicate.
func (c *Columnar) Pred() string { return c.pred }

// Extent returns the number of live facts the index covers.
func (c *Columnar) Extent() int { return len(c.ids) }

// ID returns the fact id of dense index k.
func (c *Columnar) ID(k int32) FactID { return c.ids[k] }

// RowLen returns the arity of the fact at dense index k.
func (c *Columnar) RowLen(k int32) int { return int(c.lens[k]) }

// Col returns the dense value column of position pos, or nil when no
// incorporated fact has that position. The column holds term.NoValue for
// facts whose arity is ≤ pos.
func (c *Columnar) Col(pos int) []term.ValueID {
	if pos >= len(c.cols) {
		return nil
	}
	return c.cols[pos]
}

// Runs returns the candidate dense indexes for value v at position pos as
// two ascending runs; every base index precedes every tail index, so
// scanning base then tail visits candidates in dense (= fact id) order.
// The returned slices alias the index; callers must not mutate them. The
// position's runs must have been ensured (EnsureColumnar, or listed in
// EnsureColumnarRuns) — probing an unbuilt position panics.
func (c *Columnar) Runs(pos int, v term.ValueID) (base, tail []int32) {
	if pos < len(c.base) {
		c.checkBuilt(pos)
		lo, hi := c.base[pos].search(v)
		base = c.base[pos].ks[lo:hi]
	}
	if pos < len(c.tail) {
		lo, hi := c.tail[pos].search(v)
		tail = c.tail[pos].ks[lo:hi]
	}
	return base, tail
}

// checkBuilt panics when a probe hits a position whose sorted runs were
// never requested — a caller bug that would otherwise silently return no
// candidates.
func (c *Columnar) checkBuilt(pos int) {
	if !c.built[pos] {
		panic("database: columnar run for " + c.pred + " position not ensured")
	}
}

// RunIter is a seekable cursor over one position's sorted runs (base and LSM
// tail together). Seek positions it at a value by galloping — exponential
// probing from the current cursor, then a binary search inside the located
// window — so a caller walking an ascending key sequence (the leapfrog
// triejoin in internal/chase/batch.go) pays O(log gap) per key instead of
// O(log n), and the total over a full merge pass is linear in the run
// length. Seeking backwards restarts with a full binary search from the run
// start, so the iterator is also correct (just not amortized) for unsorted
// key sequences.
//
// The iterator only reads the index, so any number of iterators may run
// concurrently over a frozen store. Seeks and GallopSteps account the work
// for the join-path counters.
type RunIter struct {
	base, tail *colRun
	bi, ti     int // cursor: first entry not yet known to be < the last sought value
	// Seeks counts Seek calls; GallopSteps counts exponential-probe and
	// binary-search comparisons, the "galloping steps" of the stats.
	Seeks       uint64
	GallopSteps uint64
}

// Iter returns a seekable iterator over the sorted runs of pos. Like Runs,
// the position must have been ensured; iterating an unbuilt position panics.
func (c *Columnar) Iter(pos int) RunIter {
	var it RunIter
	if pos < len(c.base) {
		c.checkBuilt(pos)
		it.base = &c.base[pos]
		it.tail = &c.tail[pos]
	} else {
		it.base = &colRun{}
		it.tail = &colRun{}
	}
	return it
}

// Seek positions the iterator at value v and returns its candidate dense
// indexes as two ascending runs (base then tail, empty when v is absent),
// exactly like Runs. After Seek the cursors rest at the start of v's window,
// so a following Seek to a larger value gallops forward from there.
func (it *RunIter) Seek(v term.ValueID) (base, tail []int32) {
	it.Seeks++
	blo, bhi := it.gallop(it.base, it.bi, v)
	it.bi = blo
	tlo, thi := it.gallop(it.tail, it.ti, v)
	it.ti = tlo
	return it.base.ks[blo:bhi], it.tail.ks[tlo:thi]
}

// gallop locates [lo, hi) of value v in one run, starting from cursor cur.
// A backward seek (v below the value at cur) restarts from the run start.
func (it *RunIter) gallop(r *colRun, cur int, v term.ValueID) (lo, hi int) {
	n := len(r.vals)
	if cur > n {
		cur = n
	}
	if cur > 0 && r.vals[cur-1] >= v {
		// Backward (or repeated) seek: entries before cur may still hold v,
		// so the incremental window is wrong. Restart from 0.
		cur = 0
	}
	// Exponential probe for the first entry >= v, starting at cur.
	step := 1
	probe := cur
	for probe < n && r.vals[probe] < v {
		it.GallopSteps++
		cur = probe + 1
		probe = cur + step
		step *= 2
	}
	if probe > n {
		probe = n
	}
	// Binary search for lo within (cur-1, probe].
	for cur < probe {
		it.GallopSteps++
		mid := int(uint(cur+probe) >> 1)
		if r.vals[mid] < v {
			cur = mid + 1
		} else {
			probe = mid
		}
	}
	lo = cur
	// Gallop again for the end of v's window (values repeat, so hi needs its
	// own search rather than a linear scan).
	step = 1
	end := lo
	probe = lo
	for probe < n && r.vals[probe] <= v {
		it.GallopSteps++
		end = probe + 1
		probe = end + step
		step *= 2
	}
	if probe > n {
		probe = n
	}
	for end < probe {
		it.GallopSteps++
		mid := int(uint(end+probe) >> 1)
		if r.vals[mid] <= v {
			end = mid + 1
		} else {
			probe = mid
		}
	}
	return lo, end
}

// RunLen returns the number of candidates for value v at position pos
// without materializing them (probe-position selection for constants).
func (c *Columnar) RunLen(pos int, v term.ValueID) int {
	b, t := c.Runs(pos, v)
	return len(b) + len(t)
}

// AvgRun estimates the expected candidates per probe of position pos: the
// extent divided by the distinct values seen at that position. A position
// with no data estimates to the full extent plus one (probing it cannot
// help).
func (c *Columnar) AvgRun(pos int) int {
	if pos >= len(c.distinct) {
		return len(c.ids) + 1
	}
	c.checkBuilt(pos)
	if c.distinct[pos] == 0 {
		return len(c.ids) + 1
	}
	return len(c.ids) / c.distinct[pos]
}

// DenseBoundary translates a fact-id boundary into dense space: the first
// dense index whose fact id is ≥ boundary. Semi-naive pivot filters become
// a single comparison against it.
func (c *Columnar) DenseBoundary(boundary FactID) int32 {
	return int32(sort.Search(len(c.ids), func(k int) bool { return c.ids[k] >= boundary }))
}

// EnsureColumnar returns the predicate's columnar index refreshed to cover
// every live fact, with sorted runs for every position: the first call
// builds it, later calls fold in appended facts (tail maintenance) or
// rebuild after a retraction. Refreshing mutates the store, so calling it
// with pending work during a frozen snapshot phase panics — the chase
// engine refreshes before freezing. A predicate with no live facts yields
// an empty (non-nil) index.
func (s *Store) EnsureColumnar(pred string) *Columnar {
	c := s.ensureColumnarData(pred)
	c.wantAll = true
	s.buildWantedRuns(c)
	return c
}

// EnsureColumnarRuns is EnsureColumnar restricted to the given probe
// positions: the dense columns always cover every position (candidate
// checks read them), but only the listed positions get sorted runs. The
// chase engine derives the list from its compiled plans — a position is
// only ever probed when a plan binds it to a constant or an already-bound
// slot — so write-only positions of a large predicate never pay a sort.
// Requests accumulate across calls.
func (s *Store) EnsureColumnarRuns(pred string, poss []int) *Columnar {
	c := s.ensureColumnarData(pred)
	for _, pos := range poss {
		if pos < len(c.want) {
			c.want[pos] = true
		}
	}
	s.buildWantedRuns(c)
	return c
}

// ensureColumnarData refreshes the dense half of the index (ids, columns,
// arity, and tail maintenance of already-built runs) up to the store
// frontier.
func (s *Store) ensureColumnarData(pred string) *Columnar {
	c := s.colIdx[pred]
	if c == nil {
		c = &Columnar{pred: pred}
		if s.colIdx == nil {
			s.colIdx = map[string]*Columnar{}
		}
		s.colIdx[pred] = c
	}
	if c.stale || c.incorporated < s.Frontier() {
		if !s.columnarPending(c) {
			// The frontier moved but none of the new facts belong to this
			// predicate; advance the watermark without touching the runs.
			c.incorporated = s.Frontier()
			return c
		}
		if s.frozen {
			panic("database: columnar index refresh for " + pred + " during frozen snapshot phase")
		}
		s.refreshColumnar(c)
	}
	return c
}

// buildWantedRuns constructs the sorted runs of every wanted-but-unbuilt
// position. Building mutates the index, so pending construction during a
// frozen snapshot phase panics — the chase engine requests every plan
// position before freezing, making later calls read-only.
func (s *Store) buildWantedRuns(c *Columnar) {
	for pos := range c.built {
		if c.built[pos] || !(c.wantAll || c.want[pos]) {
			continue
		}
		if s.frozen {
			panic("database: columnar run build for " + c.pred + " during frozen snapshot phase")
		}
		s.buildRun(c, pos)
	}
}

// buildRun sorts one position's base and tail runs from the dense columns
// and refreshes its selectivity estimate.
func (s *Store) buildRun(c *Columnar, pos int) {
	base, tail := &c.base[pos], &c.tail[pos]
	*base = colRun{
		ks:   make([]int32, 0, c.baseN),
		vals: make([]term.ValueID, 0, c.baseN),
	}
	*tail = colRun{
		ks:   make([]int32, 0, len(c.ids)-c.baseN),
		vals: make([]term.ValueID, 0, len(c.ids)-c.baseN),
	}
	for k := int32(0); k < int32(len(c.ids)); k++ {
		run := base
		if int(k) >= c.baseN {
			run = tail
		}
		if v := c.cols[pos][k]; v != term.NoValue {
			run.ks = append(run.ks, k)
			run.vals = append(run.vals, v)
		}
	}
	sortRun(base)
	sortRun(tail)
	c.distinct[pos] = countDistinct(base.vals)
	c.built[pos] = true
}

// columnarPending reports whether the index has real work to do: it is
// stale, or some not-yet-incorporated live fact belongs to its predicate.
func (s *Store) columnarPending(c *Columnar) bool {
	if c.stale {
		return true
	}
	bucket := s.byPred[c.pred]
	return len(bucket) > 0 && bucket[len(bucket)-1] >= c.incorporated
}

// invalidateColumnar marks a predicate's index stale after a retraction.
func (s *Store) invalidateColumnar(pred string) {
	if c, ok := s.colIdx[pred]; ok {
		c.stale = true
	}
}

// refreshColumnar brings one index up to the store frontier.
func (s *Store) refreshColumnar(c *Columnar) {
	if c.stale {
		s.rebuildColumnar(c)
		return
	}
	bucket := s.byPred[c.pred]
	// Live ids are ascending, so the pending suffix starts at the first id
	// at or beyond the watermark.
	start := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= c.incorporated })
	fresh := bucket[start:]
	c.incorporated = s.Frontier()
	if len(fresh) == 0 {
		return
	}
	s.colStats.AppendedRows += uint64(len(fresh))
	globalColumnar.appended.Add(uint64(len(fresh)))
	maxAr := len(c.cols)
	for _, id := range fresh {
		if ar := len(s.rows[id]); ar > maxAr {
			maxAr = ar
		}
	}
	c.growArity(maxAr)
	firstFresh := int32(len(c.ids))
	// Extend ids, lens and every column once, then fill by index — growing
	// a million-row column through per-fact appends would reallocate and
	// memmove repeatedly.
	n := len(c.ids) + len(fresh)
	c.ids = append(c.ids, fresh...)
	c.lens = slices.Grow(c.lens, len(fresh))[:n]
	for pos := range c.cols {
		c.cols[pos] = slices.Grow(c.cols[pos], len(fresh))[:n]
	}
	for j, id := range fresh {
		row := s.rows[id]
		k := int(firstFresh) + j
		c.lens[k] = int32(len(row))
		for pos := range c.cols {
			v := term.NoValue
			if pos < len(row) {
				v = row[pos]
			}
			c.cols[pos][k] = v
		}
	}
	// Fold the fresh dense suffix into the built positions' tail runs and
	// re-sort each; the tail is bounded by the merge policy below, so the
	// re-sort is cheap. Unbuilt positions stay data-only until wanted.
	for pos := range c.tail {
		if !c.built[pos] {
			continue
		}
		run := &c.tail[pos]
		appended := false
		for k := firstFresh; k < int32(len(c.ids)); k++ {
			if v := c.cols[pos][k]; v != term.NoValue {
				run.ks = append(run.ks, k)
				run.vals = append(run.vals, v)
				appended = true
			}
		}
		if appended {
			sortRun(run)
		}
	}
	s.colStats.TailRefreshes++
	globalColumnar.tailRefreshes.Add(1)
	if tailLen := len(c.ids) - c.baseN; tailLen > 64 && tailLen*4 > c.baseN {
		s.mergeColumnarTail(c)
	}
}

// rebuildColumnar re-sorts the full live extent (first build, or after a
// retraction invalidated the runs).
func (s *Store) rebuildColumnar(c *Columnar) {
	bucket := s.byPred[c.pred]
	maxAr := 0
	for _, id := range bucket {
		if ar := len(s.rows[id]); ar > maxAr {
			maxAr = ar
		}
	}
	n := len(bucket)
	c.ids = make([]FactID, n)
	copy(c.ids, bucket)
	c.lens = make([]int32, n)
	c.cols = make([][]term.ValueID, maxAr)
	for pos := range c.cols {
		c.cols[pos] = make([]term.ValueID, n)
	}
	for k, id := range bucket {
		row := s.rows[id]
		c.lens[k] = int32(len(row))
		for pos := range c.cols {
			v := term.NoValue
			if pos < len(row) {
				v = row[pos]
			}
			c.cols[pos][k] = v
		}
	}
	c.base = make([]colRun, maxAr)
	c.tail = make([]colRun, maxAr)
	c.distinct = make([]int, maxAr)
	c.built = make([]bool, maxAr)
	if len(c.want) < maxAr {
		want := make([]bool, maxAr)
		copy(want, c.want)
		c.want = want
	}
	c.baseN = n
	c.incorporated = s.Frontier()
	c.stale = false
	// Runs are not rebuilt here: buildWantedRuns re-sorts exactly the
	// positions callers have asked for.
	s.colStats.Rebuilds++
	globalColumnar.rebuilds.Add(1)
}

// mergeColumnarTail merges the tail runs into the base runs (two sorted
// sequences per position) and refreshes the selectivity estimates.
func (s *Store) mergeColumnarTail(c *Columnar) {
	for pos := range c.base {
		base, tail := &c.base[pos], &c.tail[pos]
		if len(tail.ks) == 0 {
			continue
		}
		merged := colRun{
			ks:   make([]int32, 0, len(base.ks)+len(tail.ks)),
			vals: make([]term.ValueID, 0, len(base.vals)+len(tail.vals)),
		}
		i, j := 0, 0
		for i < len(base.ks) && j < len(tail.ks) {
			// Base dense indexes all precede tail ones, so the index
			// tie-break always favors base on equal values.
			if base.vals[i] <= tail.vals[j] {
				merged.ks = append(merged.ks, base.ks[i])
				merged.vals = append(merged.vals, base.vals[i])
				i++
			} else {
				merged.ks = append(merged.ks, tail.ks[j])
				merged.vals = append(merged.vals, tail.vals[j])
				j++
			}
		}
		merged.ks = append(merged.ks, base.ks[i:]...)
		merged.vals = append(merged.vals, base.vals[i:]...)
		merged.ks = append(merged.ks, tail.ks[j:]...)
		merged.vals = append(merged.vals, tail.vals[j:]...)
		c.base[pos] = merged
		c.tail[pos] = colRun{}
		c.distinct[pos] = countDistinct(merged.vals)
	}
	c.baseN = len(c.ids)
	s.colStats.Merges++
	globalColumnar.merges.Add(1)
}

// growArity widens the column matrix and runs to a larger arity, padding the
// new columns with NoValue for the already-incorporated facts.
func (c *Columnar) growArity(arity int) {
	for len(c.cols) < arity {
		col := make([]term.ValueID, len(c.ids))
		for k := range col {
			col[k] = term.NoValue
		}
		c.cols = append(c.cols, col)
		c.base = append(c.base, colRun{})
		c.tail = append(c.tail, colRun{})
		c.distinct = append(c.distinct, 0)
		c.want = append(c.want, false)
		c.built = append(c.built, false)
	}
}

// sortRun sorts one run by (value, dense index). Every caller hands it
// input whose dense indexes ascend within equal values (fresh rows append
// in dense order, and a re-sorted tail keeps old-before-fresh with fresh
// indexes strictly larger), so a stable sort by value alone yields the
// (value, dense) order; large runs exploit that with a stable LSD radix
// sort on the 32-bit value id, small ones fall back to a comparator sort.
func sortRun(r *colRun) {
	if sort.SliceIsSorted(r.ks, func(i, j int) bool {
		return r.vals[i] < r.vals[j] || (r.vals[i] == r.vals[j] && r.ks[i] < r.ks[j])
	}) {
		return
	}
	if len(r.ks) >= 2048 {
		radixSortRun(r)
		return
	}
	perm := make([]int, len(r.ks))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		i, j := perm[a], perm[b]
		return r.vals[i] < r.vals[j] || (r.vals[i] == r.vals[j] && r.ks[i] < r.ks[j])
	})
	ks := make([]int32, len(r.ks))
	vals := make([]term.ValueID, len(r.vals))
	for k, p := range perm {
		ks[k] = r.ks[p]
		vals[k] = r.vals[p]
	}
	r.ks, r.vals = ks, vals
}

// radixSortRun is a two-pass LSD counting sort on 16-bit digits of the
// value id (ids are interner indexes, always ≥ 0, so the uint32 cast is
// order-preserving). Each pass is stable, which both preserves the dense
// tie-break (see sortRun) and makes the second pass correct.
func radixSortRun(r *colRun) {
	n := len(r.ks)
	tmpKs := make([]int32, n)
	tmpVals := make([]term.ValueID, n)
	const digits = 1 << 16
	count := make([]int32, digits)
	for _, v := range r.vals {
		count[uint32(v)&0xffff]++
	}
	next := int32(0)
	for d := range count {
		c := count[d]
		count[d] = next
		next += c
	}
	for i := 0; i < n; i++ {
		d := uint32(r.vals[i]) & 0xffff
		p := count[d]
		count[d]++
		tmpVals[p], tmpKs[p] = r.vals[i], r.ks[i]
	}
	clear(count)
	for _, v := range tmpVals {
		count[uint32(v)>>16]++
	}
	next = 0
	for d := range count {
		c := count[d]
		count[d] = next
		next += c
	}
	for i := 0; i < n; i++ {
		d := uint32(tmpVals[i]) >> 16
		p := count[d]
		count[d]++
		r.vals[p], r.ks[p] = tmpVals[i], tmpKs[i]
	}
}

func countDistinct(vals []term.ValueID) int {
	n := 0
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			n++
		}
	}
	return n
}
