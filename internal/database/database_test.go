package database

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/term"
)

func own(x, y string, s float64) ast.Atom {
	return ast.NewAtom("Own", term.Str(x), term.Str(y), term.Float(s))
}

func TestAddAndLookup(t *testing.T) {
	s := NewStore()
	f1, added, err := s.Add(own("A", "B", 0.6), true)
	if err != nil || !added {
		t.Fatalf("Add: %v added=%v", err, added)
	}
	if f1.ID != 0 || !f1.Extensional {
		t.Errorf("fact = %+v", f1)
	}
	// Duplicate insertion is idempotent.
	f2, added, err := s.Add(own("A", "B", 0.6), false)
	if err != nil || added {
		t.Fatalf("duplicate Add: %v added=%v", err, added)
	}
	if f2.ID != f1.ID {
		t.Error("duplicate got new id")
	}
	if !f2.Extensional {
		t.Error("duplicate Add overwrote extensionality")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Lookup(own("A", "B", 0.6)); got != f1 {
		t.Error("Lookup missed")
	}
	if got := s.Lookup(own("A", "B", 0.7)); got != nil {
		t.Error("Lookup found absent fact")
	}
	if !s.Contains(own("A", "B", 0.6)) || s.Contains(own("X", "Y", 0.1)) {
		t.Error("Contains wrong")
	}
}

func TestAddNonGround(t *testing.T) {
	s := NewStore()
	if _, _, err := s.Add(ast.NewAtom("P", term.Var("X")), true); err == nil {
		t.Error("non-ground atom accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic")
		}
	}()
	s.MustAdd(ast.NewAtom("P", term.Var("X")), true)
}

func TestByPredicateInsertionOrder(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.MustAdd(own("B", "C", 0.3), true)
	s.MustAdd(ast.NewAtom("Company", term.Str("A")), true)
	s.MustAdd(own("C", "D", 0.9), true)
	ids := s.ByPredicate("Own")
	if len(ids) != 3 {
		t.Fatalf("Own count = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Error("ByPredicate not in insertion order")
		}
	}
	if len(s.ByPredicate("Missing")) != 0 {
		t.Error("missing predicate returned facts")
	}
}

func TestMatch(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.MustAdd(own("A", "C", 0.3), true)
	s.MustAdd(own("B", "C", 0.9), true)

	// All Own facts.
	all := s.Match(ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Var("S")))
	if len(all) != 3 {
		t.Errorf("open pattern matched %d", len(all))
	}
	// First position bound.
	fromA := s.Match(ast.NewAtom("Own", term.Str("A"), term.Var("Y"), term.Var("S")))
	if len(fromA) != 2 {
		t.Errorf("Own(A,_,_) matched %d", len(fromA))
	}
	// Fully ground.
	exact := s.Match(own("B", "C", 0.9))
	if len(exact) != 1 {
		t.Errorf("ground pattern matched %d", len(exact))
	}
	// No match.
	if got := s.Match(own("Z", "Z", 0.1)); len(got) != 0 {
		t.Errorf("absent pattern matched %d", len(got))
	}
	// Repeated variable must force equal positions.
	s.MustAdd(own("D", "D", 0.2), true)
	self := s.Match(ast.NewAtom("Own", term.Var("X"), term.Var("X"), term.Var("S")))
	if len(self) != 1 {
		t.Errorf("Own(X,X,_) matched %d, want 1", len(self))
	}
}

func TestMatchBind(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.MustAdd(own("B", "C", 0.9), true)

	pattern := ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Var("S"))
	base := term.Substitution{"X": term.Str("B")}
	bs := s.MatchBind(pattern, base)
	if len(bs) != 1 {
		t.Fatalf("bindings = %d", len(bs))
	}
	b := bs[0]
	if !b.Sub["Y"].Equal(term.Str("C")) {
		t.Errorf("Y bound to %v", b.Sub["Y"])
	}
	if f, _ := b.Sub["S"].AsFloat(); f != 0.9 {
		t.Errorf("S bound to %v", b.Sub["S"])
	}
	// Base substitution must not be mutated.
	if len(base) != 1 {
		t.Errorf("base mutated: %v", base)
	}
}

func TestMatchBindConflict(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	pattern := ast.NewAtom("Own", term.Var("X"), term.Var("X"), term.Var("S"))
	if bs := s.MatchBind(pattern, term.Substitution{}); len(bs) != 0 {
		t.Errorf("conflicting repeated variable bound: %v", bs)
	}
}

func TestIndexSelectivity(t *testing.T) {
	// With many facts, a bound position should restrict candidates; we can
	// only observe correctness here, but exercise the index path with a
	// value that appears in a small bucket.
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.MustAdd(own(fmt.Sprintf("N%d", i), "HUB", float64(i)/100), true)
	}
	s.MustAdd(own("HUB", "RARE", 0.99), true)
	got := s.Match(ast.NewAtom("Own", term.Var("X"), term.Str("RARE"), term.Var("S")))
	if len(got) != 1 {
		t.Errorf("matched %d, want 1", len(got))
	}
}

func TestPredicatesAndDump(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.MustAdd(ast.NewAtom("Company", term.Str("A")), true)
	preds := s.Predicates()
	if len(preds) != 2 || preds[0] != "Company" || preds[1] != "Own" {
		t.Errorf("Predicates = %v", preds)
	}
	d := s.Dump()
	if !strings.Contains(d, "Own(A, B, 0.6)") || !strings.Contains(d, "Company(A)") {
		t.Errorf("Dump = %q", d)
	}
}

func TestGet(t *testing.T) {
	s := NewStore()
	f, _ := s.MustAdd(own("A", "B", 0.6), true)
	if s.Get(f.ID) != f {
		t.Error("Get returned different fact")
	}
}

// Property: Add is idempotent and Len equals the number of distinct keys.
func TestAddIdempotentProperty(t *testing.T) {
	f := func(names []string) bool {
		s := NewStore()
		distinct := map[string]bool{}
		for _, n := range names {
			a := ast.NewAtom("P", term.Str(n))
			s.MustAdd(a, true)
			distinct[a.Key()] = true
		}
		return s.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every fact matched by a pattern actually unifies with it.
func TestMatchSoundProperty(t *testing.T) {
	s := NewStore()
	names := []string{"A", "B", "C", "D"}
	for _, x := range names {
		for _, y := range names {
			s.MustAdd(own(x, y, 0.5), true)
		}
	}
	pattern := ast.NewAtom("Own", term.Str("B"), term.Var("Y"), term.Var("S"))
	for _, id := range s.Match(pattern) {
		f := s.Get(id)
		if f.Atom.Terms[0].StringVal() != "B" {
			t.Errorf("unsound match: %v", f)
		}
	}
	if got := len(s.Match(pattern)); got != len(names) {
		t.Errorf("matched %d, want %d", got, len(names))
	}
}

// Frontier tracks the append boundary: it equals Len and advances only on
// genuinely new facts.
func TestFrontier(t *testing.T) {
	s := NewStore()
	if s.Frontier() != 0 {
		t.Fatalf("empty store frontier = %d, want 0", s.Frontier())
	}
	s.MustAdd(own("A", "B", 0.5), true)
	if s.Frontier() != 1 {
		t.Fatalf("frontier = %d, want 1", s.Frontier())
	}
	s.MustAdd(own("A", "B", 0.5), true) // duplicate: no new fact
	if s.Frontier() != 1 {
		t.Fatalf("frontier moved on duplicate add: %d", s.Frontier())
	}
	if int(s.Frontier()) != s.Len() {
		t.Fatalf("frontier %d != len %d", s.Frontier(), s.Len())
	}
}

// Freeze turns writes into errors while leaving reads working; Thaw
// restores writes.
func TestFreezeThaw(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.Freeze()
	if _, _, err := s.Add(own("B", "C", 0.7), true); err == nil {
		t.Fatal("Add during freeze succeeded, want error")
	}
	if !s.Contains(own("A", "B", 0.6)) {
		t.Fatal("read during freeze failed")
	}
	if got := len(s.Match(ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Var("S")))); got != 1 {
		t.Fatalf("match during freeze returned %d facts, want 1", got)
	}
	s.Thaw()
	if _, added, err := s.Add(own("B", "C", 0.7), true); err != nil || !added {
		t.Fatalf("Add after thaw: added=%v err=%v", added, err)
	}
}

// Retract tombstones a fact: invisible to every lookup path, ids stable,
// re-add gets a fresh id, epoch advances on every mutation.
func TestRetract(t *testing.T) {
	s := NewStore()
	f0, _ := s.MustAdd(own("A", "B", 0.6), true)
	f1, _ := s.MustAdd(own("B", "C", 0.9), true)
	f2, _ := s.MustAdd(own("A", "C", 0.3), true)
	e0 := s.Epoch()

	if err := s.Retract(f1.ID); err != nil {
		t.Fatalf("Retract: %v", err)
	}
	if s.Epoch() != e0+1 {
		t.Errorf("epoch = %d, want %d", s.Epoch(), e0+1)
	}
	if !s.Retracted(f1.ID) || s.Retracted(f0.ID) || s.Retracted(f2.ID) {
		t.Error("Retracted flags wrong")
	}
	if s.LiveLen() != 2 || s.Len() != 3 {
		t.Errorf("LiveLen = %d Len = %d", s.LiveLen(), s.Len())
	}
	// Invisible to key lookup and containment.
	if s.Contains(own("B", "C", 0.9)) || s.Lookup(own("B", "C", 0.9)) != nil {
		t.Error("retracted fact visible to Contains/Lookup")
	}
	// Invisible to per-predicate extent and pattern matching.
	if ids := s.ByPredicate("Own"); len(ids) != 2 {
		t.Errorf("ByPredicate = %v", ids)
	}
	open := ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Var("S"))
	if got := s.Match(open); len(got) != 2 {
		t.Errorf("Match = %v", got)
	}
	// Invisible to the (predicate, position, value) index bucket: the only
	// fact with C in position 1 besides f2 was f1.
	indexed := s.Match(ast.NewAtom("Own", term.Var("X"), term.Str("C"), term.Var("S")))
	if len(indexed) != 1 || indexed[0] != f2.ID {
		t.Errorf("indexed Match = %v, want [%d]", indexed, f2.ID)
	}
	if s.MatchAny(own("B", "C", 0.9)) {
		t.Error("MatchAny saw retracted fact")
	}
	if len(s.MatchBind(open, term.Substitution{"X": term.Str("B")})) != 0 {
		t.Error("MatchBind saw retracted fact")
	}
	// Survivors keep their ids; the tombstone stays resolvable for
	// provenance readers.
	if s.Get(f0.ID) != f0 || s.Get(f2.ID) != f2 || s.Get(f1.ID) != f1 {
		t.Error("Get renumbered facts")
	}
	// Idempotent: a second retract is a no-op and does not bump the epoch.
	e1 := s.Epoch()
	if err := s.Retract(f1.ID); err != nil {
		t.Fatalf("double Retract: %v", err)
	}
	if s.Epoch() != e1 {
		t.Error("no-op Retract bumped epoch")
	}
	// Re-adding the atom interns a fresh fact under a new id.
	f3, added := s.MustAdd(own("B", "C", 0.9), true)
	if !added || f3.ID != 3 {
		t.Fatalf("re-add: added=%v id=%d, want fresh id 3", added, f3.ID)
	}
	if s.Retracted(f3.ID) || !s.Retracted(f1.ID) {
		t.Error("re-add revived or inherited the tombstone")
	}
	if got := s.Match(open); len(got) != 3 {
		t.Errorf("post-re-add Match = %v", got)
	}
}

// Retracted facts are invisible to the slot-based candidate selection the
// compiled-plan executor uses.
func TestRetractSlots(t *testing.T) {
	s := NewStore()
	f0, _ := s.MustAdd(own("A", "B", 0.6), true)
	f1, _ := s.MustAdd(own("A", "C", 0.3), true)
	if err := s.Retract(f0.ID); err != nil {
		t.Fatalf("Retract: %v", err)
	}
	a, _ := s.Interner().Lookup(term.Str("A"))
	p := SlotPattern{Predicate: "Own", Ops: []SlotOp{
		{Kind: SlotConst, Val: a},
		{Kind: SlotWrite, Slot: 0},
		{Kind: SlotWrite, Slot: 1},
	}}
	frame := make([]term.ValueID, 2)
	cands := s.CandidatesSlots(p, frame)
	if len(cands) != 1 || cands[0] != f1.ID {
		t.Errorf("CandidatesSlots = %v, want [%d]", cands, f1.ID)
	}
	var seen []FactID
	s.MatchBindSlots(p, frame, func(f *Fact) bool {
		seen = append(seen, f.ID)
		return true
	})
	if len(seen) != 1 || seen[0] != f1.ID {
		t.Errorf("MatchBindSlots yielded %v, want [%d]", seen, f1.ID)
	}
}

// Retract respects the freeze phase and rejects unknown ids; a fully
// retracted predicate disappears from Predicates and Dump.
func TestRetractEdgeCases(t *testing.T) {
	s := NewStore()
	f, _ := s.MustAdd(ast.NewAtom("Company", term.Str("A")), true)
	s.Freeze()
	if err := s.Retract(f.ID); err == nil {
		t.Error("Retract during freeze succeeded, want error")
	}
	s.Thaw()
	if err := s.Retract(FactID(99)); err == nil {
		t.Error("Retract of unknown id succeeded, want error")
	}
	if err := s.Retract(f.ID); err != nil {
		t.Fatalf("Retract: %v", err)
	}
	if len(s.Predicates()) != 0 {
		t.Errorf("Predicates = %v, want empty", s.Predicates())
	}
	if s.Dump() != "" {
		t.Errorf("Dump = %q, want empty", s.Dump())
	}
}

// Epoch advances on Add but not on duplicate Add (no mutation happens).
func TestEpoch(t *testing.T) {
	s := NewStore()
	if s.Epoch() != 0 {
		t.Fatalf("fresh store epoch = %d", s.Epoch())
	}
	s.MustAdd(own("A", "B", 0.5), true)
	if s.Epoch() != 1 {
		t.Errorf("epoch after Add = %d, want 1", s.Epoch())
	}
	s.MustAdd(own("A", "B", 0.5), true)
	if s.Epoch() != 1 {
		t.Errorf("epoch after duplicate Add = %d, want 1", s.Epoch())
	}
}
