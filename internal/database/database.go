// Package database implements the extensional/intensional fact store the
// chase engine runs over: interned ground atoms (facts) with stable integer
// ids, per-predicate relations, and hash indexes on (predicate, position,
// value) for efficient join evaluation.
//
// Facts are append-only during a chase — the chase only ever adds facts — so
// fact ids are also the insertion order, which the explanation pipeline uses
// to linearize proofs deterministically. Between chase phases a fact may be
// tombstoned with Retract: it keeps its id (survivors are never renumbered)
// but becomes invisible to every lookup and join index, which is the store
// half of the incremental-maintenance contract (internal/incremental).
// Re-adding a retracted atom interns a fresh fact under a new id.
//
// Alongside the hash indexes the store maintains per-predicate sorted
// columnar indexes (Columnar, see columnar.go): dense column-major value
// arrays plus per-position permutations sorted by (value, fact id), the
// representation the batch-at-a-time join executor scans and probes. They
// are built lazily by EnsureColumnar (all positions) or EnsureColumnarRuns
// (sorted runs for the listed probe positions only, radix-sorted on the
// value id), kept coherent across Add, Retract,
// Freeze and Thaw (appends accumulate in a small sorted tail that is
// LSM-merged into the base; retraction invalidates and the next ensure
// rebuilds), and their maintenance work is counted on ColumnarStats.
//
// # Concurrency contract
//
// A Store is not synchronized. It is safe for any number of concurrent
// readers (Match, MatchBind, Lookup, Get, Contains, ByPredicate, Facts,
// Frontier, Len) as long as no writer (Add, MustAdd) runs at the same time.
// The chase engine exploits exactly this shape: its parallel join phase is
// read-only over a store snapshot and is separated from the single-threaded
// emission phase that appends facts. Freeze/Thaw make that phase boundary
// explicit and turn any out-of-phase write into an error instead of a data
// race. EnsureColumnar and EnsureColumnarRuns are writers when the index
// has pending work: callers must refresh indexes before freezing (the chase
// calls them at join entry), and a refresh or run-build attempt during a
// frozen phase panics rather than racing.
package database

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/term"
)

// FactID identifies an interned fact. Ids are dense and start at 0 in
// insertion order.
type FactID int

// Fact is an interned ground atom together with its id and whether it was
// part of the original extensional database.
type Fact struct {
	ID   FactID
	Atom ast.Atom
	// Extensional reports whether the fact belongs to the input database D
	// (true) or was derived by a chase step (false).
	Extensional bool
}

// String renders the fact as predicate(args) with unquoted constants.
func (f *Fact) String() string { return f.Atom.Display() }

// Store is an append-only fact store with join indexes. Alongside the
// ast.Atom view, every fact is stored as a flat []term.ValueID row over the
// store's value dictionary, and the (predicate, position, value) index is
// keyed on those dense integer ids — the representation the compiled-plan
// join executor (internal/chase) probes without hashing term strings.
type Store struct {
	facts  []*Fact
	in     *term.Interner
	rows   [][]term.ValueID
	byKey  map[string]FactID
	byPred map[string][]FactID
	// index maps predicate/position/value-id to the facts with that value
	// at that position.
	index map[indexKey][]FactID
	// colIdx holds the lazily built per-predicate sorted columnar indexes
	// (columnar.go); colStats counts their maintenance work.
	colIdx   map[string]*Columnar
	colStats ColumnarStats
	// frozen marks a read-only snapshot phase; Add and Retract reject
	// writes while set. It is toggled only between phases (never while
	// readers run), so plain (unsynchronized) access is race-free.
	frozen bool
	// dead marks tombstoned facts (see Retract). Nil until the first
	// retraction, so the hot Retracted check is a single len test for the
	// append-only common case.
	dead map[FactID]bool
	// epoch counts mutations (Add and Retract). Cache layers fingerprint it
	// to detect that a store changed underneath a memoized artifact.
	epoch uint64
}

type indexKey struct {
	pred string
	pos  int
	val  term.ValueID
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{
		in:     term.NewInterner(),
		byKey:  make(map[string]FactID),
		byPred: make(map[string][]FactID),
		index:  make(map[indexKey][]FactID),
	}
}

// Interner exposes the store's value dictionary. Callers may Intern new
// values only while the store is writable (the chase compiles rule constants
// into ids before its concurrent join phase); Lookup and Value are read-only
// and safe alongside other readers.
func (s *Store) Interner() *term.Interner { return s.in }

// Row returns the fact's argument values as interned ids, positionally
// parallel to its atom's terms. The returned slice is shared; callers must
// not mutate it.
func (s *Store) Row(id FactID) []term.ValueID { return s.rows[id] }

// Len returns the number of interned facts.
func (s *Store) Len() int { return len(s.facts) }

// Frontier returns the id one past the newest fact: facts with id <
// Frontier() exist, facts with id >= Frontier() do not yet. Semi-naive
// evaluation snapshots the frontier before a rule's evaluation and treats
// facts at or beyond the snapshot as "new" at the next one.
func (s *Store) Frontier() FactID { return FactID(len(s.facts)) }

// Freeze puts the store into a read-only snapshot phase: Add fails until
// Thaw is called. The chase engine freezes the store around its concurrent
// join phase so that a misplaced write surfaces as an error rather than a
// data race. Freeze must not be called while other goroutines access the
// store (the engine calls it before starting workers).
func (s *Store) Freeze() { s.frozen = true }

// Thaw ends a Freeze, re-enabling writes.
func (s *Store) Thaw() { s.frozen = false }

// Add interns a ground atom. It returns the fact and whether it was newly
// inserted; adding an atom that is already present returns the existing fact
// with added=false. Non-ground atoms are rejected with an error.
func (s *Store) Add(a ast.Atom, extensional bool) (*Fact, bool, error) {
	if s.frozen {
		return nil, false, fmt.Errorf("database: Add(%v) during frozen snapshot phase", a)
	}
	if !a.IsGround() {
		return nil, false, fmt.Errorf("database: cannot intern non-ground atom %v", a)
	}
	key := a.Key()
	if id, ok := s.byKey[key]; ok {
		return s.facts[id], false, nil
	}
	f := &Fact{ID: FactID(len(s.facts)), Atom: a, Extensional: extensional}
	s.epoch++
	s.facts = append(s.facts, f)
	s.byKey[key] = f.ID
	s.byPred[a.Predicate] = append(s.byPred[a.Predicate], f.ID)
	row := make([]term.ValueID, len(a.Terms))
	for pos, t := range a.Terms {
		row[pos] = s.in.Intern(t)
		s.index[indexKey{a.Predicate, pos, row[pos]}] = append(s.index[indexKey{a.Predicate, pos, row[pos]}], f.ID)
	}
	s.rows = append(s.rows, row)
	return f, true, nil
}

// LookupKey returns the fact id stored under a canonical atom key
// (ast.Atom.Key bytes), without materializing the key string — the compiler
// elides the []byte→string conversion in the map read, so the vectorized
// emission path of the batch executor (internal/chase) deduplicates derived
// rows against the store with zero allocations per row.
func (s *Store) LookupKey(key []byte) (FactID, bool) {
	id, ok := s.byKey[string(key)]
	return id, ok
}

// AddKeyed is the vectorized-emission fast path of Add: the caller has
// already built the atom's canonical key (byte-equal to a.Key()) and its
// interned row (row[pos] == Interner().Intern(a.Terms[pos])), so Add's
// re-derivation of both is skipped. The caller must also have checked
// LookupKey for absence — AddKeyed inserts unconditionally — and must hand
// over a and row for the store to retain. Every observable effect (fact id
// assignment, epoch, indexes) is identical to Add returning added=true.
func (s *Store) AddKeyed(a ast.Atom, key []byte, row []term.ValueID, extensional bool) (*Fact, error) {
	if s.frozen {
		return nil, fmt.Errorf("database: AddKeyed(%v) during frozen snapshot phase", a)
	}
	f := &Fact{ID: FactID(len(s.facts)), Atom: a, Extensional: extensional}
	s.epoch++
	s.facts = append(s.facts, f)
	s.byKey[string(key)] = f.ID
	s.byPred[a.Predicate] = append(s.byPred[a.Predicate], f.ID)
	for pos, v := range row {
		s.index[indexKey{a.Predicate, pos, v}] = append(s.index[indexKey{a.Predicate, pos, v}], f.ID)
	}
	s.rows = append(s.rows, row)
	return f, nil
}

// RestoreFact is the snapshot-restore append path: it interns the atom
// unconditionally under the next id, without Add's duplicate check. Snapshot
// payloads replay facts in id order *before* replaying tombstones, so a
// re-added atom (same key as an earlier, later-tombstoned fact) must append
// rather than dedupe; the byKey entry is simply overwritten, and the later
// Retract of the earlier id leaves it pointing at the survivor (Retract only
// deletes the mapping when it still points at the retracted id). Outside
// restore, use Add.
func (s *Store) RestoreFact(a ast.Atom, extensional bool) (*Fact, error) {
	if s.frozen {
		return nil, fmt.Errorf("database: RestoreFact(%v) during frozen snapshot phase", a)
	}
	if !a.IsGround() {
		return nil, fmt.Errorf("database: cannot intern non-ground atom %v", a)
	}
	f := &Fact{ID: FactID(len(s.facts)), Atom: a, Extensional: extensional}
	s.epoch++
	s.facts = append(s.facts, f)
	s.byKey[a.Key()] = f.ID
	s.byPred[a.Predicate] = append(s.byPred[a.Predicate], f.ID)
	row := make([]term.ValueID, len(a.Terms))
	for pos, t := range a.Terms {
		row[pos] = s.in.Intern(t)
		s.index[indexKey{a.Predicate, pos, row[pos]}] = append(s.index[indexKey{a.Predicate, pos, row[pos]}], f.ID)
	}
	s.rows = append(s.rows, row)
	return f, nil
}

// SetEpoch overwrites the mutation counter; the snapshot-restore path calls
// it last so a restored store reports the epoch its original had, not the
// number of replay operations it took to rebuild.
func (s *Store) SetEpoch(epoch uint64) { s.epoch = epoch }

// MustAdd is Add for callers with statically ground atoms; it panics on a
// non-ground atom.
func (s *Store) MustAdd(a ast.Atom, extensional bool) (*Fact, bool) {
	f, added, err := s.Add(a, extensional)
	if err != nil {
		panic(err)
	}
	return f, added
}

// Retract tombstones a fact: the id keeps resolving through Get and Row (so
// historical provenance stays readable) but the fact disappears from every
// lookup path — Contains, Lookup, Match, MatchBind, MatchAny, ByPredicate,
// the slot candidates, and the (predicate, position, value) index. Surviving
// facts keep their ids. Re-adding the same atom later interns a fresh fact
// under a new id; the tombstone is never revived, which preserves the
// premises-precede-conclusions id invariant the proof memo relies on.
// Retracting an already-retracted id is a no-op.
func (s *Store) Retract(id FactID) error {
	if s.frozen {
		return fmt.Errorf("database: Retract(%d) during frozen snapshot phase", id)
	}
	if id < 0 || int(id) >= len(s.facts) {
		return fmt.Errorf("database: Retract(%d): unknown fact id", id)
	}
	if s.dead[id] {
		return nil
	}
	f := s.facts[id]
	if s.dead == nil {
		s.dead = map[FactID]bool{}
	}
	s.dead[id] = true
	s.epoch++
	// byKey may already point at a newer fact with the same atom (a
	// re-added atom whose old tombstone is retracted again is impossible —
	// dead guard above — but keep the delete guarded anyway).
	if cur, ok := s.byKey[f.Atom.Key()]; ok && cur == id {
		delete(s.byKey, f.Atom.Key())
	}
	s.byPred[f.Atom.Predicate] = removeID(s.byPred[f.Atom.Predicate], id)
	s.invalidateColumnar(f.Atom.Predicate)
	for pos, v := range s.rows[id] {
		k := indexKey{f.Atom.Predicate, pos, v}
		s.index[k] = removeID(s.index[k], id)
		if len(s.index[k]) == 0 {
			delete(s.index, k)
		}
	}
	return nil
}

// removeID deletes one id from a bucket, preserving the order of the rest.
func removeID(bucket []FactID, id FactID) []FactID {
	for i, b := range bucket {
		if b == id {
			return append(bucket[:i], bucket[i+1:]...)
		}
	}
	return bucket
}

// Retracted reports whether the fact id has been tombstoned.
func (s *Store) Retracted(id FactID) bool {
	if len(s.dead) == 0 {
		return false
	}
	return s.dead[id]
}

// LiveLen returns the number of non-retracted facts.
func (s *Store) LiveLen() int { return len(s.facts) - len(s.dead) }

// Epoch returns the store's mutation counter: it increments on every Add and
// Retract, so two reads returning the same value bracket a span with no
// store mutation. Serving caches include it in their fingerprints so an
// entry computed against an older instance version dies instead of being
// served.
func (s *Store) Epoch() uint64 { return s.epoch }

// Contains reports whether the ground atom is already interned.
func (s *Store) Contains(a ast.Atom) bool {
	_, ok := s.byKey[a.Key()]
	return ok
}

// Lookup returns the fact for a ground atom, or nil when absent.
func (s *Store) Lookup(a ast.Atom) *Fact {
	if id, ok := s.byKey[a.Key()]; ok {
		return s.facts[id]
	}
	return nil
}

// Get returns the fact with the given id. It panics on an out-of-range id,
// which always indicates a bug in the caller.
func (s *Store) Get(id FactID) *Fact {
	return s.facts[id]
}

// ByPredicate returns the ids of all facts with the given predicate, in
// insertion order. The returned slice is shared; callers must not mutate it.
func (s *Store) ByPredicate(pred string) []FactID {
	return s.byPred[pred]
}

// Match returns the ids of facts unifying with the (possibly non-ground)
// atom pattern: facts of the same predicate and arity whose constants agree
// with the pattern's constant positions. It uses the most selective
// available index.
func (s *Store) Match(pattern ast.Atom) []FactID {
	candidates := s.candidateIDs(pattern)
	var out []FactID
	for _, id := range candidates {
		if s.matches(s.facts[id].Atom, pattern) {
			out = append(out, id)
		}
	}
	return out
}

// MatchBind returns, for each fact unifying with pattern under the given
// base substitution, the extended substitution binding the pattern's
// variables. Facts that disagree with already-bound variables are skipped.
func (s *Store) MatchBind(pattern ast.Atom, base term.Substitution) []Binding {
	grounded := pattern.Apply(base)
	candidates := s.candidateIDs(grounded)
	var out []Binding
	for _, id := range candidates {
		f := s.facts[id]
		sub := base.Clone()
		if bindAtom(grounded, f.Atom, sub) {
			out = append(out, Binding{Fact: f, Sub: sub})
		}
	}
	return out
}

// Binding pairs a matched fact with the substitution extension it induces.
type Binding struct {
	Fact *Fact
	Sub  term.Substitution
}

// MatchAny reports whether at least one fact unifies with the pattern. It is
// Match with an early exit: the existential pre-emption check of the chase
// only needs existence, not the full id list.
func (s *Store) MatchAny(pattern ast.Atom) bool {
	for _, id := range s.candidateIDs(pattern) {
		if s.matches(s.facts[id].Atom, pattern) {
			return true
		}
	}
	return false
}

// candidateIDs picks the smallest index bucket applicable to the pattern. A
// constant that was never interned cannot occur in any fact, so its (empty)
// bucket wins immediately.
func (s *Store) candidateIDs(pattern ast.Atom) []FactID {
	best := s.byPred[pattern.Predicate]
	for pos, t := range pattern.Terms {
		if t.IsVariable() {
			continue
		}
		var bucket []FactID
		if v, ok := s.in.Lookup(t); ok {
			bucket = s.index[indexKey{pattern.Predicate, pos, v}]
		}
		if len(bucket) < len(best) {
			best = bucket
		}
	}
	return best
}

func (s *Store) matches(fact, pattern ast.Atom) bool {
	if fact.Predicate != pattern.Predicate || len(fact.Terms) != len(pattern.Terms) {
		return false
	}
	sub := term.Substitution{}
	return bindAtom(pattern, fact, sub)
}

// bindAtom extends sub so that pattern maps onto fact, or returns false.
func bindAtom(pattern, fact ast.Atom, sub term.Substitution) bool {
	if pattern.Predicate != fact.Predicate || len(pattern.Terms) != len(fact.Terms) {
		return false
	}
	for i, pt := range pattern.Terms {
		ft := fact.Terms[i]
		if pt.IsVariable() {
			if !sub.Bind(pt.Name(), ft) {
				return false
			}
			continue
		}
		if !pt.Equal(ft) {
			return false
		}
	}
	return true
}

// Facts returns all facts in insertion order. The returned slice is shared;
// callers must not mutate it.
func (s *Store) Facts() []*Fact { return s.facts }

// Predicates returns the distinct predicates with at least one live fact,
// sorted. A predicate whose every fact was retracted is absent.
func (s *Store) Predicates() []string {
	out := make([]string, 0, len(s.byPred))
	for p, ids := range s.byPred {
		if len(ids) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Dump renders the store contents grouped by predicate, for debugging and
// golden tests.
func (s *Store) Dump() string {
	var sb strings.Builder
	for _, p := range s.Predicates() {
		for _, id := range s.byPred[p] {
			sb.WriteString(s.facts[id].String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
