package database

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

// checkColumnarCoherent verifies every documented invariant of one index
// against the store's row representation: ids mirror the live byPred bucket
// ascending, dense columns mirror the rows (NoValue-padded), and every
// positional run is sorted by (value, dense) with base indexes < baseN ≤
// tail indexes and exactly the non-NoValue rows covered.
func checkColumnarCoherent(t *testing.T, s *Store, pred string) {
	t.Helper()
	c := s.EnsureColumnar(pred)
	bucket := s.byPred[pred]
	if c.Extent() != len(bucket) {
		t.Fatalf("%s: extent %d, bucket %d", pred, c.Extent(), len(bucket))
	}
	for k, id := range bucket {
		if c.ID(int32(k)) != id {
			t.Fatalf("%s: dense %d holds id %d, bucket has %d", pred, k, c.ID(int32(k)), id)
		}
		if k > 0 && bucket[k-1] >= id {
			t.Fatalf("%s: bucket not ascending at %d", pred, k)
		}
		row := s.rows[id]
		if c.RowLen(int32(k)) != len(row) {
			t.Fatalf("%s: dense %d arity %d, row has %d", pred, k, c.RowLen(int32(k)), len(row))
		}
		for pos := 0; pos < len(c.cols); pos++ {
			want := term.NoValue
			if pos < len(row) {
				want = row[pos]
			}
			if got := c.Col(pos)[k]; got != want {
				t.Fatalf("%s: col[%d][%d] = %d, want %d", pred, pos, k, got, want)
			}
		}
	}
	for pos := 0; pos < len(c.cols); pos++ {
		covered := map[int32]bool{}
		for runIdx, run := range []colRun{c.base[pos], c.tail[pos]} {
			for i, k := range run.ks {
				if run.vals[i] != c.cols[pos][k] {
					t.Fatalf("%s: run val mismatch at pos %d", pred, pos)
				}
				if i > 0 && (run.vals[i-1] > run.vals[i] ||
					(run.vals[i-1] == run.vals[i] && run.ks[i-1] >= run.ks[i])) {
					t.Fatalf("%s: pos %d run %d not sorted by (value, dense)", pred, pos, runIdx)
				}
				if runIdx == 0 && int(k) >= c.baseN {
					t.Fatalf("%s: base run holds dense %d beyond baseN %d", pred, k, c.baseN)
				}
				if runIdx == 1 && int(k) < c.baseN {
					t.Fatalf("%s: tail run holds dense %d below baseN %d", pred, k, c.baseN)
				}
				covered[k] = true
			}
		}
		for k := int32(0); k < int32(c.Extent()); k++ {
			want := c.cols[pos][k] != term.NoValue
			if covered[k] != want {
				t.Fatalf("%s: pos %d dense %d covered=%v, want %v", pred, pos, k, covered[k], want)
			}
		}
	}
}

// runsOf concatenates base and tail candidates for one probe.
func runsOf(c *Columnar, pos int, v term.ValueID) []int32 {
	b, tl := c.Runs(pos, v)
	out := append([]int32{}, b...)
	return append(out, tl...)
}

// TestColumnarBuildAndProbe: a freshly built index answers positional probes
// with exactly the matching facts, in ascending dense (= fact id) order.
func TestColumnarBuildAndProbe(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.5), true)
	s.MustAdd(own("A", "C", 0.3), true)
	s.MustAdd(own("B", "C", 0.5), true)
	c := s.EnsureColumnar("Own")
	checkColumnarCoherent(t, s, "Own")

	idA, ok := s.Interner().Lookup(term.Str("A"))
	if !ok {
		t.Fatal("A not interned")
	}
	got := runsOf(c, 0, idA)
	if len(got) != 2 || c.ID(got[0]) != 0 || c.ID(got[1]) != 1 {
		t.Fatalf("probe pos0=A: %v", got)
	}
	idHalf, _ := s.Interner().Lookup(term.Float(0.5))
	if got := runsOf(c, 2, idHalf); len(got) != 2 {
		t.Fatalf("probe pos2=0.5: %v", got)
	}
	if got := runsOf(c, 1, idA); len(got) != 0 {
		t.Fatalf("probe pos1=A should be empty: %v", got)
	}
	if c.RunLen(0, idA) != 2 {
		t.Fatalf("RunLen = %d, want 2", c.RunLen(0, idA))
	}
}

// TestColumnarAppendRefreshAndMerge: interleaving inserts with probes keeps
// the index coherent through tail refreshes and across the tail→base merge
// threshold, with the stats counters recording the maintenance work.
func TestColumnarAppendRefreshAndMerge(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.MustAdd(own(fmt.Sprintf("N%d", i), fmt.Sprintf("N%d", i+1), 0.5), true)
	}
	s.EnsureColumnar("Own")
	before := s.ColumnarStats()
	// Push well past the merge threshold (tail > 64 and tail*4 > base) in
	// several waves, refreshing between waves.
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < 60; i++ {
			s.MustAdd(own(fmt.Sprintf("W%dN%d", wave, i), "Hub", 0.25), true)
		}
		checkColumnarCoherent(t, s, "Own")
	}
	after := s.ColumnarStats()
	if after.AppendedRows-before.AppendedRows != 300 {
		t.Fatalf("appended rows moved by %d, want 300", after.AppendedRows-before.AppendedRows)
	}
	if after.TailRefreshes == before.TailRefreshes {
		t.Fatal("no tail refresh counted")
	}
	if after.Merges == before.Merges {
		t.Fatal("no merge counted despite 300 appended rows")
	}
	c := s.EnsureColumnar("Own")
	idHub, _ := s.Interner().Lookup(term.Str("Hub"))
	if got := runsOf(c, 1, idHub); len(got) != 300 {
		t.Fatalf("Hub probe returned %d candidates, want 300", len(got))
	}
}

// TestColumnarRetractRebuilds: a retraction invalidates the index; the next
// EnsureColumnar rebuilds it over the shrunken live extent.
func TestColumnarRetractRebuilds(t *testing.T) {
	s := NewStore()
	f1, _, _ := s.Add(own("A", "B", 0.5), true)
	s.MustAdd(own("B", "C", 0.5), true)
	s.EnsureColumnar("Own")
	rebuildsBefore := s.ColumnarStats().Rebuilds
	if err := s.Retract(f1.ID); err != nil {
		t.Fatal(err)
	}
	c := s.EnsureColumnar("Own")
	if c.Extent() != 1 || c.ID(0) != 1 {
		t.Fatalf("post-retract extent: %d ids %v", c.Extent(), c.ids)
	}
	checkColumnarCoherent(t, s, "Own")
	if got := s.ColumnarStats().Rebuilds; got != rebuildsBefore+1 {
		t.Fatalf("rebuilds = %d, want %d", got, rebuildsBefore+1)
	}
}

// TestColumnarMixedArity: facts of different arities under one predicate pad
// missing positions with NoValue and keep runs covering only real values.
func TestColumnarMixedArity(t *testing.T) {
	s := NewStore()
	s.MustAdd(ast.NewAtom("P", term.Str("a")), true)
	s.MustAdd(ast.NewAtom("P", term.Str("a"), term.Str("b")), true)
	s.EnsureColumnar("P")
	checkColumnarCoherent(t, s, "P")
	// Growing arity through the append path must pad old facts too.
	s.MustAdd(ast.NewAtom("P", term.Str("a"), term.Str("b"), term.Str("c")), true)
	c := s.EnsureColumnar("P")
	checkColumnarCoherent(t, s, "P")
	if c.RowLen(0) != 1 || c.RowLen(2) != 3 {
		t.Fatalf("row lens: %d %d", c.RowLen(0), c.RowLen(2))
	}
	idA, _ := s.Interner().Lookup(term.Str("a"))
	if got := runsOf(c, 0, idA); len(got) != 3 {
		t.Fatalf("pos0=a candidates: %v", got)
	}
	idB, _ := s.Interner().Lookup(term.Str("b"))
	if got := runsOf(c, 1, idB); len(got) != 2 {
		t.Fatalf("pos1=b candidates: %v", got)
	}
}

// TestColumnarDenseBoundary: the dense translation of a fact-id boundary
// splits old from new exactly.
func TestColumnarDenseBoundary(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.5), true)
	s.MustAdd(ast.NewAtom("Other", term.Str("x")), true) // id 1, different predicate
	s.MustAdd(own("B", "C", 0.5), true)                  // id 2
	c := s.EnsureColumnar("Own")
	for boundary, want := range map[FactID]int32{0: 0, 1: 1, 2: 1, 3: 2, 100: 2} {
		if got := c.DenseBoundary(boundary); got != want {
			t.Errorf("DenseBoundary(%d) = %d, want %d", boundary, got, want)
		}
	}
}

// TestColumnarEmptyPredicate: a predicate with no facts yields a usable
// empty index (constraint pseudo-rules probe never-derived predicates).
func TestColumnarEmptyPredicate(t *testing.T) {
	s := NewStore()
	c := s.EnsureColumnar("Nothing")
	if c.Extent() != 0 {
		t.Fatalf("extent = %d", c.Extent())
	}
	if got := runsOf(c, 0, 0); len(got) != 0 {
		t.Fatalf("probe on empty index: %v", got)
	}
	if c.AvgRun(0) != 1 {
		t.Fatalf("AvgRun on empty index = %d, want 1", c.AvgRun(0))
	}
}

// TestColumnarFrozenPanics: refreshing with pending work during a frozen
// snapshot phase is a caller bug and must panic; a watermark-only advance
// (no pending facts for the predicate) must not.
func TestColumnarFrozenPanics(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.5), true)
	s.EnsureColumnar("Own")
	s.MustAdd(ast.NewAtom("Other", term.Str("x")), true)
	s.Freeze()
	s.EnsureColumnar("Own") // watermark advance only: fine while frozen
	s.Thaw()
	s.MustAdd(own("B", "C", 0.5), true)
	s.Freeze()
	defer s.Thaw()
	defer func() {
		if recover() == nil {
			t.Fatal("EnsureColumnar with pending work while frozen did not panic")
		}
	}()
	s.EnsureColumnar("Own")
}

// TestColumnarDenseOrderMatchesMatch: the probe candidates agree with the
// hash-index Match on both membership and (fact id) order — the property the
// batch executor's byte-identity rests on.
func TestColumnarDenseOrderMatchesMatch(t *testing.T) {
	s := NewStore()
	names := []string{"A", "B", "C", "A", "B", "A"}
	for i, n := range names {
		s.MustAdd(own(n, fmt.Sprintf("T%d", i%3), 0.5), true)
	}
	c := s.EnsureColumnar("Own")
	for _, n := range []string{"A", "B", "C"} {
		id, _ := s.Interner().Lookup(term.Str(n))
		var got []FactID
		for _, k := range runsOf(c, 0, id) {
			got = append(got, c.ID(k))
		}
		want := s.Match(ast.NewAtom("Own", term.Str(n), term.Var("Y"), term.Var("S")))
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("%s: candidates not id-sorted: %v", n, got)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: columnar %v vs hash-index %v", n, got, want)
		}
	}
}

// TestColumnarLazyRuns: EnsureColumnarRuns sorts only the listed positions,
// later requests accumulate, probing a never-requested position panics, and
// appends keep partially-built indexes coherent.
func TestColumnarLazyRuns(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.5), true)
	s.MustAdd(own("A", "C", 0.3), true)
	c := s.EnsureColumnarRuns("Own", []int{0})
	if !c.built[0] || c.built[1] || c.built[2] {
		t.Fatalf("built = %v, want position 0 only", c.built)
	}
	idA, _ := s.Interner().Lookup(term.Str("A"))
	if got := runsOf(c, 0, idA); len(got) != 2 {
		t.Fatalf("pos0=A: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("probing an unbuilt position did not panic")
			}
		}()
		c.Runs(1, idA)
	}()
	// Appends must maintain the built position and leave the rest data-only.
	s.MustAdd(own("B", "C", 0.5), true)
	c = s.EnsureColumnarRuns("Own", []int{0})
	idB, _ := s.Interner().Lookup(term.Str("B"))
	if got := runsOf(c, 0, idB); len(got) != 1 || c.ID(got[0]) != 2 {
		t.Fatalf("pos0=B after append: %v", got)
	}
	// A later request builds the remaining position over the full extent.
	c = s.EnsureColumnarRuns("Own", []int{1})
	idC, _ := s.Interner().Lookup(term.Str("C"))
	if got := runsOf(c, 1, idC); len(got) != 2 {
		t.Fatalf("pos1=C: %v", got)
	}
	// The build-everything form still upgrades the whole index.
	checkColumnarCoherent(t, s, "Own")
}

// TestColumnarLazyRunsSurviveRetract: a rebuild after retraction re-sorts
// exactly the previously requested positions.
func TestColumnarLazyRunsSurviveRetract(t *testing.T) {
	s := NewStore()
	f1, _, _ := s.Add(own("A", "B", 0.5), true)
	s.MustAdd(own("B", "C", 0.7), true)
	s.EnsureColumnarRuns("Own", []int{0})
	if err := s.Retract(f1.ID); err != nil {
		t.Fatal(err)
	}
	c := s.EnsureColumnarRuns("Own", nil)
	if !c.built[0] || c.built[1] {
		t.Fatalf("built after rebuild = %v, want position 0 only", c.built)
	}
	idB, _ := s.Interner().Lookup(term.Str("B"))
	if got := runsOf(c, 0, idB); len(got) != 1 || c.ID(got[0]) != 1 {
		t.Fatalf("pos0=B after retract: %v", got)
	}
}

// TestColumnarRadixSort: runs long enough for the radix path (≥ 2048
// entries, built, refreshed, and merged) satisfy the same (value, dense)
// invariants the comparator path guarantees.
func TestColumnarRadixSort(t *testing.T) {
	s := NewStore()
	// Deterministic shuffled values with heavy duplication so the sort sees
	// long equal-value groups whose dense tie-break matters.
	for i := 0; i < 3000; i++ {
		s.MustAdd(own(fmt.Sprintf("C%d", i*7919%257), fmt.Sprintf("D%d", i%11), float64(i%13)/13), true)
	}
	checkColumnarCoherent(t, s, "Own")
	// Append another radix-sized wave to drive a tail sort and the merge
	// (each fact is unique via the share, names repeat heavily).
	for i := 0; i < 3000; i++ {
		s.MustAdd(own(fmt.Sprintf("C%d", i*104729%257), "Hub", float64(i)/3000), true)
	}
	checkColumnarCoherent(t, s, "Own")
	c := s.EnsureColumnar("Own")
	idHub, _ := s.Interner().Lookup(term.Str("Hub"))
	if got := runsOf(c, 1, idHub); len(got) != 3000 {
		t.Fatalf("Hub probe: %d candidates, want 3000", len(got))
	}
}

// seekOf is runsOf through a fresh iterator: one Seek on a just-created
// cursor must answer exactly like a direct Runs probe.
func seekOf(c *Columnar, pos int, v term.ValueID) []int32 {
	it := c.Iter(pos)
	b, tl := it.Seek(v)
	out := append([]int32{}, b...)
	return append(out, tl...)
}

// TestRunIterMatchesRuns: for every interned value — present or absent —
// Seek answers identically to Runs, whether the values are visited in
// ascending order on one iterator (the galloping fast path), in descending
// order (backward restarts), or each on a fresh iterator.
func TestRunIterMatchesRuns(t *testing.T) {
	s := NewStore()
	for i := 0; i < 40; i++ {
		s.MustAdd(own(fmt.Sprintf("C%d", i%7), fmt.Sprintf("C%d", (i*3)%11), float64(i%5)/4), true)
	}
	c := s.EnsureColumnar("Own")
	nvals := term.ValueID(s.Interner().Len())
	for pos := 0; pos < 3; pos++ {
		asc := c.Iter(pos)
		desc := c.Iter(pos)
		for v := term.ValueID(0); v < nvals; v++ {
			want := runsOf(c, pos, v)
			if got := seekOf(c, pos, v); !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) || fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("pos %d fresh Seek(%d) = %v, want %v", pos, v, got, want)
			}
			b, tl := asc.Seek(v)
			if got := append(append([]int32{}, b...), tl...); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("pos %d ascending Seek(%d) = %v, want %v", pos, v, got, want)
			}
			d := nvals - 1 - v
			b, tl = desc.Seek(d)
			if got, dw := append(append([]int32{}, b...), tl...), runsOf(c, pos, d); fmt.Sprint(got) != fmt.Sprint(dw) {
				t.Fatalf("pos %d descending Seek(%d) = %v, want %v", pos, d, got, dw)
			}
		}
		if asc.Seeks != uint64(nvals) {
			t.Fatalf("pos %d: Seeks = %d, want %d", pos, asc.Seeks, nvals)
		}
		if asc.GallopSteps == 0 || desc.GallopSteps == 0 {
			t.Fatalf("pos %d: galloping did no work (asc %d, desc %d)", pos, asc.GallopSteps, desc.GallopSteps)
		}
	}
	// Seeking past every interned value and at a huge id is empty, not a
	// crash; an out-of-range position yields an always-empty iterator.
	it := c.Iter(0)
	if b, tl := it.Seek(nvals + 100); len(b)+len(tl) != 0 {
		t.Fatalf("absent value: %v %v", b, tl)
	}
	far := c.Iter(9)
	if b, tl := far.Seek(0); len(b)+len(tl) != 0 {
		t.Fatalf("out-of-range position: %v %v", b, tl)
	}
}

// TestRunIterEmptyAndTailOnly: iterators stay correct on an empty
// predicate, and on an index whose base runs are empty because every fact
// arrived after the build (tail-only).
func TestRunIterEmptyAndTailOnly(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.5), true)
	c := s.EnsureColumnar("Own")
	idA, _ := s.Interner().Lookup(term.Str("A"))

	// Tail-only: grow the predicate after the build and re-ensure; the new
	// facts live in the LSM tail and Seek must surface them.
	for i := 0; i < 5; i++ {
		s.MustAdd(own("A", fmt.Sprintf("T%d", i), 0.9), true)
	}
	c = s.EnsureColumnar("Own")
	it := c.Iter(0)
	b, tl := it.Seek(idA)
	if len(b)+len(tl) != 6 {
		t.Fatalf("tail-only growth: base %v tail %v, want 6 total", b, tl)
	}
	if len(tl) == 0 {
		t.Fatal("expected candidates in the tail run")
	}
	if got := runsOf(c, 0, idA); fmt.Sprint(append(append([]int32{}, b...), tl...)) != fmt.Sprint(got) {
		t.Fatalf("Seek disagrees with Runs: %v %v vs %v", b, tl, got)
	}

	// Empty predicate: EnsureColumnar of a predicate with no facts.
	e := s.EnsureColumnar("Nothing")
	eit := e.Iter(0)
	if b, tl := eit.Seek(idA); len(b)+len(tl) != 0 {
		t.Fatalf("empty predicate: %v %v", b, tl)
	}
}

// TestRunIterPostRetractRebuild: a retraction invalidates the index; the
// rebuilt index's iterators see exactly the surviving facts.
func TestRunIterPostRetractRebuild(t *testing.T) {
	s := NewStore()
	f1, _, _ := s.Add(own("A", "B", 0.5), true)
	s.MustAdd(own("A", "C", 0.7), true)
	s.MustAdd(own("B", "C", 0.9), true)
	s.EnsureColumnar("Own")
	if err := s.Retract(f1.ID); err != nil {
		t.Fatal(err)
	}
	c := s.EnsureColumnar("Own")
	idA, _ := s.Interner().Lookup(term.Str("A"))
	it := c.Iter(0)
	b, tl := it.Seek(idA)
	if got := append(append([]int32{}, b...), tl...); len(got) != 1 || c.ID(got[0]) != 1 {
		t.Fatalf("post-retract Seek(A): base %v tail %v", b, tl)
	}
	checkColumnarCoherent(t, s, "Own")
}

// TestRunIterUnbuiltPanics: the frozen-phase guard — an iterator over a
// position whose runs were never ensured panics exactly like Runs, so a
// join can never silently read an unsorted column.
func TestRunIterUnbuiltPanics(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.5), true)
	c := s.EnsureColumnarRuns("Own", []int{0})
	s.Freeze()
	defer s.Thaw()
	if it := c.Iter(0); it.base == nil {
		t.Fatal("built position must iterate")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("iterating an unbuilt position did not panic")
		}
	}()
	c.Iter(1)
}
