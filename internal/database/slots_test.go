package database

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

func TestMatchAny(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.MustAdd(own("A", "C", 0.3), true)
	if !s.MatchAny(ast.NewAtom("Own", term.Str("A"), term.Var("Y"), term.Var("S"))) {
		t.Error("MatchAny missed an existing match")
	}
	if s.MatchAny(ast.NewAtom("Own", term.Str("Z"), term.Var("Y"), term.Var("S"))) {
		t.Error("MatchAny matched a non-existent constant")
	}
	// A never-interned constant short-circuits through its empty bucket.
	if s.MatchAny(ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Float(0.99))) {
		t.Error("MatchAny matched a never-interned value")
	}
	if s.MatchAny(ast.NewAtom("Nope", term.Var("X"))) {
		t.Error("MatchAny matched an absent predicate")
	}
}

func TestRowParallelsAtom(t *testing.T) {
	s := NewStore()
	f, _ := s.MustAdd(own("A", "B", 0.6), true)
	row := s.Row(f.ID)
	if len(row) != 3 {
		t.Fatalf("row arity = %d", len(row))
	}
	for pos, v := range row {
		got := s.Interner().Value(v)
		if !got.Equal(f.Atom.Terms[pos]) {
			t.Errorf("row[%d] resolves to %v, want %v", pos, got, f.Atom.Terms[pos])
		}
	}
}

// TestMatchBindSlotsAgainstMatchBind cross-checks the slot path against the
// map path on the same pattern: Own(X, Y, S) with X pre-bound yields the
// same facts in the same order.
func TestMatchBindSlotsAgainstMatchBind(t *testing.T) {
	s := NewStore()
	s.MustAdd(own("A", "B", 0.6), true)
	s.MustAdd(own("B", "C", 0.7), true)
	s.MustAdd(own("A", "C", 0.3), true)

	pattern := ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Var("S"))
	base := term.Substitution{"X": term.Str("A")}
	legacy := s.MatchBind(pattern, base)

	xID, ok := s.Interner().Lookup(term.Str("A"))
	if !ok {
		t.Fatal("A not interned")
	}
	sp := SlotPattern{Predicate: "Own", Ops: []SlotOp{
		{Kind: SlotBound, Slot: 0},
		{Kind: SlotWrite, Slot: 1},
		{Kind: SlotWrite, Slot: 2},
	}}
	frame := []term.ValueID{xID, term.NoValue, term.NoValue}
	var got []*Fact
	var bound [][2]term.Term
	s.MatchBindSlots(sp, frame, func(f *Fact) bool {
		got = append(got, f)
		bound = append(bound, [2]term.Term{s.Interner().Value(frame[1]), s.Interner().Value(frame[2])})
		return true
	})

	if len(got) != len(legacy) {
		t.Fatalf("slot path matched %d facts, legacy %d", len(got), len(legacy))
	}
	for i := range got {
		if got[i].ID != legacy[i].Fact.ID {
			t.Errorf("match %d: fact #%d vs #%d", i, got[i].ID, legacy[i].Fact.ID)
		}
		if !bound[i][0].Equal(legacy[i].Sub["Y"]) || !bound[i][1].Equal(legacy[i].Sub["S"]) {
			t.Errorf("match %d: slot bindings (%v, %v) vs legacy (%v, %v)",
				i, bound[i][0], bound[i][1], legacy[i].Sub["Y"], legacy[i].Sub["S"])
		}
	}
}

func TestBindRowSlotsRepeatedVariable(t *testing.T) {
	s := NewStore()
	loop, _ := s.MustAdd(own("A", "A", 1.0), true)
	edge, _ := s.MustAdd(own("A", "B", 0.6), true)
	sp := SlotPattern{Predicate: "Own", Ops: []SlotOp{
		{Kind: SlotWrite, Slot: 0},
		{Kind: SlotSame, Slot: 0},
		{Kind: SlotWrite, Slot: 1},
	}}
	frame := make([]term.ValueID, 2)
	if !s.BindRowSlots(sp, loop.ID, frame) {
		t.Error("self-loop row rejected by SlotSame")
	}
	if s.BindRowSlots(sp, edge.ID, frame) {
		t.Error("non-loop row accepted by SlotSame")
	}
}

func TestBindRowSlotsArityMismatch(t *testing.T) {
	s := NewStore()
	f, _ := s.MustAdd(ast.NewAtom("P", term.Str("a")), true)
	sp := SlotPattern{Predicate: "P", Ops: []SlotOp{
		{Kind: SlotWrite, Slot: 0},
		{Kind: SlotWrite, Slot: 1},
	}}
	if s.BindRowSlots(sp, f.ID, make([]term.ValueID, 2)) {
		t.Error("arity-mismatched row matched")
	}
}

// TestCandidatesSlotsSelectivity mirrors TestIndexSelectivity for the slot
// path: a bound position with a small bucket must beat the predicate extent.
func TestCandidatesSlotsSelectivity(t *testing.T) {
	s := NewStore()
	for i := 0; i < 50; i++ {
		s.MustAdd(ast.NewAtom("Own", term.Str("Hub"), term.Int(int64(i)), term.Float(0.5)), true)
	}
	s.MustAdd(ast.NewAtom("Own", term.Str("Rare"), term.Int(999), term.Float(0.5)), true)
	rare, _ := s.Interner().Lookup(term.Str("Rare"))
	sp := SlotPattern{Predicate: "Own", Ops: []SlotOp{
		{Kind: SlotConst, Val: rare},
		{Kind: SlotWrite, Slot: 0},
		{Kind: SlotWrite, Slot: 1},
	}}
	if got := s.CandidatesSlots(sp, make([]term.ValueID, 2)); len(got) != 1 {
		t.Errorf("candidate bucket = %d facts, want 1", len(got))
	}
}
