package database

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

// benchStore builds an ownership relation shaped like the chase hot path:
// n facts Own(owner, target, share) with 100 owners fanning out over
// targets, so a one-bound-position probe touches ~n/100 candidate rows.
func benchStore(n int) *Store {
	s := NewStore()
	for i := 0; i < n; i++ {
		s.MustAdd(ast.NewAtom("Own",
			term.Str(fmt.Sprintf("c%d", i%100)),
			term.Str(fmt.Sprintf("c%d", i)),
			term.Float(float64(i%97)/97),
		), true)
	}
	return s
}

// BenchmarkMatchBind compares the two per-candidate binding paths on the
// identical probe — Own(X, Y, S) with X bound to the densest owner. Legacy
// clones a map-based substitution per candidate; Slots writes interned ids
// into a reusable frame.
func BenchmarkMatchBind(b *testing.B) {
	s := benchStore(10_000)
	pattern := ast.NewAtom("Own", term.Var("X"), term.Var("Y"), term.Var("S"))
	bound := term.Str("c0")

	b.Run("Legacy", func(b *testing.B) {
		base := term.Substitution{"X": bound}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := s.MatchBind(pattern, base)
			if len(out) == 0 {
				b.Fatal("no matches")
			}
		}
	})

	b.Run("Slots", func(b *testing.B) {
		xID, ok := s.Interner().Lookup(bound)
		if !ok {
			b.Fatal("bound value not interned")
		}
		sp := SlotPattern{Predicate: "Own", Ops: []SlotOp{
			{Kind: SlotBound, Slot: 0},
			{Kind: SlotWrite, Slot: 1},
			{Kind: SlotWrite, Slot: 2},
		}}
		frame := make([]term.ValueID, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame[0] = xID
			matched := 0
			s.MatchBindSlots(sp, frame, func(f *Fact) bool {
				matched++
				return true
			})
			if matched == 0 {
				b.Fatal("no matches")
			}
		}
	})
}
