package paths

import (
	"strings"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/parser"
)

const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
`

const controlSrc = `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`

const stressSrc = `
@name("stress-test").
@output("Default").
@label("s4") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("s5") Risk(C, EL, "long") :- Default(D), LongTermDebts(D, C, V), EL = sum(V).
@label("s6") Risk(C, ES, "short") :- Default(D), ShortTermDebts(D, C, V), ES = sum(V).
@label("s7") Default(C) :- Risk(C, E, T), HasCapital(C, P2), L = sum(E), L > P2.
`

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(depgraph.New(prog))
}

func labels(p *Path) string { return strings.Join(p.RuleLabels(), ",") }

// pathSet maps path id -> rule labels for compact comparison.
func pathSet(ps []*Path) map[string]string {
	out := map[string]string{}
	for _, p := range ps {
		out[p.ID] = labels(p)
	}
	return out
}

// TestFigure4And5 reproduces the reasoning paths of Example 4.3/4.4: the
// simple reasoning paths Π1 = {α}, Π2 = {α,β,γ} with aggregation variant
// (the paper's Π3), and the reasoning cycle Γ1 = {β,γ} with its variant.
func TestFigure4And5(t *testing.T) {
	a := analyze(t, stressSimpleSrc)

	simple := pathSet(a.Simple)
	want := map[string]string{
		"Π1":  "alpha",
		"Π2":  "alpha,beta,gamma",
		"Π2*": "alpha,beta,gamma",
	}
	if len(simple) != len(want) {
		t.Fatalf("simple paths = %v, want %v", simple, want)
	}
	for id, rules := range want {
		if simple[id] != rules {
			t.Errorf("%s = %q, want %q", id, simple[id], rules)
		}
	}

	cycles := pathSet(a.Cycles)
	wantC := map[string]string{"Γ1": "beta,gamma", "Γ1*": "beta,gamma"}
	if len(cycles) != len(wantC) {
		t.Fatalf("cycles = %v, want %v", cycles, wantC)
	}
	for id, rules := range wantC {
		if cycles[id] != rules {
			t.Errorf("%s = %q, want %q", id, cycles[id], rules)
		}
	}

	// The dashed variants are marked Dashed, anchored cycles carry their
	// critical node.
	if p := a.ByID("Π2*"); p == nil || !p.Dashed {
		t.Error("Π2* not dashed")
	}
	if p := a.ByID("Γ1"); p == nil || p.Anchor != "Default" {
		t.Errorf("Γ1 anchor = %v", p)
	}
	if p := a.ByID("Π1"); p.Dashed || p.HasAggregation() {
		t.Error("Π1 should have no aggregation")
	}
}

// TestFigure10CompanyControl reproduces the company control column of
// Figure 10: Π1={σ1}, Π2={σ1,σ3}, Π3={σ2}, Π4={σ2,σ3}, Π5={σ1,σ2,σ3} and
// Γ1={σ3}, with aggregation variants wherever σ3 occurs.
func TestFigure10CompanyControl(t *testing.T) {
	a := analyze(t, controlSrc)

	want := map[string]string{
		"Π1":  "s1",
		"Π2":  "s1,s3",
		"Π2*": "s1,s3",
		"Π3":  "s2",
		"Π4":  "s2,s3",
		"Π4*": "s2,s3",
		"Π5":  "s1,s2,s3",
		"Π5*": "s1,s2,s3",
	}
	got := pathSet(a.Simple)
	if len(got) != len(want) {
		t.Fatalf("simple paths:\ngot  %v\nwant %v", got, want)
	}
	for id, rules := range want {
		if got[id] != rules {
			t.Errorf("%s = %q, want %q", id, got[id], rules)
		}
	}
	if p := a.ByID("Π5"); p == nil || !p.Joint {
		t.Error("Π5 not marked joint")
	}

	wantC := map[string]string{"Γ1": "s3", "Γ1*": "s3"}
	gotC := pathSet(a.Cycles)
	if len(gotC) != len(wantC) {
		t.Fatalf("cycles = %v, want %v", gotC, wantC)
	}
	for id, rules := range wantC {
		if gotC[id] != rules {
			t.Errorf("%s = %q, want %q", id, gotC[id], rules)
		}
	}
}

// TestFigure10StressTest reproduces the stress test column of Figure 10
// (per-application numbering; the paper numbers across applications):
// Π1={σ4}, Π2={σ4,σ5,σ7}, Π3={σ4,σ6,σ7}, Π4={σ4,σ5,σ6,σ7} and
// Γ1={σ5,σ7}, Γ2={σ6,σ7}, Γ3={σ5,σ6,σ7}.
func TestFigure10StressTest(t *testing.T) {
	a := analyze(t, stressSrc)

	want := map[string]string{
		"Π1":  "s4",
		"Π2":  "s4,s5,s7",
		"Π2*": "s4,s5,s7",
		"Π3":  "s4,s6,s7",
		"Π3*": "s4,s6,s7",
		"Π4":  "s4,s5,s6,s7",
		"Π4*": "s4,s5,s6,s7",
	}
	got := pathSet(a.Simple)
	if len(got) != len(want) {
		t.Fatalf("simple paths:\ngot  %v\nwant %v", got, want)
	}
	for id, rules := range want {
		if got[id] != rules {
			t.Errorf("%s = %q, want %q", id, got[id], rules)
		}
	}

	wantC := map[string]string{
		"Γ1":  "s5,s7",
		"Γ1*": "s5,s7",
		"Γ2":  "s6,s7",
		"Γ2*": "s6,s7",
		"Γ3":  "s5,s6,s7",
		"Γ3*": "s5,s6,s7",
	}
	gotC := pathSet(a.Cycles)
	if len(gotC) != len(wantC) {
		t.Fatalf("cycles:\ngot  %v\nwant %v", gotC, wantC)
	}
	for id, rules := range wantC {
		if gotC[id] != rules {
			t.Errorf("%s = %q, want %q", id, gotC[id], rules)
		}
	}
	if p := a.ByID("Γ3"); p == nil || !p.Joint {
		t.Error("Γ3 not marked joint")
	}
}

// TestFinitenessNonRecursive: an acyclic program has simple paths only.
func TestFinitenessNonRecursive(t *testing.T) {
	a := analyze(t, `
@output("C").
@label("r1") B(X) :- A(X).
@label("r2") C(X) :- B(X).
`)
	if len(a.Cycles) != 0 {
		t.Errorf("cycles = %v, want none", pathSet(a.Cycles))
	}
	if len(a.Simple) != 1 || labels(a.Simple[0]) != "r1,r2" {
		t.Errorf("simple = %v", pathSet(a.Simple))
	}
}

// TestTwoIntensionalBodyPredicates: a rule joining two intensional
// predicates takes the cartesian product of supports.
func TestTwoIntensionalBodyPredicates(t *testing.T) {
	a := analyze(t, `
@output("Goal").
@label("r1") P(X) :- A(X).
@label("r2") Q(X) :- B(X).
@label("r3") Goal(X) :- P(X), Q(X).
`)
	if len(a.Simple) != 1 {
		t.Fatalf("simple = %v", pathSet(a.Simple))
	}
	if got := labels(a.Simple[0]); got != "r1,r2,r3" {
		t.Errorf("path = %q, want r1,r2,r3", got)
	}
}

func TestAdjacent(t *testing.T) {
	a := analyze(t, stressSimpleSrc)
	pi2 := a.ByID("Π2")
	gamma1 := a.ByID("Γ1")
	// The cycle consumes Default, which Π2 derives: adjacent.
	if !Adjacent(pi2, gamma1) {
		t.Error("Γ1 not adjacent to Π2")
	}
	// A cycle is adjacent to itself (Default -> ... -> Default).
	if !Adjacent(gamma1, gamma1) {
		t.Error("Γ1 not self-adjacent")
	}
	pi1 := a.ByID("Π1")
	if !Adjacent(pi1, gamma1) {
		t.Error("Γ1 not adjacent to Π1")
	}
	empty := &Path{}
	if Adjacent(empty, pi1) || Adjacent(pi1, empty) {
		t.Error("empty path adjacent")
	}
}

func TestTableRendering(t *testing.T) {
	a := analyze(t, controlSrc)
	table := a.Table()
	for _, sub := range []string{
		"Simple Reasoning Paths:",
		"Π2* = {s1, s3}",
		"Π5* = {s1, s2, s3}",
		"Reasoning Cycles:",
		"Γ1* = {s3}",
		"Π1 = {s1}",
	} {
		if !strings.Contains(table, sub) {
			t.Errorf("table missing %q:\n%s", sub, table)
		}
	}
	// Paths without aggregation have no star: "Π1 = {s1}" but not "Π1*".
	if strings.Contains(table, "Π1*") || strings.Contains(table, "Π3*") {
		t.Errorf("non-aggregation path starred:\n%s", table)
	}
}

func TestByIDAndAll(t *testing.T) {
	a := analyze(t, stressSimpleSrc)
	if got := len(a.All()); got != 5 {
		t.Errorf("All = %d, want 5", got)
	}
	if a.ByID("Π1") == nil || a.ByID("nope") != nil {
		t.Error("ByID wrong")
	}
}

func TestPathStringAndKind(t *testing.T) {
	a := analyze(t, stressSimpleSrc)
	p := a.ByID("Π2")
	if got := p.String(); got != "Π2 = {alpha, beta, gamma}" {
		t.Errorf("String = %q", got)
	}
	if p.Kind.String() != "simple path" || Cycle.String() != "cycle" {
		t.Error("Kind strings wrong")
	}
	if a.ByID("Γ1").Kind != Cycle {
		t.Error("Γ1 kind not cycle")
	}
}
