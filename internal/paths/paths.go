// Package paths implements the structural analysis of Section 4.1 of the
// paper: it derives the finite set of reasoning paths — simple reasoning
// paths and reasoning cycles (Definition 4.2) — from the dependency graph of
// a Vadalog program, including the "dashed" aggregation variants introduced
// by the Analysis of Aggregations.
//
// A reasoning path is represented compactly as a sequence of rules
// Π = {σ1,...,σn} in derivation order (supports first). Enumeration visits
// every edge at most once, so the set of reasoning paths is finite by
// construction.
//
// # Concurrency contract
//
// Analyze is a pure function over an immutable depgraph.Graph and may run
// concurrently. The *Analysis it returns (and every Path in it) is
// immutable afterwards and safe for concurrent readers — the template
// store and the mapper read one shared Analysis per application without
// locking.
package paths

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/depgraph"
)

// Kind distinguishes simple reasoning paths from reasoning cycles.
type Kind int

const (
	// SimplePath is a reasoning path from root predicates to the leaf.
	SimplePath Kind = iota
	// Cycle is a reasoning cycle connecting a critical node with itself.
	Cycle
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	if k == Cycle {
		return "cycle"
	}
	return "simple path"
}

// Path is one reasoning path: a simple reasoning path Π or a reasoning
// cycle Γ, in the compact rule-sequence notation of the paper.
type Path struct {
	// ID is the display name: Π1, Π2, Γ1; dashed variants append *, as in
	// Π2*.
	ID string
	// Kind is SimplePath or Cycle.
	Kind Kind
	// Rules is the rule sequence in derivation order (supports before
	// consumers).
	Rules []*ast.Rule
	// Dashed marks the aggregation variant capturing multi-contributor
	// aggregations (rendered with dashed edges in the paper's figures).
	Dashed bool
	// Joint marks paths merged from several basic paths sharing their
	// final rule (e.g. Π5 = {σ1, σ2, σ3} in the company control program).
	Joint bool
	// Anchor is the critical node a cycle starts and ends at; empty for
	// simple paths.
	Anchor string
}

// RuleLabels returns the labels of the path's rules in order.
func (p *Path) RuleLabels() []string {
	out := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		out[i] = r.Label
	}
	return out
}

// HasAggregation reports whether any rule of the path aggregates.
func (p *Path) HasAggregation() bool {
	for _, r := range p.Rules {
		if r.HasAggregation() {
			return true
		}
	}
	return false
}

// SetKey returns a canonical key of the path's rule set plus variant flag,
// used for deduplication.
func (p *Path) SetKey() string {
	labels := p.RuleLabels()
	sort.Strings(labels)
	key := strings.Join(labels, ",")
	if p.Dashed {
		key += "*"
	}
	if p.Kind == Cycle {
		key = "cycle:" + key
	}
	return key
}

// String renders the path in the paper's compact notation, e.g.
// "Π2 = {σ1, σ3}".
func (p *Path) String() string {
	return fmt.Sprintf("%s = {%s}", p.ID, strings.Join(p.RuleLabels(), ", "))
}

// Analysis is the result of the structural analysis of one program.
type Analysis struct {
	// Graph is the dependency graph analysed.
	Graph *depgraph.Graph
	// Simple holds the simple reasoning paths: basic paths first (in
	// lexicographic rule order), then joint paths, each followed by its
	// dashed variant when aggregations are present.
	Simple []*Path
	// Cycles holds the reasoning cycles in the same arrangement.
	Cycles []*Path
}

// All returns every reasoning path: simple paths then cycles.
func (a *Analysis) All() []*Path {
	out := make([]*Path, 0, len(a.Simple)+len(a.Cycles))
	out = append(out, a.Simple...)
	out = append(out, a.Cycles...)
	return out
}

// ByID returns the path with the given display name, or nil.
func (a *Analysis) ByID(id string) *Path {
	for _, p := range a.All() {
		if p.ID == id {
			return p
		}
	}
	return nil
}

// Table renders the analysis as the two-column table of the paper's
// Figure 10.
func (a *Analysis) Table() string {
	var sb strings.Builder
	sb.WriteString("Simple Reasoning Paths:\n")
	for _, p := range a.Simple {
		if p.Dashed {
			continue // the table marks availability with *, as the paper does
		}
		star := ""
		if a.hasDashedTwin(p) {
			star = "*"
		}
		fmt.Fprintf(&sb, "  %s%s = {%s}\n", p.ID, star, strings.Join(p.RuleLabels(), ", "))
	}
	sb.WriteString("Reasoning Cycles:\n")
	for _, p := range a.Cycles {
		if p.Dashed {
			continue
		}
		star := ""
		if a.hasDashedTwin(p) {
			star = "*"
		}
		fmt.Fprintf(&sb, "  %s%s = {%s}\n", p.ID, star, strings.Join(p.RuleLabels(), ", "))
	}
	return sb.String()
}

func (a *Analysis) hasDashedTwin(p *Path) bool {
	return a.ByID(p.ID+"*") != nil
}

// Adjacent reports whether b can follow a in a reasoning graph: there is a
// (predicate-level) homomorphism from the head of a's last rule to a body
// atom of b's first consuming rule (paper Section 4.1).
func Adjacent(a, b *Path) bool {
	if len(a.Rules) == 0 || len(b.Rules) == 0 {
		return false
	}
	headPred := a.Rules[len(a.Rules)-1].Head.Predicate
	for _, r := range b.Rules {
		for _, atom := range r.Body {
			if atom.Predicate == headPred {
				return true
			}
		}
	}
	return false
}

// Analyze performs the structural analysis of a program's dependency graph.
func Analyze(g *depgraph.Graph) *Analysis {
	a := &analyzer{g: g, prog: g.Program()}
	ruleIdx := map[*ast.Rule]int{}
	for i, r := range a.prog.Rules {
		ruleIdx[r] = i
	}
	a.ruleIdx = ruleIdx

	simple := a.simplePaths()
	cycles := a.cycles()

	res := &Analysis{Graph: g}
	res.Simple = nameAndExpand(simple, "Π")
	res.Cycles = nameAndExpand(cycles, "Γ")
	return res
}

type analyzer struct {
	g       *depgraph.Graph
	prog    *ast.Program
	ruleIdx map[*ast.Rule]int
}

// rulesDeriving returns the rules with the given head predicate, in
// declaration order.
func (a *analyzer) rulesDeriving(pred string) []*ast.Rule {
	var out []*ast.Rule
	for _, r := range a.prog.Rules {
		if r.Head.Predicate == pred {
			out = append(out, r)
		}
	}
	return out
}

// intensionalBodyPreds returns the distinct intensional body predicates of a
// rule, in body order.
func (a *analyzer) intensionalBodyPreds(r *ast.Rule) []string {
	var out []string
	seen := map[string]bool{}
	for _, atom := range r.Body {
		if a.prog.IsIntensional(atom.Predicate) && !seen[atom.Predicate] {
			seen[atom.Predicate] = true
			out = append(out, atom.Predicate)
		}
	}
	return out
}

// chains enumerates the basic derivation chains for pred: rule sequences in
// derivation order whose last rule derives pred and whose intensional body
// predicates are recursively supported, never reusing a rule (one visit per
// edge).
func (a *analyzer) chains(pred string, used map[*ast.Rule]bool) [][]*ast.Rule {
	var out [][]*ast.Rule
	for _, r := range a.rulesDeriving(pred) {
		if used[r] {
			continue
		}
		idb := a.intensionalBodyPreds(r)
		if len(idb) == 0 {
			out = append(out, []*ast.Rule{r})
			continue
		}
		used[r] = true
		// Enumerate supports per intensional body predicate, then take the
		// cartesian product across predicates.
		supportsPerPred := make([][][]*ast.Rule, len(idb))
		feasible := true
		for i, bp := range idb {
			supportsPerPred[i] = a.chains(bp, used)
			if len(supportsPerPred[i]) == 0 {
				feasible = false
				break
			}
		}
		if feasible {
			for _, combo := range cartesian(supportsPerPred) {
				chain := mergeChains(combo)
				chain = append(chain, r)
				out = append(out, chain)
			}
		}
		delete(used, r)
	}
	return out
}

func cartesian(sets [][][]*ast.Rule) [][][]*ast.Rule {
	result := [][][]*ast.Rule{{}}
	for _, set := range sets {
		var next [][][]*ast.Rule
		for _, partial := range result {
			for _, choice := range set {
				combo := make([][]*ast.Rule, len(partial), len(partial)+1)
				copy(combo, partial)
				combo = append(combo, choice)
				next = append(next, combo)
			}
		}
		result = next
	}
	return result
}

// mergeChains concatenates support chains, deduplicating rules while
// preserving first-occurrence order.
func mergeChains(chains [][]*ast.Rule) []*ast.Rule {
	var out []*ast.Rule
	seen := map[*ast.Rule]bool{}
	for _, c := range chains {
		for _, r := range c {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// simplePaths enumerates the simple reasoning paths: basic chains to the
// leaf plus joint merges of chains sharing their final rule.
func (a *analyzer) simplePaths() []*Path {
	leaf := a.g.Leaf()
	basics := a.chains(leaf, map[*ast.Rule]bool{})
	sortChains(basics, a.ruleIdx)
	var out []*Path
	for _, c := range basics {
		out = append(out, &Path{Kind: SimplePath, Rules: c})
	}
	out = append(out, a.jointMerges(basics, SimplePath, "")...)
	return dedupPaths(out)
}

// jointMerges merges groups of chains that share their final (consuming)
// rule into joint paths: these capture aggregations fed by several distinct
// reasoning stories, such as Π5 = {σ1, σ2, σ3}.
func (a *analyzer) jointMerges(chains [][]*ast.Rule, kind Kind, anchor string) []*Path {
	groups := map[*ast.Rule][][]*ast.Rule{}
	var order []*ast.Rule
	for _, c := range chains {
		final := c[len(c)-1]
		if _, ok := groups[final]; !ok {
			order = append(order, final)
		}
		groups[final] = append(groups[final], c)
	}
	var out []*Path
	for _, final := range order {
		group := groups[final]
		if len(group) < 2 {
			continue
		}
		for _, subset := range subsets(len(group)) {
			if len(subset) < 2 {
				continue
			}
			var chosen [][]*ast.Rule
			for _, i := range subset {
				// Strip the shared final rule before merging; re-append once.
				c := group[i]
				chosen = append(chosen, c[:len(c)-1])
			}
			merged := mergeChains(chosen)
			merged = append(merged, final)
			sortRulesByIndex(merged[:len(merged)-1], a.ruleIdx)
			out = append(out, &Path{Kind: kind, Rules: merged, Joint: true, Anchor: anchor})
		}
	}
	return out
}

// subsets enumerates index subsets of {0..n-1} in size-then-lexicographic
// order.
func subsets(n int) [][]int {
	var out [][]int
	for size := 2; size <= n; size++ {
		idx := make([]int, size)
		var rec func(start, k int)
		rec = func(start, k int) {
			if k == size {
				cp := make([]int, size)
				copy(cp, idx)
				out = append(out, cp)
				return
			}
			for i := start; i < n; i++ {
				idx[k] = i
				rec(i+1, k+1)
			}
		}
		rec(0, 0)
	}
	return out
}

// cycles enumerates the reasoning cycles: directed rule cycles through each
// critical node, plus joint merges.
func (a *analyzer) cycles() []*Path {
	var all []*Path
	seen := map[string]bool{}
	for _, c := range a.g.CriticalNodes() {
		basics := a.cyclesFrom(c)
		sortChains(basics, a.ruleIdx)
		var paths []*Path
		for _, chain := range basics {
			paths = append(paths, &Path{Kind: Cycle, Rules: chain, Anchor: c})
		}
		paths = append(paths, a.jointMerges(basics, Cycle, c)...)
		for _, p := range paths {
			key := p.SetKey()
			if !seen[key] {
				seen[key] = true
				all = append(all, p)
			}
		}
	}
	return all
}

// cyclesFrom enumerates rule chains that leave the critical node c and
// return to it: body of the first rule contains c, consecutive rules chain
// head-to-body, the last rule's head is c, and no rule repeats.
func (a *analyzer) cyclesFrom(c string) [][]*ast.Rule {
	var out [][]*ast.Rule
	var chain []*ast.Rule
	used := map[*ast.Rule]bool{}
	var dfs func(pred string)
	dfs = func(pred string) {
		for _, r := range a.prog.Rules {
			if used[r] || !bodyContains(r, pred) {
				continue
			}
			used[r] = true
			chain = append(chain, r)
			if r.Head.Predicate == c {
				cp := make([]*ast.Rule, len(chain))
				copy(cp, chain)
				out = append(out, cp)
			} else if a.prog.IsIntensional(r.Head.Predicate) {
				dfs(r.Head.Predicate)
			}
			chain = chain[:len(chain)-1]
			delete(used, r)
		}
	}
	dfs(c)
	return out
}

func bodyContains(r *ast.Rule, pred string) bool {
	for _, a := range r.Body {
		if a.Predicate == pred {
			return true
		}
	}
	return false
}

func sortRulesByIndex(rules []*ast.Rule, idx map[*ast.Rule]int) {
	sort.Slice(rules, func(i, j int) bool { return idx[rules[i]] < idx[rules[j]] })
}

// sortChains orders chains lexicographically by rule declaration index.
func sortChains(chains [][]*ast.Rule, idx map[*ast.Rule]int) {
	sort.Slice(chains, func(i, j int) bool {
		a, b := chains[i], chains[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if idx[a[k]] != idx[b[k]] {
				return idx[a[k]] < idx[b[k]]
			}
		}
		return len(a) < len(b)
	})
}

// nameAndExpand assigns display names and appends the dashed aggregation
// variant after every path containing an aggregation rule.
func nameAndExpand(paths []*Path, prefix string) []*Path {
	var out []*Path
	for i, p := range paths {
		p.ID = fmt.Sprintf("%s%d", prefix, i+1)
		out = append(out, p)
		if p.HasAggregation() {
			dashed := &Path{
				ID:     p.ID + "*",
				Kind:   p.Kind,
				Rules:  p.Rules,
				Dashed: true,
				Joint:  p.Joint,
				Anchor: p.Anchor,
			}
			out = append(out, dashed)
		}
	}
	return out
}

func dedupPaths(paths []*Path) []*Path {
	seen := map[string]bool{}
	var out []*Path
	for _, p := range paths {
		key := p.SetKey()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}
