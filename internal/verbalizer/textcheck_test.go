package verbalizer

import "testing"

func TestContainsConstant(t *testing.T) {
	tests := []struct {
		text string
		c    string
		want bool
	}{
		{"a shock of 6 euro", "6", true},
		{"its loan of 0.21 euros", "2", false},
		{"its loan of 0.21 euros", "0.21", true},
		{"total of 11 million", "1", false},
		{"total of 11 million", "11", true},
		{"entity N2_3 defaults", "N2_3", true},
		{"entity N2_3 defaults", "2", false},
		{"entity N2_3 defaults", "N2", false},
		{"capital of 0.43.", "0.43", true},
		{"capital of 2.", "2", true},
		{"capital of 2.5.", "2", false},
		{"IrishBank controls MadridCredit", "IrishBank", true},
		{"IrishBank controls MadridCredit", "Bank", false},
		{"A defaults", "A", true},
		{"CASCADE", "A", false},
		{"ends with B", "B", true},
		{"B starts", "B", true},
		{"", "x", false},
		{"anything", "", true},
		{"7 and 9", "9", true},
		{"sum of 2 and 9", "2", true},
	}
	for _, tt := range tests {
		if got := ContainsConstant(tt.text, tt.c); got != tt.want {
			t.Errorf("ContainsConstant(%q, %q) = %v, want %v", tt.text, tt.c, got, tt.want)
		}
	}
}

func TestMissingConstants(t *testing.T) {
	text := "A owes 7 to B"
	missing := MissingConstants(text, []string{"A", "7", "B", "C", "11"})
	if len(missing) != 2 || missing[0] != "C" || missing[1] != "11" {
		t.Errorf("MissingConstants = %v", missing)
	}
	if got := MissingConstants(text, nil); len(got) != 0 {
		t.Errorf("nil constants = %v", got)
	}
}
