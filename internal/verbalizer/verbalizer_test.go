package verbalizer

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/glossary"
	"repro/internal/parser"
	"repro/internal/term"
)

const figure7Src = `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

func glos(t *testing.T) *glossary.Glossary {
	t.Helper()
	return glossary.MustParse(figure7Src)
}

func TestJoinList(t *testing.T) {
	tests := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "a and b"},
		{[]string{"a", "b", "c"}, "a, b and c"},
		{[]string{"2", "9", "4", "1"}, "2, 9, 4 and 1"},
	}
	for _, tt := range tests {
		if got := JoinList(tt.in); got != tt.want {
			t.Errorf("JoinList(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAtomText(t *testing.T) {
	g := glos(t)
	a := ast.NewAtom("Debts", term.Var("D"), term.Var("C"), term.Var("V"))
	got, err := AtomText(a, g, TokenRenderer(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got != "<D> has an amount <V> of debts with <C>." {
		t.Errorf("AtomText = %q", got)
	}

	// Constant positions use the constant display.
	a2 := ast.NewAtom("Debts", term.Str("A"), term.Var("C"), term.Float(7))
	got2, _ := AtomText(a2, g, TokenRenderer(nil))
	if got2 != "A has an amount 7 of debts with <C>." {
		t.Errorf("AtomText = %q", got2)
	}

	// Renaming through the token renderer.
	got3, _ := AtomText(a, g, TokenRenderer(map[string]string{"D": "d2"}))
	if !strings.Contains(got3, "<d2>") {
		t.Errorf("renamed AtomText = %q", got3)
	}

	// Missing entry and arity mismatch error.
	if _, err := AtomText(ast.NewAtom("Nope", term.Var("X")), g, TokenRenderer(nil)); err == nil {
		t.Error("missing entry accepted")
	}
	if _, err := AtomText(ast.NewAtom("Default", term.Var("X"), term.Var("Y")), g, TokenRenderer(nil)); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestConditionAndAssignmentText(t *testing.T) {
	c := ast.Condition{Left: term.Var("S"), Op: ast.OpGt, Right: term.Var("P1")}
	if got := ConditionText(c, TokenRenderer(nil)); got != "<S> is higher than <P1>" {
		t.Errorf("ConditionText = %q", got)
	}
	vals := ValueRenderer(term.Substitution{"S": term.Float(6), "P1": term.Float(5)})
	if got := ConditionText(c, vals); got != "6 is higher than 5" {
		t.Errorf("ConditionText values = %q", got)
	}
	as := ast.Assignment{Target: "S", Expr: ast.BinaryOf(term.Var("S1"), ast.ArithMul, term.Var("S2"))}
	if got := AssignmentText(as, TokenRenderer(nil)); got != "<S> is given by <S1> multiplied by <S2>" {
		t.Errorf("AssignmentText = %q", got)
	}
}

func TestAggregationText(t *testing.T) {
	g := ast.Aggregation{Target: "E", Func: ast.AggSum, Over: "V"}
	if got := AggregationText(g, TokenRenderer(nil), nil); got != "with <E> given by the sum of <V>" {
		t.Errorf("AggregationText = %q", got)
	}
	if got := AggregationText(g, TokenRenderer(nil), []string{"2", "9"}); got != "with <E> given by the sum of 2 and 9" {
		t.Errorf("AggregationText contributors = %q", got)
	}
}

// TestRuleSentenceAlpha reproduces the first template row of Figure 6: the
// verbalization of rule α.
func TestRuleSentenceAlpha(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	alpha := prog.RuleByLabel("alpha")
	got, err := RuleSentence(alpha, glos(t), TokenRenderer(nil), AggRendering{})
	if err != nil {
		t.Fatal(err)
	}
	want := "Since a shock amounting to <S> euro affects <F>, and <F> is a financial institution with capital of <P1>, and <S> is higher than <P1>, then <F> is in default."
	if got != want {
		t.Errorf("RuleSentence =\n%q, want\n%q", got, want)
	}
}

func TestRuleSentenceBetaTruncatedAndExpanded(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	beta := prog.RuleByLabel("beta")
	g := glos(t)

	truncated, err := RuleSentence(beta, g, TokenRenderer(nil), AggRendering{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(truncated, "sum") {
		t.Errorf("truncated sentence verbalizes aggregator: %q", truncated)
	}

	expanded, err := RuleSentence(beta, g, TokenRenderer(nil), AggRendering{Expand: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(expanded, "with <E> given by the sum of <V>.") {
		t.Errorf("expanded sentence = %q", expanded)
	}
}

// TestVerbalizeProof reproduces the deterministic explanation of the
// Example 4.7 proof, checking that all constants of the inference appear.
func TestVerbalizeProof(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	res := chase.MustRun(prog, chase.Options{})
	a, _ := parser.ParseAtom(`Default("C")`)
	id, err := res.LookupDerived(a)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.ExtractProof(id)
	if err != nil {
		t.Fatal(err)
	}
	text, err := VerbalizeProof(proof, glos(t))
	if err != nil {
		t.Fatal(err)
	}

	// All constants used by the inference appear.
	for _, c := range proof.Constants() {
		if !strings.Contains(text, c) {
			t.Errorf("explanation missing constant %q:\n%s", c, text)
		}
	}
	// Five sentences, one per chase step.
	if got := strings.Count(text, "Since "); got != 5 {
		t.Errorf("sentences = %d, want 5:\n%s", got, text)
	}
	// The multi-contributor aggregation expands the sum of 2 and 9.
	if !strings.Contains(text, "the sum of 2 and 9") {
		t.Errorf("aggregation not expanded:\n%s", text)
	}
	// The single-contributor aggregation (Risk(B,7)) is truncated.
	if strings.Contains(text, "the sum of 7") {
		t.Errorf("single-contributor aggregation expanded:\n%s", text)
	}
}

func TestDerivationRendererContributorList(t *testing.T) {
	// Two debtors default and both expose the same creditor: the <D>
	// variable of rule beta renders as the list of debtors.
	src := `
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
Shock("A", 6.0). HasCapital("A", 5.0).
Shock("B", 6.0). HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "C", 8.0).
Debts("B", "C", 5.0).
`
	prog := parser.MustParse(src)
	res := chase.MustRun(prog, chase.Options{})
	a, _ := parser.ParseAtom(`Risk("C", 13.0)`)
	id, err := res.LookupDerived(a)
	if err != nil {
		t.Fatalf("lookup: %v\n%s", err, res.Store.Dump())
	}
	d := res.CanonicalDerivation(id)
	render := DerivationRenderer(d)
	if got := render("D"); got != "A and B" {
		t.Errorf("render(D) = %q, want %q", got, "A and B")
	}
	if got := render("C"); got != "C" {
		t.Errorf("render(C) = %q", got)
	}
	if got := render("ZZZ"); got != "<ZZZ>" {
		t.Errorf("render(unbound) = %q", got)
	}
}

func TestVerbalizeProofMissingGlossary(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	res := chase.MustRun(prog, chase.Options{})
	id := res.Answers()[0]
	proof, _ := res.ExtractProof(id)
	empty := glossary.New()
	if _, err := VerbalizeProof(proof, empty); err == nil {
		t.Error("missing glossary entries accepted")
	}
}
