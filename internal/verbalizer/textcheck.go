package verbalizer

import "strings"

// ContainsConstant reports whether text mentions the constant as a whole
// token: occurrences embedded in longer numbers or identifiers do not count
// (the constant "2" is not contained in "0.21" or "N2_3", while a sentence-
// ending period after "0.43" does not block the match). This matching is
// used both by the completeness check of explanations and by the omission
// metric of the paper's Section 6.3.
func ContainsConstant(text, c string) bool {
	if c == "" {
		return true
	}
	return IndexConstant(text, c) >= 0
}

// IndexConstant returns the byte offset of the first whole-token occurrence
// of c in text, or -1 when there is none.
func IndexConstant(text, c string) int {
	if c == "" {
		return -1
	}
	for from := 0; ; {
		i := strings.Index(text[from:], c)
		if i < 0 {
			return -1
		}
		i += from
		if boundaryBefore(text, i) && boundaryAfter(text, i+len(c)) {
			return i
		}
		from = i + 1
	}
}

// MissingConstants returns the constants absent from the text, preserving
// input order.
func MissingConstants(text string, constants []string) []string {
	var out []string
	for _, c := range constants {
		if !ContainsConstant(text, c) {
			out = append(out, c)
		}
	}
	return out
}

// boundaryBefore reports whether position i starts a fresh token.
func boundaryBefore(text string, i int) bool {
	if i == 0 {
		return true
	}
	b := text[i-1]
	if isWordByte(b) {
		return false
	}
	// A decimal point glues digits: "0.43" does not contain token "43".
	if b == '.' && i >= 2 && isDigit(text[i-2]) {
		return false
	}
	return true
}

// boundaryAfter reports whether the token ends at position j (exclusive).
func boundaryAfter(text string, j int) bool {
	if j >= len(text) {
		return true
	}
	b := text[j]
	if isWordByte(b) {
		return false
	}
	// "2" is embedded in "2.5" but not blocked by a sentence period "2.".
	if b == '.' && j+1 < len(text) && isDigit(text[j+1]) {
		return false
	}
	return true
}

func isWordByte(b byte) bool {
	return b == '_' || isDigit(b) ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
