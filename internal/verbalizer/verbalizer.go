// Package verbalizer implements the deterministic transformation of Vadalog
// syntax into natural language described in Section 4.2 of the paper: each
// rule becomes a sentence of the form "Since {body}, then {head}.", with
// every element of the syntax converted to its natural-language counterpart
// ("and" for conjunction, "is higher than" for >, "<result> is given by the
// sum of <contributors>" for aggregations) and predicate atoms rendered via
// the domain glossary.
//
// The same machinery serves two purposes:
//
//   - applied with a token renderer to the rules of a reasoning path, it
//     produces the deterministic explanation templates of Section 4.2;
//   - applied with a value renderer to the chase steps of a proof, it
//     produces the fully deterministic instance explanation that the paper
//     feeds to the LLM baseline in its Sections 6.2-6.3.
package verbalizer

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/glossary"
	"repro/internal/term"
)

// Renderer maps a rule variable name to its textual rendering: a <token>
// when producing templates, a constant display when producing instance
// explanations.
type Renderer func(v string) string

// TokenRenderer renders variables as <token> placeholders, renaming them
// through the given map (variables absent from the map keep their name).
func TokenRenderer(rename map[string]string) Renderer {
	return func(v string) string {
		if name, ok := rename[v]; ok {
			return "<" + name + ">"
		}
		return "<" + v + ">"
	}
}

// ValueRenderer renders variables through their bindings in a substitution;
// unbound variables remain tokens.
func ValueRenderer(sub term.Substitution) Renderer {
	return func(v string) string {
		if t, ok := sub[v]; ok {
			return t.Display()
		}
		return "<" + v + ">"
	}
}

// DerivationRenderer renders variables of a chase step: group-level
// variables come from the step's substitution; contributor-varying
// variables of aggregation steps are rendered as the textual conjunction of
// their distinct values across contributors, in contributor order ("2 and
// 9", "C, B and F").
func DerivationRenderer(d *chase.Derivation) Renderer {
	return func(v string) string {
		if t, ok := d.Sub[v]; ok {
			return t.Display()
		}
		var vals []string
		seen := map[string]bool{}
		for _, c := range d.Contributors {
			if t, ok := c.Sub[v]; ok {
				disp := t.Display()
				if !seen[disp] {
					seen[disp] = true
					vals = append(vals, disp)
				}
			}
		}
		if len(vals) > 0 {
			return JoinList(vals)
		}
		return "<" + v + ">"
	}
}

// JoinList joins items as an English conjunction: "a", "a and b",
// "a, b and c".
func JoinList(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " and " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + " and " + items[len(items)-1]
	}
}

// AggRendering controls how a rule's aggregation is verbalized.
type AggRendering struct {
	// Expand verbalizes the aggregator ("with <e> given by the sum of
	// <v>"); when false the aggregator is truncated, as the paper
	// prescribes for single-contributor reasoning paths.
	Expand bool
	// Contributors optionally overrides the rendering of the aggregated
	// variable with an explicit value list; when empty the Renderer is
	// used.
	Contributors []string
}

// AtomText renders an atom through the glossary: <param> tokens are
// substituted with the rendering of the variable (or the constant display)
// at the corresponding argument position.
func AtomText(a ast.Atom, g *glossary.Glossary, render Renderer) (string, error) {
	e, ok := g.Entry(a.Predicate)
	if !ok {
		return "", fmt.Errorf("verbalizer: no glossary entry for predicate %s", a.Predicate)
	}
	if e.Arity() != a.Arity() {
		return "", fmt.Errorf("verbalizer: glossary entry %s has arity %d, atom has %d", a.Predicate, e.Arity(), a.Arity())
	}
	return e.Render(func(pos int, param string) string {
		t := a.Terms[pos]
		if t.IsVariable() {
			return render(t.Name())
		}
		return t.Display()
	}), nil
}

// ConditionText renders a comparison: "<s> is higher than <p1>".
func ConditionText(c ast.Condition, render Renderer) string {
	return operandText(c.Left, render) + " " + c.Op.Words() + " " + operandText(c.Right, render)
}

// AssignmentText renders an arithmetic assignment: "<s> is given by <s1>
// multiplied by <s2>"; nested sub-expressions are parenthesized, e.g.
// "<l> is given by (<el> plus <es>) divided by 2".
func AssignmentText(a ast.Assignment, render Renderer) string {
	return render(a.Target) + " is given by " + ExprText(a.Expr, render)
}

// ExprText renders an arithmetic expression in natural language.
func ExprText(e ast.Expr, render Renderer) string {
	switch x := e.(type) {
	case ast.TermExpr:
		return operandText(x.T, render)
	case ast.BinaryExpr:
		return exprOperand(x.L, render) + " " + x.Op.Words() + " " + exprOperand(x.R, render)
	default:
		return e.String()
	}
}

func exprOperand(e ast.Expr, render Renderer) string {
	if _, ok := e.(ast.BinaryExpr); ok {
		return "(" + ExprText(e, render) + ")"
	}
	return ExprText(e, render)
}

// AggregationText renders an aggregation clause: "with <e> given by the sum
// of <v>" (or an explicit contributor list in place of <v>).
func AggregationText(g ast.Aggregation, render Renderer, contributors []string) string {
	over := render(g.Over)
	if len(contributors) > 0 {
		over = JoinList(contributors)
	}
	return "with " + render(g.Target) + " given by the " + g.Func.Words() + " of " + over
}

func operandText(t term.Term, render Renderer) string {
	if t.IsVariable() {
		return render(t.Name())
	}
	return t.Display()
}

// RuleSentence verbalizes one rule as "Since {body}, then {head}." The body
// conjoins atom descriptions, assignments and conditions with "and"; the
// aggregation clause, when expanded, follows the head.
func RuleSentence(r *ast.Rule, g *glossary.Glossary, render Renderer, agg AggRendering) (string, error) {
	var parts []string
	for _, a := range r.Body {
		text, err := AtomText(a, g, render)
		if err != nil {
			return "", fmt.Errorf("rule %s: %w", r.Label, err)
		}
		parts = append(parts, trimSentence(text))
	}
	for _, a := range r.Negated {
		text, err := AtomText(a, g, render)
		if err != nil {
			return "", fmt.Errorf("rule %s: %w", r.Label, err)
		}
		parts = append(parts, "it is not the case that "+trimSentence(text))
	}
	for _, as := range r.Assignments {
		parts = append(parts, AssignmentText(as, render))
	}
	for _, c := range r.Conditions {
		parts = append(parts, ConditionText(c, render))
	}
	head, err := AtomText(r.Head, g, render)
	if err != nil {
		return "", fmt.Errorf("rule %s: %w", r.Label, err)
	}
	sentence := "Since " + strings.Join(parts, ", and ") + ", then " + trimSentence(head)
	if r.Aggregation != nil && agg.Expand {
		sentence += ", " + AggregationText(*r.Aggregation, render, agg.Contributors)
	}
	return sentence + ".", nil
}

// trimSentence strips a trailing period and surrounding space from a
// glossary description so it can be embedded into a larger sentence.
func trimSentence(s string) string {
	return strings.TrimSuffix(strings.TrimSpace(s), ".")
}

// VerbalizeProof produces the deterministic instance explanation of a
// proof: one sentence per chase step in chronological order, with all
// constants materialized. Aggregation steps with several contributors have
// the aggregator expanded with the full contributor value list, so the text
// provably contains every constant used in the inference (the completeness
// property of the paper's Section 6.3).
func VerbalizeProof(p *chase.Proof, g *glossary.Glossary) (string, error) {
	var sentences []string
	for _, d := range p.Steps {
		render := DerivationRenderer(d)
		agg := AggRendering{}
		if d.IsAggregation() && d.MultiContributor() {
			agg.Expand = true
			for _, c := range d.Contributors {
				agg.Contributors = append(agg.Contributors, c.Value.Display())
			}
		}
		s, err := RuleSentence(d.Rule, g, render, agg)
		if err != nil {
			return "", err
		}
		sentences = append(sentences, s)
	}
	return strings.Join(sentences, " "), nil
}
