// Package leakcheck is a test helper that fails a test when it leaks
// goroutines. Servers under cancellation and overload are exactly where
// leaks hide: an abandoned chase, a handler blocked on a dead client, a
// semaphore slot never released. The check is count-based with retries —
// goroutines legitimately take a moment to unwind after a response is
// written — and dumps all stacks on failure so the leak is attributable.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and returns a function that verifies
// the count came back down. Use as:
//
//	defer leakcheck.Check(t)()
//
// before starting the server under test (and after any process-wide
// singletons the test will touch have been initialized, so their goroutines
// are part of the baseline).
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		// Goroutines unwind asynchronously after the last response; retry
		// before declaring a leak.
		for i := 0; i < 50; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s", before, after, buf[:n])
	}
}
