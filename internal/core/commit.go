package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/incremental"
)

// This file implements group commit for session mutations: a per-session
// write queue whose single leader goroutine coalesces concurrently arriving
// add/retract requests into one merged maintainer delta, logs it (WAL hook),
// applies it under one maintainer lock acquisition, and fans the shared
// epoch and result back to every waiter. Under write pressure the cost of a
// fixpoint repair and an fsync is paid once per batch instead of once per
// request; under light load a batch is a single request and nothing is
// slower.
//
// Merging preserves sequential semantics exactly: the merged delta applied
// once yields the same live instance as applying each request's delta in
// submission order (see mergeBatch). Requests that would fail on their own
// (non-ground atoms, retracting a derived fact) fail individually with
// their own error and do not poison the batch; a request pattern that
// cannot be expressed in one merged delta (retracting an atom an earlier
// request in the same batch adds) splits the batch at that point and the
// tail commits as the next batch — still in order, still exact.

// ErrQueueFull is returned by Submit when the session's write queue is at
// capacity. It is the only condition the serving layer maps to 429: with
// group commit, contention coalesces instead of bouncing.
var ErrQueueFull = errors.New("core: session write queue is full")

// ErrCommitterClosed is returned by Submit after Close (e.g. the session
// was evicted while the request was in flight).
var ErrCommitterClosed = errors.New("core: committer is closed")

// ErrEpochUnknown is returned by WaitApplied for an epoch that was never
// issued by this committer — the serving layer maps it to 409.
var ErrEpochUnknown = errors.New("core: epoch was never issued")

// CommitResult is what a write observes once its batch commits.
type CommitResult struct {
	// Seq is the commit sequence number — the epoch token. Every write
	// coalesced into one batch observes the same Seq.
	Seq uint64
	// Result is the repaired fixpoint after the batch applied; nil for
	// async submissions, which return at log time.
	Result *chase.Result
	// Stats are the batch's update statistics, shared by all its writes.
	Stats incremental.UpdateStats
	// Batch is the number of writes coalesced into this commit.
	Batch int
	// Invalidated is the OnApply hook's return value (the serving layer
	// reports invalidated explanation-cache entries through it).
	Invalidated int
}

// CommitterConfig wires a Committer to its session.
type CommitterConfig struct {
	// Queue bounds pending writes; Submit returns ErrQueueFull beyond it.
	// Defaults to 64.
	Queue int
	// Window is how long the leader keeps collecting writes after the
	// first one of a batch arrives. 0 commits whatever is queued when the
	// leader gets to it — the classic group-commit policy: no added
	// latency when idle, large batches under pressure.
	Window time.Duration
	// ApplyTimeout bounds maintainer stand-up plus batch application.
	// Applies run detached from request contexts (a waiter hanging up
	// must not poison the fixpoint mid-repair), so this is the only bound.
	// 0 means no bound.
	ApplyTimeout time.Duration
	// StartSeq is the last sequence number already committed (from WAL
	// replay when restoring); issuance continues at StartSeq+1.
	StartSeq uint64
	// ApplyLock, when set, is write-held around each batch application.
	// Results handed to waiters share the maintainer's grow-only store, so
	// the serving layer renders responses under the read side: renders see
	// only quiescent stores, and an in-flight repair is the only thing a
	// reader ever waits for.
	ApplyLock *sync.RWMutex
	// Maintainer is the session's live maintainer when it already exists
	// (restored sessions); otherwise Standup builds it on the first batch.
	Maintainer *incremental.Maintainer
	// Standup builds the maintainer lazily on first write. A failed
	// stand-up fails that batch but is retried by the next one.
	Standup func(ctx context.Context) (*incremental.Maintainer, error)
	// OnLog, when set, durably logs the merged batch delta before it is
	// applied (log-before-apply). An error fails the whole batch.
	OnLog func(seq uint64, add, retract []ast.Atom) error
	// OnAbort, when set, records that a logged batch failed to apply so
	// replay skips it.
	OnAbort func(seq uint64)
	// OnApply, when set, runs after a batch applies (the serving layer
	// publishes the new result, bumps its counters and invalidates
	// explanation caches); its return value is fanned out as
	// CommitResult.Invalidated.
	OnApply func(seq uint64, res *chase.Result, stats incremental.UpdateStats) int
}

// Committer is a per-session group-commit pipeline. Submit is safe for
// arbitrary concurrent use; one leader goroutine (started on first write)
// owns the maintainer and applies batches in order.
type Committer struct {
	cfg       CommitterConfig
	queue     chan *writeReq
	stop      chan struct{}
	startOnce sync.Once
	// leaderDone closes when the leader goroutine exits; started reports
	// whether one was ever launched. Together they let CloseWait observe
	// quiescence.
	leaderDone chan struct{}
	started    atomic.Bool

	mu        sync.Mutex
	mnt       *incremental.Maintainer
	nextSeq   uint64
	issued    uint64
	applied   uint64
	appliedCh chan struct{}
	closed    bool
}

type writeReq struct {
	add, retract []ast.Atom
	async        bool
	logged       chan logOutcome // buffered 1; async waiters return here
	done         chan doneOutcome
	failed       error // set during merge when the request is invalid alone
}

type logOutcome struct {
	seq uint64
	err error
}

type doneOutcome struct {
	res *CommitResult
	err error
}

// NewCommitter builds a committer; the leader goroutine starts lazily on
// the first Submit.
func NewCommitter(cfg CommitterConfig) *Committer {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	return &Committer{
		cfg:        cfg,
		queue:      make(chan *writeReq, cfg.Queue),
		stop:       make(chan struct{}),
		leaderDone: make(chan struct{}),
		mnt:        cfg.Maintainer,
		nextSeq:    cfg.StartSeq + 1,
		issued:     cfg.StartSeq,
		applied:    cfg.StartSeq,
		appliedCh:  make(chan struct{}),
	}
}

// Submit enqueues one write and waits for its outcome. Synchronous
// submissions return once their batch has applied, with the shared
// CommitResult. Async submissions return as soon as the batch is durably
// logged, with only Seq set — the epoch token the caller can later wait on.
// A dead ctx abandons the wait (the commit itself proceeds detached) and
// returns the typed chase context error.
func (c *Committer) Submit(ctx context.Context, add, retract []ast.Atom, async bool) (*CommitResult, error) {
	req := &writeReq{
		add:     add,
		retract: retract,
		async:   async,
		logged:  make(chan logOutcome, 1),
		done:    make(chan doneOutcome, 1),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrCommitterClosed
	}
	select {
	case c.queue <- req:
	default:
		c.mu.Unlock()
		commitGlobal.rejected.Add(1)
		return nil, ErrQueueFull
	}
	c.mu.Unlock()
	commitGlobal.writes.Add(1)
	if async {
		commitGlobal.async.Add(1)
	}
	maxU64(&commitGlobal.queueHighWater, uint64(len(c.queue)))
	c.startOnce.Do(func() {
		c.started.Store(true)
		go c.run()
	})
	if async {
		select {
		case lo := <-req.logged:
			if lo.err != nil {
				return nil, lo.err
			}
			return &CommitResult{Seq: lo.seq}, nil
		case <-ctx.Done():
			return nil, chase.ContextErr(ctx)
		}
	}
	select {
	case do := <-req.done:
		return do.res, do.err
	case <-ctx.Done():
		return nil, chase.ContextErr(ctx)
	}
}

// Applied returns the last applied commit sequence number.
func (c *Committer) Applied() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// WaitApplied blocks until the state has moved at least past epoch (every
// batch with Seq <= epoch has been applied or aborted), the context dies
// (typed chase error), or the epoch turns out never to have been issued
// (ErrEpochUnknown).
func (c *Committer) WaitApplied(ctx context.Context, epoch uint64) error {
	for {
		c.mu.Lock()
		if c.applied >= epoch {
			c.mu.Unlock()
			return nil
		}
		if epoch > c.issued {
			c.mu.Unlock()
			return fmt.Errorf("%w: epoch %d", ErrEpochUnknown, epoch)
		}
		ch := c.appliedCh
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return chase.ContextErr(ctx)
		case <-c.stop:
			return ErrCommitterClosed
		}
	}
}

// Close stops the committer: later Submits fail with ErrCommitterClosed,
// queued-but-uncommitted writes fail, the leader exits after its current
// batch. Idempotent.
func (c *Committer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.stop)
	c.mu.Unlock()
}

// CloseWait closes the committer and blocks until the leader goroutine has
// exited — no batch is being logged or applied afterwards, and Applied()
// is the exact commit sequence number of the maintainer's state. This is
// the quiescence point the serving layer snapshots at (eviction, drain):
// serializing the maintainer concurrently with an in-flight apply could
// pair state that already includes commit N with an epoch header saying
// N-1, and the restore would replay N on top of itself.
func (c *Committer) CloseWait() {
	c.Close()
	if c.started.Load() {
		<-c.leaderDone
	}
}

// Pending returns the current write-queue depth: writes accepted by Submit
// that the leader has not yet picked up.
func (c *Committer) Pending() int { return len(c.queue) }

// Maintainer returns the session's maintainer, nil before the first batch
// stood it up.
func (c *Committer) Maintainer() *incremental.Maintainer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mnt
}

// run is the leader loop: pick up the oldest write, coalesce, commit.
func (c *Committer) run() {
	defer close(c.leaderDone)
	for {
		select {
		case <-c.stop:
			c.failQueued()
			return
		case req := <-c.queue:
			c.commit(req)
		}
	}
}

// failQueued drains the queue after Close, failing every pending write.
func (c *Committer) failQueued() {
	for {
		select {
		case req := <-c.queue:
			req.fail(ErrCommitterClosed)
		default:
			return
		}
	}
}

func (r *writeReq) fail(err error) {
	r.logged <- logOutcome{err: err}
	r.done <- doneOutcome{err: err}
}

// commit collects a batch starting at first and applies it; a split (see
// mergeBatch) commits the tail as follow-up batches, still in order.
func (c *Committer) commit(first *writeReq) {
	pending := c.collect(first)
	ctx, cancel := c.applyCtx()
	defer cancel()
	mnt, err := c.standup(ctx)
	if err != nil {
		for _, r := range pending {
			r.fail(err)
		}
		return
	}
	for len(pending) > 0 {
		var batch []*writeReq
		var add, retract []ast.Atom
		batch, add, retract, pending = mergeBatch(mnt, pending)
		if len(pending) > 0 {
			commitGlobal.splits.Add(1)
		}
		c.apply(ctx, mnt, batch, add, retract)
	}
}

// collect gathers the current batch: everything already queued, plus —
// under a positive Window — whatever else arrives before it elapses.
func (c *Committer) collect(first *writeReq) []*writeReq {
	pending := []*writeReq{first}
	if c.cfg.Window > 0 {
		t := time.NewTimer(c.cfg.Window)
		defer t.Stop()
		for {
			select {
			case r := <-c.queue:
				pending = append(pending, r)
			case <-t.C:
				return pending
			case <-c.stop:
				return pending
			}
		}
	}
	for {
		select {
		case r := <-c.queue:
			pending = append(pending, r)
		default:
			return pending
		}
	}
}

func (c *Committer) applyCtx() (context.Context, context.CancelFunc) {
	if c.cfg.ApplyTimeout > 0 {
		return context.WithTimeout(context.Background(), c.cfg.ApplyTimeout)
	}
	return context.WithCancel(context.Background())
}

// standup returns the session maintainer, building it on first use.
func (c *Committer) standup(ctx context.Context) (*incremental.Maintainer, error) {
	c.mu.Lock()
	mnt := c.mnt
	c.mu.Unlock()
	if mnt != nil {
		return mnt, nil
	}
	if c.cfg.Standup == nil {
		return nil, errors.New("core: committer has no maintainer and no Standup")
	}
	mnt, err := c.cfg.Standup(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.mnt = mnt
	c.mu.Unlock()
	return mnt, nil
}

// apply logs and applies one merged batch, fanning the outcome to every
// write in it.
func (c *Committer) apply(ctx context.Context, mnt *incremental.Maintainer, batch []*writeReq, add, retract []ast.Atom) {
	if len(batch) == 0 {
		return
	}
	c.mu.Lock()
	seq := c.nextSeq
	c.nextSeq++
	c.mu.Unlock()

	// Log before apply: once OnLog returns, the batch is durable and the
	// async waiters may be released with their epoch token.
	if c.cfg.OnLog != nil {
		if err := c.cfg.OnLog(seq, add, retract); err != nil {
			for _, r := range batch {
				r.fail(fmt.Errorf("core: logging commit %d: %w", seq, err))
			}
			return
		}
	}
	c.mu.Lock()
	c.issued = seq
	c.mu.Unlock()
	for _, r := range batch {
		r.logged <- logOutcome{seq: seq}
	}

	if c.cfg.ApplyLock != nil {
		c.cfg.ApplyLock.Lock()
	}
	res, stats, err := mnt.UpdateContext(ctx, add, retract)
	if c.cfg.ApplyLock != nil {
		c.cfg.ApplyLock.Unlock()
	}
	if err != nil {
		if c.cfg.OnAbort != nil {
			c.cfg.OnAbort(seq)
		}
		commitGlobal.aborts.Add(1)
		c.markApplied(seq)
		for _, r := range batch {
			r.done <- doneOutcome{err: err}
		}
		return
	}
	invalidated := 0
	if c.cfg.OnApply != nil {
		invalidated = c.cfg.OnApply(seq, res, stats)
	}
	c.markApplied(seq)
	commitGlobal.commits.Add(1)
	commitGlobal.batched.Add(uint64(len(batch)))
	maxU64(&commitGlobal.maxBatch, uint64(len(batch)))
	out := &CommitResult{
		Seq:         seq,
		Result:      res,
		Stats:       stats,
		Batch:       len(batch),
		Invalidated: invalidated,
	}
	for _, r := range batch {
		r.done <- doneOutcome{res: out}
	}
}

// markApplied advances the applied watermark and wakes epoch waiters. An
// aborted batch advances it too: the state has moved past that epoch (the
// batch will never apply), so waiting on it must not hang.
func (c *Committer) markApplied(seq uint64) {
	c.mu.Lock()
	if seq > c.applied {
		c.applied = seq
		close(c.appliedCh)
		c.appliedCh = make(chan struct{})
	}
	c.mu.Unlock()
}

// atomState tracks one atom's fate across the batch being merged.
type atomState struct {
	atom ast.Atom
	// final: 0 untouched (validation-only entry), 1 added, 2 retracted.
	final int
	// everRetracted forces the atom into the merged retract list even when
	// it is finally added, so it gets a fresh fact id exactly as the
	// sequential retract-then-add would produce.
	everRetracted bool
}

// mergeBatch folds as many pending requests as possible into one merged
// delta whose single application is equivalent to applying each request
// sequentially in order. It returns the merged requests (invalid ones
// already failed and excluded), the merged add/retract lists (deterministic
// first-touch order), and the unmerged tail (non-empty only on a split).
//
// Per-request validation mirrors Maintainer.UpdateContext exactly —
// non-ground atoms and retractions of derived facts fail that request alone
// (its own error is delivered, it contributes nothing to the batch) — with
// one batch-aware extension: a retraction of an atom that is derived in the
// store but promoted to base by an earlier request in this batch is legal
// sequentially, cannot be expressed in one merged delta, and therefore
// splits the batch before the retracting request; the tail commits as the
// next batch after this one applied.
func mergeBatch(mnt *incremental.Maintainer, pending []*writeReq) (batch []*writeReq, add, retract []ast.Atom, rest []*writeReq) {
	states := map[string]*atomState{}
	var order []string
	touch := func(a ast.Atom) *atomState {
		k := a.Key()
		st, ok := states[k]
		if !ok {
			st = &atomState{atom: a}
			states[k] = st
			order = append(order, k)
		}
		return st
	}

	for i, r := range pending {
		// Validate the whole request before folding any of it in, so a
		// failed request contributes nothing — UpdateContext's own
		// resolve-before-mutate contract, per request.
		split := false
		var reqErr error
		for _, a := range r.retract {
			if !a.IsGround() {
				reqErr = fmt.Errorf("incremental: retract %v: not ground", a)
				break
			}
			st, seen := states[a.Key()]
			if seen && st.final == 1 {
				// An earlier request in this batch leaves the atom added;
				// retracting it needs that request applied first.
				split = true
				break
			}
			if !seen {
				if present, base := mnt.Resolve(a); present && !base {
					reqErr = fmt.Errorf("incremental: cannot retract %v: it is derived, not a base fact", a.Display())
					break
				}
			}
		}
		if reqErr == nil && !split {
			for _, a := range r.add {
				if !a.IsGround() {
					reqErr = fmt.Errorf("incremental: add %v: not ground", a)
					break
				}
			}
		}
		if split {
			rest = pending[i:]
			break
		}
		if reqErr != nil {
			r.fail(reqErr)
			continue
		}
		batch = append(batch, r)
		// Fold in: retractions before additions, the maintainer's order.
		for _, a := range r.retract {
			st := touch(a)
			st.final = 2
			st.everRetracted = true
		}
		for _, a := range r.add {
			touch(a).final = 1
		}
	}
	for _, k := range order {
		st := states[k]
		switch st.final {
		case 1:
			add = append(add, st.atom)
			if st.everRetracted {
				retract = append(retract, st.atom)
			}
		case 2:
			retract = append(retract, st.atom)
		}
	}
	return batch, add, retract, rest
}

// CommitStats is the process-wide group-commit accounting snapshot for the
// /stats endpoint.
type CommitStats struct {
	// Writes counts accepted Submit calls; Async those with async set.
	Writes uint64 `json:"writes"`
	Async  uint64 `json:"async"`
	// Commits counts applied batches; Batched the writes they coalesced
	// (Batched/Commits is the mean commit batch size).
	Commits uint64 `json:"commits"`
	Batched uint64 `json:"batched"`
	// MaxBatch is the largest batch committed.
	MaxBatch uint64 `json:"maxBatch"`
	// QueueHighWater is the deepest any session write queue has been.
	QueueHighWater uint64 `json:"queueHighWater"`
	// Rejected counts queue-full rejections (the serving layer's 429s).
	Rejected uint64 `json:"rejected"`
	// Aborts counts batches that failed after being logged.
	Aborts uint64 `json:"aborts"`
	// Splits counts batch splits forced by in-batch promote-then-retract
	// patterns.
	Splits uint64 `json:"splits"`
}

var commitGlobal struct {
	writes, async, commits, batched atomic.Uint64
	maxBatch, queueHighWater        atomic.Uint64
	rejected, aborts, splits        atomic.Uint64
}

// GlobalCommitStats snapshots the process-wide group-commit counters.
func GlobalCommitStats() CommitStats {
	return CommitStats{
		Writes:         commitGlobal.writes.Load(),
		Async:          commitGlobal.async.Load(),
		Commits:        commitGlobal.commits.Load(),
		Batched:        commitGlobal.batched.Load(),
		MaxBatch:       commitGlobal.maxBatch.Load(),
		QueueHighWater: commitGlobal.queueHighWater.Load(),
		Rejected:       commitGlobal.rejected.Load(),
		Aborts:         commitGlobal.aborts.Load(),
		Splits:         commitGlobal.splits.Load(),
	}
}

func maxU64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
