// Package core ties the paper's components into the automated pipeline of
// its Section 4.4: given a rule-based Knowledge Graph application (a Vadalog
// program) and a domain glossary, it runs the preventive structural
// analysis, generates and enhances the explanation templates once, and then
// answers explanation queries for any fact derived by the chase — producing
// fluent, complete natural-language explanations without ever sharing
// instance data with an external service.
//
// This is the package downstream users import; everything below it
// (parser, chase, depgraph, paths, template, enhancer, mapping) is
// replaceable behind this façade.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/database"
	"repro/internal/depgraph"
	"repro/internal/enhancer"
	"repro/internal/glossary"
	"repro/internal/incremental"
	"repro/internal/lru"
	"repro/internal/mapping"
	"repro/internal/parser"
	"repro/internal/paths"
	"repro/internal/template"
	"repro/internal/verbalizer"
)

// Config tunes pipeline construction.
type Config struct {
	// Enhancer rewrites deterministic templates into fluent variants; nil
	// selects the built-in deterministic rewriter. Plug an LLM-backed
	// implementation here if data-confidentiality constraints allow it —
	// note that only rules, never instance data, flow through it.
	Enhancer enhancer.Enhancer
	// SkipEnhancement leaves templates deterministic.
	SkipEnhancement bool
	// Chase options used by Reason.
	Chase chase.Options
	// ResultCacheSize bounds the reasoning-result cache: when positive,
	// Reason memoizes chase results under a canonical fingerprint of
	// (program, options, extra facts), and concurrent identical calls
	// share one chase run (singleflight). 0 disables caching and every
	// Reason call runs its own chase, the pre-cache behavior.
	ResultCacheSize int
	// ExplanationCacheSize bounds the explanation memo: when positive,
	// ExplainFact (and hence Explain, ExplainQuery and ExplainAll)
	// memoizes the finished Explanation per (result, fact). Cached
	// explanations are shared pointers and must be treated as immutable.
	// 0 disables the memo.
	ExplanationCacheSize int
}

// Pipeline is a compiled KG application: program, glossary, structural
// analysis and (enhanced) explanation templates. The compiled artifacts
// are immutable after construction; the optional result and explanation
// caches are internally synchronized, so a Pipeline is safe for concurrent
// Reason and explanation queries over shared or distinct chase results.
type Pipeline struct {
	prog      *ast.Program
	glossary  *glossary.Glossary
	graph     *depgraph.Graph
	analysis  *paths.Analysis
	templates *template.Store
	cfg       Config

	// results caches chase results by request fingerprint; flight
	// deduplicates concurrent identical runs. Both are nil when
	// Config.ResultCacheSize is 0.
	results *lru.Cache[string, *chase.Result]
	flight  *flightGroup
	// sharedRuns counts Reason calls served by another caller's
	// in-flight run.
	sharedRuns atomic.Uint64
	// expl memoizes finished explanations per (result, fact); nil when
	// Config.ExplanationCacheSize is 0.
	expl *lru.Cache[explKey, *Explanation]

	// mntMu guards mnt, the incrementally maintained instance. It stays nil
	// until the first Update; from then on Reason serves the maintained
	// fixpoint and stamps its epoch into the result-cache fingerprint, so a
	// result cached before an update can never answer a request after it.
	mntMu sync.Mutex
	mnt   *incremental.Maintainer
}

// NewPipeline compiles a program and its glossary into a pipeline: it
// validates glossary coverage, builds the dependency graph, runs the
// structural analysis, verbalizes every reasoning path into its
// deterministic template and attaches enhanced variants.
func NewPipeline(prog *ast.Program, g *glossary.Glossary, cfg Config) (*Pipeline, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid program: %w", err)
	}
	if errs := g.Covers(prog); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("core: glossary does not cover program: %s", strings.Join(msgs, "; "))
	}
	graph := depgraph.New(prog)
	analysis := paths.Analyze(graph)
	store, err := template.Generate(analysis, g)
	if err != nil {
		return nil, fmt.Errorf("core: template generation: %w", err)
	}
	if !cfg.SkipEnhancement {
		e := cfg.Enhancer
		if e == nil {
			e = &enhancer.Fluent{Variants: 2, Seed: 1}
		}
		if _, err := enhancer.EnhanceStore(store, e); err != nil {
			return nil, fmt.Errorf("core: template enhancement: %w", err)
		}
	}
	p := &Pipeline{
		prog:      prog,
		glossary:  g,
		graph:     graph,
		analysis:  analysis,
		templates: store,
		cfg:       cfg,
	}
	if cfg.ResultCacheSize > 0 {
		p.results = lru.New[string, *chase.Result](cfg.ResultCacheSize)
		p.flight = newFlightGroup()
	}
	if cfg.ExplanationCacheSize > 0 {
		p.expl = lru.New[explKey, *Explanation](cfg.ExplanationCacheSize)
	}
	return p, nil
}

// NewPipelineFromSource parses the program and glossary texts and compiles
// them.
func NewPipelineFromSource(progSrc, glossarySrc string, cfg Config) (*Pipeline, error) {
	prog, err := parser.Parse(progSrc)
	if err != nil {
		return nil, fmt.Errorf("core: program: %w", err)
	}
	g, err := glossary.Parse(glossarySrc)
	if err != nil {
		return nil, fmt.Errorf("core: glossary: %w", err)
	}
	return NewPipeline(prog, g, cfg)
}

// Program returns the compiled program.
func (p *Pipeline) Program() *ast.Program { return p.prog }

// Glossary returns the domain glossary.
func (p *Pipeline) Glossary() *glossary.Glossary { return p.glossary }

// Graph returns the dependency graph.
func (p *Pipeline) Graph() *depgraph.Graph { return p.graph }

// Analysis returns the structural analysis (reasoning paths).
func (p *Pipeline) Analysis() *paths.Analysis { return p.analysis }

// Templates returns the explanation template store.
func (p *Pipeline) Templates() *template.Store { return p.templates }

// Reason runs the chase over the program's facts plus the given extra
// extensional facts, returning the saturated result with full provenance.
//
// With Config.ResultCacheSize > 0 identical requests (same program, same
// options, same extra facts in the same order) are served from a bounded
// cache, and concurrent identical misses share a single chase run. Cached
// results are shared pointers; a chase Result is immutable after Run, so
// sharing is safe, and the cached bytes are exactly the uncached bytes
// (the chase result of a request is deterministic).
func (p *Pipeline) Reason(extra ...ast.Atom) (*chase.Result, error) {
	return p.ReasonContext(context.Background(), extra...)
}

// ReasonContext is Reason under a context: the chase run is cancellable at
// its round and chunk boundaries and returns chase.ErrCanceled/ErrDeadline
// when interrupted. Cancellation composes with the caches: a canceled run is
// never written to the result cache, a waiter sharing an in-flight run whose
// leader is canceled re-runs the chase under its own (still live) context,
// and a waiter whose own context dies returns its own typed error without
// disturbing the leader.
func (p *Pipeline) ReasonContext(ctx context.Context, extra ...ast.Atom) (*chase.Result, error) {
	opts := p.cfg.Chase
	opts.ExtraFacts = append(append([]ast.Atom{}, opts.ExtraFacts...), extra...)
	run, epoch := p.reasonRun(ctx, opts)
	if p.results == nil {
		return run()
	}
	key := reasonFingerprint(p.prog, opts, epoch)
	if res, ok := p.results.Get(key); ok {
		return res, nil
	}
	res, err, shared := p.flight.do(ctx, key, func() (*chase.Result, error) {
		// Double-check under the flight lock-out: a previous leader may
		// have populated the cache between our miss and becoming leader.
		if res, ok := p.results.Get(key); ok {
			return res, nil
		}
		res, err := run()
		if err == nil {
			p.results.Put(key, res)
		}
		return res, err
	})
	if shared {
		p.sharedRuns.Add(1)
	}
	return res, err
}

// reasonRun picks how a Reason request is computed. Before the first Update
// it is a plain chase over the compiled program (epoch 0, the pre-update
// fingerprint). After an Update the maintained instance is authoritative: a
// request with no extra facts snapshots it directly, and a request with
// extra facts re-chases over the maintained base plus the extras. Either
// way the maintainer's epoch joins the cache fingerprint.
func (p *Pipeline) reasonRun(ctx context.Context, opts chase.Options) (func() (*chase.Result, error), uint64) {
	p.mntMu.Lock()
	defer p.mntMu.Unlock()
	if p.mnt == nil {
		prog := p.prog
		return func() (*chase.Result, error) { return chase.RunContext(ctx, prog, opts) }, 0
	}
	m := p.mnt
	if len(opts.ExtraFacts) == 0 {
		return m.Result, m.Epoch()
	}
	base := m.BaseFacts()
	prog := *p.prog
	prog.Facts = base
	return func() (*chase.Result, error) { return chase.RunContext(ctx, &prog, opts) }, m.Epoch()
}

// Update applies base-fact additions and retractions to the pipeline's
// maintained instance and repairs its fixpoint incrementally (see the
// incremental package for the exact semantics of adds, retracts and
// promotions). The first call stands up the maintainer with one full chase
// over the compiled program; every later call pays only for the delta.
//
// After an Update, Reason serves the maintained instance: its epoch is part
// of the result-cache fingerprint, so results cached before the update
// become unreachable rather than stale. The returned Result is an immutable
// snapshot of the repaired fixpoint.
func (p *Pipeline) Update(add, retract []ast.Atom) (*chase.Result, incremental.UpdateStats, error) {
	return p.UpdateContext(context.Background(), add, retract)
}

// UpdateContext is Update under a context. The initial maintainer build (the
// first call's full chase) and the request-resolution phase are cancellable
// without consequence; once the repair starts mutating the fixpoint, a
// cancellation poisons the maintained instance like any other mid-repair
// failure (see incremental.Maintainer.UpdateContext). Deadlines on updates
// should therefore be generous — they are a backstop against runaway
// programs, not a latency budget.
func (p *Pipeline) UpdateContext(ctx context.Context, add, retract []ast.Atom) (*chase.Result, incremental.UpdateStats, error) {
	p.mntMu.Lock()
	defer p.mntMu.Unlock()
	if p.mnt == nil {
		m, err := incremental.NewContext(ctx, p.prog, p.cfg.Chase)
		if err != nil {
			return nil, incremental.UpdateStats{}, fmt.Errorf("core: building maintainer: %w", err)
		}
		p.mnt = m
	}
	return p.mnt.UpdateContext(ctx, add, retract)
}

// Maintain builds an independent maintainer over the program plus the given
// extra extensional facts — the mutable counterpart of Reason(extra...) for
// callers (like the serving layer) that keep several live instances of one
// compiled application. The pipeline's own maintained instance (Update) is
// not affected.
func (p *Pipeline) Maintain(extra ...ast.Atom) (*incremental.Maintainer, error) {
	return p.MaintainContext(context.Background(), extra...)
}

// MaintainContext is Maintain under a context: the stand-up chase is
// cancellable, and a canceled build returns no maintainer (nothing to
// poison).
func (p *Pipeline) MaintainContext(ctx context.Context, extra ...ast.Atom) (*incremental.Maintainer, error) {
	opts := p.cfg.Chase
	opts.ExtraFacts = append(append([]ast.Atom{}, opts.ExtraFacts...), extra...)
	return incremental.NewContext(ctx, p.prog, opts)
}

// Epoch returns the maintained instance's mutation epoch: 0 before the
// first Update, and strictly increasing across updates that changed the
// instance. It is the version Reason stamps into cache fingerprints.
func (p *Pipeline) Epoch() uint64 {
	p.mntMu.Lock()
	defer p.mntMu.Unlock()
	if p.mnt == nil {
		return 0
	}
	return p.mnt.Epoch()
}

// IncrementalStats returns the maintained instance's cumulative update
// counters; all zero before the first Update.
func (p *Pipeline) IncrementalStats() incremental.Counters {
	p.mntMu.Lock()
	defer p.mntMu.Unlock()
	if p.mnt == nil {
		return incremental.Counters{}
	}
	return p.mnt.Stats()
}

// Explanation is the answer to one explanation query.
type Explanation struct {
	// Fact is the derived fact being explained.
	Fact *database.Fact
	// Proof is the portion of the chase graph deriving the fact.
	Proof *chase.Proof
	// Mapping is the template composition (the reasoning graph).
	Mapping *mapping.Mapping
	// Text is the final explanation (enhanced templates when available).
	Text string
	// Deterministic is the explanation produced from the unenhanced
	// templates.
	Deterministic string
}

// PathIDs returns the reasoning paths composed for this explanation, e.g.
// [Π2, Γ1*].
func (e *Explanation) PathIDs() []string { return e.Mapping.PathIDs() }

// Verify re-checks completeness: every constant of the proof must occur (as
// a whole token) in both the enhanced and the deterministic text. It
// returns the missing constants as an error, and nil when the explanation
// is complete.
func (e *Explanation) Verify() error {
	constants := e.Proof.Constants()
	missing := verbalizer.MissingConstants(e.Text, constants)
	missing = append(missing, verbalizer.MissingConstants(e.Deterministic, constants)...)
	if len(missing) > 0 {
		return fmt.Errorf("core: explanation of %v omits constants %s", e.Fact, strings.Join(missing, ", "))
	}
	return nil
}

// Explain answers the explanation query Q_e = {pattern}: it locates the
// (unique) derived fact matching the pattern, extracts its proof, maps the
// chase steps to templates and instantiates them.
func (p *Pipeline) Explain(res *chase.Result, pattern ast.Atom) (*Explanation, error) {
	id, err := res.LookupDerived(pattern)
	if err != nil {
		return nil, err
	}
	return p.ExplainFact(res, id)
}

// ExplainQuery is Explain with the pattern given in concrete syntax, e.g.
// `Default("C")` or `Control("B", D)`.
func (p *Pipeline) ExplainQuery(res *chase.Result, query string) (*Explanation, error) {
	pattern, err := parser.ParseAtom(query)
	if err != nil {
		return nil, fmt.Errorf("core: explanation query: %w", err)
	}
	return p.Explain(res, pattern)
}

// ExplainFact explains a fact by id.
//
// With Config.ExplanationCacheSize > 0 the finished Explanation is
// memoized per (result, fact): repeated queries — and every warm
// ExplainAll — return the already-built Explanation. Explanation building
// is deterministic, so the memoized object carries exactly the bytes an
// uncached rebuild would produce; callers must treat shared Explanations
// as immutable.
func (p *Pipeline) ExplainFact(res *chase.Result, id database.FactID) (*Explanation, error) {
	if p.expl == nil {
		return p.explainFact(res, id)
	}
	key := explKey{res: res, id: id}
	if e, ok := p.expl.Get(key); ok {
		return e, nil
	}
	e, err := p.explainFact(res, id)
	if err != nil {
		return nil, err
	}
	p.expl.Put(key, e)
	return e, nil
}

// explainFact builds one explanation from scratch.
func (p *Pipeline) explainFact(res *chase.Result, id database.FactID) (*Explanation, error) {
	proof, err := res.ExtractProof(id)
	if err != nil {
		return nil, err
	}
	m, err := mapping.Map(proof, p.templates)
	if err != nil {
		return nil, err
	}
	text, err := m.Explanation()
	if err != nil {
		return nil, err
	}
	det, err := m.DeterministicExplanation()
	if err != nil {
		return nil, err
	}
	return &Explanation{
		Fact:          res.Store.Get(id),
		Proof:         proof,
		Mapping:       m,
		Text:          text,
		Deterministic: det,
	}, nil
}

// ExplainAll explains every answer of the reasoning task (every
// non-superseded fact of the output predicate).
func (p *Pipeline) ExplainAll(res *chase.Result) ([]*Explanation, error) {
	var out []*Explanation
	for _, id := range res.Answers() {
		e, err := p.ExplainFact(res, id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// VerbalizeProof produces the fully deterministic step-by-step instance
// explanation of a fact's proof — the text the paper feeds to the LLM
// baseline in its Sections 6.2 and 6.3.
func (p *Pipeline) VerbalizeProof(proof *chase.Proof) (string, error) {
	return verbalizer.VerbalizeProof(proof, p.glossary)
}
