package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/database"
	"repro/internal/incremental"
)

// reasonFingerprint canonically fingerprints one reasoning request: the
// program text plus the effective chase options that can change the
// outcome, plus the maintained instance's epoch (0 until the pipeline's
// first Update). Extra facts are hashed in order — fact order determines
// fact ids and hence proofs, so two requests are "the same run" only when
// their fact lists match positionally. Workers, Legacy, Naive and Batch are
// deliberately excluded: results are proven byte-identical across those
// settings (the differential suites in chase enforce it), so runs may be
// shared across them; MaxRounds and MaxFacts are included because they
// decide whether a run errors at all. The epoch is included because an
// update changes the effective base without changing the program text:
// without it, a result cached before the update would keep answering
// requests made after it.
func reasonFingerprint(prog *ast.Program, opts chase.Options, epoch uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d\x00%d\x00%d\x00", opts.MaxRounds, opts.MaxFacts, epoch)
	h.Write([]byte(prog.String()))
	h.Write([]byte{0})
	for _, f := range opts.ExtraFacts {
		h.Write([]byte(f.Key()))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// flightGroup deduplicates concurrent identical reasoning runs: the first
// caller of a key becomes the leader and runs the chase; callers arriving
// while it is in flight wait and share the leader's result and error
// (singleflight, specialized to chase results).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	// done is closed when the leader's run finishes, making res/err
	// readable. A channel rather than a WaitGroup so that waiters can also
	// select on their own context and leave early.
	done chan struct{}
	res  *chase.Result
	err  error
	// waiters counts callers that joined this in-flight run (guarded by
	// the group mutex).
	waiters int
}

// waiting reports how many callers are currently waiting on key's
// in-flight run, and whether such a run exists.
func (g *flightGroup) waiting(key string) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c, ok := g.calls[key]
	if !ok {
		return 0, false
	}
	return c.waiters, true
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do runs fn under key, collapsing concurrent calls for the same key onto
// one execution. The returned bool reports whether this caller joined
// another caller's in-flight run.
//
// Cancellation does not fate-share: a waiter whose own context dies stops
// waiting and returns its own typed error, and a waiter whose leader was
// canceled (through the *leader's* context) retries as a fresh leader
// instead of inheriting the cancellation — one impatient client must not
// fail every client piled up behind it. Canceled runs return err != nil, so
// they are never written to the result cache (the Put in Reason is gated on
// err == nil): cancellation cannot poison the cache.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*chase.Result, error)) (*chase.Result, error, bool) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			c.waiters++
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, chase.ContextErr(ctx), true
			}
			if chase.IsCancellation(c.err) {
				if err := chase.ContextErr(ctx); err != nil {
					return nil, err, true
				}
				continue // leader canceled, we are alive: run it ourselves
			}
			return c.res, c.err, true
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		c.res, c.err = fn()

		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
		return c.res, c.err, false
	}
}

// explKey identifies one memoized explanation: the chase result it was
// extracted from (by identity — results are immutable) and the explained
// fact.
type explKey struct {
	res *chase.Result
	id  database.FactID
}

// CacheStats snapshots the pipeline's cache accounting; zero-valued
// sections mean the corresponding cache is disabled.
type CacheStats struct {
	// Results accounts the reasoning-result cache behind Reason.
	Results Stats `json:"results"`
	// Explanations accounts the explanation memo behind ExplainFact.
	Explanations Stats `json:"explanations"`
	// SharedRuns counts Reason calls that joined another caller's
	// in-flight chase run instead of starting their own.
	SharedRuns uint64 `json:"sharedRuns"`
	// Epoch is the maintained instance's mutation epoch (0 before the
	// pipeline's first Update); it versions every result-cache key.
	Epoch uint64 `json:"epoch"`
	// Incremental holds the maintained instance's cumulative update
	// counters; all zero before the first Update.
	Incremental incremental.Counters `json:"incremental"`
}

// Stats mirrors lru.Stats without exporting the lru package in core's API.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Len       int    `json:"len"`
	Cap       int    `json:"cap"`
}

// CacheStats reports the pipeline's current cache accounting.
func (p *Pipeline) CacheStats() CacheStats {
	var cs CacheStats
	if p.results != nil {
		s := p.results.Stats()
		cs.Results = Stats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Len: s.Len, Cap: s.Cap}
	}
	if p.expl != nil {
		s := p.expl.Stats()
		cs.Explanations = Stats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Len: s.Len, Cap: s.Cap}
	}
	cs.SharedRuns = p.sharedRuns.Load()
	cs.Epoch = p.Epoch()
	cs.Incremental = p.IncrementalStats()
	return cs
}
