package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/term"
)

const controlSrc = `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`

const controlGlossarySrc = `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Company(x): <x> is a business corporation.
`

// chainFacts builds an ownership chain c0 -> c1 -> ... -> cn with majority
// shares plus a minority side edge per hop, giving every Control answer a
// deep shared sub-proof.
func chainFacts(n int) []ast.Atom {
	var facts []ast.Atom
	name := func(i int) term.Term { return term.Str(fmt.Sprintf("c%d", i)) }
	for i := 0; i < n; i++ {
		facts = append(facts, ast.NewAtom("Company", name(i)))
		if i+1 < n {
			facts = append(facts, ast.NewAtom("Own", name(i), name(i+1), term.Float(0.6)))
		}
		if i+2 < n {
			facts = append(facts, ast.NewAtom("Own", name(i), name(i+2), term.Float(0.1)))
		}
	}
	return facts
}

func controlPipeline(t testing.TB, cfg Config) *Pipeline {
	t.Helper()
	p, err := NewPipelineFromSource(controlSrc, controlGlossarySrc, cfg)
	if err != nil {
		t.Fatalf("NewPipelineFromSource: %v", err)
	}
	return p
}

func TestFlightGroupDeduplicates(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32
	leaderDone := make(chan error, 1)
	go func() {
		_, err, _ := g.do(context.Background(), "k", func() (*chase.Result, error) {
			runs.Add(1)
			close(started)
			<-release
			return nil, nil
		})
		leaderDone <- err
	}()
	<-started
	var wg sync.WaitGroup
	sharedCount := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, shared := g.do(context.Background(), "k", func() (*chase.Result, error) {
				runs.Add(1)
				return nil, nil
			})
			sharedCount <- shared
		}()
	}
	// Release the leader only once all four callers joined its flight.
	for {
		if n, ok := g.waiting("k"); ok && n == 4 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	close(sharedCount)
	for shared := range sharedCount {
		if !shared {
			t.Error("waiter did not share the leader's run")
		}
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	// The key is released after the flight: a later call runs again.
	g.do(context.Background(), "k", func() (*chase.Result, error) { runs.Add(1); return nil, nil })
	if n := runs.Load(); n != 2 {
		t.Errorf("fn ran %d times after release, want 2", n)
	}
}

func TestReasonCacheHitsAndKeys(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 4})
	facts := chainFacts(4)
	r1, err := p.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical requests did not share the cached result")
	}
	if s := p.CacheStats().Results; s.Hits == 0 || s.Len != 1 {
		t.Errorf("result cache stats = %+v", s)
	}
	// A different fact list is a different run.
	r3, err := p.Reason(chainFacts(5)...)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("distinct requests shared a result")
	}
	// Fact order determines fact ids, so permuted facts are a distinct key.
	perm := append([]ast.Atom{}, facts...)
	perm[0], perm[len(perm)-1] = perm[len(perm)-1], perm[0]
	r4, err := p.Reason(perm...)
	if err != nil {
		t.Fatal(err)
	}
	if r4 == r1 {
		t.Error("permuted facts shared the in-order result")
	}
}

func TestReasonCacheDisabledByDefault(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true})
	facts := chainFacts(3)
	r1, err := p.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("caching active without ResultCacheSize")
	}
	if s := p.CacheStats(); s.Results.Cap != 0 || s.Explanations.Cap != 0 {
		t.Errorf("stats report caches: %+v", s)
	}
}

func TestReasonCacheCapacityBound(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 2})
	for n := 2; n <= 5; n++ {
		if _, err := p.Reason(chainFacts(n)...); err != nil {
			t.Fatal(err)
		}
	}
	s := p.CacheStats().Results
	if s.Len != 2 || s.Evictions != 2 {
		t.Errorf("result cache stats = %+v, want len 2 evictions 2", s)
	}
}

func TestReasonErrorNotCached(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 4})
	bad := ast.NewAtom("Own", term.Var("X"), term.Str("y"), term.Float(0.6))
	for i := 0; i < 2; i++ {
		if _, err := p.Reason(bad); err == nil {
			t.Fatalf("call %d: non-ground extra fact accepted", i)
		}
	}
	if s := p.CacheStats().Results; s.Len != 0 {
		t.Errorf("error cached: %+v", s)
	}
}

func TestConcurrentReasonSharesOneRun(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 4})
	facts := chainFacts(12)
	const callers = 8
	results := make([]*chase.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := p.Reason(facts...)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result object", i)
		}
	}
}

// TestExplainMemoDifferential: a fully cached pipeline serves explanations
// byte-identical to a cache-less pipeline, and warm repeats return the
// memoized objects.
func TestExplainMemoDifferential(t *testing.T) {
	cached := controlPipeline(t, Config{ResultCacheSize: 4, ExplanationCacheSize: 64})
	uncached := controlPipeline(t, Config{})
	facts := chainFacts(8)

	resC, err := cached.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	resU, err := uncached.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cached.ExplainAll(resC)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := uncached.ExplainAll(resU)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) == 0 || len(cold) != len(reference) {
		t.Fatalf("explanations: cached %d vs uncached %d", len(cold), len(reference))
	}
	for i, e := range cold {
		ref := reference[i]
		if e.Fact.String() != ref.Fact.String() {
			t.Errorf("answer %d: fact %q != %q", i, e.Fact.String(), ref.Fact.String())
		}
		if e.Text != ref.Text || e.Deterministic != ref.Deterministic {
			t.Errorf("answer %d: cached text differs from uncached", i)
		}
		if fmt.Sprint(e.PathIDs()) != fmt.Sprint(ref.PathIDs()) {
			t.Errorf("answer %d: paths %v != %v", i, e.PathIDs(), ref.PathIDs())
		}
		if fmt.Sprint(e.Proof.RuleSequence()) != fmt.Sprint(ref.Proof.RuleSequence()) {
			t.Errorf("answer %d: rule sequence differs", i)
		}
		if e.Proof.Size() != ref.Proof.Size() {
			t.Errorf("answer %d: proof size %d != %d", i, e.Proof.Size(), ref.Proof.Size())
		}
	}

	warm, err := cached.ExplainAll(resC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Errorf("answer %d: warm pass rebuilt the explanation", i)
		}
	}
	if s := cached.CacheStats().Explanations; s.Hits == 0 {
		t.Errorf("explanation memo never hit: %+v", s)
	}
}

// TestExplainMemoKeyedByResult: explanations from different sessions never
// collide, even for the same fact id.
func TestExplainMemoKeyedByResult(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ExplanationCacheSize: 64})
	r1, err := p.Reason(chainFacts(3)...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Reason(chainFacts(4)...)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := p.ExplainFact(r1, r1.Answers()[0])
	if err != nil {
		t.Fatal(err)
	}
	e2, err := p.ExplainFact(r2, r2.Answers()[0])
	if err != nil {
		t.Fatal(err)
	}
	if e1 == e2 {
		t.Error("explanations of distinct results collided")
	}
}

// BenchmarkExplainAll measures one explain-all serving request end to end
// (reason + explain every answer) on a 40-hop recursive control chain.
// Cold is the cache-less pipeline: every iteration re-runs the chase and
// rebuilds every explanation. Warm serves the same request from the
// result cache, the proof-closure memo and the explanation memo.
func BenchmarkExplainAll(b *testing.B) {
	facts := chainFacts(40)
	request := func(b *testing.B, p *Pipeline) {
		res, err := p.Reason(facts...)
		if err != nil {
			b.Fatal(err)
		}
		es, err := p.ExplainAll(res)
		if err != nil {
			b.Fatal(err)
		}
		if len(es) == 0 {
			b.Fatal("no explanations")
		}
	}
	b.Run("Cold", func(b *testing.B) {
		p := controlPipeline(b, Config{SkipEnhancement: true})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			request(b, p)
		}
	})
	b.Run("Warm", func(b *testing.B) {
		p := controlPipeline(b, Config{SkipEnhancement: true, ResultCacheSize: 4, ExplanationCacheSize: 4096})
		request(b, p) // populate every cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request(b, p)
		}
	})
}
