package core

// Cancellation through the pipeline: typed errors surface from
// ReasonContext, canceled runs never enter the result cache, and the
// singleflight group neither fate-shares cancellations between callers nor
// caches a canceled leader's failure.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/chase"
)

func TestReasonContextCanceledNotCached(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 4})
	facts := chainFacts(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ReasonContext(ctx, facts...); !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The cancellation was not cached: the same request under a live
	// context runs and succeeds, and only then does the cache hold it.
	res, err := p.ReasonContext(context.Background(), facts...)
	if err != nil {
		t.Fatalf("Reason after canceled request: %v", err)
	}
	res2, err := p.Reason(facts...)
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Errorf("second call did not hit the cache")
	}
	if hits := p.CacheStats().Results.Hits; hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

func TestReasonContextDeadline(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true})
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	if _, err := p.ReasonContext(ctx, chainFacts(4)...); !errors.Is(err, chase.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestFlightLeaderCancelRetry: a waiter piled up behind a leader whose run
// is canceled does not inherit the failure — it retries as the new leader.
func TestFlightLeaderCancelRetry(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err, _ := g.do(context.Background(), "k", func() (*chase.Result, error) {
			close(started)
			<-release
			return nil, chase.ErrCanceled // the leader's own context died
		})
		leaderDone <- err
	}()
	<-started
	waiterDone := make(chan error, 1)
	go func() {
		_, err, _ := g.do(context.Background(), "k", func() (*chase.Result, error) {
			return nil, nil // the retry succeeds
		})
		waiterDone <- err
	}()
	for {
		if n, ok := g.waiting("k"); ok && n == 1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	if err := <-leaderDone; !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("leader err = %v, want ErrCanceled", err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter err = %v, want nil (retry as new leader)", err)
	}
}

// TestFlightWaiterOwnContextCancel: a waiter whose own context dies stops
// waiting immediately with its own typed error; the leader is undisturbed.
func TestFlightWaiterOwnContextCancel(t *testing.T) {
	g := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := g.do(context.Background(), "k", func() (*chase.Result, error) {
			close(started)
			<-release
			return nil, nil
		})
		if err != nil {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.do(ctx, "k", func() (*chase.Result, error) {
		t.Error("dead waiter must not become leader")
		return nil, nil
	})
	if !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("waiter err = %v, want ErrCanceled", err)
	}
	if !shared {
		t.Errorf("waiter did not report joining the flight")
	}
	close(release)
	wg.Wait()
}

// TestUpdateContextPropagates: a dead context rejects the pipeline update
// with the typed error before anything is mutated.
func TestUpdateContextPropagates(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.UpdateContext(ctx, chainFacts(4), nil); !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The rejected update never stood up a maintainer epoch: a plain
	// update still works from scratch.
	if _, _, err := p.Update(chainFacts(4), nil); err != nil {
		t.Fatalf("update after rejection: %v", err)
	}
}
