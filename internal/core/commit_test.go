package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/incremental"
	"repro/internal/term"
)

// testMaintainer stands up a maintainer over the control program plus a
// short ownership chain.
func testMaintainer(t testing.TB, n int) *incremental.Maintainer {
	t.Helper()
	p := controlPipeline(t, Config{SkipEnhancement: true})
	m, err := p.Maintain(chainFacts(n)...)
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	return m
}

// fingerprint renders a maintainer's live instance — base facts plus answer
// atoms — as a canonical string for oracle comparison.
func fingerprint(t testing.TB, m *incremental.Maintainer) string {
	t.Helper()
	var parts []string
	for _, a := range m.BaseFacts() {
		parts = append(parts, "base:"+a.String())
	}
	res, err := m.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	for _, id := range res.Answers() {
		parts = append(parts, "ans:"+res.Store.Get(id).Atom.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

func TestCommitterBasic(t *testing.T) {
	m := testMaintainer(t, 4)
	c := NewCommitter(CommitterConfig{Maintainer: m})
	defer c.Close()
	r1, err := c.Submit(context.Background(), []ast.Atom{ownAtom("x", "y", 0.9)}, nil, false)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if r1.Seq != 1 || r1.Result == nil || r1.Stats.Added != 1 || r1.Batch < 1 {
		t.Fatalf("first commit: %+v", r1)
	}
	r2, err := c.Submit(context.Background(), nil, []ast.Atom{ownAtom("x", "y", 0.9)}, false)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if r2.Seq != 2 || r2.Stats.Retracted != 1 {
		t.Fatalf("second commit: %+v", r2)
	}
	if got := c.Applied(); got != 2 {
		t.Fatalf("Applied = %d, want 2", got)
	}
}

// TestCommitterStandupLazy exercises the Standup path: the maintainer is
// built by the first batch, a failed stand-up fails only that batch and the
// next one retries.
func TestCommitterStandupLazy(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true})
	fail := true
	c := NewCommitter(CommitterConfig{Standup: func(ctx context.Context) (*incremental.Maintainer, error) {
		if fail {
			fail = false
			return nil, errors.New("transient stand-up failure")
		}
		return p.MaintainContext(ctx, chainFacts(3)...)
	}})
	defer c.Close()
	if _, err := c.Submit(context.Background(), []ast.Atom{ownAtom("x", "y", 0.9)}, nil, false); err == nil {
		t.Fatal("first Submit survived a failed stand-up")
	}
	if c.Maintainer() != nil {
		t.Fatal("failed stand-up left a maintainer behind")
	}
	r, err := c.Submit(context.Background(), []ast.Atom{ownAtom("x", "y", 0.9)}, nil, false)
	if err != nil {
		t.Fatalf("retry after failed stand-up: %v", err)
	}
	if r.Seq != 1 || c.Maintainer() == nil {
		t.Fatalf("retry commit: %+v", r)
	}
}

// TestMergeDifferential is the batching-semantics oracle: random request
// sequences are merged via mergeBatch and applied as batches to one
// maintainer, and applied one by one in the same order to another. The
// final instances must be identical, including which requests fail.
func TestMergeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	atomPool := func(i int) ast.Atom {
		return ownAtom(fmt.Sprintf("p%d", i%5), fmt.Sprintf("q%d", i%7), 0.8)
	}
	derived := ast.NewAtom("Control", term.Str("c0"), term.Str("c1"))
	for round := 0; round < 30; round++ {
		batched := testMaintainer(t, 4)
		seq := testMaintainer(t, 4)
		// Build a random burst of requests over a small atom pool so
		// collisions (re-add, double-retract, retract-then-add,
		// promote-then-retract of a derived atom) are common.
		var reqs []*writeReq
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			r := &writeReq{logged: make(chan logOutcome, 1), done: make(chan doneOutcome, 1)}
			for k := 0; k < 1+rng.Intn(3); k++ {
				a := atomPool(rng.Intn(20))
				if rng.Intn(4) == 0 {
					a = derived
				}
				if rng.Intn(2) == 0 {
					r.add = append(r.add, a)
				} else {
					r.retract = append(r.retract, a)
				}
			}
			reqs = append(reqs, r)
		}
		// Sequential oracle: apply each request alone, in order; individual
		// failures leave the instance untouched.
		var oracleErrs []bool
		for _, r := range reqs {
			_, _, err := seq.Update(r.add, r.retract)
			oracleErrs = append(oracleErrs, err != nil)
			if err != nil && seq.Poisoned() != nil {
				t.Fatalf("oracle poisoned: %v", err)
			}
		}
		// Batched: merge with splits, apply merged deltas.
		pending := reqs
		for len(pending) > 0 {
			var batch []*writeReq
			var add, retract []ast.Atom
			batch, add, retract, pending = mergeBatch(batched, pending)
			if len(batch) == 0 {
				continue
			}
			if _, _, err := batched.Update(add, retract); err != nil {
				t.Fatalf("round %d: merged apply failed: %v", round, err)
			}
		}
		for i, r := range reqs {
			failed := false
			select {
			case lo := <-r.logged:
				failed = lo.err != nil
			default:
			}
			if failed != oracleErrs[i] {
				t.Fatalf("round %d: request %d failed=%v, oracle failed=%v", round, i, failed, oracleErrs[i])
			}
		}
		if got, want := fingerprint(t, batched), fingerprint(t, seq); got != want {
			t.Fatalf("round %d: batched instance diverged from sequential oracle\nbatched:\n%s\nsequential:\n%s", round, got, want)
		}
	}
}

// TestCommitterConcurrentWriters is the concurrent-writer differential (run
// under -race by CI): N goroutines hammer one committer with interleaved
// add/retract; the final fixpoint must equal the logged merged deltas
// applied sequentially in commit order, and every waiter must observe its
// own write's epoch.
func TestCommitterConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 12
	m := testMaintainer(t, 4)
	var logMu sync.Mutex
	type logged struct {
		seq          uint64
		add, retract []ast.Atom
	}
	var deltas []logged
	c := NewCommitter(CommitterConfig{
		Maintainer: m,
		Queue:      writers * perWriter,
		OnLog: func(seq uint64, add, retract []ast.Atom) error {
			logMu.Lock()
			deltas = append(deltas, logged{seq, add, retract})
			logMu.Unlock()
			return nil
		},
	})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lastSeq uint64
			for i := 0; i < perWriter; i++ {
				own := ownAtom(fmt.Sprintf("w%d", w), fmt.Sprintf("t%d", i%3), 0.9)
				var add, retract []ast.Atom
				if i%2 == 0 {
					add = []ast.Atom{own}
				} else {
					retract = []ast.Atom{own}
				}
				res, err := c.Submit(context.Background(), add, retract, false)
				if err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
				if res.Seq == 0 || res.Seq < lastSeq {
					errs <- fmt.Errorf("writer %d op %d: epoch went backwards (%d after %d)", w, i, res.Seq, lastSeq)
					return
				}
				lastSeq = res.Seq
				if err := c.WaitApplied(context.Background(), res.Seq); err != nil {
					errs <- fmt.Errorf("writer %d op %d: WaitApplied(%d): %w", w, i, res.Seq, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Sequential oracle over the logged deltas in commit order.
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].seq < deltas[j].seq })
	oracle := testMaintainer(t, 4)
	for _, d := range deltas {
		if _, _, err := oracle.Update(d.add, d.retract); err != nil {
			t.Fatalf("oracle apply seq %d: %v", d.seq, err)
		}
	}
	if got, want := fingerprint(t, m), fingerprint(t, oracle); got != want {
		t.Fatalf("concurrent fixpoint diverged from commit-order oracle\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCommitterAsyncAndWaitApplied covers the async epoch lifecycle: a 202
// write returns an epoch token at log time, WaitApplied blocks until it is
// applied, and epochs never issued are rejected.
func TestCommitterAsyncAndWaitApplied(t *testing.T) {
	m := testMaintainer(t, 4)
	release := make(chan struct{})
	c := NewCommitter(CommitterConfig{
		Maintainer: m,
		OnLog: func(seq uint64, add, retract []ast.Atom) error {
			<-release // hold the batch between log and apply
			return nil
		},
	})
	defer c.Close()
	done := make(chan *CommitResult, 1)
	go func() {
		res, err := c.Submit(context.Background(), []ast.Atom{ownAtom("x", "y", 0.9)}, nil, true)
		if err != nil {
			t.Errorf("async Submit: %v", err)
			done <- nil
			return
		}
		done <- res
	}()
	// Not applied yet: a bounded wait on epoch 1 must time out with the
	// typed deadline error, and an unissued epoch must be rejected.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond) // let the leader reach OnLog
	if err := c.WaitApplied(ctx, 99); !errors.Is(err, ErrEpochUnknown) {
		t.Fatalf("WaitApplied(unissued) = %v, want ErrEpochUnknown", err)
	}
	close(release)
	res := <-done
	if res == nil {
		t.FailNow()
	}
	if res.Seq != 1 || res.Result != nil {
		t.Fatalf("async result: %+v", res)
	}
	if err := c.WaitApplied(context.Background(), res.Seq); err != nil {
		t.Fatalf("WaitApplied(%d): %v", res.Seq, err)
	}
	if present, base := m.Resolve(ownAtom("x", "y", 0.9)); !present || !base {
		t.Fatalf("async write not applied: present=%v base=%v", present, base)
	}
	if err := c.WaitApplied(context.Background(), res.Seq+1); !errors.Is(err, ErrEpochUnknown) {
		t.Fatalf("WaitApplied(beyond issued) = %v, want ErrEpochUnknown", err)
	}
}

// TestCommitterQueueFull pins the only remaining 429 source: a full write
// queue. The leader is blocked inside a commit while the queue fills.
func TestCommitterQueueFull(t *testing.T) {
	m := testMaintainer(t, 4)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c := NewCommitter(CommitterConfig{
		Maintainer: m,
		Queue:      2,
		OnLog: func(seq uint64, add, retract []ast.Atom) error {
			once.Do(func() { close(entered); <-release })
			return nil
		},
	})
	defer c.Close()
	bg := func() {
		c.Submit(context.Background(), []ast.Atom{ownAtom("x", "y", 0.9)}, nil, false)
	}
	go bg()
	<-entered // leader is stuck mid-commit; queue is empty again
	go bg()
	go bg()
	// Wait until both background writes occupy the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(c.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Submit(context.Background(), []ast.Atom{ownAtom("q", "r", 0.9)}, nil, false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", err)
	}
	close(release)
}

// TestCommitterSplitPromoteRetract pins the one batch pattern that cannot
// merge: request 1 promotes a derived atom to base, request 2 retracts it.
// Sequentially the atom ends up derived again (rederived after the base
// retraction); the committer must split the batch to reproduce that.
func TestCommitterSplitPromoteRetract(t *testing.T) {
	m := testMaintainer(t, 4)
	derived := ast.NewAtom("Control", term.Str("c0"), term.Str("c1"))
	if present, base := m.Resolve(derived); !present || base {
		t.Fatalf("precondition: Control(c0,c1) should be derived; present=%v base=%v", present, base)
	}
	// A long window makes both writes land in one collection, forcing the
	// split path; if timing spreads them over two batches anyway, the
	// assertion still holds — split or not, the outcome must be sequential.
	c := NewCommitter(CommitterConfig{Maintainer: m, Window: 50 * time.Millisecond})
	defer c.Close()
	var wg sync.WaitGroup
	var res1, res2 *CommitResult
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		res1, err1 = c.Submit(context.Background(), []ast.Atom{derived}, nil, false)
	}()
	time.Sleep(10 * time.Millisecond) // order the two writes
	go func() {
		defer wg.Done()
		res2, err2 = c.Submit(context.Background(), nil, []ast.Atom{derived}, false)
	}()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("submit errors: %v / %v", err1, err2)
	}
	if res2.Seq <= res1.Seq {
		t.Fatalf("retract committed at seq %d, promote at %d: split did not order them", res2.Seq, res1.Seq)
	}
	// Net effect: the atom is live again but derived, exactly the
	// sequential promote-then-retract outcome.
	if present, base := m.Resolve(derived); !present || base {
		t.Fatalf("after promote+retract: present=%v base=%v, want derived", present, base)
	}
}

// TestCommitterAbort drives a failing batch end to end: the delta passes
// merge validation and is logged, the apply fails (expired apply deadline —
// UpdateContext rejects it before mutating), OnAbort records the skip for
// replay, the waiter gets the typed error and the applied watermark still
// advances past the aborted epoch so nobody hangs waiting on it.
func TestCommitterAbort(t *testing.T) {
	m := testMaintainer(t, 4)
	var aborted []uint64
	var seqs []uint64
	c := NewCommitter(CommitterConfig{
		Maintainer:   m,
		ApplyTimeout: time.Nanosecond,
		OnLog: func(seq uint64, add, retract []ast.Atom) error {
			seqs = append(seqs, seq)
			return nil
		},
		OnAbort: func(seq uint64) { aborted = append(aborted, seq) },
	})
	defer c.Close()
	_, err := c.Submit(context.Background(), []ast.Atom{ownAtom("x", "z", 0.9)}, nil, false)
	if !errors.Is(err, chase.ErrDeadline) {
		t.Fatalf("apply under expired deadline = %v, want chase.ErrDeadline", err)
	}
	if len(seqs) != 1 || len(aborted) != 1 || aborted[0] != seqs[0] {
		t.Fatalf("logged %v aborted %v, want the same single seq", seqs, aborted)
	}
	if err := c.WaitApplied(context.Background(), seqs[0]); err != nil {
		t.Fatalf("WaitApplied past aborted epoch: %v", err)
	}
	// The maintainer was rejected pre-mutation, so it is not poisoned and
	// the instance is untouched.
	if err := m.Poisoned(); err != nil {
		t.Fatalf("maintainer poisoned by pre-mutation deadline: %v", err)
	}
	if present, _ := m.Resolve(ownAtom("x", "z", 0.9)); present {
		t.Fatal("aborted write mutated the instance")
	}
}
