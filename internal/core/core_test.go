package core

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

const figure7Src = `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

func pipeline(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := NewPipelineFromSource(stressSimpleSrc, figure7Src, cfg)
	if err != nil {
		t.Fatalf("NewPipelineFromSource: %v", err)
	}
	return p
}

func TestPipelineConstruction(t *testing.T) {
	p := pipeline(t, Config{})
	if p.Program().Name != "stress-simple" {
		t.Errorf("program name = %q", p.Program().Name)
	}
	if len(p.Analysis().Simple) != 3 { // Π1, Π2, Π2*
		t.Errorf("simple paths = %d", len(p.Analysis().Simple))
	}
	if p.Graph().Leaf() != "Default" {
		t.Errorf("leaf = %q", p.Graph().Leaf())
	}
	if p.Glossary() == nil || p.Templates() == nil {
		t.Error("accessors nil")
	}
	// Default config enhances every template.
	for _, tpl := range p.Templates().All() {
		if len(tpl.Enhanced) == 0 {
			t.Errorf("template %s has no enhanced variant", tpl.Path.ID)
		}
	}
}

func TestSkipEnhancement(t *testing.T) {
	p := pipeline(t, Config{SkipEnhancement: true})
	for _, tpl := range p.Templates().All() {
		if len(tpl.Enhanced) != 0 {
			t.Errorf("template %s unexpectedly enhanced", tpl.Path.ID)
		}
	}
}

func TestConstructionErrors(t *testing.T) {
	// Bad program source.
	if _, err := NewPipelineFromSource(`P(X`, figure7Src, Config{}); err == nil {
		t.Error("bad program accepted")
	}
	// Bad glossary source.
	if _, err := NewPipelineFromSource(stressSimpleSrc, `garbage`, Config{}); err == nil {
		t.Error("bad glossary accepted")
	}
	// Glossary gap.
	gap := `Default(f): <f> is in default.`
	if _, err := NewPipelineFromSource(stressSimpleSrc, gap, Config{}); err == nil {
		t.Error("glossary gap accepted")
	} else if !strings.Contains(err.Error(), "Shock") {
		t.Errorf("gap error = %v", err)
	}
}

// TestEndToEndExample48 is the full pipeline run of the paper's running
// example: reason, query Default(C), get a complete fluent explanation.
func TestEndToEndExample48(t *testing.T) {
	p := pipeline(t, Config{})
	res, err := p.Reason()
	if err != nil {
		t.Fatalf("Reason: %v", err)
	}
	e, err := p.ExplainQuery(res, `Default("C")`)
	if err != nil {
		t.Fatalf("ExplainQuery: %v", err)
	}
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
	if ids := e.PathIDs(); len(ids) != 2 || ids[0] != "Π2" || ids[1] != "Γ1*" {
		t.Errorf("PathIDs = %v", ids)
	}
	if e.Text == e.Deterministic {
		t.Error("enhanced text equals deterministic text")
	}
	if e.Fact.Atom.Display() != "Default(C)" {
		t.Errorf("fact = %v", e.Fact)
	}
	if e.Proof.Size() != 5 {
		t.Errorf("proof size = %d", e.Proof.Size())
	}
}

func TestExplainQueryErrors(t *testing.T) {
	p := pipeline(t, Config{})
	res, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExplainQuery(res, `Default("Z")`); err == nil {
		t.Error("missing fact explained")
	}
	if _, err := p.ExplainQuery(res, `Default(X)`); err == nil {
		t.Error("ambiguous query explained")
	}
	if _, err := p.ExplainQuery(res, `not an atom`); err == nil {
		t.Error("unparsable query accepted")
	}
	if _, err := p.ExplainQuery(res, `Shock("A", 6.0)`); err == nil {
		t.Error("extensional fact explained")
	}
}

func TestExplainAllVerified(t *testing.T) {
	p := pipeline(t, Config{})
	res, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	exps, err := p.ExplainAll(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 3 {
		t.Fatalf("explanations = %d, want 3", len(exps))
	}
	for _, e := range exps {
		if err := e.Verify(); err != nil {
			t.Error(err)
		}
	}
}

func TestReasonWithExtraFacts(t *testing.T) {
	p := pipeline(t, Config{})
	extra, err := parser.ParseAtom(`Shock("C", 20.0)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(extra)
	if err != nil {
		t.Fatal(err)
	}
	// Now C also defaults directly.
	e, err := p.ExplainQuery(res, `Default("C")`)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil {
		t.Fatal("no explanation")
	}
}

func TestVerbalizeProof(t *testing.T) {
	p := pipeline(t, Config{})
	res, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ExplainQuery(res, `Default("C")`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := p.VerbalizeProof(e.Proof)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(text, "Since "); got != 5 {
		t.Errorf("deterministic proof verbalization has %d sentences, want 5", got)
	}
}

// TestVerifyDetectsOmission: Verify flags a doctored explanation.
func TestVerifyDetectsOmission(t *testing.T) {
	p := pipeline(t, Config{})
	res, _ := p.Reason()
	e, err := p.ExplainQuery(res, `Default("C")`)
	if err != nil {
		t.Fatal(err)
	}
	e.Text = strings.ReplaceAll(e.Text, "11", "??")
	if err := e.Verify(); err == nil {
		t.Error("omission not detected")
	} else if !strings.Contains(err.Error(), "11") {
		t.Errorf("error = %v", err)
	}
}

// TestNegationEndToEnd: the pipeline explains facts derived by rules with
// stratified negation, rendering the negated premise.
func TestNegationEndToEnd(t *testing.T) {
	prog := `
@name("eligibility").
@output("Eligible").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("el")    Eligible(X) :- HasCapital(X, P), not Default(X).

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("D", 4.0).
`
	glos := `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Eligible(x): <x> is an eligible counterparty.
`
	p, err := NewPipelineFromSource(prog, glos, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ExplainQuery(res, `Eligible("D")`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Text, "it is not the case that D is in default") {
		t.Errorf("negated premise not verbalized:\n%s", e.Text)
	}
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
	if _, err := p.ExplainQuery(res, `Eligible("A")`); err == nil {
		t.Error("defaulted entity explained as eligible")
	}
}

// TestConstraintSurfacesThroughPipeline: a violated negative constraint
// aborts Reason with a witness.
func TestConstraintSurfacesThroughPipeline(t *testing.T) {
	prog := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
:- Control(X, Y), Sanctioned(Y).

Own("A", "B", 0.6).
Sanctioned("B").
`
	glos := `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Sanctioned(y): <y> is a sanctioned entity.
`
	p, err := NewPipelineFromSource(prog, glos, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reason(); err == nil {
		t.Error("violated constraint did not abort reasoning")
	}
}
