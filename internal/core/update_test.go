package core

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/term"
)

func ownAtom(x, y string, s float64) ast.Atom {
	return ast.NewAtom("Own", term.Str(x), term.Str(y), term.Float(s))
}

// TestUpdateInvalidatesCachedReason is the staleness regression for the
// result cache: a Reason result cached before an Update must never answer a
// request made after it. The epoch in the fingerprint is what prevents it —
// the program text, options and extra-fact list are all unchanged here.
func TestUpdateInvalidatesCachedReason(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 4})
	r1, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r1.Answers()); n != 0 {
		t.Fatalf("empty instance has %d answers", n)
	}
	if _, _, err := p.Update([]ast.Atom{ownAtom("a", "b", 0.6)}, nil); err != nil {
		t.Fatal(err)
	}
	r2, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r1 {
		t.Fatal("Reason served the pre-update cached result")
	}
	if n := len(r2.Answers()); n != 1 {
		t.Fatalf("updated instance has %d answers, want 1:\n%s", n, r2.Store.Dump())
	}
	// Identical post-update requests still share the cache.
	r3, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r2 {
		t.Error("post-update requests did not share the cached snapshot")
	}
	// A retraction moves the epoch again.
	if _, _, err := p.Update(nil, []ast.Atom{ownAtom("a", "b", 0.6)}); err != nil {
		t.Fatal(err)
	}
	r4, err := p.Reason()
	if err != nil {
		t.Fatal(err)
	}
	if len(r4.Answers()) != 0 {
		t.Error("Reason did not observe the retraction")
	}
}

// TestReasonExtraFactsOverMaintainedBase checks that extra-fact requests
// made after an Update chase over the maintained base, not the compiled
// program's original facts.
func TestReasonExtraFactsOverMaintainedBase(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true, ResultCacheSize: 4})
	if _, _, err := p.Update([]ast.Atom{ownAtom("a", "b", 0.6)}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(ownAtom("b", "c", 0.7))
	if err != nil {
		t.Fatal(err)
	}
	// a->b from the update plus b->c from the request compose to a->c.
	want := ast.NewAtom("Control", term.Str("a"), term.Str("c"))
	if _, err := res.LookupDerived(want); err != nil {
		t.Errorf("Control(a, c) not derived over maintained base + extras: %v\n%s", err, res.Store.Dump())
	}
}

func TestEpochAndIncrementalStats(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true})
	if e := p.Epoch(); e != 0 {
		t.Errorf("epoch %d before first update, want 0", e)
	}
	if c := p.IncrementalStats(); c.Updates != 0 {
		t.Errorf("counters %+v before first update", c)
	}
	if _, _, err := p.Update([]ast.Atom{ownAtom("a", "b", 0.6)}, nil); err != nil {
		t.Fatal(err)
	}
	e1 := p.Epoch()
	if e1 == 0 {
		t.Error("epoch still 0 after an update")
	}
	if _, _, err := p.Update([]ast.Atom{ownAtom("b", "c", 0.7)}, nil); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() <= e1 {
		t.Error("epoch did not advance across updates")
	}
	cs := p.CacheStats()
	if cs.Epoch != p.Epoch() || cs.Incremental.Updates != 2 {
		t.Errorf("cache stats epoch=%d incremental=%+v", cs.Epoch, cs.Incremental)
	}
}

// TestMaintainIsIndependent checks that serving-layer maintainers built via
// Maintain do not interact with the pipeline's own maintained instance.
func TestMaintainIsIndependent(t *testing.T) {
	p := controlPipeline(t, Config{SkipEnhancement: true})
	m, err := p.Maintain(ownAtom("a", "b", 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Update([]ast.Atom{ownAtom("b", "c", 0.7)}, nil); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 0 {
		t.Error("session maintainer update moved the pipeline epoch")
	}
	res, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.LookupDerived(ast.NewAtom("Control", term.Str("a"), term.Str("c"))); err != nil {
		t.Errorf("maintained session missing Control(a, c): %v", err)
	}
}
