// Package snapshot is the on-disk envelope for serialized engine state
// (chase.Live.EncodeState): a magic-tagged, checksummed container carrying
// the application name, the program fingerprint the state was taken
// against, and the commit epoch (last applied WAL sequence number) the
// state reflects.
//
// The format is deliberately dumb — one CRC over the whole body, an atomic
// temp-file-plus-rename write — because snapshots are rewritten whole and
// read whole. Torn or bit-flipped files fail the checksum and are rejected
// with ErrCorrupt; callers fall back to a full WAL replay, so a bad
// snapshot can cost time but never correctness.
//
// Snapshots double as WAL checkpoints: a session checkpointed at epoch E
// restores by loading the snapshot and replaying only the log records with
// sequence numbers above E (the "short tail"), and the WAL can be truncated
// once the snapshot is durable.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// magic tags snapshot files; version bumps change the last byte.
var magic = []byte("EKGSNAP1")

// ErrCorrupt marks snapshot files that fail structural validation — wrong
// magic, bad checksum, truncated or trailing bytes. Match with errors.Is;
// the caller's recovery is a full WAL replay.
var ErrCorrupt = errors.New("snapshot: corrupt file")

// Header identifies what a snapshot holds.
type Header struct {
	// App is the application registry name the session runs.
	App string
	// Program is the compiled program fingerprint
	// (server.programFingerprint form); restore refuses state taken against
	// different rules.
	Program string
	// Epoch is the last WAL sequence number applied to the snapshotted
	// state; restore replays only log records with higher sequence numbers.
	Epoch uint64
}

// Write atomically persists a snapshot: the body is assembled and
// checksummed in memory, written to a temp file in the target directory,
// fsynced, renamed over the target path, and the directory fsynced — so a
// crash leaves either the old snapshot or the new one, never a torn mix.
func Write(path string, h Header, payload []byte) error {
	body := make([]byte, 0, len(h.App)+len(h.Program)+len(payload)+32)
	body = appendString(body, h.App)
	body = appendString(body, h.Program)
	body = binary.AppendUvarint(body, h.Epoch)
	body = appendString(body, string(payload))

	buf := make([]byte, 0, len(magic)+4+len(body))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = append(buf, body...)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Read loads and verifies a snapshot. Structural damage of any kind —
// wrong magic, checksum mismatch, truncation, trailing garbage — returns an
// error matching ErrCorrupt. A missing file returns the os.IsNotExist
// error unwrapped, so callers distinguish "no snapshot" from "bad
// snapshot".
func Read(path string) (Header, []byte, error) {
	h, body, off, err := readVerified(path)
	if err != nil {
		return Header{}, nil, err
	}
	payload, off, err := readString(body, off)
	if err != nil {
		return Header{}, nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if off != len(body) {
		return Header{}, nil, fmt.Errorf("%w: %s: %d trailing bytes", ErrCorrupt, path, len(body)-off)
	}
	return h, []byte(payload), nil
}

// ReadHeader is Read without retaining the payload — the cheap form of the
// staleness check (eviction's epoch guard compares the on-disk epoch
// before overwriting). It verifies the checksum like Read — a header is
// only trusted when the whole file is intact — but validates the payload
// in place instead of copying it, so the guard on a large snapshot costs
// one file read, not three payload-sized allocations.
func ReadHeader(path string) (Header, error) {
	h, body, off, err := readVerified(path)
	if err != nil {
		return Header{}, err
	}
	n, used := binary.Uvarint(body[off:])
	if used <= 0 {
		return Header{}, fmt.Errorf("%w: %s: malformed length at offset %d", ErrCorrupt, path, off)
	}
	off += used
	if uint64(len(body)-off) != n {
		return Header{}, fmt.Errorf("%w: %s: payload length mismatch", ErrCorrupt, path)
	}
	return h, nil
}

// readVerified loads a snapshot file, checks magic and checksum, and
// parses the header fields, returning the body and the payload offset.
func readVerified(path string) (Header, []byte, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Header{}, nil, 0, err
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != string(magic) {
		return Header{}, nil, 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	sum := binary.LittleEndian.Uint32(data[len(magic):])
	body := data[len(magic)+4:]
	if crc32.ChecksumIEEE(body) != sum {
		return Header{}, nil, 0, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	var h Header
	off := 0
	if h.App, off, err = readString(body, off); err != nil {
		return Header{}, nil, 0, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	if h.Program, off, err = readString(body, off); err != nil {
		return Header{}, nil, 0, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	epoch, n := binary.Uvarint(body[off:])
	if n <= 0 {
		return Header{}, nil, 0, fmt.Errorf("%w: %s: malformed epoch", ErrCorrupt, path)
	}
	h.Epoch = epoch
	off += n
	return h, body, off, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(body []byte, off int) (string, int, error) {
	n, used := binary.Uvarint(body[off:])
	if used <= 0 {
		return "", 0, fmt.Errorf("malformed length at offset %d", off)
	}
	off += used
	if uint64(len(body)-off) < n {
		return "", 0, fmt.Errorf("truncated field at offset %d", off)
	}
	return string(body[off : off+int(n)]), off + int(n), nil
}
