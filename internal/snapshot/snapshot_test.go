package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeTestSnapshot(t *testing.T) (string, Header, []byte) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "session.snap")
	h := Header{App: "finkg", Program: "sha256:deadbeef", Epoch: 42}
	payload := []byte("engine state bytes \x00\x01\x02 with binary content")
	if err := Write(path, h, payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, h, payload
}

func TestRoundTrip(t *testing.T) {
	path, h, payload := writeTestSnapshot(t)
	got, gotPayload, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != h {
		t.Errorf("header mismatch: got %+v want %+v", got, h)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload mismatch: got %q want %q", gotPayload, payload)
	}
	gh, err := ReadHeader(path)
	if err != nil || gh != h {
		t.Errorf("ReadHeader: got %+v, %v", gh, err)
	}
}

func TestOverwriteReplacesAtomically(t *testing.T) {
	path, _, _ := writeTestSnapshot(t)
	h2 := Header{App: "finkg", Program: "sha256:cafef00d", Epoch: 99}
	if err := Write(path, h2, []byte("newer state")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	got, payload, err := Read(path)
	if err != nil {
		t.Fatalf("Read after overwrite: %v", err)
	}
	if got != h2 || string(payload) != "newer state" {
		t.Errorf("got %+v %q", got, payload)
	}
	// The temp file must not linger after a successful rename.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("leftover files after overwrite: %v", names)
	}
}

func TestMissingFileIsNotCorrupt(t *testing.T) {
	_, _, err := Read(filepath.Join(t.TempDir(), "absent.snap"))
	if !os.IsNotExist(err) {
		t.Errorf("want os.IsNotExist error, got %v", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("missing file must not be reported as corruption")
	}
}

// TestBitFlipMatrix flips every bit of a valid snapshot file, one at a
// time, and asserts that either the read fails with ErrCorrupt or —
// never — succeeds with altered content. The CRC covers the whole body,
// and the magic and checksum fields guard themselves, so every single-bit
// flip must be detected.
func TestBitFlipMatrix(t *testing.T) {
	path, _, _ := writeTestSnapshot(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(filepath.Dir(path), "mut.snap")
	for off := 0; off < len(orig); off++ {
		for bit := 0; bit < 8; bit++ {
			data := append([]byte(nil), orig...)
			data[off] ^= 1 << bit
			if err := os.WriteFile(mut, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Read(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d not rejected: err=%v", off, bit, err)
			}
		}
	}
}

// TestTruncationMatrix rejects every strict prefix of a valid file, and a
// file with trailing garbage.
func TestTruncationMatrix(t *testing.T) {
	path, _, _ := writeTestSnapshot(t)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(filepath.Dir(path), "mut.snap")
	for cut := 0; cut < len(orig); cut++ {
		if err := os.WriteFile(mut, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Read(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d/%d bytes not rejected: err=%v", cut, len(orig), err)
		}
	}
	if err := os.WriteFile(mut, append(append([]byte(nil), orig...), 0xff), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage not rejected: err=%v", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.snap")
	h := Header{App: "finkg", Program: "sha256:00", Epoch: 0}
	if err := Write(path, h, nil); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, payload, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != h || len(payload) != 0 {
		t.Errorf("got %+v payload=%q", got, payload)
	}
}
