package study

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/synth"
)

// Case is one comprehension-study case: a scenario, the explained fact and
// the artifacts shown to participants.
type Case struct {
	// Name matches the paper's five case descriptions.
	Name string
	// Scenario is the synthetic workload.
	Scenario synth.Scenario
	// Explanation is the template-based text participants read.
	Explanation string
	// Truth is the correct visualization.
	Truth Viz
	// Candidates are the three visualizations shown (correct + two
	// distorted), in shuffled order.
	Candidates []Viz
	// CorrectIdx is the index of the correct candidate.
	CorrectIdx int
}

// ComprehensionCases builds the paper's five cases (Section 6.1): control
// through aggregation (1), a simple stress test (2), control via recursion
// (3), a complex stress test with recursion and aggregation (4), and
// control combining recursion and aggregation (5). Distractor archetypes
// rotate deterministically from the seed.
func ComprehensionCases(seed int64) ([]*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	specs := []struct {
		name     string
		scenario synth.Scenario
	}{
		{"control with aggregation", synth.ControlJoint(3, seed)},
		{"simple stress test", synth.StressCascade(3, seed+1)},
		{"control via recursion", synth.ControlChain(4, seed+2)},
		{"stress test with recursion and aggregation", synth.StressCascade(6, seed+3)},
		{"control with recursion and aggregation", synth.ControlChainJoint(2, 2, seed+4)},
	}
	archetypes := []Archetype{WrongEdge, WrongValue, WrongAggregation, WrongChain}
	var out []*Case
	for i, spec := range specs {
		c, err := buildCase(spec.name, spec.scenario, rng,
			archetypes[i%len(archetypes)], archetypes[(i+1)%len(archetypes)])
		if err != nil {
			return nil, fmt.Errorf("study: case %q: %w", spec.name, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func buildCase(name string, sc synth.Scenario, rng *rand.Rand, a1, a2 Archetype) (*Case, error) {
	app, err := apps.ByName(sc.App)
	if err != nil {
		return nil, err
	}
	p, err := app.Pipeline(core.Config{})
	if err != nil {
		return nil, err
	}
	res, err := p.Reason(sc.Facts...)
	if err != nil {
		return nil, err
	}
	pattern, err := parser.ParseAtom(sc.Query)
	if err != nil {
		return nil, err
	}
	id, err := res.LookupDerived(pattern)
	if err != nil {
		return nil, err
	}
	e, err := p.ExplainFact(res, id)
	if err != nil {
		return nil, err
	}
	truth := VizFromProof(e.Proof)
	candidates := []Viz{truth, Inject(truth, a1, rng), Inject(truth, a2, rng)}
	// Shuffle presentation order.
	order := rng.Perm(len(candidates))
	shuffled := make([]Viz, len(candidates))
	correct := 0
	for to, from := range order {
		shuffled[to] = candidates[from]
		if from == 0 {
			correct = to
		}
	}
	return &Case{
		Name:        name,
		Scenario:    sc,
		Explanation: e.Text,
		Truth:       truth,
		Candidates:  shuffled,
		CorrectIdx:  correct,
	}, nil
}

// ComprehensionResult is the Figure 14 row of one case.
type ComprehensionResult struct {
	Case string
	// Total is the number of participants; Correct how many picked the
	// correct visualization.
	Total, Correct int
	// ErrorsBy counts wrong answers by the archetype of the chosen
	// distractor.
	ErrorsBy map[Archetype]int
}

// Accuracy returns the fraction of correct answers.
func (r ComprehensionResult) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Total)
}

// RunComprehension simulates the comprehension study: `participants`
// respondents answer all five cases. The paper recruited 24 participants
// (120 answers) and measured 96% overall accuracy.
func RunComprehension(seed int64, participants int) ([]ComprehensionResult, error) {
	cases, err := ComprehensionCases(seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	respondent := Respondent{Attention: 0.8}
	var out []ComprehensionResult
	for _, c := range cases {
		r := ComprehensionResult{Case: c.Name, ErrorsBy: map[Archetype]int{}}
		for p := 0; p < participants; p++ {
			pick := respondent.Pick(rng, c.Truth, c.Candidates)
			r.Total++
			if pick == c.CorrectIdx {
				r.Correct++
			} else {
				r.ErrorsBy[c.Candidates[pick].Injected]++
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// OverallAccuracy aggregates results across cases.
func OverallAccuracy(rs []ComprehensionResult) float64 {
	total, correct := 0, 0
	for _, r := range rs {
		total += r.Total
		correct += r.Correct
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
