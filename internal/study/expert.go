package study

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/parser"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Method identifies one explanation methodology of the expert study.
type Method string

// The three methodologies compared in the paper's Section 6.2.
const (
	MethodParaphrase Method = "GPT paraphrasis"
	MethodSummary    Method = "GPT summary"
	MethodTemplates  Method = "Templates"
)

// ExpertScenario is one graded scenario: the three candidate texts for the
// same proof.
type ExpertScenario struct {
	Name string
	// Texts per method.
	Texts map[Method]string
	// Constants of the underlying proof (for the information-loss
	// feature).
	Constants []string
}

// ExpertScenarios builds the paper's four scenarios: a short control chain,
// a long one with multiple layers of intermediate controls, a stress test
// and a close link case.
func ExpertScenarios(seed int64) ([]*ExpertScenario, error) {
	specs := []struct {
		name string
		sc   synth.Scenario
	}{
		{"short control chain", synth.ControlChain(3, seed)},
		{"long control chain", synth.ControlChain(9, seed+1)},
		{"stress test", synth.StressCascade(5, seed+2)},
		{"close link", synth.CloseLinkChain(2, seed+3)},
	}
	var out []*ExpertScenario
	for _, spec := range specs {
		s, err := buildExpertScenario(spec.name, spec.sc, seed)
		if err != nil {
			return nil, fmt.Errorf("study: scenario %q: %w", spec.name, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func buildExpertScenario(name string, sc synth.Scenario, seed int64) (*ExpertScenario, error) {
	app, err := apps.ByName(sc.App)
	if err != nil {
		return nil, err
	}
	p, err := app.Pipeline(core.Config{})
	if err != nil {
		return nil, err
	}
	res, err := p.Reason(sc.Facts...)
	if err != nil {
		return nil, err
	}
	pattern, err := parser.ParseAtom(sc.Query)
	if err != nil {
		return nil, err
	}
	id, err := res.LookupDerived(pattern)
	if err != nil {
		return nil, err
	}
	e, err := p.ExplainFact(res, id)
	if err != nil {
		return nil, err
	}
	deterministic, err := p.VerbalizeProof(e.Proof)
	if err != nil {
		return nil, err
	}
	para := (&llm.Simulated{Mode: llm.Paraphrase, Seed: seed}).Generate(deterministic)
	summ := (&llm.Simulated{Mode: llm.Summarize, Seed: seed}).Generate(deterministic)
	return &ExpertScenario{
		Name: name,
		Texts: map[Method]string{
			MethodParaphrase: para,
			MethodSummary:    summ,
			MethodTemplates:  e.Text,
		},
		Constants: e.Proof.Constants(),
	}, nil
}

// Expert is the rater model: the Likert grade derives from measured
// properties of the text — information loss against the proof, trigram
// redundancy and raw length — plus Gaussian rater noise.
type Expert struct {
	// Noise is the standard deviation of the rater's Gaussian noise.
	Noise float64
}

// Grade returns a Likert score in 1..5 for a text explaining a proof with
// the given constants.
func (ex Expert) Grade(rng *rand.Rand, text string, constants []string) float64 {
	omission := llm.OmissionRatio(text, constants)
	redundancy := trigramRedundancy(text)
	lengthPenalty := float64(len(text)) / 1000
	score := 4.72 - 2.0*omission - 2.2*redundancy - 0.35*lengthPenalty + rng.NormFloat64()*ex.Noise
	likert := math.Round(score)
	if likert < 1 {
		likert = 1
	}
	if likert > 5 {
		likert = 5
	}
	return likert
}

// trigramRedundancy is 1 minus the distinct-trigram ratio of the word
// stream: repetitive, template-like prose scores higher.
func trigramRedundancy(text string) float64 {
	words := strings.Fields(strings.ToLower(text))
	if len(words) < 3 {
		return 0
	}
	total := len(words) - 2
	seen := map[string]bool{}
	for i := 0; i < total; i++ {
		seen[words[i]+" "+words[i+1]+" "+words[i+2]] = true
	}
	return 1 - float64(len(seen))/float64(total)
}

// ExpertResult is the Figure 16 outcome plus the Wilcoxon comparisons.
type ExpertResult struct {
	// Scores holds every individual Likert grade per method (the paper
	// collects 56 per method: 14 experts x 4 scenarios).
	Scores map[Method][]float64
	// Mean and StdDev per method.
	Mean, StdDev map[Method]float64
	// PParaphrase and PSummary are the two-sided Wilcoxon p-values of each
	// GPT method against the templates.
	PParaphrase, PSummary float64
}

// Significant reports whether any method differs significantly from the
// templates at the 5% level.
func (r *ExpertResult) Significant() bool {
	return r.PParaphrase < 0.05 || r.PSummary < 0.05
}

// RunExpert simulates the expert study with `experts` raters over the four
// scenarios (the paper: 14 experts, 168 data points, 56 per methodology).
func RunExpert(seed int64, experts int) (*ExpertResult, error) {
	scenarios, err := ExpertScenarios(seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 2000))
	rater := Expert{Noise: 1.0}
	scores := map[Method][]float64{}
	methods := []Method{MethodParaphrase, MethodSummary, MethodTemplates}
	for e := 0; e < experts; e++ {
		for _, sc := range scenarios {
			for _, m := range methods {
				scores[m] = append(scores[m], rater.Grade(rng, sc.Texts[m], sc.Constants))
			}
		}
	}
	res := &ExpertResult{
		Scores: scores,
		Mean:   map[Method]float64{},
		StdDev: map[Method]float64{},
	}
	for _, m := range methods {
		res.Mean[m] = stats.Mean(scores[m])
		res.StdDev[m] = stats.StdDev(scores[m])
	}
	wp, err := stats.WilcoxonSignedRank(scores[MethodParaphrase], scores[MethodTemplates])
	if err != nil {
		return nil, err
	}
	ws, err := stats.WilcoxonSignedRank(scores[MethodSummary], scores[MethodTemplates])
	if err != nil {
		return nil, err
	}
	res.PParaphrase = wp.P
	res.PSummary = ws.P
	return res, nil
}
