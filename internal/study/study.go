// Package study reproduces the two user studies of the paper's Section 6
// with simulated participants over really generated artifacts.
//
// Comprehension study (Section 6.1, Figure 14): five cases sampled from the
// financial applications; for each case the respondent reads the
// template-based explanation and must pick the correct KG visualization out
// of three, where the two distractors contain an injected error of one of
// the paper's four archetypes (false edge, wrong value, wrong aggregation
// order, wrong recursion chain). The respondent model reconstructs the
// graph from the (complete) explanation and compares candidates under
// attention noise: each discrepancy is noticed with a fixed probability.
// Accuracy is therefore an emergent property of explanation completeness,
// not a hard-coded number.
//
// Expert study (Section 6.2, Figure 16): simulated experts grade, on a
// 5-point Likert scale, three texts per scenario — GPT paraphrase, GPT
// summary (both from the simulated LLM baseline) and the template-based
// explanation. The grade derives from measured properties of the actual
// texts (information loss against the proof, n-gram redundancy, length)
// plus rater noise, and the Wilcoxon signed-rank test of package stats
// decides significance.
package study

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/chase"
	"repro/internal/database"
)

// Archetype is one of the paper's four error archetypes (Section 6.1).
type Archetype int

// The error archetypes of the comprehension study. None marks the correct
// visualization.
const (
	None Archetype = iota
	WrongEdge
	WrongValue
	WrongAggregation
	WrongChain
)

// String implements fmt.Stringer for Archetype.
func (a Archetype) String() string {
	switch a {
	case WrongEdge:
		return "wrong edge"
	case WrongValue:
		return "wrong value"
	case WrongAggregation:
		return "incorrect aggregation"
	case WrongChain:
		return "incorrect chain"
	default:
		return "none"
	}
}

// Element is one item of a KG visualization: a node marker (Default(A)), a
// node property (HasCapital(A, 5)) or a valued edge (Own(A, B, 0.6)).
type Element struct {
	Kind     string
	A, B     string
	Value    float64
	HasValue bool
}

// key gives a canonical identity for set comparison.
func (e Element) key() string {
	v := ""
	if e.HasValue {
		v = fmt.Sprintf("|%.6g", e.Value)
	}
	return e.Kind + "|" + e.A + "|" + e.B + v
}

// Viz is a KG visualization: the graph a study participant sees, in the
// style of the paper's Figures 12-13.
type Viz struct {
	Elements []Element
	// Injected is the archetype of the injected error (None for the
	// correct visualization).
	Injected Archetype
}

// clone copies the visualization for error injection.
func (v Viz) clone() Viz {
	els := make([]Element, len(v.Elements))
	copy(els, v.Elements)
	return Viz{Elements: els, Injected: v.Injected}
}

// DOT renders the visualization in Graphviz syntax, in the style of the
// paper's Figures 12-13: valued edges carry their amount as a label, node
// properties (e.g. capitals) annotate the node label, and unary markers
// (e.g. defaults) fill the node.
func (v Viz) DOT() string {
	type nodeInfo struct {
		props   []string
		marked  bool
		markers []string
	}
	nodes := map[string]*nodeInfo{}
	var order []string
	node := func(name string) *nodeInfo {
		if n, ok := nodes[name]; ok {
			return n
		}
		n := &nodeInfo{}
		nodes[name] = n
		order = append(order, name)
		return n
	}
	var edges []string
	for _, e := range v.Elements {
		switch {
		case e.B != "":
			label := e.Kind
			if e.HasValue {
				label = fmt.Sprintf("%s %.4g", e.Kind, e.Value)
			}
			node(e.A)
			node(e.B)
			edges = append(edges, fmt.Sprintf("  %q -> %q [label=%q];", e.A, e.B, label))
		case e.HasValue:
			node(e.A).props = append(nodes[e.A].props, fmt.Sprintf("%s %.4g", e.Kind, e.Value))
		case e.A != "":
			n := node(e.A)
			n.marked = true
			n.markers = append(n.markers, e.Kind)
		}
	}
	var sb strings.Builder
	sb.WriteString("digraph viz {\n")
	for _, name := range order {
		n := nodes[name]
		label := name
		for _, p := range n.props {
			label += "\\n" + p
		}
		for _, m := range n.markers {
			label += "\\n[" + m + "]"
		}
		style := ""
		if n.marked {
			style = ", style=filled"
		}
		fmt.Fprintf(&sb, "  %q [label=%q%s];\n", name, label, style)
	}
	for _, e := range edges {
		sb.WriteString(e)
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")
	return sb.String()
}

// VizFromProof reconstructs the visualization of a proof: its extensional
// facts plus the derived conclusion.
func VizFromProof(proof *chase.Proof) Viz {
	res := proof.Result()
	var els []Element
	for _, id := range proof.Leaves {
		els = append(els, elementOf(res, id))
	}
	els = append(els, elementOf(res, proof.Target))
	return Viz{Elements: els}
}

// elementOf maps a fact to a visualization element using its shape: unary
// facts are node markers, binary facts with a numeric second argument are
// node properties, ternary facts with a numeric third argument are valued
// edges; everything else is a plain edge.
func elementOf(res *chase.Result, id database.FactID) Element {
	a := res.Store.Get(id).Atom
	e := Element{Kind: a.Predicate}
	switch a.Arity() {
	case 0:
	case 1:
		e.A = a.Terms[0].Display()
	case 2:
		e.A = a.Terms[0].Display()
		if f, ok := a.Terms[1].AsFloat(); ok {
			e.Value, e.HasValue = f, true
		} else {
			e.B = a.Terms[1].Display()
		}
	default:
		e.A = a.Terms[0].Display()
		e.B = a.Terms[1].Display()
		if f, ok := a.Terms[2].AsFloat(); ok {
			e.Value, e.HasValue = f, true
		}
	}
	return e
}

// Inject produces a distorted copy of the visualization containing one
// error of the requested archetype. When the archetype is not applicable
// to the graph (e.g. no two same-kind values to swap), it degrades to
// WrongValue, mirroring how the paper could only use applicable archetypes
// per case.
func Inject(v Viz, a Archetype, rng *rand.Rand) Viz {
	out := v.clone()
	out.Injected = a
	switch a {
	case WrongEdge:
		// Add a false edge between two existing entities.
		entities := entitiesOf(out.Elements)
		kind := edgeKind(out.Elements)
		if len(entities) < 2 || kind == "" {
			return Inject(v, WrongValue, rng)
		}
		from := entities[rng.Intn(len(entities))]
		to := entities[rng.Intn(len(entities))]
		for to == from {
			to = entities[rng.Intn(len(entities))]
		}
		out.Elements = append(out.Elements, Element{Kind: kind, A: from, B: to, Value: 0.42, HasValue: true})
		out.Injected = WrongEdge
		return out
	case WrongAggregation:
		// Swap the values of two same-kind valued elements (the order of
		// aggregation contributions).
		idx := valuedIndexesByKind(out.Elements)
		for _, group := range idx {
			if len(group) >= 2 {
				i, j := group[0], group[1]
				if out.Elements[i].Value != out.Elements[j].Value {
					out.Elements[i].Value, out.Elements[j].Value = out.Elements[j].Value, out.Elements[i].Value
					return out
				}
			}
		}
		return Inject(v, WrongValue, rng)
	case WrongChain:
		// Break a recursion chain: reverse the direction of a middle edge.
		for i, e := range out.Elements {
			if e.B != "" && e.A != e.B {
				out.Elements[i].A, out.Elements[i].B = e.B, e.A
				return out
			}
		}
		return Inject(v, WrongValue, rng)
	default:
		// Perturb one value.
		for i, e := range out.Elements {
			if e.HasValue {
				out.Elements[i].Value = e.Value*1.7 + 1
				out.Injected = WrongValue
				return out
			}
		}
		// No values at all: flip a node marker into a false edge.
		out.Injected = WrongValue
		if len(out.Elements) > 0 {
			out.Elements[0].A += "X"
		}
		return out
	}
}

func entitiesOf(els []Element) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range els {
		for _, n := range []string{e.A, e.B} {
			if n != "" && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

func edgeKind(els []Element) string {
	for _, e := range els {
		if e.B != "" {
			return e.Kind
		}
	}
	return ""
}

func valuedIndexesByKind(els []Element) map[string][]int {
	out := map[string][]int{}
	for i, e := range els {
		if e.HasValue {
			out[e.Kind] = append(out[e.Kind], i)
		}
	}
	return out
}

// Respondent is the participant model of the comprehension study: it
// reconstructs the true graph from the explanation (possible because
// template explanations are complete) and checks each candidate against it,
// noticing each individual discrepancy with probability Attention.
type Respondent struct {
	// Attention is the per-discrepancy detection probability.
	Attention float64
}

// Pick returns the index of the candidate the respondent selects.
func (r Respondent) Pick(rng *rand.Rand, truth Viz, candidates []Viz) int {
	type scored struct {
		idx       int
		perceived int
	}
	best := scored{idx: -1, perceived: math.MaxInt32}
	var ties []int
	for i, cand := range candidates {
		diffs := symmetricDiff(truth.Elements, cand.Elements)
		perceived := 0
		for d := 0; d < diffs; d++ {
			if rng.Float64() < r.Attention {
				perceived++
			}
		}
		switch {
		case perceived < best.perceived:
			best = scored{idx: i, perceived: perceived}
			ties = []int{i}
		case perceived == best.perceived:
			ties = append(ties, i)
		}
	}
	if len(ties) > 1 {
		return ties[rng.Intn(len(ties))]
	}
	return best.idx
}

// symmetricDiff counts elements present in exactly one of the two sets.
func symmetricDiff(a, b []Element) int {
	ka := map[string]int{}
	for _, e := range a {
		ka[e.key()]++
	}
	for _, e := range b {
		ka[e.key()]--
	}
	diff := 0
	for _, n := range ka {
		if n > 0 {
			diff += n
		} else {
			diff -= n
		}
	}
	return diff
}
