package study

import (
	"math/rand"
	"strings"
	"testing"
)

func TestArchetypeStrings(t *testing.T) {
	for a, want := range map[Archetype]string{
		None: "none", WrongEdge: "wrong edge", WrongValue: "wrong value",
		WrongAggregation: "incorrect aggregation", WrongChain: "incorrect chain",
	} {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}

func sampleViz() Viz {
	return Viz{Elements: []Element{
		{Kind: "Own", A: "A", B: "B", Value: 0.6, HasValue: true},
		{Kind: "Own", A: "B", B: "C", Value: 0.7, HasValue: true},
		{Kind: "Control", A: "A", B: "C"},
	}}
}

func TestInjectProducesOneError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := sampleViz()
	for _, a := range []Archetype{WrongEdge, WrongValue, WrongAggregation, WrongChain} {
		t.Run(a.String(), func(t *testing.T) {
			bad := Inject(truth, a, rng)
			if bad.Injected == None {
				t.Error("Injected not recorded")
			}
			if d := symmetricDiff(truth.Elements, bad.Elements); d == 0 {
				t.Errorf("%v: no difference injected", a)
			}
			// The original is untouched.
			if truth.Elements[0].Value != 0.6 || len(truth.Elements) != 3 {
				t.Error("Inject mutated the original")
			}
		})
	}
}

func TestInjectWrongEdgeAddsElement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bad := Inject(sampleViz(), WrongEdge, rng)
	if len(bad.Elements) != 4 {
		t.Errorf("elements = %d, want 4", len(bad.Elements))
	}
}

func TestInjectAggregationSwapsValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bad := Inject(sampleViz(), WrongAggregation, rng)
	if bad.Injected != WrongAggregation {
		t.Fatalf("fell back to %v", bad.Injected)
	}
	if bad.Elements[0].Value != 0.7 || bad.Elements[1].Value != 0.6 {
		t.Errorf("values not swapped: %v", bad.Elements[:2])
	}
}

func TestInjectDegradesWhenInapplicable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := Viz{Elements: []Element{{Kind: "Own", A: "A", B: "B", Value: 0.6, HasValue: true}}}
	// Only one valued element: aggregation swap inapplicable.
	bad := Inject(v, WrongAggregation, rng)
	if bad.Injected != WrongValue {
		t.Errorf("Injected = %v, want degradation to WrongValue", bad.Injected)
	}
}

func TestSymmetricDiff(t *testing.T) {
	a := sampleViz().Elements
	if d := symmetricDiff(a, a); d != 0 {
		t.Errorf("self diff = %d", d)
	}
	b := append([]Element{}, a...)
	b[0].Value = 0.9
	if d := symmetricDiff(a, b); d != 2 {
		t.Errorf("one changed value diff = %d, want 2", d)
	}
}

func TestRespondentPerfectAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	truth := sampleViz()
	candidates := []Viz{Inject(truth, WrongValue, rng), truth, Inject(truth, WrongEdge, rng)}
	r := Respondent{Attention: 1.0}
	for i := 0; i < 50; i++ {
		if pick := r.Pick(rng, truth, candidates); pick != 1 {
			t.Fatalf("perfect respondent picked %d", pick)
		}
	}
}

func TestRespondentZeroAttentionIsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	truth := sampleViz()
	candidates := []Viz{truth, Inject(truth, WrongValue, rng), Inject(truth, WrongEdge, rng)}
	r := Respondent{Attention: 0}
	counts := map[int]int{}
	for i := 0; i < 600; i++ {
		counts[r.Pick(rng, truth, candidates)]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] < 120 {
			t.Errorf("candidate %d picked only %d/600 times under zero attention", i, counts[i])
		}
	}
}

// TestFigure14Comprehension reproduces the comprehension study: five cases,
// 24 participants, overall accuracy around the paper's 96%.
func TestFigure14Comprehension(t *testing.T) {
	rs, err := RunComprehension(42, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("cases = %d, want 5", len(rs))
	}
	acc := OverallAccuracy(rs)
	if acc < 0.88 || acc > 1.0 {
		t.Errorf("overall accuracy = %v, want in [0.88, 1.0] (paper: 0.96)", acc)
	}
	for _, r := range rs {
		if r.Total != 24 {
			t.Errorf("case %q total = %d", r.Case, r.Total)
		}
		if r.Accuracy() < 0.8 {
			t.Errorf("case %q accuracy = %v, suspiciously low", r.Case, r.Accuracy())
		}
	}
}

// TestComprehensionCasesArtifacts: every case carries a complete set of
// artifacts and exactly one correct candidate.
func TestComprehensionCasesArtifacts(t *testing.T) {
	cases, err := ComprehensionCases(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if c.Explanation == "" {
			t.Errorf("%q: empty explanation", c.Name)
		}
		if len(c.Candidates) != 3 {
			t.Fatalf("%q: candidates = %d", c.Name, len(c.Candidates))
		}
		correct := 0
		for i, cand := range c.Candidates {
			if cand.Injected == None {
				correct++
				if i != c.CorrectIdx {
					t.Errorf("%q: CorrectIdx = %d, correct at %d", c.Name, c.CorrectIdx, i)
				}
			} else if symmetricDiff(c.Truth.Elements, cand.Elements) == 0 {
				t.Errorf("%q: distractor %d identical to truth", c.Name, i)
			}
		}
		if correct != 1 {
			t.Errorf("%q: %d correct candidates", c.Name, correct)
		}
	}
}

// TestFigure16ExpertStudy reproduces the expert study: 14 experts, three
// methods with statistically indistinguishable Likert scores in the
// region of the paper's means (3.7-3.8).
func TestFigure16ExpertStudy(t *testing.T) {
	r, err := RunExpert(42, 14)
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{MethodParaphrase, MethodSummary, MethodTemplates}
	for _, m := range methods {
		if n := len(r.Scores[m]); n != 56 { // 14 experts x 4 scenarios
			t.Errorf("%s: %d data points, want 56", m, n)
		}
		if r.Mean[m] < 3.2 || r.Mean[m] > 4.3 {
			t.Errorf("%s: mean = %v, want near the paper's 3.7-3.8", m, r.Mean[m])
		}
		if r.StdDev[m] < 0.5 || r.StdDev[m] > 1.6 {
			t.Errorf("%s: stddev = %v, want near the paper's ~1", m, r.StdDev[m])
		}
		for _, s := range r.Scores[m] {
			if s < 1 || s > 5 {
				t.Fatalf("%s: Likert score %v out of range", m, s)
			}
		}
	}
	// The paper's conclusion: no significant difference between methods.
	if r.Significant() {
		t.Errorf("significant difference found: p_para=%v p_summ=%v", r.PParaphrase, r.PSummary)
	}
}

// TestExpertScenariosComplete: the template text of every scenario is
// complete while at least one GPT text on the long scenarios omits
// something (the raw material of the paper's argument).
func TestExpertScenariosComplete(t *testing.T) {
	scs, err := ExpertScenarios(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 4 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	for _, sc := range scs {
		for _, m := range []Method{MethodParaphrase, MethodSummary, MethodTemplates} {
			if sc.Texts[m] == "" {
				t.Errorf("%q: empty %s text", sc.Name, m)
			}
		}
	}
}

func TestTrigramRedundancy(t *testing.T) {
	if r := trigramRedundancy("a b"); r != 0 {
		t.Errorf("short text redundancy = %v", r)
	}
	low := trigramRedundancy("every word here is totally distinct from all other words present")
	high := trigramRedundancy("the cat sat the cat sat the cat sat the cat sat")
	if high <= low {
		t.Errorf("repetitive text redundancy (%v) not above varied text (%v)", high, low)
	}
}

func TestExpertGradeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ex := Expert{Noise: 3} // huge noise still clamps to the scale
	for i := 0; i < 200; i++ {
		g := ex.Grade(rng, "some explanation text with A and B", []string{"A", "B"})
		if g < 1 || g > 5 {
			t.Fatalf("grade %v out of Likert range", g)
		}
	}
}

func TestOverallAccuracyEmpty(t *testing.T) {
	if OverallAccuracy(nil) != 0 {
		t.Error("empty OverallAccuracy not 0")
	}
}

// TestStudiesReproducible: same seeds give identical outcomes.
func TestStudiesReproducible(t *testing.T) {
	a, err := RunComprehension(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComprehension(9, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Correct != b[i].Correct {
			t.Errorf("case %d differs across runs", i)
		}
	}
	x, err := RunExpert(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	y, err := RunExpert(9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if x.Mean[MethodTemplates] != y.Mean[MethodTemplates] {
		t.Error("expert study differs across runs")
	}
}

func TestVizDOT(t *testing.T) {
	v := Viz{Elements: []Element{
		{Kind: "Own", A: "A", B: "B", Value: 0.6, HasValue: true},
		{Kind: "HasCapital", A: "A", Value: 5, HasValue: true},
		{Kind: "Default", A: "A"},
	}}
	dot := v.DOT()
	for _, sub := range []string{
		"digraph viz",
		`"A" -> "B" [label="Own 0.6"];`,
		"HasCapital 5",
		"[Default]",
		"style=filled",
	} {
		if !strings.Contains(dot, sub) {
			t.Errorf("DOT missing %q:\n%s", sub, dot)
		}
	}
}

func TestCaseArtifactsRenderable(t *testing.T) {
	cases, err := ComprehensionCases(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		for i, cand := range c.Candidates {
			dot := cand.DOT()
			if !strings.Contains(dot, "digraph viz") || len(dot) < 40 {
				t.Errorf("%s candidate %d: malformed DOT", c.Name, i)
			}
		}
	}
}
