// Package enhancer produces the "enhanced templates" of Section 4.2 of the
// paper: fluent rewritings of the deterministic explanation templates that
// remove repetition and improve readability while provably preserving every
// token.
//
// The paper performs this step with an LLM ("Rephrase the following text:")
// followed by an automatic token-presence check and an optional
// human-in-the-loop review. This package substitutes the LLM with a
// deterministic fluency rewriter behind the same interface: because
// enhancement operates only on rules — never on instance data — any
// rewriter that passes the token check is admissible, and ours passes it by
// construction. A real LLM can be plugged in by implementing Enhancer.
package enhancer

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ast"
	"repro/internal/glossary"
	"repro/internal/template"
	"repro/internal/verbalizer"
)

// Enhancer rewrites a deterministic template into fluent variants. Variants
// that fail the template's token check are discarded by EnhanceStore.
type Enhancer interface {
	// Enhance returns candidate fluent texts for the template.
	Enhance(t *template.Template, g *glossary.Glossary) ([]string, error)
}

// Fluent is the built-in deterministic rewriter. It regenerates each
// sentence from the reasoning path's rules with varied sentence patterns and
// connectives, and drops body clauses that merely repeat the previous rule's
// conclusion (the main source of redundancy in deterministic templates).
type Fluent struct {
	// Variants is the number of interchangeable rewritings to produce per
	// template (the paper repeats the enhancement step "to increase the
	// textual richness of final explanations"). Default 1.
	Variants int
	// Seed makes variant selection reproducible.
	Seed int64
}

// connectives introduce follow-up sentences after the first.
var connectives = []string{"As a result", "Consequently", "Therefore", "Thus", "In turn"}

// patterns assemble one sentence from body and head clauses.
var patterns = []func(body, head string) string{
	func(body, head string) string { return "Since " + body + ", " + head + "." },
	func(body, head string) string { return "Given that " + body + ", " + head + "." },
	func(body, head string) string { return upperFirst(head) + ", since " + body + "." },
	func(body, head string) string { return "Because " + body + ", " + head + "." },
}

// Enhance implements Enhancer.
func (f *Fluent) Enhance(t *template.Template, g *glossary.Glossary) ([]string, error) {
	n := f.Variants
	if n <= 0 {
		n = 1
	}
	rng := rand.New(rand.NewSource(f.Seed))
	var out []string
	for v := 0; v < n; v++ {
		text, err := f.rewrite(t, g, rng, true)
		if err != nil {
			return nil, err
		}
		if err := t.CheckText(text); err != nil {
			// A dropped clause lost a token; rebuild keeping every clause.
			text, err = f.rewrite(t, g, rng, false)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, text)
	}
	return out, nil
}

// rewrite builds one fluent variant. When dropConsumed is set, body atoms
// that repeat the conclusion of an earlier rule in the path are replaced by
// a connective.
func (f *Fluent) rewrite(t *template.Template, g *glossary.Glossary, rng *rand.Rand, dropConsumed bool) (string, error) {
	p := t.Path
	derivedEarlier := map[string]bool{}
	var sentences []string
	for i, r := range p.Rules {
		render := verbalizer.TokenRenderer(t.StepTokens[i])
		var body []string
		dropped := false
		for _, a := range r.Body {
			if dropConsumed && derivedEarlier[a.Predicate] && tokensCovered(a, r, t.StepTokens[i]) {
				dropped = true
				continue
			}
			text, err := verbalizer.AtomText(a, g, render)
			if err != nil {
				return "", fmt.Errorf("enhancer: %w", err)
			}
			body = append(body, trimPeriod(text))
		}
		for _, a := range r.Negated {
			text, err := verbalizer.AtomText(a, g, render)
			if err != nil {
				return "", fmt.Errorf("enhancer: %w", err)
			}
			body = append(body, "it is not the case that "+trimPeriod(text))
		}
		for _, as := range r.Assignments {
			body = append(body, verbalizer.AssignmentText(as, render))
		}
		for _, c := range r.Conditions {
			body = append(body, verbalizer.ConditionText(c, render))
		}
		head, err := verbalizer.AtomText(r.Head, g, render)
		if err != nil {
			return "", fmt.Errorf("enhancer: %w", err)
		}
		headClause := trimPeriod(head)
		if r.Aggregation != nil && p.Dashed {
			headClause += ", " + verbalizer.AggregationText(*r.Aggregation, render, nil)
		}

		var sentence string
		if len(body) == 0 {
			sentence = upperFirst(headClause) + "."
		} else {
			pattern := patterns[rng.Intn(len(patterns))]
			sentence = pattern(joinClauses(body), headClause)
		}
		if i > 0 && dropped {
			sentence = connectives[rng.Intn(len(connectives))] + ", " + lowerFirst(sentence)
		}
		sentences = append(sentences, sentence)
		derivedEarlier[r.Head.Predicate] = true
	}
	return strings.Join(sentences, " "), nil
}

// tokensCovered reports whether every token of the candidate-to-drop atom
// also occurs elsewhere in the rule (so dropping the clause cannot lose a
// token from the sentence).
func tokensCovered(drop ast.Atom, r *ast.Rule, tokens map[string]string) bool {
	elsewhere := map[string]bool{}
	collect := func(vars []string) {
		for _, v := range vars {
			elsewhere[tokens[v]] = true
		}
	}
	for _, a := range r.Body {
		if a.Equal(drop) {
			continue
		}
		collect(a.Variables())
	}
	collect(r.Head.Variables())
	for _, c := range r.Conditions {
		collect(c.Variables())
	}
	for _, as := range r.Assignments {
		collect([]string{as.Target})
		collect(as.Variables())
	}
	if r.Aggregation != nil {
		collect([]string{r.Aggregation.Target, r.Aggregation.Over})
	}
	for _, v := range drop.Variables() {
		if !elsewhere[tokens[v]] {
			return false
		}
	}
	return true
}

func joinClauses(parts []string) string {
	switch len(parts) {
	case 1:
		return parts[0]
	default:
		return strings.Join(parts[:len(parts)-1], ", ") + " and " + parts[len(parts)-1]
	}
}

func trimPeriod(s string) string {
	return strings.TrimSuffix(strings.TrimSpace(s), ".")
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func lowerFirst(s string) string {
	if s == "" || strings.HasPrefix(s, "<") {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// EnhanceStore runs the enhancer over every template of a store, attaching
// the variants that pass the omission check. It returns the number of
// variants attached and the first hard error encountered.
func EnhanceStore(s *template.Store, e Enhancer) (int, error) {
	attached := 0
	for _, t := range s.All() {
		variants, err := e.Enhance(t, s.Glossary())
		if err != nil {
			return attached, err
		}
		for _, v := range variants {
			if err := t.AddEnhanced(v); err == nil {
				attached++
			}
		}
	}
	return attached, nil
}
