package enhancer

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/depgraph"
	"repro/internal/glossary"
	"repro/internal/parser"
	"repro/internal/paths"
	"repro/internal/template"
)

const figure7Src = `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

func stressStore(t *testing.T) *template.Store {
	t.Helper()
	prog := parser.MustParse(stressSimpleSrc)
	a := paths.Analyze(depgraph.New(prog))
	s, err := template.Generate(a, glossary.MustParse(figure7Src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEnhancePreservesTokens: every enhanced variant passes the omission
// check for every template of the application.
func TestEnhancePreservesTokens(t *testing.T) {
	s := stressStore(t)
	f := &Fluent{Variants: 3, Seed: 42}
	attached, err := EnhanceStore(s, f)
	if err != nil {
		t.Fatalf("EnhanceStore: %v", err)
	}
	if want := 3 * len(s.All()); attached != want {
		t.Errorf("attached = %d, want %d (no variant may fail the token check)", attached, want)
	}
	for _, tpl := range s.All() {
		for _, v := range tpl.Enhanced {
			if err := tpl.CheckText(v); err != nil {
				t.Errorf("variant fails check: %v", err)
			}
		}
	}
}

// TestEnhanceRemovesRepetition: the enhanced Π2 no longer repeats the
// "is in default" clause verbatim as both conclusion and premise.
func TestEnhanceRemovesRepetition(t *testing.T) {
	s := stressStore(t)
	if _, err := EnhanceStore(s, &Fluent{Variants: 1, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	tpl := s.ByPath("Π2")
	enhanced := tpl.Enhanced[0]

	// Deterministic text repeats the Default clause (as γ's premise) and
	// the Risk clause; the enhanced text drops the repeated premises.
	detRepeats := strings.Count(tpl.Text, "is in default")
	enhRepeats := strings.Count(enhanced, "is in default")
	if enhRepeats >= detRepeats {
		t.Errorf("repetition not reduced: %d -> %d\ndeterministic: %s\nenhanced: %s",
			detRepeats, enhRepeats, tpl.Text, enhanced)
	}
	// A connective marks the dropped premise.
	found := false
	for _, c := range connectives {
		if strings.Contains(enhanced, c+",") {
			found = true
		}
	}
	if !found {
		t.Errorf("no connective in enhanced text:\n%s", enhanced)
	}
	// The enhanced text is shorter than the deterministic one.
	if len(enhanced) >= len(tpl.Text) {
		t.Errorf("enhanced (%d chars) not shorter than deterministic (%d)", len(enhanced), len(tpl.Text))
	}
}

// TestVariantsDiffer: with several variants requested, at least two differ
// (interchangeable enriched versions of the same template).
func TestVariantsDiffer(t *testing.T) {
	s := stressStore(t)
	if _, err := EnhanceStore(s, &Fluent{Variants: 4, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	tpl := s.ByPath("Π2")
	distinct := map[string]bool{}
	for _, v := range tpl.Enhanced {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d variants identical", len(tpl.Enhanced))
	}
}

// TestEnhanceDeterministicWithSeed: the same seed produces the same
// variants.
func TestEnhanceDeterministicWithSeed(t *testing.T) {
	s1 := stressStore(t)
	s2 := stressStore(t)
	if _, err := EnhanceStore(s1, &Fluent{Variants: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := EnhanceStore(s2, &Fluent{Variants: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	a := s1.ByPath("Γ1").Enhanced
	b := s2.ByPath("Γ1").Enhanced
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("variant %d differs across runs:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestEnhancedDashedKeepsAggregation: the dashed variant keeps the
// aggregator verbalization with its contributor token.
func TestEnhancedDashedKeepsAggregation(t *testing.T) {
	s := stressStore(t)
	if _, err := EnhanceStore(s, &Fluent{Variants: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	tpl := s.ByPath("Γ1*")
	if !strings.Contains(tpl.Enhanced[0], "sum of <v>") {
		t.Errorf("dashed enhancement lost aggregator:\n%s", tpl.Enhanced[0])
	}
}

// TestEnhancedInstantiation: an enhanced template instantiates end-to-end
// on real chase steps with all constants present.
func TestEnhancedInstantiation(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	res := chase.MustRun(prog, chase.Options{})
	s := stressStore(t)
	if _, err := EnhanceStore(s, &Fluent{Variants: 1, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	tpl := s.ByPath("Π2")
	text, err := tpl.Instantiate(res.Steps[:3])
	if err != nil {
		t.Fatalf("Instantiate enhanced: %v", err)
	}
	for _, c := range []string{"A", "6", "5", "7", "B", "2"} {
		if !strings.Contains(text, c) {
			t.Errorf("instance missing %q:\n%s", c, text)
		}
	}
}

func TestDefaultVariantCount(t *testing.T) {
	s := stressStore(t)
	f := &Fluent{} // zero Variants means 1
	variants, err := f.Enhance(s.ByPath("Π1"), s.Glossary())
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 1 {
		t.Errorf("variants = %d, want 1", len(variants))
	}
}

func TestEnhanceMissingGlossary(t *testing.T) {
	s := stressStore(t)
	f := &Fluent{}
	if _, err := f.Enhance(s.ByPath("Π1"), glossary.New()); err == nil {
		t.Error("missing glossary accepted")
	}
}

// TestEnhanceBodylessSentence: when every premise of a rule was already
// derived in the path and its tokens are covered, the rewritten sentence
// degenerates to the head clause alone.
func TestEnhanceBodylessSentence(t *testing.T) {
	prog := parser.MustParse(`
@output("C").
@label("r1") B(X) :- A(X).
@label("r2") C(X) :- B(X).
`)
	g := glossary.MustParse(`
A(x): <x> is an input.
B(x): <x> is intermediate.
C(x): <x> is the goal.
`)
	a := paths.Analyze(depgraph.New(prog))
	s, err := template.Generate(a, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnhanceStore(s, &Fluent{Variants: 1, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	tpl := s.ByPath("Π1")
	enhanced := tpl.Enhanced[0]
	// The second sentence has no remaining premise clause: it reads as a
	// bare conclusion introduced by a connective.
	if !strings.Contains(enhanced, "<x> is the goal.") {
		t.Errorf("bodyless conclusion missing:\n%s", enhanced)
	}
	if strings.Count(enhanced, "is intermediate") != 1 {
		t.Errorf("premise repetition not removed:\n%s", enhanced)
	}
}

// TestEnhanceNegatedRule: the negated premise survives enhancement.
func TestEnhanceNegatedRule(t *testing.T) {
	prog := parser.MustParse(`
@output("Eligible").
@label("d") Default(F) :- Shock(F, S), HasCapital(F, P), S > P.
@label("e") Eligible(X) :- HasCapital(X, P), not Default(X).
`)
	g := glossary.MustParse(`
Shock(f, s): a shock of <s> hits <f>.
HasCapital(f, p): <f> has capital <p>.
Default(f): <f> is in default.
Eligible(x): <x> is eligible.
`)
	a := paths.Analyze(depgraph.New(prog))
	s, err := template.Generate(a, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnhanceStore(s, &Fluent{Variants: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tpl := range s.All() {
		for _, v := range tpl.Enhanced {
			if strings.Contains(v, "it is not the case that") {
				found = true
			}
		}
	}
	if !found {
		t.Error("negated premise lost in every enhanced variant")
	}
}
