package apps

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All = %d apps", len(all))
	}
	for _, a := range all {
		if a.Name == "" || a.Title == "" || a.Description == "" {
			t.Errorf("app %q has empty metadata", a.Name)
		}
		got, err := ByName(a.Name)
		if err != nil || got.Name != a.Name {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestAllAppsCompile: every bundled application parses, its glossary covers
// its program, and the pipeline compiles with enhancement.
func TestAllAppsCompile(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			prog := a.Program()
			if len(prog.Rules) == 0 || prog.Output == "" {
				t.Fatalf("program malformed: %d rules, output %q", len(prog.Rules), prog.Output)
			}
			if errs := a.Glossary().Covers(prog); len(errs) > 0 {
				t.Fatalf("glossary gaps: %v", errs)
			}
			p, err := a.Pipeline(core.Config{})
			if err != nil {
				t.Fatalf("Pipeline: %v", err)
			}
			if len(p.Analysis().Simple) == 0 {
				t.Error("no simple reasoning paths")
			}
			if len(a.Scenario()) == 0 {
				t.Error("empty scenario")
			}
		})
	}
}

// TestScenarioReasoningAndExplanations runs the representative scenario of
// every application end-to-end: the chase saturates, answers are derived,
// and every answer has a complete explanation.
func TestScenarioReasoningAndExplanations(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			p, err := a.Pipeline(core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Reason(a.Scenario()...)
			if err != nil {
				t.Fatalf("Reason: %v", err)
			}
			answers := res.Answers()
			if len(answers) == 0 {
				t.Fatalf("no answers derived:\n%s", res.Store.Dump())
			}
			exps, err := p.ExplainAll(res)
			if err != nil {
				t.Fatalf("ExplainAll: %v", err)
			}
			for _, e := range exps {
				if err := e.Verify(); err != nil {
					t.Errorf("%v", err)
				}
			}
		})
	}
}

// TestFigure13ControlScenario checks the derived control edges of the
// representative ownership scenario.
func TestFigure13ControlScenario(t *testing.T) {
	a := CompanyControl()
	p, err := a.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(a.Scenario()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`Control("A", "B")`,
		`Control("B", "C")`,
		`Control("A", "C")`,
		`Control("C", "D")`,
		`Control("B", "D")`,
		`Control("A", "D")`,
		`Control("B", "E")`, // joint: via D (0.3) and B's own shares (0.25)
		`Control("E", "F")`,
		`Control("B", "F")`,
	} {
		if _, err := p.ExplainQuery(res, q); err != nil {
			t.Errorf("explain %s: %v", q, err)
		}
	}

	// The Section 5 query Q = {Control(B, D)} follows reasoning path Π2.
	e, err := p.ExplainQuery(res, `Control("B", "D")`)
	if err != nil {
		t.Fatal(err)
	}
	if ids := e.PathIDs(); len(ids) != 1 || ids[0] != "Π2" {
		t.Errorf("Control(B,D) paths = %v, want [Π2]", ids)
	}

	// Control of E runs through the chain to D before the joint final
	// aggregation: the spine is {σ1, σ3, σ3}, covered by Π2 plus a dashed
	// cycle (B's own shares enter as a side contributor).
	eChain, err := p.ExplainQuery(res, `Control("B", "E")`)
	if err != nil {
		t.Fatal(err)
	}
	// (B's self-control contributor is told first by the elementary ρ(s2),
	// then the chain through D, then the final joint aggregation.)
	if ids := eChain.PathIDs(); len(ids) != 3 || ids[0] != "ρ(s2)" || ids[1] != "Π2" || ids[2] != "Γ1*" {
		t.Errorf("Control(B,E) paths = %v, want [ρ(s2) Π2 Γ1*]", ids)
	}

	// One-hop joint control of H (via G's shares plus B's own) engages the
	// joint path Π5 with its aggregation variant.
	eJoint, err := p.ExplainQuery(res, `Control("B", "H")`)
	if err != nil {
		t.Fatal(err)
	}
	if ids := eJoint.PathIDs(); len(ids) != 1 || ids[0] != "Π5*" {
		t.Errorf("Control(B,H) paths = %v, want [Π5*]", ids)
	}
	for _, c := range []string{"G", "H", "0.3", "0.25", "0.55"} {
		if !strings.Contains(eJoint.Text, c) {
			t.Errorf("Control(B,H) explanation missing %q:\n%s", c, eJoint.Text)
		}
	}
}

// TestFigure13StressScenario checks the cascade of the Section 5 stress
// scenario: A, B, C and F default; D and E survive.
func TestFigure13StressScenario(t *testing.T) {
	a := StressTest()
	p, err := a.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(a.Scenario()...)
	if err != nil {
		t.Fatal(err)
	}
	defaults := map[string]bool{}
	for _, id := range res.Answers() {
		defaults[res.Store.Get(id).Atom.Terms[0].StringVal()] = true
	}
	for _, want := range []string{"A", "B", "C", "F"} {
		if !defaults[want] {
			t.Errorf("%s did not default; defaults = %v", want, defaults)
		}
	}
	for _, survive := range []string{"D", "E"} {
		if defaults[survive] {
			t.Errorf("%s defaulted; defaults = %v", survive, defaults)
		}
	}

	// The explanation of Default(F) reports the joint 2M + 9M = 11M
	// exposure over both channels (the Section 5 narrative).
	e, err := p.ExplainQuery(res, `Default("F")`)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"F", "11", "9", "2", "long", "short"} {
		if !strings.Contains(e.Text, c) {
			t.Errorf("Default(F) explanation missing %q:\n%s", c, e.Text)
		}
	}
}

// TestCloseLinkScenario checks integrated ownership: A holds 0.55*0.6 + 0.1
// = 0.43 of C.
func TestCloseLinkScenario(t *testing.T) {
	a := CloseLink()
	p, err := a.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(a.Scenario()...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ExplainQuery(res, `CloseLink("A", "C")`)
	if err != nil {
		t.Fatalf("explain: %v\n%s", err, res.Store.Dump())
	}
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
	if !strings.Contains(e.Text, "0.43") {
		t.Errorf("integrated ownership total missing:\n%s", e.Text)
	}
}

// TestGoldenPowerScenario: the foreign fund's joint control of the grid
// operator triggers review; the exempted investor's takeover does not.
func TestGoldenPowerScenario(t *testing.T) {
	a := GoldenPower()
	p, err := a.Pipeline(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(a.Scenario()...)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ExplainQuery(res, `Review("OverseasFund", "GridCo")`)
	if err != nil {
		t.Fatalf("explain: %v\n%s", err, res.Store.Dump())
	}
	if err := e.Verify(); err != nil {
		t.Error(err)
	}
	for _, sub := range []string{
		"critical national infrastructure",
		"foreign investor",
		"it is not the case that OverseasFund holds a standing golden-power exemption",
		"0.55", // the joint 0.3 + 0.25 stake
	} {
		if !strings.Contains(e.Text, sub) {
			t.Errorf("explanation missing %q:\n%s", sub, e.Text)
		}
	}
	// The exempted investor is not flagged.
	if _, err := p.ExplainQuery(res, `Review("TrustedPartner", "PortCo")`); err == nil {
		t.Error("exempted takeover flagged for review")
	}
}
