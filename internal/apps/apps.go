// Package apps ships the financial Knowledge Graph applications of the
// paper: the simplified stress test of Example 4.3, the company control and
// two-channel stress test programs of Section 5, and the close link
// application the expert user study mentions. Each application bundles its
// Vadalog program, its domain glossary (Figures 7 and 11) and a
// representative synthetic scenario in the spirit of Figures 12-13.
//
// The scenarios are synthetic by design: the paper itself evaluates on
// artificially generated data because individual shares and loan exposures
// are confidential.
package apps

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/glossary"
	"repro/internal/parser"
)

// App is one bundled KG application.
type App struct {
	// Name is the registry key ("company-control").
	Name string
	// Title is the human-readable name.
	Title string
	// Description summarizes the business task.
	Description string
	// ProgramSource holds the rules (no facts) in concrete syntax.
	ProgramSource string
	// GlossarySource holds the domain glossary in its text format.
	GlossarySource string
	// ScenarioSource holds the representative scenario's extensional facts.
	ScenarioSource string
}

// Program parses the application's rules.
func (a *App) Program() *ast.Program {
	return parser.MustParse(a.ProgramSource)
}

// Glossary parses the application's domain glossary.
func (a *App) Glossary() *glossary.Glossary {
	return glossary.MustParse(a.GlossarySource)
}

// Scenario parses the representative scenario facts.
func (a *App) Scenario() []ast.Atom {
	prog := parser.MustParse(a.ScenarioSource)
	return prog.Facts
}

// Pipeline compiles the application into an explanation pipeline.
func (a *App) Pipeline(cfg core.Config) (*core.Pipeline, error) {
	return core.NewPipeline(a.Program(), a.Glossary(), cfg)
}

// Registry names.
const (
	NameStressSimple   = "stress-simple"
	NameCompanyControl = "company-control"
	NameStressTest     = "stress-test"
	NameCloseLink      = "close-link"
	NameGoldenPower    = "golden-power"
)

// StressSimple is the simplified stress test of Example 4.3: a shock
// defaults an entity; defaults propagate to creditors through aggregated
// debt exposures.
func StressSimple() *App {
	return &App{
		Name:  NameStressSimple,
		Title: "Simplified Stress Test (Example 4.3)",
		Description: "Derives the Default events triggered by an exogenous shock " +
			"propagating through aggregated debt exposures.",
		ProgramSource: `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
`,
		GlossarySource: `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`,
		// The artificial EDB of Figure 8.
		ScenarioSource: `
Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`,
	}
}

// CompanyControl is the company control program of Section 5: x controls y
// when it directly owns more than 50% of y, or when the companies it
// controls jointly own more than 50% of y.
func CompanyControl() *App {
	return &App{
		Name:  NameCompanyControl,
		Title: "Company Control",
		Description: "Finds chains of control between companies under the " +
			"one-share one-vote assumption (official Bank of Italy definition).",
		ProgramSource: `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`,
		GlossarySource: `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Company(x): <x> is a business corporation.
`,
		// A synthetic ownership graph in the spirit of Figure 12: a control
		// chain A -> B -> C -> D, a joint control of E through D's and B's
		// own shares, and a one-hop joint control of H through G and B's
		// own shares (engaging the joint reasoning path Π5).
		ScenarioSource: `
Company("A"). Company("B"). Company("C"). Company("D").
Company("E"). Company("F"). Company("G"). Company("H").
Own("A", "B", 0.55).
Own("B", "C", 0.6).
Own("C", "D", 0.55).
Own("D", "E", 0.3).
Own("B", "E", 0.25).
Own("E", "F", 0.7).
Own("B", "G", 0.7).
Own("G", "H", 0.3).
Own("B", "H", 0.25).
`,
	}
}

// StressTest is the two-channel stress test of Section 5: default shocks
// propagate over long-term and short-term debt exposures, and an entity
// defaults when its total exposure to defaulted debtors exceeds its capital.
func StressTest() *App {
	return &App{
		Name:  NameStressTest,
		Title: "Stress Test (two channels)",
		Description: "Propagates a default shock over long-term and short-term " +
			"debt exposures, deriving cascade defaults.",
		ProgramSource: `
@name("stress-test").
@output("Default").
@label("s4") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("s5") Risk(C, EL, "long") :- Default(D), LongTermDebts(D, C, V), EL = sum(V).
@label("s6") Risk(C, ES, "short") :- Default(D), ShortTermDebts(D, C, V), ES = sum(V).
@label("s7") Default(C) :- Risk(C, E, T), HasCapital(C, P2), L = sum(E), L > P2.
`,
		GlossarySource: `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Company(x): <x> is a business corporation.
HasCapital(f, p): <f> is a company with capital of <p> euros.
Shock(f, s): a shock amounting to <s> euro hits <f>.
Default(f): <f> is in default.
LongTermDebts(d, c, v): <d> has an amount <v> of long-term debts with <c>.
ShortTermDebts(d, c, v): <d> has an amount <v> of short-term debts with <c>.
Risk(c, e, t): <c> is at risk of defaulting given its <t>-term loans of <e> euros of exposures to a defaulted debtor.
`,
		// The Section 5 representative scenario: a 14M shock to A defaults
		// A (capital 5), B through its 7M long-term exposure (capital 4), C
		// through B's 9M short-term debt (capital 8), and F through the
		// joint 2M long + 9M short exposures to C and B (capital 9); D and
		// E survive.
		ScenarioSource: `
Shock("A", 14.0).
HasCapital("A", 5.0).
HasCapital("B", 4.0).
HasCapital("C", 8.0).
HasCapital("D", 6.0).
HasCapital("E", 11.0).
HasCapital("F", 9.0).
LongTermDebts("A", "B", 7.0).
ShortTermDebts("B", "C", 9.0).
LongTermDebts("C", "F", 2.0).
ShortTermDebts("B", "F", 9.0).
LongTermDebts("A", "D", 3.0).
ShortTermDebts("C", "E", 5.0).
`,
	}
}

// CloseLink is the close link application mentioned by the paper's expert
// user study ([2]: Atzeni et al., company ownership graphs): two parties are
// close linked when one holds, directly or indirectly through chained
// ownerships, at least 20% of the other. Indirect holdings multiply along
// ownership paths and sum across paths; a 1% floor on path products bounds
// the multiplicative recursion.
func CloseLink() *App {
	return &App{
		Name:  NameCloseLink,
		Title: "Close Links",
		Description: "Detects close links: integrated (direct plus indirect) " +
			"ownership of at least 20%, with path products summed across " +
			"distinct ownership chains.",
		ProgramSource: `
@name("close-link").
@output("CloseLink").
@label("c1") MOwn(X, Y, S) :- Own(X, Y, S).
@label("c2") MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2, S >= 0.01.
@label("c3") CloseLink(X, Y) :- MOwn(X, Y, S), TS = sum(S), TS >= 0.2.
`,
		GlossarySource: `
Own(x, y, s): <x> owns <s> shares of <y>.
MOwn(x, y, s): <x> holds an integrated ownership of <s> in <y>.
CloseLink(x, y): <x> and <y> are close linked.
`,
		ScenarioSource: `
Own("A", "B", 0.55).
Own("B", "C", 0.6).
Own("A", "C", 0.1).
Own("C", "D", 0.5).
`,
	}
}

// GoldenPower is the takeover-screening application in the spirit of the
// golden-power exercises the paper's authors describe in their companion
// works (its references [8] and [9]): the state must review any acquisition
// of control over a strategic company by a foreign entity that holds no
// standing exemption. The rule set layers the company control program with
// a stratified negation.
func GoldenPower() *App {
	return &App{
		Name:  NameGoldenPower,
		Title: "Golden Power Review",
		Description: "Flags foreign takeovers of strategic companies for " +
			"governmental review, unless the acquirer holds an exemption.",
		ProgramSource: `
@name("golden-power").
@output("Review").
@label("g1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("g2") Control(X, X) :- Company(X).
@label("g3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
@label("g4") Review(X, Y) :- Control(X, Y), Strategic(Y), Foreign(X), not Exempt(X).
`,
		GlossarySource: `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Company(x): <x> is a business corporation.
Strategic(y): <y> operates critical national infrastructure.
Foreign(x): <x> is a foreign investor.
Exempt(x): <x> holds a standing golden-power exemption.
Review(x, y): the acquisition of <y> by <x> is subject to golden power review.
`,
		// A foreign fund takes indirect control of a strategic grid
		// operator through a holding chain; a second, exempted investor
		// controls another strategic target without triggering review.
		ScenarioSource: `
Company("OverseasFund"). Company("HoldCo"). Company("GridCo").
Company("TrustedPartner"). Company("PortCo").
Own("OverseasFund", "HoldCo", 0.7).
Own("HoldCo", "GridCo", 0.3).
Own("OverseasFund", "GridCo", 0.25).
Own("TrustedPartner", "PortCo", 0.8).
Strategic("GridCo").
Strategic("PortCo").
Foreign("OverseasFund").
Foreign("TrustedPartner").
Exempt("TrustedPartner").
`,
	}
}

// All returns every bundled application.
func All() []*App {
	return []*App{StressSimple(), CompanyControl(), StressTest(), CloseLink(), GoldenPower()}
}

// ByName returns the application with the given registry name.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q (available: stress-simple, company-control, stress-test, close-link)", name)
}
