package privacy

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestAnonymizeBasics(t *testing.T) {
	p := New()
	text := "IrishBank exercises control over MadridCredit. IrishBank owns 0.57 of it."
	out := p.Anonymize(text, []string{"IrishBank", "MadridCredit", "0.57"})
	if strings.Contains(out, "IrishBank") || strings.Contains(out, "MadridCredit") {
		t.Errorf("entities not replaced: %q", out)
	}
	if !strings.Contains(out, "0.57") {
		t.Errorf("amount replaced without Numbers: %q", out)
	}
	if !strings.Contains(out, "Entity-1") || !strings.Contains(out, "Entity-2") {
		t.Errorf("pseudonyms missing: %q", out)
	}
	// Stability: the same constant maps to the same pseudonym again.
	out2 := p.Anonymize("IrishBank again", []string{"IrishBank"})
	first := p.Mapping()["IrishBank"]
	if !strings.Contains(out2, first) {
		t.Errorf("mapping not stable: %q vs %q", out2, first)
	}
}

func TestAnonymizeNumbers(t *testing.T) {
	p := New()
	p.Numbers = true
	out := p.Anonymize("A owes 7 to B", []string{"A", "B", "7"})
	if strings.Contains(out, "7") {
		t.Errorf("number not replaced: %q", out)
	}
	if !strings.Contains(out, "Amount-1") {
		t.Errorf("amount pseudonym missing: %q", out)
	}
}

func TestDeanonymizeRoundTrip(t *testing.T) {
	p := New()
	p.Numbers = true
	text := "IrishBank controls MadridCredit with 0.57 shares; IrishBank also owns FrenchPLC."
	consts := []string{"IrishBank", "MadridCredit", "FrenchPLC", "0.57"}
	anon := p.Anonymize(text, consts)
	back := p.Deanonymize(anon)
	if back != text {
		t.Errorf("round trip failed:\n%q\n%q", text, back)
	}
}

func TestWholeTokenReplacement(t *testing.T) {
	p := New()
	// Constant "A" must not touch "CASCADE" or "N2_A"-like identifiers.
	out := p.Anonymize("A triggers CASCADE at N2_A", []string{"A"})
	if !strings.Contains(out, "CASCADE") || !strings.Contains(out, "N2_A") {
		t.Errorf("embedded occurrences corrupted: %q", out)
	}
	if strings.HasPrefix(out, "A ") {
		t.Errorf("standalone occurrence kept: %q", out)
	}
}

func TestPrefixConstants(t *testing.T) {
	p := New()
	// "Bank" is a prefix of "BankOfX": longest-first ordering keeps both.
	out := p.Anonymize("Bank and BankOfX differ", []string{"Bank", "BankOfX"})
	if strings.Contains(out, "Bank") {
		t.Errorf("replacement incomplete: %q", out)
	}
	if p.Mapping()["Bank"] == p.Mapping()["BankOfX"] {
		t.Error("distinct constants share a pseudonym")
	}
}

func TestAnonymizeExplanation(t *testing.T) {
	progSrc := `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
Shock("AlphaBank", 6.0).
HasCapital("AlphaBank", 5.0).
HasCapital("BetaFund", 2.0).
Debts("AlphaBank", "BetaFund", 7.0).
`
	glosSrc := `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`
	pipe, err := core.NewPipelineFromSource(progSrc, glosSrc, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Reason()
	if err != nil {
		t.Fatal(err)
	}
	e, err := pipe.ExplainQuery(res, `Default("BetaFund")`)
	if err != nil {
		t.Fatal(err)
	}
	p := New()
	anon, err := AnonymizeExplanation(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(anon, "AlphaBank") || strings.Contains(anon, "BetaFund") {
		t.Errorf("entity leaked: %q", anon)
	}
	// Amounts survive (Numbers off) so analysts can still follow the math.
	for _, amount := range []string{"6", "5", "7", "2"} {
		if !strings.Contains(anon, amount) {
			t.Errorf("amount %q lost: %q", amount, anon)
		}
	}
	// Round trip restores the original explanation.
	if back := p.Deanonymize(anon); back != e.Text {
		t.Errorf("deanonymize mismatch:\n%q\n%q", back, e.Text)
	}
}

// Property: anonymize/deanonymize is the identity on texts built from the
// constants it knows about.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint8) bool {
		p := New()
		p.Numbers = true
		names := []string{"Aldgate", "Borduria", "Carthage", "42", "0.5"}
		var parts []string
		for i := 0; i < int(seed%7)+1; i++ {
			parts = append(parts, names[(int(seed)+i)%len(names)])
		}
		text := strings.Join(parts, " pays ")
		anon := p.Anonymize(text, names)
		return p.Deanonymize(anon) == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMappingIsCopy(t *testing.T) {
	p := New()
	p.Anonymize("X", []string{"X"})
	m := p.Mapping()
	m["X"] = "tampered"
	if p.Mapping()["X"] == "tampered" {
		t.Error("Mapping exposes internal state")
	}
}
