// Package privacy implements reversible pseudonymization of explanation
// texts. The paper's central constraint is that instance data must never
// reach third parties; its Section 1 discusses anonymization as the
// conventional (and, for unstructured text, unsolved) alternative. This
// package provides the practical middle ground for the cases where an
// explanation must leave the trust boundary anyway — e.g. to obtain a
// one-off fluency rewrite of an *instance* text: entity constants are
// replaced by stable, meaningless pseudonyms before the text leaves, and
// the mapping (kept inside) restores them afterwards.
//
// Only whole-token occurrences are replaced, using the same token matching
// as the completeness checks, so pseudonymization can never corrupt
// unrelated words or embedded numbers.
package privacy

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/verbalizer"
)

// Pseudonymizer maintains a stable bidirectional mapping between entity
// constants and pseudonyms. The zero value is not usable; call New.
type Pseudonymizer struct {
	entityPrefix string
	amountPrefix string
	forward      map[string]string
	reverse      map[string]string
	seq          int
	amountSeq    int
	// Numbers also pseudonymizes numeric constants (amounts); entity
	// names are always pseudonymized.
	Numbers bool
}

// New returns a Pseudonymizer issuing pseudonyms "Entity-1", "Entity-2",
// ... (and "Amount-1", ... when Numbers is enabled).
func New() *Pseudonymizer {
	return &Pseudonymizer{
		entityPrefix: "Entity-",
		amountPrefix: "Amount-",
		forward:      map[string]string{},
		reverse:      map[string]string{},
	}
}

var numberLike = regexp.MustCompile(`^-?\d+(\.\d+)?$`)

// pseudonymFor returns (and fixes) the pseudonym of a constant; numeric
// constants are passed through unless Numbers is set.
func (p *Pseudonymizer) pseudonymFor(c string) (string, bool) {
	if ps, ok := p.forward[c]; ok {
		return ps, true
	}
	var ps string
	if numberLike.MatchString(c) {
		if !p.Numbers {
			return "", false
		}
		p.amountSeq++
		ps = p.amountPrefix + strconv.Itoa(p.amountSeq)
	} else {
		p.seq++
		ps = p.entityPrefix + strconv.Itoa(p.seq)
	}
	p.forward[c] = ps
	p.reverse[ps] = c
	return ps, true
}

// Anonymize replaces every whole-token occurrence of the given constants in
// the text with their pseudonyms. Constants are processed longest-first so
// a constant that is a prefix of another cannot clobber it.
func (p *Pseudonymizer) Anonymize(text string, constants []string) string {
	ordered := append([]string{}, constants...)
	sort.Slice(ordered, func(i, j int) bool {
		if len(ordered[i]) != len(ordered[j]) {
			return len(ordered[i]) > len(ordered[j])
		}
		return ordered[i] < ordered[j]
	})
	for _, c := range ordered {
		if c == "" {
			continue
		}
		ps, ok := p.pseudonymFor(c)
		if !ok {
			continue
		}
		text = replaceToken(text, c, ps)
	}
	return text
}

// Deanonymize restores the original constants in a text containing
// pseudonyms issued by this Pseudonymizer.
func (p *Pseudonymizer) Deanonymize(text string) string {
	pseudos := make([]string, 0, len(p.reverse))
	for ps := range p.reverse {
		pseudos = append(pseudos, ps)
	}
	sort.Slice(pseudos, func(i, j int) bool {
		if len(pseudos[i]) != len(pseudos[j]) {
			return len(pseudos[i]) > len(pseudos[j])
		}
		return pseudos[i] < pseudos[j]
	})
	for _, ps := range pseudos {
		text = replaceToken(text, ps, p.reverse[ps])
	}
	return text
}

// Mapping returns a copy of the constant → pseudonym mapping issued so far.
func (p *Pseudonymizer) Mapping() map[string]string {
	out := make(map[string]string, len(p.forward))
	for k, v := range p.forward {
		out[k] = v
	}
	return out
}

// replaceToken replaces whole-token occurrences of tok with repl, using the
// same token-boundary rules as the completeness checks.
func replaceToken(text, tok, repl string) string {
	var sb strings.Builder
	for {
		i := verbalizer.IndexConstant(text, tok)
		if i < 0 {
			sb.WriteString(text)
			return sb.String()
		}
		sb.WriteString(text[:i])
		sb.WriteString(repl)
		text = text[i+len(tok):]
	}
}

// AnonymizeExplanation pseudonymizes an explanation's text using the entity
// constants of its proof, and verifies that the anonymized text is still
// complete *under the mapping* (every proof constant appears as its
// pseudonym or, for pass-through numbers, as itself).
func AnonymizeExplanation(e *core.Explanation, p *Pseudonymizer) (string, error) {
	constants := e.Proof.Constants()
	out := p.Anonymize(e.Text, constants)
	mapping := p.Mapping()
	for _, c := range constants {
		want := c
		if ps, ok := mapping[c]; ok {
			want = ps
		}
		if !verbalizer.ContainsConstant(out, want) {
			return "", fmt.Errorf("privacy: anonymized explanation lost %q (as %q)", c, want)
		}
	}
	return out, nil
}
