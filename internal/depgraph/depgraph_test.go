package depgraph

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/parser"
)

// Example 4.3 (simplified stress test).
const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
`

// Section 5 company control.
const controlSrc = `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`

// Section 5 two-channel stress test.
const stressSrc = `
@name("stress-test").
@output("Default").
@label("s4") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("s5") Risk(C, EL, "long") :- Default(D), LongTermDebts(D, C, V), EL = sum(V).
@label("s6") Risk(C, ES, "short") :- Default(D), ShortTermDebts(D, C, V), ES = sum(V).
@label("s7") Default(C) :- Risk(C, E, T), HasCapital(C, P2), L = sum(E), L > P2.
`

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(prog)
}

// TestFigure3 checks the dependency graph of Example 4.3: roots Shock and
// HasCapital, leaf Default, Default is the only critical node, the graph is
// cyclic.
func TestFigure3(t *testing.T) {
	g := build(t, stressSimpleSrc)

	roots := g.Roots()
	sort.Strings(roots)
	if want := []string{"Debts", "HasCapital", "Shock"}; !equal(roots, want) {
		t.Errorf("roots = %v, want %v", roots, want)
	}
	if g.Leaf() != "Default" {
		t.Errorf("leaf = %q", g.Leaf())
	}
	if got := g.CriticalNodes(); !equal(got, []string{"Default"}) {
		t.Errorf("critical = %v, want [Default]", got)
	}
	if !g.Cyclic() {
		t.Error("Figure 3 graph not cyclic")
	}

	// Edge inventory: alpha contributes Shock->Default, HasCapital->Default;
	// beta: Default->Risk, Debts->Risk; gamma: HasCapital->Default,
	// Risk->Default. Six edges total.
	if len(g.Edges()) != 6 {
		t.Errorf("edges = %d, want 6\n%s", len(g.Edges()), g)
	}
	// Default is derived by two rules (alpha and gamma).
	if got := g.InRuleDegree("Default"); got != 2 {
		t.Errorf("InRuleDegree(Default) = %d, want 2", got)
	}
	if got := g.InRuleDegree("Risk"); got != 1 {
		t.Errorf("InRuleDegree(Risk) = %d, want 1", got)
	}
}

// TestAggregatedEdges checks that the Debts->Risk edge (binding the
// aggregated variable V) is marked aggregated, while Default->Risk is not.
func TestAggregatedEdges(t *testing.T) {
	g := build(t, stressSimpleSrc)
	for _, e := range g.Edges() {
		wantAgg := e.From == "Debts" && e.To == "Risk"
		if e.Aggregated != wantAgg {
			t.Errorf("edge %v aggregated = %v, want %v", e, e.Aggregated, wantAgg)
		}
	}
}

// TestFigure9CompanyControl checks the company control dependency graph:
// roots Own and Company, leaf/critical Control, cycle via s3.
func TestFigure9CompanyControl(t *testing.T) {
	g := build(t, controlSrc)
	roots := g.Roots()
	if want := []string{"Company", "Own"}; !equal(roots, want) {
		t.Errorf("roots = %v, want %v", roots, want)
	}
	if g.Leaf() != "Control" {
		t.Errorf("leaf = %q", g.Leaf())
	}
	if got := g.CriticalNodes(); !equal(got, []string{"Control"}) {
		t.Errorf("critical = %v", got)
	}
	if !g.Cyclic() {
		t.Error("not cyclic")
	}
	if got := g.InRuleDegree("Control"); got != 3 {
		t.Errorf("InRuleDegree(Control) = %d, want 3", got)
	}
	// The Own->Control edge of s3 is aggregated (sum over S).
	var s3Agg bool
	for _, e := range g.Edges() {
		if e.Rule.Label == "s3" && e.From == "Own" {
			s3Agg = e.Aggregated
		}
	}
	if !s3Agg {
		t.Error("s3 Own->Control edge not aggregated")
	}
}

// TestFigure9StressTest checks the two-channel stress test graph: Risk is
// critical (derived by s5 and s6) alongside leaf Default.
func TestFigure9StressTest(t *testing.T) {
	g := build(t, stressSrc)
	if want := []string{"HasCapital", "LongTermDebts", "Shock", "ShortTermDebts"}; !equal(g.Roots(), want) {
		t.Errorf("roots = %v, want %v", g.Roots(), want)
	}
	if got := g.CriticalNodes(); !equal(got, []string{"Default", "Risk"}) {
		t.Errorf("critical = %v, want [Default Risk]", got)
	}
	if !g.Cyclic() {
		t.Error("not cyclic")
	}
}

func TestAcyclicProgram(t *testing.T) {
	g := build(t, `
@output("B").
B(X) :- A(X).
`)
	if g.Cyclic() {
		t.Error("acyclic program reported cyclic")
	}
	if g.Leaf() != "B" {
		t.Errorf("leaf = %q", g.Leaf())
	}
	if len(g.CriticalNodes()) != 1 {
		t.Errorf("critical = %v, want leaf only", g.CriticalNodes())
	}
}

func TestLeafFallbackWithoutOutput(t *testing.T) {
	g := build(t, `
B(X) :- A(X).
C(X) :- B(X).
`)
	if g.Leaf() != "C" {
		t.Errorf("fallback leaf = %q, want C", g.Leaf())
	}
}

func TestDependsOn(t *testing.T) {
	g := build(t, stressSimpleSrc)
	tests := []struct {
		to, from string
		want     bool
	}{
		{"Default", "Shock", true},
		{"Default", "Debts", true},
		{"Risk", "Shock", true},      // Shock -> Default -> Risk
		{"Default", "Default", true}, // via the cycle
		{"Shock", "Default", false},
		{"Debts", "Shock", false},
	}
	for _, tt := range tests {
		if got := g.DependsOn(tt.to, tt.from); got != tt.want {
			t.Errorf("DependsOn(%s, %s) = %v, want %v", tt.to, tt.from, got, tt.want)
		}
	}
}

func TestOutInEdges(t *testing.T) {
	g := build(t, stressSimpleSrc)
	out := g.OutEdges("HasCapital")
	if len(out) != 2 {
		t.Errorf("OutEdges(HasCapital) = %v", out)
	}
	in := g.InEdges("Risk")
	if len(in) != 2 {
		t.Errorf("InEdges(Risk) = %v", in)
	}
	if len(g.OutEdges("Default")) != 1 {
		t.Errorf("OutEdges(Default) = %v", g.OutEdges("Default"))
	}
}

func TestDOT(t *testing.T) {
	g := build(t, stressSimpleSrc)
	dot := g.DOT()
	for _, sub := range []string{"digraph dependency", `"Shock" [shape=box`, `"Default" [shape=ellipse, peripheries=2]`, "style=dashed"} {
		if !strings.Contains(dot, sub) {
			t.Errorf("DOT missing %q:\n%s", sub, dot)
		}
	}
}

func TestStringEdgeList(t *testing.T) {
	g := build(t, stressSimpleSrc)
	s := g.String()
	for _, sub := range []string{"Shock --alpha--> Default", "Debts --beta*--> Risk", "Risk --gamma--> Default"} {
		if !strings.Contains(s, sub) {
			t.Errorf("String missing %q:\n%s", sub, s)
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStratify(t *testing.T) {
	g := build(t, `
@output("Eligible").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("el")    Eligible(X) :- HasCapital(X, P), not Default(X).
`)
	strata, err := g.Stratify()
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if strata["Default"] >= strata["Eligible"] {
		t.Errorf("strata: Default=%d Eligible=%d, want Default strictly lower",
			strata["Default"], strata["Eligible"])
	}
	if strata["Shock"] != 0 || strata["HasCapital"] != 0 {
		t.Errorf("EDB strata nonzero: %v", strata)
	}
}

func TestStratifyPositiveRecursionOK(t *testing.T) {
	g := build(t, stressSimpleSrc)
	strata, err := g.Stratify()
	if err != nil {
		t.Fatalf("positive recursion rejected: %v", err)
	}
	if strata["Default"] != strata["Risk"] && strata["Default"] != 0 {
		// Positive recursion keeps Default and Risk in the same stratum.
		t.Errorf("strata = %v", strata)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	g := build(t, `
@output("P").
P(X) :- Base(X), not Q(X).
Q(X) :- Base(X), not P(X).
`)
	if _, err := g.Stratify(); err == nil {
		t.Error("negative cycle accepted")
	}
}

func TestNegativeEdges(t *testing.T) {
	g := build(t, `
@output("Eligible").
Default(F) :- Shock(F, S).
Eligible(X) :- HasCapital(X, P), not Default(X).
`)
	found := false
	for _, e := range g.Edges() {
		if e.Negative {
			found = true
			if e.From != "Default" || e.To != "Eligible" {
				t.Errorf("negative edge = %v", e)
			}
			if !strings.Contains(e.String(), "¬") {
				t.Errorf("negative edge rendering = %q", e.String())
			}
		}
	}
	if !found {
		t.Error("no negative edge recorded")
	}
}
