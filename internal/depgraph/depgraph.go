// Package depgraph builds and analyses the dependency graph D(Σ) of a
// Vadalog program (paper Section 3): vertices are the predicates of Σ and
// there is a rule-labelled edge from a' to a iff Σ contains a rule with a'
// in the body and a in the head.
//
// On top of D(Σ) the package computes the notions the structural analysis of
// Section 4.1 needs: roots (predicates not depending on intensional ones),
// the leaf (the program's goal), critical nodes (Definition 4.1), cyclicity
// and reachability. The chase engine also uses D(Σ) to stratify rules so
// that negated predicates saturate before any rule reads them.
//
// # Concurrency contract
//
// A Graph is immutable after New returns: every method is a pure read, so
// a single Graph is safe for any number of concurrent readers (the
// explanation service shares one per compiled application). New itself
// and Stratify allocate fresh state per call and are safe to call
// concurrently on the same program.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Edge is one rule-labelled dependency: Rule has From in its body and To as
// its head predicate. Aggregated marks edges where From is the predicate
// carrying the aggregated variable of an aggregation rule; such edges spawn
// the "dashed" reasoning-path variants of Section 4.1.
type Edge struct {
	From string
	To   string
	Rule *ast.Rule
	// Aggregated reports whether the rule aggregates over a variable bound
	// by the From atom.
	Aggregated bool
	// Negative marks an edge arising from a negated body atom; negative
	// edges participate in stratification but not in reasoning-path
	// enumeration (a negated premise contributes no derivation).
	Negative bool
}

// String renders the edge as From --rule--> To.
func (e Edge) String() string {
	marker := ""
	if e.Aggregated {
		marker = "*"
	}
	if e.Negative {
		marker += "¬"
	}
	return fmt.Sprintf("%s --%s%s--> %s", e.From, e.Rule.Label, marker, e.To)
}

// Graph is the dependency graph of one program.
type Graph struct {
	prog *ast.Program
	// nodes in sorted order.
	nodes []string
	// edges in rule declaration order, then body-atom order.
	edges []Edge
	// out and in adjacency by predicate.
	out map[string][]int
	in  map[string][]int
	// intensional predicates.
	idb map[string]bool
}

// New builds the dependency graph of a program.
func New(p *ast.Program) *Graph {
	g := &Graph{
		prog: p,
		out:  map[string][]int{},
		in:   map[string][]int{},
		idb:  map[string]bool{},
	}
	for _, pred := range p.IDBPredicates() {
		g.idb[pred] = true
	}
	g.nodes = p.Predicates()
	for _, r := range p.Rules {
		aggVar := ""
		if r.Aggregation != nil {
			aggVar = r.Aggregation.Over
		}
		seen := map[string]bool{}
		for _, a := range r.Body {
			if seen[a.Predicate] {
				continue
			}
			seen[a.Predicate] = true
			agg := aggVar != "" && bindsVar(a, aggVar)
			idx := len(g.edges)
			g.edges = append(g.edges, Edge{From: a.Predicate, To: r.Head.Predicate, Rule: r, Aggregated: agg})
			g.out[a.Predicate] = append(g.out[a.Predicate], idx)
			g.in[r.Head.Predicate] = append(g.in[r.Head.Predicate], idx)
		}
		for _, a := range r.Negated {
			if seen["¬"+a.Predicate] {
				continue
			}
			seen["¬"+a.Predicate] = true
			idx := len(g.edges)
			g.edges = append(g.edges, Edge{From: a.Predicate, To: r.Head.Predicate, Rule: r, Negative: true})
			g.out[a.Predicate] = append(g.out[a.Predicate], idx)
			g.in[r.Head.Predicate] = append(g.in[r.Head.Predicate], idx)
		}
	}
	return g
}

// Stratify assigns each predicate a stratum such that every positive
// dependency stays within or below its consumer's stratum and every
// negative dependency lies strictly below. It errors when a negated
// predicate participates in a recursion through the negation (the program
// is not stratified).
func (g *Graph) Stratify() (map[string]int, error) {
	strata := map[string]int{}
	for _, n := range g.nodes {
		strata[n] = 0
	}
	limit := len(g.nodes)
	for changed, iter := true, 0; changed; iter++ {
		if iter > limit*limit+1 {
			return nil, fmt.Errorf("depgraph: program is not stratified (recursion through negation)")
		}
		changed = false
		for _, e := range g.edges {
			min := strata[e.From]
			if e.Negative {
				min++
			}
			if strata[e.To] < min {
				if min > limit {
					return nil, fmt.Errorf("depgraph: program is not stratified (recursion through negation involving %s)", e.From)
				}
				strata[e.To] = min
				changed = true
			}
		}
	}
	return strata, nil
}

func bindsVar(a ast.Atom, v string) bool {
	if v == "" {
		return false
	}
	for _, t := range a.Terms {
		if t.IsVariable() && t.Name() == v {
			return true
		}
	}
	return false
}

// Program returns the underlying program.
func (g *Graph) Program() *ast.Program { return g.prog }

// Nodes returns all predicates, sorted.
func (g *Graph) Nodes() []string { return g.nodes }

// Edges returns all rule-labelled edges in declaration order.
func (g *Graph) Edges() []Edge { return g.edges }

// OutEdges returns the edges leaving pred.
func (g *Graph) OutEdges(pred string) []Edge { return g.pick(g.out[pred]) }

// InEdges returns the edges entering pred.
func (g *Graph) InEdges(pred string) []Edge { return g.pick(g.in[pred]) }

func (g *Graph) pick(idx []int) []Edge {
	out := make([]Edge, len(idx))
	for i, j := range idx {
		out[i] = g.edges[j]
	}
	return out
}

// IsIntensional reports whether pred occurs in some rule head.
func (g *Graph) IsIntensional(pred string) bool { return g.idb[pred] }

// Roots returns the extensional predicates: nodes that do not depend on
// other nodes. They appear in rules whose bodies contain them and are never
// derived (paper Section 4.1: "Roots in the dependency graph are nodes that
// do not depend on other nodes").
func (g *Graph) Roots() []string {
	var out []string
	for _, n := range g.nodes {
		if !g.idb[n] {
			out = append(out, n)
		}
	}
	return out
}

// Leaf returns the goal predicate of the program (the intensional of
// interest). It falls back to the single head predicate with no outgoing
// edges to other intensionals when the program has no declared output.
func (g *Graph) Leaf() string {
	if g.prog.Output != "" {
		return g.prog.Output
	}
	for _, n := range g.nodes {
		if g.idb[n] && len(g.out[n]) == 0 {
			return n
		}
	}
	return ""
}

// InRuleDegree returns the number of distinct rules deriving pred.
func (g *Graph) InRuleDegree(pred string) int {
	seen := map[*ast.Rule]bool{}
	for _, i := range g.in[pred] {
		seen[g.edges[i].Rule] = true
	}
	return len(seen)
}

// Critical reports whether pred is a critical node per Definition 4.1: it is
// not extensional and either it is derived by more than one rule or it is
// the leaf node.
func (g *Graph) Critical(pred string) bool {
	if !g.idb[pred] {
		return false
	}
	return g.InRuleDegree(pred) > 1 || pred == g.Leaf()
}

// CriticalNodes returns all critical nodes, sorted.
func (g *Graph) CriticalNodes() []string {
	var out []string
	for _, n := range g.nodes {
		if g.Critical(n) {
			out = append(out, n)
		}
	}
	return out
}

// Cyclic reports whether D(Σ) contains a directed cycle, i.e. whether the
// program is recursive.
func (g *Graph) Cyclic() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		color[n] = grey
		for _, i := range g.out[n] {
			m := g.edges[i].To
			switch color[m] {
			case grey:
				return true
			case white:
				if dfs(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range g.nodes {
		if color[n] == white && dfs(n) {
			return true
		}
	}
	return false
}

// DependsOn reports whether 'to' depends on 'from': there is a directed path
// from 'from' to 'to' of length >= 1.
func (g *Graph) DependsOn(to, from string) bool {
	seen := map[string]bool{}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, i := range g.out[n] {
			m := g.edges[i].To
			if m == to {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// String renders the graph as a sorted edge list.
func (g *Graph) String() string {
	lines := make([]string, len(g.edges))
	for i, e := range g.edges {
		lines[i] = e.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// DOT renders the dependency graph in Graphviz syntax, in the style of the
// paper's Figures 3 and 9: extensional nodes are boxes, intensional nodes
// ellipses, critical nodes are doubled, aggregated edges dashed.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph dependency {\n  rankdir=LR;\n")
	for _, n := range g.nodes {
		shape := "box"
		if g.idb[n] {
			shape = "ellipse"
		}
		peripheries := 1
		if g.Critical(n) {
			peripheries = 2
		}
		fmt.Fprintf(&sb, "  %q [shape=%s, peripheries=%d];\n", n, shape, peripheries)
	}
	for _, e := range g.edges {
		style := "solid"
		if e.Aggregated {
			style = "dashed"
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=%q, style=%s];\n", e.From, e.To, e.Rule.Label, style)
	}
	sb.WriteString("}\n")
	return sb.String()
}
