package ast

import (
	"strings"
	"testing"

	"repro/internal/term"
)

func atomShock() Atom { return NewAtom("Shock", term.Var("F"), term.Var("S")) }

func TestAtomBasics(t *testing.T) {
	a := atomShock()
	if a.Arity() != 2 {
		t.Errorf("Arity = %d, want 2", a.Arity())
	}
	if a.IsGround() {
		t.Error("atom with variables reported ground")
	}
	g := NewAtom("Shock", term.Str("A"), term.Float(6))
	if !g.IsGround() {
		t.Error("ground atom reported non-ground")
	}
	if got := a.Variables(); len(got) != 2 || got[0] != "F" || got[1] != "S" {
		t.Errorf("Variables = %v", got)
	}
	dup := NewAtom("Debts", term.Var("D"), term.Var("D"), term.Var("V"))
	if got := dup.Variables(); len(got) != 2 {
		t.Errorf("duplicate variables not deduped: %v", got)
	}
}

func TestAtomApply(t *testing.T) {
	a := atomShock()
	s := term.Substitution{"F": term.Str("A"), "S": term.Float(6)}
	got := a.Apply(s)
	want := NewAtom("Shock", term.Str("A"), term.Float(6))
	if !got.Equal(want) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
	// Partial application leaves unbound variables.
	p := a.Apply(term.Substitution{"F": term.Str("A")})
	if p.IsGround() {
		t.Error("partial application produced ground atom")
	}
}

func TestAtomEqualAndKey(t *testing.T) {
	a := NewAtom("Own", term.Str("X"), term.Str("Y"), term.Float(0.5))
	b := NewAtom("Own", term.Str("X"), term.Str("Y"), term.Float(0.5))
	c := NewAtom("Own", term.Str("X"), term.Str("Y"), term.Float(0.6))
	d := NewAtom("Owns", term.Str("X"), term.Str("Y"), term.Float(0.5))
	if !a.Equal(b) {
		t.Error("identical atoms not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("distinct atoms Equal")
	}
	if a.Key() != b.Key() {
		t.Error("identical atoms have different keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Error("distinct atoms share a key")
	}
	short := NewAtom("Own", term.Str("X"))
	if a.Equal(short) {
		t.Error("different arity atoms Equal")
	}
}

func TestAtomStringAndDisplay(t *testing.T) {
	a := NewAtom("Own", term.Var("X"), term.Str("ACME"), term.Float(0.5))
	if got := a.String(); got != `Own(X, "ACME", 0.5)` {
		t.Errorf("String = %q", got)
	}
	if got := a.Display(); got != "Own(X, ACME, 0.5)" {
		t.Errorf("Display = %q", got)
	}
}

func TestConditionHolds(t *testing.T) {
	s := term.Substitution{"S": term.Float(6), "P": term.Float(5), "N": term.Str("A")}
	tests := []struct {
		name    string
		c       Condition
		want    bool
		wantErr bool
	}{
		{"gt true", Condition{term.Var("S"), OpGt, term.Var("P")}, true, false},
		{"gt false", Condition{term.Var("P"), OpGt, term.Var("S")}, false, false},
		{"lt", Condition{term.Var("P"), OpLt, term.Var("S")}, true, false},
		{"le equal", Condition{term.Var("S"), OpLe, term.Float(6)}, true, false},
		{"ge", Condition{term.Var("S"), OpGe, term.Float(7)}, false, false},
		{"eq numeric", Condition{term.Var("S"), OpEq, term.Int(6)}, true, false},
		{"ne string", Condition{term.Var("N"), OpNe, term.Str("B")}, true, false},
		{"eq string", Condition{term.Var("N"), OpEq, term.Str("A")}, true, false},
		{"unbound", Condition{term.Var("Z"), OpGt, term.Float(1)}, false, true},
		{"incomparable", Condition{term.Var("N"), OpGt, term.Float(1)}, false, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.c.Holds(s)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Holds err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && got != tt.want {
				t.Errorf("Holds = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCompareOpWordsAndValid(t *testing.T) {
	for _, op := range []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if !op.Valid() {
			t.Errorf("%q not Valid", op)
		}
		if op.Words() == string(op) {
			t.Errorf("%q has no wording", op)
		}
	}
	if CompareOp("~~").Valid() {
		t.Error("bogus operator Valid")
	}
}

func TestAssignmentEval(t *testing.T) {
	s := term.Substitution{"A": term.Float(6), "B": term.Float(3)}
	tests := []struct {
		op      ArithOp
		want    float64
		wantErr bool
	}{
		{ArithAdd, 9, false},
		{ArithSub, 3, false},
		{ArithMul, 18, false},
		{ArithDiv, 2, false},
	}
	for _, tt := range tests {
		as := Assignment{Target: "R", Expr: BinaryOf(term.Var("A"), tt.op, term.Var("B"))}
		got, err := as.Eval(s)
		if (err != nil) != tt.wantErr {
			t.Fatalf("%s: err = %v", tt.op, err)
		}
		if f, _ := got.AsFloat(); f != tt.want {
			t.Errorf("%s = %v, want %v", tt.op, f, tt.want)
		}
	}
	div0 := Assignment{Target: "R", Expr: BinaryOf(term.Var("A"), ArithDiv, term.Float(0))}
	if _, err := div0.Eval(s); err == nil {
		t.Error("division by zero did not error")
	}
	bad := Assignment{Target: "R", Expr: BinaryOf(term.Str("x"), ArithAdd, term.Var("B"))}
	if _, err := bad.Eval(s); err == nil {
		t.Error("non-numeric operand did not error")
	}
}

func TestAggFunc(t *testing.T) {
	for _, f := range []AggFunc{AggSum, AggProd, AggMin, AggMax, AggCount} {
		if !f.Valid() {
			t.Errorf("%q not Valid", f)
		}
		if f.Words() == "" {
			t.Errorf("%q has no wording", f)
		}
	}
	if AggFunc("median").Valid() {
		t.Error("unsupported aggregation Valid")
	}
	if AggProd.Words() != "product" {
		t.Errorf("prod wording = %q", AggProd.Words())
	}
}

// ruleBeta is rule β of Example 4.3:
// Risk(C,E) :- Default(D), Debts(D,C,V), E = sum(V).
func ruleBeta() *Rule {
	return &Rule{
		Label: "beta",
		Head:  NewAtom("Risk", term.Var("C"), term.Var("E")),
		Body: []Atom{
			NewAtom("Default", term.Var("D")),
			NewAtom("Debts", term.Var("D"), term.Var("C"), term.Var("V")),
		},
		Aggregation: &Aggregation{Target: "E", Func: AggSum, Over: "V"},
	}
}

func TestRuleValidate(t *testing.T) {
	if err := ruleBeta().Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}

	tests := []struct {
		name    string
		mutate  func(*Rule)
		wantSub string
	}{
		{"empty head", func(r *Rule) { r.Head = Atom{} }, "empty head"},
		{"empty body", func(r *Rule) { r.Body = nil }, "empty body"},
		{"bad agg func", func(r *Rule) { r.Aggregation.Func = "median" }, "aggregation function"},
		{"agg over unbound", func(r *Rule) { r.Aggregation.Over = "ZZ" }, "unbound"},
		{"agg target rebinds", func(r *Rule) { r.Aggregation.Target = "V" }, "already bound"},
		{"condition unbound", func(r *Rule) {
			r.Conditions = append(r.Conditions, Condition{term.Var("Q"), OpGt, term.Float(1)})
		}, "unbound"},
		{"bad operator", func(r *Rule) {
			r.Conditions = append(r.Conditions, Condition{term.Var("V"), "~", term.Float(1)})
		}, "operator"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := ruleBeta()
			tt.mutate(r)
			err := r.Validate()
			if err == nil {
				t.Fatal("invalid rule accepted")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestRuleValidateAssignments(t *testing.T) {
	r := &Rule{
		Label: "mul",
		Head:  NewAtom("MOwn", term.Var("X"), term.Var("Y"), term.Var("S")),
		Body: []Atom{
			NewAtom("MOwn", term.Var("X"), term.Var("Z"), term.Var("S1")),
			NewAtom("Own", term.Var("Z"), term.Var("Y"), term.Var("S2")),
		},
		Assignments: []Assignment{{Target: "S", Expr: BinaryOf(term.Var("S1"), ArithMul, term.Var("S2"))}},
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid rule rejected: %v", err)
	}
	r.Assignments[0].Target = "S1"
	if err := r.Validate(); err == nil {
		t.Error("rebinding assignment accepted")
	}
}

func TestRuleVariablesOrder(t *testing.T) {
	r := ruleBeta()
	got := r.Variables()
	want := []string{"D", "C", "V", "E"}
	if len(got) != len(want) {
		t.Fatalf("Variables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Variables[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRuleBodyPredicates(t *testing.T) {
	r := ruleBeta()
	got := r.BodyPredicates()
	if len(got) != 2 || got[0] != "Default" || got[1] != "Debts" {
		t.Errorf("BodyPredicates = %v", got)
	}
}

func TestRuleString(t *testing.T) {
	r := ruleBeta()
	s := r.String()
	for _, sub := range []string{"Risk(C, E)", ":-", "Default(D)", "E = sum(V)", `@label("beta")`} {
		if !strings.Contains(s, sub) {
			t.Errorf("rule string %q missing %q", s, sub)
		}
	}
}

func stressProgram() *Program {
	alpha := &Rule{
		Label: "alpha",
		Head:  NewAtom("Default", term.Var("F")),
		Body: []Atom{
			NewAtom("Shock", term.Var("F"), term.Var("S")),
			NewAtom("HasCapital", term.Var("F"), term.Var("P1")),
		},
		Conditions: []Condition{{term.Var("S"), OpGt, term.Var("P1")}},
	}
	gamma := &Rule{
		Label: "gamma",
		Head:  NewAtom("Default", term.Var("C")),
		Body: []Atom{
			NewAtom("HasCapital", term.Var("C"), term.Var("P2")),
			NewAtom("Risk", term.Var("C"), term.Var("E")),
		},
		Conditions: []Condition{{term.Var("P2"), OpLt, term.Var("E")}},
	}
	return &Program{
		Name:   "stress-simple",
		Rules:  []*Rule{alpha, ruleBeta(), gamma},
		Output: "Default",
		Facts: []Atom{
			NewAtom("Shock", term.Str("A"), term.Float(6)),
			NewAtom("HasCapital", term.Str("A"), term.Float(5)),
		},
	}
}

func TestProgramPredicateClassification(t *testing.T) {
	p := stressProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	idb := p.IDBPredicates()
	if len(idb) != 2 || idb[0] != "Default" || idb[1] != "Risk" {
		t.Errorf("IDB = %v", idb)
	}
	edb := p.EDBPredicates()
	if len(edb) != 3 || edb[0] != "Debts" || edb[1] != "HasCapital" || edb[2] != "Shock" {
		t.Errorf("EDB = %v", edb)
	}
	all := p.Predicates()
	if len(all) != 5 {
		t.Errorf("Predicates = %v", all)
	}
	if !p.IsIntensional("Default") || p.IsIntensional("Shock") {
		t.Error("IsIntensional misclassifies")
	}
}

func TestProgramRuleByLabel(t *testing.T) {
	p := stressProgram()
	if r := p.RuleByLabel("beta"); r == nil || r.Label != "beta" {
		t.Errorf("RuleByLabel(beta) = %v", r)
	}
	if r := p.RuleByLabel("nope"); r != nil {
		t.Errorf("RuleByLabel(nope) = %v, want nil", r)
	}
}

func TestProgramValidateErrors(t *testing.T) {
	p := stressProgram()
	p.Output = "Shock"
	if err := p.Validate(); err == nil {
		t.Error("extensional output accepted")
	}
	p = stressProgram()
	p.Rules[1].Label = "alpha"
	if err := p.Validate(); err == nil {
		t.Error("duplicate labels accepted")
	}
	p = stressProgram()
	p.Facts = append(p.Facts, NewAtom("Shock", term.Var("X"), term.Float(1)))
	if err := p.Validate(); err == nil {
		t.Error("non-ground fact accepted")
	}
}

func TestProgramString(t *testing.T) {
	s := stressProgram().String()
	for _, sub := range []string{`@name("stress-simple")`, `@output("Default")`, "Default(F) :-", `Shock("A", 6).`} {
		if !strings.Contains(s, sub) {
			t.Errorf("program text missing %q:\n%s", sub, s)
		}
	}
}

func TestArithOpWords(t *testing.T) {
	for op, want := range map[ArithOp]string{
		ArithAdd: "plus", ArithSub: "minus", ArithMul: "multiplied by",
		ArithDiv: "divided by", ArithOp("%"): "%",
	} {
		if got := op.Words(); got != want {
			t.Errorf("Words(%q) = %q, want %q", op, got, want)
		}
	}
	if CompareOp("~").Words() != "~" {
		t.Error("unknown compare op wording")
	}
	if AggFunc("weird").Words() != "weird" {
		t.Error("unknown agg func wording")
	}
}

func TestExprEvalErrors(t *testing.T) {
	s := term.Substitution{"A": term.Float(2)}
	// Unbound leaf.
	if _, err := (TermExpr{term.Var("Z")}).Eval(s); err == nil {
		t.Error("unbound leaf evaluated")
	}
	// Error in the left branch propagates.
	bad := BinaryExpr{Op: ArithAdd, L: TermExpr{term.Var("Z")}, R: TermExpr{term.Var("A")}}
	if _, err := bad.Eval(s); err == nil {
		t.Error("left error not propagated")
	}
	// Error in the right branch propagates.
	bad = BinaryExpr{Op: ArithAdd, L: TermExpr{term.Var("A")}, R: TermExpr{term.Var("Z")}}
	if _, err := bad.Eval(s); err == nil {
		t.Error("right error not propagated")
	}
	// Unknown operator.
	odd := BinaryExpr{Op: "%", L: TermExpr{term.Var("A")}, R: TermExpr{term.Var("A")}}
	if _, err := odd.Eval(s); err == nil {
		t.Error("unknown operator evaluated")
	}
}

func TestExprVariablesAndString(t *testing.T) {
	e := BinaryExpr{
		Op: ArithMul,
		L:  BinaryExpr{Op: ArithAdd, L: TermExpr{term.Var("A")}, R: TermExpr{term.Var("B")}},
		R:  TermExpr{term.Var("A")},
	}
	vars := e.Variables()
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Errorf("Variables = %v", vars)
	}
	if got := e.String(); got != "(A + B) * A" {
		t.Errorf("String = %q", got)
	}
	leaf := TermExpr{term.Float(2)}
	if leaf.Variables() != nil {
		t.Errorf("constant leaf variables = %v", leaf.Variables())
	}
}

func TestRuleHasAggregation(t *testing.T) {
	if !ruleBeta().HasAggregation() {
		t.Error("beta has no aggregation?")
	}
	plain := &Rule{Head: NewAtom("P", term.Var("X")), Body: []Atom{NewAtom("Q", term.Var("X"))}}
	if plain.HasAggregation() {
		t.Error("plain rule aggregates?")
	}
}

func TestConstraintValidateAndString(t *testing.T) {
	c := &Constraint{
		Label:      "nc",
		Body:       []Atom{NewAtom("Control", term.Var("X"), term.Var("Y"))},
		Negated:    []Atom{NewAtom("Waived", term.Var("Y"))},
		Conditions: []Condition{{term.Var("X"), OpNe, term.Var("Y")}},
	}
	if err := c.Validate(); err != nil {
		t.Errorf("valid constraint rejected: %v", err)
	}
	s := c.String()
	for _, sub := range []string{":- Control(X, Y)", "not Waived(Y)", "X != Y"} {
		if !strings.Contains(s, sub) {
			t.Errorf("constraint string %q missing %q", s, sub)
		}
	}
	// Violations.
	if err := (&Constraint{}).Validate(); err == nil {
		t.Error("empty constraint accepted")
	}
	unsafe := &Constraint{Body: c.Body, Negated: []Atom{NewAtom("W", term.Var("Z"))}}
	if err := unsafe.Validate(); err == nil {
		t.Error("unsafe negation accepted")
	}
	badOp := &Constraint{Body: c.Body, Conditions: []Condition{{term.Var("X"), "~", term.Var("Y")}}}
	if err := badOp.Validate(); err == nil {
		t.Error("bad operator accepted")
	}
	unboundCond := &Constraint{Body: c.Body, Conditions: []Condition{{term.Var("Q"), OpEq, term.Var("X")}}}
	if err := unboundCond.Validate(); err == nil {
		t.Error("unbound condition accepted")
	}
}

func TestRuleStringWithNegation(t *testing.T) {
	r := &Rule{
		Label:   "el",
		Head:    NewAtom("Eligible", term.Var("X")),
		Body:    []Atom{NewAtom("Company", term.Var("X"))},
		Negated: []Atom{NewAtom("Default", term.Var("X"))},
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	if !strings.Contains(r.String(), "not Default(X)") {
		t.Errorf("rule string = %q", r.String())
	}
	// Unsafe negated variable rejected.
	r.Negated = append(r.Negated, NewAtom("Other", term.Var("Q")))
	if err := r.Validate(); err == nil {
		t.Error("unsafe negation accepted")
	}
}

func TestProgramStringWithConstraints(t *testing.T) {
	p := stressProgram()
	p.Constraints = append(p.Constraints, &Constraint{
		Body: []Atom{NewAtom("Default", term.Var("X")), NewAtom("Protected", term.Var("X"))},
	})
	s := p.String()
	if !strings.Contains(s, ":- Default(X), Protected(X).") {
		t.Errorf("program text missing constraint:\n%s", s)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("program with constraint rejected: %v", err)
	}
	// Predicates includes constraint-only predicates.
	found := false
	for _, pr := range p.Predicates() {
		if pr == "Protected" {
			found = true
		}
	}
	if !found {
		t.Errorf("Predicates = %v, missing Protected", p.Predicates())
	}
}

func TestEDBPredicatesIncludeNegated(t *testing.T) {
	p := stressProgram()
	p.Rules[0].Negated = []Atom{NewAtom("Frozen", term.Var("F"))}
	found := false
	for _, pr := range p.EDBPredicates() {
		if pr == "Frozen" {
			found = true
		}
	}
	if !found {
		t.Errorf("EDB = %v, missing Frozen", p.EDBPredicates())
	}
}

func TestAssignmentMissingExpr(t *testing.T) {
	r := ruleBeta()
	r.Aggregation = nil
	r.Head = NewAtom("Risk", term.Var("C"), term.Var("E"))
	r.Assignments = []Assignment{{Target: "E"}}
	if err := r.Validate(); err == nil {
		t.Error("assignment without expression accepted")
	}
}
