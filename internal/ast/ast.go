// Package ast defines the abstract syntax of the Vadalog subset used by the
// reasoning engine: atoms, comparison conditions, arithmetic assignments,
// monotonic aggregations, tuple-generating dependencies (rules) and programs.
//
// The concrete syntax (package parser) writes rules Vadalog-style as
//
//	head :- body.
//
// which corresponds to the paper's logical notation body → head. A rule body
// is a conjunction of relational atoms, comparison conditions over bound
// variables, and at most one aggregation or arithmetic assignment that binds
// a fresh variable used in the head.
package ast

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/term"
)

// Atom is a relational atom R(t1,...,tn) over a predicate R of arity n.
type Atom struct {
	// Predicate is the relation symbol.
	Predicate string
	// Terms are the argument terms, constants or variables.
	Terms []term.Term
}

// NewAtom builds an atom from a predicate name and terms.
func NewAtom(pred string, terms ...term.Term) Atom {
	return Atom{Predicate: pred, Terms: terms}
}

// Arity returns the number of argument positions.
func (a Atom) Arity() int { return len(a.Terms) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Terms {
		if t.IsVariable() {
			return false
		}
	}
	return true
}

// Variables returns the set of variable names occurring in the atom, in
// first-occurrence order.
func (a Atom) Variables() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range a.Terms {
		if t.IsVariable() && !seen[t.Name()] {
			seen[t.Name()] = true
			out = append(out, t.Name())
		}
	}
	return out
}

// Apply returns a copy of the atom with the substitution applied to every
// term.
func (a Atom) Apply(s term.Substitution) Atom {
	out := Atom{Predicate: a.Predicate, Terms: make([]term.Term, len(a.Terms))}
	for i, t := range a.Terms {
		out.Terms[i] = s.Apply(t)
	}
	return out
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Predicate != b.Predicate || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if !a.Terms[i].Equal(b.Terms[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical map key for a ground atom (a fact).
func (a Atom) Key() string {
	var sb strings.Builder
	sb.WriteString(a.Predicate)
	sb.WriteByte('(')
	for i, t := range a.Terms {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.Key())
	}
	sb.WriteByte(')')
	return sb.String()
}

// String renders the atom in concrete syntax, quoting string constants.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVariable() {
			parts[i] = t.Name()
		} else {
			parts[i] = t.Quote()
		}
	}
	return a.Predicate + "(" + strings.Join(parts, ", ") + ")"
}

// Display renders the atom with unquoted constants, for explanations and
// chase-graph dumps: Default(B), Risk(C, 11).
func (a Atom) Display() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		if t.IsVariable() {
			parts[i] = t.Name()
		} else {
			parts[i] = t.Display()
		}
	}
	return a.Predicate + "(" + strings.Join(parts, ", ") + ")"
}

// CompareOp is a comparison operator usable in rule conditions.
type CompareOp string

// Comparison operators of the Vadalog subset.
const (
	OpEq CompareOp = "=="
	OpNe CompareOp = "!="
	OpLt CompareOp = "<"
	OpLe CompareOp = "<="
	OpGt CompareOp = ">"
	OpGe CompareOp = ">="
)

// Words returns the natural-language rendering of the operator used by the
// verbalizer ("is higher than", ...).
func (op CompareOp) Words() string {
	switch op {
	case OpEq:
		return "is equal to"
	case OpNe:
		return "is different from"
	case OpLt:
		return "is lower than"
	case OpLe:
		return "is at most"
	case OpGt:
		return "is higher than"
	case OpGe:
		return "is at least"
	default:
		return string(op)
	}
}

// Valid reports whether op is one of the supported comparison operators.
func (op CompareOp) Valid() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// Condition is a comparison between two terms, e.g. s > p1 or ts > 0.5.
type Condition struct {
	Left  term.Term
	Op    CompareOp
	Right term.Term
}

// Variables returns the variable names occurring in the condition.
func (c Condition) Variables() []string {
	var out []string
	if c.Left.IsVariable() {
		out = append(out, c.Left.Name())
	}
	if c.Right.IsVariable() && (!c.Left.IsVariable() || c.Right.Name() != c.Left.Name()) {
		out = append(out, c.Right.Name())
	}
	return out
}

// Holds evaluates the condition under a substitution. It returns an error
// when a side is still unbound or the two sides are incomparable.
func (c Condition) Holds(s term.Substitution) (bool, error) {
	l := s.Apply(c.Left)
	r := s.Apply(c.Right)
	if l.IsVariable() {
		return false, fmt.Errorf("condition %v: unbound variable %s", c, l.Name())
	}
	if r.IsVariable() {
		return false, fmt.Errorf("condition %v: unbound variable %s", c, r.Name())
	}
	switch c.Op {
	case OpEq:
		return l.Equal(r), nil
	case OpNe:
		return !l.Equal(r), nil
	}
	cmp, ok := l.Compare(r)
	if !ok {
		return false, fmt.Errorf("condition %v: incomparable terms %v and %v", c, l, r)
	}
	switch c.Op {
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("condition %v: unknown operator", c)
}

// String renders the condition in concrete syntax.
func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", renderOperand(c.Left), c.Op, renderOperand(c.Right))
}

func renderOperand(t term.Term) string {
	if t.IsVariable() {
		return t.Name()
	}
	return t.Quote()
}

// ArithOp is a binary arithmetic operator in an assignment expression.
type ArithOp string

// Arithmetic operators of the Vadalog subset.
const (
	ArithAdd ArithOp = "+"
	ArithSub ArithOp = "-"
	ArithMul ArithOp = "*"
	ArithDiv ArithOp = "/"
)

// Words returns the natural-language rendering of the arithmetic operator.
func (op ArithOp) Words() string {
	switch op {
	case ArithAdd:
		return "plus"
	case ArithSub:
		return "minus"
	case ArithMul:
		return "multiplied by"
	case ArithDiv:
		return "divided by"
	default:
		return string(op)
	}
}

// Expr is an arithmetic expression over terms: either a single term
// (TermExpr) or a binary operation (BinaryExpr). Expressions appear on the
// right-hand side of assignments, e.g. s = (s1 + s2) * w.
type Expr interface {
	// Eval computes the expression under a substitution.
	Eval(s term.Substitution) (term.Term, error)
	// Variables returns the variable names of the expression, in
	// first-occurrence order.
	Variables() []string
	// String renders the expression in concrete syntax.
	String() string
}

// TermExpr is a constant or variable leaf.
type TermExpr struct {
	T term.Term
}

// Eval implements Expr.
func (e TermExpr) Eval(s term.Substitution) (term.Term, error) {
	t := s.Apply(e.T)
	if t.IsVariable() {
		return term.Term{}, fmt.Errorf("expression: unbound variable %s", t.Name())
	}
	return t, nil
}

// Variables implements Expr.
func (e TermExpr) Variables() []string {
	if e.T.IsVariable() {
		return []string{e.T.Name()}
	}
	return nil
}

// String implements Expr.
func (e TermExpr) String() string { return renderOperand(e.T) }

// BinaryExpr is an arithmetic operation over two sub-expressions.
type BinaryExpr struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (e BinaryExpr) Eval(s term.Substitution) (term.Term, error) {
	l, err := e.L.Eval(s)
	if err != nil {
		return term.Term{}, err
	}
	r, err := e.R.Eval(s)
	if err != nil {
		return term.Term{}, err
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return term.Term{}, fmt.Errorf("expression %s: non-numeric operands %v, %v", e, l, r)
	}
	var v float64
	switch e.Op {
	case ArithAdd:
		v = lf + rf
	case ArithSub:
		v = lf - rf
	case ArithMul:
		v = lf * rf
	case ArithDiv:
		if rf == 0 {
			return term.Term{}, fmt.Errorf("expression %s: division by zero", e)
		}
		v = lf / rf
	default:
		return term.Term{}, fmt.Errorf("expression %s: unknown operator", e)
	}
	return term.Float(v), nil
}

// Variables implements Expr.
func (e BinaryExpr) Variables() []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range append(e.L.Variables(), e.R.Variables()...) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// String implements Expr, parenthesizing nested operations.
func (e BinaryExpr) String() string {
	return fmt.Sprintf("%s %s %s", parenthesize(e.L), e.Op, parenthesize(e.R))
}

func parenthesize(e Expr) string {
	if _, ok := e.(BinaryExpr); ok {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// BinaryOf builds the expression l op r over two terms; a convenience for
// the common single-operator case.
func BinaryOf(l term.Term, op ArithOp, r term.Term) Expr {
	return BinaryExpr{Op: op, L: TermExpr{l}, R: TermExpr{r}}
}

// Assignment binds a fresh variable to an arithmetic expression over bound
// terms, e.g. s = s1 * s2 or l = (el + es) / 2.
type Assignment struct {
	Target string // fresh variable bound by the assignment
	Expr   Expr
}

// Eval computes the assignment under a substitution, returning the resulting
// constant term.
func (a Assignment) Eval(s term.Substitution) (term.Term, error) {
	v, err := a.Expr.Eval(s)
	if err != nil {
		return term.Term{}, fmt.Errorf("assignment %s: %w", a, err)
	}
	return v, nil
}

// Variables returns the variables read by the assignment (not the target).
func (a Assignment) Variables() []string { return a.Expr.Variables() }

// String renders the assignment in concrete syntax.
func (a Assignment) String() string {
	return fmt.Sprintf("%s = %s", a.Target, a.Expr)
}

// AggFunc is a monotonic aggregation function (Section 3, Vadalog
// extensions).
type AggFunc string

// Aggregation functions supported by the engine.
const (
	AggSum   AggFunc = "sum"
	AggProd  AggFunc = "prod"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
	AggCount AggFunc = "count"
)

// Valid reports whether f is a supported aggregation function.
func (f AggFunc) Valid() bool {
	switch f {
	case AggSum, AggProd, AggMin, AggMax, AggCount:
		return true
	}
	return false
}

// Words returns the natural-language noun for the aggregation ("sum",
// "product", ...), used by the verbalizer: "<result> is given by the sum of
// <contributors>".
func (f AggFunc) Words() string {
	switch f {
	case AggSum:
		return "sum"
	case AggProd:
		return "product"
	case AggMin:
		return "minimum"
	case AggMax:
		return "maximum"
	case AggCount:
		return "count"
	default:
		return string(f)
	}
}

// Aggregation binds a fresh variable to a monotonic aggregate of a body
// variable, grouped by the remaining head variables: e = sum(v).
type Aggregation struct {
	Target string  // fresh variable bound to the aggregate value
	Func   AggFunc // aggregation function
	Over   string  // body variable being aggregated
}

// String renders the aggregation in concrete syntax.
func (g Aggregation) String() string {
	return fmt.Sprintf("%s = %s(%s)", g.Target, g.Func, g.Over)
}

// Rule is a tuple-generating dependency body → head with optional
// conditions, assignments, negated atoms (stratified negation) and at most
// one aggregation. Label is the rule's symbolic name (α, σ1, ...) used in
// reasoning-path notation.
type Rule struct {
	Label       string
	Head        Atom
	Body        []Atom
	Negated     []Atom
	Conditions  []Condition
	Assignments []Assignment
	Aggregation *Aggregation
}

// HasAggregation reports whether the rule contains an aggregation operator.
// Rules with aggregations spawn "dashed" reasoning-path variants (Section
// 4.1, Analysis of Aggregations).
func (r *Rule) HasAggregation() bool { return r.Aggregation != nil }

// BodyPredicates returns the distinct predicates appearing in the body, in
// first-occurrence order.
func (r *Rule) BodyPredicates() []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range r.Body {
		if !seen[a.Predicate] {
			seen[a.Predicate] = true
			out = append(out, a.Predicate)
		}
	}
	return out
}

// Variables returns all variable names of the rule in first-occurrence
// order: body atoms, then conditions, assignments, aggregation, head.
func (r *Rule) Variables() []string {
	var out []string
	seen := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, a := range r.Body {
		add(a.Variables()...)
	}
	for _, c := range r.Conditions {
		add(c.Variables()...)
	}
	for _, as := range r.Assignments {
		add(as.Variables()...)
		add(as.Target)
	}
	if r.Aggregation != nil {
		add(r.Aggregation.Over, r.Aggregation.Target)
	}
	add(r.Head.Variables()...)
	return out
}

// Validate checks rule well-formedness: non-empty head and body, head
// variables bound in the body or by an assignment/aggregation target,
// condition variables bound, valid operators. It returns a descriptive error
// for the first violation found.
func (r *Rule) Validate() error {
	if r.Head.Predicate == "" {
		return fmt.Errorf("rule %s: empty head", r.Label)
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("rule %s: empty body", r.Label)
	}
	bound := map[string]bool{}
	for _, a := range r.Body {
		for _, v := range a.Variables() {
			bound[v] = true
		}
	}
	for _, c := range r.Conditions {
		if !c.Op.Valid() {
			return fmt.Errorf("rule %s: invalid comparison operator %q", r.Label, c.Op)
		}
	}
	for _, as := range r.Assignments {
		if as.Target == "" {
			return fmt.Errorf("rule %s: assignment with empty target", r.Label)
		}
		if as.Expr == nil {
			return fmt.Errorf("rule %s: assignment %s has no expression", r.Label, as.Target)
		}
		for _, v := range as.Variables() {
			if !bound[v] {
				return fmt.Errorf("rule %s: assignment operand %s unbound", r.Label, v)
			}
		}
		if bound[as.Target] {
			return fmt.Errorf("rule %s: assignment target %s already bound", r.Label, as.Target)
		}
		bound[as.Target] = true
	}
	if g := r.Aggregation; g != nil {
		if !g.Func.Valid() {
			return fmt.Errorf("rule %s: invalid aggregation function %q", r.Label, g.Func)
		}
		if !bound[g.Over] {
			return fmt.Errorf("rule %s: aggregation over unbound variable %s", r.Label, g.Over)
		}
		if bound[g.Target] {
			return fmt.Errorf("rule %s: aggregation target %s already bound", r.Label, g.Target)
		}
		bound[g.Target] = true
	}
	for _, c := range r.Conditions {
		for _, v := range c.Variables() {
			if !bound[v] {
				return fmt.Errorf("rule %s: condition variable %s unbound", r.Label, v)
			}
		}
	}
	// Safety: every variable of a negated atom must be bound positively,
	// so negation is a per-binding check rather than a universal query.
	for _, a := range r.Negated {
		for _, v := range a.Variables() {
			if !bound[v] {
				return fmt.Errorf("rule %s: negated atom %v uses unbound variable %s", r.Label, a, v)
			}
		}
	}
	for _, v := range r.Head.Variables() {
		if !bound[v] {
			// An unbound head variable is existentially quantified; the
			// chase invents a labelled null for it. This is legal in
			// Vadalog, so not an error.
			continue
		}
	}
	return nil
}

// String renders the rule in concrete syntax: head :- body parts.
func (r *Rule) String() string {
	var parts []string
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, a := range r.Negated {
		parts = append(parts, "not "+a.String())
	}
	for _, as := range r.Assignments {
		parts = append(parts, as.String())
	}
	if r.Aggregation != nil {
		parts = append(parts, r.Aggregation.String())
	}
	for _, c := range r.Conditions {
		parts = append(parts, c.String())
	}
	s := r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
	if r.Label != "" {
		s = "@label(\"" + r.Label + "\") " + s
	}
	return s
}

// Constraint is a negative constraint body → ⊥ (Section 3 of the paper):
// the reasoning task is inconsistent when some homomorphism satisfies the
// body. Written ":- body." in concrete syntax.
type Constraint struct {
	Label      string
	Body       []Atom
	Negated    []Atom
	Conditions []Condition
}

// Validate checks constraint well-formedness.
func (c *Constraint) Validate() error {
	if len(c.Body) == 0 {
		return fmt.Errorf("constraint %s: empty body", c.Label)
	}
	bound := map[string]bool{}
	for _, a := range c.Body {
		for _, v := range a.Variables() {
			bound[v] = true
		}
	}
	for _, a := range c.Negated {
		for _, v := range a.Variables() {
			if !bound[v] {
				return fmt.Errorf("constraint %s: negated atom %v uses unbound variable %s", c.Label, a, v)
			}
		}
	}
	for _, cond := range c.Conditions {
		if !cond.Op.Valid() {
			return fmt.Errorf("constraint %s: invalid comparison operator %q", c.Label, cond.Op)
		}
		for _, v := range cond.Variables() {
			if !bound[v] {
				return fmt.Errorf("constraint %s: condition variable %s unbound", c.Label, v)
			}
		}
	}
	return nil
}

// String renders the constraint in concrete syntax.
func (c *Constraint) String() string {
	var parts []string
	for _, a := range c.Body {
		parts = append(parts, a.String())
	}
	for _, a := range c.Negated {
		parts = append(parts, "not "+a.String())
	}
	for _, cond := range c.Conditions {
		parts = append(parts, cond.String())
	}
	return ":- " + strings.Join(parts, ", ") + "."
}

// Program is a set of rules plus extensional facts and the designated output
// (goal) predicate of the reasoning task.
type Program struct {
	// Name identifies the KG application ("company-control", ...).
	Name string
	// Rules in declaration order.
	Rules []*Rule
	// Constraints are the negative constraints checked after reasoning.
	Constraints []*Constraint
	// Facts is the extensional database embedded in the program text.
	Facts []Atom
	// Output is the goal predicate Ans of the reasoning task.
	Output string
}

// RuleByLabel returns the rule with the given label, or nil.
func (p *Program) RuleByLabel(label string) *Rule {
	for _, r := range p.Rules {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// IDBPredicates returns the intensional predicates (those occurring in some
// head), sorted.
func (p *Program) IDBPredicates() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		seen[r.Head.Predicate] = true
	}
	return sortedKeys(seen)
}

// EDBPredicates returns the extensional predicates (those occurring only in
// bodies or facts), sorted.
func (p *Program) EDBPredicates() []string {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Predicate] = true
	}
	seen := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Predicate] {
				seen[a.Predicate] = true
			}
		}
		for _, a := range r.Negated {
			if !idb[a.Predicate] {
				seen[a.Predicate] = true
			}
		}
	}
	for _, f := range p.Facts {
		if !idb[f.Predicate] {
			seen[f.Predicate] = true
		}
	}
	return sortedKeys(seen)
}

// Predicates returns every predicate of the program, sorted.
func (p *Program) Predicates() []string {
	seen := map[string]bool{}
	for _, r := range p.Rules {
		seen[r.Head.Predicate] = true
		for _, a := range r.Body {
			seen[a.Predicate] = true
		}
		for _, a := range r.Negated {
			seen[a.Predicate] = true
		}
	}
	for _, c := range p.Constraints {
		for _, a := range c.Body {
			seen[a.Predicate] = true
		}
		for _, a := range c.Negated {
			seen[a.Predicate] = true
		}
	}
	for _, f := range p.Facts {
		seen[f.Predicate] = true
	}
	return sortedKeys(seen)
}

// IsIntensional reports whether pred occurs in some rule head.
func (p *Program) IsIntensional(pred string) bool {
	for _, r := range p.Rules {
		if r.Head.Predicate == pred {
			return true
		}
	}
	return false
}

// Validate checks every rule and the output predicate. The output must be an
// intensional predicate when rules are present.
func (p *Program) Validate() error {
	labels := map[string]bool{}
	for _, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		if r.Label != "" {
			if labels[r.Label] {
				return fmt.Errorf("duplicate rule label %q", r.Label)
			}
			labels[r.Label] = true
		}
	}
	for _, c := range p.Constraints {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	for _, f := range p.Facts {
		if !f.IsGround() {
			return fmt.Errorf("non-ground fact %v", f)
		}
	}
	if p.Output != "" && len(p.Rules) > 0 && !p.IsIntensional(p.Output) {
		return fmt.Errorf("output predicate %q is not intensional", p.Output)
	}
	return nil
}

// String renders the whole program in concrete syntax.
func (p *Program) String() string {
	var sb strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&sb, "@name(%q).\n", p.Name)
	}
	if p.Output != "" {
		fmt.Fprintf(&sb, "@output(%q).\n", p.Output)
	}
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	for _, c := range p.Constraints {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	for _, f := range p.Facts {
		sb.WriteString(f.String())
		sb.WriteString(".\n")
	}
	return sb.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
