package llm

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/stats"
	"repro/internal/synth"
)

// proofText builds the deterministic proof explanation for a synthetic
// scenario — the prompt content the paper sends to the LLM.
func proofText(t *testing.T, s synth.Scenario) (string, []string) {
	t.Helper()
	app, err := apps.ByName(s.App)
	if err != nil {
		t.Fatal(err)
	}
	p, err := app.Pipeline(core.Config{SkipEnhancement: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Reason(s.Facts...)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := parser.ParseAtom(s.Query)
	if err != nil {
		t.Fatal(err)
	}
	id, err := res.LookupDerived(pattern)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := res.ExtractProof(id)
	if err != nil {
		t.Fatal(err)
	}
	text, err := p.VerbalizeProof(proof)
	if err != nil {
		t.Fatal(err)
	}
	return text, proof.Constants()
}

func TestOmissionRatio(t *testing.T) {
	consts := []string{"A", "B", "7", "0.21"}
	if r := OmissionRatio("A owes 7 to B given 0.21", consts); r != 0 {
		t.Errorf("full text ratio = %v", r)
	}
	if r := OmissionRatio("A owes something to B", consts); r != 0.5 {
		t.Errorf("half text ratio = %v", r)
	}
	if r := OmissionRatio("", consts); r != 1 {
		t.Errorf("empty text ratio = %v", r)
	}
	if r := OmissionRatio("anything", nil); r != 0 {
		t.Errorf("no constants ratio = %v", r)
	}
}

func TestModeString(t *testing.T) {
	if Paraphrase.String() != "paraphrasis" || Summarize.String() != "summary" {
		t.Error("mode strings wrong")
	}
}

// TestParaphraseShortProofNearComplete: on very short proofs the paraphrase
// keeps almost everything (the left edge of Figure 17).
func TestParaphraseShortProofNearComplete(t *testing.T) {
	text, consts := proofText(t, synth.ControlChain(3, 1))
	var ratios []float64
	for seed := int64(0); seed < 10; seed++ {
		g := &Simulated{Mode: Paraphrase, Seed: seed}
		ratios = append(ratios, OmissionRatio(g.Generate(text), consts))
	}
	if m := stats.Mean(ratios); m > 0.15 {
		t.Errorf("short-proof paraphrase omission = %v, want <= 0.15", m)
	}
}

// TestOmissionGrowsWithProofLength reproduces the central trend of Figure
// 17: average omission grows with the number of chase steps, for both
// prompts, on the company control application.
func TestOmissionGrowsWithProofLength(t *testing.T) {
	for _, mode := range []Mode{Paraphrase, Summarize} {
		mean := func(steps int) float64 {
			var ratios []float64
			for seed := int64(0); seed < 10; seed++ {
				sc := synth.ControlChain(steps, seed)
				text, consts := proofText(t, sc)
				g := &Simulated{Mode: mode, Seed: seed}
				ratios = append(ratios, OmissionRatio(g.Generate(text), consts))
			}
			return stats.Mean(ratios)
		}
		short := mean(3)
		long := mean(21)
		if long <= short {
			t.Errorf("%v: omission does not grow: %v (3 steps) vs %v (21 steps)", mode, short, long)
		}
	}
}

// TestSummaryOmitsMoreThanParaphrase: the second trend of Figure 17.
func TestSummaryOmitsMoreThanParaphrase(t *testing.T) {
	meanFor := func(mode Mode) float64 {
		var ratios []float64
		for seed := int64(0); seed < 10; seed++ {
			sc := synth.ControlChain(15, seed)
			text, consts := proofText(t, sc)
			g := &Simulated{Mode: mode, Seed: seed}
			ratios = append(ratios, OmissionRatio(g.Generate(text), consts))
		}
		return stats.Mean(ratios)
	}
	para := meanFor(Paraphrase)
	summ := meanFor(Summarize)
	if summ <= para {
		t.Errorf("summary omission (%v) not higher than paraphrase (%v)", summ, para)
	}
}

// TestTemplateApproachZeroOmissions: the contrast the paper draws — the
// template-based explanation never omits, at any proof length.
func TestTemplateApproachZeroOmissions(t *testing.T) {
	for _, steps := range []int{3, 9, 15, 21} {
		sc := synth.ControlChain(steps, int64(steps))
		app, _ := apps.ByName(sc.App)
		p, err := app.Pipeline(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Reason(sc.Facts...)
		if err != nil {
			t.Fatal(err)
		}
		pattern, _ := parser.ParseAtom(sc.Query)
		id, err := res.LookupDerived(pattern)
		if err != nil {
			t.Fatal(err)
		}
		e, err := p.ExplainFact(res, id)
		if err != nil {
			t.Fatal(err)
		}
		if r := OmissionRatio(e.Text, e.Proof.Constants()); r != 0 {
			t.Errorf("steps=%d: template omission = %v, want 0", steps, r)
		}
	}
}

// TestSummarizeCompresses: summaries of long texts are materially shorter.
func TestSummarizeCompresses(t *testing.T) {
	text, _ := proofText(t, synth.ControlChain(15, 2))
	g := &Simulated{Mode: Summarize, Seed: 1}
	out := g.Generate(text)
	if len(out) >= len(text)*2/3 {
		t.Errorf("summary length %d not < 2/3 of input %d", len(out), len(text))
	}
}

// TestParaphraseDoesNotCompress: paraphrasing rewrites sentence by sentence
// (it does not shorten the way summarization does), so the output stays
// close to the input length.
func TestParaphraseDoesNotCompress(t *testing.T) {
	text, _ := proofText(t, synth.ControlChain(8, 3))
	g := &Simulated{Mode: Paraphrase, Seed: 1}
	out := g.Generate(text)
	if len(out) < len(text)*3/4 {
		t.Errorf("paraphrase compressed: %d -> %d chars", len(text), len(out))
	}
	// Every inference step's sentence survives: one clause connective per
	// input sentence.
	connectives := 0
	for _, marker := range []string{"Since ", "Because ", "given that ", "it follows that "} {
		connectives += strings.Count(out, marker)
	}
	if connectives < 8 {
		t.Errorf("connectives = %d, want >= 8 (one per step)", connectives)
	}
}

// TestSeededReproducibility: the same seed gives the same output; different
// seeds differ (the run-to-run variability the paper observed, made
// controllable).
func TestSeededReproducibility(t *testing.T) {
	text, _ := proofText(t, synth.ControlChain(10, 4))
	a := (&Simulated{Mode: Summarize, Seed: 7}).Generate(text)
	b := (&Simulated{Mode: Summarize, Seed: 7}).Generate(text)
	if a != b {
		t.Error("same seed produced different outputs")
	}
	c := (&Simulated{Mode: Summarize, Seed: 8}).Generate(text)
	if a == c {
		t.Error("different seeds produced identical outputs")
	}
}

func TestGenerateEmpty(t *testing.T) {
	g := &Simulated{}
	if out := g.Generate(""); out != "" {
		t.Errorf("empty input output = %q", out)
	}
}

// TestStressProofOmissions: the stress test application shows the same
// trends (Figure 17b).
func TestStressProofOmissions(t *testing.T) {
	mean := func(mode Mode, steps int) float64 {
		var ratios []float64
		for seed := int64(0); seed < 10; seed++ {
			sc := synth.StressCascade(steps, seed)
			text, consts := proofText(t, sc)
			g := &Simulated{Mode: mode, Seed: seed}
			ratios = append(ratios, OmissionRatio(g.Generate(text), consts))
		}
		return stats.Mean(ratios)
	}
	if s, l := mean(Summarize, 1), mean(Summarize, 9); l <= s {
		t.Errorf("stress summary omission does not grow: %v vs %v", s, l)
	}
}
