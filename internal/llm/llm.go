// Package llm provides the LLM baseline of the paper's evaluation
// (Sections 6.2-6.3) as a local simulation. The paper prompts ChatGPT with
// the deterministic verbalization of a proof and asks for a paraphrase or a
// summary; it then measures how much information the output omits, finding
// that omissions grow with proof length and that summarization omits more
// than paraphrasis.
//
// Network access to a real LLM is neither available nor desirable here (the
// whole point of the paper is avoiding it), so this package substitutes a
// text-to-text simulator whose omission behaviour is mechanistic rather
// than hard-coded: paraphrasing rewrites every sentence and loses each
// constant with a small attention-dilution probability that grows with text
// length; summarization additionally compresses the middle of the text into
// an aggregate sentence whose numeric details are gone — exactly the
// failure mode the paper reports ("omissions refer, in most cases, to
// ownership share amounts"). The measurement code (OmissionRatio) is the
// paper's metric and runs unchanged against any Generator, so a real LLM
// client can be swapped in.
package llm

import (
	"math/rand"
	"regexp"
	"strings"

	"repro/internal/verbalizer"
)

// Mode selects the prompt of the paper's Section 6.2.
type Mode int

const (
	// Paraphrase corresponds to "Generate a paraphrased version of the
	// following text: ...".
	Paraphrase Mode = iota
	// Summarize corresponds to "Generate a summarized version of the
	// following text: ...".
	Summarize
)

// String implements fmt.Stringer for Mode.
func (m Mode) String() string {
	if m == Summarize {
		return "summary"
	}
	return "paraphrasis"
}

// Generator turns a deterministic proof explanation into a fluent text. A
// production implementation would call an external LLM; Simulated is the
// offline stand-in.
type Generator interface {
	Generate(text string) string
}

// Simulated is the offline LLM simulator. The zero value paraphrases with
// seed 0.
type Simulated struct {
	// Mode selects paraphrasing or summarization.
	Mode Mode
	// Seed drives the stochastic omissions; runs with the same seed are
	// reproducible ("different in each run" is the paper's experience with
	// sampled LLMs, reproduced here by varying the seed).
	Seed int64
}

// sentence splitting on the ". " produced by the verbalizer.
func splitSentences(text string) []string {
	parts := strings.Split(text, ". ")
	var out []string
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if i < len(parts)-1 {
			p += "."
		}
		out = append(out, p)
	}
	return out
}

var (
	numberRe = regexp.MustCompile(`\b\d+(?:\.\d+)?\b`)
	// entities as produced by our generators and scenarios: identifier-like
	// words containing a digit or underscore, or CamelCase words.
	entityRe = regexp.MustCompile(`\b[A-Z][A-Za-z0-9_]*\b`)
)

// Generate implements Generator.
func (s *Simulated) Generate(text string) string {
	rng := rand.New(rand.NewSource(s.Seed))
	sentences := splitSentences(text)
	n := len(sentences)
	if n == 0 {
		return ""
	}

	switch s.Mode {
	case Summarize:
		return s.summarize(sentences, rng)
	default:
		return s.paraphrase(sentences, rng, n)
	}
}

// dropProb returns the per-constant omission probability for a text of n
// sentences: a small floor plus an attention-dilution term growing with
// length. Entities are dropped three times less often than numbers (the
// paper observes omissions concentrate on amounts).
func dropProb(mode Mode, n int, isNumber bool) float64 {
	var p float64
	switch mode {
	case Summarize:
		p = 0.06 + 0.022*float64(n)
		if p > 0.65 {
			p = 0.65
		}
	default:
		p = 0.01 + 0.02*float64(n)
		if p > 0.45 {
			p = 0.45
		}
	}
	if !isNumber {
		p /= 3
	}
	return p
}

// paraphrase rewrites each sentence, dropping constants with the
// length-dependent probability.
func (s *Simulated) paraphrase(sentences []string, rng *rand.Rand, n int) string {
	out := make([]string, 0, len(sentences))
	for _, sent := range sentences {
		sent = rewriteSentence(sent, rng)
		sent = s.dropConstants(sent, rng, n)
		out = append(out, sent)
	}
	return strings.Join(out, " ")
}

// summarize keeps the opening and closing sentences (rewritten) and fuses
// the middle into a single aggregate sentence that keeps entity names but
// loses their amounts; residual constants are further dropped with the
// higher summary probability.
func (s *Simulated) summarize(sentences []string, rng *rand.Rand) string {
	n := len(sentences)
	var out []string
	switch {
	case n <= 2:
		for _, sent := range sentences {
			out = append(out, rewriteSentence(sent, rng))
		}
	default:
		out = append(out, rewriteSentence(sentences[0], rng))
		middle := sentences[1 : n-1]
		if len(middle) > 0 {
			ents := entitiesOf(strings.Join(middle, " "))
			switch len(ents) {
			case 0:
				out = append(out, "The effect propagates through the network.")
			default:
				out = append(out, "In cascade, "+verbalizer.JoinList(ents)+" are involved as the effect propagates.")
			}
		}
		out = append(out, rewriteSentence(sentences[n-1], rng))
	}
	joined := strings.Join(out, " ")
	return s.dropConstants(joined, rng, n)
}

// entitiesOf extracts the distinct entity-like tokens of a text, skipping
// sentence-leading keywords.
func entitiesOf(text string) []string {
	var out []string
	seen := map[string]bool{}
	for _, m := range entityRe.FindAllString(text, -1) {
		switch m {
		case "Since", "Given", "Because", "Then", "As", "In", "The", "Thus", "Therefore", "Consequently":
			continue
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// vague replacements used when a constant is omitted.
var (
	vagueNumbers  = []string{"a substantial amount", "a significant sum", "a relevant amount", "a considerable figure"}
	vagueEntities = []string{"another institution", "a further party", "another company"}
)

// dropConstants removes each distinct constant with its omission
// probability, replacing every occurrence with a vague phrase.
func (s *Simulated) dropConstants(text string, rng *rand.Rand, n int) string {
	for _, num := range dedup(numberRe.FindAllString(text, -1)) {
		if rng.Float64() < dropProb(s.Mode, n, true) {
			text = replaceToken(text, num, vagueNumbers[rng.Intn(len(vagueNumbers))])
		}
	}
	for _, ent := range dedup(entitiesOf(text)) {
		if rng.Float64() < dropProb(s.Mode, n, false) {
			text = replaceToken(text, ent, vagueEntities[rng.Intn(len(vagueEntities))])
		}
	}
	return text
}

func dedup(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// replaceToken replaces whole-token occurrences of tok.
func replaceToken(text, tok, with string) string {
	re := regexp.MustCompile(`(^|[^\w.])` + regexp.QuoteMeta(tok) + `($|[^\w.])`)
	for {
		next := re.ReplaceAllString(text, "${1}"+with+"${2}")
		if next == text {
			return next
		}
		text = next
	}
}

// sentence-level rewrite patterns: swap the Since/then clause order or vary
// the connective, preserving content words.
func rewriteSentence(sent string, rng *rand.Rand) string {
	trimmed := strings.TrimSuffix(sent, ".")
	if body, rest, ok := strings.Cut(trimmed, ", then "); ok && strings.HasPrefix(body, "Since ") {
		cond := strings.TrimPrefix(body, "Since ")
		switch rng.Intn(3) {
		case 0:
			return upperFirst(rest) + ", given that " + cond + "."
		case 1:
			return "Because " + cond + ", " + rest + "."
		default:
			return "As " + cond + ", it follows that " + rest + "."
		}
	}
	return sent
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// OmissionRatio is the metric of the paper's Section 6.3: the fraction of
// the proof's constants that the generated text fails to mention as whole
// tokens.
func OmissionRatio(text string, constants []string) float64 {
	if len(constants) == 0 {
		return 0
	}
	missing := verbalizer.MissingConstants(text, constants)
	return float64(len(missing)) / float64(len(constants))
}
