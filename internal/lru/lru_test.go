package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetEviction(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a lost: %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Cap != 2 || st.Len != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("a = %d", v)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	if !c.Remove("a") || c.Remove("a") {
		t.Error("Remove accounting wrong")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a survived Remove")
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("Remove counted as eviction: %+v", st)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 || c.Cap() != 1 {
		t.Errorf("Len = %d, Cap = %d", c.Len(), c.Cap())
	}
}

func TestHitMissCounting(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEvictHookOrdering: a capacity eviction runs the locked hook before
// the unlocked one, for the same entry; Evict runs both exactly like a
// capacity eviction (without counting as one) and Remove runs neither.
// The locked hook's in-critical-section guarantee is what lets the
// serving layer register a retirement atomically with the removal.
func TestEvictHookOrdering(t *testing.T) {
	c := New[string, int](1)
	var order []string
	c.OnEvictLocked(func(k string, v int) { order = append(order, "locked:"+k) })
	c.OnEvict(func(k string, v int) { order = append(order, "evict:"+k) })

	c.Put("a", 1)
	c.Put("b", 2) // evicts a
	if len(order) != 2 || order[0] != "locked:a" || order[1] != "evict:a" {
		t.Fatalf("capacity eviction hooks = %v, want [locked:a evict:a]", order)
	}

	order = nil
	if !c.Evict("b") {
		t.Fatal("Evict(b) = false, want true")
	}
	if len(order) != 2 || order[0] != "locked:b" || order[1] != "evict:b" {
		t.Fatalf("Evict hooks = %v, want [locked:b evict:b]", order)
	}
	if c.Evict("b") {
		t.Error("Evict of an absent key reported true")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (Evict is deliberate)", st.Evictions)
	}

	order = nil
	c.Put("c", 3)
	c.Remove("c")
	if len(order) != 0 {
		t.Errorf("Remove ran hooks: %v", order)
	}
}

// TestEvictLockedAtomicWithRemoval: while the locked hook runs, no other
// cache caller can observe the entry as gone — a concurrent Get blocks
// until the hook's critical section ends. This is the registration-gap
// regression: under the old hook placement a lookup could slip between
// the removal and the side-table registration.
func TestEvictLockedAtomicWithRemoval(t *testing.T) {
	c := New[string, int](1)
	inHook := make(chan struct{})
	release := make(chan struct{})
	registered := false
	c.OnEvictLocked(func(k string, v int) {
		close(inHook)
		<-release    // hold the critical section open
		registered = true // the "side table" write, inside the section
	})
	c.Put("a", 1)

	done := make(chan bool)
	go func() {
		c.Put("b", 2) // evicts a, parks in the locked hook
	}()
	<-inHook
	go func() {
		_, ok := c.Get("a")
		done <- ok
	}()
	select {
	case <-done:
		t.Fatal("Get returned while the locked eviction hook held the critical section")
	default:
	}
	close(release)
	if ok := <-done; ok {
		t.Error("Get(a) found the evicted entry")
	}
	if !registered {
		t.Error("Get unblocked before the locked hook finished registering")
	}
}

// TestRemoveFunc: the predicate sweep removes matching entries in one
// pass without touching hit/miss accounting, recency order or the
// eviction hooks.
func TestRemoveFunc(t *testing.T) {
	c := New[string, string](8)
	hooks := 0
	c.OnEvictLocked(func(string, string) { hooks++ })
	c.OnEvict(func(string, string) { hooks++ })
	c.Put("s1", "w1")
	c.Put("s2", "w2")
	c.Put("s3", "w1")
	c.Put("s4", "w2")
	before := c.Stats()

	if n := c.RemoveFunc(func(_, loc string) bool { return loc == "w1" }); n != 2 {
		t.Fatalf("RemoveFunc removed %d, want 2", n)
	}
	if hooks != 0 {
		t.Errorf("RemoveFunc ran %d eviction hooks, want 0", hooks)
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses || after.Evictions != before.Evictions {
		t.Errorf("RemoveFunc perturbed accounting: before %+v after %+v", before, after)
	}
	if after.Len != 2 {
		t.Errorf("Len = %d, want 2", after.Len)
	}
	for _, k := range []string{"s1", "s3"} {
		if _, ok := c.Get(k); ok {
			t.Errorf("%s survived the sweep", k)
		}
	}
	for _, k := range []string{"s2", "s4"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s was swept but points at w2", k)
		}
	}
	if n := c.RemoveFunc(func(string, string) bool { return false }); n != 0 {
		t.Errorf("no-match sweep removed %d", n)
	}
}

// TestConcurrent hammers one cache from many goroutines; correctness here
// is "no race, no panic, capacity respected" (run under -race).
func TestConcurrent(t *testing.T) {
	c := New[string, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				if _, ok := c.Get(k); !ok {
					c.Put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
