package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetEviction(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a lost: %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Cap != 2 || st.Len != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutReplaces(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 9 {
		t.Errorf("a = %d", v)
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("evictions = %d", st.Evictions)
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	if !c.Remove("a") || c.Remove("a") {
		t.Error("Remove accounting wrong")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("a survived Remove")
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Errorf("Remove counted as eviction: %+v", st)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 || c.Cap() != 1 {
		t.Errorf("Len = %d, Cap = %d", c.Len(), c.Cap())
	}
}

func TestHitMissCounting(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestConcurrent hammers one cache from many goroutines; correctness here
// is "no race, no panic, capacity respected" (run under -race).
func TestConcurrent(t *testing.T) {
	c := New[string, int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%16)
				if _, ok := c.Get(k); !ok {
					c.Put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
