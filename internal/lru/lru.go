// Package lru provides a small bounded least-recently-used cache with
// hit/miss/eviction accounting. It backs the serving layer's memoization:
// the explanation service keeps reasoning sessions and rendered
// explanations in LRU caches so that memory stays bounded under heavy
// traffic while repeated queries are served from memory (the Vadalog
// system papers motivate exactly this split between an optimized reasoning
// core and a bounded serving layer above it).
//
// All methods are safe for concurrent use. Values are returned as stored;
// callers that share cached pointers across goroutines must treat the
// pointed-to data as immutable, which is the contract of every value the
// serving layer caches (chase results, explanations, rendered responses).
package lru

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU map from K to V. The zero value is not usable;
// create caches with New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[K]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64

	// onEvict, when set, observes capacity evictions (not Removes).
	onEvict func(K, V)
	// onEvictLocked, when set, runs under the cache lock in the same
	// critical section that removes an evicted entry — before the removal
	// is visible to any other cache caller. It must not call back into
	// the cache.
	onEvictLocked func(K, V)
}

// entry is one cache slot, stored in the recency list.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Stats is a point-in-time snapshot of cache accounting.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to respect capacity.
	Evictions uint64 `json:"evictions"`
	// Len and Cap describe current occupancy.
	Len int `json:"len"`
	Cap int `json:"cap"`
}

// New creates a cache holding at most capacity entries; capacity < 1 is
// raised to 1 so a cache is always usable.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: map[K]*list.Element{},
	}
}

// Get returns the value stored under k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores v under k, replacing any existing entry, and evicts the least
// recently used entry when the cache is over capacity.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&entry[K, V]{key: k, val: v})
	var evicted []*entry[K, V]
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		e := oldest.Value.(*entry[K, V])
		delete(c.items, e.key)
		c.evictions++
		if c.onEvictLocked != nil {
			c.onEvictLocked(e.key, e.val)
		}
		if c.onEvict != nil {
			evicted = append(evicted, e)
		}
	}
	// Run the eviction hook outside the cache lock so it may touch the
	// cache (or anything that does) without deadlocking.
	if len(evicted) > 0 {
		fn := c.onEvict
		c.mu.Unlock()
		for _, e := range evicted {
			fn(e.key, e.val)
		}
		c.mu.Lock()
	}
}

// OnEvict registers a hook observing every capacity eviction — the serving
// layer uses it to release per-session resources (WAL file handles, commit
// queues) when a session falls out of the LRU. Deliberate Removes do not
// trigger it. The hook runs outside the cache lock, after the entry is
// already gone. Set it before the cache is shared.
func (c *Cache[K, V]) OnEvict(fn func(K, V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvict = fn
}

// OnEvictLocked registers a hook that runs under the cache lock, in the
// same critical section that removes an evicted entry. The serving layer
// uses it to register the eviction in a side table atomically with the
// removal, so a concurrent lookup that misses the entry is guaranteed to
// find the registration — there is no window in which the entry is gone
// from both. The hook must be fast and must not call back into the
// cache. Set it before the cache is shared.
func (c *Cache[K, V]) OnEvictLocked(fn func(K, V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvictLocked = fn
}

// Evict removes k through the eviction path: the locked hook runs in the
// same critical section as the removal and the eviction hook runs after
// the lock is released, exactly as for a capacity eviction. It reports
// whether k was present. The removal is deliberate, so it does not count
// toward the eviction stat.
func (c *Cache[K, V]) Evict(k K) bool {
	c.mu.Lock()
	el, ok := c.items[k]
	if !ok {
		c.mu.Unlock()
		return false
	}
	c.order.Remove(el)
	e := el.Value.(*entry[K, V])
	delete(c.items, e.key)
	if c.onEvictLocked != nil {
		c.onEvictLocked(e.key, e.val)
	}
	fn := c.onEvict
	c.mu.Unlock()
	if fn != nil {
		fn(e.key, e.val)
	}
	return true
}

// Keys returns the cached keys, most recently used first. The slice is a
// snapshot: entries may come and go while the caller iterates (the serving
// layer's drain uses it and tolerates both).
func (c *Cache[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]K, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[K, V]).key)
	}
	return out
}

// Remove drops the entry stored under k, reporting whether it was present.
// A removal is deliberate and does not count as an eviction.
func (c *Cache[K, V]) Remove(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, k)
	return true
}

// RemoveFunc removes every entry matching pred under one lock
// acquisition, without touching hit/miss accounting or recency order,
// and returns how many were removed. Removals are deliberate: neither
// eviction hook runs and the eviction stat does not move. The router
// uses it to sweep the location cache when a worker leaves service —
// a Keys-then-Get walk would bump recency and stats per entry and
// contend with request-path lookups exactly when the tier is degraded.
func (c *Cache[K, V]) RemoveFunc(pred func(K, V) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry[K, V])
		if pred(e.key, e.val) {
			c.order.Remove(el)
			delete(c.items, e.key)
			n++
		}
		el = next
	}
	return n
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap returns the capacity the cache was created with.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Stats snapshots the cache accounting.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       c.order.Len(),
		Cap:       c.cap,
	}
}
