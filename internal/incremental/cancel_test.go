package incremental

// Cancellation semantics of the maintainer: a request rejected before the
// first mutation leaves the maintainer usable; a cancellation that lands
// mid-repair poisons it like any other repair failure; and a canceled
// construction returns no maintainer at all.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/term"
)

// countdownCtx flips Err to context.Canceled after n checks (the chase
// polls Err at every boundary); see the chase package's cancellation tests.
type countdownCtx struct{ remaining atomic.Int64 }

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestNewContextCanceled(t *testing.T) {
	prog := parser.MustParse(ctrlSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewContext(ctx, prog, chase.Options{}); !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("NewContext under dead context: err = %v, want ErrCanceled", err)
	}
}

// TestUpdateContextPreMutationCancelDoesNotPoison: a dead context caught
// before the repair touches the fixpoint is a clean rejection — the
// maintainer answers the next update normally.
func TestUpdateContextPreMutationCancelDoesNotPoison(t *testing.T) {
	m, err := New(parser.MustParse(ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := m.Result()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	add := []ast.Atom{ast.NewAtom("Own", term.Str("E"), term.Str("A"), term.Float(0.9))}
	if _, _, err := m.UpdateContext(ctx, add, nil); !errors.Is(err, chase.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Not poisoned: the instance is unchanged and still accepts updates.
	after, err := m.Result()
	if err != nil {
		t.Fatalf("maintainer poisoned by pre-mutation cancel: %v", err)
	}
	if before.Store.Epoch() != after.Store.Epoch() {
		t.Fatalf("rejected update changed the instance")
	}
	if _, _, err := m.Update(add, nil); err != nil {
		t.Fatalf("update after rejected request: %v", err)
	}
}

// TestUpdateContextMidRepairCancelPoisons: once the repair has started
// mutating, cancellation is a failure like any other — the half-repaired
// instance is never served again, and the poison error does not itself
// read as a cancellation (the caller's retry logic must not retry it).
func TestUpdateContextMidRepairCancelPoisons(t *testing.T) {
	m, err := New(parser.MustParse(ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	add := []ast.Atom{ast.NewAtom("Own", term.Str("E"), term.Str("A"), term.Float(0.9))}
	// Find a countdown that lands inside the repair: the pre-mutation check
	// spends one Err call, so 2+ reaches the saturation passes. Scan until
	// one produces a cancellation (a too-late countdown simply succeeds —
	// then the update must be applied consistently).
	poisoned := false
	for n := int64(2); n < 64; n++ {
		ctx := newCountdownCtx(n)
		_, _, err := m.UpdateContext(ctx, add, nil)
		if err == nil {
			// Update completed before the countdown: retract to restore the
			// starting state and probe deeper.
			if _, _, err := m.Update(nil, add); err != nil {
				t.Fatalf("n=%d: restoring retract: %v", n, err)
			}
			continue
		}
		if !errors.Is(err, chase.ErrCanceled) {
			t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
		}
		poisoned = true
		break
	}
	if !poisoned {
		t.Skip("no countdown landed mid-repair for this program")
	}
	_, err = m.Result()
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Result after mid-repair cancel: err = %v, want ErrPoisoned", err)
	}
	if chase.IsCancellation(err) {
		t.Fatalf("poison error reads as a cancellation: %v", err)
	}
	if _, _, err := m.Update(add, nil); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Update after poison: err = %v, want ErrPoisoned", err)
	}
}

// TestUpdateContextBackgroundIdentical: context plumbing does not change
// maintenance semantics — UpdateContext(Background) equals Update.
func TestUpdateContextBackgroundIdentical(t *testing.T) {
	m1, err := New(parser.MustParse(closeSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewContext(context.Background(), parser.MustParse(closeSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	add := []ast.Atom{ast.NewAtom("Own", term.Str("D"), term.Str("E"), term.Float(0.8))}
	r1, s1, err := m1.Update(add, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := m2.UpdateContext(context.Background(), add, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
	checkEquivalent(t, "background-vs-plain", r1, r2)
}
