package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/database"
	"repro/internal/parser"
	"repro/internal/term"
)

// The differential programs cover the seed apps' shapes: transitive control
// with a joint-control aggregation, multiplicative close-link recursion,
// a plain sum/count aggregation, stratified negation over control, and an
// aggregation guarded by negation (the hardest repair path).

const ctrlSrc = `
@name("ctrl").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.

Company("A"). Company("B"). Company("C"). Company("D"). Company("E").
Own("A", "B", 0.55).
Own("B", "C", 0.6).
Own("C", "D", 0.55).
Own("D", "E", 0.3).
Own("B", "E", 0.25).
`

const closeSrc = `
@name("close").
@output("CloseLink").
@label("c1") MOwn(X, Y, S) :- Own(X, Y, S).
@label("c2") MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2, S >= 0.01.
@label("c3") CloseLink(X, Y) :- MOwn(X, Y, S), TS = sum(S), TS >= 0.2.

Own("A", "B", 0.55).
Own("B", "C", 0.6).
Own("A", "C", 0.1).
Own("C", "D", 0.5).
`

const aggSrc = `
@name("agg").
@output("Exposure").
@label("a1") Debt(X, Y, A) :- Loan(X, Y, A).
@label("a2") Exposure(X, T) :- Debt(X, Y, A), T = sum(A), T > 0.0.
@label("a3") Spread(X, N) :- Debt(X, Y, A), N = count(Y), N > 1.

Loan("B1", "C1", 10.0).
Loan("B1", "C2", 5.0).
Loan("B2", "C1", 7.0).
`

const negSrc = `
@name("neg").
@output("Review").
@label("g1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("g4") Review(X, Y) :- Control(X, Y), Strategic(Y), not Exempt(X).

Own("F1", "T1", 0.7).
Own("F2", "T2", 0.8).
Strategic("T1").
Strategic("T2").
Exempt("F2").
`

const negAggSrc = `
@name("negagg").
@output("Risk").
@label("n1") Active(X, Y, A) :- Loan(X, Y, A), not Waived(Y).
@label("n2") Risk(X, T) :- Active(X, Y, A), T = sum(A), T > 0.0.

Loan("B1", "C1", 10.0).
Loan("B1", "C2", 5.0).
Waived("C3").
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func own(x, y string, s float64) ast.Atom {
	return ast.NewAtom("Own", term.Str(x), term.Str(y), term.Float(s))
}

func atom1(pred, x string) ast.Atom { return ast.NewAtom(pred, term.Str(x)) }

func loan(x, y string, a float64) ast.Atom {
	return ast.NewAtom("Loan", term.Str(x), term.Str(y), term.Float(a))
}

// scratchRun re-chases the maintainer's effective base from scratch: the
// ground truth the maintained fixpoint must match.
func scratchRun(t *testing.T, m *Maintainer, opts chase.Options) *chase.Result {
	t.Helper()
	res, err := m.Result()
	if err != nil {
		t.Fatalf("maintained result: %v", err)
	}
	p := *res.Program
	p.Facts = m.BaseFacts()
	opts.ExtraFacts = nil
	out, err := chase.Run(&p, opts)
	if err != nil {
		t.Fatalf("scratch chase: %v", err)
	}
	return out
}

// liveSet maps every live, non-superseded atom to "e" (extensional) or "d"
// (derived). Fact ids deliberately do not participate: a re-derived atom
// carries a fresh id.
func liveSet(res *chase.Result) map[string]string {
	out := map[string]string{}
	for _, f := range res.Store.Facts() {
		if res.Store.Retracted(f.ID) || res.Superseded(f.ID) {
			continue
		}
		kind := "d"
		if f.Extensional {
			kind = "e"
		}
		out[f.Atom.Key()] = kind
	}
	return out
}

// checkEquivalent asserts the maintained result is semantically identical to
// the from-scratch one: same live fact set (with extensionality), same
// answers, and a valid proof over live facts for every answer.
func checkEquivalent(t *testing.T, label string, maintained, fresh *chase.Result) {
	t.Helper()
	got, want := liveSet(maintained), liveSet(fresh)
	for k, kind := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("%s: maintained result is missing %s (%s)", label, k, kind)
		} else if g != kind {
			t.Errorf("%s: %s is %s in maintained, %s from scratch", label, k, g, kind)
		}
	}
	for k, kind := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: maintained result has extra %s (%s)", label, k, kind)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range maintained.Answers() {
		proof, err := maintained.ExtractProof(id)
		if err != nil {
			t.Fatalf("%s: proof of %s: %v", label, maintained.Store.Get(id), err)
		}
		for _, leaf := range proof.Leaves {
			f := maintained.Store.Get(leaf)
			if !f.Extensional {
				t.Errorf("%s: proof of %s rests on non-extensional leaf %s", label, maintained.Store.Get(id), f)
			}
			if maintained.Store.Retracted(leaf) {
				t.Errorf("%s: proof of %s rests on retracted leaf %s", label, maintained.Store.Get(id), f)
			}
		}
		for _, d := range proof.Steps {
			for _, prem := range d.Premises {
				if maintained.Store.Retracted(prem) {
					t.Errorf("%s: proof of %s uses retracted premise %s", label,
						maintained.Store.Get(id), maintained.Store.Get(prem))
				}
			}
		}
	}
}

func update(t *testing.T, m *Maintainer, add, retract []ast.Atom) (*chase.Result, UpdateStats) {
	t.Helper()
	res, stats, err := m.Update(add, retract)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	return res, stats
}

func TestUpdateAddExtendsChain(t *testing.T) {
	m, err := New(mustParse(t, ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := m.Update([]ast.Atom{own("D", "E", 0.3)}, nil) // already present
	if err != nil || stats.Added != 0 {
		t.Fatalf("no-op add: stats=%+v err=%v", stats, err)
	}
	before := len(res.Answers())
	res, stats = update(t, m, []ast.Atom{own("E", "F", 0.9), atom1("Company", "F")}, nil)
	if stats.Added != 2 || stats.DeltaRounds == 0 {
		t.Errorf("stats = %+v, want 2 adds and >0 delta rounds", stats)
	}
	if len(res.Answers()) <= before {
		t.Errorf("answers %d not grown from %d", len(res.Answers()), before)
	}
	checkEquivalent(t, "add-chain", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateRetractOverDeletes(t *testing.T) {
	m, err := New(mustParse(t, ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, stats := update(t, m, nil, []ast.Atom{own("B", "C", 0.6)})
	if stats.Retracted != 1 || stats.OverDeleted == 0 {
		t.Errorf("stats = %+v, want 1 retraction with downstream over-deletes", stats)
	}
	checkEquivalent(t, "retract-mid-chain", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateRederivesAlternativeProof(t *testing.T) {
	// Two independent majority stakes derive the same Control(A, B); losing
	// one must keep the atom alive through the other.
	src := `
@output("Reach").
@label("r1") Reach(X, Y) :- Edge(X, Y).
@label("r2") Reach(X, Y) :- Reach(X, Z), Edge(Z, Y).

Edge("A", "B").
Edge("B", "C").
Edge("A", "C").
`
	m, err := New(mustParse(t, src), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reach(A, C) is recorded via its earliest proof; retract the direct
	// edge and the two-hop proof must keep it alive (or vice versa).
	res, stats := update(t, m, nil, []ast.Atom{ast.NewAtom("Edge", term.Str("A"), term.Str("C"))})
	if stats.Rederived == 0 {
		t.Errorf("stats = %+v, want at least one re-derivation", stats)
	}
	found := false
	for _, id := range res.Answers() {
		if res.Store.Get(id).Atom.Key() == ast.NewAtom("Reach", term.Str("A"), term.Str("C")).Key() {
			found = true
		}
	}
	if !found {
		t.Error("Reach(A, C) lost despite alternative proof")
	}
	checkEquivalent(t, "alt-proof", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateAggregateRecompute(t *testing.T) {
	m, err := New(mustParse(t, aggSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := update(t, m, nil, []ast.Atom{loan("B1", "C2", 5.0)})
	want := ast.NewAtom("Exposure", term.Str("B1"), term.Float(10.0))
	if res.Store.Lookup(want) == nil {
		t.Errorf("Exposure(B1, 10) missing after retracting one loan:\n%s", res.Store.Dump())
	}
	checkEquivalent(t, "agg-shrink", res, scratchRun(t, m, chase.Options{}))

	res, _ = update(t, m, []ast.Atom{loan("B1", "C3", 2.5)}, nil)
	want = ast.NewAtom("Exposure", term.Str("B1"), term.Float(12.5))
	if res.Store.Lookup(want) == nil {
		t.Errorf("Exposure(B1, 12.5) missing after adding a loan:\n%s", res.Store.Dump())
	}
	checkEquivalent(t, "agg-grow", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateNegationGainAndLoss(t *testing.T) {
	m, err := New(mustParse(t, negSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Gain: exempting F1 must withdraw Review(F1, T1).
	res, stats := update(t, m, []ast.Atom{atom1("Exempt", "F1")}, nil)
	review := ast.NewAtom("Review", term.Str("F1"), term.Str("T1"))
	if res.Store.Lookup(review) != nil {
		t.Error("Review(F1, T1) survived the exemption")
	}
	if stats.OverDeleted == 0 {
		t.Errorf("stats = %+v, want over-deletion via negation", stats)
	}
	checkEquivalent(t, "negation-gain", res, scratchRun(t, m, chase.Options{}))

	// Loss: dropping F2's exemption must surface Review(F2, T2).
	res, _ = update(t, m, nil, []ast.Atom{atom1("Exempt", "F2")})
	if res.Store.Lookup(ast.NewAtom("Review", term.Str("F2"), term.Str("T2"))) == nil {
		t.Error("Review(F2, T2) missing after the exemption lapsed")
	}
	checkEquivalent(t, "negation-loss", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateNegatedAggregateContributors(t *testing.T) {
	m, err := New(mustParse(t, negAggSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Waiving C1 blocks its Active contributor: the total must drop to 5.
	res, _ := update(t, m, []ast.Atom{atom1("Waived", "C1")}, nil)
	if res.Store.Lookup(ast.NewAtom("Risk", term.Str("B1"), term.Float(5.0))) == nil {
		t.Errorf("Risk(B1, 5) missing after waiving C1:\n%s", res.Store.Dump())
	}
	checkEquivalent(t, "neg-agg-gain", res, scratchRun(t, m, chase.Options{}))

	// Waiving C2 as well empties the group: no Risk(B1, _) at all.
	res, _ = update(t, m, []ast.Atom{atom1("Waived", "C2")}, nil)
	for _, id := range res.Answers() {
		t.Errorf("unexpected live answer %s", res.Store.Get(id))
	}
	checkEquivalent(t, "neg-agg-empty", res, scratchRun(t, m, chase.Options{}))

	// Un-waiving both restores the full total.
	res, _ = update(t, m, nil, []ast.Atom{atom1("Waived", "C1"), atom1("Waived", "C2")})
	if res.Store.Lookup(ast.NewAtom("Risk", term.Str("B1"), term.Float(15.0))) == nil {
		t.Errorf("Risk(B1, 15) missing after un-waiving:\n%s", res.Store.Dump())
	}
	checkEquivalent(t, "neg-agg-loss", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateRetractDerivedFails(t *testing.T) {
	m, err := New(mustParse(t, ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	epoch := m.Epoch()
	control := ast.NewAtom("Control", term.Str("A"), term.Str("B"))
	if _, _, err := m.Update(nil, []ast.Atom{control}); err == nil {
		t.Fatal("retracting a derived fact succeeded")
	}
	// The failed resolution must not have mutated anything (not poisoned).
	if m.Epoch() != epoch {
		t.Error("rejected update mutated the store")
	}
	if _, _, err := m.Update(nil, nil); err != nil {
		t.Errorf("maintainer poisoned by a rejected update: %v", err)
	}
}

func TestUpdatePromotesDerivedToBase(t *testing.T) {
	m, err := New(mustParse(t, ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Control(A, B) is derived; adding it as a base fact must promote it.
	control := ast.NewAtom("Control", term.Str("A"), term.Str("B"))
	res, stats := update(t, m, []ast.Atom{control}, nil)
	f := res.Store.Lookup(control)
	if f == nil || !f.Extensional {
		t.Fatalf("Control(A, B) not extensional after promotion: %v", f)
	}
	if stats.Added != 1 {
		t.Errorf("stats = %+v, want 1 add", stats)
	}
	checkEquivalent(t, "promote", res, scratchRun(t, m, chase.Options{}))
}

func TestUpdateConstraintViolationPoisons(t *testing.T) {
	src := `
@output("P").
@label("p1") P(X) :- Q(X).
:- P(X), Bad(X).

Q("a").
`
	m, err := New(mustParse(t, src), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Update([]ast.Atom{atom1("Bad", "a")}, nil); err == nil {
		t.Fatal("constraint-violating update succeeded")
	}
	if _, _, err := m.Update(nil, nil); err == nil {
		t.Fatal("maintainer served after a failed update")
	}
	if _, err := m.Result(); err == nil {
		t.Fatal("Result served after a failed update")
	}
}

func TestEpochAdvancesOnlyOnChange(t *testing.T) {
	m, err := New(mustParse(t, ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := m.Epoch()
	update(t, m, []ast.Atom{own("A", "B", 0.55)}, nil) // present: no-op
	if m.Epoch() != e0 {
		t.Error("no-op update advanced the epoch")
	}
	update(t, m, []ast.Atom{own("E", "Z", 0.9)}, nil)
	if m.Epoch() == e0 {
		t.Error("mutating update kept the epoch")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m, err := New(mustParse(t, ctrlSrc), chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	update(t, m, []ast.Atom{own("E", "F", 0.9)}, nil)
	update(t, m, nil, []ast.Atom{own("E", "F", 0.9)})
	c := m.Stats()
	if c.Updates != 2 || c.DeltaRounds == 0 {
		t.Errorf("counters = %+v", c)
	}
}

// differentialPools maps each program to the base atoms random sequences
// draw from: the program's own facts plus novel ones that extend, bridge, or
// exempt parts of the instance.
func differentialPools() map[string][]ast.Atom {
	entities := []string{"A", "B", "C", "D", "E"}
	var ownPool []ast.Atom
	for i, x := range entities {
		for j, y := range entities {
			if i == j {
				continue
			}
			ownPool = append(ownPool, own(x, y, 0.55), own(x, y, 0.3))
		}
	}
	ctrl := append([]ast.Atom{}, ownPool...)
	for _, x := range entities {
		ctrl = append(ctrl, atom1("Company", x))
	}
	var agg []ast.Atom
	for _, b := range []string{"B1", "B2"} {
		for _, c := range []string{"C1", "C2", "C3"} {
			agg = append(agg, loan(b, c, 10.0), loan(b, c, 2.5))
		}
	}
	var neg []ast.Atom
	for _, f := range []string{"F1", "F2", "F3"} {
		for _, tgt := range []string{"T1", "T2"} {
			neg = append(neg, own(f, tgt, 0.7))
		}
		neg = append(neg, atom1("Exempt", f), atom1("Foreign", f))
	}
	neg = append(neg, atom1("Strategic", "T1"), atom1("Strategic", "T2"))
	var negagg []ast.Atom
	for _, c := range []string{"C1", "C2", "C3"} {
		negagg = append(negagg, loan("B1", c, 10.0), loan("B2", c, 5.0), atom1("Waived", c))
	}
	return map[string][]ast.Atom{
		ctrlSrc:   ctrl,
		closeSrc:  ownPool,
		aggSrc:    agg,
		negSrc:    neg,
		negAggSrc: negagg,
	}
}

// TestDifferentialRandomSequences drives every differential program through
// random add/retract sequences under 24 seeds each, checking maintained-vs-
// scratch equivalence after every single update.
func TestDifferentialRandomSequences(t *testing.T) {
	const (
		seeds     = 24
		updateLen = 10
	)
	opts := chase.Options{MaxRounds: 200, MaxFacts: 50_000}
	for name, pool := range differentialPools() {
		prog := mustParse(t, name)
		label := prog.Name
		t.Run(label, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				m, err := New(mustParse(t, name), opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for step := 0; step < updateLen; step++ {
					var add, retract []ast.Atom
					for n := rng.Intn(3) + 1; n > 0; n-- {
						a := pool[rng.Intn(len(pool))]
						if rng.Intn(2) == 0 {
							add = append(add, a)
						} else {
							retract = append(retract, a)
						}
					}
					// Skip retractions that hit a derived atom (an error by
					// contract, exercised in its own test).
					res, err := m.Result()
					if err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					ok := true
					for _, a := range retract {
						if f := res.Store.Lookup(a); f != nil && !f.Extensional {
							ok = false
						}
					}
					for _, a := range add {
						if f := res.Store.Lookup(a); f != nil && !f.Extensional {
							ok = false // promotion changes extensionality; keep sequences pure
						}
					}
					if !ok {
						continue
					}
					got, _, err := m.Update(add, retract)
					if err != nil {
						t.Fatalf("seed %d step %d: update(%v, -%v): %v", seed, step, add, retract, err)
					}
					checkEquivalent(t, fmt.Sprintf("%s seed %d step %d", label, seed, step),
						got, scratchRun(t, m, opts))
				}
			}
		})
	}
}

// hasExistentialHead reports whether a rule head mentions a variable no body
// atom, assignment, or aggregation binds. Maintained and scratch runs label
// their invented nulls differently, so the fuzz harness skips such programs
// (the curated suites cover every bundled app, none of which needs nulls).
func hasExistentialHead(p *ast.Program) bool {
	for _, r := range p.Rules {
		bound := map[string]bool{}
		for _, a := range r.Body {
			for _, v := range a.Variables() {
				bound[v] = true
			}
		}
		for _, as := range r.Assignments {
			bound[as.Target] = true
		}
		if r.Aggregation != nil {
			bound[r.Aggregation.Target] = true
		}
		for _, v := range r.Head.Variables() {
			if !bound[v] {
				return true
			}
		}
	}
	return false
}

// FuzzIncrementalDifferential fuzzes whole programs plus an update script:
// the ops bytes toggle the program's own base facts in and out of the
// instance through the maintainer, and the maintained fixpoint must stay
// equivalent to a from-scratch chase of the surviving base after every
// update.
func FuzzIncrementalDifferential(f *testing.F) {
	for _, src := range []string{ctrlSrc, closeSrc, aggSrc, negSrc, negAggSrc} {
		f.Add(src, []byte{0x00, 0x03, 0x81, 0x05, 0x02, 0x84})
	}
	f.Fuzz(func(t *testing.T, src string, ops []byte) {
		if len(src) > 1<<12 || len(ops) > 24 {
			t.Skip("oversized input")
		}
		prog, err := parser.Parse(src)
		if err != nil || len(prog.Facts) == 0 {
			t.Skip()
		}
		if hasExistentialHead(prog) {
			t.Skip("null labels differ between maintained and scratch runs")
		}
		opts := chase.Options{MaxRounds: 50, MaxFacts: 2000}
		m, err := New(prog, opts)
		if err != nil {
			t.Skip() // invalid or non-terminating program: nothing to maintain
		}
		pool := append([]ast.Atom{}, prog.Facts...)
		for _, op := range ops {
			a := pool[int(op&0x7f)%len(pool)]
			res, err := m.Result()
			if err != nil {
				t.Fatalf("result: %v", err)
			}
			if f := res.Store.Lookup(a); f != nil && !f.Extensional {
				continue // derived collision: retract is an error, add is a promotion
			}
			var add, retract []ast.Atom
			if op&0x80 == 0 {
				retract = []ast.Atom{a}
			} else {
				add = []ast.Atom{a}
			}
			got, _, err := m.Update(add, retract)
			if err != nil {
				t.Skip() // e.g. a constraint violation poisoned the maintainer
			}
			p := *prog
			p.Facts = m.BaseFacts()
			scratch, err := chase.Run(&p, opts)
			if err != nil {
				t.Skip()
			}
			checkEquivalent(t, "fuzz", got, scratch)
		}
	})
}

// diffMaintained asserts two maintained fixpoints are byte-for-byte
// identical: same facts with the same ids and tombstones, same chase steps
// with the same rules and premise lists, same superseded set. (The
// maintained-vs-scratch checks above are semantic by necessity — re-derived
// atoms carry fresh ids — but two maintained runs fed identical update
// sequences must agree exactly when only the join executor differs.)
func diffMaintained(t *testing.T, label string, want, got *chase.Result) {
	t.Helper()
	if w, g := want.Store.Dump(), got.Store.Dump(); w != g {
		t.Fatalf("%s: fact stores differ\nwant:\n%s\ngot:\n%s", label, w, g)
	}
	if w, g := want.Store.Len(), got.Store.Len(); w != g {
		t.Fatalf("%s: store sizes differ: %d vs %d", label, w, g)
	}
	for id := 0; id < want.Store.Len(); id++ {
		fid := database.FactID(id)
		if w, g := want.Store.Retracted(fid), got.Store.Retracted(fid); w != g {
			t.Fatalf("%s: retracted(#%d) differs: %v vs %v", label, id, w, g)
		}
		if w, g := want.Superseded(fid), got.Superseded(fid); w != g {
			t.Fatalf("%s: superseded(#%d) differs: %v vs %v", label, id, w, g)
		}
	}
	if len(want.Steps) != len(got.Steps) {
		t.Fatalf("%s: step counts differ: %d vs %d", label, len(want.Steps), len(got.Steps))
	}
	for i := range want.Steps {
		w, g := want.Steps[i], got.Steps[i]
		if w.Fact != g.Fact || w.Rule.Label != g.Rule.Label ||
			fmt.Sprint(w.Premises) != fmt.Sprint(g.Premises) {
			t.Fatalf("%s: step %d differs: %v vs %v", label, i, w, g)
		}
	}
}

// TestBatchIncrementalDifferential drives frame-executor and batch-executor
// maintainers (sequential and 4 workers) in lockstep through random
// add/retract sequences: after every update the three fixpoints must be
// byte-identical. This is the incremental half of the batch determinism
// contract — retractions invalidate the columnar indexes, so every repair
// pass exercises the rebuild path.
func TestBatchIncrementalDifferential(t *testing.T) {
	const (
		seeds     = 12
		updateLen = 8
	)
	base := chase.Options{MaxRounds: 200, MaxFacts: 50_000}
	batchSeq := base
	batchSeq.Batch = true
	batchPar := batchSeq
	batchPar.Workers = 4
	for name, pool := range differentialPools() {
		prog := mustParse(t, name)
		label := prog.Name
		t.Run(label, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(seed))
				maintainers := make([]*Maintainer, 3)
				for i, o := range []chase.Options{base, batchSeq, batchPar} {
					m, err := New(mustParse(t, name), o)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					maintainers[i] = m
				}
				for step := 0; step < updateLen; step++ {
					var add, retract []ast.Atom
					for n := rng.Intn(3) + 1; n > 0; n-- {
						a := pool[rng.Intn(len(pool))]
						if rng.Intn(2) == 0 {
							add = append(add, a)
						} else {
							retract = append(retract, a)
						}
					}
					res, err := maintainers[0].Result()
					if err != nil {
						t.Fatalf("seed %d step %d: %v", seed, step, err)
					}
					ok := true
					for _, a := range append(append([]ast.Atom{}, add...), retract...) {
						if f := res.Store.Lookup(a); f != nil && !f.Extensional {
							ok = false
						}
					}
					if !ok {
						continue
					}
					results := make([]*chase.Result, 3)
					for i, m := range maintainers {
						got, _, err := m.Update(add, retract)
						if err != nil {
							t.Fatalf("seed %d step %d maintainer %d: update(%v, -%v): %v",
								seed, step, i, add, retract, err)
						}
						results[i] = got
					}
					diffMaintained(t, fmt.Sprintf("%s seed %d step %d batch-seq", label, seed, step),
						results[0], results[1])
					diffMaintained(t, fmt.Sprintf("%s seed %d step %d batch-par", label, seed, step),
						results[0], results[2])
				}
			}
		})
	}
}
