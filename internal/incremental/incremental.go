// Package incremental maintains a live chase fixpoint under base-fact
// additions and retractions without re-running the chase from scratch.
//
// The maintainer wraps a chase.Live handle (the engine kept resident after
// fixpoint) and implements DRed-style maintenance over the chase graph's
// provenance:
//
//   - Additions become extensional facts and seed a semi-naive delta pass
//     restricted to the rules whose bodies can (transitively) touch the
//     changed predicates, reusing the engine's compiled slot plans and
//     per-rule evaluation boundaries.
//   - Retractions over-delete the downstream closure: because every chase
//     step records its premise facts and premises always precede their
//     conclusion, one forward pass over the step list finds every fact whose
//     recorded proof rests on a retracted one. The closure is tombstoned
//     (ids are never reused), then each over-deleted atom is goal-directedly
//     re-derived if an alternative proof from surviving facts exists, and
//     the delta pass re-derives everything downstream of the survivors.
//   - Aggregates recompute per-group from their surviving contributors: the
//     engine purges contributors whose premises died and marks exactly those
//     groups dirty, so the next evaluation re-emits the affected totals
//     without touching the others.
//   - Stratified negation repairs iteratively: predicates that lost facts
//     reset their negation-reading rules to a full re-join (a vanished
//     blocker can admit homomorphisms no delta revisits), predicates that
//     gained facts invalidate previously admitted derivations (found exactly
//     via each step's stored homomorphism), and the pass repeats until no
//     fact changes. Programs without negation converge in a single pass.
//
// The maintained result is semantically identical to a from-scratch chase
// over the updated base: same live fact set, and every live derived fact
// carries a valid proof over live premises. The differential and fuzz
// suites in this package enforce both properties over random update
// sequences; byte-level fact ids necessarily differ (a re-derived atom gets
// a fresh id), which is why equivalence is stated over atoms and proofs
// rather than ids.
package incremental

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/database"
)

// UpdateStats reports what one Update did.
type UpdateStats struct {
	// Added is the number of base facts actually added (requests for atoms
	// already present count as no-ops).
	Added int `json:"added"`
	// Retracted is the number of base facts actually retracted.
	Retracted int `json:"retracted"`
	// OverDeleted is the number of derived facts tombstoned because their
	// recorded proof rested on a retracted fact.
	OverDeleted int `json:"overDeleted"`
	// Rederived is the number of over-deleted derived atoms that came back
	// through an alternative proof over surviving facts.
	Rederived int `json:"rederived"`
	// DeltaRounds is the number of semi-naive evaluation rounds spent
	// repairing the fixpoint.
	DeltaRounds int `json:"deltaRounds"`
}

// Counters are the maintainer's cumulative statistics across updates, the
// incremental section of the serving /stats endpoint.
type Counters struct {
	Updates     uint64 `json:"updates"`
	DeltaRounds uint64 `json:"deltaRounds"`
	OverDeleted uint64 `json:"overDeleted"`
	Rederived   uint64 `json:"rederived"`
}

// Maintainer owns a live chase fixpoint and applies base-fact updates to it.
// All methods are safe for concurrent use; updates are serialized.
type Maintainer struct {
	mu       sync.Mutex
	live     *chase.Live
	counters Counters
	// broken poisons the maintainer after a failed update: the fixpoint may
	// be partially repaired, so every later call reports the original error
	// instead of serving an inconsistent instance.
	broken error
}

// New runs the chase for the program to fixpoint and returns a maintainer
// holding the live result.
func New(p *ast.Program, opts chase.Options) (*Maintainer, error) {
	return NewContext(context.Background(), p, opts)
}

// NewContext is New under a context: the initial chase run is cancellable at
// its round and chunk boundaries. A canceled construction returns
// chase.ErrCanceled/ErrDeadline and no maintainer — nothing to poison, the
// caller simply retries with a live context.
func NewContext(ctx context.Context, p *ast.Program, opts chase.Options) (*Maintainer, error) {
	l, err := chase.RunLiveContext(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return &Maintainer{live: l}, nil
}

// FromLive wraps an existing live fixpoint — typically one rebuilt by
// chase.RestoreLive from a serialized snapshot — in a fresh maintainer. The
// caller hands over ownership: the Live must not be mutated outside the
// returned maintainer. Counters start at zero (they are process statistics,
// not session state).
func FromLive(l *chase.Live) *Maintainer {
	return &Maintainer{live: l}
}

// EncodeState serializes the maintained fixpoint's complete engine state
// (chase.Live.EncodeState) under the update lock, so the payload is a
// consistent cut: every acknowledged update is in, no in-flight one is. A
// poisoned maintainer refuses — its state is partially repaired and must
// not be checkpointed.
func (m *Maintainer) EncodeState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return nil, m.poisonErr()
	}
	return m.live.EncodeState()
}

// Result snapshots the current fixpoint. The snapshot stays consistent (and
// explainable) across later updates; take a fresh one to observe them.
func (m *Maintainer) Result() (*chase.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return nil, m.poisonErr()
	}
	return m.live.Snapshot(), nil
}

// Epoch returns the store's mutation counter; it changes exactly when an
// update changed the instance, so caches fingerprint it to detect staleness.
func (m *Maintainer) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.live.Store().Epoch()
}

// Stats returns the cumulative update counters.
func (m *Maintainer) Stats() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// BaseFacts returns the live extensional atoms in id order: the effective
// base instance a from-scratch chase would start from.
func (m *Maintainer) BaseFacts() []ast.Atom {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.live.Store()
	var out []ast.Atom
	for _, f := range st.Facts() {
		if f.Extensional && !st.Retracted(f.ID) {
			out = append(out, f.Atom)
		}
	}
	return out
}

// Resolve reports whether the atom is currently live and whether it is an
// extensional (base) fact. The group committer uses it to pre-validate
// batched retractions against the store before starting an update, so an
// invalid request can be rejected individually instead of failing the whole
// merged batch. A poisoned maintainer resolves nothing.
func (m *Maintainer) Resolve(a ast.Atom) (present, base bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return false, false
	}
	f := m.live.Store().Lookup(a)
	if f == nil {
		return false, false
	}
	return true, f.Extensional
}

// Poisoned returns the poison error after a failed update, nil while the
// maintainer is healthy.
func (m *Maintainer) Poisoned() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return m.poisonErr()
	}
	return nil
}

// ErrPoisoned marks every error a maintainer returns after a failed update;
// match with errors.Is. The original failure is included as text only —
// deliberately not wrapped — so a maintainer poisoned by a canceled repair
// does not itself read as a cancellation (the poison is permanent; the
// cancellation was transient).
var ErrPoisoned = errors.New("incremental: maintainer unusable after failed update")

func (m *Maintainer) poisonErr() error {
	return fmt.Errorf("%w: %v", ErrPoisoned, m.broken)
}

// Update applies base-fact retractions, then additions, and repairs the
// fixpoint. Retracting an absent atom and adding a present one are no-ops;
// retracting a derived atom is an error (retract its extensional support
// instead); adding an atom that is currently derived promotes it to an
// extensional fact (its derived version and downstream closure are re-built
// over the new base fact). Returns a snapshot of the repaired fixpoint.
//
// A failed update (constraint violation or engine error mid-repair) poisons
// the maintainer: the partially repaired instance is never served, and every
// later call reports the failure. Callers recover by building a new
// maintainer from the intended base.
func (m *Maintainer) Update(add, retract []ast.Atom) (*chase.Result, UpdateStats, error) {
	return m.UpdateContext(context.Background(), add, retract)
}

// UpdateContext is Update under a context. Cancellation has two regimes:
//
//   - Before the first mutation (while the request is still being resolved
//     against the store), a dead context returns chase.ErrCanceled/ErrDeadline
//     and the maintainer stays usable — nothing changed, nothing to poison.
//   - Once repair has started mutating the fixpoint, a cancellation is a
//     mid-repair failure like any other: the maintainer is poisoned, because
//     a half-repaired instance must never be served. Callers that want
//     cancellable updates without that risk should bound the *request* (fail
//     fast before the mutation point) rather than interrupt the repair.
func (m *Maintainer) UpdateContext(ctx context.Context, add, retract []ast.Atom) (*chase.Result, UpdateStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var stats UpdateStats
	if m.broken != nil {
		return nil, stats, m.poisonErr()
	}
	live := m.live
	st := live.Store()

	// Resolve the whole request before mutating anything, so an invalid
	// update leaves the fixpoint untouched. Retractions apply before
	// additions: an atom in both lists is retracted and re-added (fresh id).
	var seeds []database.FactID
	seedSet := map[database.FactID]bool{}
	for _, a := range retract {
		if !a.IsGround() {
			return nil, stats, fmt.Errorf("incremental: retract %v: not ground", a)
		}
		f := st.Lookup(a) // absent (or already tombstoned): no-op
		if f == nil {
			continue
		}
		if !f.Extensional {
			return nil, stats, fmt.Errorf("incremental: cannot retract %v: it is derived, not a base fact", a.Display())
		}
		if !seedSet[f.ID] {
			seedSet[f.ID] = true
			seeds = append(seeds, f.ID)
			stats.Retracted++
		}
	}
	var adds []ast.Atom
	for _, a := range add {
		if !a.IsGround() {
			return nil, stats, fmt.Errorf("incremental: add %v: not ground", a)
		}
		if f := st.Lookup(a); f != nil {
			if f.Extensional && !seedSet[f.ID] {
				continue // already a live base fact, and not being retracted
			}
			if !f.Extensional && !seedSet[f.ID] {
				// Promote a derived atom to a base fact: over-delete the
				// derived version so the re-added extensional one becomes
				// the instance's copy.
				seedSet[f.ID] = true
				seeds = append(seeds, f.ID)
			}
		}
		adds = append(adds, a)
	}
	if len(seeds) == 0 && len(adds) == 0 {
		return live.Snapshot(), stats, nil
	}

	// Last exit before mutation: a request whose context is already dead is
	// rejected typed but un-poisoned — the fixpoint has not been touched.
	if err := chase.ContextErr(ctx); err != nil {
		return nil, stats, err
	}
	live.SetContext(ctx)
	defer live.SetContext(nil)

	fail := func(err error) (*chase.Result, UpdateStats, error) {
		m.broken = err
		return nil, stats, err
	}

	// DRed over-delete: tombstone the downstream closure of every seed.
	cands, lost, err := m.overDelete(seeds, &stats)
	if err != nil {
		return fail(err)
	}

	gained := map[string]bool{}
	for _, a := range adds {
		added, err := live.AddBase(a)
		if err != nil {
			return fail(err)
		}
		if added {
			stats.Added++
			gained[a.Predicate] = true
		}
	}

	dirty := make(map[string]bool, len(lost)+len(gained))
	for p := range lost {
		dirty[p] = true
	}
	for p := range gained {
		dirty[p] = true
	}

	if len(seeds) > 0 {
		// Tombstoning can un-pre-empt existential rules and unblock
		// negation readers; both need a full re-join (deltas never revisit
		// old facts).
		live.ResetExistentialRules()
		live.ResetNegationReaders(lost)
	}

	// Repair to fixpoint. Each pass: retract derivations that a gained
	// blocker invalidates, goal-directedly re-derive over-deleted atoms
	// with alternative proofs, then run the semi-naive delta over the dirty
	// predicate cone. Without negation one pass suffices (nothing a pass
	// derives can invalidate another derivation); with negation the passes
	// iterate — bounded by the rule count, far above the strata depth that
	// actually limits the cascade.
	maxPasses := len(live.Program().Rules) + 4
	for pass := 0; ; pass++ {
		if pass > maxPasses {
			return fail(fmt.Errorf("incremental: repair did not converge after %d passes", maxPasses))
		}
		deleted := false
		if live.HasNegation() {
			bad := live.InvalidatedByNegation()
			bad = append(bad, live.RevalidateNegatedContributors(dirty)...)
			if len(bad) > 0 {
				more, lost2, err := m.overDelete(bad, &stats)
				if err != nil {
					return fail(err)
				}
				cands = append(cands, more...)
				for p := range lost2 {
					dirty[p] = true
				}
				live.ResetNegationReaders(lost2)
				live.ResetExistentialRules()
				deleted = true
			}
		}
		before := st.Len()
		for _, a := range cands {
			if _, err := live.Rederive(a); err != nil {
				return fail(err)
			}
		}
		rounds, err := live.Saturate(dirty)
		if err != nil {
			return fail(err)
		}
		stats.DeltaRounds += rounds
		if !live.HasNegation() {
			break
		}
		if !deleted && st.Len() == before {
			break
		}
	}

	if err := live.CheckConstraints(); err != nil {
		return fail(err)
	}

	// An over-deleted atom counts as re-derived when it is live again as a
	// derived fact — whether the goal-directed search or the delta pass
	// brought it back.
	seen := map[string]bool{}
	for _, a := range cands {
		key := a.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		if f := st.Lookup(a); f != nil && !f.Extensional {
			stats.Rederived++
		}
	}

	m.counters.Updates++
	m.counters.DeltaRounds += uint64(stats.DeltaRounds)
	m.counters.OverDeleted += uint64(stats.OverDeleted)
	m.counters.Rederived += uint64(stats.Rederived)
	return live.Snapshot(), stats, nil
}

// overDelete tombstones the seeds and every fact whose recorded proof rests
// on them, returning the non-superseded deleted atoms (in fact-id order, so
// re-derivation visits premises before conclusions) and the predicates that
// lost facts. The forward pass over the step list is exact because premises
// always precede their conclusion and live facts never rest on facts
// tombstoned by an earlier update.
func (m *Maintainer) overDelete(seeds []database.FactID, stats *UpdateStats) ([]ast.Atom, map[string]bool, error) {
	st := m.live.Store()
	closure := map[database.FactID]bool{}
	for _, id := range seeds {
		if !st.Retracted(id) {
			closure[id] = true
		}
	}
	lost := map[string]bool{}
	if len(closure) == 0 {
		return nil, lost, nil
	}
	for _, d := range m.live.Steps() {
		if closure[d.Fact] || st.Retracted(d.Fact) {
			continue
		}
		for _, p := range d.Premises {
			if closure[p] {
				closure[d.Fact] = true
				break
			}
		}
	}
	ids := chase.SortedIDs(closure)
	var cands []ast.Atom
	for _, id := range ids {
		f := st.Get(id)
		lost[f.Atom.Predicate] = true
		if !f.Extensional {
			stats.OverDeleted++
		}
		if !m.live.Superseded(id) {
			cands = append(cands, f.Atom)
		}
	}
	if _, err := m.live.Retract(ids); err != nil {
		return nil, nil, err
	}
	return cands, lost, nil
}
