// Package mapping implements Section 4.3 of the paper: mapping the
// materialized chase steps of a proof to a composition of explanation
// templates.
//
// Given the proof of a fact, its spine τ (the ordered rule activations of
// the materialized source-to-leaf path) is covered greedily:
//
//	(i)  choose the simple reasoning path that instantiates the highest
//	     number of the first chase steps, then
//	(ii) repeatedly choose the reasoning cycle that instantiates the highest
//	     number of the following steps, until every step is covered.
//
// A path's rules may match non-adjacent spine positions: the skipped steps
// are recursion through a critical node below the leaf rule (e.g. the
// integrated-ownership recursion of the close link application) and are
// covered by reasoning cycles in later iterations. Joint paths additionally
// align their extra rules with the side derivations feeding the covered
// steps' aggregations.
//
// At each choice the aggregation ("dashed") variant of the selected path is
// used exactly when some covered aggregation step has multiple contributors
// (Example 4.7: Γ1* is selected over Γ1 because Risk(C,11) sums two debts).
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/database"
	"repro/internal/paths"
	"repro/internal/template"
)

// Segment is one chosen template with its aligned chase derivations (one
// per template rule, in path order).
type Segment struct {
	// Template is the selected explanation template (possibly the dashed
	// variant).
	Template *template.Template
	// Derivs align 1:1 with Template.Path.Rules.
	Derivs []*chase.Derivation
	// Positions are the spine indices covered by this segment, increasing.
	Positions []int
	// SpineUsed is the number of spine steps this segment covers.
	SpineUsed int
}

// PathID returns the reasoning path name of the segment.
func (s *Segment) PathID() string { return s.Template.Path.ID }

// Mapping is the template composition explaining one proof: the reasoning
// graph of the paper.
type Mapping struct {
	// Proof is the proof being explained.
	Proof *chase.Proof
	// Segments are the chosen templates, ordered by their concluding
	// chase step (premises before the conclusions consuming them).
	Segments []*Segment
}

// PathIDs returns the reasoning path names of the composition, e.g.
// [Π2, Γ1*].
func (m *Mapping) PathIDs() []string {
	out := make([]string, len(m.Segments))
	for i, s := range m.Segments {
		out[i] = s.PathID()
	}
	return out
}

// Explanation instantiates each segment's best (enhanced when available)
// template text and joins the fragments into the final natural-language
// explanation.
func (m *Mapping) Explanation() (string, error) {
	return m.explain(func(s *Segment) string { return s.Template.BestText() })
}

// DeterministicExplanation instantiates the deterministic template texts,
// bypassing enhanced variants.
func (m *Mapping) DeterministicExplanation() (string, error) {
	return m.explain(func(s *Segment) string { return s.Template.Text })
}

func (m *Mapping) explain(pick func(*Segment) string) (string, error) {
	var parts []string
	for _, s := range m.Segments {
		text, err := s.Template.InstantiateText(pick(s), s.Derivs)
		if err != nil {
			return "", err
		}
		parts = append(parts, text)
	}
	return strings.Join(parts, " "), nil
}

// Map computes the template composition for a proof using the templates of
// the store. The proof must derive an intensional fact.
func Map(proof *chase.Proof, store *template.Store) (*Mapping, error) {
	if len(proof.Spine) == 0 {
		return nil, fmt.Errorf("mapping: fact %v is extensional; nothing to explain",
			proof.Result().Store.Get(proof.Target))
	}
	c := &coverer{
		proof:   proof,
		store:   store,
		spine:   proof.Spine,
		covered: make([]bool, len(proof.Spine)),
	}
	m := &Mapping{Proof: proof}
	first := true
	for {
		pos := c.firstUncovered()
		if pos < 0 {
			break
		}
		seg := c.choose(pos, first)
		if seg == nil {
			// No enumerated reasoning path instantiates this step: the
			// derivation follows a critical-to-critical bridge outside the
			// root-to-leaf enumeration (Definition 4.2's "or with another
			// critical node" case). Fall back to the elementary template
			// of the single activated rule, which is always instantiable.
			var err error
			seg, err = c.elementary(pos)
			if err != nil {
				return nil, fmt.Errorf("mapping: chase step %d (rule %s): %w",
					pos, c.spine[pos].Rule.Label, err)
			}
		}
		for _, p := range seg.Positions {
			c.covered[p] = true
		}
		m.Segments = append(m.Segments, seg)
		first = false
	}

	// Cover the side branches of the proof DAG: chase steps that support
	// the spine (e.g. the default of a second debtor contributing to an
	// aggregation, or the second σ1 activation in the paper's Figure 15
	// scenario) but were not aligned by any segment. Each gets its
	// elementary template, preserving the completeness guarantee for the
	// whole proof.
	used := map[*chase.Derivation]bool{}
	for _, s := range m.Segments {
		for _, d := range s.Derivs {
			if d != nil {
				used[d] = true
			}
		}
	}
	for _, d := range proof.Steps {
		if used[d] {
			continue
		}
		seg, err := c.elementaryFor(d)
		if err != nil {
			return nil, fmt.Errorf("mapping: side step %d (rule %s): %w", d.Step, d.Rule.Label, err)
		}
		m.Segments = append(m.Segments, seg)
	}

	// Order the composition by each segment's concluding chase step, so
	// that premises are told before the conclusions consuming them and the
	// goal's segment comes last.
	sort.SliceStable(m.Segments, func(i, j int) bool {
		return m.Segments[i].lastStep() < m.Segments[j].lastStep()
	})
	return m, nil
}

// lastStep returns the latest chase step number the segment instantiates
// (its concluding derivation).
func (s *Segment) lastStep() int {
	last := -1
	for _, d := range s.Derivs {
		if d != nil && d.Step > last {
			last = d.Step
		}
	}
	return last
}

type coverer struct {
	proof   *chase.Proof
	store   *template.Store
	spine   []*chase.Derivation
	covered []bool
}

func (c *coverer) firstUncovered() int {
	for i, done := range c.covered {
		if !done {
			return i
		}
	}
	return -1
}

// choose aligns every candidate path of the stage (simple paths for the
// first segment, cycles afterwards) against the uncovered spine starting at
// pos and returns the best alignment: longest contiguous prefix from pos,
// then highest total aligned chase steps.
func (c *coverer) choose(pos int, first bool) *Segment {
	var best *Segment
	bestPrefix, bestTotal := -1, -1
	for _, p := range c.store.Analysis().All() {
		if p.Dashed {
			continue // variants are selected after alignment
		}
		if first != (p.Kind == paths.SimplePath) {
			continue
		}
		derivs, positions, ok := c.align(p, pos)
		if !ok {
			continue
		}
		prefix := contiguousPrefix(positions, pos, c.covered)
		total := 0
		for _, d := range derivs {
			if d != nil {
				total++
			}
		}
		if prefix > bestPrefix || (prefix == bestPrefix && total > bestTotal) {
			tpl := c.selectVariant(p, derivs)
			if tpl == nil {
				continue
			}
			// Trial instantiation: reject alignments whose token classes
			// bind inconsistently (the aligned steps are not actually
			// connected by the path's homomorphisms, e.g. when recursion
			// happens below the leaf rule).
			if _, err := tpl.InstantiateText(tpl.Text, derivs); err != nil {
				continue
			}
			best = &Segment{Template: tpl, Derivs: derivs, Positions: positions, SpineUsed: len(positions)}
			bestPrefix, bestTotal = prefix, total
		}
	}
	return best
}

// elementary builds a one-rule segment for a spine step no enumerated path
// covers: the step's rule is verbalized on its own, with the dashed
// rendering when the aggregation has several contributors.
func (c *coverer) elementary(pos int) (*Segment, error) {
	seg, err := c.elementaryFor(c.spine[pos])
	if err != nil {
		return nil, err
	}
	seg.Positions = []int{pos}
	seg.SpineUsed = 1
	return seg, nil
}

// elementaryFor builds the one-rule segment of an arbitrary chase step.
func (c *coverer) elementaryFor(d *chase.Derivation) (*Segment, error) {
	p := &paths.Path{
		ID:     "ρ(" + d.Rule.Label + ")",
		Kind:   paths.Cycle,
		Rules:  []*ast.Rule{d.Rule},
		Dashed: d.MultiContributor(),
	}
	if p.Dashed {
		p.ID += "*"
	}
	tpl, err := template.ForPath(p, c.store.Glossary())
	if err != nil {
		return nil, err
	}
	derivs := []*chase.Derivation{d}
	if _, err := tpl.InstantiateText(tpl.Text, derivs); err != nil {
		return nil, err
	}
	return &Segment{Template: tpl, Derivs: derivs}, nil
}

// contiguousPrefix counts how many leading matches sit at consecutive
// not-previously-covered spine positions starting exactly at pos. The
// paper's greedy criterion ("the highest number of the first j chase
// steps") prefers this over total coverage.
func contiguousPrefix(positions []int, pos int, covered []bool) int {
	n := 0
	want := pos
	for _, p := range positions {
		if p != want {
			break
		}
		n++
		want++
		for want < len(covered) && covered[want] {
			want++
		}
	}
	return n
}

// selectVariant picks the dashed twin when any aligned aggregation step has
// multiple contributors.
func (c *coverer) selectVariant(p *paths.Path, derivs []*chase.Derivation) *template.Template {
	for _, d := range derivs {
		if d != nil && d.MultiContributor() {
			if t := c.store.ByPath(p.ID + "*"); t != nil {
				return t
			}
			break
		}
	}
	return c.store.ByPath(p.ID)
}

// align matches the path's rule chain against the uncovered spine from pos:
// rules match in order at increasing uncovered positions (skipped spine
// steps remain for later cycle coverage); rules with no spine occurrence are
// filled from side derivations. The first match must land exactly at pos.
func (c *coverer) align(p *paths.Path, pos int) ([]*chase.Derivation, []int, bool) {
	derivs := make([]*chase.Derivation, len(p.Rules))
	var positions []int
	cur := pos
	for i, r := range p.Rules {
		idx := -1
		for j := cur; j < len(c.spine); j++ {
			if !c.covered[j] && c.spine[j].Rule == r {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue // side-filled below
		}
		derivs[i] = c.spine[idx]
		positions = append(positions, idx)
		cur = idx + 1
	}
	if len(positions) == 0 || positions[0] != pos {
		return nil, nil, false
	}
	if !c.fillSides(p, derivs) {
		return nil, nil, false
	}
	return derivs, positions, true
}

// fillSides aligns path rules without a spine match to non-spine
// derivations that feed the already-aligned steps (directly or through
// their premises).
func (c *coverer) fillSides(p *paths.Path, derivs []*chase.Derivation) bool {
	res := c.proof.Result()
	onSpine := map[*chase.Derivation]bool{}
	for _, d := range c.spine {
		onSpine[d] = true
	}
	used := map[*chase.Derivation]bool{}
	for _, d := range derivs {
		if d != nil {
			used[d] = true
		}
	}
	var pool []*chase.Derivation
	seen := map[database.FactID]bool{}
	var visit func(id database.FactID)
	visit = func(id database.FactID) {
		if seen[id] {
			return
		}
		seen[id] = true
		d := res.CanonicalDerivation(id)
		if d == nil {
			return
		}
		if !onSpine[d] && !used[d] {
			pool = append(pool, d)
		}
		for _, prem := range d.Premises {
			visit(prem)
		}
	}
	for _, d := range derivs {
		if d == nil {
			continue
		}
		for _, prem := range d.Premises {
			visit(prem)
		}
	}
	for i, r := range p.Rules {
		if derivs[i] != nil {
			continue
		}
		found := false
		for j, d := range pool {
			if d != nil && d.Rule == r {
				derivs[i] = d
				pool[j] = nil
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
