package mapping

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/depgraph"
	"repro/internal/enhancer"
	"repro/internal/glossary"
	"repro/internal/parser"
	"repro/internal/paths"
	"repro/internal/template"
)

const figure7Src = `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

const controlSrc = `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`

const controlGlossarySrc = `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Company(x): <x> is a business corporation.
`

func setup(t *testing.T, progSrc, glosSrc, extraFacts string) (*chase.Result, *template.Store) {
	t.Helper()
	prog := parser.MustParse(progSrc + "\n" + extraFacts)
	res := chase.MustRun(prog, chase.Options{})
	a := paths.Analyze(depgraph.New(prog))
	store, err := template.Generate(a, glossary.MustParse(glosSrc))
	if err != nil {
		t.Fatal(err)
	}
	return res, store
}

func proofOf(t *testing.T, res *chase.Result, pattern string) *chase.Proof {
	t.Helper()
	a, err := parser.ParseAtom(pattern)
	if err != nil {
		t.Fatal(err)
	}
	id, err := res.LookupDerived(a)
	if err != nil {
		t.Fatalf("lookup %s: %v\n%s", pattern, err, res.Store.Dump())
	}
	p, err := res.ExtractProof(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestExample47Mapping reproduces the central example of the paper: the
// chase path τ = {α, β, γ, β, γ} deriving Default(C) is explained by the
// composition {Π2, Γ1*} — the simple path covering the first three steps and
// the dashed cycle (multiple aggregation inputs) covering the last two.
func TestExample47Mapping(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	proof := proofOf(t, res, `Default("C")`)

	m, err := Map(proof, store)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	got := m.PathIDs()
	want := []string{"Π2", "Γ1*"}
	if len(got) != len(want) {
		t.Fatalf("PathIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PathIDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if m.Segments[0].SpineUsed != 3 || m.Segments[1].SpineUsed != 2 {
		t.Errorf("spine coverage = %d,%d, want 3,2", m.Segments[0].SpineUsed, m.Segments[1].SpineUsed)
	}
}

// TestExample48Explanation instantiates the mapping of Example 4.7 into the
// final explanation of Example 4.8 and checks completeness: every constant
// of the proof appears.
func TestExample48Explanation(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	proof := proofOf(t, res, `Default("C")`)
	m, err := Map(proof, store)
	if err != nil {
		t.Fatal(err)
	}
	text, err := m.Explanation()
	if err != nil {
		t.Fatalf("Explanation: %v", err)
	}
	for _, c := range proof.Constants() {
		if !strings.Contains(text, c) {
			t.Errorf("explanation missing constant %q:\n%s", c, text)
		}
	}
	if !strings.Contains(text, "the sum of 2 and 9") {
		t.Errorf("aggregation contributors not expanded:\n%s", text)
	}
	if strings.Contains(text, "<") {
		t.Errorf("unresolved token:\n%s", text)
	}

	det, err := m.DeterministicExplanation()
	if err != nil {
		t.Fatal(err)
	}
	if det != text {
		t.Error("without enhanced variants, Explanation should equal DeterministicExplanation")
	}
}

// TestDirectDefaultUsesPi1: the proof of Default(A) (shock only) maps to the
// single-rule path Π1.
func TestDirectDefaultUsesPi1(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	m, err := Map(proofOf(t, res, `Default("A")`), store)
	if err != nil {
		t.Fatal(err)
	}
	if ids := m.PathIDs(); len(ids) != 1 || ids[0] != "Π1" {
		t.Errorf("PathIDs = %v, want [Π1]", ids)
	}
}

// TestSingleContributorUsesNonDashed: Default(B)'s risk has one contributor,
// so the non-dashed Π2 is selected.
func TestSingleContributorUsesNonDashed(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	m, err := Map(proofOf(t, res, `Default("B")`), store)
	if err != nil {
		t.Fatal(err)
	}
	if ids := m.PathIDs(); len(ids) != 1 || ids[0] != "Π2" {
		t.Errorf("PathIDs = %v, want [Π2]", ids)
	}
	text, err := m.Explanation()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "sum") {
		t.Errorf("single-contributor explanation verbalizes the aggregator:\n%s", text)
	}
}

// TestIrishBankScenario reproduces the Figure 15 inference: Irish Bank
// controls Madrid Credit through joint 21% + 36% ownership — a
// multi-contributor aggregation explained by the dashed Π2*.
func TestIrishBankScenario(t *testing.T) {
	facts := `
Company("IrishBank").
Company("FondoItaliano").
Company("FrenchPLC").
Company("MadridCredit").
Own("IrishBank", "FondoItaliano", 0.83).
Own("IrishBank", "FrenchPLC", 0.54).
Own("FrenchPLC", "MadridCredit", 0.21).
Own("FondoItaliano", "MadridCredit", 0.36).
`
	res, store := setup(t, controlSrc, controlGlossarySrc, facts)
	proof := proofOf(t, res, `Control("IrishBank", "MadridCredit")`)
	m, err := Map(proof, store)
	if err != nil {
		t.Fatal(err)
	}
	// The composition mirrors the Figure 15 narrative: the second σ1
	// activation (Irish Bank's 83% of Fondo Italiano) is told first, then
	// the dashed Π2* covers the spine through FrenchPLC and the joint
	// aggregation.
	if ids := m.PathIDs(); len(ids) != 2 || ids[0] != "ρ(s1)" || ids[1] != "Π2*" {
		t.Errorf("PathIDs = %v, want [ρ(s1) Π2*]", ids)
	}
	text, err := m.Explanation()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"IrishBank", "MadridCredit", "FrenchPLC", "FondoItaliano", "0.83", "0.54", "0.21", "0.36", "0.57"} {
		if !strings.Contains(text, c) {
			t.Errorf("explanation missing %q:\n%s", c, text)
		}
	}
}

// TestControlChainUsesCycle: a three-hop majority chain maps to Π2 followed
// by the reasoning cycle Γ1 for each extra hop.
func TestControlChainUsesCycle(t *testing.T) {
	facts := `
Company("A"). Company("B"). Company("C"). Company("D").
Own("A", "B", 0.6).
Own("B", "C", 0.7).
Own("C", "D", 0.9).
`
	res, store := setup(t, controlSrc, controlGlossarySrc, facts)
	m, err := Map(proofOf(t, res, `Control("A", "D")`), store)
	if err != nil {
		t.Fatal(err)
	}
	ids := m.PathIDs()
	if len(ids) != 2 || ids[0] != "Π2" || ids[1] != "Γ1" {
		t.Errorf("PathIDs = %v, want [Π2 Γ1]", ids)
	}
	text, err := m.Explanation()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"A", "B", "C", "D", "0.6", "0.7", "0.9"} {
		if !strings.Contains(text, c) {
			t.Errorf("explanation missing %q:\n%s", c, text)
		}
	}
}

// TestLongChainRepeatsCycle: each additional layer adds one Γ1 segment.
func TestLongChainRepeatsCycle(t *testing.T) {
	facts := `
Own("N0", "N1", 0.6).
Own("N1", "N2", 0.6).
Own("N2", "N3", 0.6).
Own("N3", "N4", 0.6).
Own("N4", "N5", 0.6).
`
	res, store := setup(t, controlSrc, controlGlossarySrc, facts)
	m, err := Map(proofOf(t, res, `Control("N0", "N5")`), store)
	if err != nil {
		t.Fatal(err)
	}
	// Spine is {σ1, σ3, σ3, σ3, σ3}: Π2 covers the first two steps, each
	// further layer adds one Γ1 cycle.
	ids := m.PathIDs()
	if len(ids) != 4 || ids[0] != "Π2" {
		t.Errorf("PathIDs = %v, want Π2 followed by three cycles", ids)
	}
	for _, id := range ids[1:] {
		if id != "Γ1" {
			t.Errorf("segment %s, want Γ1", id)
		}
	}
}

// TestEnhancedExplanation: after enhancement, Explanation uses the fluent
// variant while remaining complete.
func TestEnhancedExplanation(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	if _, err := enhancer.EnhanceStore(store, &enhancer.Fluent{Variants: 1, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	proof := proofOf(t, res, `Default("C")`)
	m, err := Map(proof, store)
	if err != nil {
		t.Fatal(err)
	}
	enhanced, err := m.Explanation()
	if err != nil {
		t.Fatal(err)
	}
	det, err := m.DeterministicExplanation()
	if err != nil {
		t.Fatal(err)
	}
	if enhanced == det {
		t.Error("enhanced explanation identical to deterministic")
	}
	for _, c := range proof.Constants() {
		if !strings.Contains(enhanced, c) {
			t.Errorf("enhanced explanation missing %q:\n%s", c, enhanced)
		}
	}
}

// TestMapExtensionalFact rejects proofs of extensional facts.
func TestMapExtensionalFact(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	a, _ := parser.ParseAtom(`Shock("A", 6.0)`)
	f := res.Store.Lookup(a)
	proof, err := res.ExtractProof(f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Map(proof, store); err == nil {
		t.Error("extensional fact mapped")
	}
}

// TestCompletenessAcrossAllAnswers: every derived answer of the program has
// a complete explanation (the paper's completeness guarantee, Section 6.3).
func TestCompletenessAcrossAllAnswers(t *testing.T) {
	res, store := setup(t, stressSimpleSrc, figure7Src, "")
	for _, id := range res.Answers() {
		proof, err := res.ExtractProof(id)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Map(proof, store)
		if err != nil {
			t.Fatalf("Map(%v): %v", res.Store.Get(id), err)
		}
		text, err := m.Explanation()
		if err != nil {
			t.Fatalf("Explanation(%v): %v", res.Store.Get(id), err)
		}
		for _, c := range proof.Constants() {
			if !strings.Contains(text, c) {
				t.Errorf("%v: explanation missing %q", res.Store.Get(id), c)
			}
		}
	}
}

const closeLinkSrc = `
@name("close-link").
@output("CloseLink").
@label("c1") MOwn(X, Y, S) :- Own(X, Y, S).
@label("c2") MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2, S >= 0.01.
@label("c3") CloseLink(X, Y) :- MOwn(X, Y, S), TS = sum(S), TS >= 0.2.
`

const closeLinkGlossarySrc = `
Own(x, y, s): <x> owns <s> shares of <y>.
MOwn(x, y, s): <x> holds an integrated ownership of <s> in <y>.
CloseLink(x, y): <x> and <y> are close linked.
`

// TestDeepRecursionBelowLeaf: the close-link spine {c1, c2, c2, c3} has
// recursion below the leaf rule; no enumerated simple path instantiates its
// first step consistently, so elementary segments cover the spine.
func TestDeepRecursionBelowLeaf(t *testing.T) {
	facts := `
Own("A", "B", 0.55).
Own("B", "C", 0.6).
Own("A", "C", 0.1).
Own("C", "D", 0.5).
`
	res, store := setup(t, closeLinkSrc, closeLinkGlossarySrc, facts)
	proof := proofOf(t, res, `CloseLink("A", "D")`)
	if got := proof.RuleSequence(); len(got) != 4 {
		t.Fatalf("spine = %v", got)
	}
	m, err := Map(proof, store)
	if err != nil {
		t.Fatal(err)
	}
	ids := m.PathIDs()
	// Elementary ρ-segments and the Γ1 cycle cover the recursion; the
	// final aggregation is dashed (two integrated-ownership paths).
	if len(ids) < 3 {
		t.Fatalf("PathIDs = %v", ids)
	}
	sawElementary := false
	for _, id := range ids {
		if strings.HasPrefix(id, "ρ(") {
			sawElementary = true
		}
	}
	if !sawElementary {
		t.Errorf("no elementary segment in %v", ids)
	}
	text, err := m.Explanation()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range proof.Constants() {
		if !strings.Contains(text, c) {
			t.Errorf("explanation missing %q:\n%s", c, text)
		}
	}
}

// TestContiguousPrefixSkipsCovered: previously covered positions do not
// break the contiguity of a later match.
func TestContiguousPrefixSkipsCovered(t *testing.T) {
	covered := []bool{false, true, false, false}
	// Matches at 0, 2, 3 with position 1 already covered: prefix 3.
	if got := contiguousPrefix([]int{0, 2, 3}, 0, covered); got != 3 {
		t.Errorf("contiguousPrefix = %d, want 3", got)
	}
	// A gap at an uncovered position breaks the prefix.
	if got := contiguousPrefix([]int{0, 3}, 0, []bool{false, false, false, false}); got != 1 {
		t.Errorf("contiguousPrefix with gap = %d, want 1", got)
	}
}
