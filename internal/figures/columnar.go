package figures

// Columnar join-throughput benchmark (`bench -fig columnar`): the three
// join engines — legacy map-based, compiled tuple-at-a-time frame executor,
// batch-at-a-time columnar executor — timed on identical million-fact
// synthetic ownership chases. Fact ingestion (parsing, interning, hash-index
// construction) is identical code across engines and would dilute any
// executor comparison at this scale, so the rows report the engine's
// chase.Result.EvalSeconds (plan compilation + chase to fixpoint), with the
// shared ingestion cost shown once per workload. Engines run batch-first so
// the columnar executor is measured on the coldest heap, and each run's
// result is released (retaining only its fact count) before the next engine
// starts. All three engines produce byte-identical results (the
// differential suites in internal/chase enforce it); the rows below only
// move wall time.

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/synth"
)

// chaseBatch selects the batch-at-a-time columnar join executor for every
// figure regeneration; see SetChaseBatch.
var chaseBatch bool

// SetChaseBatch sets chase.Options.Batch for all subsequent figure
// regenerations. cmd/bench threads its -batch flag through here so any
// figure can be timed under the columnar executor; results are identical
// either way.
func SetChaseBatch(on bool) { chaseBatch = on }

// ColumnarPoint is one workload row of the columnar throughput benchmark.
// The per-engine seconds are evaluation-only (chase.Result.EvalSeconds):
// plan compilation, the chase to fixpoint and constraint checking, with the
// shared fact-ingestion phase excluded.
type ColumnarPoint struct {
	// Workload names the measured chase.
	Workload string `json:"workload"`
	// Facts is the extensional database size.
	Facts int `json:"facts"`
	// Derived is the number of facts the chase adds (identical across
	// engines, asserted).
	Derived int `json:"derived"`
	// IngestSeconds is the shared fact-ingestion phase (the batch run's
	// LoadSeconds), reported for context; it is identical code under
	// every executor and excluded from the per-engine numbers.
	IngestSeconds float64 `json:"ingestSeconds"`
	// LegacySeconds, FrameSeconds and BatchSeconds are the rule-evaluation
	// times of the three engines.
	LegacySeconds float64 `json:"legacySeconds"`
	FrameSeconds  float64 `json:"frameSeconds"`
	BatchSeconds  float64 `json:"batchSeconds"`
	// SpeedupVsFrame is FrameSeconds / BatchSeconds — the columnar
	// executor's gain over the tuple-at-a-time compiled executor.
	SpeedupVsFrame float64 `json:"speedupVsFrame"`
	// SpeedupVsLegacy is LegacySeconds / BatchSeconds.
	SpeedupVsLegacy float64 `json:"speedupVsLegacy"`
}

// The two measured rule programs over the layered ownership EKG. Majority
// reachability is the recursive semi-naive workload: every round scans the
// reached frontier's out-edges but extends through the ~8% majority ones,
// and the per-pivot delta restriction is where the columnar executor's
// dense-boundary range check replaces the frame executor's scan-and-filter.
// The two-hop probe is the non-recursive bulk-join workload: one pass over
// the full extent with a selective numeric condition at each depth.
const (
	columnarReachRules = `
@name("majority-reach").
@output("Reach").
@label("r1") Reach(X) :- Source(X).
@label("r2") Reach(Y) :- Reach(X), Own(X, Y, S), S > 0.5.
`
	columnarTwoHopRules = `
@name("two-hop").
@output("Risky").
@label("t1") Risky(X, Z) :- Own(X, Y, S1), Own(Y, Z, S2), S1 > 0.5, S2 > 0.5.
`
)

// ColumnarThroughput measures the three join engines on a million-fact
// layered ownership EKG (64 layers x 500 companies x fanout 32: 1.024M Own
// facts). `bench -fig columnar` renders the table and snapshots the points
// to BENCH_columnar.json.
func ColumnarThroughput() (string, []ColumnarPoint, error) {
	return columnarThroughput(64, 500, 32)
}

// columnarThroughput is ColumnarThroughput at an arbitrary scale (tests run
// a tiny instance).
func columnarThroughput(layers, width, fanout int) (string, []ColumnarPoint, error) {
	facts := synth.LayeredOwnership(layers, width, fanout, 42)
	var points []ColumnarPoint
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %9s %9s %9s %11s %11s %11s %9s %9s\n",
		"workload", "facts", "derived", "ingest s", "legacy s", "frame s", "batch s", "vs frame", "vs legacy")
	for _, w := range []struct{ name, rules string }{
		{"majority-reach", columnarReachRules},
		{"two-hop", columnarTwoHopRules},
	} {
		pt, err := columnarPoint(w.name, w.rules, facts)
		if err != nil {
			return "", nil, err
		}
		points = append(points, pt)
		fmt.Fprintf(&sb, "%-16s %9d %9d %9.2f %11.3f %11.3f %11.3f %8.1fx %8.1fx\n",
			pt.Workload, pt.Facts, pt.Derived, pt.IngestSeconds,
			pt.LegacySeconds, pt.FrameSeconds, pt.BatchSeconds,
			pt.SpeedupVsFrame, pt.SpeedupVsLegacy)
	}
	return sb.String(), points, nil
}

// engineRun is the retained residue of one engine's measurement: the full
// Result is released before the next engine runs so a 30+ GB legacy heap
// cannot distort a later engine's GC behavior.
type engineRun struct {
	load, eval   float64
	total, extra int
}

// columnarPoint times one rule program under the three engines (batch
// first: coldest heap for the engine under test) and asserts they derived
// the same facts.
func columnarPoint(name, rules string, facts []ast.Atom) (ColumnarPoint, error) {
	prog, err := parser.Parse(rules)
	if err != nil {
		return ColumnarPoint{}, fmt.Errorf("%s: parse: %w", name, err)
	}
	run := func(opts chase.Options) (engineRun, error) {
		runtime.GC()
		opts.ExtraFacts = facts
		res, err := chase.Run(prog, opts)
		if err != nil {
			return engineRun{}, err
		}
		return engineRun{
			load:  res.LoadSeconds,
			eval:  res.EvalSeconds,
			total: res.Store.Len(),
			extra: len(facts),
		}, nil
	}
	batch, err := run(chase.Options{Batch: true})
	if err != nil {
		return ColumnarPoint{}, fmt.Errorf("%s: batch: %w", name, err)
	}
	frame, err := run(chase.Options{})
	if err != nil {
		return ColumnarPoint{}, fmt.Errorf("%s: frame: %w", name, err)
	}
	legacy, err := run(chase.Options{Legacy: true})
	if err != nil {
		return ColumnarPoint{}, fmt.Errorf("%s: legacy: %w", name, err)
	}
	if legacy.total != frame.total || frame.total != batch.total {
		return ColumnarPoint{}, fmt.Errorf("%s: engines disagree: legacy %d, frame %d, batch %d facts",
			name, legacy.total, frame.total, batch.total)
	}
	pt := ColumnarPoint{
		Workload:      name,
		Facts:         batch.extra,
		Derived:       batch.total - batch.extra,
		IngestSeconds: batch.load,
		LegacySeconds: legacy.eval,
		FrameSeconds:  frame.eval,
		BatchSeconds:  batch.eval,
	}
	pt.SpeedupVsFrame = pt.FrameSeconds / pt.BatchSeconds
	pt.SpeedupVsLegacy = pt.LegacySeconds / pt.BatchSeconds
	return pt, nil
}
