package figures

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/llm"
	"repro/internal/stats"
)

func TestFig3Fig9(t *testing.T) {
	out, err := Fig3Fig9DependencyGraphs()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"== Company Control ==",
		"roots: Company, Own",
		"critical: Control",
		"cyclic: true",
		"== Stress Test (two channels) ==",
		"critical: Default, Risk",
	} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q in:\n%s", sub, out)
		}
	}
}

func TestFig4Fig5Fig10(t *testing.T) {
	out, err := Fig4Fig5Fig10ReasoningPaths()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"Π2* = {alpha, beta, gamma}", // Figure 4/5
		"Π5* = {s1, s2, s3}",         // Figure 10 company control
		"Γ3* = {s5, s6, s7}",         // Figure 10 stress test
	} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q in:\n%s", sub, out)
		}
	}
}

func TestFig6(t *testing.T) {
	out, err := Fig6Templates()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Deterministic: Since a shock amounting to <s> euro affects <f>") {
		t.Errorf("Π1 deterministic template missing:\n%s", out)
	}
	if !strings.Contains(out, "Enhanced 1:") {
		t.Error("enhanced variants missing")
	}
	if !strings.Contains(out, "with <e> given by the sum of <v>") {
		t.Error("dashed template missing")
	}
}

func TestFig7Fig11(t *testing.T) {
	out := Fig7Fig11Glossaries()
	for _, sub := range []string{"Shock(f, s):", "LongTermDebts(d, c, v):", "CloseLink(x, y):"} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q", sub)
		}
	}
}

func TestFig8(t *testing.T) {
	out, err := Fig8ChaseGraph()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"Risk(C, 11)", "τ = {alpha, beta, gamma, beta, gamma}"} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q in:\n%s", sub, out)
		}
	}
}

func TestEx48(t *testing.T) {
	out, err := Ex48Explanation()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"paths: {Π2, Γ1*}", "sum of 2 and 9"} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q in:\n%s", sub, out)
		}
	}
}

func TestFig13(t *testing.T) {
	out, err := Fig13DerivedKnowledge()
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"Control(A, B)", "Control(B, D)", "Default(F)"} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q in:\n%s", sub, out)
		}
	}
	if strings.Contains(out, "Control(A, A)") {
		t.Error("auto-control edge not omitted")
	}
	if strings.Contains(out, "Default(D)") || strings.Contains(out, "Default(E)") {
		t.Error("surviving entity reported as defaulted")
	}
}

func TestFig14(t *testing.T) {
	out, rs, err := Fig14Comprehension(42, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("cases = %d", len(rs))
	}
	if !strings.Contains(out, "overall accuracy:") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestFig15(t *testing.T) {
	out, err := Fig15ExampleTexts(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{
		"== Deterministic Explanation ==",
		"== GPT Paraphrasis of Deterministic Explanation ==",
		"== GPT Summary of Deterministic Explanation ==",
		"== Template-based Approach ==",
		"IrishBank",
	} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q", sub)
		}
	}
	// The template section must mention the joint shares; the summary
	// section is allowed to omit them.
	tmpl := out[strings.Index(out, "Template-based"):]
	for _, c := range []string{"0.83", "0.54", "0.21", "0.36", "0.57"} {
		if !strings.Contains(tmpl, c) {
			t.Errorf("template text missing %q:\n%s", c, tmpl)
		}
	}
}

func TestFig16(t *testing.T) {
	out, r, err := Fig16ExpertStudy(42, 14)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant() {
		t.Errorf("significant difference: %+v", r)
	}
	for _, sub := range []string{"Mean", "Std. Dev.", "Wilcoxon vs templates"} {
		if !strings.Contains(out, sub) {
			t.Errorf("missing %q", sub)
		}
	}
}

// TestFig17Trends asserts the paper's Figure 17 shape on a reduced sweep:
// omission grows with proof length, summaries lose more than paraphrases,
// and the template approach never omits.
func TestFig17Trends(t *testing.T) {
	out, points, err := Fig17Omissions(42, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "templates") {
		t.Errorf("table malformed:\n%s", out)
	}
	meanAt := func(app string, mode llm.Mode, steps int) float64 {
		for _, p := range points {
			if p.App == app && p.Mode == mode && p.Steps == steps {
				return stats.Mean(p.Ratios)
			}
		}
		t.Fatalf("point %s/%v/%d missing", app, mode, steps)
		return 0
	}
	cc := apps.NameCompanyControl
	if meanAt(cc, llm.Summarize, 21) <= meanAt(cc, llm.Summarize, 3) {
		t.Error("company control summary omission does not grow")
	}
	if meanAt(cc, llm.Paraphrase, 21) <= meanAt(cc, llm.Paraphrase, 3) {
		t.Error("company control paraphrase omission does not grow")
	}
	if meanAt(cc, llm.Summarize, 21) <= meanAt(cc, llm.Paraphrase, 21) {
		t.Error("summary does not omit more than paraphrase")
	}
	st := apps.NameStressTest
	if meanAt(st, llm.Summarize, 9) <= meanAt(st, llm.Summarize, 1) {
		t.Error("stress test summary omission does not grow")
	}
}

// TestFig18Shape asserts the Figure 18 shape on a reduced sweep: times stay
// small (well under the paper's ~3s ceiling) and the table renders.
func TestFig18Shape(t *testing.T) {
	out, points, err := Fig18Performance(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "avg ms") {
		t.Errorf("table malformed:\n%s", out)
	}
	for _, p := range points {
		if p.Summary.Max > 3000 {
			t.Errorf("%s steps=%d took %.1fms (> paper's 3s ceiling)", p.App, p.Steps, p.Summary.Max)
		}
		if len(p.Millis) != 3 {
			t.Errorf("%s steps=%d: %d samples", p.App, p.Steps, len(p.Millis))
		}
	}
}
