package figures

import (
	"strings"
	"testing"
)

// TestLoadCapacitySmall runs the load figure at CI scale: a few hundred
// sessions against both topologies, asserting the harness completes, the
// population exceeds residency enough to force restores, and every class
// recorded latencies.
func TestLoadCapacitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness spins up servers")
	}
	const sessions, ops, concurrency = 600, 1500, 16
	out, points, err := LoadCapacity(sessions, ops, concurrency)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d topology points, want 2", len(points))
	}
	for _, pt := range points {
		if pt.Sessions != sessions {
			t.Errorf("%s: sessions = %d, want %d", pt.Topology, pt.Sessions, sessions)
		}
		if pt.Open.Ops != sessions-pt.Open.Errors {
			t.Errorf("%s: open ops %d + errors %d != %d", pt.Topology, pt.Open.Ops, pt.Open.Errors, sessions)
		}
		total := pt.Read.Ops + pt.Explain.Ops + pt.Write.Ops + pt.Read.Errors + pt.Explain.Errors + pt.Write.Errors
		if total != ops {
			t.Errorf("%s: steady-state ops %d, want %d", pt.Topology, total, ops)
		}
		if pt.Read.Latency.P99 < pt.Read.Latency.P50 {
			t.Errorf("%s: read p99 %.3f < p50 %.3f", pt.Topology, pt.Read.Latency.P99, pt.Read.Latency.P50)
		}
		if pt.Throughput <= 0 {
			t.Errorf("%s: non-positive throughput", pt.Topology)
		}
		if pt.Counters.Restores == 0 {
			t.Errorf("%s: population 8x residency induced no restores", pt.Topology)
		}
	}
	for _, topo := range []string{"worker", "router-2"} {
		if !strings.Contains(out, topo) {
			t.Errorf("rendered table missing topology %s:\n%s", topo, out)
		}
	}
}
