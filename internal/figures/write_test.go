package figures

import (
	"strings"
	"testing"
)

// TestWriteThroughputTiny runs the write benchmark at a toy scale: both
// modes must complete the full update schedule, the group mode must account
// every write to exactly one commit, and the table must render every point.
func TestWriteThroughputTiny(t *testing.T) {
	table, points, err := writeThroughput(6, 6, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, pt := range points {
		if pt.Updates != pt.Writers*6 {
			t.Fatalf("%s x%d: updates = %d", pt.Workload, pt.Writers, pt.Updates)
		}
		if pt.SerializedSeconds <= 0 || pt.GroupSeconds <= 0 {
			t.Fatalf("%s x%d: non-positive timing: %+v", pt.Workload, pt.Writers, pt)
		}
		if pt.Commits < 1 || pt.Commits > pt.Updates {
			t.Fatalf("%s x%d: commits = %d for %d updates", pt.Workload, pt.Writers, pt.Commits, pt.Updates)
		}
		if pt.MeanBatch < 1 || pt.MaxBatch < 1 {
			t.Fatalf("%s x%d: batch accounting: %+v", pt.Workload, pt.Writers, pt)
		}
		if !strings.Contains(table, pt.Workload) {
			t.Fatalf("table missing workload %s:\n%s", pt.Workload, table)
		}
	}
}
