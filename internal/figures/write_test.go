package figures

import (
	"strings"
	"testing"
)

// TestWriteThroughputTiny runs the write benchmark at a toy scale: both
// modes must complete the full update schedule, the group mode must account
// every write to exactly one commit, and the table must render every point.
func TestWriteThroughputTiny(t *testing.T) {
	table, points, cross, err := writeThroughput(6, 6, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if len(cross) != 2 {
		t.Fatalf("cross-session points = %d, want 2", len(cross))
	}
	for _, cp := range cross {
		if cp.Updates != cp.Sessions*cp.WritersPerSession*6 {
			t.Fatalf("cross x%d: updates = %d", cp.Sessions, cp.Updates)
		}
		if cp.IndependentSeconds <= 0 || cp.BatchedSeconds <= 0 {
			t.Fatalf("cross x%d: non-positive timing: %+v", cp.Sessions, cp)
		}
		if cp.BatchedSyncs == 0 || cp.GroupWindows == 0 {
			t.Fatalf("cross x%d: batcher never engaged: %+v", cp.Sessions, cp)
		}
		if cp.GroupWindows > cp.BatchedSyncs {
			t.Fatalf("cross x%d: more windows than requests: %+v", cp.Sessions, cp)
		}
	}
	for _, pt := range points {
		if pt.Updates != pt.Writers*6 {
			t.Fatalf("%s x%d: updates = %d", pt.Workload, pt.Writers, pt.Updates)
		}
		if pt.SerializedSeconds <= 0 || pt.GroupSeconds <= 0 {
			t.Fatalf("%s x%d: non-positive timing: %+v", pt.Workload, pt.Writers, pt)
		}
		if pt.Commits < 1 || pt.Commits > pt.Updates {
			t.Fatalf("%s x%d: commits = %d for %d updates", pt.Workload, pt.Writers, pt.Commits, pt.Updates)
		}
		if pt.MeanBatch < 1 || pt.MaxBatch < 1 {
			t.Fatalf("%s x%d: batch accounting: %+v", pt.Workload, pt.Writers, pt)
		}
		if !strings.Contains(table, pt.Workload) {
			t.Fatalf("table missing workload %s:\n%s", pt.Workload, table)
		}
	}
}
