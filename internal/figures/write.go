package figures

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/term"
	"repro/internal/wal"
)

// WritePoint is one concurrency level's measurement of sustained write
// throughput into a live session: serialized single-update application
// (one WAL append, one fsync, one incremental repair per write) against
// the group committer coalescing concurrent writes into logged batches.
type WritePoint struct {
	// Workload names the measured instance.
	Workload string `json:"workload"`
	// App is the application registry name the workload runs on.
	App string `json:"app"`
	// Writers is the number of concurrent writer goroutines.
	Writers int `json:"writers"`
	// Updates is the total number of writes each mode applied.
	Updates int `json:"updates"`
	// SerializedSeconds is the wall time of the serialized baseline;
	// SerializedPerSec its throughput in updates per second.
	SerializedSeconds float64 `json:"serializedSeconds"`
	SerializedPerSec  float64 `json:"serializedPerSec"`
	// GroupSeconds is the wall time under group commit; GroupPerSec its
	// throughput in updates per second.
	GroupSeconds float64 `json:"groupSeconds"`
	GroupPerSec  float64 `json:"groupPerSec"`
	// Speedup is SerializedSeconds / GroupSeconds.
	Speedup float64 `json:"speedup"`
	// Commits is how many batches group commit applied for Updates writes;
	// MeanBatch is Updates/Commits and MaxBatch the largest batch.
	Commits   int     `json:"commits"`
	MeanBatch float64 `json:"meanBatch"`
	MaxBatch  int     `json:"maxBatch"`
}

// CrossSyncPoint is the cross-session fsync-batching measurement: S
// concurrent sessions, each with its own WAL and group committer, flushing
// independently (every commit window pays its own fsync from its own
// goroutine) versus through one process-wide SyncBatcher (commit windows
// that close together are flushed by a single leader per round). The
// GroupWindows/BatchedSyncs/SyncsSaved columns are the wal.GlobalStats
// deltas of the batched run — the same counters /stats reports on a live
// server.
type CrossSyncPoint struct {
	Workload string `json:"workload"`
	App      string `json:"app"`
	// Sessions is the number of concurrent sessions (one WAL each);
	// WritersPerSession concurrent writers feed each session's committer.
	Sessions          int `json:"sessions"`
	WritersPerSession int `json:"writersPerSession"`
	// Updates is the total write count across all sessions, applied
	// identically in both modes.
	Updates int `json:"updates"`
	// IndependentSeconds is wall time with per-session fsyncs (before);
	// BatchedSeconds with the shared SyncBatcher (after).
	IndependentSeconds float64 `json:"independentSeconds"`
	IndependentPerSec  float64 `json:"independentPerSec"`
	BatchedSeconds     float64 `json:"batchedSeconds"`
	BatchedPerSec      float64 `json:"batchedPerSec"`
	// Speedup is IndependentSeconds / BatchedSeconds.
	Speedup float64 `json:"speedup"`
	// GroupWindows, BatchedSyncs and SyncsSaved are the batcher's counter
	// deltas over the batched run.
	GroupWindows uint64 `json:"groupWindows"`
	BatchedSyncs uint64 `json:"batchedSyncs"`
	SyncsSaved   uint64 `json:"syncsSaved"`
}

// WriteThroughput measures sustained concurrent-writer throughput on a
// control-chain session, with full durability in both modes: every commit
// is WAL-logged and fsynced before it is applied. The serialized baseline
// pays one append, one fsync and one incremental repair per write; the
// group committer pays them once per coalesced batch, so the fixed cost of
// a semi-naive repair pass and a disk flush is amortized across every
// writer that arrived while the previous batch was applying. The
// cross-session rows then hold the per-session group committer fixed and
// toggle the process-wide fsync batcher.
func WriteThroughput() (string, []WritePoint, []CrossSyncPoint, error) {
	return writeThroughput(30, 50, []int{4, 16})
}

func writeThroughput(chainSteps, updatesPerWriter int, writerCounts []int) (string, []WritePoint, []CrossSyncPoint, error) {
	sc := synth.ControlChain(chainSteps, 7)
	app, err := apps.ByName(sc.App)
	if err != nil {
		return "", nil, nil, err
	}
	pipe, err := app.Pipeline(applyWorkers(core.Config{}))
	if err != nil {
		return "", nil, nil, fmt.Errorf("write: %w", err)
	}
	dir, err := os.MkdirTemp("", "bench-write-wal-")
	if err != nil {
		return "", nil, nil, err
	}
	defer os.RemoveAll(dir)

	var points []WritePoint
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %8s %8s %12s %12s %8s %10s %9s\n",
		"workload", "writers", "updates", "serial up/s", "group up/s", "speedup", "mean batch", "max batch")
	for _, writers := range writerCounts {
		updates := writers * updatesPerWriter

		serial, err := runSerializedWriters(pipe, sc, dir, writers, updatesPerWriter)
		if err != nil {
			return "", nil, nil, fmt.Errorf("write: serialized x%d: %w", writers, err)
		}
		group, commits, maxBatch, err := runGroupWriters(pipe, sc, dir, writers, updatesPerWriter)
		if err != nil {
			return "", nil, nil, fmt.Errorf("write: group x%d: %w", writers, err)
		}

		pt := WritePoint{
			Workload:          fmt.Sprintf("control-chain-%d", chainSteps),
			App:               sc.App,
			Writers:           writers,
			Updates:           updates,
			SerializedSeconds: serial.Seconds(),
			SerializedPerSec:  float64(updates) / serial.Seconds(),
			GroupSeconds:      group.Seconds(),
			GroupPerSec:       float64(updates) / group.Seconds(),
			Speedup:           serial.Seconds() / group.Seconds(),
			Commits:           commits,
			MeanBatch:         float64(updates) / float64(commits),
			MaxBatch:          maxBatch,
		}
		points = append(points, pt)
		fmt.Fprintf(&sb, "%-18s %8d %8d %12.0f %12.0f %7.1fx %10.1f %9d\n",
			pt.Workload, pt.Writers, pt.Updates, pt.SerializedPerSec, pt.GroupPerSec,
			pt.Speedup, pt.MeanBatch, pt.MaxBatch)
	}

	// Cross-session rows: the per-session group committer stays on in both
	// modes; only the process-wide fsync batcher toggles.
	var cross []CrossSyncPoint
	fmt.Fprintf(&sb, "\n%-18s %9s %8s %8s %12s %12s %8s %8s %7s\n",
		"workload", "sessions", "writers", "updates", "indep up/s", "batch up/s", "speedup", "windows", "saved")
	for _, sessions := range []int{4, 8} {
		writersPer := 4
		updates := sessions * writersPer * updatesPerWriter

		indep, err := runCrossSessions(pipe, sc, dir, "indep", sessions, writersPer, updatesPerWriter, nil)
		if err != nil {
			return "", nil, nil, fmt.Errorf("write: cross-session independent x%d: %w", sessions, err)
		}
		before := wal.GlobalStats()
		batched, err := runCrossSessions(pipe, sc, dir, "batched", sessions, writersPer, updatesPerWriter, wal.NewSyncBatcher())
		if err != nil {
			return "", nil, nil, fmt.Errorf("write: cross-session batched x%d: %w", sessions, err)
		}
		after := wal.GlobalStats()

		cp := CrossSyncPoint{
			Workload:           fmt.Sprintf("control-chain-%d", chainSteps),
			App:                sc.App,
			Sessions:           sessions,
			WritersPerSession:  writersPer,
			Updates:            updates,
			IndependentSeconds: indep.Seconds(),
			IndependentPerSec:  float64(updates) / indep.Seconds(),
			BatchedSeconds:     batched.Seconds(),
			BatchedPerSec:      float64(updates) / batched.Seconds(),
			Speedup:            indep.Seconds() / batched.Seconds(),
			GroupWindows:       after.GroupWindows - before.GroupWindows,
			BatchedSyncs:       after.BatchedSyncs - before.BatchedSyncs,
			SyncsSaved:         after.SyncsSaved - before.SyncsSaved,
		}
		cross = append(cross, cp)
		fmt.Fprintf(&sb, "%-18s %9d %8d %8d %12.0f %12.0f %7.1fx %8d %7d\n",
			cp.Workload, cp.Sessions, cp.WritersPerSession, cp.Updates,
			cp.IndependentPerSec, cp.BatchedPerSec, cp.Speedup, cp.GroupWindows, cp.SyncsSaved)
	}
	return sb.String(), points, cross, nil
}

// runCrossSessions stands up `sessions` concurrent live sessions — each
// with its own maintainer, WAL and group committer — and drives
// writersPer concurrent writers into each. When batcher is nil every
// committer fsyncs its own log directly (the before mode); otherwise every
// commit's fsync funnels through the shared batcher (the after mode),
// which is exactly how the server wires sessions under `-fsync group`.
func runCrossSessions(pipe *core.Pipeline, sc synth.Scenario, dir, tag string, sessions, writersPer, perWriter int, batcher *wal.SyncBatcher) (time.Duration, error) {
	type sessionRig struct {
		log *wal.Log
		cmt *core.Committer
	}
	rigs := make([]sessionRig, sessions)
	for si := range rigs {
		m, err := pipe.Maintain(sc.Facts...)
		if err != nil {
			return 0, err
		}
		log, err := wal.Create(filepath.Join(dir, fmt.Sprintf("cross-%s-%d-%d.wal", tag, sessions, si)),
			wal.Header{App: sc.App, Base: sc.Facts}, wal.SyncGroup)
		if err != nil {
			return 0, err
		}
		sync := log.Sync
		if batcher != nil {
			l := log
			sync = func() error { return batcher.Sync(l) }
		}
		rigs[si] = sessionRig{
			log: log,
			cmt: core.NewCommitter(core.CommitterConfig{
				Queue:      2 * writersPer,
				Maintainer: m,
				OnLog: func(seq uint64, add, retract []ast.Atom) error {
					if err := log.Append(wal.Delta{Seq: seq, Add: add, Retract: retract}); err != nil {
						return err
					}
					return sync()
				},
			}),
		}
	}
	defer func() {
		for _, r := range rigs {
			r.cmt.Close()
			_ = r.log.Close()
		}
	}()

	var (
		wg   sync.WaitGroup
		errc = make(chan error, sessions*writersPer)
	)
	ctx := context.Background()
	start := time.Now()
	for si := range rigs {
		for w := 0; w < writersPer; w++ {
			wg.Add(1)
			go func(cmt *core.Committer, w int) {
				defer wg.Done()
				fact := writerFact(w)
				for j := 0; j < perWriter; j++ {
					add, retract := toggleDelta(fact, j)
					if _, err := cmt.Submit(ctx, add, retract, false); err != nil {
						errc <- err
						return
					}
				}
			}(rigs[si].cmt, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return elapsed, nil
}

// writerFact is writer w's private toggled base fact: disjoint across
// writers, so batches merge cleanly and both modes apply identical logical
// update sequences.
func writerFact(w int) ast.Atom {
	return ast.NewAtom("Own",
		term.Str(fmt.Sprintf("w%d", w)), term.Str(fmt.Sprintf("t%d", w)), term.Float(0.9))
}

// toggleDelta is writer step j: add the private fact on even steps, retract
// it on odd ones.
func toggleDelta(fact ast.Atom, j int) (add, retract []ast.Atom) {
	if j%2 == 0 {
		return []ast.Atom{fact}, nil
	}
	return nil, []ast.Atom{fact}
}

// runSerializedWriters is the baseline: concurrent writers funnel through
// one mutex, each write logged, fsynced and applied on its own.
func runSerializedWriters(pipe *core.Pipeline, sc synth.Scenario, dir string, writers, perWriter int) (time.Duration, error) {
	m, err := pipe.Maintain(sc.Facts...)
	if err != nil {
		return 0, err
	}
	log, err := wal.Create(filepath.Join(dir, fmt.Sprintf("serial-%d.wal", writers)),
		wal.Header{App: sc.App, Base: sc.Facts}, wal.SyncGroup)
	if err != nil {
		return 0, err
	}
	defer log.Close()

	var (
		mu   sync.Mutex
		seq  uint64
		wg   sync.WaitGroup
		errc = make(chan error, writers)
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fact := writerFact(w)
			for j := 0; j < perWriter; j++ {
				add, retract := toggleDelta(fact, j)
				mu.Lock()
				seq++
				err := log.Append(wal.Delta{Seq: seq, Add: add, Retract: retract})
				if err == nil {
					err = log.Sync()
				}
				if err == nil {
					_, _, err = m.Update(add, retract)
				}
				mu.Unlock()
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return elapsed, nil
}

// runGroupWriters drives the same write sequences through a group
// committer: one WAL record, one fsync and one repair per coalesced batch.
func runGroupWriters(pipe *core.Pipeline, sc synth.Scenario, dir string, writers, perWriter int) (time.Duration, int, int, error) {
	m, err := pipe.Maintain(sc.Facts...)
	if err != nil {
		return 0, 0, 0, err
	}
	log, err := wal.Create(filepath.Join(dir, fmt.Sprintf("group-%d.wal", writers)),
		wal.Header{App: sc.App, Base: sc.Facts}, wal.SyncGroup)
	if err != nil {
		return 0, 0, 0, err
	}
	defer log.Close()

	var commits atomic.Int64
	cmt := core.NewCommitter(core.CommitterConfig{
		Queue:      2 * writers,
		Maintainer: m,
		OnLog: func(seq uint64, add, retract []ast.Atom) error {
			commits.Add(1)
			if err := log.Append(wal.Delta{Seq: seq, Add: add, Retract: retract}); err != nil {
				return err
			}
			return log.Sync()
		},
	})
	defer cmt.Close()

	var (
		wg       sync.WaitGroup
		maxBatch atomic.Int64
		errc     = make(chan error, writers)
	)
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fact := writerFact(w)
			for j := 0; j < perWriter; j++ {
				add, retract := toggleDelta(fact, j)
				res, err := cmt.Submit(ctx, add, retract, false)
				if err != nil {
					errc <- err
					return
				}
				for {
					cur := maxBatch.Load()
					if int64(res.Batch) <= cur || maxBatch.CompareAndSwap(cur, int64(res.Batch)) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return 0, 0, 0, err
	default:
	}
	return elapsed, int(commits.Load()), int(maxBatch.Load()), nil
}
