package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/synth"
)

// IncrementalPoint is one workload's measurement of maintaining the fixpoint
// under a single-fact update versus re-running the chase from scratch on
// the updated base.
type IncrementalPoint struct {
	// Workload names the measured instance.
	Workload string `json:"workload"`
	// App is the application registry name the workload runs on.
	App string `json:"app"`
	// Facts is the extensional database size of the instance.
	Facts int `json:"facts"`
	// Derived is the fixpoint size (all facts) at full base.
	Derived int `json:"derived"`
	// FullSeconds is the mean from-scratch chase latency over the updated
	// base (the pre-incremental cost of any base change).
	FullSeconds float64 `json:"fullSeconds"`
	// UpdateSeconds is the mean incremental update latency for the same
	// single-fact change (alternating retract and re-add).
	UpdateSeconds float64 `json:"updateSeconds"`
	// Speedup is FullSeconds / UpdateSeconds.
	Speedup float64 `json:"speedup"`
	// OverDeletedPerUpdate is the mean number of derived facts tombstoned
	// per retraction.
	OverDeletedPerUpdate float64 `json:"overDeletedPerUpdate"`
}

// IncrementalLatency measures single-fact update maintenance against full
// re-chase on synthetic control chains (the deep-recursion shape where
// re-chasing is most expensive). The update toggles the chain's last
// ownership hop: a retraction over-deletes and repairs only the facts
// downstream of that hop, and a re-addition repairs via the semi-naive
// delta, while the from-scratch baseline recomputes the entire fixpoint
// either way. The maintained fixpoint is semantically identical to the
// baseline's — the differential and fuzz suites in the incremental package
// enforce it — so the figure isolates pure maintenance cost.
func IncrementalLatency() (string, []IncrementalPoint, error) {
	const (
		fullIters   = 3
		updateIters = 30 // alternating retract / re-add
	)
	workloads := []struct {
		name  string
		steps int
	}{
		{"control-chain-30", 30},
		{"control-chain-60", 60},
	}
	var points []IncrementalPoint
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %12s %12s %10s\n",
		"workload", "facts", "derived", "full ms", "update ms", "speedup")
	for _, w := range workloads {
		sc := synth.ControlChain(w.steps, 7)
		app, err := apps.ByName(sc.App)
		if err != nil {
			return "", nil, err
		}
		pipe, err := app.Pipeline(applyWorkers(core.Config{}))
		if err != nil {
			return "", nil, fmt.Errorf("incremental: %s: %w", w.name, err)
		}

		// The toggled fact: the chain's last ownership hop.
		var hop ast.Atom
		for i := len(sc.Facts) - 1; i >= 0; i-- {
			if sc.Facts[i].Predicate == "Own" {
				hop = sc.Facts[i]
				break
			}
		}
		if hop.Predicate == "" {
			return "", nil, fmt.Errorf("incremental: %s: no Own fact to toggle", w.name)
		}
		reduced := make([]ast.Atom, 0, len(sc.Facts)-1)
		for _, f := range sc.Facts {
			if f.Key() != hop.Key() {
				reduced = append(reduced, f)
			}
		}

		// Baseline: a from-scratch chase over each toggle state.
		var derived int
		start := time.Now()
		for i := 0; i < fullIters; i++ {
			res, err := pipe.Reason(sc.Facts...)
			if err != nil {
				return "", nil, fmt.Errorf("incremental: %s full: %w", w.name, err)
			}
			derived = res.Store.Len()
			if _, err := pipe.Reason(reduced...); err != nil {
				return "", nil, fmt.Errorf("incremental: %s full: %w", w.name, err)
			}
		}
		full := time.Since(start).Seconds() / (2 * fullIters)

		// Incremental: one maintainer absorbing the same toggles.
		m, err := pipe.Maintain(sc.Facts...)
		if err != nil {
			return "", nil, fmt.Errorf("incremental: %s maintain: %w", w.name, err)
		}
		start = time.Now()
		for i := 0; i < updateIters; i++ {
			var err error
			if i%2 == 0 {
				_, _, err = m.Update(nil, []ast.Atom{hop})
			} else {
				_, _, err = m.Update([]ast.Atom{hop}, nil)
			}
			if err != nil {
				return "", nil, fmt.Errorf("incremental: %s update %d: %w", w.name, i, err)
			}
		}
		update := time.Since(start).Seconds() / updateIters
		c := m.Stats()

		pt := IncrementalPoint{
			Workload:             w.name,
			App:                  sc.App,
			Facts:                len(sc.Facts),
			Derived:              derived,
			FullSeconds:          full,
			UpdateSeconds:        update,
			Speedup:              full / update,
			OverDeletedPerUpdate: float64(c.OverDeleted) / float64(c.Updates),
		}
		points = append(points, pt)
		fmt.Fprintf(&sb, "%-20s %8d %8d %12.3f %12.3f %9.1fx\n",
			pt.Workload, pt.Facts, pt.Derived, full*1e3, update*1e3, pt.Speedup)
	}
	return sb.String(), points, nil
}
