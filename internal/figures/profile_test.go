package figures

import (
	"os"
	"testing"

	"repro/internal/chase"
	"repro/internal/parser"
	"repro/internal/synth"
)

// TestColumnarProfile is a profiling harness, not a correctness test: it
// runs one columnar-benchmark workload under one engine so
// `go test -run TestColumnarProfile -cpuprofile cpu.out` isolates the join
// executor selected by COLUMNAR_PROFILE_ENGINE (batch|frame|legacy).
// COLUMNAR_PROFILE_WORKLOAD picks reach (default) or twohop;
// COLUMNAR_PROFILE_FULL runs the benchmark's full million-fact scale
// instead of the mid scale.
func TestColumnarProfile(t *testing.T) {
	engine := os.Getenv("COLUMNAR_PROFILE_ENGINE")
	if engine == "" {
		t.Skip("set COLUMNAR_PROFILE_ENGINE=batch|frame|legacy to profile")
	}
	rules := columnarReachRules
	if os.Getenv("COLUMNAR_PROFILE_WORKLOAD") == "twohop" {
		rules = columnarTwoHopRules
	}
	scale := []int{32, 300, 16}
	if os.Getenv("COLUMNAR_PROFILE_FULL") != "" {
		scale = []int{64, 500, 32}
	}
	facts := synth.LayeredOwnership(scale[0], scale[1], scale[2], 42)
	prog, err := parser.Parse(rules)
	if err != nil {
		t.Fatal(err)
	}
	opts := chase.Options{ExtraFacts: facts}
	switch engine {
	case "batch":
		opts.Batch = true
	case "legacy":
		opts.Legacy = true
	}
	res, err := chase.Run(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: %d facts total, load %.2fs eval %.2fs",
		engine, res.Store.Len(), res.LoadSeconds, res.EvalSeconds)
}
