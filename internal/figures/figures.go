// Package figures regenerates every table and figure of the paper's
// evaluation from the implemented system: the structural artifacts (Figures
// 3-11), the representative scenario (Figures 12-13, Example 4.8), the user
// studies (Figures 14-16), the LLM-omission experiment (Figure 17) and the
// performance experiment (Figure 18). Each Fig* function returns a plain
// text rendering; the experiment functions also expose their raw data so
// the benchmark harness can assert the paper's trends.
package figures

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/llm"
	"repro/internal/parser"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/synth"
)

// chaseWorkers is the chase worker-pool size applied to every figure
// regeneration; see SetChaseWorkers.
var chaseWorkers int

// SetChaseWorkers sets chase.Options.Workers for all subsequent figure
// regenerations (0 = sequential, the default). cmd/bench threads its
// -workers flag through here; results are identical at any setting, only
// wall time changes.
func SetChaseWorkers(n int) { chaseWorkers = n }

// chaseLegacy selects the legacy map-based join engine for every figure
// regeneration; see SetChaseLegacy.
var chaseLegacy bool

// SetChaseLegacy sets chase.Options.Legacy for all subsequent figure
// regenerations. cmd/bench threads its -legacy flag through here so the two
// join engines can be timed against each other on identical workloads;
// results are identical either way.
func SetChaseLegacy(on bool) { chaseLegacy = on }

// applyWorkers merges the package-level worker and engine settings into a
// pipeline config that does not set its own.
func applyWorkers(cfg core.Config) core.Config {
	if cfg.Chase.Workers == 0 {
		cfg.Chase.Workers = chaseWorkers
	}
	if chaseLegacy {
		cfg.Chase.Legacy = true
	}
	if chaseBatch {
		cfg.Chase.Batch = true
	}
	return cfg
}

// pipelineFor compiles a bundled application.
func pipelineFor(name string) (*apps.App, *core.Pipeline, error) {
	app, err := apps.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	p, err := app.Pipeline(applyWorkers(core.Config{}))
	if err != nil {
		return nil, nil, err
	}
	return app, p, nil
}

// explainScenario runs a synthetic scenario end to end and returns the
// pipeline, result and explanation of its designated query.
func explainScenario(sc synth.Scenario, cfg core.Config) (*core.Pipeline, *chase.Result, *core.Explanation, error) {
	app, err := apps.ByName(sc.App)
	if err != nil {
		return nil, nil, nil, err
	}
	p, err := app.Pipeline(applyWorkers(cfg))
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := p.Reason(sc.Facts...)
	if err != nil {
		return nil, nil, nil, err
	}
	pattern, err := parser.ParseAtom(sc.Query)
	if err != nil {
		return nil, nil, nil, err
	}
	id, err := res.LookupDerived(pattern)
	if err != nil {
		return nil, nil, nil, err
	}
	e, err := p.ExplainFact(res, id)
	if err != nil {
		return nil, nil, nil, err
	}
	return p, res, e, nil
}

// Fig3Fig9DependencyGraphs renders the dependency graphs of the bundled
// applications: edge lists with roots, leaf and critical nodes.
func Fig3Fig9DependencyGraphs() (string, error) {
	var sb strings.Builder
	for _, app := range apps.All() {
		_, p, err := pipelineFor(app.Name)
		if err != nil {
			return "", err
		}
		g := p.Graph()
		fmt.Fprintf(&sb, "== %s ==\n", app.Title)
		fmt.Fprintf(&sb, "roots: %s\n", strings.Join(g.Roots(), ", "))
		fmt.Fprintf(&sb, "leaf: %s\n", g.Leaf())
		fmt.Fprintf(&sb, "critical: %s\n", strings.Join(g.CriticalNodes(), ", "))
		fmt.Fprintf(&sb, "cyclic: %v\n", g.Cyclic())
		sb.WriteString(g.String())
		sb.WriteString("\n\n")
	}
	return sb.String(), nil
}

// Fig4Fig5Fig10ReasoningPaths renders the reasoning-path tables of all
// applications (Figure 10, plus Figures 4-5 for the simplified stress
// test).
func Fig4Fig5Fig10ReasoningPaths() (string, error) {
	var sb strings.Builder
	for _, app := range apps.All() {
		_, p, err := pipelineFor(app.Name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "== %s ==\n%s\n", app.Title, p.Analysis().Table())
	}
	return sb.String(), nil
}

// Fig6Templates renders the deterministic and enhanced templates of the
// simplified stress test (Figure 6).
func Fig6Templates() (string, error) {
	_, p, err := pipelineFor(apps.NameStressSimple)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, tpl := range p.Templates().All() {
		fmt.Fprintf(&sb, "== %s ==\nDeterministic: %s\n", tpl.Path.ID, tpl.Text)
		for i, v := range tpl.Enhanced {
			fmt.Fprintf(&sb, "Enhanced %d:    %s\n", i+1, v)
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// Fig7Fig11Glossaries renders the domain glossaries (Figures 7 and 11).
func Fig7Fig11Glossaries() string {
	var sb strings.Builder
	for _, app := range apps.All() {
		fmt.Fprintf(&sb, "== %s ==\n%s\n", app.Title, app.Glossary().String())
	}
	return sb.String()
}

// Fig8ChaseGraph renders the chase graph of the Example 4.7 EDB and the
// spine of Default(C).
func Fig8ChaseGraph() (string, error) {
	app, p, err := pipelineFor(apps.NameStressSimple)
	if err != nil {
		return "", err
	}
	res, err := p.Reason(app.Scenario()...)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(res.Graph())
	pattern, _ := parser.ParseAtom(`Default("C")`)
	id, err := res.LookupDerived(pattern)
	if err != nil {
		return "", err
	}
	proof, err := res.ExtractProof(id)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "\nτ = {%s}\n", strings.Join(proof.RuleSequence(), ", "))
	return sb.String(), nil
}

// Ex48Explanation renders the final explanation of Example 4.8 together
// with the reasoning paths composed.
func Ex48Explanation() (string, error) {
	app, p, err := pipelineFor(apps.NameStressSimple)
	if err != nil {
		return "", err
	}
	res, err := p.Reason(app.Scenario()...)
	if err != nil {
		return "", err
	}
	e, err := p.ExplainQuery(res, `Default("C")`)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("paths: {%s}\n\n%s\n", strings.Join(e.PathIDs(), ", "), e.Text), nil
}

// Fig13DerivedKnowledge runs the representative scenario of the company
// control and stress test applications and lists the derived knowledge.
func Fig13DerivedKnowledge() (string, error) {
	var sb strings.Builder
	for _, name := range []string{apps.NameCompanyControl, apps.NameStressTest} {
		app, p, err := pipelineFor(name)
		if err != nil {
			return "", err
		}
		res, err := p.Reason(app.Scenario()...)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "== %s ==\n", app.Title)
		var lines []string
		for _, id := range res.Answers() {
			f := res.Store.Get(id)
			// Skip auto-control edges, as the paper's Figure 13 does.
			if f.Atom.Predicate == "Control" && f.Atom.Terms[0].Equal(f.Atom.Terms[1]) {
				continue
			}
			lines = append(lines, f.String())
		}
		sort.Strings(lines)
		sb.WriteString(strings.Join(lines, "\n"))
		sb.WriteString("\n\n")
	}
	return sb.String(), nil
}

// Fig14Comprehension runs the comprehension study and renders the Figure 14
// table.
func Fig14Comprehension(seed int64, participants int) (string, []study.ComprehensionResult, error) {
	rs, err := study.RunComprehension(seed, participants)
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-48s %10s %10s %12s %10s %8s\n",
		"Case", "WrongEdge", "WrongValue", "WrongAggreg", "WrongChain", "Correct")
	for _, r := range rs {
		pct := func(a study.Archetype) string {
			return fmt.Sprintf("%.0f%%", 100*float64(r.ErrorsBy[a])/float64(r.Total))
		}
		fmt.Fprintf(&sb, "%-48s %10s %10s %12s %10s %7.0f%%\n",
			r.Case, pct(study.WrongEdge), pct(study.WrongValue),
			pct(study.WrongAggregation), pct(study.WrongChain), 100*r.Accuracy())
	}
	fmt.Fprintf(&sb, "overall accuracy: %.0f%% (paper: 96%%)\n", 100*study.OverallAccuracy(rs))
	return sb.String(), rs, nil
}

// Fig15ExampleTexts reproduces the Figure 15 comparison for the Irish Bank
// scenario: deterministic explanation, GPT paraphrase, GPT summary and the
// template-based text.
func Fig15ExampleTexts(seed int64) (string, error) {
	facts := `
Company("IrishBank").
Company("FondoItaliano").
Company("FrenchPLC").
Company("MadridCredit").
Own("IrishBank", "FondoItaliano", 0.83).
Own("IrishBank", "FrenchPLC", 0.54).
Own("FrenchPLC", "MadridCredit", 0.21).
Own("FondoItaliano", "MadridCredit", 0.36).
`
	factProg, err := parser.Parse(facts)
	if err != nil {
		return "", err
	}
	sc := synth.Scenario{
		App:   apps.NameCompanyControl,
		Facts: factProg.Facts,
		Query: `Control("IrishBank", "MadridCredit")`,
	}
	p, _, e, err := explainScenario(sc, core.Config{})
	if err != nil {
		return "", err
	}
	det, err := p.VerbalizeProof(e.Proof)
	if err != nil {
		return "", err
	}
	para := (&llm.Simulated{Mode: llm.Paraphrase, Seed: seed}).Generate(det)
	summ := (&llm.Simulated{Mode: llm.Summarize, Seed: seed}).Generate(det)
	var sb strings.Builder
	fmt.Fprintf(&sb, "== Deterministic Explanation ==\n%s\n\n", det)
	fmt.Fprintf(&sb, "== GPT Paraphrasis of Deterministic Explanation ==\n%s\n\n", para)
	fmt.Fprintf(&sb, "== GPT Summary of Deterministic Explanation ==\n%s\n\n", summ)
	fmt.Fprintf(&sb, "== Template-based Approach ==\n%s\n", e.Text)
	return sb.String(), nil
}

// Fig16ExpertStudy runs the expert study and renders the Figure 16 table
// plus the Wilcoxon outcomes.
func Fig16ExpertStudy(seed int64, experts int) (string, *study.ExpertResult, error) {
	r, err := study.RunExpert(seed, experts)
	if err != nil {
		return "", nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %10s %10s\n", "", "Paraphrasis", "Summary", "Templates")
	fmt.Fprintf(&sb, "%-12s %12.2f %10.2f %10.2f\n", "Mean",
		r.Mean[study.MethodParaphrase], r.Mean[study.MethodSummary], r.Mean[study.MethodTemplates])
	fmt.Fprintf(&sb, "%-12s %12.2f %10.2f %10.2f\n", "Std. Dev.",
		r.StdDev[study.MethodParaphrase], r.StdDev[study.MethodSummary], r.StdDev[study.MethodTemplates])
	fmt.Fprintf(&sb, "Wilcoxon vs templates: p1 = %.4f (paraphrasis), p2 = %.4f (summary)\n",
		r.PParaphrase, r.PSummary)
	fmt.Fprintf(&sb, "significant difference at 5%%: %v (paper: none; p1=0.5851, p2=0.404)\n", r.Significant())
	return sb.String(), r, nil
}

// OmissionPoint is one boxplot of Figure 17: the omission-ratio
// distribution of one (application, prompt, proof length) cell.
type OmissionPoint struct {
	App     string
	Mode    llm.Mode
	Steps   int
	Ratios  []float64
	Summary stats.FiveNum
}

// Fig17Omissions runs the omission experiment: for each application and
// prompt, sample `proofs` distinct proofs per length and measure the
// information the simulated LLM output loses. The template approach is
// also measured and must stay at zero.
func Fig17Omissions(seed int64, proofs int) (string, []OmissionPoint, error) {
	sweeps := []struct {
		app      string
		lengths  []int
		scenario func(steps int, seed int64) synth.Scenario
	}{
		{apps.NameCompanyControl, []int{3, 6, 9, 12, 15, 18, 21}, synth.ControlChain},
		{apps.NameStressTest, []int{1, 3, 5, 7, 9}, synth.StressCascade},
	}
	var points []OmissionPoint
	var sb strings.Builder
	for _, sweep := range sweeps {
		app, _ := apps.ByName(sweep.app)
		fmt.Fprintf(&sb, "== %s ==\n", app.Title)
		fmt.Fprintf(&sb, "%6s  %-12s %8s %8s %8s %8s %8s %10s\n",
			"steps", "prompt", "min", "q1", "median", "q3", "max", "templates")
		for _, steps := range sweep.lengths {
			templateRatios := make([]float64, 0, proofs)
			byMode := map[llm.Mode][]float64{}
			for s := 0; s < proofs; s++ {
				sc := sweep.scenario(steps, seed+int64(s)+int64(steps)*1000)
				p, _, e, err := explainScenario(sc, core.Config{SkipEnhancement: true})
				if err != nil {
					return "", nil, err
				}
				det, err := p.VerbalizeProof(e.Proof)
				if err != nil {
					return "", nil, err
				}
				consts := e.Proof.Constants()
				for _, mode := range []llm.Mode{llm.Paraphrase, llm.Summarize} {
					g := &llm.Simulated{Mode: mode, Seed: seed + int64(s)}
					byMode[mode] = append(byMode[mode], llm.OmissionRatio(g.Generate(det), consts))
				}
				templateRatios = append(templateRatios, llm.OmissionRatio(e.Text, consts))
			}
			for _, mode := range []llm.Mode{llm.Paraphrase, llm.Summarize} {
				pt := OmissionPoint{
					App: sweep.app, Mode: mode, Steps: steps,
					Ratios:  byMode[mode],
					Summary: stats.Summary(byMode[mode]),
				}
				points = append(points, pt)
				fmt.Fprintf(&sb, "%6d  %-12s %8.3f %8.3f %8.3f %8.3f %8.3f %10.3f\n",
					steps, mode, pt.Summary.Min, pt.Summary.Q1, pt.Summary.Median,
					pt.Summary.Q3, pt.Summary.Max, stats.Mean(templateRatios))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), points, nil
}

// TimingPoint is one boxplot of Figure 18: the running-time distribution of
// explanation generation at one proof length.
type TimingPoint struct {
	App     string
	Steps   int
	Millis  []float64
	Summary stats.FiveNum
}

// Fig18Performance measures the time to generate an explanation (proof
// extraction, template selection and instantiation — reasoning excluded, as
// in the paper) for proofs of increasing length, `proofs` distinct proofs
// per length.
func Fig18Performance(seed int64, proofs int) (string, []TimingPoint, error) {
	sweeps := []struct {
		app      string
		lengths  []int
		scenario func(steps int, seed int64) synth.Scenario
	}{
		{apps.NameCompanyControl, []int{1, 3, 5, 7, 9, 11, 13, 16, 18, 21}, synth.ControlChain},
		{apps.NameStressTest, []int{1, 4, 7, 10, 13, 16, 19, 22}, synth.StressCascade},
	}
	var points []TimingPoint
	var sb strings.Builder
	for _, sweep := range sweeps {
		app, err := apps.ByName(sweep.app)
		if err != nil {
			return "", nil, err
		}
		pipe, err := app.Pipeline(applyWorkers(core.Config{}))
		if err != nil {
			return "", nil, err
		}
		fmt.Fprintf(&sb, "== %s ==\n", app.Title)
		fmt.Fprintf(&sb, "%6s %10s %10s %10s\n", "steps", "min ms", "avg ms", "max ms")
		for _, steps := range sweep.lengths {
			var millis []float64
			for s := 0; s < proofs; s++ {
				sc := sweep.scenario(steps, seed+int64(s)+int64(steps)*500)
				res, err := pipe.Reason(sc.Facts...)
				if err != nil {
					return "", nil, err
				}
				pattern, err := parser.ParseAtom(sc.Query)
				if err != nil {
					return "", nil, err
				}
				id, err := res.LookupDerived(pattern)
				if err != nil {
					return "", nil, err
				}
				start := time.Now()
				if _, err := pipe.ExplainFact(res, id); err != nil {
					return "", nil, err
				}
				millis = append(millis, float64(time.Since(start).Nanoseconds())/1e6)
			}
			pt := TimingPoint{App: sweep.app, Steps: steps, Millis: millis, Summary: stats.Summary(millis)}
			points = append(points, pt)
			fmt.Fprintf(&sb, "%6d %10.3f %10.3f %10.3f\n",
				steps, pt.Summary.Min, stats.Mean(millis), pt.Summary.Max)
		}
		sb.WriteByte('\n')
	}
	return sb.String(), points, nil
}
