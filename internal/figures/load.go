package figures

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/loadgen"
	"repro/internal/router"
	"repro/internal/server"
)

// LoadPoint is one topology's load-harness measurement: a session
// population far beyond resident capacity, a mixed read/explain/write
// steady state, and the durability churn (restores, snapshot restores,
// compactions) the population induced.
type LoadPoint struct {
	// Topology names the target: "worker" (one durable server) or
	// "router-N" (N workers sharing a WAL directory behind the
	// consistent-hash router).
	Topology string `json:"topology"`
	// Workers is the serving-process count behind the target.
	Workers int `json:"workers"`
	loadgen.Report
}

// loadResident bounds resident sessions per worker: a small fraction of
// the session population (capped at 4096), so steady-state traffic
// constantly evicts and restores — the serving tier's churn regime.
func loadResident(sessions int) int {
	r := sessions / 8
	if r > 4096 {
		r = 4096
	}
	if r < 16 {
		r = 16
	}
	return r
}

// LoadCapacity runs the load harness against a single durable worker and
// against a two-worker routed tier, with the given concurrent-session
// population and steady-state operation count (0, 0 selects the official
// 100k sessions / 100k ops).
func LoadCapacity(sessions, ops, concurrency int) (string, []LoadPoint, error) {
	if sessions <= 0 {
		sessions = 100_000
	}
	if ops <= 0 {
		ops = 100_000
	}
	if concurrency <= 0 {
		concurrency = 64
	}
	topologies := []struct {
		name    string
		workers int
	}{
		{"worker", 1},
		{"router-2", 2},
	}
	var points []LoadPoint
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %9s %9s %10s %9s %9s %9s %9s %9s %9s %10s %8s %9s %8s %8s\n",
		"topology", "sessions", "ops", "thr op/s", "open p99", "read p50", "read p99", "expl p99", "write p99", "restores", "snapRest", "compact", "rstr p99", "retried", "locHits")
	for i, topo := range topologies {
		rep, err := runLoadTopology(topo.workers, i, sessions, ops, concurrency)
		if err != nil {
			return "", nil, fmt.Errorf("load: %s: %w", topo.name, err)
		}
		pt := LoadPoint{Topology: topo.name, Workers: topo.workers, Report: *rep}
		points = append(points, pt)
		// The routing columns only exist behind a router; a bare worker has
		// no second hop to count.
		retried, locHits := "-", "-"
		if pt.Router != nil {
			retried = fmt.Sprintf("%d", pt.Router.Retried)
			locHits = fmt.Sprintf("%d", pt.Router.LocationHits)
		}
		fmt.Fprintf(&sb, "%-10s %9d %9d %10.0f %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms %9d %10d %8d %8.2fms %8s %8s\n",
			pt.Topology, pt.Sessions, ops, pt.Throughput,
			pt.Open.Latency.P99, pt.Read.Latency.P50, pt.Read.Latency.P99,
			pt.Explain.Latency.P99, pt.Write.Latency.P99,
			pt.Counters.Restores, pt.Counters.SnapshotRestores, pt.Counters.Compactions,
			pt.RestoreLatency.P99, retried, locHits)
	}
	return sb.String(), points, nil
}

// runLoadTopology stands up n durable workers over one shared WAL
// directory (routed through the consistent-hash proxy when n > 1) and
// drives the harness at them.
func runLoadTopology(n, idx, sessions, ops, concurrency int) (*loadgen.Report, error) {
	dir, err := os.MkdirTemp("", "loadfig-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var urls []string
	for i := 0; i < n; i++ {
		s, err := server.NewWithOptions(server.Options{
			WALDir:         dir,
			CompactCommits: 8,
			MaxSessions:    loadResident(sessions),
			MaxInflight:    concurrency,
			ChaseWorkers:   chaseWorkers,
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	base := urls[0]
	if n > 1 {
		rt, err := router.New(router.Options{Workers: urls})
		if err != nil {
			return nil, err
		}
		rts := httptest.NewServer(rt.Handler())
		defer rts.Close()
		base = rts.URL
	}
	return loadgen.Run(loadgen.Config{
		BaseURL:     base,
		Sessions:    sessions,
		Ops:         ops,
		Concurrency: concurrency,
		IDPrefix:    fmt.Sprintf("ld%d", idx),
	})
}
