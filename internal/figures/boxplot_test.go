package figures

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestBoxplotChart(t *testing.T) {
	rows := []BoxplotRow{
		{Label: "3 steps", Summary: stats.FiveNum{Min: 0, Q1: 0.1, Median: 0.15, Q3: 0.2, Max: 0.4}},
		{Label: "21 steps", Summary: stats.FiveNum{Min: 0.3, Q1: 0.45, Median: 0.5, Q3: 0.55, Max: 0.6}},
	}
	out := BoxplotChart("demo", "ratio", rows, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title = %q", lines[0])
	}
	for _, want := range []string{"[", "]", "│", "─", "3 steps", "21 steps", "0.6 ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The 21-step box must sit to the right of the 3-step box.
	left3 := strings.Index(lines[1], "[")
	left21 := strings.Index(lines[2], "[")
	if left21 <= left3 {
		t.Errorf("boxes not ordered along the axis:\n%s", out)
	}
}

func TestBoxplotDegenerate(t *testing.T) {
	// A single point distribution still renders.
	rows := []BoxplotRow{{Label: "x", Summary: stats.FiveNum{Min: 1, Q1: 1, Median: 1, Q3: 1, Max: 1}}}
	out := BoxplotChart("", "", rows, 10)
	if !strings.Contains(out, "│") {
		t.Errorf("degenerate chart missing median:\n%s", out)
	}
	if BoxplotChart("t", "", nil, 0) == "" {
		t.Error("empty chart should still render the axis")
	}
}

func TestOmissionAndTimingBoxplots(t *testing.T) {
	_, points, err := Fig17Omissions(42, 3)
	if err != nil {
		t.Fatal(err)
	}
	chart := OmissionBoxplots(points, 50)
	for _, sub := range []string{"paraphrasis (omission ratio)", "summary (omission ratio)", "21 steps"} {
		if !strings.Contains(chart, sub) {
			t.Errorf("omission chart missing %q", sub)
		}
	}

	_, tpoints, err := Fig18Performance(42, 2)
	if err != nil {
		t.Fatal(err)
	}
	tchart := TimingBoxplots(tpoints, 50)
	for _, sub := range []string{"(running time)", "ms", "22 steps"} {
		if !strings.Contains(tchart, sub) {
			t.Errorf("timing chart missing %q", sub)
		}
	}
}
