package figures

import (
	"strings"
	"testing"
)

// TestServingLatency smoke-tests the serving figure: every bundled app and
// the scaled synthetic workload are measured, latencies are positive, and
// the warm path is not slower than cold (the real ≥5x acceptance bar is
// asserted on the committed BENCH_serving.json numbers, not here, to keep
// the test robust on loaded machines).
func TestServingLatency(t *testing.T) {
	out, points, err := ServingLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("workloads = %d, want 6", len(points))
	}
	seen := map[string]bool{}
	for _, pt := range points {
		seen[pt.Workload] = true
		if pt.Answers < 1 || pt.Facts < 1 {
			t.Errorf("%s: answers=%d facts=%d", pt.Workload, pt.Answers, pt.Facts)
		}
		if pt.ColdSeconds <= 0 || pt.WarmSeconds <= 0 {
			t.Errorf("%s: non-positive latency %+v", pt.Workload, pt)
		}
		if pt.Speedup < 1 {
			t.Errorf("%s: warm slower than cold: %+v", pt.Workload, pt)
		}
	}
	if !seen["control-chain-60"] || !seen["company-control"] {
		t.Errorf("workloads = %v", seen)
	}
	if !strings.Contains(out, "control-chain-60") || !strings.Contains(out, "speedup") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}
