package figures

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// BoxplotRow is one labelled distribution of a boxplot chart.
type BoxplotRow struct {
	Label   string
	Summary stats.FiveNum
}

// BoxplotChart renders labelled five-number summaries as horizontal ASCII
// boxplots on a shared axis, in the spirit of the paper's Figures 17-18:
//
//	3 ├ ──[▒▒│▒▒]───              ┤
//	6 ├     ───[▒▒▒│▒▒]──         ┤
//
// '──' spans min..max (the whiskers), '[▒…▒]' spans Q1..Q3 and '│' marks
// the median. The axis runs from lo to hi; width is the plot width in
// characters.
func BoxplotChart(title, unit string, rows []BoxplotRow, width int) string {
	if width < 20 {
		width = 20
	}
	lo, hi := axisBounds(rows)
	scale := func(v float64) int {
		if hi == lo {
			return 0
		}
		pos := int(float64(width-1) * (v - lo) / (hi - lo))
		if pos < 0 {
			pos = 0
		}
		if pos > width-1 {
			pos = width - 1
		}
		return pos
	}

	labelWidth := 0
	for _, r := range rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}

	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for _, r := range rows {
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		s := r.Summary
		for i := scale(s.Min); i <= scale(s.Max); i++ {
			line[i] = '─'
		}
		for i := scale(s.Q1); i <= scale(s.Q3); i++ {
			line[i] = '▒'
		}
		line[scale(s.Q1)] = '['
		line[scale(s.Q3)] = ']'
		line[scale(s.Median)] = '│'
		fmt.Fprintf(&sb, "%*s ├%s┤\n", labelWidth, r.Label, string(line))
	}
	fmt.Fprintf(&sb, "%*s  %s\n", labelWidth, "", axisLine(lo, hi, width, unit))
	return sb.String()
}

func axisBounds(rows []BoxplotRow) (lo, hi float64) {
	first := true
	for _, r := range rows {
		if first {
			lo, hi = r.Summary.Min, r.Summary.Max
			first = false
			continue
		}
		if r.Summary.Min < lo {
			lo = r.Summary.Min
		}
		if r.Summary.Max > hi {
			hi = r.Summary.Max
		}
	}
	if first {
		return 0, 1
	}
	if lo > 0 && lo < (hi-lo) {
		lo = 0 // anchor at zero when the data starts near it
	}
	return lo, hi
}

func axisLine(lo, hi float64, width int, unit string) string {
	left := fmt.Sprintf("%.3g", lo)
	right := fmt.Sprintf("%.3g", hi)
	if unit != "" {
		right += " " + unit
	}
	gap := width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	return left + strings.Repeat(" ", gap) + right
}

// OmissionBoxplots renders the Figure 17 data as boxplot charts, one chart
// per (application, prompt).
func OmissionBoxplots(points []OmissionPoint, width int) string {
	type key struct {
		app  string
		mode string
	}
	grouped := map[key][]BoxplotRow{}
	var order []key
	for _, p := range points {
		k := key{p.App, p.Mode.String()}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], BoxplotRow{
			Label:   fmt.Sprintf("%d steps", p.Steps),
			Summary: p.Summary,
		})
	}
	var sb strings.Builder
	for _, k := range order {
		sb.WriteString(BoxplotChart(fmt.Sprintf("%s — %s (omission ratio)", k.app, k.mode), "", grouped[k], width))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TimingBoxplots renders the Figure 18 data as boxplot charts, one chart
// per application.
func TimingBoxplots(points []TimingPoint, width int) string {
	grouped := map[string][]BoxplotRow{}
	var order []string
	for _, p := range points {
		if _, ok := grouped[p.App]; !ok {
			order = append(order, p.App)
		}
		grouped[p.App] = append(grouped[p.App], BoxplotRow{
			Label:   fmt.Sprintf("%d steps", p.Steps),
			Summary: p.Summary,
		})
	}
	var sb strings.Builder
	for _, app := range order {
		sb.WriteString(BoxplotChart(fmt.Sprintf("%s (running time)", app), "ms", grouped[app], width))
		sb.WriteByte('\n')
	}
	return sb.String()
}
