package figures

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/synth"
)

// ServingPoint is one workload's cold/warm explain-all measurement: the
// full serving request (reason + explain every answer) against a cache-cold
// pipeline versus the memoized serving path (result cache, proof-closure
// memo, explanation memo).
type ServingPoint struct {
	// Workload names the measured workload (an app registry name, or the
	// synthetic scaled instance).
	Workload string `json:"workload"`
	// App is the application registry name the workload runs on.
	App string `json:"app"`
	// Facts is the extensional database size of the request.
	Facts int `json:"facts"`
	// Answers is the number of explained answers per request.
	Answers int `json:"answers"`
	// ColdSeconds is the mean uncached request latency.
	ColdSeconds float64 `json:"coldSeconds"`
	// WarmSeconds is the mean cached request latency.
	WarmSeconds float64 `json:"warmSeconds"`
	// Speedup is ColdSeconds / WarmSeconds.
	Speedup float64 `json:"speedup"`
}

// servingWorkloads are the measured serving requests: every bundled
// application on its representative scenario, plus a scaled synthetic
// control chain as the largest instance (60 hops: ~1.8k answers sharing
// one deep ownership sub-proof).
func servingWorkloads() ([]struct {
	name  string
	app   string
	facts []ast.Atom
}, error) {
	type workload = struct {
		name  string
		app   string
		facts []ast.Atom
	}
	var out []workload
	for _, a := range apps.All() {
		out = append(out, workload{name: a.Name, app: a.Name, facts: a.Scenario()})
	}
	sc := synth.ControlChain(60, 7)
	out = append(out, workload{name: "control-chain-60", app: sc.App, facts: sc.Facts})
	return out, nil
}

// ServingLatency measures cold versus warm explain-all serving latency for
// every workload. Cold runs each request against a cache-less pipeline:
// the chase, proof extraction, template mapping and verbalization are all
// recomputed (the pre-memoization serving cost). Warm repeats the
// identical request against a pipeline with the result cache and
// explanation memo enabled, after one priming request. Both paths produce
// byte-identical explanations — the differential suites in core and
// server enforce it — so the figure isolates pure serving overhead.
func ServingLatency() (string, []ServingPoint, error) {
	const (
		coldIters = 3
		warmIters = 25
	)
	workloads, err := servingWorkloads()
	if err != nil {
		return "", nil, err
	}
	var points []ServingPoint
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %12s %12s %10s\n",
		"workload", "facts", "answers", "cold ms", "warm ms", "speedup")
	for _, w := range workloads {
		app, err := apps.ByName(w.app)
		if err != nil {
			return "", nil, err
		}
		coldPipe, err := app.Pipeline(applyWorkers(core.Config{}))
		if err != nil {
			return "", nil, fmt.Errorf("serving: %s: %w", w.name, err)
		}
		warmPipe, err := app.Pipeline(applyWorkers(core.Config{
			ResultCacheSize:      8,
			ExplanationCacheSize: 1 << 14,
		}))
		if err != nil {
			return "", nil, fmt.Errorf("serving: %s: %w", w.name, err)
		}
		request := func(p *core.Pipeline) (int, int, error) {
			res, err := p.Reason(w.facts...)
			if err != nil {
				return 0, 0, err
			}
			es, err := p.ExplainAll(res)
			if err != nil {
				return 0, 0, err
			}
			return res.Store.Len(), len(es), err
		}

		start := time.Now()
		var facts, answers int
		for i := 0; i < coldIters; i++ {
			if facts, answers, err = request(coldPipe); err != nil {
				return "", nil, fmt.Errorf("serving: %s cold: %w", w.name, err)
			}
		}
		cold := time.Since(start).Seconds() / coldIters

		if _, _, err := request(warmPipe); err != nil { // prime every cache
			return "", nil, fmt.Errorf("serving: %s prime: %w", w.name, err)
		}
		start = time.Now()
		for i := 0; i < warmIters; i++ {
			if _, _, err := request(warmPipe); err != nil {
				return "", nil, fmt.Errorf("serving: %s warm: %w", w.name, err)
			}
		}
		warm := time.Since(start).Seconds() / warmIters

		pt := ServingPoint{
			Workload:    w.name,
			App:         w.app,
			Facts:       facts,
			Answers:     answers,
			ColdSeconds: cold,
			WarmSeconds: warm,
			Speedup:     cold / warm,
		}
		points = append(points, pt)
		fmt.Fprintf(&sb, "%-20s %8d %8d %12.3f %12.3f %9.1fx\n",
			pt.Workload, pt.Facts, pt.Answers, cold*1e3, warm*1e3, pt.Speedup)
	}
	return sb.String(), points, nil
}
