package figures

import (
	"strings"
	"testing"
)

// TestColumnarThroughputTiny runs the columnar benchmark at a toy scale: the
// point builder itself asserts that all three engines derive the same fact
// count, so passing means the measured workloads are engine-independent.
func TestColumnarThroughputTiny(t *testing.T) {
	table, points, err := columnarThroughput(6, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, pt := range points {
		if pt.Facts == 0 {
			t.Fatalf("%s: no extensional facts", pt.Workload)
		}
		if pt.Derived <= 0 {
			t.Fatalf("%s: nothing derived", pt.Workload)
		}
		if pt.BatchSeconds <= 0 || pt.FrameSeconds <= 0 || pt.LegacySeconds <= 0 {
			t.Fatalf("%s: non-positive timing: %+v", pt.Workload, pt)
		}
		if !strings.Contains(table, pt.Workload) {
			t.Fatalf("table missing workload %s:\n%s", pt.Workload, table)
		}
	}
}
