package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); !almost(s, 2.13809, 1e-4) { // sample stddev
		t.Errorf("StdDev = %v", s)
	}
	if m := Median(xs); !almost(m, 4.5, 1e-12) {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); !almost(m, 2, 1e-12) {
		t.Errorf("odd Median = %v", m)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs not zero")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-value stddev not zero")
	}
}

func TestSummary(t *testing.T) {
	s := Summary([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("Summary = %+v", s)
	}
	one := Summary([]float64{7})
	if one.Min != 7 || one.Q1 != 7 || one.Median != 7 || one.Q3 != 7 || one.Max != 7 {
		t.Errorf("singleton Summary = %+v", one)
	}
	if (Summary(nil) != FiveNum{}) {
		t.Error("empty Summary not zero")
	}
}

// TestWilcoxonKnownExample: classic textbook example (Wilcoxon 1945 style).
// x and y differ systematically; the test must reject at 5%.
func TestWilcoxonSystematicDifference(t *testing.T) {
	var x, y []float64
	for i := 0; i < 30; i++ {
		x = append(x, float64(i%5)+2) // 2..6
		y = append(y, float64(i%5))   // 0..4, always 2 lower
	}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.05) {
		t.Errorf("systematic difference not significant: %+v", r)
	}
	if r.WMinus != 0 {
		t.Errorf("WMinus = %v, want 0", r.WMinus)
	}
}

// TestWilcoxonNoDifference: symmetric noise around zero difference must not
// be significant.
func TestWilcoxonNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var x, y []float64
	for i := 0; i < 56; i++ { // the paper's per-method sample size
		base := float64(1 + rng.Intn(5))
		x = append(x, base+float64(rng.Intn(3))-1)
		y = append(y, base+float64(rng.Intn(3))-1)
	}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant(0.05) {
		t.Errorf("pure noise significant: %+v", r)
	}
	if r.P < 0 || r.P > 1 {
		t.Errorf("p out of range: %v", r.P)
	}
}

func TestWilcoxonHandCheckedSmall(t *testing.T) {
	// Differences: +1, +2, +3, -4, +5 => |d| ranks 1..5.
	// W+ = 1+2+3+5 = 11, W- = 4.
	x := []float64{2, 3, 4, 1, 6}
	y := []float64{1, 1, 1, 5, 1}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.WPlus != 11 || r.WMinus != 4 {
		t.Errorf("W+ = %v, W- = %v; want 11, 4", r.WPlus, r.WMinus)
	}
	if r.N != 5 {
		t.Errorf("N = %d", r.N)
	}
	if r.Significant(0.05) {
		t.Errorf("n=5 mild difference significant: p=%v", r.P)
	}
}

func TestWilcoxonDropsZeros(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 2, 5}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 2 {
		t.Errorf("N = %d, want 2 (zeros dropped)", r.N)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WilcoxonSignedRank([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("all-zero differences accepted")
	}
}

func TestWilcoxonTies(t *testing.T) {
	// Many tied |d| values exercise mid-ranks and tie correction.
	x := []float64{2, 2, 2, 2, 1, 1, 1, 1, 3, 3}
	y := []float64{1, 1, 1, 1, 2, 2, 2, 2, 1, 1}
	r, err := WilcoxonSignedRank(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// 8 differences of |1| (4 up, 4 down) and 2 of |2| (up): W+ and W-
	// must sum to n(n+1)/2 = 55.
	if !almost(r.WPlus+r.WMinus, 55, 1e-9) {
		t.Errorf("rank sum = %v, want 55", r.WPlus+r.WMinus)
	}
}

// Property: W+ + W- always equals n(n+1)/2, and p in [0,1].
func TestWilcoxonRankSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(5) + 1)
			y[i] = float64(rng.Intn(5) + 1)
		}
		r, err := WilcoxonSignedRank(x, y)
		if err != nil {
			return true // all-zero differences: acceptable
		}
		nf := float64(r.N)
		return almost(r.WPlus+r.WMinus, nf*(nf+1)/2, 1e-9) && r.P >= 0 && r.P <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the test is symmetric: swapping x and y swaps W+ and W- and
// preserves p.
func TestWilcoxonSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(6))
			y[i] = float64(rng.Intn(6))
		}
		a, errA := WilcoxonSignedRank(x, y)
		b, errB := WilcoxonSignedRank(y, x)
		if errA != nil || errB != nil {
			return (errA == nil) == (errB == nil)
		}
		return almost(a.WPlus, b.WMinus, 1e-9) && almost(a.P, b.P, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
