// Package stats implements the statistical machinery of the paper's expert
// user study (Section 6.2): descriptive statistics, five-number summaries
// for boxplots, and the two-sided Wilcoxon signed-rank test used to compare
// Likert scores of paired explanation methods.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; it is 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator); it is 0
// for fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs; it is 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// FiveNum is the five-number summary drawn as a boxplot.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
}

// Summary computes the five-number summary of xs using linear quartile
// interpolation.
func Summary(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return FiveNum{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilcoxonResult is the outcome of a two-sided Wilcoxon signed-rank test.
type WilcoxonResult struct {
	// N is the number of non-zero paired differences used.
	N int
	// WPlus and WMinus are the rank sums of positive and negative
	// differences.
	WPlus, WMinus float64
	// Z is the normal-approximation statistic (with continuity and tie
	// correction).
	Z float64
	// P is the two-sided p-value.
	P float64
}

// Significant reports whether the difference is significant at the given
// level (e.g. 0.05).
func (r WilcoxonResult) Significant(alpha float64) bool { return r.P < alpha }

// WilcoxonSignedRank runs the paired two-sided Wilcoxon signed-rank test on
// equal-length samples x and y, using the normal approximation with
// mid-ranks for ties, a tie-corrected variance and a 0.5 continuity
// correction. Zero differences are dropped, following the standard Wilcoxon
// procedure. It errors on mismatched lengths or when every pair is tied.
func WilcoxonSignedRank(x, y []float64) (WilcoxonResult, error) {
	if len(x) != len(y) {
		return WilcoxonResult{}, fmt.Errorf("stats: sample sizes differ: %d vs %d", len(x), len(y))
	}
	type diff struct {
		abs  float64
		sign int
	}
	var ds []diff
	for i := range x {
		d := x[i] - y[i]
		if d == 0 {
			continue
		}
		s := 1
		if d < 0 {
			s = -1
		}
		ds = append(ds, diff{math.Abs(d), s})
	}
	n := len(ds)
	if n == 0 {
		return WilcoxonResult{}, fmt.Errorf("stats: all paired differences are zero")
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].abs < ds[j].abs })

	// Mid-ranks with tie groups.
	ranks := make([]float64, n)
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && ds[j].abs == ds[i].abs {
			j++
		}
		// positions i..j-1 share the mid-rank.
		mid := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	wPlus, wMinus := 0.0, 0.0
	for i, d := range ds {
		if d.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}

	nf := float64(n)
	mu := nf * (nf + 1) / 4
	variance := nf*(nf+1)*(2*nf+1)/24 - tieCorrection/48
	if variance <= 0 {
		return WilcoxonResult{}, fmt.Errorf("stats: degenerate variance (all differences tied)")
	}
	sigma := math.Sqrt(variance)
	// Continuity correction towards the mean.
	d := wPlus - mu
	switch {
	case d > 0.5:
		d -= 0.5
	case d < -0.5:
		d += 0.5
	default:
		d = 0
	}
	z := d / sigma
	p := 2 * normalSF(math.Abs(z))
	if p > 1 {
		p = 1
	}
	return WilcoxonResult{N: n, WPlus: wPlus, WMinus: wMinus, Z: z, P: p}, nil
}

// normalSF is the standard normal survival function 1 - Φ(z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
