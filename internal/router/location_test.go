package router

// Tests for the session-location cache, the capped failover backoff, the
// client-cancellation health fix, and the proactive rebalancer — the
// router half of the restore-storm work.

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// workerFor returns which fake worker has served the given session id.
func workerFor(t *testing.T, id string, workers ...*fakeWorker) *fakeWorker {
	t.Helper()
	var owner *fakeWorker
	for _, fw := range workers {
		if fw.seen(id) > 0 {
			if owner != nil {
				t.Fatalf("session %s served by two workers", id)
			}
			owner = fw
		}
	}
	if owner == nil {
		t.Fatalf("session %s served by no worker", id)
	}
	return owner
}

// TestLocationCacheHit: the first keyed request misses and learns the
// answering worker; repeats hit and keep landing there.
func TestLocationCacheHit(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{}, w1, w2)

	postJSON(t, ts.URL+"/reason", `{"session":"loc-1"}`, nil)
	st := rt.Snapshot()
	if st.LocationCache.Misses == 0 || st.LocationCache.Len != 1 {
		t.Fatalf("after first request: %+v, want a miss and one entry", st.LocationCache)
	}
	owner := workerFor(t, "loc-1", w1, w2)
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/reason", `{"session":"loc-1"}`, nil)
	}
	st = rt.Snapshot()
	if st.LocationCache.Hits < 3 {
		t.Errorf("hits = %d, want >= 3", st.LocationCache.Hits)
	}
	if owner.seen("loc-1") != 4 {
		t.Errorf("owner saw %d requests, want all 4", owner.seen("loc-1"))
	}
}

// TestLocationCacheStaleFailover: a cached entry pointing at a dead worker
// is invalidated on the transport failure, the request fails over, and the
// cache relearns the surviving worker.
func TestLocationCacheStaleFailover(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{HealthFailures: 1, RetryBackoff: time.Millisecond}, w1, w2)

	postJSON(t, ts.URL+"/reason", `{"session":"loc-1"}`, nil)
	owner := workerFor(t, "loc-1", w1, w2)
	survivor := w1
	if owner == w1 {
		survivor = w2
	}
	owner.ts.Close()

	resp := postJSON(t, ts.URL+"/reason", `{"session":"loc-1"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after owner death: status %d", resp.StatusCode)
	}
	st := rt.Snapshot()
	if st.LocationCache.Invalidations == 0 {
		t.Error("stale cache entry survived a transport failure")
	}
	if survivor.seen("loc-1") != 1 {
		t.Fatalf("survivor saw %d requests, want 1", survivor.seen("loc-1"))
	}
	// The cache now points at the survivor: the next request is a hit.
	before := st.LocationCache.Hits
	postJSON(t, ts.URL+"/reason", `{"session":"loc-1"}`, nil)
	st = rt.Snapshot()
	if st.LocationCache.Hits != before+1 {
		t.Errorf("hits = %d, want %d (relearned entry)", st.LocationCache.Hits, before+1)
	}
	if survivor.seen("loc-1") != 2 {
		t.Errorf("survivor saw %d requests, want 2", survivor.seen("loc-1"))
	}
}

// TestLocationCacheDrainInvalidation: draining a worker sweeps every cache
// entry pointing at it, so drained workers stop receiving cached traffic
// immediately.
func TestLocationCacheDrainInvalidation(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{}, w1, w2)

	// Populate the cache until both workers own at least one entry.
	var onW2 string
	for i := 0; i < 50 && onW2 == ""; i++ {
		id := fmt.Sprintf("drain-%d", i)
		postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), nil)
		if w2.seen(id) > 0 {
			onW2 = id
		}
	}
	if onW2 == "" {
		t.Skip("hash spread gave w2 no sessions")
	}
	rt.setDraining(w2.ts.URL, true)
	if st := rt.Snapshot(); st.LocationCache.Invalidations == 0 {
		t.Error("drain did not invalidate the drained worker's cache entries")
	}
	before := w2.seen(onW2)
	postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, onW2), nil)
	if got := w2.seen(onW2); got != before {
		t.Errorf("draining worker served %d cached requests", got-before)
	}
}

// TestLocationCacheDisabled: LocationCache < 0 turns the cache off without
// breaking routing.
func TestLocationCacheDisabled(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{LocationCache: -1}, w1, w2)
	for i := 0; i < 5; i++ {
		if resp := postJSON(t, ts.URL+"/reason", `{"session":"x"}`, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	st := rt.Snapshot()
	if st.LocationCache.Hits != 0 || st.LocationCache.Len != 0 || st.LocationCache.Cap != 0 {
		t.Errorf("disabled cache recorded activity: %+v", st.LocationCache)
	}
}

// TestAttemptBackoffCapped: the failover pause doubles per attempt but can
// never exceed maxRetryBackoff — the old shift (backoff << attempt-1)
// overflowed into negative or multi-hour pauses for high attempt counts.
func TestAttemptBackoffCapped(t *testing.T) {
	w1 := newFakeWorker(t)
	rt, _ := newTestRouter(t, Options{RetryBackoff: 25 * time.Millisecond}, w1)
	prev := time.Duration(0)
	for attempt := 1; attempt <= 200; attempt++ {
		d := rt.attemptBackoff(attempt)
		if d <= 0 {
			t.Fatalf("attemptBackoff(%d) = %v, overflowed", attempt, d)
		}
		if d < prev {
			t.Fatalf("attemptBackoff(%d) = %v < previous %v, not monotone", attempt, d, prev)
		}
		if d > maxRetryBackoff {
			t.Fatalf("attemptBackoff(%d) = %v exceeds cap %v", attempt, d, maxRetryBackoff)
		}
		prev = d
	}
	if got := rt.attemptBackoff(1); got != 25*time.Millisecond {
		t.Errorf("attemptBackoff(1) = %v, want the configured base", got)
	}
	if got := rt.attemptBackoff(64); got != maxRetryBackoff {
		t.Errorf("attemptBackoff(64) = %v, want the cap %v", got, maxRetryBackoff)
	}
	// A configured base above the cap is clamped too.
	rtBig, _ := newTestRouter(t, Options{RetryBackoff: 10 * time.Second}, w1)
	if got := rtBig.attemptBackoff(1); got != maxRetryBackoff {
		t.Errorf("oversized base: attemptBackoff(1) = %v, want %v", got, maxRetryBackoff)
	}
}

// TestClientCancelNotWorkerFailure: a request abandoned by the client must
// not count toward the answering worker's failure threshold — under the
// old accounting a burst of impatient clients could eject a healthy
// worker.
func TestClientCancelNotWorkerFailure(t *testing.T) {
	w1 := newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{HealthFailures: 1}, w1)

	w1.mu.Lock()
	w1.delay = 300 * time.Millisecond
	w1.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/reason",
		strings.NewReader(`{"session":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request unexpectedly completed before the client deadline")
	}
	// Let the router handler observe the canceled proxy attempt.
	time.Sleep(400 * time.Millisecond)

	st := rt.Snapshot()
	ws := st.Workers[w1.ts.URL]
	if !ws.Healthy || ws.Failures != 0 {
		t.Errorf("worker penalized for a client cancellation: %+v", ws)
	}
	w1.mu.Lock()
	w1.delay = 0
	w1.mu.Unlock()
	if resp := postJSON(t, ts.URL+"/reason", `{"session":"x"}`, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("worker unusable after client cancellation: status %d", resp.StatusCode)
	}
}

// TestProactiveRebalance: sessions resident on the wrong worker migrate to
// their ring owner through /release + /prewarm when a rebalance round is
// kicked, and the location cache learns their new home.
func TestProactiveRebalance(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, _ := newTestRouter(t, Options{Rebalance: true, HealthInterval: time.Hour}, w1, w2)
	rt.Start()
	defer rt.Close()

	// Park 20 sessions on w1, regardless of who the ring says owns them.
	misplaced := 0
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("m-%d", i)
		w1.mu.Lock()
		w1.resident[id] = true
		w1.mu.Unlock()
		if owner, ok := rt.ring.Lookup(id); ok && owner == w2.ts.URL {
			misplaced++
		}
	}
	if misplaced == 0 {
		t.Skip("hash spread gave w2 no sessions")
	}
	rt.maybeRebalance()

	deadline := time.Now().Add(5 * time.Second)
	for rt.Snapshot().MigratedSessions < uint64(misplaced) {
		if time.Now().After(deadline) {
			t.Fatalf("migrated %d of %d misplaced sessions", rt.Snapshot().MigratedSessions, misplaced)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := rt.Snapshot()
	if st.Rebalances == 0 {
		t.Error("no rebalance round recorded")
	}
	// Every session now lives with its ring owner, and nowhere else.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("m-%d", i)
		owner, _ := rt.ring.Lookup(id)
		w1.mu.Lock()
		on1 := w1.resident[id]
		w1.mu.Unlock()
		w2.mu.Lock()
		on2 := w2.resident[id]
		w2.mu.Unlock()
		if on1 != (owner == w1.ts.URL) || on2 != (owner == w2.ts.URL) {
			t.Errorf("session %s: owner %s, resident w1=%v w2=%v", id, owner, on1, on2)
		}
	}
	// Migrated sessions were planted in the location cache.
	if rt.locations == nil || rt.locations.Len() < misplaced {
		t.Errorf("location cache holds %d entries, want >= %d migrated", rt.locations.Len(), misplaced)
	}
}

// TestRebalanceRepointsCacheWhenPrewarmFails: once a chunk's release has
// succeeded, the old host's handles are closed, so the location cache must
// point at the new owner even if the prewarm step fails — a stale entry
// would route the next touch back to the old host and resurrect the
// session there, undoing the migration.
func TestRebalanceRepointsCacheWhenPrewarmFails(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{Rebalance: true, HealthInterval: time.Hour}, w1, w2)
	rt.Start()
	defer rt.Close()

	// Find a session the ring assigns to w2, touch it so the cache learns
	// w1 (resident there), then park it on w1.
	var id string
	for i := 0; i < 200 && id == ""; i++ {
		candidate := fmt.Sprintf("pf-%d", i)
		if owner, ok := rt.ring.Lookup(candidate); ok && owner == w2.ts.URL {
			id = candidate
		}
	}
	if id == "" {
		t.Skip("hash spread gave w2 no keys")
	}
	w1.mu.Lock()
	w1.resident[id] = true
	w1.mu.Unlock()
	rt.locations.Put(id, w1.ts.URL)

	w2.mu.Lock()
	w2.failPrewarm = true
	w2.mu.Unlock()
	rt.maybeRebalance()

	deadline := time.Now().Add(5 * time.Second)
	for {
		w1.mu.Lock()
		released := !w1.resident[id]
		w1.mu.Unlock()
		if released {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebalance never released the misplaced session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The release succeeded and the prewarm failed; the cache must not
	// still point at the old host.
	waitFor := time.Now().Add(5 * time.Second)
	for {
		loc, ok := rt.locations.Get(id)
		if ok && loc == w2.ts.URL {
			break
		}
		if !ok {
			t.Fatalf("location cache entry for %s dropped, want repointed to the owner", id)
		}
		if time.Now().After(waitFor) {
			t.Fatalf("location cache still points %s at %s, want %s", id, loc, w2.ts.URL)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The next touch routes to the ring owner, not the released host.
	before := w1.seen(id)
	postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), nil)
	if got := w1.seen(id); got != before {
		t.Errorf("released host served %d touches after migration", got-before)
	}
	if w2.seen(id) == 0 {
		t.Error("ring owner never saw the post-migration touch")
	}
}
