package router

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lru"
)

// Options configures a Router.
type Options struct {
	// Workers are the base URLs of the serving workers (e.g.
	// "http://127.0.0.1:8081"). At least one is required.
	Workers []string
	// VNodes is the virtual-node count per worker (0 = DefaultVNodes).
	VNodes int
	// HealthInterval is how often each worker's /stats is polled (0 = 1s).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive failures (health probes or
	// proxied requests) eject a worker from the ring (0 = 3). A single
	// probe success re-admits it.
	HealthFailures int
	// Retries bounds how many distinct workers one request may be offered
	// to before answering 502 (0 = 3, clamped to the worker count).
	Retries int
	// RetryBackoff is the pause before the second attempt; it doubles per
	// further attempt, capped at maxRetryBackoff (0 = 25ms).
	RetryBackoff time.Duration
	// LocationCache bounds the session-location cache: the router remembers
	// which worker actually answered for each session key and routes there
	// first, skipping the failover walk to a restored session's new home.
	// Entries are invalidated on transport failure, worker ejection and
	// drain. 0 selects DefaultLocationCache; negative disables the cache.
	LocationCache int
	// Rebalance enables proactive session migration on membership change:
	// when a worker joins or recovers, sessions whose ring owner changed
	// are checkpointed and released on their current host and prewarmed on
	// the new owner, instead of a restore stampede on first touch.
	Rebalance bool
	// Client issues the proxied requests. The default has a short dial
	// timeout and no overall deadline, so a dead worker fails fast while a
	// long-running reasoning request is never cut off mid-chase.
	Client *http.Client
	// Logf sinks diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Router is the sharding reverse proxy: it owns a consistent-hash Ring of
// workers, extracts the session key from each request, and forwards the
// request to the key's owner. Transport-level failures walk the key's
// failover order (the next distinct workers clockwise on the ring) with
// exponential backoff, and repeated failures eject the worker from the
// ring until a health probe sees it answer again — at which point the
// sessions it owned have been restored by their new owners from the shared
// durable directory.
//
// New sessions are named by the router (an assignId injected into the
// /reason body) rather than by the worker: the id must be fixed before the
// ring lookup that picks the worker, and worker-generated s<N> ids would
// collide across workers sharing a WAL directory.
type Router struct {
	ring     *Ring
	client   *http.Client
	logf     func(string, ...any)
	retries  int
	backoff  time.Duration
	interval time.Duration
	maxFail  int

	idPrefix string
	idNext   atomic.Uint64

	mu      sync.Mutex
	workers map[string]*workerState

	// locations is the bounded session-location cache (nil when disabled):
	// session key → the worker that last answered for it. A hit routes
	// there first; entries die on transport failure, ejection and drain.
	locations        *lru.Cache[string, string]
	locHits          atomic.Uint64
	locMisses        atomic.Uint64
	locInvalidations atomic.Uint64

	// Rebalancing on membership change (see rebalance.go): kicks coalesce
	// through a 1-buffered channel into a single migration goroutine.
	rebalanceOn   bool
	rebalanceKick chan struct{}
	rebalanceDone chan struct{}
	rebalances    atomic.Uint64
	migrated      atomic.Uint64

	requests  atomic.Uint64
	retried   atomic.Uint64
	failovers atomic.Uint64
	noRoute   atomic.Uint64
	badGates  atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// DefaultLocationCache bounds the session-location cache: two short
// strings per entry, so the default is generous.
const DefaultLocationCache = 65536

// workerState is the router's health view of one worker. Guarded by
// Router.mu.
type workerState struct {
	url      string
	healthy  bool
	draining bool
	failures int // consecutive
	proxied  uint64
	lastErr  string
}

// New validates the worker list and returns a router with every worker
// initially in the ring; call Start to begin health probing.
func New(opts Options) (*Router, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("router: no workers")
	}
	if opts.VNodes <= 0 {
		opts.VNodes = DefaultVNodes
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = time.Second
	}
	if opts.HealthFailures <= 0 {
		opts.HealthFailures = 3
	}
	if opts.Retries <= 0 {
		opts.Retries = 3
	}
	if opts.Retries > len(opts.Workers) {
		opts.Retries = len(opts.Workers)
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	if opts.LocationCache == 0 {
		opts.LocationCache = DefaultLocationCache
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	var seed [4]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("router: id seed: %w", err)
	}
	rt := &Router{
		ring:          NewRing(opts.VNodes),
		client:        opts.Client,
		logf:          opts.Logf,
		retries:       opts.Retries,
		backoff:       opts.RetryBackoff,
		interval:      opts.HealthInterval,
		maxFail:       opts.HealthFailures,
		idPrefix:      "g" + hex.EncodeToString(seed[:]) + "-",
		workers:       map[string]*workerState{},
		rebalanceOn:   opts.Rebalance,
		rebalanceKick: make(chan struct{}, 1),
		rebalanceDone: make(chan struct{}),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	if opts.LocationCache > 0 {
		rt.locations = lru.New[string, string](opts.LocationCache)
	}
	for _, w := range opts.Workers {
		u, err := url.Parse(w)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: worker %q is not an absolute URL", w)
		}
		base := strings.TrimRight(u.String(), "/")
		if _, dup := rt.workers[base]; dup {
			return nil, fmt.Errorf("router: duplicate worker %s", base)
		}
		rt.workers[base] = &workerState{url: base, healthy: true}
		rt.ring.Add(base)
	}
	return rt, nil
}

// Start launches the health-probe and rebalance loops; Close stops them.
func (rt *Router) Start() {
	go rt.healthLoop()
	go rt.rebalanceLoop()
}

// Close stops the health and rebalance loops and waits for them to exit.
// Safe only after Start; a router that was never started needs no Close.
func (rt *Router) Close() {
	close(rt.stop)
	<-rt.done
	<-rt.rebalanceDone
}

// NewSessionID returns a fresh router-assigned session id: unique per
// router instance (random prefix plus counter) and within the server's
// assignId grammar.
func (rt *Router) NewSessionID() string {
	return rt.idPrefix + strconv.FormatUint(rt.idNext.Add(1), 36)
}

// Handler returns the proxy routes.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /reason", rt.handleReason)
	mux.HandleFunc("POST /facts", rt.handleFacts)
	mux.HandleFunc("GET /explain", rt.handleQueryKeyed("session"))
	mux.HandleFunc("GET /apps", rt.handleAnyWorker)
	mux.HandleFunc("GET /paths", rt.handleAnyWorker)
	mux.HandleFunc("GET /stats", rt.handleStats)
	return mux
}

// maxBody bounds proxied request bodies; matches the order of magnitude a
// worker accepts for fact programs.
const maxBody = 8 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return nil, false
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body over %d bytes", maxBody))
		return nil, false
	}
	return body, true
}

// handleReason routes the tri-modal /reason endpoint. A session read names
// its key; a new-session request is keyed by its assignId, which the
// router mints and injects when the client did not supply one — the id
// must exist before the ring lookup that picks the worker.
func (rt *Router) handleReason(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Session  string `json:"session"`
		AssignID string `json:"assignId"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		return
	}
	key := req.Session
	if key == "" {
		key = req.AssignID
	}
	if key == "" {
		key = rt.NewSessionID()
		injected, err := injectField(body, "assignId", key)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		body = injected
	}
	rt.forward(w, r, key, body, true)
}

func (rt *Router) handleFacts(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing session"))
		return
	}
	rt.forward(w, r, req.Session, body, true)
}

// handleQueryKeyed routes GET endpoints whose session key is a query
// parameter.
func (rt *Router) handleQueryKeyed(param string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get(param)
		if key == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing %s parameter", param))
			return
		}
		rt.forward(w, r, key, nil, true)
	}
}

// handleAnyWorker serves session-less metadata endpoints from whichever
// healthy worker the ring assigns a rotating key — cheap spreading without
// tracking per-worker load.
func (rt *Router) handleAnyWorker(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, "meta#"+strconv.FormatUint(rt.idNext.Add(1), 10), nil, false)
}

// injectField inserts a string field into a serialized JSON object without
// re-marshaling it (client-chosen formatting and number precision survive
// byte-for-byte).
func injectField(body []byte, field, value string) ([]byte, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return nil, fmt.Errorf("request body is not a JSON object")
	}
	head := len(body) - len(trimmed) + 1 // keep everything through '{'
	rest := bytes.TrimLeft(trimmed[1:], " \t\r\n")
	sep := ","
	if len(rest) > 0 && rest[0] == '}' {
		sep = ""
	}
	quoted, err := json.Marshal(value)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Grow(len(body) + len(field) + len(quoted) + 4)
	out.Write(body[:head])
	fmt.Fprintf(&out, "%q:%s%s", field, quoted, sep)
	out.Write(body[head:])
	return out.Bytes(), nil
}

// forward proxies the request to the key's owner, walking the ring's
// failover order on transport errors. An HTTP response of any status is
// the worker's answer and is relayed as-is — only failing to get a
// response at all moves to the next worker. With learn set the session-
// location cache participates: a usable cached location is tried before
// the ring order (the session is already resident there), and the worker
// that answers becomes the key's new cached location. Session-less keys
// (the rotating metadata spreader) must pass learn=false so they never
// pollute the cache.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte, learn bool) {
	rt.requests.Add(1)
	candidates := rt.ring.LookupN(key, rt.retries)
	cached := ""
	if learn && rt.locations != nil {
		if loc, ok := rt.locations.Get(key); ok && rt.routable(loc) {
			rt.locHits.Add(1)
			cached = loc
			if len(candidates) == 0 || candidates[0] != loc {
				merged := make([]string, 0, len(candidates)+1)
				merged = append(merged, loc)
				for _, c := range candidates {
					if c != loc {
						merged = append(merged, c)
					}
				}
				candidates = merged
			}
		} else {
			if ok {
				// The cached worker left service (ejected or draining):
				// drop the stale entry and fall back to the ring order.
				rt.locations.Remove(key)
				rt.locInvalidations.Add(1)
			}
			rt.locMisses.Add(1)
		}
	}
	if len(candidates) == 0 {
		rt.noRoute.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy workers"))
		return
	}
	var lastErr error
	for attempt, worker := range candidates {
		if attempt > 0 {
			rt.retried.Add(1)
			select {
			case <-time.After(rt.attemptBackoff(attempt)):
			case <-r.Context().Done():
				writeError(w, http.StatusServiceUnavailable, r.Context().Err())
				return
			}
		}
		resp, err := rt.do(worker, r, body)
		if err != nil {
			if r.Context().Err() != nil {
				// The client hung up or its deadline passed mid-proxy: the
				// failure is this request's, not the worker's — counting it
				// toward ejection would let one slow client take a healthy
				// worker out of the ring.
				writeError(w, http.StatusServiceUnavailable, r.Context().Err())
				return
			}
			lastErr = err
			rt.noteFailure(worker, err)
			if worker == cached && rt.locations != nil {
				rt.locations.Remove(key)
				rt.locInvalidations.Add(1)
			}
			continue
		}
		rt.noteSuccess(worker)
		if attempt > 0 {
			rt.failovers.Add(1)
		}
		if learn && rt.locations != nil {
			rt.locations.Put(key, worker)
		}
		defer resp.Body.Close()
		copyResponse(w, resp)
		return
	}
	rt.badGates.Add(1)
	writeError(w, http.StatusBadGateway, fmt.Errorf("all %d candidate workers failed; last: %v", len(candidates), lastErr))
}

// maxRetryBackoff caps the exponential failover backoff: rt.backoff <<
// (attempt-1) is unbounded — with enough candidate workers the shift
// overflows into a negative or multi-hour pause.
const maxRetryBackoff = 2 * time.Second

// attemptBackoff is the capped exponential pause before the given attempt
// (attempt >= 1): backoff doubles per further attempt up to
// maxRetryBackoff, with no overflowing shift.
func (rt *Router) attemptBackoff(attempt int) time.Duration {
	d := rt.backoff
	for i := 1; i < attempt; i++ {
		if d >= maxRetryBackoff {
			return maxRetryBackoff
		}
		d <<= 1
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// routable reports whether a worker is in service: known, healthy and not
// draining.
func (rt *Router) routable(worker string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ws := rt.workers[worker]
	return ws != nil && ws.healthy && !ws.draining
}

// invalidateWorker drops every location-cache entry pointing at a worker
// that left service (ejection or drain), so no request pays a doomed first
// hop at it. The sweep runs under one cache lock without touching recency
// or hit/miss accounting — it fires exactly when the tier is degraded, so
// it must not contend with request-path lookups entry by entry.
func (rt *Router) invalidateWorker(worker string) {
	if rt.locations == nil {
		return
	}
	n := rt.locations.RemoveFunc(func(_, loc string) bool { return loc == worker })
	rt.locInvalidations.Add(uint64(n))
}

// do issues one proxied request. Any HTTP response is success at this
// layer; the error return means the worker could not be reached.
func (rt *Router) do(worker string, r *http.Request, body []byte) (*http.Response, error) {
	target := worker + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		target += "?" + q
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, target, rd)
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// noteFailure records a consecutive failure against a worker; at the
// threshold the worker leaves the ring, and the sessions it owned hash to
// their successors, which restore them from the shared durable directory.
func (rt *Router) noteFailure(worker string, err error) {
	rt.mu.Lock()
	ws := rt.workers[worker]
	if ws == nil {
		rt.mu.Unlock()
		return
	}
	ws.failures++
	ws.lastErr = err.Error()
	ejected := false
	failures := ws.failures
	if ws.healthy && ws.failures >= rt.maxFail {
		ws.healthy = false
		rt.ring.Remove(worker)
		ejected = true
	}
	rt.mu.Unlock()
	if ejected {
		rt.logf("router: worker %s ejected after %d consecutive failures: %v", worker, failures, err)
		rt.invalidateWorker(worker)
	}
}

func (rt *Router) noteSuccess(worker string) {
	rt.mu.Lock()
	ws := rt.workers[worker]
	if ws == nil {
		rt.mu.Unlock()
		return
	}
	ws.failures = 0
	ws.proxied++
	readmitted := false
	if !ws.healthy {
		ws.healthy = true
		if !ws.draining {
			rt.ring.Add(worker)
			readmitted = true
		}
	}
	rt.mu.Unlock()
	if readmitted {
		rt.logf("router: worker %s re-admitted", worker)
		// The rejoined worker now owns ring ranges whose sessions live on
		// other workers (or on disk): migrate them proactively instead of
		// eating a restore stampede on first touch.
		rt.maybeRebalance()
	}
}

// healthLoop probes every worker's /stats on the configured interval. A
// draining worker (graceful shutdown in progress) is treated as down so
// new traffic skips it while it checkpoints its sessions for handoff.
func (rt *Router) healthLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		for _, worker := range rt.workerURLs() {
			draining, err := rt.probe(worker)
			switch {
			case err != nil:
				rt.noteFailure(worker, err)
			case draining:
				rt.setDraining(worker, true)
			default:
				rt.setDraining(worker, false)
				rt.noteSuccess(worker)
			}
		}
	}
}

func (rt *Router) workerURLs() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.workers))
	for u := range rt.workers {
		out = append(out, u)
	}
	return out
}

// probeTimeout bounds one health probe: the poll interval, capped so a
// hung worker cannot stall the loop for long.
func (rt *Router) probeTimeout() time.Duration {
	if rt.interval > 2*time.Second {
		return 2 * time.Second
	}
	return rt.interval
}

// probe fetches one worker's /stats and reports its draining flag.
func (rt *Router) probe(worker string) (draining bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/stats", nil)
	if err != nil {
		return false, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("health probe: status %d", resp.StatusCode)
	}
	var st struct {
		Requests struct {
			Draining bool `json:"draining"`
		} `json:"requests"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(&st); err != nil {
		return false, fmt.Errorf("health probe: %v", err)
	}
	return st.Requests.Draining, nil
}

// setDraining marks a worker draining (out of the ring, but not counted as
// a failure: it is alive and finishing its handoff) or clears the mark.
func (rt *Router) setDraining(worker string, draining bool) {
	rt.mu.Lock()
	ws := rt.workers[worker]
	if ws == nil || ws.draining == draining {
		rt.mu.Unlock()
		return
	}
	ws.draining = draining
	healthy := ws.healthy
	if draining {
		if healthy {
			rt.ring.Remove(worker)
		}
	} else if healthy {
		rt.ring.Add(worker)
	}
	rt.mu.Unlock()
	if draining {
		rt.logf("router: worker %s draining; routing around it", worker)
		rt.invalidateWorker(worker)
	} else if healthy {
		rt.logf("router: worker %s finished draining; back in the ring", worker)
		rt.maybeRebalance()
	}
}

// WorkerStatus is the router's health view of one worker, as reported
// under /stats.
type WorkerStatus struct {
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	Failures int    `json:"failures,omitempty"`
	Proxied  uint64 `json:"proxied"`
	LastErr  string `json:"lastErr,omitempty"`
}

// Stats is the router's own /stats section.
type Stats struct {
	Workers map[string]WorkerStatus `json:"workers"`
	// Requests counts proxied requests; Retried counts extra attempts
	// beyond the first; Failovers counts requests ultimately answered by a
	// worker other than the key's owner.
	Requests  uint64 `json:"requests"`
	Retried   uint64 `json:"retried"`
	Failovers uint64 `json:"failovers"`
	// NoRoute counts 503s for an empty ring; BadGateway counts 502s after
	// every candidate failed.
	NoRoute    uint64 `json:"noRoute"`
	BadGateway uint64 `json:"badGateway"`
	// LocationCache accounts the session-location cache: a hit routes the
	// request straight to the worker that last answered for the session.
	LocationCache LocationStats `json:"locationCache"`
	// Rebalances counts proactive migration rounds triggered by membership
	// changes; MigratedSessions is the total sessions released on their old
	// host and handed to their new ring owner across those rounds.
	Rebalances       uint64 `json:"rebalances"`
	MigratedSessions uint64 `json:"migratedSessions"`
}

// LocationStats is the session-location cache section of Stats.
type LocationStats struct {
	// Hits routed directly to the cached worker; Misses fell back to the
	// ring order; Invalidations dropped entries on transport failure,
	// worker ejection or drain.
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	// Len and Cap report cache occupancy (both 0 when disabled).
	Len int `json:"len"`
	Cap int `json:"cap"`
}

// Snapshot returns the router's current stats.
func (rt *Router) Snapshot() Stats {
	st := Stats{
		Workers:    map[string]WorkerStatus{},
		Requests:   rt.requests.Load(),
		Retried:    rt.retried.Load(),
		Failovers:  rt.failovers.Load(),
		NoRoute:    rt.noRoute.Load(),
		BadGateway: rt.badGates.Load(),
		LocationCache: LocationStats{
			Hits:          rt.locHits.Load(),
			Misses:        rt.locMisses.Load(),
			Invalidations: rt.locInvalidations.Load(),
		},
		Rebalances:       rt.rebalances.Load(),
		MigratedSessions: rt.migrated.Load(),
	}
	if rt.locations != nil {
		st.LocationCache.Len = rt.locations.Len()
		st.LocationCache.Cap = rt.locations.Cap()
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for u, ws := range rt.workers {
		st.Workers[u] = WorkerStatus{
			Healthy:  ws.healthy,
			Draining: ws.draining,
			Failures: ws.failures,
			Proxied:  ws.proxied,
			LastErr:  ws.lastErr,
		}
	}
	return st
}

// handleStats aggregates: the router's own counters plus each worker's raw
// /stats document (or the error reaching it).
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	type aggregated struct {
		Router  Stats                      `json:"router"`
		Workers map[string]json.RawMessage `json:"workers"`
	}
	out := aggregated{Router: rt.Snapshot(), Workers: map[string]json.RawMessage{}}
	for _, worker := range rt.workerURLs() {
		resp, err := rt.do(worker, r, nil)
		if err != nil {
			out.Workers[worker], _ = json.Marshal(map[string]string{"error": err.Error()})
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
		resp.Body.Close()
		if err != nil || !json.Valid(raw) {
			out.Workers[worker], _ = json.Marshal(map[string]string{"error": "invalid stats payload"})
			continue
		}
		out.Workers[worker] = raw
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
