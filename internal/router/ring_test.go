package router

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("session-%d", i)
	}
	return keys
}

func ringOf(members ...string) *Ring {
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	return r
}

func TestLookupEmptyRing(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup("anything"); ok {
		t.Error("empty ring claims an owner")
	}
	if got := r.LookupN("anything", 3); got != nil {
		t.Errorf("empty ring LookupN = %v", got)
	}
}

// TestLookupStability: ownership is a pure function of (membership, key) —
// repeated lookups and an independently built ring with the same members
// agree on every key.
func TestLookupStability(t *testing.T) {
	a := ringOf("w1", "w2", "w3")
	b := ringOf("w3", "w1", "w2") // different insertion order
	for _, key := range testKeys(1000) {
		o1, ok := a.Lookup(key)
		if !ok {
			t.Fatal("no owner")
		}
		if o2, _ := a.Lookup(key); o2 != o1 {
			t.Fatalf("key %q: unstable owner %s then %s", key, o1, o2)
		}
		if o3, _ := b.Lookup(key); o3 != o1 {
			t.Fatalf("key %q: insertion order changed owner %s vs %s", key, o1, o3)
		}
	}
}

// TestBoundedRemapOnRemove: removing one of five workers moves exactly the
// keys it owned — every other key keeps its owner — and the moved fraction
// is in the neighbourhood of 1/5.
func TestBoundedRemapOnRemove(t *testing.T) {
	r := ringOf("w1", "w2", "w3", "w4", "w5")
	keys := testKeys(10000)
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}
	r.Remove("w3")
	moved := 0
	for _, k := range keys {
		after, ok := r.Lookup(k)
		if !ok {
			t.Fatal("no owner after removal")
		}
		if before[k] == "w3" {
			moved++
			if after == "w3" {
				t.Fatalf("key %q still owned by removed worker", k)
			}
		} else if after != before[k] {
			t.Fatalf("key %q moved from %s to %s though its owner stayed", k, before[k], after)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.05 || frac > 0.40 {
		t.Errorf("remap fraction on remove = %.3f, want ~0.20", frac)
	}
}

// TestBoundedRemapOnAdd: a sixth worker steals only the keys it now owns;
// no key moves between pre-existing workers.
func TestBoundedRemapOnAdd(t *testing.T) {
	r := ringOf("w1", "w2", "w3", "w4", "w5")
	keys := testKeys(10000)
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}
	r.Add("w6")
	moved := 0
	for _, k := range keys {
		after, _ := r.Lookup(k)
		if after != before[k] {
			moved++
			if after != "w6" {
				t.Fatalf("key %q moved %s -> %s, not to the new worker", k, before[k], after)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.04 || frac > 0.35 {
		t.Errorf("remap fraction on add = %.3f, want ~1/6", frac)
	}
}

// TestBalance: 128 virtual nodes keep worker shares within sane bounds.
func TestBalance(t *testing.T) {
	r := ringOf("w1", "w2", "w3", "w4", "w5")
	counts := map[string]int{}
	keys := testKeys(10000)
	for _, k := range keys {
		o, _ := r.Lookup(k)
		counts[o]++
	}
	for w, n := range counts {
		frac := float64(n) / float64(len(keys))
		if frac < 0.08 || frac > 0.35 {
			t.Errorf("worker %s owns %.3f of the keyspace, want roughly 0.20", w, frac)
		}
	}
	if len(counts) != 5 {
		t.Errorf("only %d of 5 workers own keys", len(counts))
	}
}

// TestLookupN: failover order is distinct, starts with the owner, and
// clamps at the member count.
func TestLookupN(t *testing.T) {
	r := ringOf("w1", "w2", "w3")
	for _, key := range testKeys(100) {
		owner, _ := r.Lookup(key)
		order := r.LookupN(key, 10)
		if len(order) != 3 {
			t.Fatalf("LookupN returned %d members, want 3", len(order))
		}
		if order[0] != owner {
			t.Fatalf("LookupN[0] = %s, Lookup = %s", order[0], owner)
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("duplicate member %s in failover order", m)
			}
			seen[m] = true
		}
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := ringOf("w1", "w2")
	r.Add("w1")
	r.Add("w1")
	if got := len(r.points); got != 2*r.vnodes {
		t.Errorf("double Add left %d points, want %d", got, 2*r.vnodes)
	}
	r.Remove("w1")
	r.Remove("w1")
	if got := r.Len(); got != 1 {
		t.Errorf("Len after removes = %d, want 1", got)
	}
	if o, _ := r.Lookup("k"); o != "w2" {
		t.Errorf("lone member lookup = %s", o)
	}
}
