package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeWorker is a scripted serve worker: it records which session ids it
// was asked about and answers the minimal protocol the router relies on.
type fakeWorker struct {
	ts *httptest.Server

	mu          sync.Mutex
	sessions    map[string]int
	resident    map[string]bool
	draining    bool
	delay       time.Duration
	failPrewarm bool
}

func newFakeWorker(t *testing.T) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{sessions: map[string]int{}, resident: map[string]bool{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /reason", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		delay := fw.delay
		fw.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		var req struct {
			Session  string `json:"session"`
			AssignID string `json:"assignId"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		id := req.Session
		if id == "" {
			id = req.AssignID
		}
		if id == "" {
			http.Error(w, `{"error":"fake worker requires a routed id"}`, http.StatusBadRequest)
			return
		}
		fw.note(id)
		_ = json.NewEncoder(w).Encode(map[string]any{"session": id, "answers": []string{}})
	})
	mux.HandleFunc("POST /facts", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Session string `json:"session"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		fw.note(req.Session)
		_ = json.NewEncoder(w).Encode(map[string]any{"session": req.Session, "epoch": 1})
	})
	mux.HandleFunc("GET /explain", func(w http.ResponseWriter, r *http.Request) {
		fw.note(r.URL.Query().Get("session"))
		_ = json.NewEncoder(w).Encode(map[string]any{"fact": "F", "text": "t"})
	})
	mux.HandleFunc("GET /apps", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]map[string]string{{"name": "fake"}})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		draining := fw.draining
		fw.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"requests": map[string]any{"draining": draining}})
	})
	// The rebalance control plane, over the fake's resident set.
	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		fw.mu.Lock()
		ids := []string{}
		for id := range fw.resident {
			ids = append(ids, id)
		}
		fw.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"sessions": ids})
	})
	mux.HandleFunc("POST /release", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sessions []string `json:"sessions"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		fw.mu.Lock()
		released := 0
		for _, id := range req.Sessions {
			if fw.resident[id] {
				delete(fw.resident, id)
				released++
			}
		}
		fw.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"released": released})
	})
	mux.HandleFunc("POST /prewarm", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sessions []string `json:"sessions"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		fw.mu.Lock()
		if fw.failPrewarm {
			fw.mu.Unlock()
			http.Error(w, `{"error":"scripted prewarm failure"}`, http.StatusInternalServerError)
			return
		}
		for _, id := range req.Sessions {
			fw.resident[id] = true
		}
		fw.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"restored": len(req.Sessions), "failed": 0})
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) note(id string) {
	fw.mu.Lock()
	fw.sessions[id]++
	fw.mu.Unlock()
}

func (fw *fakeWorker) seen(id string) int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.sessions[id]
}

func (fw *fakeWorker) total() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	n := 0
	for _, c := range fw.sessions {
		n += c
	}
	return n
}

func newTestRouter(t *testing.T, opts Options, workers ...*fakeWorker) (*Router, *httptest.Server) {
	t.Helper()
	for _, fw := range workers {
		opts.Workers = append(opts.Workers, fw.ts.URL)
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postJSON(t *testing.T, url, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp
}

// TestSessionAffinity: every request naming a session lands on the same
// worker, across endpoints, and the load spreads over multiple workers.
func TestSessionAffinity(t *testing.T) {
	w1, w2, w3 := newFakeWorker(t), newFakeWorker(t), newFakeWorker(t)
	_, ts := newTestRouter(t, Options{}, w1, w2, w3)
	workers := []*fakeWorker{w1, w2, w3}

	owners := map[string]*fakeWorker{}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("sess-%d", i)
		for round := 0; round < 3; round++ {
			var rr struct {
				Session string `json:"session"`
			}
			resp := postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), &rr)
			if resp.StatusCode != http.StatusOK || rr.Session != id {
				t.Fatalf("session read %s: status %d, session %q", id, resp.StatusCode, rr.Session)
			}
		}
		postJSON(t, ts.URL+"/facts", fmt.Sprintf(`{"session":%q,"add":"F."}`, id), nil)
		resp, err := http.Get(ts.URL + "/explain?session=" + id + "&query=F")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("explain %s: %v status %v", id, err, resp.Status)
		}
		resp.Body.Close()

		var owner *fakeWorker
		for _, fw := range workers {
			if fw.seen(id) > 0 {
				if owner != nil {
					t.Fatalf("session %s served by two workers", id)
				}
				owner = fw
			}
		}
		if owner == nil {
			t.Fatalf("session %s served by no worker", id)
		}
		if owner.seen(id) != 5 { // 3 reads + facts + explain
			t.Fatalf("session %s: owner saw %d requests, want 5", id, owner.seen(id))
		}
		owners[id] = owner
	}
	spread := map[*fakeWorker]bool{}
	for _, fw := range owners {
		spread[fw] = true
	}
	if len(spread) < 2 {
		t.Errorf("50 sessions all landed on one worker")
	}
}

// TestAssignIDInjection: a new-session /reason without an id gets a
// router-minted assignId, and follow-ups naming the returned session hash
// to the same worker that created it.
func TestAssignIDInjection(t *testing.T) {
	w1, w2, w3 := newFakeWorker(t), newFakeWorker(t), newFakeWorker(t)
	_, ts := newTestRouter(t, Options{}, w1, w2, w3)
	workers := []*fakeWorker{w1, w2, w3}

	for i := 0; i < 20; i++ {
		var rr struct {
			Session string `json:"session"`
		}
		resp := postJSON(t, ts.URL+"/reason", `{"app":"fake","scenario":true}`, &rr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create: status %d", resp.StatusCode)
		}
		if !strings.HasPrefix(rr.Session, "g") {
			t.Fatalf("router-assigned id %q lacks the g prefix", rr.Session)
		}
		var creator *fakeWorker
		for _, fw := range workers {
			if fw.seen(rr.Session) > 0 {
				creator = fw
			}
		}
		if creator == nil {
			t.Fatal("no worker saw the created session")
		}
		postJSON(t, ts.URL+"/facts", fmt.Sprintf(`{"session":%q,"add":"F."}`, rr.Session), nil)
		if creator.seen(rr.Session) != 2 {
			t.Errorf("follow-up write for %s went to a different worker", rr.Session)
		}
	}
}

// TestClientAssignIDRespected: a client-supplied assignId is the routing
// key and passes through unchanged.
func TestClientAssignIDRespected(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	_, ts := newTestRouter(t, Options{}, w1, w2)
	var rr struct {
		Session string `json:"session"`
	}
	postJSON(t, ts.URL+"/reason", `{"app":"fake","assignId":"client-chosen-7"}`, &rr)
	if rr.Session != "client-chosen-7" {
		t.Fatalf("session = %q, want the client-chosen id", rr.Session)
	}
}

// TestFailover: killing a worker reroutes its sessions to ring successors
// — every request still answers 200, failovers are counted, and the dead
// worker is ejected.
func TestFailover(t *testing.T) {
	w1, w2, w3 := newFakeWorker(t), newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{HealthFailures: 1, RetryBackoff: time.Millisecond}, w1, w2, w3)

	ids := make([]string, 30)
	for i := range ids {
		ids[i] = fmt.Sprintf("sess-%d", i)
		postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, ids[i]), nil)
	}
	before := w2.total()
	if before == 0 {
		t.Skip("hash spread gave w2 no sessions; nothing to fail over")
	}
	w2.ts.Close()

	for _, id := range ids {
		var rr struct {
			Session string `json:"session"`
		}
		resp := postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), &rr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s after worker death: status %d", id, resp.StatusCode)
		}
	}
	st := rt.Snapshot()
	if st.Failovers == 0 {
		t.Error("no failovers recorded after killing a worker holding sessions")
	}
	if ws := st.Workers[w2.ts.URL]; ws.Healthy {
		t.Error("dead worker still marked healthy")
	}
	if st.BadGateway != 0 {
		t.Errorf("requests answered 502 despite two healthy workers: %d", st.BadGateway)
	}
}

// TestDrainingWorkerRoutedAround: a worker reporting draining=true leaves
// the ring on the next health probe without being counted as failed, and
// rejoins when the drain flag clears.
func TestDrainingWorkerRoutedAround(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{HealthInterval: 5 * time.Millisecond}, w1, w2)
	rt.Start()
	defer rt.Close()

	w2.mu.Lock()
	w2.draining = true
	w2.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rt.Snapshot().Workers[w2.ts.URL].Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("health loop never observed the drain flag")
		}
		time.Sleep(2 * time.Millisecond)
	}
	w2Before := w2.total()
	for i := 0; i < 20; i++ {
		postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":"drain-%d"}`, i), nil)
	}
	if got := w2.total(); got != w2Before {
		t.Errorf("draining worker served %d new requests", got-w2Before)
	}
	if ws := rt.Snapshot().Workers[w2.ts.URL]; !ws.Healthy {
		t.Error("draining worker miscounted as unhealthy")
	}

	w2.mu.Lock()
	w2.draining = false
	w2.mu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for {
		if !rt.Snapshot().Workers[w2.ts.URL].Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never rejoined after drain cleared")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStatsAggregation: /stats nests the router's own counters and each
// worker's raw stats document.
func TestStatsAggregation(t *testing.T) {
	w1, w2 := newFakeWorker(t), newFakeWorker(t)
	_, ts := newTestRouter(t, Options{}, w1, w2)
	postJSON(t, ts.URL+"/reason", `{"session":"x"}`, nil)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg struct {
		Router  Stats                      `json:"router"`
		Workers map[string]json.RawMessage `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Router.Requests == 0 {
		t.Error("router counters missing from aggregate")
	}
	if len(agg.Workers) != 2 {
		t.Errorf("aggregate covers %d workers, want 2", len(agg.Workers))
	}
	for url, raw := range agg.Workers {
		var st struct {
			Requests struct {
				Draining *bool `json:"draining"`
			} `json:"requests"`
		}
		if err := json.Unmarshal(raw, &st); err != nil || st.Requests.Draining == nil {
			t.Errorf("worker %s stats not passed through raw: %s", url, raw)
		}
	}
}

// TestNoHealthyWorkers: an empty ring answers 503 with Retry-After, not a
// hang or a panic.
func TestNoHealthyWorkers(t *testing.T) {
	w1 := newFakeWorker(t)
	rt, ts := newTestRouter(t, Options{HealthFailures: 1, RetryBackoff: time.Millisecond}, w1)
	w1.ts.Close()
	postJSON(t, ts.URL+"/reason", `{"session":"x"}`, nil) // ejects w1
	resp := postJSON(t, ts.URL+"/reason", `{"session":"x"}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if rt.Snapshot().NoRoute == 0 {
		t.Error("noRoute counter not bumped")
	}
}

func TestInjectField(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{`{}`, `{"assignId":"g1"}`},
		{`{"app":"x"}`, `{"assignId":"g1","app":"x"}`},
		{"  \n\t{ \"app\" : 1.50 }", "  \n\t{\"assignId\":\"g1\", \"app\" : 1.50 }"},
	}
	for _, c := range cases {
		got, err := injectField([]byte(c.in), "assignId", "g1")
		if err != nil {
			t.Errorf("injectField(%q): %v", c.in, err)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(got, &m); err != nil {
			t.Errorf("injectField(%q) produced invalid JSON %q: %v", c.in, got, err)
		}
		if m["assignId"] != "g1" {
			t.Errorf("injectField(%q) = %q, field missing", c.in, got)
		}
		if string(got) != c.want {
			t.Errorf("injectField(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{``, `[1,2]`, `"str"`, `  42`} {
		if _, err := injectField([]byte(bad), "assignId", "g1"); err == nil {
			t.Errorf("injectField(%q) accepted a non-object", bad)
		}
	}
}
