package router

// Proactive rebalancing on membership change. When a worker joins or
// recovers, the ring hands it key ranges whose sessions are resident on
// other workers; without migration every one of those sessions pays a
// restore (snapshot read + tail replay) on its next touch — a restore
// stampede concentrated right after the membership change. The rebalancer
// moves them ahead of traffic instead: it lists every routable worker's
// resident sessions, finds the ones whose ring owner is now a different
// worker, and migrates each batch with the workers' own handoff machinery
// — POST /release on the current host (committer quiesced, snapshot
// durable, WAL handle closed), then POST /prewarm on the new owner
// (snapshot+tail restore through the per-session singleflight, so live
// traffic racing the prewarm joins it instead of duplicating it).
//
// Release-then-prewarm ordering is what keeps the move safe: the old
// host's WAL handle is closed before the new owner opens it, so two
// processes never append to one session's log. Batches are chunked so no
// single control-plane request grows unbounded, and every step is
// best-effort — a failed chunk leaves its sessions where restore-on-touch
// still finds them, durable and correct, just cold.
//
// A single goroutine (started by Router.Start) runs migrations; kicks from
// concurrent re-admissions coalesce through a 1-buffered channel.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

const (
	// rebalanceChunk bounds the sessions per /release + /prewarm pair, so
	// each control-plane request stays well inside the workers' transport
	// write timeout.
	rebalanceChunk = 64
	// rebalanceTimeout bounds one control-plane call.
	rebalanceTimeout = 30 * time.Second
)

// maybeRebalance requests a migration round; kicks while one is running
// coalesce into a single follow-up round.
func (rt *Router) maybeRebalance() {
	if !rt.rebalanceOn {
		return
	}
	select {
	case rt.rebalanceKick <- struct{}{}:
	default:
	}
}

// rebalanceLoop serializes migration rounds.
func (rt *Router) rebalanceLoop() {
	defer close(rt.rebalanceDone)
	for {
		select {
		case <-rt.stop:
			return
		case <-rt.rebalanceKick:
		}
		moved, err := rt.runRebalance()
		if err != nil {
			rt.logf("router: rebalance: %v", err)
		}
		if moved > 0 {
			rt.logf("router: rebalance migrated %d sessions to their new owners", moved)
		}
	}
}

// runRebalance migrates every resident session whose ring owner is a
// different routable worker. Returns how many sessions moved and the first
// error encountered (the round continues past per-worker errors).
func (rt *Router) runRebalance() (int, error) {
	hosts := rt.routableWorkers()
	if len(hosts) < 2 {
		return 0, nil
	}
	rt.rebalances.Add(1)
	moved := 0
	var firstErr error
	note := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, host := range hosts {
		ids, err := rt.listSessions(host)
		if err != nil {
			note(fmt.Errorf("listing sessions on %s: %w", host, err))
			continue
		}
		// Group this host's misplaced sessions by their new owner.
		byOwner := map[string][]string{}
		for _, id := range ids {
			owner, ok := rt.ring.Lookup(id)
			if ok && owner != host && rt.routable(owner) {
				byOwner[owner] = append(byOwner[owner], id)
			}
		}
		for owner, misplaced := range byOwner {
			for start := 0; start < len(misplaced); start += rebalanceChunk {
				end := min(start+rebalanceChunk, len(misplaced))
				n, err := rt.migrate(host, owner, misplaced[start:end])
				moved += n
				if err != nil {
					note(err)
					break
				}
			}
		}
	}
	rt.migrated.Add(uint64(moved))
	return moved, firstErr
}

// migrate moves one chunk: release on the current host, prewarm on the new
// owner, location cache updated so the next touch goes straight there.
// Returns how many sessions the host actually held and handed off.
func (rt *Router) migrate(host, owner string, ids []string) (int, error) {
	var rel struct {
		Released int `json:"released"`
	}
	if err := rt.control(http.MethodPost, host, "/release", ids, &rel); err != nil {
		return 0, fmt.Errorf("release on %s: %w", host, err)
	}
	// The old host's handles are closed; from here the new owner must
	// serve first touches, so repoint the cache before the prewarm — a
	// stale entry would route the next touch back to the old host and
	// resurrect the session there, undoing the migration.
	if rt.locations != nil {
		for _, id := range ids {
			rt.locations.Put(id, owner)
		}
	}
	var pre struct {
		Restored int `json:"restored"`
		Failed   int `json:"failed"`
	}
	if err := rt.control(http.MethodPost, owner, "/prewarm", ids, &pre); err != nil {
		// The sessions are durable on disk (release succeeded); they will
		// restore on first touch at the owner. Report released as moved.
		return rel.Released, fmt.Errorf("prewarm on %s: %w", owner, err)
	}
	return rel.Released, nil
}

// listSessions fetches one worker's resident session ids.
func (rt *Router) listSessions(worker string) ([]string, error) {
	var out struct {
		Sessions []string `json:"sessions"`
	}
	if err := rt.control(http.MethodGet, worker, "/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out.Sessions, nil
}

// routableWorkers lists the in-service workers in deterministic order.
func (rt *Router) routableWorkers() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []string
	for u, ws := range rt.workers {
		if ws.healthy && !ws.draining {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}

// control issues one rebalance control-plane call (body {"sessions": ids}
// for POSTs) with a bounded deadline and decodes the JSON answer into out.
func (rt *Router) control(method, worker, path string, ids []string, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), rebalanceTimeout)
	defer cancel()
	var rd io.Reader
	if ids != nil {
		body, err := json.Marshal(map[string][]string{"sessions": ids})
		if err != nil {
			return err
		}
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, worker+path, rd)
	if err != nil {
		return err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s%s: status %d: %s", worker, path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxBody)).Decode(out)
}
