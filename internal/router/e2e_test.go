package router

// Multi-process end-to-end test of the sharded serving tier: three real
// worker processes over one shared WAL directory, the router in front,
// one worker SIGKILLed mid-traffic. Every session must keep answering —
// the dead worker's sessions hash to ring successors, which restore them
// from the shared directory — and writes must keep committing at the
// epochs the sessions had reached.

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

type e2eReason struct {
	Session string   `json:"session"`
	Epoch   uint64   `json:"epoch"`
	Answers []string `json:"answers"`
}

// startWorkerProcess launches one serve-equivalent child over dir and
// returns its base URL once it reports its listener.
func startWorkerProcess(t *testing.T, dir string) (*exec.Cmd, string) {
	return startWorkerProcessAt(t, dir, "")
}

// startWorkerProcessAt is startWorkerProcess pinned to a fixed listen
// address — how a killed worker "rejoins" at the URL the router knows.
func startWorkerProcessAt(t *testing.T, dir, addr string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestRouterE2EWorker$")
	cmd.Env = append(os.Environ(), "ROUTER_E2E_WORKER=1", "ROUTER_E2E_DIR="+dir, "ROUTER_E2E_ADDR="+addr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		if url, ok := strings.CutPrefix(scanner.Text(), "LISTENING "); ok {
			go func() { // keep draining so the child never blocks on stdout
				for scanner.Scan() {
				}
			}()
			return cmd, url
		}
	}
	t.Fatalf("worker never reported its listener (scan err %v)", scanner.Err())
	return nil, ""
}

func TestRoutedTierSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	var (
		cmds    []*exec.Cmd
		urls    []string
		byURL   = map[string]*exec.Cmd{}
		workers = 3
	)
	for i := 0; i < workers; i++ {
		cmd, url := startWorkerProcess(t, dir)
		cmds = append(cmds, cmd)
		urls = append(urls, url)
		byURL[url] = cmd
	}
	rt, err := New(Options{Workers: urls, HealthFailures: 1, RetryBackoff: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Open sessions through the router (it mints the ids), give each one
	// committed write, and record the state every session must preserve.
	const sessions = 12
	ids := make([]string, sessions)
	before := make([]e2eReason, sessions)
	for i := range ids {
		var rr e2eReason
		resp := postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
		if resp.StatusCode != http.StatusOK || rr.Session == "" {
			t.Fatalf("create %d: status %d session %q", i, resp.StatusCode, rr.Session)
		}
		ids[i] = rr.Session
		body := fmt.Sprintf(`{"session":%q,"add":"Own(\"Y\",\"Z%d\",0.8)."}`, rr.Session, i)
		if resp := postJSON(t, ts.URL+"/facts", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("write %d: status %d", i, resp.StatusCode)
		}
		resp = postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, rr.Session), &before[i])
		if resp.StatusCode != http.StatusOK || before[i].Epoch != 1 {
			t.Fatalf("read %d: status %d epoch %d", i, resp.StatusCode, before[i].Epoch)
		}
	}

	// SIGKILL the worker that owns the most sessions (fall back to any):
	// no drain, no checkpoint — the hard-crash path.
	owned := map[string]int{}
	st := rt.Snapshot()
	victim := urls[1]
	for url, ws := range st.Workers {
		owned[url] = int(ws.Proxied)
		if owned[url] > owned[victim] {
			victim = url
		}
	}
	if owned[victim] == 0 {
		t.Fatal("no worker saw any traffic")
	}
	t.Logf("killing %s (proxied %d of %d requests)", victim, owned[victim], 3*sessions)
	if err := byURL[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = byURL[victim].Wait()

	// Every session still answers with its pre-kill state: survivors from
	// their live engines, the victim's sessions restored from the shared
	// WAL directory by their new owners.
	for i, id := range ids {
		var after e2eReason
		resp := postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), &after)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s after kill: status %d", id, resp.StatusCode)
		}
		if after.Epoch != before[i].Epoch ||
			strings.Join(after.Answers, "\n") != strings.Join(before[i].Answers, "\n") {
			t.Errorf("session %s state diverged after worker kill:\nbefore %+v\nafter  %+v", id, before[i], after)
		}
		// And keeps committing where it left off.
		body := fmt.Sprintf(`{"session":%q,"add":"Own(\"Z%d\",\"W\",0.7)."}`, id, i)
		var fr struct {
			Epoch uint64 `json:"epoch"`
		}
		if resp := postJSON(t, ts.URL+"/facts", body, &fr); resp.StatusCode != http.StatusOK || fr.Epoch != 2 {
			t.Errorf("session %s write after kill: status %d epoch %d, want 200 epoch 2", id, resp.StatusCode, fr.Epoch)
		}
	}
	st = rt.Snapshot()
	if st.Failovers == 0 && owned[victim] > 0 {
		t.Error("kill caused no failovers; victim traffic unaccounted for")
	}
	if ws := st.Workers[victim]; ws.Healthy {
		t.Error("killed worker still marked healthy")
	}
	_ = cmds
}

// TestRoutedTierRebalancesOnWorkerRejoin extends the kill test with a
// rejoin: the victim comes back at its old URL, the router readmits it and
// proactively migrates its ring-owned sessions back (release on the
// survivor, prewarm on the rejoined worker) — and every migrated session
// answers at its exact pre-kill epoch and keeps committing from there.
func TestRoutedTierRebalancesOnWorkerRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	var (
		urls    []string
		byURL   = map[string]*exec.Cmd{}
		workers = 3
	)
	for i := 0; i < workers; i++ {
		cmd, url := startWorkerProcess(t, dir)
		urls = append(urls, url)
		byURL[url] = cmd
	}
	rt, err := New(Options{
		Workers:        urls,
		HealthInterval: 25 * time.Millisecond,
		HealthFailures: 1,
		RetryBackoff:   5 * time.Millisecond,
		Rebalance:      true,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	const sessions = 12
	ids := make([]string, sessions)
	before := make([]e2eReason, sessions)
	for i := range ids {
		var rr e2eReason
		resp := postJSON(t, ts.URL+"/reason", `{"app":"company-control","facts":"Own(\"X\",\"Y\",0.6)."}`, &rr)
		if resp.StatusCode != http.StatusOK || rr.Session == "" {
			t.Fatalf("create %d: status %d session %q", i, resp.StatusCode, rr.Session)
		}
		ids[i] = rr.Session
		body := fmt.Sprintf(`{"session":%q,"add":"Own(\"Y\",\"Z%d\",0.8)."}`, rr.Session, i)
		if resp := postJSON(t, ts.URL+"/facts", body, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("write %d: status %d", i, resp.StatusCode)
		}
		resp = postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, rr.Session), &before[i])
		if resp.StatusCode != http.StatusOK || before[i].Epoch != 1 {
			t.Fatalf("read %d: status %d epoch %d", i, resp.StatusCode, before[i].Epoch)
		}
	}

	// Kill the busiest worker, then touch every session so the victim's
	// sessions are restored — and now resident — on ring survivors.
	st := rt.Snapshot()
	victim := urls[0]
	for url, ws := range st.Workers {
		if ws.Proxied > st.Workers[victim].Proxied {
			victim = url
		}
	}
	var victimOwned []string
	for _, id := range ids {
		if owner, ok := rt.ring.Lookup(id); ok && owner == victim {
			victimOwned = append(victimOwned, id)
		}
	}
	if len(victimOwned) == 0 {
		t.Skip("hash spread gave the victim no sessions; nothing to migrate back")
	}
	t.Logf("killing %s (owns %d of %d sessions)", victim, len(victimOwned), sessions)
	if err := byURL[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = byURL[victim].Wait()
	for _, id := range ids {
		if resp := postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s after kill: status %d", id, resp.StatusCode)
		}
	}

	// Rejoin at the old URL; the health loop readmits the worker and kicks
	// a rebalance that migrates its sessions home ahead of traffic.
	migratedBefore := rt.Snapshot().MigratedSessions
	_, rejoined := startWorkerProcessAt(t, dir, strings.TrimPrefix(victim, "http://"))
	if rejoined != victim {
		t.Fatalf("rejoined worker listens at %s, want the victim's %s", rejoined, victim)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st = rt.Snapshot()
		if st.Workers[victim].Healthy && !st.Workers[victim].Draining &&
			st.Rebalances > 0 && st.MigratedSessions >= migratedBefore+uint64(len(victimOwned)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebalance never completed: victim %+v, rebalances %d, migrated %d (want >= %d)",
				st.Workers[victim], st.Rebalances, st.MigratedSessions, migratedBefore+uint64(len(victimOwned)))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Logf("rejoin migrated %d sessions over %d rounds", st.MigratedSessions-migratedBefore, st.Rebalances)

	// Every session — migrated ones especially — answers at its exact
	// pre-kill epoch with identical state, and commits the next epoch.
	for i, id := range ids {
		var after e2eReason
		resp := postJSON(t, ts.URL+"/reason", fmt.Sprintf(`{"session":%q}`, id), &after)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s after rejoin: status %d", id, resp.StatusCode)
		}
		if after.Epoch != before[i].Epoch ||
			strings.Join(after.Answers, "\n") != strings.Join(before[i].Answers, "\n") {
			t.Errorf("session %s state diverged after rebalance:\nbefore %+v\nafter  %+v", id, before[i], after)
		}
		var fr struct {
			Epoch uint64 `json:"epoch"`
		}
		body := fmt.Sprintf(`{"session":%q,"add":"Own(\"Z%d\",\"W\",0.7)."}`, id, i)
		if resp := postJSON(t, ts.URL+"/facts", body, &fr); resp.StatusCode != http.StatusOK || fr.Epoch != 2 {
			t.Errorf("session %s write after rebalance: status %d epoch %d, want 200 epoch 2", id, resp.StatusCode, fr.Epoch)
		}
	}
}

// TestRouterE2EWorker is the subprocess body: a real durable server on an
// ephemeral port, address reported on stdout, runs until killed.
func TestRouterE2EWorker(t *testing.T) {
	if os.Getenv("ROUTER_E2E_WORKER") == "" {
		t.Skip("subprocess helper, driven by TestRoutedTierSurvivesWorkerKill")
	}
	runE2EWorker(os.Getenv("ROUTER_E2E_DIR"), os.Getenv("ROUTER_E2E_ADDR"))
}

// runE2EWorker is the child's serve loop: durable server, ephemeral port
// (or a fixed addr for rejoin tests — retried briefly, since the killed
// predecessor's port can take a moment to free).
func runE2EWorker(dir, addr string) {
	s, err := server.NewWithOptions(server.Options{WALDir: dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e worker:", err)
		os.Exit(1)
	}
	listen := addr
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	var ln net.Listener
	for deadline := time.Now().Add(10 * time.Second); ; {
		ln, err = net.Listen("tcp", listen)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "e2e worker:", err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("LISTENING http://%s\n", ln.Addr())
	_ = http.Serve(ln, s.Handler())
}
