// Package router is the sharding tier of the explanation service: a thin
// reverse proxy that consistent-hashes session ids across a set of workers
// speaking the ordinary server HTTP protocol. Session affinity is what
// makes the tier correct — a session's state (live maintainer, WAL,
// snapshot) lives on one worker at a time — and consistent hashing is what
// makes membership changes cheap: when a worker joins or leaves, only the
// keyspace fraction it owned moves, and the sessions that move restore on
// their new worker from the shared durable directory (snapshot plus WAL
// tail).
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is hashed
// to VNodes points on a 64-bit circle; a key is owned by the member whose
// point follows the key's hash clockwise. More virtual nodes smooth the
// load split (with 128, member shares are typically within a few percent
// of even) at the cost of a larger sorted point list.
//
// All methods are safe for concurrent use; Lookup is a read-lock plus one
// binary search.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []point
	members map[string]bool
}

type point struct {
	hash   uint64
	member string
}

// DefaultVNodes is the virtual-node count used when NewRing is given 0.
const DefaultVNodes = 128

// NewRing returns an empty ring with the given virtual-node count per
// member (0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]bool{}}
}

// hashKey maps a string to a ring position: FNV-1a for the byte mixing,
// then a splitmix64 finalizer — raw FNV of short, similar strings (worker
// URLs differing in one digit, "#0".."#127" suffixes) leaves enough
// correlation in the high bits to skew vnode placement badly; the
// finalizer's avalanche restores an even spread.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hashKey(member + "#" + strconv.Itoa(i)), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its points (idempotent).
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current members in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member owning key, or false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.successor(hashKey(key))].member, true
}

// LookupN returns up to n distinct members in ring order starting at the
// key's owner — the owner first, then the members a failover should try
// next. Deterministic for a given ring state.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := r.successor(hashKey(key)); len(out) < n; i = (i + 1) % len(r.points) {
		m := r.points[i].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// successor returns the index of the first point at or after h, wrapping.
// Callers hold at least the read lock and guarantee points is non-empty.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// String renders the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d vnodes each)", r.Len(), r.vnodes)
}
