// Package template implements the explanation templates of Section 4.2 of
// the paper: every reasoning path produced by the structural analysis is
// verbalized — via the domain glossary — into a token-bearing text that can
// later be instantiated with the constants of a materialized chase path.
//
// Tokens are computed by unifying variables across the rules of the path
// (the head-to-body homomorphisms that make consecutive rules adjacent), so
// that one entity flowing through several rules is represented by a single
// token. By construction every rule variable of the path is captured by a
// token, which is what guarantees the completeness of template-based
// explanations (Sections 4.4 and 6.3): no constant of the inference can be
// omitted.
package template

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/glossary"
	"repro/internal/paths"
	"repro/internal/verbalizer"
)

// Template is the explanation template of one reasoning path.
type Template struct {
	// Path is the reasoning path the template verbalizes.
	Path *paths.Path
	// Text is the deterministic template text with <token> placeholders.
	Text string
	// StepTokens maps, for each rule of the path (same index), the rule's
	// variable names to their token names.
	StepTokens []map[string]string
	// Enhanced holds fluent rewritings of Text produced by an Enhancer;
	// each is guaranteed (checked) to preserve every token.
	Enhanced []string
}

// Tokens returns the distinct token names of the template, sorted.
func (t *Template) Tokens() []string {
	seen := map[string]bool{}
	for _, st := range t.StepTokens {
		for _, tok := range st {
			seen[tok] = true
		}
	}
	out := make([]string, 0, len(seen))
	for tok := range seen {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// CheckText verifies that a candidate text (e.g. an LLM-enhanced variant)
// still contains every token of the template — the automatic omission check
// of the paper's Section 4.4. It returns the missing tokens as an error.
func (t *Template) CheckText(text string) error {
	var missing []string
	for _, tok := range t.Tokens() {
		if !strings.Contains(text, "<"+tok+">") {
			missing = append(missing, tok)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("template %s: text omits tokens %s", t.Path.ID, strings.Join(missing, ", "))
	}
	return nil
}

// AddEnhanced registers an enhanced variant after running the omission
// check.
func (t *Template) AddEnhanced(text string) error {
	if err := t.CheckText(text); err != nil {
		return err
	}
	t.Enhanced = append(t.Enhanced, text)
	return nil
}

// BestText returns the preferred rendering: the first enhanced variant if
// any, otherwise the deterministic text.
func (t *Template) BestText() string {
	if len(t.Enhanced) > 0 {
		return t.Enhanced[0]
	}
	return t.Text
}

// Instantiate substitutes the template's tokens with the constants of the
// aligned chase derivations (one derivation per path rule, in path order)
// and returns the resulting explanation fragment. Token values coming from
// different steps are checked for consistency.
func (t *Template) Instantiate(derivs []*chase.Derivation) (string, error) {
	return t.InstantiateText(t.BestText(), derivs)
}

// InstantiateText is Instantiate over an explicit text variant (the
// deterministic text or any enhanced variant).
func (t *Template) InstantiateText(text string, derivs []*chase.Derivation) (string, error) {
	if len(derivs) != len(t.StepTokens) {
		return "", fmt.Errorf("template %s: %d derivations for %d rules", t.Path.ID, len(derivs), len(t.StepTokens))
	}
	values := map[string]string{}
	for i, st := range t.StepTokens {
		if derivs[i] == nil {
			continue
		}
		render := verbalizer.DerivationRenderer(derivs[i])
		for v, tok := range st {
			val := render(v)
			if strings.HasPrefix(val, "<") {
				continue // unbound in this step; another step may bind it
			}
			if prev, ok := values[tok]; ok && prev != val {
				return "", fmt.Errorf("template %s: token <%s> bound to both %q and %q", t.Path.ID, tok, prev, val)
			}
			values[tok] = val
		}
	}
	out := text
	for tok, val := range values {
		out = strings.ReplaceAll(out, "<"+tok+">", val)
	}
	if i := strings.IndexByte(out, '<'); i >= 0 && strings.IndexByte(out[i:], '>') > 0 {
		return "", fmt.Errorf("template %s: unresolved token near %q", t.Path.ID, out[i:min(i+20, len(out))])
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Store holds the generated templates of one KG application, indexed by
// reasoning path.
type Store struct {
	analysis  *paths.Analysis
	glossary  *glossary.Glossary
	templates map[string]*Template // by path ID
	order     []string
}

// Generate verbalizes every reasoning path of the analysis into its
// deterministic explanation template.
func Generate(a *paths.Analysis, g *glossary.Glossary) (*Store, error) {
	s := &Store{analysis: a, glossary: g, templates: map[string]*Template{}}
	for _, p := range a.All() {
		t, err := ForPath(p, g)
		if err != nil {
			return nil, err
		}
		s.templates[p.ID] = t
		s.order = append(s.order, p.ID)
	}
	return s, nil
}

// Analysis returns the structural analysis the store was generated from.
func (s *Store) Analysis() *paths.Analysis { return s.analysis }

// Glossary returns the domain glossary used.
func (s *Store) Glossary() *glossary.Glossary { return s.glossary }

// ByPath returns the template of a reasoning path by its display name.
func (s *Store) ByPath(id string) *Template { return s.templates[id] }

// All returns every template in analysis order.
func (s *Store) All() []*Template {
	out := make([]*Template, len(s.order))
	for i, id := range s.order {
		out[i] = s.templates[id]
	}
	return out
}

// ForPath verbalizes a single reasoning path into its deterministic
// template.
func ForPath(p *paths.Path, g *glossary.Glossary) (*Template, error) {
	stepTokens := tokenize(p)
	var sentences []string
	for i, r := range p.Rules {
		render := verbalizer.TokenRenderer(stepTokens[i])
		agg := verbalizer.AggRendering{Expand: p.Dashed && r.HasAggregation()}
		sentence, err := verbalizer.RuleSentence(r, g, render, agg)
		if err != nil {
			return nil, fmt.Errorf("template for %s: %w", p.ID, err)
		}
		sentences = append(sentences, sentence)
	}
	return &Template{
		Path:       p,
		Text:       strings.Join(sentences, " "),
		StepTokens: stepTokens,
	}, nil
}

// tokenize computes per-step variable-to-token maps by unifying variables
// across the rules of the path: whenever rule j consumes the head predicate
// of rule i, the variables at corresponding argument positions denote the
// same entity and share one token. Token names are the lower-cased variable
// names, disambiguated with ordinals when distinct entities collide.
func tokenize(p *paths.Path) []map[string]string {
	type stepVar struct {
		step int
		v    string
	}
	parent := map[stepVar]stepVar{}
	var find func(x stepVar) stepVar
	find = func(x stepVar) stepVar {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b stepVar) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Keep the earlier occurrence as representative.
			if rb.step < ra.step || (rb.step == ra.step && rb.v < ra.v) {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	// Seed every variable of every rule in first-occurrence order.
	var orderedVars []stepVar
	for i, r := range p.Rules {
		for _, v := range r.Variables() {
			sv := stepVar{i, v}
			find(sv)
			orderedVars = append(orderedVars, sv)
		}
	}

	// Unify across head-to-body adjacency. Each consumed body atom is
	// unified only with its CLOSEST preceding producer — in a chain like
	// {c1, c2, c3} the final rule consumes the output of c2, not of c1,
	// even though both derive the same predicate. When the consumer
	// aggregates, its contributor-varying variables take a different value
	// for every contributor, so only the group variables (those visible in
	// the head or in conditions over the aggregate) may be unified; the
	// rest keep their own tokens, as in the paper's Figure 6 where the
	// debtor <d> of rule β stays distinct from the shocked entity <f>.
	for j, consumer := range p.Rules {
		group := groupVars(consumer)
		for _, atom := range consumer.Body {
			producerIdx := -1
			for i := j - 1; i >= 0; i-- {
				h := p.Rules[i].Head
				if h.Predicate == atom.Predicate && h.Arity() == atom.Arity() {
					producerIdx = i
					break
				}
			}
			if producerIdx < 0 {
				continue
			}
			producer := p.Rules[producerIdx]
			for k := range atom.Terms {
				ht := producer.Head.Terms[k]
				bt := atom.Terms[k]
				if !ht.IsVariable() || !bt.IsVariable() {
					continue
				}
				if consumer.HasAggregation() && !group[bt.Name()] {
					continue
				}
				union(stepVar{producerIdx, ht.Name()}, stepVar{j, bt.Name()})
			}
		}
	}

	// Name classes in first-occurrence order. Ordinal suffixes
	// disambiguate distinct classes whose variables share a name; the
	// generated name must itself be free (e.g. a class named "s" may not
	// take ordinal suffix "2" when another variable is literally "s2").
	classTok := map[stepVar]string{}
	taken := map[string]bool{}
	for _, sv := range orderedVars {
		base := strings.ToLower(find(sv).v)
		taken[base] = true
	}
	assigned := map[string]bool{}
	for _, sv := range orderedVars {
		root := find(sv)
		if _, ok := classTok[root]; ok {
			continue
		}
		base := strings.ToLower(root.v)
		name := base
		if assigned[name] {
			for n := 2; ; n++ {
				cand := fmt.Sprintf("%s_%d", base, n)
				if !assigned[cand] && !taken[cand] {
					name = cand
					break
				}
			}
		}
		classTok[root] = name
		assigned[name] = true
	}

	out := make([]map[string]string, len(p.Rules))
	for i, r := range p.Rules {
		m := map[string]string{}
		for _, v := range r.Variables() {
			m[v] = classTok[find(stepVar{i, v})]
		}
		out[i] = m
	}
	return out
}

// groupVars returns the group variables of an aggregation rule (head
// variables plus variables of conditions over the aggregate, minus the
// target); for plain rules it returns nil.
func groupVars(r *ast.Rule) map[string]bool {
	if r.Aggregation == nil {
		return nil
	}
	target := r.Aggregation.Target
	out := map[string]bool{}
	for _, v := range r.Head.Variables() {
		if v != target {
			out[v] = true
		}
	}
	for _, c := range r.Conditions {
		vars := c.Variables()
		hasTarget := false
		for _, v := range vars {
			if v == target {
				hasTarget = true
			}
		}
		if hasTarget {
			for _, v := range vars {
				if v != target {
					out[v] = true
				}
			}
		}
	}
	return out
}

// RuleFor returns the path rule a derivation should align with: the first
// rule of the path equal to the derivation's rule that is not yet taken.
// It is a small helper for the mapping package and tests.
func RuleFor(p *paths.Path, taken []bool, r *ast.Rule) int {
	for i, pr := range p.Rules {
		if !taken[i] && pr == r {
			return i
		}
	}
	return -1
}
