package template

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/depgraph"
	"repro/internal/glossary"
	"repro/internal/parser"
	"repro/internal/paths"
)

const figure7Src = `
HasCapital(f, p): <f> is a financial institution with capital of <p>.
Shock(f, s): a shock amounting to <s> euro affects <f>.
Default(f): <f> is in default.
Debts(d, c, v): <d> has an amount <v> of debts with <c>.
Risk(c, e): <c> is at risk of defaulting given its loan of <e> euros of exposures to a defaulted debtor.
`

const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

const controlSrc = `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`

const controlGlossarySrc = `
Own(x, y, s): <x> owns <s> shares of <y>.
Control(x, y): <x> exercises control over <y>.
Company(x): <x> is a business corporation.
`

func stressStore(t *testing.T) *Store {
	t.Helper()
	prog := parser.MustParse(stressSimpleSrc)
	a := paths.Analyze(depgraph.New(prog))
	s, err := Generate(a, glossary.MustParse(figure7Src))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return s
}

// TestFigure6Pi1 reproduces the Π1 template row of Figure 6.
func TestFigure6Pi1(t *testing.T) {
	s := stressStore(t)
	tpl := s.ByPath("Π1")
	if tpl == nil {
		t.Fatal("Π1 template missing")
	}
	want := "Since a shock amounting to <s> euro affects <f>, and <f> is a financial institution with capital of <p1>, and <s> is higher than <p1>, then <f> is in default."
	if tpl.Text != want {
		t.Errorf("Π1 text =\n%q, want\n%q", tpl.Text, want)
	}
	toks := tpl.Tokens()
	if len(toks) != 3 || toks[0] != "f" || toks[1] != "p1" || toks[2] != "s" {
		t.Errorf("Π1 tokens = %v", toks)
	}
}

// TestFigure6Pi2 checks the Π2 template: the debtor token <d> of rule β
// stays distinct from the shocked entity <f> (contributor-varying), while
// the creditor <c> flows from β into γ (single token).
func TestFigure6Pi2(t *testing.T) {
	s := stressStore(t)
	tpl := s.ByPath("Π2")
	if tpl == nil {
		t.Fatal("Π2 template missing")
	}
	for _, tok := range []string{"<f>", "<s>", "<p1>", "<d>", "<c>", "<v>", "<e>", "<p2>"} {
		if !strings.Contains(tpl.Text, tok) {
			t.Errorf("Π2 text missing token %s:\n%s", tok, tpl.Text)
		}
	}
	// β's creditor and γ's creditor share token <c>.
	if tpl.StepTokens[1]["C"] != tpl.StepTokens[2]["C"] {
		t.Errorf("creditor tokens differ: %v vs %v", tpl.StepTokens[1], tpl.StepTokens[2])
	}
	// β's debtor is NOT unified with α's shocked entity.
	if tpl.StepTokens[0]["F"] == tpl.StepTokens[1]["D"] {
		t.Error("debtor unified with shocked entity across an aggregation")
	}
	// Three sentences.
	if got := strings.Count(tpl.Text, "Since "); got != 3 {
		t.Errorf("sentences = %d, want 3", got)
	}
	// The truncated variant does not verbalize the aggregator.
	if strings.Contains(tpl.Text, "sum") {
		t.Errorf("Π2 (non-dashed) verbalizes aggregator:\n%s", tpl.Text)
	}
}

// TestFigure6DashedVariant checks Π2* verbalizes the aggregator.
func TestFigure6DashedVariant(t *testing.T) {
	s := stressStore(t)
	tpl := s.ByPath("Π2*")
	if tpl == nil {
		t.Fatal("Π2* template missing")
	}
	if !strings.Contains(tpl.Text, "with <e> given by the sum of <v>") {
		t.Errorf("Π2* does not verbalize the aggregation:\n%s", tpl.Text)
	}
}

// TestFigure6Gamma1 checks the reasoning cycle template.
func TestFigure6Gamma1(t *testing.T) {
	s := stressStore(t)
	tpl := s.ByPath("Γ1")
	if tpl == nil {
		t.Fatal("Γ1 template missing")
	}
	if got := strings.Count(tpl.Text, "Since "); got != 2 {
		t.Errorf("Γ1 sentences = %d, want 2", got)
	}
	for _, tok := range []string{"<d>", "<c>", "<v>", "<e>", "<p2>"} {
		if !strings.Contains(tpl.Text, tok) {
			t.Errorf("Γ1 missing token %s:\n%s", tok, tpl.Text)
		}
	}
}

// TestInstantiateExample48 instantiates Π2 on the first three chase steps
// and Γ1* on the remaining two, reproducing the content of Example 4.8.
func TestInstantiateExample48(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	res := chase.MustRun(prog, chase.Options{})
	s := stressStore(t)

	pi2 := s.ByPath("Π2")
	first, err := pi2.Instantiate(res.Steps[:3])
	if err != nil {
		t.Fatalf("instantiate Π2: %v", err)
	}
	for _, c := range []string{"A", "6", "5", "7", "B", "2"} {
		if !strings.Contains(first, c) {
			t.Errorf("Π2 instance missing %q:\n%s", c, first)
		}
	}
	if strings.Contains(first, "<") {
		t.Errorf("unresolved token in instance:\n%s", first)
	}

	g1 := s.ByPath("Γ1*")
	second, err := g1.Instantiate(res.Steps[3:5])
	if err != nil {
		t.Fatalf("instantiate Γ1*: %v", err)
	}
	for _, c := range []string{"B", "C", "11", "10", "2 and 9"} {
		if !strings.Contains(second, c) {
			t.Errorf("Γ1* instance missing %q:\n%s", c, second)
		}
	}
	if !strings.Contains(second, "the sum of 2 and 9") {
		t.Errorf("aggregation contributors not expanded:\n%s", second)
	}
}

func TestInstantiateArityMismatch(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	res := chase.MustRun(prog, chase.Options{})
	s := stressStore(t)
	if _, err := s.ByPath("Π2").Instantiate(res.Steps[:2]); err == nil {
		t.Error("wrong derivation count accepted")
	}
}

func TestCheckTextAndEnhanced(t *testing.T) {
	s := stressStore(t)
	tpl := s.ByPath("Π1")
	good := "Because of a shock of <s> euro, <f> with capital <p1> is in default."
	if err := tpl.AddEnhanced(good); err != nil {
		t.Errorf("valid enhanced rejected: %v", err)
	}
	if tpl.BestText() != good {
		t.Errorf("BestText = %q", tpl.BestText())
	}
	bad := "Because of a shock, <f> defaults." // omits <s> and <p1>
	if err := tpl.AddEnhanced(bad); err == nil {
		t.Error("omitting enhanced accepted")
	} else if !strings.Contains(err.Error(), "p1") || !strings.Contains(err.Error(), "s") {
		t.Errorf("omission error = %v", err)
	}
	if len(tpl.Enhanced) != 1 {
		t.Errorf("enhanced count = %d, want 1", len(tpl.Enhanced))
	}
}

func TestBestTextFallsBackToDeterministic(t *testing.T) {
	s := stressStore(t)
	tpl := s.ByPath("Γ1")
	if tpl.BestText() != tpl.Text {
		t.Error("BestText without enhanced variants changed")
	}
}

// TestJointPathTokens checks the company control joint path Π5: the shares
// of σ1 and σ3 are distinct tokens (they denote different values), while the
// controller x is shared.
func TestJointPathTokens(t *testing.T) {
	prog := parser.MustParse(controlSrc)
	a := paths.Analyze(depgraph.New(prog))
	s, err := Generate(a, glossary.MustParse(controlGlossarySrc))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	tpl := s.ByPath("Π5")
	if tpl == nil {
		t.Fatal("Π5 missing")
	}
	// σ1 = step 0, σ2 = step 1, σ3 = step 2. σ3's Control input unifies
	// with its closest producer σ2; σ1 keeps its own tokens (it feeds the
	// aggregation as a distinct contributor).
	if tpl.StepTokens[1]["X"] != tpl.StepTokens[2]["X"] {
		t.Errorf("σ2 controller not unified: %v vs %v", tpl.StepTokens[1], tpl.StepTokens[2])
	}
	if tpl.StepTokens[0]["S"] == tpl.StepTokens[2]["S"] {
		t.Error("direct share and contributed share share a token")
	}
	if tpl.StepTokens[0]["Y"] == tpl.StepTokens[2]["Y"] {
		t.Error("σ1 target and σ3 target share a token")
	}
}

func TestStoreAccessors(t *testing.T) {
	s := stressStore(t)
	all := s.All()
	if len(all) != 5 { // Π1, Π2, Π2*, Γ1, Γ1*
		t.Errorf("All = %d templates", len(all))
	}
	if s.ByPath("missing") != nil {
		t.Error("ByPath(missing) non-nil")
	}
	if s.Analysis() == nil || s.Glossary() == nil {
		t.Error("accessors nil")
	}
}

func TestGenerateMissingGlossary(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	a := paths.Analyze(depgraph.New(prog))
	if _, err := Generate(a, glossary.New()); err == nil {
		t.Error("empty glossary accepted")
	}
}

func TestRuleFor(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	a := paths.Analyze(depgraph.New(prog))
	p := a.ByID("Π2")
	taken := make([]bool, len(p.Rules))
	beta := prog.RuleByLabel("beta")
	i := RuleFor(p, taken, beta)
	if i != 1 {
		t.Errorf("RuleFor(beta) = %d, want 1", i)
	}
	taken[1] = true
	if RuleFor(p, taken, beta) != -1 {
		t.Error("taken rule matched again")
	}
}
