package template

import (
	"strings"
	"testing"
)

func TestExportFormat(t *testing.T) {
	s := stressStore(t)
	doc := s.Export()
	for _, sub := range []string{"## Π1", "## Π2*", "## Γ1", "tokens: f, p1, s", "Since a shock"} {
		if !strings.Contains(doc, sub) {
			t.Errorf("export missing %q:\n%s", sub, doc)
		}
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := stressStore(t)
	// Importing an unmodified export attaches nothing.
	attached, err := s.ImportEnhanced(s.Export())
	if err != nil {
		t.Fatalf("ImportEnhanced: %v", err)
	}
	if attached != 0 {
		t.Errorf("unchanged import attached %d variants", attached)
	}
}

func TestImportReviewedText(t *testing.T) {
	s := stressStore(t)
	doc := `
## Π1
A shock of <s> euro hits <f>, whose capital of <p1> cannot absorb it, so <f> is in default.
`
	attached, err := s.ImportEnhanced(doc)
	if err != nil {
		t.Fatalf("ImportEnhanced: %v", err)
	}
	if attached != 1 {
		t.Fatalf("attached = %d", attached)
	}
	tpl := s.ByPath("Π1")
	if !strings.Contains(tpl.BestText(), "cannot absorb it") {
		t.Errorf("reviewed text not preferred: %q", tpl.BestText())
	}
}

func TestImportRejectsTokenLoss(t *testing.T) {
	s := stressStore(t)
	doc := `
## Π1
A shock hits <f>, which defaults.
`
	attached, err := s.ImportEnhanced(doc)
	if err == nil {
		t.Fatal("token-dropping review accepted")
	}
	if attached != 0 {
		t.Errorf("attached = %d", attached)
	}
	for _, tok := range []string{"p1", "s"} {
		if !strings.Contains(err.Error(), tok) {
			t.Errorf("error %q does not name token %q", err, tok)
		}
	}
}

func TestImportUnknownPath(t *testing.T) {
	s := stressStore(t)
	if _, err := s.ImportEnhanced("## Π99\nsome text with tokens.\n"); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestImportMixedSections(t *testing.T) {
	s := stressStore(t)
	doc := `
## Π1
Better text: shock of <s> euro, capital <p1>, entity <f> defaults.

## Π99
bogus section.
`
	attached, err := s.ImportEnhanced(doc)
	if err == nil {
		t.Error("bogus section not reported")
	}
	if attached != 1 {
		t.Errorf("good section not attached: %d", attached)
	}
}

func TestImportParseErrors(t *testing.T) {
	s := stressStore(t)
	if _, err := s.ImportEnhanced("stray text before any header"); err == nil {
		t.Error("text before header accepted")
	}
	if _, err := s.ImportEnhanced("## \ntext"); err == nil {
		t.Error("empty header accepted")
	}
}

func TestImportComments(t *testing.T) {
	s := stressStore(t)
	doc := `
# top comment
## Π1
tokens: whatever, ignored
# inline comment
Reviewed: a shock of <s> hits <f> with capital <p1>; <f> defaults.
`
	attached, err := s.ImportEnhanced(doc)
	if err != nil {
		t.Fatalf("ImportEnhanced: %v", err)
	}
	if attached != 1 {
		t.Errorf("attached = %d", attached)
	}
}
