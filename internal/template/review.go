package template

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the human-in-the-loop review step of the paper's
// Section 4.4: because templates for recurring KG applications are
// pre-computed once, domain experts can inspect and polish them before
// deployment. Export writes the template store into an editable text
// document; ImportEnhanced reads the (possibly edited) document back,
// attaching each reviewed text as an enhanced variant after running the
// automatic token-presence check — so a reviewer cannot accidentally drop a
// variable from an explanation.
//
// The review document format is line-oriented:
//
//	## Π2
//	tokens: c, d, e, f, p1, p2, s, v
//	Since a shock amounting to <s> euro affects <f>, ...
//
// Everything after the "tokens:" line up to the next "## " header (or EOF)
// is the template text; blank lines and lines starting with '#' (other than
// headers) are ignored.

// Export renders the store as a review document containing, for every
// template, its path id, token inventory and current best text.
func (s *Store) Export() string {
	var sb strings.Builder
	sb.WriteString("# Explanation template review document.\n")
	sb.WriteString("# Edit the text under each '## <path>' header; every listed token\n")
	sb.WriteString("# must remain present. Re-import with Store.ImportEnhanced.\n\n")
	for _, t := range s.All() {
		fmt.Fprintf(&sb, "## %s\n", t.Path.ID)
		fmt.Fprintf(&sb, "tokens: %s\n", strings.Join(t.Tokens(), ", "))
		sb.WriteString(t.BestText())
		sb.WriteString("\n\n")
	}
	return sb.String()
}

// ImportEnhanced parses a review document and attaches each section's text
// as an enhanced variant of the named template. It returns how many
// variants were attached and an error listing every rejected section
// (unknown path or failed token check); accepted sections are attached even
// when others fail.
func (s *Store) ImportEnhanced(doc string) (int, error) {
	sections, err := parseReviewDoc(doc)
	if err != nil {
		return 0, err
	}
	attached := 0
	var problems []string
	ids := make([]string, 0, len(sections))
	for id := range sections {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		text := sections[id]
		t := s.ByPath(id)
		if t == nil {
			problems = append(problems, fmt.Sprintf("unknown reasoning path %q", id))
			continue
		}
		if text == t.Text || text == t.BestText() {
			continue // unchanged section
		}
		if err := t.AddEnhanced(text); err != nil {
			problems = append(problems, err.Error())
			continue
		}
		// A reviewed text becomes the preferred variant.
		last := len(t.Enhanced) - 1
		t.Enhanced[0], t.Enhanced[last] = t.Enhanced[last], t.Enhanced[0]
		attached++
	}
	if len(problems) > 0 {
		return attached, fmt.Errorf("template review: %s", strings.Join(problems, "; "))
	}
	return attached, nil
}

// parseReviewDoc splits the document into path-id → text sections.
func parseReviewDoc(doc string) (map[string]string, error) {
	sections := map[string]string{}
	var current string
	var body []string
	flush := func() {
		if current != "" {
			sections[current] = strings.TrimSpace(strings.Join(body, "\n"))
		}
		body = nil
	}
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "## "):
			flush()
			current = strings.TrimSpace(strings.TrimPrefix(trimmed, "## "))
			if current == "" {
				return nil, fmt.Errorf("template review: line %d: empty section header", i+1)
			}
		case strings.HasPrefix(trimmed, "tokens:"):
			continue // informational line
		case strings.HasPrefix(trimmed, "#"):
			continue // comment
		case current == "" && trimmed != "":
			return nil, fmt.Errorf("template review: line %d: text before first section header", i+1)
		default:
			body = append(body, line)
		}
	}
	flush()
	return sections, nil
}
