package chase

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/term"
)

// Options configure a chase run.
type Options struct {
	// MaxRounds bounds the number of evaluation rounds; 0 means the
	// default (10_000). The bound exists as a safety net for programs
	// whose termination is not otherwise guaranteed (e.g. multiplicative
	// recursion over cyclic ownership without a threshold condition).
	MaxRounds int
	// MaxFacts bounds the total number of facts; 0 means the default
	// (10_000_000).
	MaxFacts int
	// ExtraFacts are added to the program's embedded facts before running.
	ExtraFacts []ast.Atom
	// Naive disables semi-naive evaluation: every round re-joins every
	// rule against the whole store instead of requiring at least one fact
	// derived since the rule's previous evaluation. Exposed for the
	// ablation benchmark; results are identical either way.
	Naive bool
	// Workers sets the size of the worker pool used for the join phase of
	// each rule evaluation. 0 (and 1) select the sequential engine,
	// preserving its exact behavior; a negative value selects
	// runtime.GOMAXPROCS(0). Parallel evaluation is deterministic: the
	// fact ids, chase steps, provenance edges, and aggregation
	// contributions are byte-for-byte identical to the sequential engine
	// at any worker count (see parallel.go for the argument).
	Workers int
	// Legacy selects the pre-compilation join engine that interprets rules
	// per match with map-based substitutions, instead of the default
	// compiled slot-plan executor (plan.go). Results are byte-identical
	// either way — the differential suite in plan_test.go enforces it —
	// so Legacy exists only as the differential-testing and benchmarking
	// baseline.
	Legacy bool
	// Batch selects the batch-at-a-time columnar join executor (batch.go):
	// each rule evaluation processes its entire semi-naive delta in one
	// vectorized pass over per-predicate sorted columnar indexes
	// (database.Columnar) instead of one depth-first walk per tuple.
	// Results are byte-identical to the default frame executor at any
	// worker count — the differential and fuzz suites enforce it — so,
	// like Workers and Legacy, Batch does not participate in result cache
	// fingerprints. Mutually exclusive with Legacy (the legacy engine
	// predates compiled plans, which the batch executor builds on).
	Batch bool
}

const (
	defaultMaxRounds = 10_000
	defaultMaxFacts  = 10_000_000
)

// Run executes the chase for the program until fixpoint and returns the
// result with full provenance. It is RunLive followed by a Snapshot; callers
// that need to maintain the fixpoint under later base-fact updates keep the
// Live handle instead (see live.go and internal/incremental).
func Run(p *ast.Program, opts Options) (*Result, error) {
	return RunContext(context.Background(), p, opts)
}

// RunContext is Run under a cancellation context: the engine checks ctx at
// every round, rule and parallel-chunk boundary and returns a wrapped
// ErrCanceled/ErrDeadline promptly after ctx ends. A canceled run has no
// side effects — every run builds its own store — so a later run over the
// same program is byte-identical to one that was never canceled (see
// context.go for the full contract).
func RunContext(ctx context.Context, p *ast.Program, opts Options) (*Result, error) {
	l, err := RunLiveContext(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return l.Snapshot(), nil
}

// MustRun is Run for statically-valid programs; it panics on error.
func MustRun(p *ast.Program, opts Options) *Result {
	r, err := Run(p, opts)
	if err != nil {
		panic(fmt.Sprintf("chase.MustRun: %v", err))
	}
	return r
}

type engine struct {
	prog       *ast.Program
	store      *database.Store
	steps      []*Derivation
	derivs     map[database.FactID][]*Derivation
	superseded map[database.FactID]bool
	// aggState tracks, per aggregation rule and group, the last emitted
	// fact so that an updated total supersedes it.
	aggState map[string]aggEmission
	// lastSeen records, per rule, the store size at the start of the
	// rule's previous evaluation; facts with id >= lastSeen are "new" for
	// semi-naive evaluation.
	lastSeen map[*ast.Rule]int
	// aggGroups accumulates aggregation contributors incrementally per
	// rule and group across rounds (semi-naive mode); aggOrder keeps the
	// deterministic group discovery order.
	aggGroups map[*ast.Rule]map[string]*aggGroup
	aggOrder  map[*ast.Rule][]string
	// supersessions counts supersession events; a rule whose groups may
	// reference superseded contributors recomputes all its totals when
	// the count moved since its previous evaluation.
	supersessions int
	lastSuper     map[*ast.Rule]int
	// dirtyGroups marks aggregation groups that lost a contributor or an
	// emission to a retraction (incremental maintenance, live.go); the
	// rule's next evaluation recomputes exactly those groups even when no
	// new contributor arrived. Nil outside incremental updates.
	dirtyGroups map[*ast.Rule]map[string]bool
	// plans caches the compiled slot-plan of each rule (and of constraint
	// pseudo-rules); unused in legacy mode.
	plans    map[*ast.Rule]*plan
	nullSeq  int
	maxFacts int
	naive    bool
	// legacy selects the map-based join interpreter over the compiled
	// slot-plan executor.
	legacy bool
	// batch selects the batch-at-a-time columnar executor (batch.go) over
	// the tuple-at-a-time frame executor; implies !legacy.
	batch bool
	// workers is the join-phase worker-pool size; <= 1 means sequential.
	workers int
	// keyBuf is the reusable scratch buffer for aggregation group and
	// contributor-identity keys (single-threaded accumulation phase only).
	keyBuf []byte
	// keyByID caches the canonical key bytes of interned values and emitBuf
	// is the reusable atom-key buffer — both serve the batch executor's
	// vectorized emission path (emitCols), which deduplicates derived rows
	// against the store without materializing atoms or substitutions.
	keyByID [][]byte
	emitBuf []byte
	// ctx is the run's cancellation context; nil means none (see context.go
	// for the checkpoint placement and the state left after a cancel).
	ctx context.Context
}

// aggGroup is the accumulated state of one aggregation group.
type aggGroup struct {
	key     string
	sub     term.Substitution // bindings of the group variables
	contrib []Contribution
	seen    map[string]bool // contributor identity (premise fact ids)
}

type aggEmission struct {
	fact  database.FactID
	value term.Term
}

// round applies each given rule once over the current store. It reports
// whether any new fact was derived. Cancellation is checked before every
// rule evaluation, so a canceled round stops between two complete
// evaluations.
func (e *engine) round(rules []*ast.Rule) (bool, error) {
	changed := false
	for _, r := range rules {
		if err := e.checkCtx(); err != nil {
			return changed, err
		}
		var c bool
		var err error
		if r.HasAggregation() {
			c, err = e.applyAggRule(r)
		} else {
			c, err = e.applyPlainRule(r)
		}
		if err != nil {
			return false, fmt.Errorf("chase: rule %s: %w", r.Label, err)
		}
		changed = changed || c
	}
	return changed, nil
}

// binding is one body homomorphism together with the matched facts in
// body-atom order. The legacy engine materializes the substitution directly
// (sub); the compiled engine carries the flat slot frame (frame for
// atom-bound variables as interned ids, vals for assignment targets) and
// converts to a substitution only at the emission boundary via bindingSub.
type binding struct {
	sub   term.Substitution
	frame []term.ValueID
	vals  []term.Term
	facts []database.FactID
}

// planFor returns the cached compiled plan of the rule, compiling it on
// first use (rules at Run start, constraint pseudo-rules when checked).
func (e *engine) planFor(r *ast.Rule) (*plan, error) {
	if p, ok := e.plans[r]; ok {
		return p, nil
	}
	p, err := compilePlan(r, e.store.Interner())
	if err != nil {
		return nil, err
	}
	e.plans[r] = p
	return p, nil
}

// bindingSub converts a binding to the substitution the emission path,
// provenance record, and aggregation contributors expose. Legacy bindings
// already carry it; compiled bindings are converted here — the single
// frame→Substitution boundary.
func (e *engine) bindingSub(r *ast.Rule, b binding) term.Substitution {
	if b.sub != nil {
		return b.sub
	}
	p := e.plans[r]
	in := e.store.Interner()
	sub := make(term.Substitution, p.nslots+p.nvals)
	for i, name := range p.slotNames {
		sub[name] = in.Value(b.frame[i])
	}
	for i, name := range p.valNames {
		sub[name] = b.vals[i]
	}
	return sub
}

// atomFilter restricts which facts an atom position may match during
// semi-naive evaluation; nil admits every fact.
type atomFilter func(atomIdx int, id database.FactID) bool

// joinBody enumerates all homomorphisms from the rule body into the current
// store, skipping superseded facts. Assignments are evaluated inline and
// conditions that are fully bound are checked; conditions mentioning the
// aggregation target are deferred (returned separately).
func (e *engine) joinBody(r *ast.Rule) ([]binding, error) {
	if !e.legacy {
		p, err := e.planFor(r)
		if err != nil {
			return nil, err
		}
		if e.batch {
			return e.joinBatchBody(p)
		}
		if e.workers > 1 {
			return e.joinPlanBodyParallel(p)
		}
		return e.joinPlanBody(p)
	}
	if e.workers > 1 {
		return e.joinBodyParallel(r)
	}
	pending, err := e.joinAtoms(r, nil, nil)
	if err != nil || pending == nil {
		return nil, err
	}
	return e.finishBindings(r, pending)
}

// joinBodySemiNaive enumerates only the homomorphisms that use at least one
// fact with id >= boundary (a fact derived since the rule's previous
// evaluation), via the standard pivot decomposition: for pivot i, atoms
// before i match old facts, atom i matches new facts, atoms after i match
// anything. The decomposition is disjoint, so no duplicates arise.
func (e *engine) joinBodySemiNaive(r *ast.Rule, boundary database.FactID) ([]binding, error) {
	if !e.legacy {
		p, err := e.planFor(r)
		if err != nil {
			return nil, err
		}
		if e.batch {
			return e.joinBatchSemiNaive(p, boundary)
		}
		if e.workers > 1 {
			return e.joinPlanSemiNaiveParallel(p, boundary)
		}
		return e.joinPlanSemiNaive(p, boundary)
	}
	if e.workers > 1 {
		return e.joinBodySemiNaiveParallel(r, boundary)
	}
	var all []binding
	for pivot := range r.Body {
		pending, err := e.joinAtoms(r, pivotOrder(r, pivot), pivotFilter(pivot, boundary))
		if err != nil {
			return nil, err
		}
		all = append(all, pending...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	return e.finishBindings(r, all)
}

// pivotFilter is the semi-naive admission rule for one pivot decomposition:
// atoms before the pivot match only old facts, the pivot matches only new
// facts, atoms after the pivot match anything.
func pivotFilter(pivot int, boundary database.FactID) atomFilter {
	return func(atomIdx int, id database.FactID) bool {
		switch {
		case atomIdx < pivot:
			return id < boundary
		case atomIdx == pivot:
			return id >= boundary
		default:
			return true
		}
	}
}

// pivotOrder starts the join at the pivot atom: it is restricted to the
// (few) new facts, so the enumeration is cut down immediately instead of
// first scanning the full extent of the earlier atoms.
func pivotOrder(r *ast.Rule, pivot int) []int {
	order := make([]int, 0, len(r.Body))
	order = append(order, pivot)
	for i := range r.Body {
		if i != pivot {
			order = append(order, i)
		}
	}
	return order
}

// joinAtoms performs the relational join of the body atoms in the given
// evaluation order (nil means body order) under an optional per-atom fact
// filter. The premise facts of each binding are reported in body-atom
// order regardless of the evaluation order.
func (e *engine) joinAtoms(r *ast.Rule, order []int, allow atomFilter) ([]binding, error) {
	n := len(r.Body)
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	first := make([]database.FactID, n)
	pending := []binding{{sub: term.Substitution{}, facts: first}}
	for _, atomIdx := range order {
		pending = e.extendAtom(r, pending, atomIdx, allow)
		if len(pending) == 0 {
			return nil, nil
		}
	}
	return pending, nil
}

// extendAtom extends every pending binding with every admissible match of
// one body atom, preserving the relative order of the inputs (the output is
// ordered lexicographically by input position, then match position). It
// only reads the store and the superseded set, so disjoint input slices can
// be extended concurrently.
func (e *engine) extendAtom(r *ast.Rule, pending []binding, atomIdx int, allow atomFilter) []binding {
	pattern := r.Body[atomIdx]
	n := len(r.Body)
	var next []binding
	for _, b := range pending {
		for _, m := range e.store.MatchBind(pattern, b.sub) {
			if e.superseded[m.Fact.ID] {
				continue
			}
			if allow != nil && !allow(atomIdx, m.Fact.ID) {
				continue
			}
			facts := make([]database.FactID, n)
			copy(facts, b.facts)
			facts[atomIdx] = m.Fact.ID
			next = append(next, binding{sub: m.Sub, facts: facts})
		}
	}
	return next
}

// finishBindings evaluates assignments and the non-deferred conditions over
// the joined bindings.
func (e *engine) finishBindings(r *ast.Rule, pending []binding) ([]binding, error) {
	// Evaluate assignments, extending each binding.
	for _, as := range r.Assignments {
		for i := range pending {
			v, err := as.Eval(pending[i].sub)
			if err != nil {
				return nil, err
			}
			if !pending[i].sub.Bind(as.Target, v) {
				return nil, fmt.Errorf("assignment %s: target already bound", as)
			}
		}
	}
	// Apply the conditions that are evaluable now (i.e. that do not
	// mention a not-yet-bound aggregation target).
	deferTarget := ""
	if r.Aggregation != nil {
		deferTarget = r.Aggregation.Target
	}
	var out []binding
	for _, b := range pending {
		ok := true
		for _, c := range r.Conditions {
			if deferTarget != "" && mentions(c, deferTarget) {
				continue
			}
			holds, err := c.Holds(b.sub)
			if err != nil {
				return nil, err
			}
			if !holds {
				ok = false
				break
			}
		}
		// Stratified negation: the binding is rejected when a negated atom
		// matches some current (non-superseded) fact. Negated predicates
		// live in strictly lower strata, so their extension is final here.
		for _, na := range r.Negated {
			if !ok {
				break
			}
			grounded := na.Apply(b.sub)
			for _, id := range e.store.Match(grounded) {
				if !e.superseded[id] {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	return out, nil
}

// checkConstraints verifies every negative constraint against the saturated
// store, reporting the first violating homomorphism.
func (e *engine) checkConstraints() error {
	for _, c := range e.prog.Constraints {
		if err := e.checkCtx(); err != nil {
			return err
		}
		pseudo := &ast.Rule{
			Label:      c.Label,
			Head:       ast.NewAtom("⊥"),
			Body:       c.Body,
			Negated:    c.Negated,
			Conditions: c.Conditions,
		}
		bindings, err := e.joinBody(pseudo)
		if err != nil {
			return fmt.Errorf("chase: constraint %s: %w", c.Label, err)
		}
		if len(bindings) > 0 {
			witness := make([]string, len(bindings[0].facts))
			for i, id := range bindings[0].facts {
				witness[i] = e.store.Get(id).String()
			}
			return fmt.Errorf("chase: constraint %s violated by %s", constraintName(c), strings.Join(witness, ", "))
		}
	}
	return nil
}

func constraintName(c *ast.Constraint) string {
	if c.Label != "" {
		return c.Label
	}
	return c.String()
}

func mentions(c ast.Condition, v string) bool {
	return (c.Left.IsVariable() && c.Left.Name() == v) ||
		(c.Right.IsVariable() && c.Right.Name() == v)
}

// applyPlainRule fires a non-aggregation rule on every body homomorphism.
// After its first evaluation, semi-naive mode only considers homomorphisms
// involving at least one fact derived since the rule's previous evaluation.
func (e *engine) applyPlainRule(r *ast.Rule) (bool, error) {
	if e.batch && !e.legacy {
		p, err := e.planFor(r)
		if err != nil {
			return false, err
		}
		if p.head != nil {
			return e.applyPlainRuleCols(r, p)
		}
	}
	prev, seen := e.lastSeen[r]
	e.lastSeen[r] = e.store.Len()
	var bindings []binding
	var err error
	switch {
	case e.naive || !seen || prev == 0:
		bindings, err = e.joinBody(r)
	case e.store.Len() == prev:
		return false, nil // no new facts since the previous evaluation
	default:
		bindings, err = e.joinBodySemiNaive(r, database.FactID(prev))
	}
	if err != nil {
		// Roll the semi-naive boundary back so the interrupted evaluation
		// (e.g. a cancellation at a chunk boundary) is not recorded as done;
		// the join emitted nothing, so this restores the pre-call state.
		if seen {
			e.lastSeen[r] = prev
		} else {
			delete(e.lastSeen, r)
		}
		return false, err
	}
	changed := false
	for _, b := range bindings {
		bsub := e.bindingSub(r, b)
		// Restricted chase: when the head has existential variables, the
		// step is pre-empted if some existing fact already satisfies the
		// head pattern under the current bindings (existential positions
		// act as wildcards). Without this check the rule would invent a
		// fresh null every round and never reach a fixpoint. MatchAny
		// stops at the first witness instead of materializing the full
		// match list.
		if hasExistential(r, bsub) {
			pattern := r.Head.Apply(bsub)
			if e.store.MatchAny(pattern) {
				continue
			}
		}
		head, sub, err := e.instantiateHead(r, bsub)
		if err != nil {
			return false, err
		}
		added, err := e.emit(r, head, b.facts, nil, sub)
		if err != nil {
			return false, err
		}
		changed = changed || added
	}
	return changed, nil
}

// applyPlainRuleCols is applyPlainRule on the batch engine for rules with a
// compiled head layout (non-existential, non-aggregating): join units stay
// columnar and feed the vectorized emission path, so no Substitution, atom,
// or per-row key string is built for rows that turn out to be duplicates.
// Semi-naive bookkeeping, error rollback, emission order, and every
// observable store/provenance effect mirror applyPlainRule exactly.
func (e *engine) applyPlainRuleCols(r *ast.Rule, p *plan) (bool, error) {
	prev, seen := e.lastSeen[r]
	e.lastSeen[r] = e.store.Len()
	var units []batchUnit
	var err error
	switch {
	case e.naive || !seen || prev == 0:
		units, err = e.joinBatchUnits(p, false, 0, false)
	case e.store.Len() == prev:
		return false, nil // no new facts since the previous evaluation
	default:
		units, err = e.joinBatchUnits(p, true, database.FactID(prev), false)
	}
	if err != nil {
		// Roll the semi-naive boundary back so the interrupted evaluation
		// (e.g. a cancellation at a chunk boundary) is not recorded as done;
		// the join emitted nothing, so this restores the pre-call state.
		if seen {
			e.lastSeen[r] = prev
		} else {
			delete(e.lastSeen, r)
		}
		return false, err
	}
	changed := false
	for _, u := range units {
		if u.cols != nil {
			c, err := e.emitCols(r, p, u.cols)
			if err != nil {
				return false, err
			}
			changed = changed || c
			continue
		}
		// Frame-fallback units emit per binding, the classic path. The head
		// has no existential variables (p.head != nil), so the restricted-
		// chase pre-emption never applies.
		for _, b := range u.binds {
			bsub := e.bindingSub(r, b)
			head, sub, err := e.instantiateHead(r, bsub)
			if err != nil {
				return false, err
			}
			added, err := e.emit(r, head, b.facts, nil, sub)
			if err != nil {
				return false, err
			}
			changed = changed || added
		}
	}
	return changed, nil
}

// idKey returns the canonical key bytes of an interned value, cached on the
// engine (emission is single-threaded).
func (e *engine) idKey(id term.ValueID) []byte {
	if int(id) >= len(e.keyByID) {
		size := e.store.Interner().Len()
		if size <= int(id) {
			size = int(id) + 1
		}
		grown := make([][]byte, size)
		copy(grown, e.keyByID)
		e.keyByID = grown
	}
	if e.keyByID[id] == nil {
		e.keyByID[id] = []byte(e.store.Interner().Value(id).Key())
	}
	return e.keyByID[id]
}

// emitCols is the vectorized emission path: it walks canonical leaf columns
// row by row, builds each head atom's canonical key into a reusable buffer
// from cached per-value key bytes, and skips duplicates with a single
// allocation-free map read (Store.LookupKey) — emit's Add would return
// added=false and record nothing, so skipping is byte-identical. Only rows
// that actually insert materialize the atom, row, substitution, premises,
// and derivation, via the store's pre-keyed fast path (Store.AddKeyed).
func (e *engine) emitCols(r *ast.Rule, p *plan, st *batchCols) (bool, error) {
	hp := p.head
	in := e.store.Interner()
	nb := len(p.rule.Body)
	changed := false
	buf := e.emitBuf
	for i := 0; i < st.n; i++ {
		// The limit check precedes the duplicate check, exactly like emit.
		if e.store.Len() >= e.maxFacts {
			e.emitBuf = buf
			return false, fmt.Errorf("fact limit %d exceeded", e.maxFacts)
		}
		buf = append(buf[:0], hp.open...)
		for j := range hp.part {
			part := &hp.part[j]
			if j > 0 {
				buf = append(buf, ',')
			}
			switch {
			case part.isConst:
				buf = append(buf, part.key...)
			case part.kind == refSlot:
				buf = append(buf, e.idKey(st.slots[part.idx][i])...)
			default:
				buf = append(buf, st.vals[part.idx][i].Key()...)
			}
		}
		buf = append(buf, ')')
		if _, ok := e.store.LookupKey(buf); ok {
			continue // already derived; no new fact, step, or proof (see emit)
		}
		terms := make([]term.Term, len(hp.part))
		row := make([]term.ValueID, len(hp.part))
		for j := range hp.part {
			part := &hp.part[j]
			switch {
			case part.isConst:
				terms[j], row[j] = part.t, part.id
			case part.kind == refSlot:
				id := st.slots[part.idx][i]
				terms[j], row[j] = in.Value(id), id
			default:
				t := st.vals[part.idx][i]
				terms[j], row[j] = t, in.Intern(t)
			}
		}
		key := make([]byte, len(buf))
		copy(key, buf)
		f, err := e.store.AddKeyed(ast.Atom{Predicate: hp.pred, Terms: terms}, key, row, false)
		if err != nil {
			e.emitBuf = buf
			return false, err
		}
		sub := make(term.Substitution, p.nslots+p.nvals)
		for s, name := range p.slotNames {
			sub[name] = in.Value(st.slots[s][i])
		}
		for v, name := range p.valNames {
			sub[name] = st.vals[v][i]
		}
		premises := make([]database.FactID, nb)
		for a := 0; a < nb; a++ {
			premises[a] = st.facts[a][i]
		}
		d := &Derivation{
			Step:     len(e.steps),
			Rule:     r,
			Fact:     f.ID,
			Premises: premises,
			Sub:      sub,
		}
		e.steps = append(e.steps, d)
		e.derivs[f.ID] = append(e.derivs[f.ID], d)
		changed = true
	}
	e.emitBuf = buf
	return changed, nil
}

// applyAggRule evaluates an aggregation rule with group-by semantics: body
// homomorphisms are grouped by the variables visible outside the aggregate
// (head variables plus deferred-condition variables, minus the target), the
// aggregate is computed per group over all contributors, deferred conditions
// are checked, and a changed total supersedes the rule's previous emission
// for that group.
func (e *engine) applyAggRule(r *ast.Rule) (bool, error) {
	// Aggregation groups accumulate contributors incrementally: after the
	// first (full) join, semi-naive mode only joins homomorphisms that use
	// a fact derived since the rule's previous evaluation and merges them
	// into the stored groups. A group's total is recomputed when it gains
	// contributors, or for every group when a supersession happened since
	// the previous evaluation (a stored contributor may have gone stale).
	prev, seen := e.lastSeen[r]
	e.lastSeen[r] = e.store.Len()
	full := e.naive || !seen || prev == 0
	prevSuper := e.lastSuper[r]
	superMoved := prevSuper != e.supersessions
	e.lastSuper[r] = e.supersessions
	dirty := e.dirtyGroups[r]
	if !full && e.store.Len() == prev && !superMoved && len(dirty) == 0 {
		return false, nil
	}
	delete(e.dirtyGroups, r)

	var bindings []binding
	var err error
	if full {
		e.aggGroups[r] = map[string]*aggGroup{}
		e.aggOrder[r] = nil
		bindings, err = e.joinBody(r)
	} else if e.store.Len() > prev {
		bindings, err = e.joinBodySemiNaive(r, database.FactID(prev))
	}
	if err != nil {
		// Restore the evaluation bookkeeping consumed above so an
		// interrupted join (cancellation at a chunk boundary) leaves the
		// rule due for re-evaluation, not silently skipped. In full mode the
		// wiped group state is rebuilt by the full re-join the restored
		// boundary forces.
		if seen {
			e.lastSeen[r] = prev
		} else {
			delete(e.lastSeen, r)
		}
		e.lastSuper[r] = prevSuper
		if dirty != nil {
			e.dirtyGroups[r] = dirty
		}
		return false, err
	}

	g := r.Aggregation
	groupVars := aggGroupVars(r)
	groups := e.aggGroups[r]
	if groups == nil {
		groups = map[string]*aggGroup{}
		e.aggGroups[r] = groups
	}
	touched := map[string]bool{}
	for key := range dirty {
		touched[key] = true
	}
	for _, b := range bindings {
		key := e.groupKeyOf(r, groupVars, b)
		gr, ok := groups[key]
		if !ok {
			gr = &aggGroup{key: key, sub: e.groupSub(r, groupVars, b), seen: map[string]bool{}}
			groups[key] = gr
			e.aggOrder[r] = append(e.aggOrder[r], key)
		}
		// Contributor identity: the tuple of premise facts. Distinct
		// facts are distinct contributors (two loans between the same
		// entities both count); re-derivations of the identical premise
		// tuple are not double counted.
		ident := e.factTupleKey(b.facts)
		if gr.seen[ident] {
			continue
		}
		gr.seen[ident] = true
		val, bound := e.bindingValue(r, b, g.Over)
		if !bound {
			return false, fmt.Errorf("aggregation %s: variable %s unbound", g, g.Over)
		}
		gr.contrib = append(gr.contrib, Contribution{Premises: b.facts, Value: val, Sub: e.bindingSub(r, b)})
		touched[key] = true
	}

	recomputeAll := full || superMoved
	changed := false
	for _, key := range e.aggOrder[r] {
		if !recomputeAll && !touched[key] {
			continue
		}
		gr := groups[key]
		live := e.liveContributions(gr.contrib)
		if len(live) == 0 {
			continue
		}
		total, err := aggregate(g.Func, live)
		if err != nil {
			return false, err
		}
		sub := gr.sub.Clone()
		if !sub.Bind(g.Target, total) {
			return false, fmt.Errorf("aggregation %s: target already bound", g)
		}
		// Deferred conditions (those mentioning the target).
		ok := true
		for _, c := range r.Conditions {
			if !mentions(c, g.Target) {
				continue
			}
			holds, err := c.Holds(sub)
			if err != nil {
				return false, err
			}
			if !holds {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		head, sub, err := e.instantiateHead(r, sub)
		if err != nil {
			return false, err
		}
		premises := dedupFacts(live)
		added, err := e.emitAgg(r, key, head, premises, live, sub, total)
		if err != nil {
			return false, err
		}
		changed = changed || added
	}
	return changed, nil
}

// liveContributions filters out contributors whose premises have been
// superseded by a more complete aggregate emission or tombstoned by an
// incremental retraction (the latter is belt-and-braces: purgeRetracted
// removes dead contributors physically; the check here is a cheap len test
// in the append-only common case).
func (e *engine) liveContributions(contrib []Contribution) []Contribution {
	live := contrib
	for i, c := range contrib {
		stale := false
		for _, id := range c.Premises {
			if e.superseded[id] || e.store.Retracted(id) {
				stale = true
				break
			}
		}
		if stale {
			// Copy-on-write: most groups have no stale contributors.
			if len(live) == len(contrib) {
				live = append([]Contribution{}, contrib[:i]...)
			}
			continue
		}
		if len(live) != len(contrib) {
			live = append(live, c)
		}
	}
	return live
}

// aggGroupVars returns the grouping variables of an aggregation rule: the
// head variables plus the variables of target-mentioning conditions, minus
// the target itself.
func aggGroupVars(r *ast.Rule) []string {
	g := r.Aggregation
	seen := map[string]bool{g.Target: true}
	var out []string
	add := func(names []string) {
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	add(r.Head.Variables())
	for _, c := range r.Conditions {
		if mentions(c, g.Target) {
			add(c.Variables())
		}
	}
	return out
}

// Aggregation keys are integer-id based: group keys encode atom-bound
// variables as their dense interned ids (4 bytes each) instead of canonical
// term strings, and contributor-identity keys varint-encode the premise fact
// ids. Assignment-target group variables encode by canonical key — a
// computed value may enter the dictionary later, so its id would not be
// stable across rounds, while its canonical key is. Id equality coincides
// with canonical-key equality, so the partition (and, with binding order,
// the aggOrder discovery order) is identical to the previous string keys.

// groupKeyOf builds the group key of one binding. Both engines produce the
// same partition; the byte encodings differ only in how a term is reached
// (slot id vs. dictionary lookup).
func (e *engine) groupKeyOf(r *ast.Rule, groupVars []string, b binding) string {
	buf := e.keyBuf[:0]
	in := e.store.Interner()
	if b.sub != nil {
		assigned := map[string]bool{}
		for _, as := range r.Assignments {
			assigned[as.Target] = true
		}
		for _, v := range groupVars {
			t, ok := b.sub[v]
			switch {
			case !ok:
				buf = append(buf, 0xff)
			case assigned[v]:
				buf = appendKeyPart(buf, t)
			default:
				// Atom-bound terms come from interned fact rows, so the
				// lookup always succeeds and the id is round-stable.
				if id, found := in.Lookup(t); found {
					buf = appendIDPart(buf, id)
				} else {
					buf = appendKeyPart(buf, t)
				}
			}
		}
	} else {
		p := e.plans[r]
		for _, ref := range p.groupRefs {
			switch ref.kind {
			case refSlot:
				buf = appendIDPart(buf, b.frame[ref.idx])
			case refVal:
				buf = appendKeyPart(buf, b.vals[ref.idx])
			default:
				buf = append(buf, 0xff)
			}
		}
	}
	e.keyBuf = buf
	return string(buf)
}

func appendIDPart(buf []byte, id term.ValueID) []byte {
	return append(buf, 'i', byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

func appendKeyPart(buf []byte, t term.Term) []byte {
	buf = append(buf, 'k')
	buf = append(buf, t.Key()...)
	return append(buf, 0)
}

// groupSub binds the group variables of one binding (the group-level part of
// the homomorphism stored on the aggregation group).
func (e *engine) groupSub(r *ast.Rule, groupVars []string, b binding) term.Substitution {
	sub := term.Substitution{}
	if b.sub != nil {
		for _, v := range groupVars {
			if t, bound := b.sub[v]; bound {
				sub[v] = t
			}
		}
		return sub
	}
	p := e.plans[r]
	in := e.store.Interner()
	for _, ref := range p.groupRefs {
		switch ref.kind {
		case refSlot:
			sub[ref.name] = in.Value(b.frame[ref.idx])
		case refVal:
			sub[ref.name] = b.vals[ref.idx]
		}
	}
	return sub
}

// bindingValue resolves one variable of a binding (the aggregated variable
// at accumulation time) without materializing the whole substitution.
func (e *engine) bindingValue(r *ast.Rule, b binding, name string) (term.Term, bool) {
	if b.sub != nil {
		t, ok := b.sub[name]
		return t, ok
	}
	p := e.plans[r]
	switch ref := p.overRef; {
	case ref.name == name && ref.kind == refSlot:
		return e.store.Interner().Value(b.frame[ref.idx]), true
	case ref.name == name && ref.kind == refVal:
		return b.vals[ref.idx], true
	}
	if i, ok := p.slotOf[name]; ok {
		return e.store.Interner().Value(b.frame[i]), true
	}
	if i, ok := p.valOf[name]; ok {
		return b.vals[i], true
	}
	return term.Term{}, false
}

// factTupleKey is the contributor-identity key: the premise fact ids,
// varint-encoded into the engine's reusable key buffer.
func (e *engine) factTupleKey(ids []database.FactID) string {
	buf := e.keyBuf[:0]
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, uint64(id))
	}
	e.keyBuf = buf
	return string(buf)
}

func dedupFacts(contrib []Contribution) []database.FactID {
	var out []database.FactID
	seen := map[database.FactID]bool{}
	for _, c := range contrib {
		for _, id := range c.Premises {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// aggregate folds contributor values with the aggregation function.
func aggregate(fn ast.AggFunc, contrib []Contribution) (term.Term, error) {
	if fn == ast.AggCount {
		return term.Int(int64(len(contrib))), nil
	}
	if len(contrib) == 0 {
		return term.Term{}, fmt.Errorf("aggregate %s over empty group", fn)
	}
	acc, ok := contrib[0].Value.AsFloat()
	if !ok {
		return term.Term{}, fmt.Errorf("aggregate %s over non-numeric value %v", fn, contrib[0].Value)
	}
	for _, c := range contrib[1:] {
		v, ok := c.Value.AsFloat()
		if !ok {
			return term.Term{}, fmt.Errorf("aggregate %s over non-numeric value %v", fn, c.Value)
		}
		switch fn {
		case ast.AggSum:
			acc += v
		case ast.AggProd:
			acc *= v
		case ast.AggMin:
			if v < acc {
				acc = v
			}
		case ast.AggMax:
			if v > acc {
				acc = v
			}
		default:
			return term.Term{}, fmt.Errorf("unsupported aggregation %q", fn)
		}
	}
	return term.Float(acc), nil
}

// hasExistential reports whether the rule head contains variables unbound
// under sub (i.e. existentially quantified head variables).
func hasExistential(r *ast.Rule, sub term.Substitution) bool {
	for _, v := range r.Head.Variables() {
		if _, ok := sub[v]; !ok {
			return true
		}
	}
	return false
}

// instantiateHead grounds the head under the substitution, inventing
// labelled nulls for existential variables.
func (e *engine) instantiateHead(r *ast.Rule, sub term.Substitution) (ast.Atom, term.Substitution, error) {
	out := sub
	extended := false
	for _, v := range r.Head.Variables() {
		if _, ok := out[v]; !ok {
			if !extended {
				out = out.Clone()
				extended = true
			}
			e.nullSeq++
			out[v] = term.Null("z" + strconv.Itoa(e.nullSeq))
		}
	}
	head := r.Head.Apply(out)
	if !head.IsGround() {
		return ast.Atom{}, nil, fmt.Errorf("head %v not ground after instantiation", head)
	}
	return head, out, nil
}

// emit adds a derived fact with its derivation. Chase steps whose conclusion
// already exists are pre-empted (no new fact, no new step); the derivation
// is still recorded as an alternative proof if it is the fact's first.
func (e *engine) emit(r *ast.Rule, head ast.Atom, premises []database.FactID, contrib []Contribution, sub term.Substitution) (bool, error) {
	if e.store.Len() >= e.maxFacts {
		return false, fmt.Errorf("fact limit %d exceeded", e.maxFacts)
	}
	f, added, err := e.store.Add(head, false)
	if err != nil {
		return false, err
	}
	if !added {
		return false, nil
	}
	d := &Derivation{
		Step:         len(e.steps),
		Rule:         r,
		Fact:         f.ID,
		Premises:     premises,
		Contributors: contrib,
		Sub:          sub,
	}
	e.steps = append(e.steps, d)
	e.derivs[f.ID] = append(e.derivs[f.ID], d)
	return true, nil
}

// emitAgg emits an aggregation result and supersedes the rule's previous
// emission for the same group when the total changed.
func (e *engine) emitAgg(r *ast.Rule, groupKey string, head ast.Atom, premises []database.FactID, contrib []Contribution, sub term.Substitution, total term.Term) (bool, error) {
	stateKey := r.Label + "\x00" + groupKey
	if prev, ok := e.aggState[stateKey]; ok && prev.value.Equal(total) {
		return false, nil
	}
	existing := e.store.Lookup(head)
	added, err := e.emit(r, head, premises, contrib, sub)
	if err != nil {
		return false, err
	}
	if !added && existing != nil && !existing.Extensional {
		// The identical total was already derived (possibly by another
		// rule); record the group state so we do not loop.
		if prev, ok := e.aggState[stateKey]; ok && prev.fact != existing.ID {
			e.superseded[prev.fact] = true
			e.supersessions++
		}
		e.aggState[stateKey] = aggEmission{fact: existing.ID, value: total}
		if e.superseded[existing.ID] {
			// Only incremental updates reach this: the group's total moved
			// away and came back, so its old emission — superseded by a value
			// the group no longer holds — becomes current again. Its recorded
			// premises are live (a dead premise would have tombstoned it), so
			// the original derivation stands.
			delete(e.superseded, existing.ID)
			e.supersessions++
			return true, nil
		}
		return false, nil
	}
	if !added {
		return false, nil
	}
	f := e.store.Lookup(head)
	if prev, ok := e.aggState[stateKey]; ok && prev.fact != f.ID {
		e.superseded[prev.fact] = true
		e.supersessions++
	}
	e.aggState[stateKey] = aggEmission{fact: f.ID, value: total}
	return true, nil
}

// SortedFactIDs returns ids sorted ascending; a convenience for
// deterministic reporting.
//
// It is deliberately kept out of the emission path: emit and emitAgg record
// premises in body-atom (respectively first-use) order without sorting, and
// that order is part of the provenance contract — templates verbalize
// premises in rule-body order, so re-sorting here would scramble
// explanations. The only callers sort once per proof extraction (the leaf
// set) or per report, never per emission; a regression test
// (TestProvenancePremiseOrderStable) pins both properties down.
func SortedFactIDs(ids []database.FactID) []database.FactID {
	out := make([]database.FactID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
