package chase

import (
	"fmt"
	"testing"

	"repro/internal/database"
	"repro/internal/parser"
	"repro/internal/term"
)

// planKitchenSrc exercises every body feature the plan compiler handles in
// one program: repeated variables within an atom, constants in body atoms,
// assignments with arithmetic, pushed-down conditions, stratified negation
// against an assigned value, an existential head, and an aggregation.
const planKitchenSrc = `
@output("Flagged").
@label("k1") Self(X) :- Own(X, X, S).
@label("k2") Reach(X, Y) :- Own(X, Y, S), S > 0.2.
@label("k3") Reach(X, Y) :- Reach(X, Z), Own(Z, Y, S), S > 0.2.
@label("k4") Exposure(X, E) :- Own(X, Y, S), Price(Y, P), E = S * P + 1.0.
@label("k5") Audit(X, C) :- Exposure(X, E), E > 2.0.
@label("k6") Flagged(X) :- Exposure(X, E), not Cleared(X, E), E >= 1.1.
@label("k7") Cleared(X, E) :- Own(X, "Sink", S), Price("Sink", P), E = S * P + 1.0.
@label("k8") Total(X, T) :- Own(X, Y, S), T = sum(S), T > 0.3.

Own("A", "A", 0.6).
Own("A", "B", 0.3).
Own("B", "C", 0.25).
Own("B", "Sink", 0.5).
Own("C", "Sink", 0.9).
Price("A", 2.0).
Price("B", 4.0).
Price("C", 1.0).
Price("Sink", 3.0).
`

// diffEngines runs the program under both engines and asserts byte-identical
// results at worker counts 1 and 4 of the compiled engine, with the legacy
// sequential engine as the baseline.
func diffEngines(t *testing.T, label, src string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	for _, naive := range []bool{false, true} {
		legacy, err := Run(prog, Options{Naive: naive, Legacy: true})
		if err != nil {
			t.Fatalf("%s naive=%v legacy: %v", label, naive, err)
		}
		for _, workers := range []int{0, 4} {
			compiled, err := Run(prog, Options{Naive: naive, Workers: workers})
			if err != nil {
				t.Fatalf("%s naive=%v workers=%d compiled: %v", label, naive, workers, err)
			}
			diffResults(t, fmt.Sprintf("%s naive=%v workers=%d", label, naive, workers), legacy, compiled)
		}
	}
}

// TestCompiledLegacyEquivalenceFixedPrograms: the compiled slot-plan engine
// reproduces the legacy map-based engine byte for byte — facts, ids, steps,
// premise order, substitutions, aggregation contributors, chase graph — on
// every bundled program shape, in naive and semi-naive mode, sequential and
// parallel.
func TestCompiledLegacyEquivalenceFixedPrograms(t *testing.T) {
	sources := map[string]string{
		"stress-simple": stressSimpleSrc,
		"irish-bank":    irishBankSrc,
		"two-channel":   twoChannelSrc,
		"negation":      eligibleSrc,
		"kitchen-sink":  planKitchenSrc,
	}
	for name, src := range sources {
		diffEngines(t, name, src)
	}
}

// TestCompiledLegacyDifferentialRandomOwnership is the randomized
// differential: over 24 random layered ownership graphs, the compiled engine
// (sequential and 4 workers) produces results identical to the legacy
// engine.
func TestCompiledLegacyDifferentialRandomOwnership(t *testing.T) {
	controlRules := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`
	prog, err := parser.Parse(controlRules)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 24; seed++ {
		facts := randomOwnership(seed)
		legacy, err := Run(prog, Options{ExtraFacts: facts, Legacy: true})
		if err != nil {
			t.Fatalf("seed %d legacy: %v", seed, err)
		}
		for _, workers := range []int{0, 4} {
			compiled, err := Run(prog, Options{ExtraFacts: facts, Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers=%d compiled: %v", seed, workers, err)
			}
			diffResults(t, fmt.Sprintf("seed %d workers=%d", seed, workers), legacy, compiled)
		}
	}
}

// TestPlanCompileShapes pins down the compiled representation of a body with
// a repeated variable and a pushable condition: slot numbering follows first
// occurrence, the second occurrence within one atom compiles to SlotSame
// (not SlotBound — its frame value is stale during bucket selection), a
// later atom reuses the slot as SlotBound, and the condition is scheduled at
// the earliest depth where its operand is bound.
func TestPlanCompileShapes(t *testing.T) {
	prog := parser.MustParse(`
@output("P").
P(X) :- Own(X, X, S), Edge(X, Y), S > 0.5.
`)
	r := prog.Rules[0]
	p, err := compilePlan(r, term.NewInterner())
	if err != nil {
		t.Fatal(err)
	}
	if p.nslots != 3 || p.slotNames[0] != "X" || p.slotNames[1] != "S" || p.slotNames[2] != "Y" {
		t.Fatalf("slots = %d %v, want [X S Y]", p.nslots, p.slotNames)
	}
	op := p.orders[0]
	wantOps := []database.SlotOpKind{database.SlotWrite, database.SlotSame, database.SlotWrite}
	for pos, want := range wantOps {
		if got := op.atoms[0].Ops[pos].Kind; got != want {
			t.Errorf("atom 0 pos %d kind = %v, want %v", pos, got, want)
		}
	}
	if op.atoms[0].Ops[1].Slot != 0 {
		t.Errorf("repeated variable checks slot %d, want 0", op.atoms[0].Ops[1].Slot)
	}
	if got := op.atoms[1].Ops[0].Kind; got != database.SlotBound {
		t.Errorf("atom 1 pos 0 kind = %v, want SlotBound", got)
	}
	if len(op.steps[0]) != 1 || op.steps[0][0].cond == nil {
		t.Errorf("condition not pushed down to depth 0: steps = %v", op.steps)
	}
	if len(op.steps[1]) != 0 {
		t.Errorf("unexpected steps at depth 1: %v", op.steps[1])
	}
	// The reverse pivot order binds X at depth 0 via Edge, so both X
	// positions of Own become SlotBound there.
	op1 := p.orders[1]
	if op1.order[0] != 1 {
		t.Fatalf("pivot order = %v", op1.order)
	}
	for pos := 0; pos <= 1; pos++ {
		if got := op1.atoms[1].Ops[pos].Kind; got != database.SlotBound {
			t.Errorf("pivot 1: Own pos %d kind = %v, want SlotBound", pos, got)
		}
	}
}

// FuzzPlanDifferential fuzzes whole programs through all three engines —
// legacy, compiled frame, and batch columnar — each crossed with worker
// counts 0 and 4: any parseable, valid program either fails on every engine
// or produces a byte-identical result. (Per the documented pushdown caveat,
// runtime evaluation errors may surface on different homomorphisms, so
// inputs where either baseline engine errors are skipped rather than
// compared.)
func FuzzPlanDifferential(f *testing.F) {
	f.Add(stressSimpleSrc)
	f.Add(irishBankSrc)
	f.Add(twoChannelSrc)
	f.Add(eligibleSrc)
	f.Add(planKitchenSrc)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			t.Skip("oversized input")
		}
		prog, err := parser.Parse(src)
		if err != nil {
			t.Skip()
		}
		bound := Options{MaxRounds: 50, MaxFacts: 2000}
		legacyOpts := bound
		legacyOpts.Legacy = true
		legacy, lerr := Run(prog, legacyOpts)
		compiled, cerr := Run(prog, bound)
		if lerr != nil || cerr != nil {
			t.Skip()
		}
		diffResults(t, "fuzz", legacy, compiled)
		parallelOpts := bound
		parallelOpts.Workers = 4
		par, perr := Run(prog, parallelOpts)
		if perr != nil {
			t.Fatalf("compiled sequential succeeded but workers=4 failed: %v", perr)
		}
		diffResults(t, "fuzz-parallel", legacy, par)
		for _, workers := range []int{0, 4} {
			batchOpts := bound
			batchOpts.Batch = true
			batchOpts.Workers = workers
			batch, berr := Run(prog, batchOpts)
			if berr != nil {
				t.Fatalf("frame executor succeeded but batch workers=%d failed: %v", workers, berr)
			}
			diffResults(t, fmt.Sprintf("fuzz-batch-%d", workers), legacy, batch)
		}
	})
}
