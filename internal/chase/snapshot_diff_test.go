package chase_test

// Snapshot round-trip differential suite: a live engine serialized with
// EncodeState and rebuilt with RestoreLive must be byte-identical to the
// original — same facts and ids, same tombstones, same steps, proofs and
// aggregation state — and must stay byte-identical under every subsequent
// incremental update, across executors. The suite runs random add/retract
// histories over program shapes covering recursion, aggregation, stratified
// negation, assignments, and existential nulls, snapshotting at random cut
// points and driving the original and the restored engine in lockstep
// afterwards. It lives in the external test package so it can orchestrate
// updates through incremental.Maintainer, the path the server uses.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/database"
	"repro/internal/incremental"
	"repro/internal/parser"
	"repro/internal/term"
)

// snapshotSuitePrograms cover the engine features with serialized state:
// recursion + aggregation (groups, supersession), stratified negation
// (invalidation scans), assignments (non-interned computed values), and
// existential heads (the null counter).
var snapshotSuitePrograms = map[string]string{
	"control-agg": `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`,
	"negation-assign": `
@output("Flagged").
@label("n1") Exposure(X, E) :- Own(X, Y, S), Price(Y, P), E = S * P.
@label("n2") Flagged(X) :- Exposure(X, E), not Cleared(X), E > 0.5.
@label("n3") Cleared(X) :- Own(X, "e0", S), S > 0.8.
`,
	"existential": `
@output("Audit").
@label("x1") Reach(X, Y) :- Own(X, Y, S), S > 0.3.
@label("x2") Reach(X, Y) :- Reach(X, Z), Own(Z, Y, S), S > 0.3.
@label("x3") Audit(X, W) :- Reach(X, Y).
`,
}

// dumpEngineState renders everything observable about a fixpoint: every
// fact with id, atom, extensional flag, tombstone and superseded bit, every
// step with rule, premises, sorted substitution and contributors, and the
// store epoch. Two engines with equal dumps answer, explain, and maintain
// identically.
func dumpEngineState(t testing.TB, res *chase.Result) string {
	t.Helper()
	var b strings.Builder
	st := res.Store
	fmt.Fprintf(&b, "epoch=%d len=%d\n", st.Epoch(), st.Len())
	for id := database.FactID(0); int(id) < st.Len(); id++ {
		f := st.Get(id)
		fmt.Fprintf(&b, "fact %d %s ext=%v dead=%v super=%v\n",
			id, f.Atom.String(), f.Extensional, st.Retracted(id), res.Superseded(id))
	}
	for _, d := range res.Steps {
		fmt.Fprintf(&b, "step %d rule=%s fact=%d premises=%v sub=%s contribs=[",
			d.Step, d.Rule.Label, d.Fact, d.Premises, dumpSub(d.Sub))
		for i, c := range d.Contributors {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "{%v %s %s}", c.Premises, c.Value.Key(), dumpSub(c.Sub))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func dumpSub(s term.Substitution) string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", n, s[n].Key())
	}
	b.WriteByte('}')
	return b.String()
}

func mustResult(t *testing.T, m *incremental.Maintainer) *chase.Result {
	t.Helper()
	res, err := m.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res
}

// randomDelta builds one update against a pool of entity names: a few adds
// (Own edges with random weights, occasionally Price facts) and, later in a
// history, retractions of previously added base atoms.
func randomDelta(rng *rand.Rand, base *[]ast.Atom) (add, retract []ast.Atom) {
	ent := func() string { return fmt.Sprintf("e%d", rng.Intn(8)) }
	for n := rng.Intn(3) + 1; n > 0; n-- {
		var a ast.Atom
		if rng.Intn(4) == 0 {
			a = ast.NewAtom("Price", term.Str(ent()), term.Float(float64(rng.Intn(30))/10))
		} else {
			a = ast.NewAtom("Own", term.Str(ent()), term.Str(ent()), term.Float(float64(rng.Intn(10))/10))
		}
		add = append(add, a)
		*base = append(*base, a)
	}
	if len(*base) > 4 && rng.Intn(2) == 0 {
		retract = append(retract, (*base)[rng.Intn(len(*base))])
	}
	return add, retract
}

// applyBoth drives the original and the restored maintainer with the same
// delta. Updates that fail must fail on both sides (e.g. retracting an atom
// that is currently derived); the maintainers would be poisoned, so the
// caller rebuilds — here we simply skip deltas that are invalid on both.
func applyBoth(t *testing.T, label string, a, b *incremental.Maintainer, add, retract []ast.Atom) {
	t.Helper()
	resA, statsA, errA := a.Update(add, retract)
	resB, statsB, errB := b.Update(add, retract)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: update divergence: original err=%v, restored err=%v", label, errA, errB)
	}
	if errA != nil {
		t.Fatalf("%s: update failed on both (history generator produced an invalid delta): %v", label, errA)
	}
	if statsA != statsB {
		t.Fatalf("%s: update stats differ: %+v vs %+v", label, statsA, statsB)
	}
	if w, g := dumpEngineState(t, resA), dumpEngineState(t, resB); w != g {
		t.Fatalf("%s: engine states differ after update\n--- original ---\n%s--- restored ---\n%s", label, w, g)
	}
}

// validDelta pre-checks a generated delta against the live instance so the
// lockstep drive never poisons the maintainers: retracting an atom that is
// currently derived (not base) is a request error.
func validDelta(m *incremental.Maintainer, retract []ast.Atom) bool {
	for _, a := range retract {
		if present, base := m.Resolve(a); present && !base {
			return false
		}
	}
	return true
}

// TestSnapshotRoundTripDifferential is the acceptance differential: random
// programs × random add/retract histories, snapshot at a random cut,
// restore (under the same and under different executor options), and assert
// byte identity — state dump, encode idempotence, and lockstep behavior
// over the rest of the history.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	for name, src := range snapshotSuitePrograms {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		for seed := int64(0); seed < 6; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				opts := chase.Options{MaxRounds: 500, MaxFacts: 100_000}
				if seed%2 == 1 {
					opts.Batch = true
				}
				var pool []ast.Atom
				seedFacts := []ast.Atom{
					ast.NewAtom("Own", term.Str("e0"), term.Str("e1"), term.Float(0.6)),
					ast.NewAtom("Price", term.Str("e1"), term.Float(1.5)),
				}
				pool = append(pool, seedFacts...)
				optsSeed := opts
				optsSeed.ExtraFacts = seedFacts
				live, err := chase.RunLive(prog, optsSeed)
				if err != nil {
					t.Fatalf("initial chase: %v", err)
				}
				orig := incremental.FromLive(live)

				// Burn-in: a random prefix of updates before the snapshot cut,
				// so the serialized state includes semi-naive boundaries,
				// tombstones, supersessions and dirty-group residue.
				prefix := rng.Intn(5)
				for i := 0; i < prefix; i++ {
					add, retract := randomDelta(rng, &pool)
					if !validDelta(orig, retract) {
						retract = nil
					}
					if _, _, err := orig.Update(add, retract); err != nil {
						t.Fatalf("prefix update %d: %v", i, err)
					}
				}

				payload, err := orig.EncodeState()
				if err != nil {
					t.Fatalf("EncodeState: %v", err)
				}

				// Restore twice: once with identical options, once with a
				// different executor (results are byte-identical across
				// executors, so restored state must be too).
				altOpts := opts
				altOpts.Batch = !opts.Batch
				altOpts.Workers = 4
				variants := []struct {
					name string
					opts chase.Options
				}{{"same-exec", opts}, {"cross-exec", altOpts}}
				var sameExec *incremental.Maintainer
				for _, v := range variants {
					restoredLive, err := chase.RestoreLive(prog, v.opts, payload)
					if err != nil {
						t.Fatalf("%s: RestoreLive: %v", v.name, err)
					}
					restored := incremental.FromLive(restoredLive)
					if w, g := dumpEngineState(t, mustResult(t, orig)), dumpEngineState(t, mustResult(t, restored)); w != g {
						t.Fatalf("%s: restored state differs\n--- original ---\n%s--- restored ---\n%s", v.name, w, g)
					}
					// Encode idempotence: re-serializing the restored engine
					// reproduces the payload bit for bit.
					payload2, err := restored.EncodeState()
					if err != nil {
						t.Fatalf("%s: re-encode: %v", v.name, err)
					}
					if !bytes.Equal(payload, payload2) {
						t.Fatalf("%s: re-encoded payload differs (%d vs %d bytes)", v.name, len(payload), len(payload2))
					}
					if v.name == "same-exec" {
						sameExec = restored
					}
				}
				// Lockstep (after both variants compared against the pristine
				// original): identical updates against the original and the
				// restored engine must produce identical state at every step.
				stepRng := rand.New(rand.NewSource(seed + 1000))
				for i := 0; i < 6; i++ {
					add, retract := randomDelta(stepRng, &pool)
					if !validDelta(orig, retract) {
						retract = nil
					}
					applyBoth(t, fmt.Sprintf("update %d", i), orig, sameExec, add, retract)
				}
			})
		}
	}
}

// TestRestoreLiveRejectsTruncation: every strict prefix of a valid payload
// fails loudly instead of restoring partial state. (Bit-flip corruption is
// the envelope checksum's job — internal/snapshot — but truncation must be
// caught at this layer too, since the codec is also used WAL-side.)
func TestRestoreLiveRejectsTruncation(t *testing.T) {
	prog := parser.MustParse(snapshotSuitePrograms["control-agg"])
	live, err := chase.RunLive(prog, chase.Options{ExtraFacts: []ast.Atom{
		ast.NewAtom("Own", term.Str("a"), term.Str("b"), term.Float(0.7)),
		ast.NewAtom("Own", term.Str("b"), term.Str("c"), term.Float(0.9)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := live.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chase.RestoreLive(prog, chase.Options{}, payload); err != nil {
		t.Fatalf("full payload failed to restore: %v", err)
	}
	for _, cut := range []int{0, 1, len(payload) / 4, len(payload) / 2, len(payload) - 1} {
		if _, err := chase.RestoreLive(prog, chase.Options{}, payload[:cut]); err == nil {
			t.Errorf("truncation at %d/%d bytes restored without error", cut, len(payload))
		}
	}
	// Trailing garbage is rejected too.
	if _, err := chase.RestoreLive(prog, chase.Options{}, append(append([]byte{}, payload...), 0x00)); err == nil {
		t.Error("payload with trailing bytes restored without error")
	}
}
