package chase

// Cancellation. Every entry point has a Context variant (RunContext,
// RunLiveContext, Live.SetContext) that makes the engine cooperative: the
// context is checked at every round boundary, before every rule evaluation
// within a round, at every parallel chunk boundary (the worker pool checks
// before starting each join task), before every constraint check, and at the
// top of every goal-directed re-derivation. The engine never checks inside
// the emission loop, so a cancellation can only ever land between two
// completed rule evaluations — never between a fact and its provenance.
//
// State after cancellation. A canceled run returns ErrCanceled (or
// ErrDeadline when the context's deadline passed) and leaves the engine
// exactly as the last completed rule evaluation left it: the store holds
// every fact emitted so far with full provenance, no fact is half-recorded,
// and the semi-naive boundary of the rule whose join was interrupted is
// rolled back (applyPlainRule/applyAggRule restore lastSeen and the
// aggregation bookkeeping on a join error), so the interrupted evaluation is
// not silently skipped. Concretely:
//
//   - RunContext/RunLiveContext discard the engine on error; a later run over
//     the same program builds a fresh store and is byte-for-byte identical to
//     an uncancelled run (the differential suite in cancel_test.go proves it,
//     including under Workers > 1 — Freeze/Thaw pairs are balanced on every
//     error path).
//   - A Live whose Saturate was canceled is still consistent: calling
//     Saturate again (after SetContext with a live context) resumes toward
//     the same fixpoint. The incremental Maintainer deliberately does not
//     resume — a canceled update poisons it like any other mid-repair
//     failure, so a half-repaired fixpoint is never served (see
//     incremental.Maintainer.UpdateContext).

import (
	"context"
	"errors"
)

// ErrCanceled reports that a chase run was canceled through its context.
// It is returned (wrapped) by RunContext, RunLiveContext, Live.Saturate and
// everything layered above them; match with errors.Is.
var ErrCanceled = errors.New("chase: run canceled")

// ErrDeadline reports that a chase run exceeded its context's deadline.
var ErrDeadline = errors.New("chase: deadline exceeded")

// ContextErr maps a context's error to the chase-typed cancellation error:
// nil while the context is live, ErrCanceled after a cancel, ErrDeadline
// after the deadline. Layers above the engine (incremental, core, server)
// use it to classify their own checkpoints consistently.
func ContextErr(ctx context.Context) error {
	switch ctx.Err() {
	case context.Canceled:
		return ErrCanceled
	case context.DeadlineExceeded:
		return ErrDeadline
	}
	return nil
}

// IsCancellation reports whether err is (or wraps) a cancellation or
// deadline error — the errors after which a fresh attempt may succeed, as
// opposed to errors of the program itself.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadline)
}

// checkCtx is the engine's cancellation checkpoint; nil context (the
// context-free entry points) makes it free. It is called from parallel join
// workers concurrently — context.Context.Err is safe for that.
func (e *engine) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return ContextErr(e.ctx)
}
