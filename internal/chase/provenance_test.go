package chase

import (
	"testing"
	"testing/quick"

	"repro/internal/database"
	"repro/internal/parser"
)

// checkProvenanceInvariants asserts the structural well-formedness every
// chase result must satisfy:
//
//  1. premises precede conclusions (fact ids strictly smaller);
//  2. step numbers are dense and chronological;
//  3. every aggregation derivation's premises are exactly the union of its
//     contributors' premises;
//  4. the proof spine is connected: each spine step's fact is a premise of
//     the next spine step.
func checkProvenanceInvariants(t *testing.T, res *Result) {
	t.Helper()
	for i, d := range res.Steps {
		if d.Step != i {
			t.Fatalf("step %d recorded as %d", i, d.Step)
		}
		for _, prem := range d.Premises {
			if prem >= d.Fact {
				t.Errorf("step %d: premise #%d not earlier than conclusion #%d", i, prem, d.Fact)
			}
		}
		if d.IsAggregation() {
			want := map[database.FactID]bool{}
			for _, c := range d.Contributors {
				for _, id := range c.Premises {
					want[id] = true
				}
			}
			if len(want) != len(d.Premises) {
				t.Errorf("step %d: premises %v do not match contributor union (%d ids)",
					i, d.Premises, len(want))
			}
			for _, id := range d.Premises {
				if !want[id] {
					t.Errorf("step %d: premise #%d not contributed", i, id)
				}
			}
		}
	}
	for _, f := range res.Store.Facts() {
		if f.Extensional {
			continue
		}
		proof, err := res.ExtractProof(f.ID)
		if err != nil {
			t.Fatalf("proof of %v: %v", f, err)
		}
		for i := 0; i < len(proof.Spine)-1; i++ {
			fact := proof.Spine[i].Fact
			found := false
			for _, prem := range proof.Spine[i+1].Premises {
				if prem == fact {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("proof of %v: spine step %d not a premise of step %d", f, i, i+1)
			}
		}
		if last := proof.Spine[len(proof.Spine)-1]; last.Fact != f.ID {
			t.Errorf("proof of %v: spine does not end at the target", f)
		}
	}
}

func TestProvenanceInvariantsFixed(t *testing.T) {
	for _, src := range []string{stressSimpleSrc, irishBankSrc, twoChannelSrc, eligibleSrc} {
		res := runSrc(t, src, Options{})
		checkProvenanceInvariants(t, res)
	}
}

// TestProvenanceInvariantsProperty: the invariants hold over random
// ownership graphs.
func TestProvenanceInvariantsProperty(t *testing.T) {
	prog := parser.MustParse(`
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`)
	f := func(seed int64) bool {
		res, err := Run(prog, Options{ExtraFacts: randomOwnership(seed)})
		if err != nil {
			return false
		}
		sub := &testing.T{}
		checkProvenanceInvariants(sub, res)
		return !sub.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
