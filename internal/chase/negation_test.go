package chase

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// eligibleSrc uses stratified negation: an entity is an eligible
// counterparty when it has capital and is not in default after the stress
// propagation.
const eligibleSrc = `
@output("Eligible").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.
@label("el")    Eligible(X) :- HasCapital(X, P), not Default(X).

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
HasCapital("D", 4.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

func TestStratifiedNegation(t *testing.T) {
	res := runSrc(t, eligibleSrc, Options{})
	eligible := map[string]bool{}
	for _, id := range res.Derived("Eligible") {
		eligible[res.Store.Get(id).Atom.Terms[0].StringVal()] = true
	}
	// A, B and C default through the cascade; only D stays eligible.
	if len(eligible) != 1 || !eligible["D"] {
		t.Errorf("eligible = %v, want {D}\n%s", eligible, res.Store.Dump())
	}
}

func TestNegationStratumOrder(t *testing.T) {
	// If negation were evaluated naively within one fixpoint, Eligible(C)
	// would fire in early rounds (C defaults only after two propagation
	// steps). The stratified engine must not derive it at all.
	res := runSrc(t, eligibleSrc, Options{})
	a, _ := parser.ParseAtom(`Eligible("C")`)
	if res.Store.Contains(a) {
		t.Error("Eligible(C) derived despite later Default(C)")
	}
	// Both strategies agree.
	prog := parser.MustParse(eligibleSrc)
	naive := MustRun(prog, Options{Naive: true})
	semi := MustRun(prog, Options{})
	if !sameFactSet(naive, semi) {
		t.Error("naive and semi-naive disagree under negation")
	}
}

func TestUnstratifiedProgramRejected(t *testing.T) {
	src := `
@output("P").
P(X) :- Base(X), not Q(X).
Q(X) :- Base(X), not P(X).
Base("a").
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{}); err == nil {
		t.Error("recursion through negation accepted")
	} else if !strings.Contains(err.Error(), "stratified") {
		t.Errorf("error = %v", err)
	}
}

func TestNegationOverEDB(t *testing.T) {
	src := `
@output("Uncovered").
Uncovered(X) :- Exposure(X, V), not Collateral(X).
Exposure("a", 5.0).
Exposure("b", 3.0).
Collateral("a").
`
	res := runSrc(t, src, Options{})
	ids := res.Derived("Uncovered")
	if len(ids) != 1 || res.Store.Get(ids[0]).Atom.Terms[0].StringVal() != "b" {
		t.Errorf("uncovered = %v", res.Store.Dump())
	}
}

func TestConstraintViolated(t *testing.T) {
	src := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
% no company may control a sanctioned entity
@label("nc") :- Control(X, Y), Sanctioned(Y).
Own("A", "B", 0.6).
Sanctioned("B").
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, Options{})
	if err == nil {
		t.Fatal("violated constraint accepted")
	}
	for _, sub := range []string{"constraint nc", "Control(A, B)", "Sanctioned(B)"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("error %q missing %q", err, sub)
		}
	}
}

func TestConstraintSatisfied(t *testing.T) {
	src := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
:- Control(X, Y), Sanctioned(Y).
Own("A", "B", 0.6).
Sanctioned("Z").
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{}); err != nil {
		t.Errorf("satisfied constraint rejected: %v", err)
	}
}

func TestConstraintWithNegationAndCondition(t *testing.T) {
	// Every large exposure must be collateralized.
	src := `
@output("Exposure").
Exposure(X, V) :- RawExposure(X, V).
:- Exposure(X, V), V > 10.0, not Collateral(X).
RawExposure("a", 15.0).
Collateral("a").
RawExposure("b", 5.0).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{}); err != nil {
		t.Errorf("constraint rejected: %v", err)
	}
	// Now remove the collateral: violation.
	src2 := strings.Replace(src, "Collateral(\"a\").\n", "", 1) + "Collateral(\"zzz\").\n"
	prog2, err := parser.Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog2, Options{}); err == nil {
		t.Error("uncollateralized exposure accepted")
	}
}

func TestFactsOnlyProgram(t *testing.T) {
	prog, err := parser.Parse(`P("a"). P("b").`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 2 || res.Rounds != 1 {
		t.Errorf("store = %d facts, rounds = %d", res.Store.Len(), res.Rounds)
	}
}
