package chase_test

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/parser"
)

// companyControlSrc is the paper's running company-control example: X
// controls Y when X directly owns a majority of Y, or when the companies X
// already controls jointly own a majority of Y (monotonic sum aggregation).
const companyControlSrc = `
@output("Control").
@label("s1") Control(X, X) :- Company(X).
@label("s2") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.

Company("A"). Company("B"). Company("C").
Own("A", "B", 0.6).
Own("A", "C", 0.3). Own("B", "C", 0.4).
`

// ExampleRun evaluates the company-control program sequentially: A controls
// B directly, and controls C through the joint 0.3 + 0.4 stake held with B.
func ExampleRun() {
	prog := parser.MustParse(companyControlSrc)
	res, err := chase.Run(prog, chase.Options{})
	if err != nil {
		panic(err)
	}
	for _, id := range res.Answers() {
		fmt.Println(res.Store.Get(id))
	}
	// Output:
	// Control(A, A)
	// Control(B, B)
	// Control(C, C)
	// Control(A, B)
	// Control(A, C)
}

// ExampleRun_parallel evaluates the same program with a four-worker pool.
// Parallel evaluation is deterministic: every fact id, chase step, and
// provenance edge is identical to the sequential run, so the two chase
// graphs render byte-for-byte the same.
func ExampleRun_parallel() {
	prog := parser.MustParse(companyControlSrc)
	seq, err := chase.Run(prog, chase.Options{})
	if err != nil {
		panic(err)
	}
	par, err := chase.Run(prog, chase.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	for _, id := range par.Answers() {
		fmt.Println(par.Store.Get(id))
	}
	fmt.Println("identical chase graphs:", seq.Graph() == par.Graph())
	// Output:
	// Control(A, A)
	// Control(B, B)
	// Control(C, C)
	// Control(A, B)
	// Control(A, C)
	// identical chase graphs: true
}
