package chase

import (
	"math/bits"

	"repro/internal/database"
)

// memoMaxFacts bounds the proof-closure memo: above this store size the
// memo's bitsets (one word-packed step set per derived fact, so up to
// facts*steps/8 bytes in total) would cost more memory than the repeated
// walks cost time, and ExtractProof falls back to the per-call DFS.
const memoMaxFacts = 1 << 14

// proofMemo is the per-result proof-closure memo: for every derived fact,
// the set of chase steps reachable backwards through canonical
// derivations, stored as a bitset indexed by Derivation.Step. Because a
// step's premises always precede the derived fact (a rule only fires on
// facts that already exist), the closure of fact i depends only on facts
// with smaller ids and one dynamic-programming pass in fact-id order
// computes every closure, visiting each shared sub-DAG once instead of
// once per explained answer.
//
// The memo is built at most once per Result (lazily, on the first
// ExtractProof) and is immutable afterwards, so any number of concurrent
// readers may decode proofs from it without locking; Result.proofMemo
// serializes the one-time construction through sync.Once.
type proofMemo struct {
	// words is the length of each step bitset in uint64 words.
	words int
	// closure holds one step bitset per fact id; nil entries mark
	// extensional facts (empty closure).
	closure [][]uint64
}

// proofMemo returns the result's proof-closure memo, building it on first
// use. It returns nil when the store is too large to memoize (see
// memoMaxFacts); callers then fall back to the uncached walk.
func (r *Result) proofMemo() *proofMemo {
	r.memoOnce.Do(func() {
		if r.Store.Len() <= memoMaxFacts {
			r.memo = buildProofMemo(r)
		}
	})
	return r.memo
}

// buildProofMemo runs the closure dynamic program in fact-id order.
func buildProofMemo(r *Result) *proofMemo {
	n := r.Store.Len()
	m := &proofMemo{
		words:   (len(r.Steps) + 63) / 64,
		closure: make([][]uint64, n),
	}
	for id := 0; id < n; id++ {
		d := r.CanonicalDerivation(database.FactID(id))
		if d == nil {
			continue // extensional: empty closure
		}
		bs := make([]uint64, m.words)
		for _, prem := range d.Premises {
			for w, v := range m.closure[prem] {
				bs[w] |= v
			}
		}
		bs[d.Step/64] |= 1 << (uint(d.Step) % 64)
		m.closure[id] = bs
	}
	return m
}

// extractProofMemo decodes the memoized closure of target into a Proof.
// It produces exactly the Proof extractProofWalk produces: step bit i is
// Derivation.Step i, so ascending bit order is ascending chronological
// order, and the leaf bitset decodes in ascending fact-id order, matching
// SortedFactIDs.
func (r *Result) extractProofMemo(m *proofMemo, target database.FactID) *Proof {
	p := &Proof{Target: target, result: r}
	bs := m.closure[target]
	if bs == nil {
		// Extensional target: the proof is the fact itself.
		p.Leaves = SortedFactIDs([]database.FactID{target})
		p.Spine = r.spineOf(target)
		return p
	}
	total := 0
	for _, w := range bs {
		total += bits.OnesCount64(w)
	}
	steps := make([]*Derivation, 0, total)
	leafWords := make([]uint64, (r.Store.Len()+63)/64)
	for w, word := range bs {
		for word != 0 {
			step := r.Steps[w*64+bits.TrailingZeros64(word)]
			steps = append(steps, step)
			for _, prem := range step.Premises {
				if m.closure[prem] == nil {
					leafWords[prem/64] |= 1 << (uint(prem) % 64)
				}
			}
			word &= word - 1
		}
	}
	p.Steps = steps
	nLeaves := 0
	for _, w := range leafWords {
		nLeaves += bits.OnesCount64(w)
	}
	leaves := make([]database.FactID, 0, nLeaves)
	for w, word := range leafWords {
		for word != 0 {
			leaves = append(leaves, database.FactID(w*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	p.Leaves = leaves
	p.Spine = r.spineOf(target)
	return p
}
