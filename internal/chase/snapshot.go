package chase

// Engine state serialization: EncodeState flattens everything a live engine
// owns — the value dictionary, the fact store with tombstones, the step list
// with full provenance, and the aggregation bookkeeping — into one
// deterministic byte payload, and RestoreLive rebuilds a Live from it that is
// byte-identical to the original: same fact ids, same steps, same proofs,
// and (because the semi-naive boundaries, aggregation groups and null
// counter survive) the same behavior under every subsequent incremental
// update. The payload is deliberately self-contained *relative to a
// program*: rules are stored as indexes into Program.Rules, so restore must
// be given the same program the snapshot was taken against (the on-disk
// envelope in internal/snapshot carries a program fingerprint for exactly
// that check).
//
// Scratch and derived state is not serialized: compiled plans are
// recompiled (their constants are already in the restored dictionary, so no
// new ids are assigned), the per-fact derivation index is rebuilt from the
// step list (both emission paths append to steps and derivs in the same
// order), strata and the existential/negation rule sets are recomputed from
// the program, and the columnar indexes rebuild lazily on first use.
//
// Determinism: every map is emitted in a canonical order (rules in program
// order, substitutions by variable name, id sets ascending, aggregation
// groups in their discovery order), so encoding the same logical state —
// including the state of a just-restored engine — yields the same bytes.

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/depgraph"
	"repro/internal/term"
)

// stateVersion is the payload format version; restore rejects others.
const stateVersion = 1

// EncodeState serializes the live engine's complete logical state. The Live
// must be quiescent (no concurrent mutation), the same condition its other
// methods require.
func (l *Live) EncodeState() ([]byte, error) {
	e := l.e
	ruleIdx := make(map[*ast.Rule]int, len(e.prog.Rules))
	for i, r := range e.prog.Rules {
		ruleIdx[r] = i
	}
	w := &stateWriter{}
	w.byte(stateVersion)

	// Value dictionary, in id order. The exact representative term of each
	// id is preserved (Int(3) vs Float(3.0) matters: the representative is
	// what Value returns and what emitted atoms render).
	in := e.store.Interner()
	w.uint(uint64(in.Len()))
	for id := 0; id < in.Len(); id++ {
		w.term(in.Value(term.ValueID(id)))
	}

	// Facts in id order, with their exact atom terms (which may differ from
	// the dictionary representative of the same value) and extensional flag.
	facts := e.store.Facts()
	w.uint(uint64(len(facts)))
	for _, f := range facts {
		w.str(f.Atom.Predicate)
		w.bool(f.Extensional)
		w.uint(uint64(len(f.Atom.Terms)))
		for _, t := range f.Atom.Terms {
			w.term(t)
		}
	}

	// Tombstones, ascending.
	var dead []database.FactID
	for _, f := range facts {
		if e.store.Retracted(f.ID) {
			dead = append(dead, f.ID)
		}
	}
	w.uint(uint64(len(dead)))
	for _, id := range dead {
		w.uint(uint64(id))
	}
	w.uint(e.store.Epoch())

	// Chase steps, chronological. Rules are program indexes; every emitted
	// step's rule comes from Program.Rules (constraint pseudo-rules never
	// emit).
	w.uint(uint64(len(e.steps)))
	for _, d := range e.steps {
		idx, ok := ruleIdx[d.Rule]
		if !ok {
			return nil, fmt.Errorf("chase: snapshot: step %d references a rule outside the program", d.Step)
		}
		w.uint(uint64(idx))
		w.uint(uint64(d.Fact))
		w.ids(d.Premises)
		w.sub(d.Sub)
		w.uint(uint64(len(d.Contributors)))
		for _, c := range d.Contributors {
			w.ids(c.Premises)
			w.term(c.Value)
			w.sub(c.Sub)
		}
	}

	// Superseded aggregate emissions, ascending.
	w.ids(SortedIDs(e.superseded))

	// Aggregation emission state, sorted by its (binary) key.
	aggKeys := make([]string, 0, len(e.aggState))
	for k := range e.aggState {
		aggKeys = append(aggKeys, k)
	}
	sort.Strings(aggKeys)
	w.uint(uint64(len(aggKeys)))
	for _, k := range aggKeys {
		st := e.aggState[k]
		w.str(k)
		w.uint(uint64(st.fact))
		w.term(st.value)
	}

	// Semi-naive boundaries and supersession watermarks, in rule order.
	w.ruleInts(e.prog.Rules, ruleIdx, e.lastSeen)
	w.ruleInts(e.prog.Rules, ruleIdx, e.lastSuper)
	w.int(int64(e.supersessions))

	// Aggregation groups, per rule in program order, groups in discovery
	// order (aggOrder). The contributor-identity set (seen) is rebuilt from
	// the contributors at restore.
	var aggRules []*ast.Rule
	for _, r := range e.prog.Rules {
		if _, ok := e.aggGroups[r]; ok {
			aggRules = append(aggRules, r)
		}
	}
	w.uint(uint64(len(aggRules)))
	for _, r := range aggRules {
		w.uint(uint64(ruleIdx[r]))
		order := e.aggOrder[r]
		groups := e.aggGroups[r]
		if len(order) != len(groups) {
			return nil, fmt.Errorf("chase: snapshot: rule %s has %d groups but %d ordered keys", r.Label, len(groups), len(order))
		}
		w.uint(uint64(len(order)))
		for _, key := range order {
			gr, ok := groups[key]
			if !ok {
				return nil, fmt.Errorf("chase: snapshot: rule %s group key missing from map", r.Label)
			}
			w.str(key)
			w.sub(gr.sub)
			w.uint(uint64(len(gr.contrib)))
			for _, c := range gr.contrib {
				w.ids(c.Premises)
				w.term(c.Value)
				w.sub(c.Sub)
			}
		}
	}

	// Dirty aggregation groups (normally empty at quiescence).
	var dirtyRules []*ast.Rule
	for _, r := range e.prog.Rules {
		if len(e.dirtyGroups[r]) > 0 {
			dirtyRules = append(dirtyRules, r)
		}
	}
	w.uint(uint64(len(dirtyRules)))
	for _, r := range dirtyRules {
		w.uint(uint64(ruleIdx[r]))
		keys := make([]string, 0, len(e.dirtyGroups[r]))
		for k := range e.dirtyGroups[r] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.uint(uint64(len(keys)))
		for _, k := range keys {
			w.str(k)
		}
	}

	w.int(int64(e.nullSeq))
	w.int(int64(l.rounds))
	w.f64(l.loadSeconds)
	w.f64(l.evalSeconds)
	return w.buf, nil
}

// RestoreLive rebuilds a Live from an EncodeState payload taken against the
// same program. Executor options (Workers, Legacy, Batch) may differ from
// the snapshotting engine's — results are byte-identical across executors —
// but the program must be identical: rule references are stored as indexes
// into Program.Rules. The caller is responsible for that check (the on-disk
// envelope verifies a program fingerprint).
func RestoreLive(p *ast.Program, opts Options, data []byte) (*Live, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("chase: restore: invalid program: %w", err)
	}
	if opts.Batch && opts.Legacy {
		return nil, fmt.Errorf("chase: restore: options Batch and Legacy are mutually exclusive")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	maxFacts := opts.MaxFacts
	if maxFacts <= 0 {
		maxFacts = defaultMaxFacts
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := &stateReader{data: data}
	if v := r.byte(); r.err == nil && v != stateVersion {
		return nil, fmt.Errorf("chase: restore: unsupported state version %d", v)
	}

	e := &engine{
		prog:       p,
		store:      database.NewStore(),
		derivs:     map[database.FactID][]*Derivation{},
		superseded: map[database.FactID]bool{},
		aggState:   map[string]aggEmission{},
		lastSeen:   map[*ast.Rule]int{},
		aggGroups:  map[*ast.Rule]map[string]*aggGroup{},
		aggOrder:   map[*ast.Rule][]string{},
		lastSuper:  map[*ast.Rule]int{},
		plans:      map[*ast.Rule]*plan{},
		maxFacts:   maxFacts,
		naive:      opts.Naive,
		legacy:     opts.Legacy,
		batch:      opts.Batch,
		workers:    workers,
	}

	// Dictionary first: interning the exact representatives in id order
	// reproduces every id assignment, so the fact rows, aggregation keys and
	// recompiled plan constants below all land on their original ids.
	in := e.store.Interner()
	nvals := r.uint()
	for i := uint64(0); i < nvals && r.err == nil; i++ {
		t := r.term()
		if r.err != nil {
			break
		}
		if id := in.Intern(t); uint64(id) != i {
			return nil, fmt.Errorf("chase: restore: dictionary id %d assigned %d (corrupt or out-of-order snapshot)", i, id)
		}
	}

	// Facts, appended raw in id order (Add would dedupe a re-added atom
	// against its not-yet-tombstoned predecessor), then tombstones.
	nfacts := r.uint()
	for i := uint64(0); i < nfacts && r.err == nil; i++ {
		pred := r.str()
		ext := r.bool()
		arity := r.uint()
		terms := make([]term.Term, arity)
		for j := range terms {
			terms[j] = r.term()
		}
		if r.err != nil {
			break
		}
		f, err := e.store.RestoreFact(ast.Atom{Predicate: pred, Terms: terms}, ext)
		if err != nil {
			return nil, fmt.Errorf("chase: restore: fact %d: %w", i, err)
		}
		if uint64(f.ID) != i {
			return nil, fmt.Errorf("chase: restore: fact %d assigned id %d", i, f.ID)
		}
	}
	ndead := r.uint()
	for i := uint64(0); i < ndead && r.err == nil; i++ {
		id := database.FactID(r.uint())
		if r.err != nil {
			break
		}
		if err := e.store.Retract(id); err != nil {
			return nil, fmt.Errorf("chase: restore: tombstone %d: %w", id, err)
		}
	}
	e.store.SetEpoch(r.uint())

	// Steps; the per-fact derivation index rebuilds alongside in the same
	// append order the emission paths used.
	nsteps := r.uint()
	for i := uint64(0); i < nsteps && r.err == nil; i++ {
		rule := r.rule(p)
		fact := database.FactID(r.uint())
		premises := r.ids()
		sub := r.sub()
		nc := r.uint()
		var contribs []Contribution
		for j := uint64(0); j < nc && r.err == nil; j++ {
			contribs = append(contribs, Contribution{Premises: r.ids(), Value: r.term(), Sub: r.sub()})
		}
		if r.err != nil {
			break
		}
		if int(fact) >= e.store.Len() {
			return nil, fmt.Errorf("chase: restore: step %d derives unknown fact %d", i, fact)
		}
		d := &Derivation{Step: int(i), Rule: rule, Fact: fact, Premises: premises, Contributors: contribs, Sub: sub}
		e.steps = append(e.steps, d)
		e.derivs[fact] = append(e.derivs[fact], d)
	}

	for _, id := range r.ids() {
		e.superseded[id] = true
	}
	nagg := r.uint()
	for i := uint64(0); i < nagg && r.err == nil; i++ {
		key := r.str()
		fact := database.FactID(r.uint())
		val := r.term()
		if r.err == nil {
			e.aggState[key] = aggEmission{fact: fact, value: val}
		}
	}

	r.ruleInts(p, e.lastSeen)
	r.ruleInts(p, e.lastSuper)
	e.supersessions = int(r.int())

	nAggRules := r.uint()
	for i := uint64(0); i < nAggRules && r.err == nil; i++ {
		rule := r.rule(p)
		ngroups := r.uint()
		groups := map[string]*aggGroup{}
		var order []string
		for j := uint64(0); j < ngroups && r.err == nil; j++ {
			key := r.str()
			sub := r.sub()
			ncontrib := r.uint()
			gr := &aggGroup{key: key, sub: sub, seen: map[string]bool{}}
			for k := uint64(0); k < ncontrib && r.err == nil; k++ {
				c := Contribution{Premises: r.ids(), Value: r.term(), Sub: r.sub()}
				gr.contrib = append(gr.contrib, c)
				gr.seen[e.factTupleKey(c.Premises)] = true
			}
			groups[key] = gr
			order = append(order, key)
		}
		if r.err == nil && rule != nil {
			e.aggGroups[rule] = groups
			e.aggOrder[rule] = order
		}
	}

	nDirty := r.uint()
	for i := uint64(0); i < nDirty && r.err == nil; i++ {
		rule := r.rule(p)
		nkeys := r.uint()
		for j := uint64(0); j < nkeys && r.err == nil; j++ {
			key := r.str()
			if r.err == nil && rule != nil {
				e.markDirtyGroup(rule, key)
			}
		}
	}

	e.nullSeq = int(r.int())
	rounds := int(r.int())
	loadSeconds := r.f64()
	evalSeconds := r.f64()
	if r.err != nil {
		return nil, fmt.Errorf("chase: restore: %w", r.err)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("chase: restore: %d trailing bytes after state payload", len(r.data)-r.off)
	}

	// Recompile plans (dictionary already holds every constant, so no new
	// ids are assigned) and recompute the program-derived evaluation sets.
	if !e.legacy {
		for _, rl := range p.Rules {
			if _, err := e.planFor(rl); err != nil {
				return nil, fmt.Errorf("chase: restore: rule %s: %w", rl.Label, err)
			}
		}
	}
	strata, err := depgraph.New(p).Stratify()
	if err != nil {
		return nil, fmt.Errorf("chase: restore: %w", err)
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	l := &Live{
		e:           e,
		strata:      strata,
		maxStratum:  maxStratum,
		maxRounds:   maxRounds,
		rounds:      rounds,
		existRules:  existentialRules(p),
		loadSeconds: loadSeconds,
		evalSeconds: evalSeconds,
	}
	for _, rl := range p.Rules {
		if len(rl.Negated) > 0 {
			l.hasNeg = true
			break
		}
	}
	return l, nil
}

// stateWriter is the append-only encoder behind EncodeState: varint-based,
// little-endian, deterministic.
type stateWriter struct{ buf []byte }

func (w *stateWriter) byte(b byte)   { w.buf = append(w.buf, b) }
func (w *stateWriter) uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *stateWriter) int(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *stateWriter) f64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}
func (w *stateWriter) bool(b bool) {
	if b {
		w.byte(1)
	} else {
		w.byte(0)
	}
}
func (w *stateWriter) str(s string) {
	w.uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *stateWriter) ids(ids []database.FactID) {
	w.uint(uint64(len(ids)))
	for _, id := range ids {
		w.uint(uint64(id))
	}
}

// sub emits a substitution sorted by variable name.
func (w *stateWriter) sub(s term.Substitution) {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	w.uint(uint64(len(names)))
	for _, n := range names {
		w.str(n)
		w.term(s[n])
	}
}

// Term wire tags.
const (
	tagConstString = 0
	tagConstInt    = 1
	tagConstFloat  = 2
	tagConstBool   = 3
	tagVariable    = 4
	tagNull        = 5
)

func (w *stateWriter) term(t term.Term) {
	switch t.Kind() {
	case term.KindVariable:
		w.byte(tagVariable)
		w.str(t.Name())
	case term.KindNull:
		w.byte(tagNull)
		w.str(t.Name())
	default:
		switch t.ConstType() {
		case term.ConstString:
			w.byte(tagConstString)
			w.str(t.StringVal())
		case term.ConstInt:
			w.byte(tagConstInt)
			w.int(t.IntVal())
		case term.ConstFloat:
			w.byte(tagConstFloat)
			w.f64(t.FloatVal())
		default:
			w.byte(tagConstBool)
			w.bool(t.BoolVal())
		}
	}
}

// stateReader decodes a stateWriter payload; the first malformed read sets
// err and every later read is a cheap no-op, so call sites check err at
// section boundaries.
type stateReader struct {
	data []byte
	off  int
	err  error
}

func (r *stateReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *stateReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated payload at offset %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *stateReader) uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("malformed uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *stateReader) int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("malformed varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *stateReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *stateReader) bool() bool { return r.byte() != 0 }

func (r *stateReader) str() string {
	n := r.uint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.data)-r.off) < n {
		r.fail("truncated string of length %d at offset %d", n, r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *stateReader) ids() []database.FactID {
	n := r.uint()
	if r.err != nil || n == 0 {
		return nil
	}
	if uint64(len(r.data)-r.off) < n {
		r.fail("id list of length %d exceeds payload at offset %d", n, r.off)
		return nil
	}
	out := make([]database.FactID, n)
	for i := range out {
		out[i] = database.FactID(r.uint())
	}
	return out
}

func (r *stateReader) sub() term.Substitution {
	n := r.uint()
	if r.err != nil {
		return nil
	}
	sub := make(term.Substitution, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		name := r.str()
		sub[name] = r.term()
	}
	return sub
}

// rule decodes a program rule index.
func (r *stateReader) rule(p *ast.Program) *ast.Rule {
	idx := r.uint()
	if r.err != nil {
		return nil
	}
	if idx >= uint64(len(p.Rules)) {
		r.fail("rule index %d out of range (%d rules)", idx, len(p.Rules))
		return nil
	}
	return p.Rules[idx]
}

func (r *stateReader) term() term.Term {
	switch tag := r.byte(); tag {
	case tagConstString:
		return term.Str(r.str())
	case tagConstInt:
		return term.Int(r.int())
	case tagConstFloat:
		return term.Float(r.f64())
	case tagConstBool:
		return term.Bool(r.bool())
	case tagVariable:
		return term.Var(r.str())
	case tagNull:
		return term.Null(r.str())
	default:
		if r.err == nil {
			r.fail("unknown term tag %d at offset %d", tag, r.off-1)
		}
		return term.Term{}
	}
}

// ruleInts emits a map keyed by program rules in program order.
func (w *stateWriter) ruleInts(rules []*ast.Rule, ruleIdx map[*ast.Rule]int, m map[*ast.Rule]int) {
	var present []*ast.Rule
	for _, r := range rules {
		if _, ok := m[r]; ok {
			present = append(present, r)
		}
	}
	w.uint(uint64(len(present)))
	for _, r := range present {
		w.uint(uint64(ruleIdx[r]))
		w.int(int64(m[r]))
	}
}

func (r *stateReader) ruleInts(p *ast.Program, into map[*ast.Rule]int) {
	n := r.uint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		rule := r.rule(p)
		v := r.int()
		if r.err == nil && rule != nil {
			into[rule] = int(v)
		}
	}
}
