// Package chase implements the chase procedure over a Vadalog program
// (Section 3 of the paper): rules are applied to the extensional database
// until fixpoint, incrementally deriving new facts. Every chase step is
// recorded with full provenance — the activated rule, the homomorphism, and
// the premise facts — forming the chase graph G(D,Σ) that the explanation
// pipeline walks to produce proofs.
//
// Aggregations follow Vadalog's monotonic semantics operationally: each
// round recomputes group aggregates over the currently-derived premises; a
// changed aggregate emits a new fact and supersedes the rule's previous
// emission for the same group, so downstream rules only observe the current
// total. Chase steps whose conclusion is isomorphic to an existing fact are
// pre-empted, which guarantees termination for the programs considered in
// the paper (see its Section 5, "Structural Analysis").
//
// # Evaluation strategies and concurrency contract
//
// Evaluation is semi-naive by default (Options.Naive selects the naive
// ablation). Body joins run on compiled slot-based plans: each rule is
// compiled once into join plans over the store's interned value ids, and
// a depth-first executor drives a flat binding frame through them,
// converting to a term.Substitution only at the emission boundary (see
// plan.go for the compilation scheme and the equivalence argument).
// Options.Legacy selects the map-interpreting engine instead; results
// are byte-identical either way, so it exists as the differential and
// benchmarking baseline.
//
// Options.Batch replaces the tuple-at-a-time frame executor with a
// batch-at-a-time columnar executor built on the store's sorted columnar
// indexes (database.Columnar): each rule evaluation admits an entire
// delta's worth of tuples into column vectors, runs every join depth,
// condition, assignment and negation check over whole columns, and
// converts to Substitutions only for the tuples that survive to
// emission. The batch executor is byte-identical to the frame executor
// — same facts, ids, step order, premises and substitutions — because
// both enumerate candidates in ascending fact-id order and the columnar
// index's runs are sorted by (value, dense position) with dense position
// equal to bucket rank (see batch.go for the full determinism contract).
// Batch requires compiled plans, so it is mutually exclusive with
// Options.Legacy.
//
// Optionally the join phase is parallel: Options.Workers > 1 fans the
// read-only join phase of each rule evaluation out over a worker pool
// while keeping the emission phase single-threaded, so results are
// byte-for-byte identical to the sequential engine at any worker count
// (see parallel.go for the determinism argument). The compiled path
// keeps the join phase free of dictionary writes — assignment results
// live in value slots, never interned mid-join — so workers share the
// immutable plan and only read the store, the superseded set, and the
// interner.
//
// Run and MustRun are safe to call concurrently — every call builds its
// own engine and store. A *Result and everything reachable from it
// (Store, Steps, Derivations, extracted Proofs) is immutable after Run
// returns and safe for any number of concurrent readers; the explanation
// service serves concurrent queries over shared results this way. The
// internal engine type is not safe for concurrent use; its parallel join
// workers only ever read the store, which Freeze/Thaw on
// database.Store enforce at run time.
package chase

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/term"
)

// Contribution is one aggregation contributor: the premise facts of a single
// body homomorphism and the value it contributed to the aggregate.
type Contribution struct {
	// Premises are the body facts of this contributor, in body-atom order.
	Premises []database.FactID
	// Value is the contributed value (the binding of the aggregated
	// variable).
	Value term.Term
	// Sub is the full body homomorphism of this contributor, binding the
	// contributor-varying variables (e.g. the individual debtor and loan
	// amount of one exposure) that the group-level substitution omits.
	Sub term.Substitution
}

// Derivation records one chase step: how a fact was derived.
type Derivation struct {
	// Step is the global chase step number (0-based, chronological).
	Step int
	// Rule is the activated rule.
	Rule *ast.Rule
	// Fact is the derived fact.
	Fact database.FactID
	// Premises are the distinct premise facts, in body-atom order for
	// plain rules; for aggregation rules they are the union of all
	// contributor premises in first-use order.
	Premises []database.FactID
	// Contributors is non-empty exactly for aggregation rules: one entry
	// per contributing homomorphism.
	Contributors []Contribution
	// Sub is the substitution of the chase step. For aggregation rules it
	// binds the group variables and the aggregate target; contributor-only
	// variables are not included.
	Sub term.Substitution
}

// IsAggregation reports whether the step applied an aggregation rule.
func (d *Derivation) IsAggregation() bool { return len(d.Contributors) > 0 }

// MultiContributor reports whether the aggregation had two or more
// contributors. The template mapper uses this to choose between a reasoning
// path and its "dashed" aggregation variant (paper Section 4.1).
func (d *Derivation) MultiContributor() bool { return len(d.Contributors) > 1 }

// IntensionalPremises returns the premise facts whose predicates are
// intensional in the program, in premise order.
func (d *Derivation) IntensionalPremises(isIDB func(string) bool, store *database.Store) []database.FactID {
	var out []database.FactID
	for _, id := range d.Premises {
		if isIDB(store.Get(id).Atom.Predicate) {
			out = append(out, id)
		}
	}
	return out
}

// String renders the derivation compactly for debugging.
func (d *Derivation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "step %d: rule %s: [", d.Step, d.Rule.Label)
	for i, p := range d.Premises {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "#%d", p)
	}
	fmt.Fprintf(&sb, "] => #%d", d.Fact)
	if d.IsAggregation() {
		fmt.Fprintf(&sb, " (%d contributors)", len(d.Contributors))
	}
	return sb.String()
}

// Result is the outcome of running the chase: the saturated store, the
// chronological list of chase steps, and per-fact derivations.
type Result struct {
	// Program is the program that was run.
	Program *ast.Program
	// Store holds the extensional and derived facts.
	Store *database.Store
	// Steps are all chase steps in chronological order.
	Steps []*Derivation
	// derivs indexes derivations by derived fact; the first entry is the
	// canonical (earliest) derivation used for proofs.
	derivs map[database.FactID][]*Derivation
	// superseded marks aggregate facts replaced by a more complete total.
	superseded map[database.FactID]bool
	// Rounds is the number of evaluation rounds until fixpoint.
	Rounds int
	// LoadSeconds and EvalSeconds split the initial run's wall time into
	// the fact-ingestion phase (interning the program's and the options'
	// extra facts into the store) and the evaluation phase (plan
	// compilation, stratification, the chase to fixpoint, and constraint
	// checking). Pure observability: the engine-differential suites
	// compare results field by field and deliberately ignore these. The
	// engine benchmark (`cmd/bench -fig columnar`) reads EvalSeconds so
	// executor comparisons are not diluted by ingestion, which runs
	// identical code under every executor.
	LoadSeconds float64
	EvalSeconds float64

	// memoOnce guards the one-time construction of the proof-closure memo;
	// memo is immutable once built (see memo.go). Both are internal to
	// ExtractProof and do not affect the Result's value semantics.
	memoOnce sync.Once
	memo     *proofMemo
}

// Derivations returns all recorded derivations of a fact, earliest first.
// Extensional facts have none.
func (r *Result) Derivations(id database.FactID) []*Derivation {
	return r.derivs[id]
}

// CanonicalDerivation returns the earliest derivation of a fact, or nil for
// extensional facts.
func (r *Result) CanonicalDerivation(id database.FactID) *Derivation {
	ds := r.derivs[id]
	if len(ds) == 0 {
		return nil
	}
	return ds[0]
}

// Superseded reports whether the fact is a stale aggregate emission.
func (r *Result) Superseded(id database.FactID) bool { return r.superseded[id] }

// Derived returns the ids of all non-superseded derived facts of the given
// predicate, in derivation order. With pred == "" it returns all derived
// facts.
func (r *Result) Derived(pred string) []database.FactID {
	var out []database.FactID
	for _, f := range r.Store.Facts() {
		if f.Extensional || r.superseded[f.ID] || r.Store.Retracted(f.ID) {
			continue
		}
		if pred != "" && f.Atom.Predicate != pred {
			continue
		}
		out = append(out, f.ID)
	}
	return out
}

// Answers returns the non-superseded facts of the program's output
// predicate.
func (r *Result) Answers() []database.FactID {
	return r.Derived(r.Program.Output)
}

// LookupDerived finds the non-superseded fact matching the (possibly
// partially ground) pattern; it returns an error when the pattern matches
// zero or several facts.
func (r *Result) LookupDerived(pattern ast.Atom) (database.FactID, error) {
	var hits []database.FactID
	for _, id := range r.Store.Match(pattern) {
		if !r.superseded[id] {
			hits = append(hits, id)
		}
	}
	switch len(hits) {
	case 0:
		return 0, fmt.Errorf("chase: no fact matches %v", pattern.Display())
	case 1:
		return hits[0], nil
	default:
		var alts []string
		for _, id := range hits {
			alts = append(alts, r.Store.Get(id).String())
		}
		sort.Strings(alts)
		return 0, fmt.Errorf("chase: pattern %v is ambiguous: %s", pattern.Display(), strings.Join(alts, "; "))
	}
}
