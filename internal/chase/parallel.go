package chase

// Parallel join evaluation (Options.Workers > 1).
//
// The sequential engine splits every rule evaluation into two phases: a
// join phase that enumerates body homomorphisms (pure reads of the fact
// store and the superseded set) and an emission phase that appends derived
// facts and provenance (the only writes). Parallel mode keeps that split
// and parallelizes only the read-only phase: the seed matches of each
// join's first atom are partitioned into chunks, a worker pool extends and
// filters each chunk independently against the frozen store snapshot, and
// the single-threaded merge concatenates the per-chunk candidate buffers in
// canonical (pivot index, chunk index) order before the unchanged emission
// loop applies them.
//
// Determinism argument. The sequential join is a breadth-first expansion
// whose output is ordered lexicographically by the per-atom match choices;
// extending a contiguous slice of seeds yields exactly the lexicographic
// block of bindings whose first choice lies in that slice. Concatenating
// the blocks in seed order therefore reproduces the sequential binding
// list element for element. Since emission order is a function of the
// binding list alone, fact ids, chase steps, provenance edges, and
// aggregation contributions are byte-for-byte identical to Workers: 0 at
// any worker count. (On a program that errors mid-join — a failing
// assignment, say — both modes fail deterministically, though the chunk
// that surfaces the error first may differ from the sequential scan, so
// the reported witness binding can differ.)
//
// The alternative design — evaluating distinct rules concurrently against
// a round-start snapshot — was rejected: the sequential engine lets a rule
// observe facts emitted earlier in the same round, so a snapshot-per-round
// scheme shifts derivations across rounds and can change which rule is a
// fact's canonical (first) deriver, silently changing explanations.
// Within-rule parallelism keeps the canonical provenance stable while
// still covering the hot path, because virtually all chase time is spent
// inside body joins.

import (
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/term"
)

// chunksPerWorker oversplits each seed list so the pool can balance chunks
// of uneven cost (a seed whose extension fans out dominates its chunk).
const chunksPerWorker = 4

// joinTask is one unit of parallel join work: a contiguous slice of seed
// bindings to be extended through the remaining body atoms and finished
// (assignments, conditions, negation). Tasks are created in canonical
// order; out buffers are merged by task index.
type joinTask struct {
	seeds []binding
	rest  []int
	allow atomFilter
	out   []binding
}

// joinBodyParallel is joinBody with the extension phase fanned out over the
// worker pool. The first body atom is matched sequentially (one indexed
// scan) to fix the seed order; the seeds are then chunked and extended
// concurrently.
func (e *engine) joinBodyParallel(r *ast.Rule) ([]binding, error) {
	n := len(r.Body)
	initial := []binding{{sub: term.Substitution{}, facts: make([]database.FactID, n)}}
	seeds := e.extendAtom(r, initial, 0, nil)
	rest := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		rest = append(rest, i)
	}
	tasks := appendChunked(nil, seeds, rest, nil, e.workers)
	return e.runJoinTasks(r, tasks)
}

// joinBodySemiNaiveParallel evaluates all pivot decompositions of the
// semi-naive join as one task pool: per pivot, the pivot atom is matched
// sequentially against the new-fact slice of the store, and the resulting
// seeds are chunked into tasks. Merging by (pivot, chunk) index reproduces
// the sequential pivot-by-pivot concatenation exactly.
func (e *engine) joinBodySemiNaiveParallel(r *ast.Rule, boundary database.FactID) ([]binding, error) {
	n := len(r.Body)
	var tasks []*joinTask
	for pivot := range r.Body {
		order := pivotOrder(r, pivot)
		allow := pivotFilter(pivot, boundary)
		initial := []binding{{sub: term.Substitution{}, facts: make([]database.FactID, n)}}
		seeds := e.extendAtom(r, initial, pivot, allow)
		tasks = appendChunked(tasks, seeds, order[1:], allow, e.workers)
	}
	return e.runJoinTasks(r, tasks)
}

// appendChunked splits seeds into up to workers*chunksPerWorker contiguous
// chunks and appends one task per chunk, preserving seed order across the
// chunk sequence.
func appendChunked(tasks []*joinTask, seeds []binding, rest []int, allow atomFilter, workers int) []*joinTask {
	if len(seeds) == 0 {
		return tasks
	}
	chunks := workers * chunksPerWorker
	if chunks > len(seeds) {
		chunks = len(seeds)
	}
	for c := 0; c < chunks; c++ {
		lo := c * len(seeds) / chunks
		hi := (c + 1) * len(seeds) / chunks
		tasks = append(tasks, &joinTask{seeds: seeds[lo:hi], rest: rest, allow: allow})
	}
	return tasks
}

// runJoinTasks extends and finishes every task on the worker pool, then
// merges the candidate buffers in task order. The store is frozen for the
// duration so that any write during the concurrent phase fails loudly
// instead of racing.
func (e *engine) runJoinTasks(r *ast.Rule, tasks []*joinTask) ([]binding, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	e.store.Freeze()
	err := runParallel(e.workers, len(tasks), func(i int) error {
		if err := e.checkCtx(); err != nil {
			return err
		}
		t := tasks[i]
		pending := t.seeds
		for _, atomIdx := range t.rest {
			pending = e.extendAtom(r, pending, atomIdx, t.allow)
			if len(pending) == 0 {
				return nil
			}
		}
		done, err := e.finishBindings(r, pending)
		if err != nil {
			return err
		}
		t.out = done
		return nil
	})
	e.store.Thaw()
	if err != nil {
		return nil, err
	}
	var all []binding
	for _, t := range tasks {
		all = append(all, t.out...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all, nil
}

// planSeed is one admissible match of the first atom of a compiled order:
// the binding frame right after that atom bound, plus the matched fact id.
type planSeed struct {
	frame []term.ValueID
	fact  database.FactID
}

// planTask is the compiled-engine unit of parallel join work: a contiguous
// slice of seeds to be driven through the rest of the ordered plan by a
// per-task executor.
type planTask struct {
	op    *orderedPlan
	allow atomFilter
	seeds []planSeed
	out   []binding
}

// planSeeds matches the first atom of the order sequentially (one indexed
// scan) to fix the seed order. The steps scheduled at depth 0 are
// deliberately deferred to the workers: they are per-binding filters, so
// running them inside the task keeps the surviving set identical while the
// seed scan stays a pure match loop.
func (e *engine) planSeeds(p *plan, op *orderedPlan, allow atomFilter) []planSeed {
	pa := &op.atoms[0]
	atomIdx := op.order[0]
	frame := make([]term.ValueID, p.nslots)
	for i := range frame {
		frame[i] = term.NoValue
	}
	var seeds []planSeed
	for _, id := range e.store.CandidatesSlots(*pa, frame) {
		if !e.store.BindRowSlots(*pa, id, frame) {
			continue
		}
		if e.superseded[id] {
			continue
		}
		if allow != nil && !allow(atomIdx, id) {
			continue
		}
		seeds = append(seeds, planSeed{frame: append([]term.ValueID(nil), frame...), fact: id})
	}
	return seeds
}

// appendPlanChunked splits seeds into up to workers*chunksPerWorker
// contiguous chunks and appends one task per chunk, preserving seed order
// across the chunk sequence (the same chunk arithmetic as appendChunked).
func appendPlanChunked(tasks []*planTask, seeds []planSeed, op *orderedPlan, allow atomFilter, workers int) []*planTask {
	if len(seeds) == 0 {
		return tasks
	}
	chunks := workers * chunksPerWorker
	if chunks > len(seeds) {
		chunks = len(seeds)
	}
	for c := 0; c < chunks; c++ {
		lo := c * len(seeds) / chunks
		hi := (c + 1) * len(seeds) / chunks
		tasks = append(tasks, &planTask{op: op, allow: allow, seeds: seeds[lo:hi]})
	}
	return tasks
}

// joinPlanBodyParallel is joinPlanBody with the depth-first extension fanned
// out over the worker pool.
func (e *engine) joinPlanBodyParallel(p *plan) ([]binding, error) {
	op := p.orders[0]
	tasks := appendPlanChunked(nil, e.planSeeds(p, op, nil), op, nil, e.workers)
	return e.runPlanTasks(p, tasks)
}

// joinPlanSemiNaiveParallel evaluates all pivot decompositions of the
// compiled semi-naive join as one task pool; merging by (pivot, chunk) index
// reproduces the sequential pivot-by-pivot concatenation exactly.
func (e *engine) joinPlanSemiNaiveParallel(p *plan, boundary database.FactID) ([]binding, error) {
	var tasks []*planTask
	for pivot := range p.orders {
		op := p.orders[pivot]
		allow := pivotFilter(pivot, boundary)
		tasks = appendPlanChunked(tasks, e.planSeeds(p, op, allow), op, allow, e.workers)
	}
	return e.runPlanTasks(p, tasks)
}

// runPlanTasks drives every task's seeds through a per-task executor on the
// worker pool (the plan itself is immutable and shared), then merges the out
// buffers in task order under the same Freeze/Thaw discipline as
// runJoinTasks. Workers only read the store, the superseded set, and the
// interner — assignment results live in value slots and are never interned
// during the join, so no worker ever writes shared state.
func (e *engine) runPlanTasks(p *plan, tasks []*planTask) ([]binding, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	e.store.Freeze()
	err := runParallel(e.workers, len(tasks), func(i int) error {
		if err := e.checkCtx(); err != nil {
			return err
		}
		t := tasks[i]
		x := e.newExecutor(p, t.op, t.allow)
		first := t.op.order[0]
		for _, s := range t.seeds {
			copy(x.frame, s.frame)
			x.facts[first] = s.fact
			if err := x.afterBind(0); err != nil {
				return err
			}
		}
		t.out = x.out
		return nil
	})
	e.store.Thaw()
	if err != nil {
		return nil, err
	}
	var all []binding
	for _, t := range tasks {
		all = append(all, t.out...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all, nil
}

// runParallel runs task(0..n-1) on up to `workers` goroutines, handing out
// indexes through an atomic counter (cheap work stealing). It returns the
// error of the lowest-indexed failing task, which makes error selection
// deterministic and independent of goroutine scheduling.
func runParallel(workers, n int, task func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
