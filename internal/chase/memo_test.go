package chase

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/parser"
	"repro/internal/term"
)

// diffProofs asserts that the memoized and walked extractions of one target
// are byte-identical in every exported field.
func diffProofs(t *testing.T, label string, want, got *Proof) {
	t.Helper()
	if want.Target != got.Target {
		t.Fatalf("%s: target %d != %d", label, want.Target, got.Target)
	}
	if !reflect.DeepEqual(want.Steps, got.Steps) {
		t.Errorf("%s: steps differ:\nwalk: %v\nmemo: %v", label, want.Steps, got.Steps)
	}
	if !reflect.DeepEqual(want.Spine, got.Spine) {
		t.Errorf("%s: spines differ:\nwalk: %v\nmemo: %v", label, want.Spine, got.Spine)
	}
	if !reflect.DeepEqual(want.Leaves, got.Leaves) {
		t.Errorf("%s: leaves differ:\nwalk: %v\nmemo: %v", label, want.Leaves, got.Leaves)
	}
	if !reflect.DeepEqual(want.Constants(), got.Constants()) {
		t.Errorf("%s: constants differ", label)
	}
}

// TestExtractProofMemoDifferentialFixedPrograms: on every bundled program
// shape, the memoized extraction of every fact — extensional leaves,
// superseded aggregates, derived answers — matches the reference walk.
func TestExtractProofMemoDifferentialFixedPrograms(t *testing.T) {
	sources := map[string]string{
		"stress-simple": stressSimpleSrc,
		"irish-bank":    irishBankSrc,
		"two-channel":   twoChannelSrc,
		"negation":      eligibleSrc,
		"kitchen-sink":  planKitchenSrc,
	}
	for name, src := range sources {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		res, err := Run(prog, Options{})
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		for id := 0; id < res.Store.Len(); id++ {
			target := database.FactID(id)
			memoized, err := res.ExtractProof(target)
			if err != nil {
				t.Fatalf("%s #%d: %v", name, id, err)
			}
			diffProofs(t, fmt.Sprintf("%s #%d", name, id), res.extractProofWalk(target), memoized)
		}
	}
}

// TestExtractProofMemoDifferentialRandomOwnership repeats the differential
// over random layered ownership graphs, where answers share deep control
// sub-proofs — exactly the reuse the memo exists for.
func TestExtractProofMemoDifferentialRandomOwnership(t *testing.T) {
	prog := parser.MustParse(`
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`)
	for seed := int64(0); seed < 8; seed++ {
		res, err := Run(prog, Options{ExtraFacts: randomOwnership(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for id := 0; id < res.Store.Len(); id++ {
			target := database.FactID(id)
			memoized, err := res.ExtractProof(target)
			if err != nil {
				t.Fatalf("seed %d #%d: %v", seed, id, err)
			}
			diffProofs(t, fmt.Sprintf("seed %d #%d", seed, id), res.extractProofWalk(target), memoized)
		}
	}
}

// TestExtractProofMemoFallback: past memoMaxFacts the memo is skipped and
// extraction still answers through the reference walk.
func TestExtractProofMemoFallback(t *testing.T) {
	facts := make([]ast.Atom, memoMaxFacts+1)
	for i := range facts {
		facts[i] = ast.NewAtom("Big", term.Str(fmt.Sprintf("e%d", i)))
	}
	prog := parser.MustParse(`
@output("Derived").
@label("d1") Derived(X) :- Big(X), Seed(X).
Seed("e7").
`)
	res, err := Run(prog, Options{ExtraFacts: facts})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.proofMemo(); m != nil {
		t.Fatalf("memo built for %d facts, want fallback above %d", res.Store.Len(), memoMaxFacts)
	}
	answers := res.Answers()
	if len(answers) != 1 {
		t.Fatalf("answers = %d", len(answers))
	}
	p, err := res.ExtractProof(answers[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 || len(p.Leaves) != 2 {
		t.Errorf("proof size = %d, leaves = %d", p.Size(), len(p.Leaves))
	}
}

// TestExtractProofUnknownIDs: out-of-range ids error on both sides of the
// size guard.
func TestExtractProofUnknownIDs(t *testing.T) {
	res := MustRun(parser.MustParse(stressSimpleSrc), Options{})
	for _, id := range []database.FactID{-1, database.FactID(res.Store.Len())} {
		if _, err := res.ExtractProof(id); err == nil {
			t.Errorf("ExtractProof(%d) succeeded", id)
		}
	}
}

// TestExtractProofConcurrent extracts every fact's proof from many
// goroutines at once — the first caller builds the memo, the rest must see
// it fully constructed (run under -race; the memo is immutable after the
// sync.Once build).
func TestExtractProofConcurrent(t *testing.T) {
	prog := parser.MustParse(`
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`)
	res, err := Run(prog, Options{ExtraFacts: benchChainFacts(30)})
	if err != nil {
		t.Fatal(err)
	}
	want := map[database.FactID]*Proof{}
	for id := 0; id < res.Store.Len(); id++ {
		want[database.FactID(id)] = res.extractProofWalk(database.FactID(id))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := 0; id < res.Store.Len(); id++ {
				p, err := res.ExtractProof(database.FactID(id))
				if err != nil {
					errs <- err.Error()
					return
				}
				w := want[database.FactID(id)]
				if !reflect.DeepEqual(w.Steps, p.Steps) || !reflect.DeepEqual(w.Leaves, p.Leaves) {
					errs <- fmt.Sprintf("fact %d: concurrent proof differs", id)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
