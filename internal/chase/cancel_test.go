package chase

// Cancellation tests: typed errors, checkpoint promptness, and the
// differential suite proving that a canceled run leaves nothing behind — a
// fresh run after a mid-chase cancel is byte-for-byte identical to the
// sequential oracle, at every worker count.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parser"
)

// countdownCtx is a deterministic cancellation source: Err is nil for the
// first n checks and context.Canceled from then on. The engine polls Err at
// every round/rule/chunk boundary, so "cancel at check k" lands the
// cancellation at a reproducible point of the chase regardless of wall
// time. Done returns nil (the engine never selects on it); over counts
// checks made after the cancellation fired — the unwind length.
type countdownCtx struct {
	remaining atomic.Int64
	over      atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		c.over.Add(1)
		return context.Canceled
	}
	return nil
}

// countingCtx never cancels; it counts how many cancellation checks a run
// performs, which calibrates where the differential suite can aim.
type countingCtx struct{ calls atomic.Int64 }

func (c *countingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}       { return nil }
func (c *countingCtx) Value(any) any               { return nil }
func (c *countingCtx) Err() error                  { c.calls.Add(1); return nil }

func TestRunContextPreCanceled(t *testing.T) {
	prog := parser.MustParse(stressSimpleSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, prog, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("canceled run returned a result")
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := RunContext(dctx, prog, Options{}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !IsCancellation(ErrCanceled) || !IsCancellation(ErrDeadline) || IsCancellation(errors.New("other")) {
		t.Fatal("IsCancellation misclassifies")
	}
}

// TestRunContextBackgroundIdentical: plumbing a live context changes
// nothing — RunContext(Background) is byte-identical to Run.
func TestRunContextBackgroundIdentical(t *testing.T) {
	for name, src := range map[string]string{
		"stress-simple": stressSimpleSrc,
		"irish-bank":    irishBankSrc,
		"two-channel":   twoChannelSrc,
		"negation":      eligibleSrc,
	} {
		prog := parser.MustParse(src)
		want := MustRun(prog, Options{})
		got, err := RunContext(context.Background(), prog, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		diffResults(t, name, want, got)
		counting := &countingCtx{}
		got2, err := RunContext(counting, prog, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s workers=4: %v", name, err)
		}
		diffResults(t, name+" workers=4", want, got2)
		if counting.calls.Load() == 0 {
			t.Errorf("%s: no cancellation checks performed", name)
		}
	}
}

// cancelDifferential cancels a run of prog at check number cancelAt, then
// verifies the typed error, the bounded unwind, and that a fresh run still
// matches the oracle byte for byte.
func cancelDifferential(t *testing.T, label string, prog string, extra []string, cancelAt int64, workers int, oracle *Result) {
	t.Helper()
	p := parser.MustParse(prog + "\n" + join(extra))
	ctx := newCountdownCtx(cancelAt)
	res, err := RunContext(ctx, p, Options{Workers: workers})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("%s: cancel at %d: err = %v, want ErrCanceled", label, cancelAt, err)
	}
	if res != nil {
		t.Fatalf("%s: canceled run returned a result", label)
	}
	// Prompt return: after the cancellation fires, the engine may observe it
	// a handful more times while unwinding (concurrent workers, the
	// round-loop re-check) but must not keep chasing.
	if over := ctx.over.Load(); over > int64(64+workers) {
		t.Errorf("%s: %d cancellation checks after firing — not returning at a boundary?", label, over)
	}
	// A fresh run over the same program is byte-identical to the oracle:
	// the canceled run left no shared state behind (balanced Freeze/Thaw,
	// no half-recorded facts).
	re, err := RunContext(context.Background(), p, Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: fresh run after cancel: %v", label, err)
	}
	diffResults(t, label, oracle, re)
}

func join(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestCancelMidChaseDifferential is the acceptance differential: over the
// four program shapes (recursive aggregation control, existential
// close-link, two-channel aggregation, stratified negation) and ≥12 random
// seeds, cancel at a random checkpoint, then prove a fresh run still equals
// the sequential oracle — sequentially and under Workers: 4.
func TestCancelMidChaseDifferential(t *testing.T) {
	controlRules := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`
	// Twelve random ownership instances of the control program, each
	// canceled at a seed-derived checkpoint.
	for seed := int64(0); seed < 12; seed++ {
		facts := randomOwnership(seed)
		prog := parser.MustParse(controlRules)
		oracle, err := RunContext(context.Background(), prog, Options{ExtraFacts: facts})
		if err != nil {
			t.Fatalf("seed %d oracle: %v", seed, err)
		}
		counting := &countingCtx{}
		if _, err := RunContext(counting, prog, Options{ExtraFacts: facts}); err != nil {
			t.Fatalf("seed %d calibration: %v", seed, err)
		}
		total := counting.calls.Load()
		rng := rand.New(rand.NewSource(seed))
		for _, workers := range []int{0, 4} {
			cancelAt := rng.Int63n(total)
			label := fmt.Sprintf("control seed=%d cancelAt=%d workers=%d", seed, cancelAt, workers)
			ctx := newCountdownCtx(cancelAt)
			res, err := RunContext(ctx, prog, Options{ExtraFacts: facts, Workers: workers})
			if !errors.Is(err, ErrCanceled) || res != nil {
				t.Fatalf("%s: res=%v err=%v, want nil + ErrCanceled", label, res, err)
			}
			re, err := RunContext(context.Background(), prog, Options{ExtraFacts: facts, Workers: workers})
			if err != nil {
				t.Fatalf("%s: fresh run: %v", label, err)
			}
			diffResults(t, label, oracle, re)
		}
	}

	// The fixed program shapes, canceled at several points each.
	for name, src := range map[string]string{
		"close-link": irishBankSrc,
		"agg":        twoChannelSrc,
		"negation":   eligibleSrc,
	} {
		prog := parser.MustParse(src)
		oracle := MustRun(prog, Options{})
		counting := &countingCtx{}
		if _, err := RunContext(counting, prog, Options{}); err != nil {
			t.Fatalf("%s calibration: %v", name, err)
		}
		total := counting.calls.Load()
		rng := rand.New(rand.NewSource(int64(len(name))))
		for i := 0; i < 4; i++ {
			cancelAt := rng.Int63n(total)
			for _, workers := range []int{0, 4} {
				cancelDifferential(t, fmt.Sprintf("%s cancelAt=%d workers=%d", name, cancelAt, workers),
					src, nil, cancelAt, workers, oracle)
			}
		}
	}
}

// TestRunLiveContextDetachesContext: a context that expires after the
// initial fixpoint must not haunt the returned Live — later saturation
// passes install their own context via SetContext.
func TestRunLiveContextDetachesContext(t *testing.T) {
	prog := parser.MustParse(twoChannelSrc)
	ctx, cancel := context.WithCancel(context.Background())
	l, err := RunLiveContext(ctx, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // the request that built the fixpoint is gone
	if _, err := l.Saturate(nil); err != nil {
		t.Fatalf("Saturate after builder context died: %v", err)
	}
	// An explicitly installed dead context does cancel; clearing it
	// restores normal operation.
	l.SetContext(ctx)
	if _, err := l.Saturate(nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Saturate under dead context: err = %v, want ErrCanceled", err)
	}
	l.SetContext(context.Background())
	if _, err := l.Saturate(nil); err != nil {
		t.Fatalf("Saturate after context cleared: %v", err)
	}
}
