package chase

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/database"
)

// Proof is the portion of the chase graph that derives one fact of interest:
// the set of chase steps reachable backwards from the fact, plus its
// linearization.
//
// The proof is a DAG in general (aggregations join several branches); the
// Spine is its root-to-leaf linearization along intensional premises — the
// materialized path τ of paper Section 4.3 that the template mapper
// consumes. Aggregation contributors hang off the spine as side inputs.
type Proof struct {
	// Target is the fact being explained.
	Target database.FactID
	// Steps are all derivations in the proof, in chronological (and hence
	// topological) order.
	Steps []*Derivation
	// Spine is the root-to-target sequence of derivations followed along
	// intensional premises.
	Spine []*Derivation
	// Leaves are the extensional facts the proof rests on.
	Leaves []database.FactID

	result *Result
}

// Size returns the proof length measured in chase steps (the number of rule
// activations in the proof), the x-axis of the paper's Figures 17 and 18.
func (p *Proof) Size() int { return len(p.Steps) }

// SpineLength returns the length of the linearized derivation path.
func (p *Proof) SpineLength() int { return len(p.Spine) }

// RuleSequence returns the labels of the rules activated along the spine,
// e.g. {α, β, γ, β, γ} for Example 4.7.
func (p *Proof) RuleSequence() []string {
	out := make([]string, len(p.Spine))
	for i, d := range p.Spine {
		out[i] = d.Rule.Label
	}
	return out
}

// Result returns the chase result the proof was extracted from.
func (p *Proof) Result() *Result { return p.result }

// Constants returns the distinct constant display strings appearing in the
// proof's facts (premises and conclusions). The completeness metric of the
// paper's Section 6.3 checks these against the generated text.
func (p *Proof) Constants() []string {
	seen := map[string]bool{}
	var out []string
	add := func(id database.FactID) {
		for _, t := range p.result.Store.Get(id).Atom.Terms {
			d := t.Display()
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	for _, d := range p.Steps {
		for _, prem := range d.Premises {
			add(prem)
		}
		add(d.Fact)
	}
	return out
}

// ExtractProof computes the proof of a fact from the chase result, following
// each fact's canonical (earliest) derivation.
//
// Extraction is memoized: the first call builds the result's proof-closure
// memo (see memo.go), so explaining many answers that share sub-proofs —
// e.g. every control relationship rooted in one ownership chain — walks
// each shared sub-DAG once instead of once per answer. The memo is
// immutable after construction and ExtractProof is safe for any number of
// concurrent callers. Memoized and walked extractions are byte-identical;
// the differential suite in memo_test.go enforces it.
func (r *Result) ExtractProof(target database.FactID) (*Proof, error) {
	if target < 0 || int(target) >= r.Store.Len() {
		return nil, fmt.Errorf("chase: unknown fact id %d", target)
	}
	if m := r.proofMemo(); m != nil {
		return r.extractProofMemo(m, target), nil
	}
	return r.extractProofWalk(target), nil
}

// extractProofWalk is the uncached proof extraction: a depth-first walk of
// the chase graph backwards from the target. It remains the reference
// implementation the memoized path is differentially tested against, and
// the fallback for stores too large to memoize.
func (r *Result) extractProofWalk(target database.FactID) *Proof {
	p := &Proof{Target: target, result: r}

	// Collect the proof DAG by walking premises backwards.
	visited := map[database.FactID]bool{}
	var stepSet []*Derivation
	leafSet := map[database.FactID]bool{}
	var visit func(id database.FactID)
	visit = func(id database.FactID) {
		if visited[id] {
			return
		}
		visited[id] = true
		d := r.CanonicalDerivation(id)
		if d == nil {
			leafSet[id] = true
			return
		}
		for _, prem := range d.Premises {
			visit(prem)
		}
		stepSet = append(stepSet, d)
	}
	visit(target)

	sort.Slice(stepSet, func(i, j int) bool { return stepSet[i].Step < stepSet[j].Step })
	p.Steps = stepSet
	for id := range leafSet {
		p.Leaves = append(p.Leaves, id)
	}
	p.Leaves = SortedFactIDs(p.Leaves)
	p.Spine = r.spineOf(target)
	return p
}

// spineOf linearizes the proof of target: from the target it repeatedly
// follows the most recent intensional premise of the canonical derivation,
// then reverses into root-to-target order.
func (r *Result) spineOf(target database.FactID) []*Derivation {
	isIDB := r.Program.IsIntensional
	var spineRev []*Derivation
	cur := target
	for {
		d := r.CanonicalDerivation(cur)
		if d == nil {
			break
		}
		spineRev = append(spineRev, d)
		next := database.FactID(-1)
		for _, prem := range d.Premises {
			if isIDB(r.Store.Get(prem).Atom.Predicate) && prem > next {
				next = prem
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	spine := make([]*Derivation, len(spineRev))
	for i, d := range spineRev {
		spine[len(spineRev)-1-i] = d
	}
	return spine
}

// factStrings renders every fact once, so the graph dumps below do not
// re-fetch and re-render shared premises per edge.
func (r *Result) factStrings() []string {
	out := make([]string, r.Store.Len())
	for _, f := range r.Store.Facts() {
		out[f.ID] = f.String()
	}
	return out
}

// Graph renders the full chase graph in the style of the paper's Figure 8:
// one line per chase step, premises => conclusion, labelled with the rule.
func (r *Result) Graph() string {
	strs := r.factStrings()
	var sb strings.Builder
	size := 0
	for _, d := range r.Steps {
		size += len(strs[d.Fact]) + len(d.Rule.Label) + 10
		for _, id := range d.Premises {
			size += len(strs[id]) + 3
		}
	}
	sb.Grow(size)
	for _, d := range r.Steps {
		if r.Store.Retracted(d.Fact) {
			continue // over-deleted by an incremental update
		}
		for i, id := range d.Premises {
			if i > 0 {
				sb.WriteString(" + ")
			}
			sb.WriteString(strs[id])
		}
		fmt.Fprintf(&sb, " --%s--> %s\n", d.Rule.Label, strs[d.Fact])
	}
	return sb.String()
}

// DOT renders the chase graph in Graphviz DOT syntax: fact nodes and
// rule-labelled edges from each premise to the conclusion.
func (r *Result) DOT() string {
	strs := r.factStrings()
	var sb strings.Builder
	size := len("digraph chase {\n  rankdir=TB;\n}\n")
	for _, f := range r.Store.Facts() {
		size += len(strs[f.ID]) + 48
	}
	for _, d := range r.Steps {
		size += len(d.Premises) * (len(d.Rule.Label) + 32)
	}
	sb.Grow(size)
	sb.WriteString("digraph chase {\n  rankdir=TB;\n")
	for _, f := range r.Store.Facts() {
		if r.Store.Retracted(f.ID) {
			continue // over-deleted by an incremental update
		}
		shape := "ellipse"
		if f.Extensional {
			shape = "box"
		}
		style := ""
		if r.superseded[f.ID] {
			style = ", style=dashed"
		}
		fmt.Fprintf(&sb, "  f%d [label=%q, shape=%s%s];\n", f.ID, strs[f.ID], shape, style)
	}
	for _, d := range r.Steps {
		if r.Store.Retracted(d.Fact) {
			continue
		}
		for _, prem := range d.Premises {
			fmt.Fprintf(&sb, "  f%d -> f%d [label=%q];\n", prem, d.Fact, d.Rule.Label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
