package chase

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/database"
)

// Proof is the portion of the chase graph that derives one fact of interest:
// the set of chase steps reachable backwards from the fact, plus its
// linearization.
//
// The proof is a DAG in general (aggregations join several branches); the
// Spine is its root-to-leaf linearization along intensional premises — the
// materialized path τ of paper Section 4.3 that the template mapper
// consumes. Aggregation contributors hang off the spine as side inputs.
type Proof struct {
	// Target is the fact being explained.
	Target database.FactID
	// Steps are all derivations in the proof, in chronological (and hence
	// topological) order.
	Steps []*Derivation
	// Spine is the root-to-target sequence of derivations followed along
	// intensional premises.
	Spine []*Derivation
	// Leaves are the extensional facts the proof rests on.
	Leaves []database.FactID

	result *Result
}

// Size returns the proof length measured in chase steps (the number of rule
// activations in the proof), the x-axis of the paper's Figures 17 and 18.
func (p *Proof) Size() int { return len(p.Steps) }

// SpineLength returns the length of the linearized derivation path.
func (p *Proof) SpineLength() int { return len(p.Spine) }

// RuleSequence returns the labels of the rules activated along the spine,
// e.g. {α, β, γ, β, γ} for Example 4.7.
func (p *Proof) RuleSequence() []string {
	out := make([]string, len(p.Spine))
	for i, d := range p.Spine {
		out[i] = d.Rule.Label
	}
	return out
}

// Result returns the chase result the proof was extracted from.
func (p *Proof) Result() *Result { return p.result }

// Constants returns the distinct constant display strings appearing in the
// proof's facts (premises and conclusions). The completeness metric of the
// paper's Section 6.3 checks these against the generated text.
func (p *Proof) Constants() []string {
	seen := map[string]bool{}
	var out []string
	add := func(id database.FactID) {
		for _, t := range p.result.Store.Get(id).Atom.Terms {
			d := t.Display()
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	for _, d := range p.Steps {
		for _, prem := range d.Premises {
			add(prem)
		}
		add(d.Fact)
	}
	return out
}

// ExtractProof computes the proof of a fact from the chase result, following
// each fact's canonical (earliest) derivation.
func (r *Result) ExtractProof(target database.FactID) (*Proof, error) {
	if int(target) >= r.Store.Len() {
		return nil, fmt.Errorf("chase: unknown fact id %d", target)
	}
	p := &Proof{Target: target, result: r}

	// Collect the proof DAG by walking premises backwards.
	visited := map[database.FactID]bool{}
	var stepSet []*Derivation
	leafSet := map[database.FactID]bool{}
	var visit func(id database.FactID)
	visit = func(id database.FactID) {
		if visited[id] {
			return
		}
		visited[id] = true
		d := r.CanonicalDerivation(id)
		if d == nil {
			leafSet[id] = true
			return
		}
		for _, prem := range d.Premises {
			visit(prem)
		}
		stepSet = append(stepSet, d)
	}
	visit(target)

	sort.Slice(stepSet, func(i, j int) bool { return stepSet[i].Step < stepSet[j].Step })
	p.Steps = stepSet
	for id := range leafSet {
		p.Leaves = append(p.Leaves, id)
	}
	p.Leaves = SortedFactIDs(p.Leaves)

	// Spine: from the target walk the most recent intensional premise.
	isIDB := r.Program.IsIntensional
	var spineRev []*Derivation
	cur := target
	for {
		d := r.CanonicalDerivation(cur)
		if d == nil {
			break
		}
		spineRev = append(spineRev, d)
		next := database.FactID(-1)
		for _, prem := range d.Premises {
			if isIDB(r.Store.Get(prem).Atom.Predicate) && prem > next {
				next = prem
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	p.Spine = make([]*Derivation, len(spineRev))
	for i, d := range spineRev {
		p.Spine[len(spineRev)-1-i] = d
	}
	return p, nil
}

// Graph renders the full chase graph in the style of the paper's Figure 8:
// one line per chase step, premises => conclusion, labelled with the rule.
func (r *Result) Graph() string {
	var sb strings.Builder
	for _, d := range r.Steps {
		prems := make([]string, len(d.Premises))
		for i, id := range d.Premises {
			prems[i] = r.Store.Get(id).String()
		}
		fmt.Fprintf(&sb, "%s --%s--> %s\n", strings.Join(prems, " + "), d.Rule.Label, r.Store.Get(d.Fact).String())
	}
	return sb.String()
}

// DOT renders the chase graph in Graphviz DOT syntax: fact nodes and
// rule-labelled edges from each premise to the conclusion.
func (r *Result) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph chase {\n  rankdir=TB;\n")
	for _, f := range r.Store.Facts() {
		shape := "ellipse"
		if f.Extensional {
			shape = "box"
		}
		style := ""
		if r.superseded[f.ID] {
			style = ", style=dashed"
		}
		fmt.Fprintf(&sb, "  f%d [label=%q, shape=%s%s];\n", f.ID, f.String(), shape, style)
	}
	for _, d := range r.Steps {
		for _, prem := range d.Premises {
			fmt.Fprintf(&sb, "  f%d -> f%d [label=%q];\n", prem, d.Fact, d.Rule.Label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
