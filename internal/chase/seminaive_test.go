package chase

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// randomOwnership builds a random layered ownership graph with companies
// and shares; used as the differential-testing workload.
func randomOwnership(seed int64) []ast.Atom {
	rng := rand.New(rand.NewSource(seed))
	layers := 2 + rng.Intn(3)
	width := 1 + rng.Intn(3)
	var facts []ast.Atom
	node := func(l, i int) string { return fmt.Sprintf("L%dC%d", l, i) }
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			facts = append(facts, ast.NewAtom("Company", term.Str(node(l, i))))
			if l == 0 {
				continue
			}
			for t := 0; t <= rng.Intn(2); t++ {
				share := 0.1 + float64(rng.Intn(70))/100
				facts = append(facts, ast.NewAtom("Own",
					term.Str(node(l-1, rng.Intn(width))), term.Str(node(l, i)), term.Float(share)))
			}
		}
	}
	return facts
}

// factSet returns the canonical sorted set of non-superseded facts.
func factSet(r *Result) []string {
	var out []string
	for _, f := range r.Store.Facts() {
		if r.Superseded(f.ID) {
			continue
		}
		out = append(out, f.Atom.Key())
	}
	sort.Strings(out)
	return out
}

func sameFactSet(a, b *Result) bool {
	x, y := factSet(a), factSet(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestSemiNaiveEquivalenceFixedPrograms: naive and semi-naive evaluation
// derive identical fact sets on every bundled program shape.
func TestSemiNaiveEquivalenceFixedPrograms(t *testing.T) {
	sources := []string{
		stressSimpleSrc,
		irishBankSrc,
		twoChannelSrc,
		`
@output("CloseLink").
@label("c1") MOwn(X, Y, S) :- Own(X, Y, S).
@label("c2") MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2, S >= 0.01.
@label("c3") CloseLink(X, Y) :- MOwn(X, Y, S), TS = sum(S), TS >= 0.2.
Own("A", "B", 0.5). Own("B", "C", 0.5). Own("A", "C", 0.1). Own("C", "D", 0.5).
`,
	}
	for i, src := range sources {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("source %d: %v", i, err)
		}
		semi, err := Run(prog, Options{})
		if err != nil {
			t.Fatalf("source %d semi-naive: %v", i, err)
		}
		naive, err := Run(prog, Options{Naive: true})
		if err != nil {
			t.Fatalf("source %d naive: %v", i, err)
		}
		if !sameFactSet(semi, naive) {
			t.Errorf("source %d: fact sets differ\nsemi:\n%s\nnaive:\n%s",
				i, semi.Store.Dump(), naive.Store.Dump())
		}
	}
}

// TestSemiNaiveEquivalenceProperty: random layered ownership graphs produce
// identical control closures under both evaluation strategies.
func TestSemiNaiveEquivalenceProperty(t *testing.T) {
	controlRules := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`
	prog, err := parser.Parse(controlRules)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		facts := randomOwnership(seed)
		semi, err1 := Run(prog, Options{ExtraFacts: facts})
		naive, err2 := Run(prog, Options{ExtraFacts: facts, Naive: true})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return sameFactSet(semi, naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSemiNaiveProofEquivalence: the canonical proofs coincide too (same
// chase step sequence), so explanations are identical across strategies.
func TestSemiNaiveProofEquivalence(t *testing.T) {
	prog := parser.MustParse(twoChannelSrc)
	semi := MustRun(prog, Options{})
	naive := MustRun(prog, Options{Naive: true})
	if len(semi.Steps) != len(naive.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(semi.Steps), len(naive.Steps))
	}
	for i := range semi.Steps {
		a := semi.Store.Get(semi.Steps[i].Fact).Atom.Key()
		b := naive.Store.Get(naive.Steps[i].Fact).Atom.Key()
		if a != b {
			t.Errorf("step %d differs: %s vs %s", i, a, b)
		}
		if semi.Steps[i].Rule.Label != naive.Steps[i].Rule.Label {
			t.Errorf("step %d rule differs", i)
		}
	}
}
