package chase

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/parser"
	"repro/internal/term"
)

// stressSimpleSrc is Example 4.3 with the artificial EDB of Figure 8.
const stressSimpleSrc = `
@name("stress-simple").
@output("Default").
@label("alpha") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("beta")  Risk(C, E) :- Default(D), Debts(D, C, V), E = sum(V).
@label("gamma") Default(C) :- HasCapital(C, P2), Risk(C, E), P2 < E.

Shock("A", 6.0).
HasCapital("A", 5.0).
HasCapital("B", 2.0).
HasCapital("C", 10.0).
Debts("A", "B", 7.0).
Debts("B", "C", 2.0).
Debts("B", "C", 9.0).
`

func runSrc(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	return res
}

func mustLookup(t *testing.T, r *Result, pattern string) database.FactID {
	t.Helper()
	a, err := parser.ParseAtom(pattern)
	if err != nil {
		t.Fatalf("pattern %q: %v", pattern, err)
	}
	id, err := r.LookupDerived(a)
	if err != nil {
		t.Fatalf("lookup %q: %v", pattern, err)
	}
	return id
}

// TestExample43 replays the chase of Example 4.7: τ = {α, β, γ, β, γ}.
func TestExample43(t *testing.T) {
	res := runSrc(t, stressSimpleSrc, Options{})

	wantDerived := []string{"Default(A)", "Risk(B, 7)", "Default(B)", "Risk(C, 11)", "Default(C)"}
	if len(res.Steps) != len(wantDerived) {
		t.Fatalf("chase steps = %d, want %d\n%s", len(res.Steps), len(wantDerived), res.Graph())
	}
	for i, d := range res.Steps {
		if got := res.Store.Get(d.Fact).String(); got != wantDerived[i] {
			t.Errorf("step %d derived %s, want %s", i, got, wantDerived[i])
		}
	}

	answers := res.Answers()
	if len(answers) != 3 {
		t.Errorf("Default answers = %d, want 3", len(answers))
	}

	// Risk(C, 11) is an aggregation with two contributors (the 2M and 9M
	// debts); Risk(B, 7) has a single contributor.
	riskC := res.CanonicalDerivation(mustLookup(t, res, `Risk("C", 11.0)`))
	if !riskC.IsAggregation() || !riskC.MultiContributor() {
		t.Errorf("Risk(C,11): aggregation=%v multi=%v", riskC.IsAggregation(), riskC.MultiContributor())
	}
	if len(riskC.Contributors) != 2 {
		t.Errorf("Risk(C,11) contributors = %d", len(riskC.Contributors))
	}
	riskB := res.CanonicalDerivation(mustLookup(t, res, `Risk("B", 7.0)`))
	if !riskB.IsAggregation() || riskB.MultiContributor() {
		t.Errorf("Risk(B,7): aggregation=%v multi=%v", riskB.IsAggregation(), riskB.MultiContributor())
	}
}

// TestExample47Proof extracts the proof of Default(C) and checks the spine
// rule sequence of Example 4.7.
func TestExample47Proof(t *testing.T) {
	res := runSrc(t, stressSimpleSrc, Options{})
	target := mustLookup(t, res, `Default("C")`)
	proof, err := res.ExtractProof(target)
	if err != nil {
		t.Fatalf("ExtractProof: %v", err)
	}
	if proof.Size() != 5 {
		t.Errorf("proof size = %d, want 5", proof.Size())
	}
	got := proof.RuleSequence()
	want := []string{"alpha", "beta", "gamma", "beta", "gamma"}
	if len(got) != len(want) {
		t.Fatalf("spine = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("spine[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// Leaves are extensional facts only.
	for _, id := range proof.Leaves {
		if !res.Store.Get(id).Extensional {
			t.Errorf("leaf %v is not extensional", res.Store.Get(id))
		}
	}
	if len(proof.Leaves) != 7 {
		t.Errorf("leaves = %d, want 7", len(proof.Leaves))
	}

	// All EDB constants involved in the inference appear in Constants().
	consts := strings.Join(proof.Constants(), " ")
	for _, c := range []string{"A", "B", "C", "6", "5", "2", "10", "7", "9", "11"} {
		if !strings.Contains(" "+consts+" ", " "+c+" ") {
			t.Errorf("proof constants %v missing %q", proof.Constants(), c)
		}
	}
}

// TestCompanyControlIrishBank replays the Figure 15 scenario: Irish Bank
// controls Madrid Credit through joint ownership of 21% + 36% = 57%.
const irishBankSrc = `
@name("company-control").
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.

Company("IrishBank").
Company("FondoItaliano").
Company("FrenchPLC").
Company("MadridCredit").
Own("IrishBank", "FondoItaliano", 0.83).
Own("IrishBank", "FrenchPLC", 0.54).
Own("FrenchPLC", "MadridCredit", 0.21).
Own("FondoItaliano", "MadridCredit", 0.36).
`

func TestCompanyControlIrishBank(t *testing.T) {
	res := runSrc(t, irishBankSrc, Options{})
	for _, want := range []string{
		`Control("IrishBank", "FondoItaliano")`,
		`Control("IrishBank", "FrenchPLC")`,
		`Control("IrishBank", "MadridCredit")`,
	} {
		mustLookup(t, res, want)
	}
	// Madrid Credit is controlled via the aggregation over two owners.
	d := res.CanonicalDerivation(mustLookup(t, res, `Control("IrishBank", "MadridCredit")`))
	if d.Rule.Label != "s3" {
		t.Errorf("derived by %s, want s3", d.Rule.Label)
	}
	if len(d.Contributors) != 2 {
		t.Fatalf("contributors = %d, want 2", len(d.Contributors))
	}
	total := 0.0
	for _, c := range d.Contributors {
		v, _ := c.Value.AsFloat()
		total += v
	}
	if total < 0.569 || total > 0.571 {
		t.Errorf("aggregate total = %v, want 0.57", total)
	}
	// No spurious control: FrenchPLC alone does not control MadridCredit.
	a, _ := parser.ParseAtom(`Control("FrenchPLC", "MadridCredit")`)
	if res.Store.Contains(a) {
		t.Error("FrenchPLC controls MadridCredit with 21%")
	}
}

// TestControlChainRecursion checks control through a chain of majority
// ownerships (recursion through the reasoning cycle).
func TestControlChainRecursion(t *testing.T) {
	src := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
Company("A"). Company("B"). Company("C"). Company("D").
Own("A", "B", 0.6).
Own("B", "C", 0.7).
Own("C", "D", 0.9).
`
	res := runSrc(t, src, Options{})
	for _, want := range []string{`Control("A", "B")`, `Control("A", "C")`, `Control("A", "D")`, `Control("B", "C")`, `Control("B", "D")`, `Control("C", "D")`} {
		mustLookup(t, res, want)
	}
	// Proof of Control(A,D) recurses: spine has at least three steps.
	proof, err := res.ExtractProof(mustLookup(t, res, `Control("A", "D")`))
	if err != nil {
		t.Fatal(err)
	}
	if proof.SpineLength() < 3 {
		t.Errorf("spine length = %d, want >= 3", proof.SpineLength())
	}
}

// twoChannelSrc is the σ4–σ7 stress test of Section 5 with a scenario where
// one creditor's long-term channel total is updated as a second debtor
// defaults, exercising monotonic-aggregate supersession.
const twoChannelSrc = `
@name("stress-test").
@output("Default").
@label("s4") Default(F) :- Shock(F, S), HasCapital(F, P1), S > P1.
@label("s5") Risk(C, EL, "long") :- Default(D), LongTermDebts(D, C, V), EL = sum(V).
@label("s6") Risk(C, ES, "short") :- Default(D), ShortTermDebts(D, C, V), ES = sum(V).
@label("s7") Default(C) :- Risk(C, E, T), HasCapital(C, P2), L = sum(E), L > P2.

Shock("A", 14.0).
HasCapital("A", 5.0).
HasCapital("B", 4.0).
HasCapital("D", 100.0).
LongTermDebts("A", "B", 7.0).
LongTermDebts("A", "D", 7.0).
LongTermDebts("B", "D", 4.0).
`

func TestTwoChannelSupersession(t *testing.T) {
	res := runSrc(t, twoChannelSrc, Options{})
	// A defaults by shock; B defaults through its 7M long exposure to A.
	mustLookup(t, res, `Default("A")`)
	mustLookup(t, res, `Default("B")`)

	// D's long-channel risk is first 7 (A only), then 11 (A and B); the
	// 7-valued fact must be superseded and the 11-valued fact current.
	a7, _ := parser.ParseAtom(`Risk("D", 7.0, "long")`)
	a11, _ := parser.ParseAtom(`Risk("D", 11.0, "long")`)
	f7 := res.Store.Lookup(a7)
	f11 := res.Store.Lookup(a11)
	if f7 == nil || f11 == nil {
		t.Fatalf("missing Risk facts:\n%s", res.Store.Dump())
	}
	if !res.Superseded(f7.ID) {
		t.Error("stale Risk(D,7,long) not superseded")
	}
	if res.Superseded(f11.ID) {
		t.Error("current Risk(D,11,long) superseded")
	}
	// Derived must exclude the superseded fact.
	for _, id := range res.Derived("Risk") {
		if id == f7.ID {
			t.Error("Derived includes superseded fact")
		}
	}
	// D must NOT default: current exposure 11 < capital 100 (and the stale
	// 7 must not be double counted to 18 — which would still be < 100, so
	// additionally check the recorded aggregate premises).
	aD, _ := parser.ParseAtom(`Default("D")`)
	if res.Store.Contains(aD) {
		t.Error("D defaulted")
	}
}

func TestTwoChannelBothChannels(t *testing.T) {
	src := twoChannelSrc + `
HasCapital("F", 9.0).
HasCapital("C", 8.0).
ShortTermDebts("B", "C", 9.0).
LongTermDebts("C", "F", 2.0).
ShortTermDebts("B", "F", 9.0).
`
	res := runSrc(t, src, Options{})
	// C defaults via the short channel (9 > 8).
	mustLookup(t, res, `Default("C")`)
	// F is exposed on both channels: 2 long (from C) + 9 short (from B) =
	// 11 > 9, so F defaults; σ7 sums across the channels.
	fID := mustLookup(t, res, `Default("F")`)
	d := res.CanonicalDerivation(fID)
	if d.Rule.Label != "s7" {
		t.Errorf("Default(F) by %s", d.Rule.Label)
	}
	if len(d.Contributors) != 2 {
		t.Errorf("Default(F) contributors = %d, want 2 (both channels)", len(d.Contributors))
	}
}

func TestCloseLinkMultiplicativeRecursion(t *testing.T) {
	src := `
@name("close-link").
@output("CloseLink").
@label("c1") MOwn(X, Y, S) :- Own(X, Y, S).
@label("c2") MOwn(X, Y, S) :- MOwn(X, Z, S1), Own(Z, Y, S2), S = S1 * S2, S >= 0.01.
@label("c3") CloseLink(X, Y) :- MOwn(X, Y, S), TS = sum(S), TS >= 0.2.

Own("A", "B", 0.5).
Own("B", "C", 0.5).
Own("A", "C", 0.1).
`
	res := runSrc(t, src, Options{})
	// A holds 0.5*0.5 + 0.1 = 0.35 of C: a close link.
	mustLookup(t, res, `CloseLink("A", "C")`)
	mustLookup(t, res, `CloseLink("A", "B")`)
	mustLookup(t, res, `CloseLink("B", "C")`)
	d := res.CanonicalDerivation(mustLookup(t, res, `CloseLink("A", "C")`))
	if len(d.Contributors) != 2 {
		t.Errorf("CloseLink(A,C) contributors = %d, want 2 (direct + indirect)", len(d.Contributors))
	}
}

func TestAggregationFunctions(t *testing.T) {
	tests := []struct {
		fn   string
		want float64
	}{
		{"sum", 9}, {"prod", 24}, {"min", 2}, {"max", 4}, {"count", 3},
	}
	for _, tt := range tests {
		t.Run(tt.fn, func(t *testing.T) {
			src := `
@output("Agg").
Agg(G, R) :- Val(G, V), R = ` + tt.fn + `(V).
Val("g", 2.0). Val("g", 3.0). Val("g", 4.0).
`
			res := runSrc(t, src, Options{})
			ids := res.Derived("Agg")
			if len(ids) != 1 {
				t.Fatalf("derived = %d facts:\n%s", len(ids), res.Store.Dump())
			}
			got, _ := res.Store.Get(ids[0]).Atom.Terms[1].AsFloat()
			if got != tt.want {
				t.Errorf("%s = %v, want %v", tt.fn, got, tt.want)
			}
		})
	}
}

func TestExistentialNulls(t *testing.T) {
	src := `
@output("HasAccount").
HasAccount(X, A) :- Company(X).
Company("ACME").
`
	res := runSrc(t, src, Options{})
	ids := res.Derived("HasAccount")
	if len(ids) != 1 {
		t.Fatalf("derived = %d", len(ids))
	}
	f := res.Store.Get(ids[0])
	if !f.Atom.Terms[1].IsNull() {
		t.Errorf("existential position = %v, want labelled null", f.Atom.Terms[1])
	}
}

func TestNonTerminatingProgramBounded(t *testing.T) {
	src := `
@output("N").
N(Y) :- N(X), Y = X + 1.
N(0).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{MaxRounds: 50}); err == nil {
		t.Error("non-terminating program did not error")
	} else if !strings.Contains(err.Error(), "fixpoint") {
		t.Errorf("error = %v", err)
	}
}

func TestMaxFactsBound(t *testing.T) {
	src := `
@output("P").
P(Y) :- P(X), Edge(X, Y).
P("a").
Edge("a", "b"). Edge("b", "c"). Edge("c", "d").
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Options{MaxFacts: 5}); err == nil {
		t.Error("fact bound not enforced")
	}
}

func TestExtraFacts(t *testing.T) {
	src := `
@output("P").
P(X) :- Q(X).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	extra, _ := parser.ParseAtom(`Q("z")`)
	res, err := Run(prog, Options{ExtraFacts: []ast.Atom{extra}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derived("P")) != 1 {
		t.Error("extra fact not used")
	}
	bad := ast.NewAtom("Q", term.Var("X"))
	if _, err := Run(prog, Options{ExtraFacts: []ast.Atom{bad}}); err == nil {
		t.Error("non-ground extra fact accepted")
	}
}

func TestLookupDerivedErrors(t *testing.T) {
	res := runSrc(t, stressSimpleSrc, Options{})
	missing, _ := parser.ParseAtom(`Default("Z")`)
	if _, err := res.LookupDerived(missing); err == nil {
		t.Error("missing fact found")
	}
	open, _ := parser.ParseAtom(`Default(X)`)
	if _, err := res.LookupDerived(open); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous lookup err = %v", err)
	}
}

func TestGraphAndDOT(t *testing.T) {
	res := runSrc(t, stressSimpleSrc, Options{})
	g := res.Graph()
	for _, sub := range []string{"--alpha-->", "--beta-->", "--gamma-->", "Risk(C, 11)"} {
		if !strings.Contains(g, sub) {
			t.Errorf("Graph missing %q:\n%s", sub, g)
		}
	}
	dot := res.DOT()
	for _, sub := range []string{"digraph chase", "shape=box", "shape=ellipse", `label="beta"`} {
		if !strings.Contains(dot, sub) {
			t.Errorf("DOT missing %q", sub)
		}
	}
}

func TestProofOfExtensionalFact(t *testing.T) {
	res := runSrc(t, stressSimpleSrc, Options{})
	shock, _ := parser.ParseAtom(`Shock("A", 6.0)`)
	f := res.Store.Lookup(shock)
	proof, err := res.ExtractProof(f.ID)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Size() != 0 || proof.SpineLength() != 0 {
		t.Errorf("extensional proof size = %d/%d, want 0/0", proof.Size(), proof.SpineLength())
	}
	if len(proof.Leaves) != 1 {
		t.Errorf("leaves = %v", proof.Leaves)
	}
	if _, err := res.ExtractProof(database.FactID(9999)); err == nil {
		t.Error("unknown fact id accepted")
	}
}

// TestDeterminism: two runs of the same program produce identical chase step
// sequences (required for reproducible explanations and benchmarks).
func TestDeterminism(t *testing.T) {
	r1 := runSrc(t, twoChannelSrc, Options{})
	r2 := runSrc(t, twoChannelSrc, Options{})
	if len(r1.Steps) != len(r2.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(r1.Steps), len(r2.Steps))
	}
	for i := range r1.Steps {
		f1 := r1.Store.Get(r1.Steps[i].Fact).String()
		f2 := r2.Store.Get(r2.Steps[i].Fact).String()
		if f1 != f2 {
			t.Errorf("step %d differs: %s vs %s", i, f1, f2)
		}
	}
}

func TestSelfJoinRule(t *testing.T) {
	// A rule joining a predicate with itself.
	src := `
@output("Sibling").
Sibling(X, Y) :- Parent(P, X), Parent(P, Y), X != Y.
Parent("p", "a"). Parent("p", "b").
`
	res := runSrc(t, src, Options{})
	if got := len(res.Derived("Sibling")); got != 2 {
		t.Errorf("siblings = %d, want 2 (both orders)", got)
	}
}

func TestConditionConstantSides(t *testing.T) {
	src := `
@output("Big").
Big(X) :- Val(X, V), V >= 10.
Val("a", 10.0). Val("b", 9.0).
`
	res := runSrc(t, src, Options{})
	if len(res.Derived("Big")) != 1 {
		t.Errorf("derived = %v", res.Store.Dump())
	}
}

// TestComplexExpressionEvaluation runs a rule with a parenthesized,
// precedence-sensitive expression through the chase.
func TestComplexExpressionEvaluation(t *testing.T) {
	src := `
@output("Weighted").
Weighted(X, W) :- Exposure(X, L, S), Cap(X, C), W = (L + S) / C.
Exposure("a", 6.0, 4.0).
Cap("a", 5.0).
`
	res := runSrc(t, src, Options{})
	ids := res.Derived("Weighted")
	if len(ids) != 1 {
		t.Fatalf("derived = %v", res.Store.Dump())
	}
	if w, _ := res.Store.Get(ids[0]).Atom.Terms[1].AsFloat(); w != 2 {
		t.Errorf("weighted = %v, want (6+4)/5 = 2", w)
	}
}
