package chase

import (
	"fmt"
	"testing"

	"repro/internal/parser"
)

// diffBatch runs the program through the legacy baseline, the frame
// executor, and the batch executor (workers 0 and 4 each) and asserts that
// all five runs are byte-for-byte identical.
func diffBatch(t *testing.T, label, src string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	for _, naive := range []bool{false, true} {
		legacy, err := Run(prog, Options{Naive: naive, Legacy: true})
		if err != nil {
			t.Fatalf("%s naive=%v legacy: %v", label, naive, err)
		}
		for _, workers := range []int{0, 4} {
			batch, err := Run(prog, Options{Naive: naive, Workers: workers, Batch: true})
			if err != nil {
				t.Fatalf("%s naive=%v workers=%d batch: %v", label, naive, workers, err)
			}
			diffResults(t, fmt.Sprintf("%s naive=%v workers=%d batch", label, naive, workers), legacy, batch)
		}
	}
}

// TestBatchEquivalenceFixedPrograms: the batch-at-a-time columnar executor
// reproduces the legacy engine (and hence the frame executor, which has its
// own differential against the same baseline) byte for byte — facts, ids,
// steps, premise order, substitutions, aggregation contributors, chase
// graph — on every bundled program shape, in naive and semi-naive mode,
// sequential and parallel.
func TestBatchEquivalenceFixedPrograms(t *testing.T) {
	sources := map[string]string{
		"stress-simple": stressSimpleSrc,
		"irish-bank":    irishBankSrc,
		"two-channel":   twoChannelSrc,
		"negation":      eligibleSrc,
		"kitchen-sink":  planKitchenSrc,
	}
	for name, src := range sources {
		diffBatch(t, name, src)
	}
}

// TestBatchDifferentialRandomOwnership: over 24 random layered ownership
// graphs, the batch executor (sequential and 4 workers) is identical to the
// frame executor.
func TestBatchDifferentialRandomOwnership(t *testing.T) {
	controlRules := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`
	prog, err := parser.Parse(controlRules)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 24; seed++ {
		facts := randomOwnership(seed)
		frame, err := Run(prog, Options{ExtraFacts: facts})
		if err != nil {
			t.Fatalf("seed %d frame: %v", seed, err)
		}
		for _, workers := range []int{0, 4} {
			batch, err := Run(prog, Options{ExtraFacts: facts, Workers: workers, Batch: true})
			if err != nil {
				t.Fatalf("seed %d workers=%d batch: %v", seed, workers, err)
			}
			diffResults(t, fmt.Sprintf("seed %d workers=%d batch", seed, workers), frame, batch)
		}
	}
}

// TestBatchLegacyExclusive: Batch builds on compiled plans, so combining it
// with the pre-compilation legacy engine is rejected up front.
func TestBatchLegacyExclusive(t *testing.T) {
	prog := parser.MustParse(`@output("P"). P(X) :- Q(X). Q("a").`)
	if _, err := Run(prog, Options{Batch: true, Legacy: true}); err == nil {
		t.Fatal("Batch+Legacy accepted, want error")
	}
	if _, err := Run(prog, Options{Batch: true}); err != nil {
		t.Fatalf("Batch alone rejected: %v", err)
	}
}

// TestBatchConstraintViolation: constraint pseudo-rules flow through the
// same join dispatch, so the batch executor must report the identical first
// violating homomorphism.
func TestBatchConstraintViolation(t *testing.T) {
	src := `
@output("P").
P(X) :- Q(X).
:- P(X), Bad(X).
Q("a"). Q("b"). Bad("b").
`
	prog := parser.MustParse(src)
	_, ferr := Run(prog, Options{})
	_, berr := Run(prog, Options{Batch: true})
	if ferr == nil || berr == nil {
		t.Fatalf("constraint not reported: frame=%v batch=%v", ferr, berr)
	}
	if ferr.Error() != berr.Error() {
		t.Fatalf("constraint errors differ:\nframe: %v\nbatch: %v", ferr, berr)
	}
}
