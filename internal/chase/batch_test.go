package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/term"
)

// diffBatch runs the program through the legacy baseline, the frame
// executor, and the batch executor (workers 0 and 4 each) and asserts that
// all five runs are byte-for-byte identical.
func diffBatch(t *testing.T, label, src string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	for _, naive := range []bool{false, true} {
		legacy, err := Run(prog, Options{Naive: naive, Legacy: true})
		if err != nil {
			t.Fatalf("%s naive=%v legacy: %v", label, naive, err)
		}
		for _, workers := range []int{0, 4} {
			batch, err := Run(prog, Options{Naive: naive, Workers: workers, Batch: true})
			if err != nil {
				t.Fatalf("%s naive=%v workers=%d batch: %v", label, naive, workers, err)
			}
			diffResults(t, fmt.Sprintf("%s naive=%v workers=%d batch", label, naive, workers), legacy, batch)
		}
	}
}

// TestBatchEquivalenceFixedPrograms: the batch-at-a-time columnar executor
// reproduces the legacy engine (and hence the frame executor, which has its
// own differential against the same baseline) byte for byte — facts, ids,
// steps, premise order, substitutions, aggregation contributors, chase
// graph — on every bundled program shape, in naive and semi-naive mode,
// sequential and parallel.
func TestBatchEquivalenceFixedPrograms(t *testing.T) {
	sources := map[string]string{
		"stress-simple": stressSimpleSrc,
		"irish-bank":    irishBankSrc,
		"two-channel":   twoChannelSrc,
		"negation":      eligibleSrc,
		"kitchen-sink":  planKitchenSrc,
	}
	for name, src := range sources {
		diffBatch(t, name, src)
	}
}

// TestBatchDifferentialRandomOwnership: over 24 random layered ownership
// graphs, the batch executor (sequential and 4 workers) is identical to the
// frame executor.
func TestBatchDifferentialRandomOwnership(t *testing.T) {
	controlRules := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`
	prog, err := parser.Parse(controlRules)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 24; seed++ {
		facts := randomOwnership(seed)
		frame, err := Run(prog, Options{ExtraFacts: facts})
		if err != nil {
			t.Fatalf("seed %d frame: %v", seed, err)
		}
		for _, workers := range []int{0, 4} {
			batch, err := Run(prog, Options{ExtraFacts: facts, Workers: workers, Batch: true})
			if err != nil {
				t.Fatalf("seed %d workers=%d batch: %v", seed, workers, err)
			}
			diffResults(t, fmt.Sprintf("seed %d workers=%d batch", seed, workers), frame, batch)
		}
	}
}

// TestBatchLegacyExclusive: Batch builds on compiled plans, so combining it
// with the pre-compilation legacy engine is rejected up front.
func TestBatchLegacyExclusive(t *testing.T) {
	prog := parser.MustParse(`@output("P"). P(X) :- Q(X). Q("a").`)
	if _, err := Run(prog, Options{Batch: true, Legacy: true}); err == nil {
		t.Fatal("Batch+Legacy accepted, want error")
	}
	if _, err := Run(prog, Options{Batch: true}); err != nil {
		t.Fatalf("Batch alone rejected: %v", err)
	}
}

// TestBatchConstraintViolation: constraint pseudo-rules flow through the
// same join dispatch, so the batch executor must report the identical first
// violating homomorphism.
func TestBatchConstraintViolation(t *testing.T) {
	src := `
@output("P").
P(X) :- Q(X).
:- P(X), Bad(X).
Q("a"). Q("b"). Bad("b").
`
	prog := parser.MustParse(src)
	_, ferr := Run(prog, Options{})
	_, berr := Run(prog, Options{Batch: true})
	if ferr == nil || berr == nil {
		t.Fatalf("constraint not reported: frame=%v batch=%v", ferr, berr)
	}
	if ferr.Error() != berr.Error() {
		t.Fatalf("constraint errors differ:\nframe: %v\nbatch: %v", ferr, berr)
	}
}

// denseOwnership builds a layered ownership graph dense enough that the
// bound-probe depths of a two-hop join carry well over mergeThreshold
// tuples, forcing the leapfrog merge path (not the per-tuple probe path).
func denseOwnership(layers, width, fanout int, seed int64) []ast.Atom {
	rng := rand.New(rand.NewSource(seed))
	var facts []ast.Atom
	node := func(l, i int) string { return fmt.Sprintf("L%dC%d", l, i) }
	for l := 1; l < layers; l++ {
		for i := 0; i < width; i++ {
			for f := 0; f < fanout; f++ {
				share := 0.1 + float64(rng.Intn(90))/100
				facts = append(facts, ast.NewAtom("Own",
					term.Str(node(l-1, rng.Intn(width))), term.Str(node(l, i)), term.Float(share)))
			}
		}
	}
	return facts
}

// TestBatchTriejoinDifferential: on workloads sized to exercise the merge
// (leapfrog) join path, the batch executor is byte-identical to the frame
// executor at workers 0 and 4, in bulk and semi-naive modes — and the join
// counters prove the triejoin actually ran rather than silently falling
// back to per-tuple probes.
func TestBatchTriejoinDifferential(t *testing.T) {
	sources := map[string]struct {
		src string
		// wantMerge: the workload is dense enough that every chunking
		// (workers 0 and 4) must drive at least one depth over
		// mergeThreshold; recursive reach deltas can legitimately stay
		// below it at high worker counts, so only byte-identity and seek
		// accounting are required there.
		wantMerge bool
	}{
		"two-hop": {src: `
@output("Risky").
@label("t1") Risky(X, Z) :- Own(X, Y, S1), Own(Y, Z, S2), S1 > 0.5, S2 > 0.5.
`, wantMerge: true},
		"majority-reach": {src: `
@output("Reach").
@label("r1") Reach(X) :- Own("L0C0", X, S), S > 0.2.
@label("r2") Reach(Y) :- Reach(X), Own(X, Y, S), S > 0.5.
`},
	}
	for seed := int64(0); seed < 3; seed++ {
		facts := denseOwnership(6, 30, 8, seed)
		for name, w := range sources {
			src := w.src
			prog, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("%s: parse: %v", name, err)
			}
			frame, err := Run(prog, Options{ExtraFacts: facts})
			if err != nil {
				t.Fatalf("%s seed %d frame: %v", name, seed, err)
			}
			for _, workers := range []int{0, 4} {
				batch, err := Run(prog, Options{ExtraFacts: facts, Workers: workers, Batch: true})
				if err != nil {
					t.Fatalf("%s seed %d workers=%d batch: %v", name, seed, workers, err)
				}
				diffResults(t, fmt.Sprintf("%s seed %d workers=%d batch", name, seed, workers), frame, batch)
				js := batch.Store.ColumnarStats()
				if w.wantMerge && js.TriejoinPasses == 0 {
					t.Fatalf("%s seed %d workers=%d: merge path never ran: %+v", name, seed, workers, js)
				}
				if js.Seeks == 0 {
					t.Fatalf("%s seed %d workers=%d: no iterator seeks recorded: %+v", name, seed, workers, js)
				}
			}
		}
	}
}
