package chase

// Compiled join plans: instead of interpreting a rule per match with
// map-based substitutions, every rule is compiled once into slot-based join
// plans over the store's interned values, and the join phase runs a
// depth-first executor over a flat binding frame.
//
// A plan numbers the rule's variables into two slot spaces: variables bound
// by body atoms get id slots (holding term.ValueID, compared as integers),
// and assignment targets get value slots (holding the computed term.Term
// directly, so the read-only join phase never interns a new value — see the
// concurrency contract in the package comment). For each semi-naive pivot
// order the compiler pre-resolves every atom position to a database.SlotOp
// (constant id, already-bound slot, first write, or repeated-variable
// check), and annotates every condition, assignment, and negated atom with
// the earliest join depth at which its operands are bound, so they run as
// soon as possible (predicate pushdown) instead of only on complete
// bindings.
//
// Equivalence with the map-based (legacy) engine. The executor enumerates
// candidates per atom in the same index-bucket order, with the same
// smallest-bucket selection, as Store.MatchBind — so its depth-first leaf
// order equals the legacy breadth-first binding order (both are the
// lexicographic order of per-atom match choices). Conditions and negations
// are pure per-binding filters and assignments are deterministic functions
// of bound operands, so running them at an earlier depth prunes the same
// complete bindings legacy would drop, without reordering survivors. Fact
// ids, chase steps, premise order, and aggregation contributions are
// therefore byte-identical to the legacy engine (differentially tested in
// plan_test.go). The one intended divergence: on ill-typed programs whose
// conditions or arithmetic fail at run time, pushdown can surface the error
// on a different (or no) homomorphism, because a partial binding that legacy
// never finishes may be filtered — or fail — earlier here. Both engines
// still fail deterministically on such programs.
//
// A frame is converted back to a term.Substitution only at the emission
// boundary (engine.bindingSub), so provenance, aggregation grouping,
// mapping, and core see exactly the data they saw before the refactor.

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/term"
)

// refKind says where a variable lives at execution time.
type refKind uint8

const (
	// refUnbound marks a variable bound by neither atoms nor assignments
	// (an existential head variable, or the aggregation target).
	refUnbound refKind = iota
	// refSlot is an id slot in the binding frame (bound by a body atom).
	refSlot
	// refVal is a value slot (bound by an assignment).
	refVal
)

// slotRef resolves one variable name to its slot.
type slotRef struct {
	name string
	kind refKind
	idx  int
}

// plan is the compiled form of one rule, shared by every evaluation of that
// rule. It is immutable after compilation; executors carry all mutable
// state, so one plan serves concurrent join workers.
type plan struct {
	rule *ast.Rule
	// nslots id slots (atom variables, first-occurrence order over the
	// body); nvals value slots (assignment targets, rule order).
	nslots    int
	nvals     int
	slotNames []string
	valNames  []string
	slotOf    map[string]int
	valOf     map[string]int
	// orders[p] is the compiled evaluation order for semi-naive pivot p;
	// orders[0] is also the plain body order used by full joins.
	orders []*orderedPlan
	// existential reports whether the head has variables no slot binds
	// (the restricted-chase pre-emption check applies).
	existential bool
	// Aggregation support: the aggregated variable and the group-by
	// variables resolved to slots (nil for non-aggregation rules).
	overRef   slotRef
	groupRefs []slotRef
	// head is the vectorized-emission layout of the head atom (nil when the
	// rule is existential or aggregating — those emit per binding).
	head *headPlan
}

// headPlan precompiles the head atom for the batch executor's vectorized
// emission path (engine.emitCols): the canonical-key prefix and, per head
// position, either a pre-interned constant (with its canonical key bytes)
// or the slot/value column to read. Pre-interning head constants at compile
// time is unobservable — results compare by atom, never by value id.
type headPlan struct {
	pred string
	open []byte // "Pred(" — the canonical-key prefix
	part []headPart
}

type headPart struct {
	isConst bool
	kind    refKind // refSlot or refVal for variable positions
	idx     int
	t       term.Term    // constant term
	id      term.ValueID // interned constant id
	key     []byte       // constant canonical key bytes
}

// compileHead builds the emission layout; existential rules (fresh nulls per
// emission) and aggregation rules (target bound at group level) keep the
// per-binding path.
func (p *plan) compileHead(r *ast.Rule, in *term.Interner) {
	if p.existential || r.Aggregation != nil {
		return
	}
	hp := &headPlan{pred: r.Head.Predicate}
	hp.open = append([]byte(r.Head.Predicate), '(')
	for _, t := range r.Head.Terms {
		if !t.IsVariable() {
			hp.part = append(hp.part, headPart{isConst: true, t: t, id: in.Intern(t), key: []byte(t.Key())})
			continue
		}
		ref := p.resolveVar(t.Name())
		hp.part = append(hp.part, headPart{kind: ref.kind, idx: ref.idx})
	}
	p.head = hp
}

// orderedPlan is a plan specialized to one evaluation order of the body
// atoms: per order position, the slot-compiled atom pattern and the pushed-
// down steps to run once that position is bound.
type orderedPlan struct {
	order []int
	atoms []database.SlotPattern
	// steps[d] run after the atom at order position d binds, in legacy
	// relative order: assignments (rule order), then conditions, then
	// negated atoms.
	steps [][]planStep
	// keyPos[d] is the preferred join-key position of the atom at order
	// position d — a SlotBound position, chosen by the join-key ordering
	// pass so consecutive depths share one variable order where the body
	// permits (see planJoinKeys); -1 when the atom has no bound position.
	// The batch executor's merge (leapfrog) extension sorts its tuple set by
	// the join key once and keeps it sorted across depths that chain on the
	// same slot, so only the first depth of a chain pays a sort.
	keyPos []int
}

// planJoinKeys is the join-key ordering pass: it walks the evaluation order
// and picks, per depth, the bound position whose slot continues the previous
// depth's key (the shared variable order of a leapfrog triejoin), falling
// back to the first bound position when the atom does not bind the chain
// slot. The choice is a pure performance hint — any probe position yields
// the same candidates, and the batch executor restores canonical order at
// the emission boundary — so the runtime may override it for a position with
// much better selectivity.
func planJoinKeys(atoms []database.SlotPattern) []int {
	keyPos := make([]int, len(atoms))
	chain := -1
	for d := range atoms {
		best := -1
		for pos, sop := range atoms[d].Ops {
			if sop.Kind != database.SlotBound {
				continue
			}
			if best == -1 {
				best = pos
			}
			if sop.Slot == chain {
				best = pos
				break
			}
		}
		keyPos[d] = best
		if best >= 0 {
			chain = atoms[d].Ops[best].Slot
		}
	}
	return keyPos
}

// planStep is one pushed-down body obligation; exactly one field is set.
type planStep struct {
	assign *planAssign
	cond   *planCond
	neg    *planNeg
}

// planOperand is a condition/expression operand resolved against the slot
// spaces.
type planOperand struct {
	kind    refKind
	idx     int
	t       term.Term // constant operand (kind == refUnbound is never used here)
	isConst bool
}

type planAssign struct {
	target int // value slot
	expr   *planExpr
	src    ast.Assignment
}

type planCond struct {
	l, r planOperand
	op   ast.CompareOp
	src  ast.Condition
}

// planNeg is a negated atom compiled to a slot pattern. Positions holding an
// assignment target cannot be pre-interned (the computed value may not be in
// the dictionary); valFixes records them for per-binding resolution.
type planNeg struct {
	pat      database.SlotPattern
	valFixes []valFix
}

type valFix struct {
	pos int // pattern position to overwrite
	val int // value slot to resolve
}

// planExpr mirrors ast.Expr with operands resolved to slots.
type planExpr struct {
	leaf    bool
	operand planOperand
	op      ast.ArithOp
	l, r    *planExpr
	src     string
}

// compilePlan compiles a rule against the store's value dictionary. Atom
// constants are interned here — before any concurrent join runs — so that
// pattern positions compare as integers at match time.
func compilePlan(r *ast.Rule, in *term.Interner) (*plan, error) {
	p := &plan{
		rule:   r,
		slotOf: map[string]int{},
		valOf:  map[string]int{},
	}
	for _, a := range r.Body {
		for _, t := range a.Terms {
			if t.IsVariable() {
				if _, ok := p.slotOf[t.Name()]; !ok {
					p.slotOf[t.Name()] = len(p.slotNames)
					p.slotNames = append(p.slotNames, t.Name())
				}
			}
		}
	}
	p.nslots = len(p.slotNames)
	for _, as := range r.Assignments {
		if _, ok := p.valOf[as.Target]; !ok {
			p.valOf[as.Target] = len(p.valNames)
			p.valNames = append(p.valNames, as.Target)
		}
	}
	p.nvals = len(p.valNames)
	for _, v := range r.Head.Variables() {
		if _, ok := p.slotOf[v]; ok {
			continue
		}
		if _, ok := p.valOf[v]; ok {
			continue
		}
		if r.Aggregation != nil && v == r.Aggregation.Target {
			continue
		}
		p.existential = true
	}
	if g := r.Aggregation; g != nil {
		p.overRef = p.resolveVar(g.Over)
		for _, v := range aggGroupVars(r) {
			p.groupRefs = append(p.groupRefs, p.resolveVar(v))
		}
	}
	p.compileHead(r, in)
	p.orders = make([]*orderedPlan, len(r.Body))
	for pivot := range r.Body {
		op, err := p.compileOrder(r, in, pivotOrder(r, pivot))
		if err != nil {
			return nil, err
		}
		p.orders[pivot] = op
	}
	return p, nil
}

// resolveVar maps a variable name onto its slot space.
func (p *plan) resolveVar(name string) slotRef {
	if i, ok := p.slotOf[name]; ok {
		return slotRef{name: name, kind: refSlot, idx: i}
	}
	if i, ok := p.valOf[name]; ok {
		return slotRef{name: name, kind: refVal, idx: i}
	}
	return slotRef{name: name, kind: refUnbound}
}

// compileOrder compiles the body for one evaluation order: slot ops per atom
// position, plus the pushed-down step schedule.
func (p *plan) compileOrder(r *ast.Rule, in *term.Interner, order []int) (*orderedPlan, error) {
	op := &orderedPlan{
		order: order,
		atoms: make([]database.SlotPattern, len(order)),
		steps: make([][]planStep, len(order)),
	}
	// slotDepth[s] is the order position that first binds id slot s.
	slotDepth := make([]int, p.nslots)
	for i := range slotDepth {
		slotDepth[i] = -1
	}
	for d, atomIdx := range order {
		a := r.Body[atomIdx]
		ops := make([]database.SlotOp, len(a.Terms))
		for pos, t := range a.Terms {
			if !t.IsVariable() {
				ops[pos] = database.SlotOp{Kind: database.SlotConst, Val: in.Intern(t)}
				continue
			}
			slot := p.slotOf[t.Name()]
			switch {
			case slotDepth[slot] >= 0 && slotDepth[slot] < d:
				ops[pos] = database.SlotOp{Kind: database.SlotBound, Slot: slot}
			case slotDepth[slot] == d:
				// Repeated variable within this atom: check against the
				// value written at the earlier position.
				ops[pos] = database.SlotOp{Kind: database.SlotSame, Slot: slot}
			default:
				ops[pos] = database.SlotOp{Kind: database.SlotWrite, Slot: slot}
				slotDepth[slot] = d
			}
		}
		op.atoms[d] = database.SlotPattern{Predicate: a.Predicate, Ops: ops}
	}
	op.keyPos = planJoinKeys(op.atoms)

	// Schedule assignments at the earliest depth where their operands are
	// bound. valDepth[v] is the depth at which value slot v becomes bound.
	valDepth := make([]int, p.nvals)
	operandDepth := func(o planOperand) int {
		switch o.kind {
		case refSlot:
			return slotDepth[o.idx]
		case refVal:
			return valDepth[o.idx]
		}
		return 0
	}
	var exprDepth func(e *planExpr) int
	exprDepth = func(e *planExpr) int {
		if e.leaf {
			return operandDepth(e.operand)
		}
		ld, rd := exprDepth(e.l), exprDepth(e.r)
		if ld > rd {
			return ld
		}
		return rd
	}
	type scheduled struct {
		depth int
		step  planStep
	}
	var pending []scheduled
	for _, as := range r.Assignments {
		expr, err := p.compileExpr(as.Expr)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", r.Label, err)
		}
		pa := &planAssign{target: p.valOf[as.Target], expr: expr, src: as}
		d := exprDepth(expr)
		valDepth[pa.target] = d
		pending = append(pending, scheduled{d, planStep{assign: pa}})
	}
	deferTarget := ""
	if r.Aggregation != nil {
		deferTarget = r.Aggregation.Target
	}
	for _, c := range r.Conditions {
		if deferTarget != "" && mentions(c, deferTarget) {
			continue // checked at the aggregation group level
		}
		pc := &planCond{l: p.compileOperand(c.Left), r: p.compileOperand(c.Right), op: c.Op, src: c}
		d := operandDepth(pc.l)
		if rd := operandDepth(pc.r); rd > d {
			d = rd
		}
		pending = append(pending, scheduled{d, planStep{cond: pc}})
	}
	for _, na := range r.Negated {
		pn := &planNeg{pat: database.SlotPattern{Predicate: na.Predicate, Ops: make([]database.SlotOp, len(na.Terms))}}
		d := 0
		for pos, t := range na.Terms {
			if !t.IsVariable() {
				pn.pat.Ops[pos] = database.SlotOp{Kind: database.SlotConst, Val: in.Intern(t)}
				continue
			}
			switch ref := p.resolveVar(t.Name()); ref.kind {
			case refSlot:
				pn.pat.Ops[pos] = database.SlotOp{Kind: database.SlotBound, Slot: ref.idx}
				if slotDepth[ref.idx] > d {
					d = slotDepth[ref.idx]
				}
			case refVal:
				// Placeholder; resolved per binding against the computed
				// value (see executor.negBlocked).
				pn.pat.Ops[pos] = database.SlotOp{Kind: database.SlotConst, Val: term.NoValue}
				pn.valFixes = append(pn.valFixes, valFix{pos: pos, val: ref.idx})
				if valDepth[ref.idx] > d {
					d = valDepth[ref.idx]
				}
			default:
				return nil, fmt.Errorf("rule %s: negated atom %v uses unbound variable %s", r.Label, na, t.Name())
			}
		}
		pending = append(pending, scheduled{d, planStep{neg: pn}})
	}
	// Within a depth, keep the legacy relative order: assignments first (in
	// rule order), then conditions, then negations. pending was appended in
	// exactly that order, so a stable bucket pass preserves it.
	for d := range op.steps {
		for _, s := range pending {
			if s.depth == d {
				op.steps[d] = append(op.steps[d], s.step)
			}
		}
	}
	return op, nil
}

func (p *plan) compileOperand(t term.Term) planOperand {
	if !t.IsVariable() {
		return planOperand{isConst: true, t: t}
	}
	ref := p.resolveVar(t.Name())
	return planOperand{kind: ref.kind, idx: ref.idx}
}

func (p *plan) compileExpr(e ast.Expr) (*planExpr, error) {
	switch e := e.(type) {
	case ast.TermExpr:
		return &planExpr{leaf: true, operand: p.compileOperand(e.T), src: e.String()}, nil
	case ast.BinaryExpr:
		l, err := p.compileExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := p.compileExpr(e.R)
		if err != nil {
			return nil, err
		}
		return &planExpr{op: e.Op, l: l, r: r, src: e.String()}, nil
	default:
		return nil, fmt.Errorf("cannot compile expression %v (%T)", e, e)
	}
}

// executor runs one ordered plan depth-first over a reusable frame. It is
// single-goroutine state: parallel evaluation gives each task its own
// executor over the shared immutable plan.
type executor struct {
	e       *engine
	p       *plan
	op      *orderedPlan
	allow   atomFilter
	frame   []term.ValueID
	vals    []term.Term
	facts   []database.FactID
	out     []binding
	scratch []database.SlotOp
}

func (e *engine) newExecutor(p *plan, op *orderedPlan, allow atomFilter) *executor {
	x := &executor{
		e:     e,
		p:     p,
		op:    op,
		allow: allow,
		frame: make([]term.ValueID, p.nslots),
		facts: make([]database.FactID, len(p.rule.Body)),
	}
	if p.nvals > 0 {
		x.vals = make([]term.Term, p.nvals)
	}
	for i := range x.frame {
		x.frame[i] = term.NoValue
	}
	return x
}

// extend enumerates every admissible match of the atom at order position
// depth and recurses. Candidates are visited in the same order legacy
// MatchBind yields them, so leaves appear in the legacy binding order.
func (x *executor) extend(depth int) error {
	pa := &x.op.atoms[depth]
	atomIdx := x.op.order[depth]
	store := x.e.store
	for _, id := range store.CandidatesSlots(*pa, x.frame) {
		if !store.BindRowSlots(*pa, id, x.frame) {
			continue
		}
		if x.e.superseded[id] {
			continue
		}
		if x.allow != nil && !x.allow(atomIdx, id) {
			continue
		}
		x.facts[atomIdx] = id
		if err := x.afterBind(depth); err != nil {
			return err
		}
	}
	return nil
}

// afterBind runs once the atom at order position depth is bound: pushed-down
// steps, then the next atom or the leaf.
func (x *executor) afterBind(depth int) error {
	ok, err := x.runSteps(depth)
	if err != nil || !ok {
		return err
	}
	if depth+1 == len(x.op.atoms) {
		x.emitLeaf()
		return nil
	}
	return x.extend(depth + 1)
}

// runSteps applies the steps scheduled at this depth; ok=false drops the
// current partial binding.
func (x *executor) runSteps(depth int) (bool, error) {
	steps := x.op.steps[depth]
	for i := range steps {
		switch st := &steps[i]; {
		case st.assign != nil:
			v, err := x.evalExpr(st.assign.expr)
			if err != nil {
				return false, fmt.Errorf("assignment %s: %w", st.assign.src, err)
			}
			x.vals[st.assign.target] = v
		case st.cond != nil:
			ok, err := x.holds(st.cond)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		case st.neg != nil:
			if x.negBlocked(st.neg) {
				return false, nil
			}
		}
	}
	return true, nil
}

// emitLeaf materializes the current frame as one binding.
func (x *executor) emitLeaf() {
	b := binding{
		frame: append([]term.ValueID(nil), x.frame...),
		facts: append([]database.FactID(nil), x.facts...),
	}
	if len(x.vals) > 0 {
		b.vals = append([]term.Term(nil), x.vals...)
	}
	x.out = append(x.out, b)
}

// resolve turns an operand into its current term.
func (x *executor) resolve(o planOperand) term.Term {
	if o.isConst {
		return o.t
	}
	if o.kind == refVal {
		return x.vals[o.idx]
	}
	return x.e.store.Interner().Value(x.frame[o.idx])
}

// holds evaluates a compiled condition with ast.Condition.Holds semantics.
func (x *executor) holds(c *planCond) (bool, error) {
	return condHolds(c.op, x.resolve(c.l), x.resolve(c.r), c.src)
}

// condHolds is the shared condition semantics of the frame and batch
// executors (ast.Condition.Holds over resolved terms). Both must route
// through it so filter decisions — and error messages on ill-typed
// programs — stay identical across engines.
func condHolds(op ast.CompareOp, l, r term.Term, src ast.Condition) (bool, error) {
	switch op {
	case ast.OpEq:
		return l.Equal(r), nil
	case ast.OpNe:
		return !l.Equal(r), nil
	}
	cmp, ok := l.Compare(r)
	if !ok {
		return false, fmt.Errorf("condition %v: incomparable terms %v and %v", src, l, r)
	}
	switch op {
	case ast.OpLt:
		return cmp < 0, nil
	case ast.OpLe:
		return cmp <= 0, nil
	case ast.OpGt:
		return cmp > 0, nil
	case ast.OpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("condition %v: unknown operator", src)
}

// evalExpr evaluates a compiled expression with ast.Expr.Eval semantics.
func (x *executor) evalExpr(e *planExpr) (term.Term, error) {
	if e.leaf {
		return x.resolve(e.operand), nil
	}
	l, err := x.evalExpr(e.l)
	if err != nil {
		return term.Term{}, err
	}
	r, err := x.evalExpr(e.r)
	if err != nil {
		return term.Term{}, err
	}
	return arithCombine(e.op, l, r, e.src)
}

// arithCombine is the shared arithmetic semantics of the frame and batch
// executors (ast.BinaryExpr.Eval over resolved operands).
func arithCombine(op ast.ArithOp, l, r term.Term, src string) (term.Term, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return term.Term{}, fmt.Errorf("expression %s: non-numeric operands %v, %v", src, l, r)
	}
	var v float64
	switch op {
	case ast.ArithAdd:
		v = lf + rf
	case ast.ArithSub:
		v = lf - rf
	case ast.ArithMul:
		v = lf * rf
	case ast.ArithDiv:
		if rf == 0 {
			return term.Term{}, fmt.Errorf("expression %s: division by zero", src)
		}
		v = lf / rf
	default:
		return term.Term{}, fmt.Errorf("expression %s: unknown operator", src)
	}
	return term.Float(v), nil
}

// negBlocked reports whether some current (non-superseded) fact matches the
// negated atom under the frame — the stratified-negation rejection.
func (x *executor) negBlocked(n *planNeg) bool {
	pat := n.pat
	if len(n.valFixes) > 0 {
		x.scratch = append(x.scratch[:0], n.pat.Ops...)
		for _, vf := range n.valFixes {
			id, ok := x.e.store.Interner().Lookup(x.vals[vf.val])
			if !ok {
				// The computed value was never interned, so no stored
				// fact can contain it: the negated atom has no match.
				return false
			}
			x.scratch[vf.pos] = database.SlotOp{Kind: database.SlotConst, Val: id}
		}
		pat = database.SlotPattern{Predicate: n.pat.Predicate, Ops: x.scratch}
	}
	store := x.e.store
	for _, id := range store.CandidatesSlots(pat, x.frame) {
		if x.e.superseded[id] {
			continue
		}
		if store.BindRowSlots(pat, id, x.frame) {
			return true
		}
	}
	return false
}

// joinPlanBody is the compiled-engine full body join (sequential).
func (e *engine) joinPlanBody(p *plan) ([]binding, error) {
	x := e.newExecutor(p, p.orders[0], nil)
	if err := x.extend(0); err != nil {
		return nil, err
	}
	return x.out, nil
}

// joinPlanSemiNaive is the compiled-engine semi-naive join (sequential):
// the standard pivot decomposition, pivot results concatenated in pivot
// order exactly like the legacy engine.
func (e *engine) joinPlanSemiNaive(p *plan, boundary database.FactID) ([]binding, error) {
	var all []binding
	for pivot := range p.orders {
		x := e.newExecutor(p, p.orders[pivot], pivotFilter(pivot, boundary))
		x.out = all
		if err := x.extend(0); err != nil {
			return nil, err
		}
		all = x.out
	}
	return all, nil
}
