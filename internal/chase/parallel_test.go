package chase

import (
	"fmt"
	"testing"

	"repro/internal/database"
	"repro/internal/parser"
)

// diffResults asserts that two chase results are byte-for-byte identical:
// same facts with the same ids, same chase steps in the same order with the
// same rules and premise lists, same superseded set, same rendered chase
// graph, same round count.
func diffResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Rounds != got.Rounds {
		t.Errorf("%s: rounds differ: %d vs %d", label, want.Rounds, got.Rounds)
	}
	if w, g := want.Store.Dump(), got.Store.Dump(); w != g {
		t.Fatalf("%s: fact stores differ\nwant:\n%s\ngot:\n%s", label, w, g)
	}
	if w, g := want.Store.Len(), got.Store.Len(); w != g {
		t.Fatalf("%s: store sizes differ: %d vs %d", label, w, g)
	}
	for id := 0; id < want.Store.Len(); id++ {
		w, g := want.Store.Get(database.FactID(id)), got.Store.Get(database.FactID(id))
		if w.Atom.Key() != g.Atom.Key() || w.Extensional != g.Extensional {
			t.Fatalf("%s: fact #%d differs: %v vs %v", label, id, w, g)
		}
		if want.Superseded(w.ID) != got.Superseded(g.ID) {
			t.Errorf("%s: superseded(#%d) differs", label, id)
		}
	}
	if len(want.Steps) != len(got.Steps) {
		t.Fatalf("%s: step counts differ: %d vs %d", label, len(want.Steps), len(got.Steps))
	}
	for i := range want.Steps {
		w, g := want.Steps[i], got.Steps[i]
		if w.Fact != g.Fact || w.Rule.Label != g.Rule.Label {
			t.Fatalf("%s: step %d differs: %v vs %v", label, i, w, g)
		}
		if fmt.Sprint(w.Premises) != fmt.Sprint(g.Premises) {
			t.Fatalf("%s: step %d premise lists differ: %v vs %v", label, i, w.Premises, g.Premises)
		}
		if len(w.Sub) != len(g.Sub) {
			t.Fatalf("%s: step %d substitution sizes differ: %v vs %v", label, i, w.Sub, g.Sub)
		}
		for v, wt := range w.Sub {
			gt, ok := g.Sub[v]
			if !ok || !wt.Equal(gt) || wt.Display() != gt.Display() {
				t.Fatalf("%s: step %d substitution differs at %s: %v vs %v", label, i, v, wt, gt)
			}
		}
		if len(w.Contributors) != len(g.Contributors) {
			t.Fatalf("%s: step %d contributor counts differ: %d vs %d", label, i, len(w.Contributors), len(g.Contributors))
		}
		for j := range w.Contributors {
			wc, gc := w.Contributors[j], g.Contributors[j]
			if fmt.Sprint(wc.Premises) != fmt.Sprint(gc.Premises) || !wc.Value.Equal(gc.Value) {
				t.Fatalf("%s: step %d contributor %d differs", label, i, j)
			}
		}
	}
	if w, g := want.Graph(), got.Graph(); w != g {
		t.Errorf("%s: chase graphs differ\nwant:\n%s\ngot:\n%s", label, w, g)
	}
}

// TestParallelEquivalenceFixedPrograms: every bundled program shape yields
// identical results at several worker counts, in both semi-naive and naive
// mode.
func TestParallelEquivalenceFixedPrograms(t *testing.T) {
	sources := map[string]string{
		"stress-simple": stressSimpleSrc,
		"irish-bank":    irishBankSrc,
		"two-channel":   twoChannelSrc,
		"negation":      eligibleSrc,
	}
	for name, src := range sources {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, naive := range []bool{false, true} {
			seq, err := Run(prog, Options{Naive: naive})
			if err != nil {
				t.Fatalf("%s sequential: %v", name, err)
			}
			for _, workers := range []int{2, 4, 8} {
				par, err := Run(prog, Options{Naive: naive, Workers: workers})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				diffResults(t, fmt.Sprintf("%s naive=%v workers=%d", name, naive, workers), seq, par)
			}
		}
	}
}

// TestParallelDifferentialRandomOwnership is the acceptance differential:
// over at least 20 random layered ownership graphs, Workers: 4 produces the
// identical canonical fact set, chase-graph node/edge set, and provenance
// premise lists as Workers: 0.
func TestParallelDifferentialRandomOwnership(t *testing.T) {
	controlRules := `
@output("Control").
@label("s1") Control(X, Y) :- Own(X, Y, S), S > 0.5.
@label("s2") Control(X, X) :- Company(X).
@label("s3") Control(X, Y) :- Control(X, Z), Own(Z, Y, S), TS = sum(S), TS > 0.5.
`
	prog, err := parser.Parse(controlRules)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 24; seed++ {
		facts := randomOwnership(seed)
		seq, err := Run(prog, Options{ExtraFacts: facts})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := Run(prog, Options{ExtraFacts: facts, Workers: 4})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		diffResults(t, fmt.Sprintf("seed %d", seed), seq, par)
	}
}

// TestParallelGOMAXPROCSWorkers: Workers < 0 selects GOMAXPROCS and stays
// equivalent.
func TestParallelGOMAXPROCSWorkers(t *testing.T) {
	prog := parser.MustParse(twoChannelSrc)
	seq := MustRun(prog, Options{})
	par := MustRun(prog, Options{Workers: -1})
	diffResults(t, "workers=-1", seq, par)
}

// TestProvenancePremiseOrderStable pins down two provenance-ordering
// properties: premise lists are identical across repeated runs (and across
// worker counts), and they stay in body-atom order — SortedFactIDs must
// never be applied on the emission path (it is reserved for per-proof
// reporting; see its doc comment).
func TestProvenancePremiseOrderStable(t *testing.T) {
	prog := parser.MustParse(twoChannelSrc)
	runs := []*Result{
		MustRun(prog, Options{}),
		MustRun(prog, Options{}),
		MustRun(prog, Options{Workers: 4}),
	}
	for i, r := range runs[1:] {
		if len(r.Steps) != len(runs[0].Steps) {
			t.Fatalf("run %d: step count differs", i+1)
		}
		for s := range r.Steps {
			if fmt.Sprint(r.Steps[s].Premises) != fmt.Sprint(runs[0].Steps[s].Premises) {
				t.Errorf("run %d step %d: premise order differs: %v vs %v",
					i+1, s, r.Steps[s].Premises, runs[0].Steps[s].Premises)
			}
		}
	}
	// Body-atom order, not sorted order: a plain-rule step's premises must
	// map positionally onto the rule body's predicates.
	for _, d := range runs[0].Steps {
		if d.IsAggregation() {
			continue
		}
		if len(d.Premises) != len(d.Rule.Body) {
			t.Fatalf("step %d: %d premises for %d body atoms", d.Step, len(d.Premises), len(d.Rule.Body))
		}
		for i, id := range d.Premises {
			got := runs[0].Store.Get(id).Atom.Predicate
			want := d.Rule.Body[i].Predicate
			if got != want {
				t.Errorf("step %d premise %d: predicate %s does not match body atom %s (premises re-ordered?)",
					d.Step, i, got, want)
			}
		}
	}
}
