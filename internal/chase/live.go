package chase

// Live chase state: the engine kept alive after fixpoint so that the
// incremental-maintenance layer (internal/incremental) can mutate the base
// instance and repair the fixpoint without re-running the chase.
//
// Live deliberately exposes narrow primitives — add a base fact, tombstone a
// set of facts, goal-directedly re-derive one atom, re-saturate the rules
// reachable from a set of dirty predicates — and leaves the DRed-style
// orchestration (over-delete closure, repair loop, statistics) to
// internal/incremental. Everything here reuses the engine's existing
// machinery: semi-naive boundaries (lastSeen) survive across Saturate calls,
// aggregation groups accumulate across updates with retracted contributors
// purged, and emission goes through the same emit/emitAgg path, so the
// maintained provenance obeys the same invariants as a from-scratch run
// (premises precede conclusions, one step per fact id, Steps[i].Step == i).
//
// A Live is single-writer: none of its methods may run concurrently with
// each other or with readers of a Snapshot taken earlier. The maintainer
// serializes access; Snapshot copies the per-result maps so that a snapshot
// taken before an update stays safe to explain afterwards (the shared store
// only ever grows, and tombstoned facts keep resolving by id).

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/depgraph"
	"repro/internal/term"
)

// Live is a chase run kept resident after fixpoint for incremental
// maintenance.
type Live struct {
	e          *engine
	strata     map[string]int
	maxStratum int
	maxRounds  int
	// rounds accumulates evaluation rounds across the initial run and every
	// Saturate since; Snapshot reports it as Result.Rounds.
	rounds int
	// existRules are rules with existentially quantified head variables.
	// Their firing is pre-empted by existing facts, so a retraction can
	// un-pre-empt them; any retraction resets them to a full re-join.
	existRules []*ast.Rule
	hasNeg     bool
	// loadSeconds/evalSeconds split the initial run's wall time; see
	// Result.LoadSeconds.
	loadSeconds float64
	evalSeconds float64
}

// RunLive executes the chase to fixpoint like Run but keeps the engine
// resident, returning a Live handle for incremental maintenance.
func RunLive(p *ast.Program, opts Options) (*Live, error) {
	return RunLiveContext(context.Background(), p, opts)
}

// RunLiveContext is RunLive under a cancellation context (see RunContext).
// The context only governs the initial fixpoint computation: a successfully
// returned Live is detached from it, so a request-scoped context that
// expires later cannot poison subsequent maintenance — install per-update
// contexts with SetContext instead.
func RunLiveContext(ctx context.Context, p *ast.Program, opts Options) (*Live, error) {
	if err := ContextErr(ctx); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("chase: invalid program: %w", err)
	}
	if opts.Batch && opts.Legacy {
		return nil, fmt.Errorf("chase: options Batch and Legacy are mutually exclusive")
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	maxFacts := opts.MaxFacts
	if maxFacts <= 0 {
		maxFacts = defaultMaxFacts
	}
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	e := &engine{
		prog:       p,
		store:      database.NewStore(),
		derivs:     map[database.FactID][]*Derivation{},
		superseded: map[database.FactID]bool{},
		aggState:   map[string]aggEmission{},
		lastSeen:   map[*ast.Rule]int{},
		aggGroups:  map[*ast.Rule]map[string]*aggGroup{},
		aggOrder:   map[*ast.Rule][]string{},
		lastSuper:  map[*ast.Rule]int{},
		plans:      map[*ast.Rule]*plan{},
		maxFacts:   maxFacts,
		naive:      opts.Naive,
		legacy:     opts.Legacy,
		batch:      opts.Batch,
		workers:    workers,
	}
	loadStart := time.Now()
	for _, f := range p.Facts {
		if _, _, err := e.store.Add(f, true); err != nil {
			return nil, err
		}
	}
	for _, f := range opts.ExtraFacts {
		if !f.IsGround() {
			return nil, fmt.Errorf("chase: extra fact %v is not ground", f)
		}
		if _, _, err := e.store.Add(f, true); err != nil {
			return nil, err
		}
	}
	evalStart := time.Now()

	// Compile every rule into its slot-based join plans up front (the
	// legacy engine interprets rules directly and needs none). Constants
	// are interned into the store's dictionary here, before any join runs.
	if !e.legacy {
		for _, r := range p.Rules {
			if _, err := e.planFor(r); err != nil {
				return nil, fmt.Errorf("chase: rule %s: %w", r.Label, err)
			}
		}
	}

	// Stratify: rules are evaluated stratum by stratum so that negated
	// predicates are fully saturated before any rule reads them.
	strata, err := depgraph.New(p).Stratify()
	if err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}

	e.ctx = ctx
	l := &Live{
		e:          e,
		strata:     strata,
		maxStratum: maxStratum,
		maxRounds:  maxRounds,
		existRules: existentialRules(p),
	}
	for _, r := range p.Rules {
		if len(r.Negated) > 0 {
			l.hasNeg = true
			break
		}
	}

	rounds, err := l.Saturate(nil)
	if err != nil {
		return nil, err
	}
	if rounds == 0 {
		l.rounds = 1 // a program without rules still "converges" in one pass
	}
	if err := e.checkConstraints(); err != nil {
		return nil, err
	}
	now := time.Now()
	l.loadSeconds = evalStart.Sub(loadStart).Seconds()
	l.evalSeconds = now.Sub(evalStart).Seconds()
	e.ctx = nil // detach: later maintenance installs its own context
	return l, nil
}

// SetContext installs the cancellation context every subsequent method call
// checks at its round, rule and chunk boundaries; nil removes it. A Live is
// single-writer (see the package comment above), so the caller that owns
// the write lock installs a per-update context before mutating and removes
// it afterwards — the incremental Maintainer does exactly that around each
// Update.
func (l *Live) SetContext(ctx context.Context) {
	if ctx == context.Background() {
		ctx = nil
	}
	l.e.ctx = ctx
}

// existentialRules returns the rules whose head mentions a variable not
// bound by the body, an assignment, or the aggregation target.
func existentialRules(p *ast.Program) []*ast.Rule {
	var out []*ast.Rule
	for _, r := range p.Rules {
		bound := map[string]bool{}
		for _, a := range r.Body {
			for _, v := range a.Variables() {
				bound[v] = true
			}
		}
		for _, as := range r.Assignments {
			bound[as.Target] = true
		}
		if r.Aggregation != nil {
			bound[r.Aggregation.Target] = true
		}
		for _, v := range r.Head.Variables() {
			if !bound[v] {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// Snapshot materializes the current fixpoint as a Result. The Result shares
// the (grow-only) store and step list but owns copies of the per-fact
// derivation index and the superseded set, so a snapshot taken before an
// update remains a consistent view afterwards — its proof memo is built
// lazily from its own maps. Each call returns a fresh Result with its own
// memo, so proofs extracted from it reflect exactly this fixpoint.
func (l *Live) Snapshot() *Result {
	e := l.e
	derivs := make(map[database.FactID][]*Derivation, len(e.derivs))
	for k, v := range e.derivs {
		derivs[k] = v
	}
	superseded := make(map[database.FactID]bool, len(e.superseded))
	for k, v := range e.superseded {
		superseded[k] = v
	}
	return &Result{
		Program:     e.prog,
		Store:       e.store,
		Steps:       e.steps,
		derivs:      derivs,
		superseded:  superseded,
		Rounds:      l.rounds,
		LoadSeconds: l.loadSeconds,
		EvalSeconds: l.evalSeconds,
	}
}

// Store exposes the live store (read-only for callers; mutate only through
// AddBase/Retract).
func (l *Live) Store() *database.Store { return l.e.store }

// Program returns the program the live chase runs.
func (l *Live) Program() *ast.Program { return l.e.prog }

// Steps returns all chase steps so far, chronological. Steps of facts that
// were later tombstoned remain in the list (Steps[i].Step == i is load-
// bearing for the proof memo); skip them via Store().Retracted.
func (l *Live) Steps() []*Derivation { return l.e.steps }

// HasNegation reports whether any rule has a negated body atom; programs
// without negation need no repair iteration beyond one delta pass.
func (l *Live) HasNegation() bool { return l.hasNeg }

// Superseded reports whether the fact is a stale aggregate emission.
func (l *Live) Superseded(id database.FactID) bool { return l.e.superseded[id] }

// AddBase adds one ground atom as an extensional fact. Adding an atom that
// is already live is a no-op (added=false); an atom that is live as a
// derived fact must be retracted first (the maintainer folds it into the
// over-delete closure), which this method enforces with an error.
func (l *Live) AddBase(a ast.Atom) (bool, error) {
	if !a.IsGround() {
		return false, fmt.Errorf("chase: base fact %v is not ground", a)
	}
	if f := l.e.store.Lookup(a); f != nil {
		if !f.Extensional {
			return false, fmt.Errorf("chase: atom %v is currently derived; retract it before re-adding as base", a.Display())
		}
		return false, nil
	}
	if _, added, err := l.e.store.Add(a, true); err != nil {
		return false, err
	} else if !added {
		return false, nil
	}
	return true, nil
}

// Retract tombstones the given facts and purges engine state that referenced
// them: aggregation contributors whose premises died are dropped (their
// groups marked dirty for recomputation at the next Saturate), and
// aggregation emissions that died lose their group state so the surviving
// contributors re-emit. Callers pass the full over-delete closure — every
// fact downstream of the unsupported ones — so that the live-premise
// invariant holds afterwards.
func (l *Live) Retract(ids []database.FactID) (int, error) {
	n := 0
	for _, id := range ids {
		if l.e.store.Retracted(id) {
			continue
		}
		if err := l.e.store.Retract(id); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		l.e.purgeRetracted()
	}
	return n, nil
}

// Rederive attempts to re-derive one atom that was over-deleted, searching
// goal-directedly for an alternative proof: for every non-aggregation rule
// whose head unifies with the atom, the body is joined with the head
// bindings seeded (assignment targets excluded — they must be recomputed and
// then match), conditions and negation checked against the current store,
// and the first surviving homomorphism emits the atom with full provenance.
// It reports whether the atom is live afterwards.
func (l *Live) Rederive(a ast.Atom) (bool, error) {
	e := l.e
	if err := e.checkCtx(); err != nil {
		return false, err
	}
	if e.store.Contains(a) {
		return true, nil
	}
	for _, r := range e.prog.Rules {
		if r.HasAggregation() || r.Head.Predicate != a.Predicate || len(r.Head.Terms) != len(a.Terms) {
			continue
		}
		seed := term.Substitution{}
		if !bindAtomSeed(r.Head, a, seed) {
			continue
		}
		// Assignment targets must come out of the assignment evaluation
		// (finishBindings Binds them and fails on a pre-bound target); the
		// head-equality check below re-verifies they reproduce the atom.
		for _, as := range r.Assignments {
			delete(seed, as.Target)
		}
		pending, err := e.joinAtomsFrom(r, seed)
		if err != nil {
			return false, fmt.Errorf("chase: rederive %v: rule %s: %w", a.Display(), r.Label, err)
		}
		if len(pending) == 0 {
			continue
		}
		finished, err := e.finishBindings(r, pending)
		if err != nil {
			return false, fmt.Errorf("chase: rederive %v: rule %s: %w", a.Display(), r.Label, err)
		}
		for _, b := range finished {
			if r.Head.Apply(b.sub).Key() != a.Key() {
				continue
			}
			if _, err := e.emit(r, a, b.facts, nil, b.sub); err != nil {
				return false, fmt.Errorf("chase: rederive %v: rule %s: %w", a.Display(), r.Label, err)
			}
			return true, nil
		}
	}
	return false, nil
}

// bindAtomSeed unifies a head pattern with a ground atom, extending seed;
// it returns false on a constant mismatch or an inconsistent repeated
// variable.
func bindAtomSeed(head, a ast.Atom, seed term.Substitution) bool {
	if head.Predicate != a.Predicate || len(head.Terms) != len(a.Terms) {
		return false
	}
	for i, ht := range head.Terms {
		if ht.IsVariable() {
			if !seed.Bind(ht.Name(), a.Terms[i]) {
				return false
			}
			continue
		}
		if !ht.Equal(a.Terms[i]) {
			return false
		}
	}
	return true
}

// joinAtomsFrom is joinAtoms with a seeded initial substitution (the legacy
// map-based join path — re-derivation is goal-directed and selective, so the
// interpreting engine's index probes are the right tool regardless of the
// engine the bulk run uses).
func (e *engine) joinAtomsFrom(r *ast.Rule, seed term.Substitution) ([]binding, error) {
	n := len(r.Body)
	pending := []binding{{sub: seed, facts: make([]database.FactID, n)}}
	for i := 0; i < n; i++ {
		pending = e.extendAtom(r, pending, i, nil)
		if len(pending) == 0 {
			return nil, nil
		}
	}
	return pending, nil
}

// InvalidatedByNegation returns the live facts whose recorded derivation is
// no longer admissible because a negated body atom now matches a live fact
// (the negated predicate gained facts since the derivation fired). Negated
// atoms are grounded with the step's stored homomorphism, so the scan is
// exact. The caller over-deletes the returned facts' closures; atoms with an
// alternative (still-admissible) proof come back through Rederive.
func (l *Live) InvalidatedByNegation() []database.FactID {
	e := l.e
	var out []database.FactID
	for _, d := range e.steps {
		if len(d.Rule.Negated) == 0 || e.store.Retracted(d.Fact) {
			continue
		}
		blocked := false
		for _, na := range d.Rule.Negated {
			for _, id := range e.store.Match(na.Apply(d.Sub)) {
				if !e.superseded[id] {
					blocked = true
					break
				}
			}
			if blocked {
				break
			}
		}
		if blocked {
			out = append(out, d.Fact)
		}
	}
	return out
}

// RevalidateNegatedContributors re-checks stored aggregation contributors of
// rules whose negated predicates gained facts, dropping the now-blocked ones
// and marking their groups dirty. Groups left without contributors lose
// their state; the ids of their still-live emissions are returned for the
// caller to over-delete (a from-scratch run would never have emitted them).
func (l *Live) RevalidateNegatedContributors(gained map[string]bool) []database.FactID {
	e := l.e
	var orphaned []database.FactID
	for _, r := range e.prog.Rules {
		if !r.HasAggregation() || len(r.Negated) == 0 {
			continue
		}
		hit := false
		for _, na := range r.Negated {
			if gained[na.Predicate] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		for key, gr := range e.aggGroups[r] {
			kept := gr.contrib[:0]
			removed := false
			for _, c := range gr.contrib {
				blocked := false
				for _, na := range r.Negated {
					for _, id := range e.store.Match(na.Apply(c.Sub)) {
						if !e.superseded[id] {
							blocked = true
							break
						}
					}
					if blocked {
						break
					}
				}
				if blocked {
					delete(gr.seen, e.factTupleKey(c.Premises))
					removed = true
					continue
				}
				kept = append(kept, c)
			}
			gr.contrib = kept
			if !removed {
				continue
			}
			e.markDirtyGroup(r, key)
			if len(gr.contrib) == 0 {
				stateKey := r.Label + "\x00" + key
				if st, ok := e.aggState[stateKey]; ok {
					delete(e.aggState, stateKey)
					if !e.store.Retracted(st.fact) {
						orphaned = append(orphaned, st.fact)
					}
				}
			}
		}
	}
	return orphaned
}

// ResetNegationReaders puts every rule with a negated atom over a predicate
// that lost facts back to a full re-join: homomorphisms that the vanished
// facts blocked become derivable only through a complete re-evaluation
// (semi-naive deltas never revisit old facts). It returns the number of
// rules reset.
func (l *Live) ResetNegationReaders(lost map[string]bool) int {
	n := 0
	for _, r := range l.e.prog.Rules {
		for _, na := range r.Negated {
			if lost[na.Predicate] {
				delete(l.e.lastSeen, r)
				n++
				break
			}
		}
	}
	return n
}

// ResetExistentialRules puts every rule with an existential head back to a
// full re-join: their firings are pre-empted by existing facts, so a
// retraction can un-pre-empt a homomorphism that semi-naive deltas would
// never revisit. It returns the number of rules reset.
func (l *Live) ResetExistentialRules() int {
	for _, r := range l.existRules {
		delete(l.e.lastSeen, r)
	}
	return len(l.existRules)
}

// Saturate re-runs the stratified fixpoint loop over the rules reachable
// from the dirty predicates: a rule participates when a body or negated atom
// mentions a dirty predicate (transitively through heads of participating
// rules), when it was reset (no semi-naive boundary), or when one of its
// aggregation groups is dirty. nil selects every rule (the initial run).
// Rules keep their semi-naive boundaries across calls, so each call only
// joins homomorphisms that involve a fact derived since the rule's previous
// evaluation. It returns the number of evaluation rounds.
func (l *Live) Saturate(dirty map[string]bool) (int, error) {
	e := l.e
	include := map[*ast.Rule]bool{}
	if dirty == nil {
		for _, r := range e.prog.Rules {
			include[r] = true
		}
	} else {
		preds := make(map[string]bool, len(dirty))
		for p := range dirty {
			preds[p] = true
		}
		wants := func(r *ast.Rule) bool {
			if len(e.dirtyGroups[r]) > 0 {
				return true
			}
			if _, seen := e.lastSeen[r]; !seen {
				return true // reset (or never evaluated): needs a full pass
			}
			for _, a := range r.Body {
				if preds[a.Predicate] {
					return true
				}
			}
			for _, a := range r.Negated {
				if preds[a.Predicate] {
					return true
				}
			}
			return false
		}
		for changed := true; changed; {
			changed = false
			for _, r := range e.prog.Rules {
				if include[r] || !wants(r) {
					continue
				}
				include[r] = true
				preds[r.Head.Predicate] = true
				changed = true
			}
		}
	}

	rounds := 0
	for stratum := 0; stratum <= l.maxStratum; stratum++ {
		var rules []*ast.Rule
		for _, r := range e.prog.Rules {
			if include[r] && l.strata[r.Head.Predicate] == stratum {
				rules = append(rules, r)
			}
		}
		if len(rules) == 0 {
			continue
		}
		for {
			if err := e.checkCtx(); err != nil {
				return rounds, err
			}
			rounds++
			if rounds > l.maxRounds {
				return rounds, fmt.Errorf("chase: no fixpoint after %d rounds (non-terminating program?)", l.maxRounds)
			}
			changed, err := e.round(rules)
			if err != nil {
				return rounds, err
			}
			if !changed {
				break
			}
		}
	}
	l.rounds += rounds
	return rounds, nil
}

// CheckConstraints verifies the program's negative constraints against the
// current store (the maintainer runs it after every repair, mirroring the
// end-of-run check of a from-scratch chase).
func (l *Live) CheckConstraints() error { return l.e.checkConstraints() }

// markDirtyGroup records that an aggregation group must be recomputed at the
// rule's next evaluation even if no new contributor arrives (it lost one).
func (e *engine) markDirtyGroup(r *ast.Rule, key string) {
	if e.dirtyGroups == nil {
		e.dirtyGroups = map[*ast.Rule]map[string]bool{}
	}
	m := e.dirtyGroups[r]
	if m == nil {
		m = map[string]bool{}
		e.dirtyGroups[r] = m
	}
	m[key] = true
}

// purgeRetracted drops engine state that references tombstoned facts:
// aggregation contributors whose premises died (their groups turn dirty) and
// aggregation emission states whose fact died (so the surviving contributors
// re-emit a fresh total instead of being suppressed by value equality).
func (e *engine) purgeRetracted() {
	var byLabel map[string]*ast.Rule
	ruleOf := func(label string) *ast.Rule {
		if byLabel == nil {
			byLabel = make(map[string]*ast.Rule, len(e.prog.Rules))
			for _, r := range e.prog.Rules {
				if _, ok := byLabel[r.Label]; !ok {
					byLabel[r.Label] = r
				}
			}
		}
		return byLabel[label]
	}
	for r, groups := range e.aggGroups {
		for key, gr := range groups {
			kept := gr.contrib[:0]
			removed := false
			for _, c := range gr.contrib {
				dead := false
				for _, id := range c.Premises {
					if e.store.Retracted(id) {
						dead = true
						break
					}
				}
				if dead {
					delete(gr.seen, e.factTupleKey(c.Premises))
					removed = true
					continue
				}
				kept = append(kept, c)
			}
			gr.contrib = kept
			if removed {
				e.markDirtyGroup(r, key)
			}
		}
	}
	for k, st := range e.aggState {
		if !e.store.Retracted(st.fact) {
			continue
		}
		delete(e.aggState, k)
		label, groupKey, _ := strings.Cut(k, "\x00")
		if r := ruleOf(label); r != nil && r.HasAggregation() {
			e.markDirtyGroup(r, groupKey)
		}
	}
}

// SortedIDs returns map keys ascending (closure walks iterate deletions in
// id order so that re-derivation sees premises before conclusions).
func SortedIDs(set map[database.FactID]bool) []database.FactID {
	out := make([]database.FactID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
