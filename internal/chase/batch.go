package chase

// Batch-at-a-time columnar join execution (Options.Batch).
//
// The frame executor (plan.go) is tuple-at-a-time: one depth-first walk per
// seed match, probing the store's hash indexes per partial binding. The
// batch executor processes an entire semi-naive delta per rule in one
// vectorized pass over the sorted columnar indexes (database.Columnar): the
// tuple set lives column-wise (one dense []term.ValueID per bound slot, one
// []database.FactID per bound body atom), every join depth extends all
// tuples at once against the predicate's columnar runs, pushed-down steps
// run as whole-column filters with vectorized fast paths, and the columns
// either convert to []binding at the emission boundary (aggregation,
// constraints) or feed the vectorized emission path directly
// (engine.emitCols).
//
// Join strategies. Per depth, newBatchExec picks the cheapest probe
// (constant run, bound-slot run, or extent scan); a bound-slot probe over a
// large enough tuple set (mergeThreshold) upgrades at run time to a unary
// leapfrog triejoin: the tuple set is sorted by the join-key slot once (the
// plan's join-key ordering pass, orderedPlan.keyPos, chains consecutive
// depths on a shared slot so only the first depth of a chain pays the
// sort), and a galloping RunIter intersects the distinct ascending key
// values against the sorted runs in lockstep — one Seek per distinct value
// instead of one hash/binary-search probe per tuple, with the per-value
// candidate list filtered once and crossed with the whole tuple group.
// Pivots whose semi-naive delta is tiny (frameFallbackMin) delegate to the
// frame executor, which wins on point lookups.
//
// Fused condition kernels. Conditions whose operands are constants and
// slots, at least one written by the depth's atom, are evaluated during the
// extension itself, over candidate values still in the dense columns —
// before any output row materializes. Equality/inequality fuse completely
// (id comparison is term equality for interned values, and cannot error);
// numeric ordering fuses as a branch-light prefilter over
// Interner.Numeric that passes any non-numeric pair through to the
// retained column filter, so it cannot error either and the batch pass
// never surfaces an error on a tuple the frame executor would have
// dropped.
//
// Determinism contract. The batch output is byte-identical to the frame
// executor's (and hence to the legacy engine's) at any worker count:
//
//   - The frame executor's leaf order is the lexicographic order of the
//     per-depth fact-id choices (per depth it enumerates candidates in
//     ascending fact-id order, and the walk is depth-first). Every leaf's
//     fact-id tuple is unique (the choice sequence is the leaf), so that
//     order is recoverable from the leaf columns alone. Probe- and
//     scan-strategy extensions preserve it directly (tuples in order,
//     candidates per tuple in dense order, which is fact-id order); a merge
//     extension perturbs it (tuples regroup by join-key value) and marks
//     the tuple set, and restoreCanonical re-sorts the leaves by their
//     fact-id columns in depth order before they become visible — an
//     unambiguous sort, since there are no ties.
//   - Pushed-down steps are per-tuple filters and deterministic functions of
//     bound operands; running them column-wise keeps the surviving set
//     identical, and filters never reorder survivors. The vectorized fast
//     paths are semantics-preserving: id equality coincides with
//     term.Term.Equal for interned values (numerically equal int/float
//     constants share an id), and term.Interner.Numeric returns exactly the
//     AsFloat view that Term.Compare uses for numeric ordering; every other
//     case falls back to the shared condHolds/arithCombine helpers.
//   - Strategy choices (probe position, merge upgrade, frame fallback)
//     depend only on store state and tuple counts, and every strategy
//     yields the same canonical output, so worker count and chunking cannot
//     change the bytes. Parallel mode chunks the depth-0 tuple set
//     contiguously; depth-0 tuples are in ascending fact-id order (depth 0
//     has no bound slots, so no merge perturbs the seed), hence per-chunk
//     canonical outputs concatenate in chunk order into the globally
//     canonical sequence — the same argument as parallel.go.
//
// The one intended divergence, shared with the frame executor's pushdown
// (see plan.go): on ill-typed programs that error at run time, the batch
// pass evaluates depth-by-depth — and fused kernels drop tuples before
// unfused steps run — where the frame executor recurses tuple-by-tuple, so
// the batch pass may surface a different deterministic error, or none at
// all, on a program whose frame evaluation errors. It never errors on a
// program whose frame evaluation succeeds: full fusion is restricted to
// non-erroring equality kernels, and ordering kernels only drop pairs the
// retained (identically-ordered) column filters would drop anyway. The
// differential suites skip error programs.

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/database"
	"repro/internal/term"
)

const (
	// mergeThreshold is the tuple count at which a bound-slot probe upgrades
	// to the sorted-merge (leapfrog) extension. Below it, per-tuple galloping
	// probes win — no sort, and the run cursor still advances monotonically
	// when the input happens to be sorted.
	mergeThreshold = 32
	// frameFallbackMin is the semi-naive delta size below which a pivot is
	// delegated to the tuple-at-a-time frame executor (point-lookup joins on
	// one or two new facts don't amortize columnar pass setup).
	frameFallbackMin = 16
	// permRadixMin is the permutation size at which sortPermByKey switches
	// from comparison sort to two-pass LSD radix.
	permRadixMin = 2048
)

// batchCols is the column-wise tuple set flowing through one batch pass:
// tuple i is the cross-section of all non-nil columns at index i. A nil
// column means the slot/val/atom is not bound yet at the current depth.
type batchCols struct {
	n     int
	slots [][]term.ValueID
	vals  [][]term.Term
	facts [][]database.FactID
	// perturbed marks that tuple order no longer equals the frame executor's
	// depth-first order (a merge extension regrouped tuples by join key);
	// restoreCanonical re-sorts at the leaf. sortedBy is the slot the tuples
	// are currently sorted by (ascending ValueID), or -1 — it lets a chained
	// merge extension on the same slot skip its sort.
	perturbed bool
	sortedBy  int
}

func newBatchCols(n int, p *plan) *batchCols {
	return &batchCols{
		n:        n,
		slots:    make([][]term.ValueID, p.nslots),
		vals:     make([][]term.Term, p.nvals),
		facts:    make([][]database.FactID, len(p.rule.Body)),
		sortedBy: -1,
	}
}

// Admission modes (semi-naive pivot filter translated to dense space) and
// probe strategies of one join depth.
const (
	admitAny = iota
	admitOld // dense index < bound (facts older than the boundary)
	admitNew // dense index >= bound (facts at or beyond the boundary)
)

const (
	scanExtent = iota // no usable constant/bound position: scan the extent
	probeConst        // seek a constant position once per pass
	probeBound        // seek a bound-slot position per tuple, or merge
)

// fusedOperand is one operand of a fused condition kernel, resolved against
// the extension: a constant (pre-resolved id and numeric value), a
// candidate-side dense column (the depth's atom writes the slot), or an
// input-side slot column.
type fusedOperand struct {
	isConst bool
	candCol []term.ValueID // candidate-side dense column; nil otherwise
	slot    int            // input-side slot index (when !isConst && candCol == nil)
	t       term.Term
	id      term.ValueID // interned id of the constant; NoValue if never interned
	f       float64
	fOK     bool
}

func (o *fusedOperand) idAt(st *batchCols, i int, k int32) term.ValueID {
	if o.isConst {
		return o.id
	}
	if o.candCol != nil {
		return o.candCol[k]
	}
	return st.slots[o.slot][i]
}

func (o *fusedOperand) numAt(in *term.Interner, st *batchCols, i int, k int32) (float64, bool) {
	if o.isConst {
		return o.f, o.fOK
	}
	if o.candCol != nil {
		return in.Numeric(o.candCol[k])
	}
	return in.Numeric(st.slots[o.slot][i])
}

// fusedCond is a condition lowered to a branch-light kernel over dense
// columns. Equality kernels replace their step; ordering kernels are
// prefilters (the step is retained) that pass non-numeric pairs through, so
// neither can error — see the package comment for why that matters.
type fusedCond struct {
	op   ast.CompareOp
	l, r fusedOperand
}

// hold evaluates the kernel for input tuple i against candidate k. candOnly
// kernels are called with a nil tuple set (they read no input column).
func (fc *fusedCond) hold(in *term.Interner, st *batchCols, i int, k int32) bool {
	switch fc.op {
	case ast.OpEq:
		return fc.l.idAt(st, i, k) == fc.r.idAt(st, i, k)
	case ast.OpNe:
		return fc.l.idAt(st, i, k) != fc.r.idAt(st, i, k)
	}
	lf, lok := fc.l.numAt(in, st, i, k)
	rf, rok := fc.r.numAt(in, st, i, k)
	if !lok || !rok {
		return true // defer to the retained column filter
	}
	switch fc.op {
	case ast.OpLt:
		return lf < rf
	case ast.OpLe:
		return lf <= rf
	case ast.OpGt:
		return lf > rf
	case ast.OpGe:
		return lf >= rf
	}
	return true
}

type posVal struct {
	pos int
	val term.ValueID
}

type posPos struct {
	pos, ref int
}

type posSlot struct {
	pos, slot int
}

// batchAdmit is the precompiled candidate admission of one join depth: the
// columnar index, the pattern ops with cached dense columns, the pivot-
// filter mode, the chosen probe strategy, and the fused condition kernels.
// It is immutable after newBatchExec, so parallel chunks share it.
type batchAdmit struct {
	atomIdx int
	c       *database.Columnar
	ops     []database.SlotOp
	// cols caches c.Col(pos) per pattern position.
	cols [][]term.ValueID
	// writePoss/writeSlots are the SlotWrite positions and their slots.
	writePoss  []int
	writeSlots []int
	mode       int
	bound      int32
	strategy   int
	probePos   int
	probeVal   term.ValueID
	probeSlot  int
	// Candidate-static checks (tuple-independent: constants, repeated
	// variables) and tuple-dependent checks (bound slots); the probed
	// position is excluded from its list, the run search guarantees it.
	constChecks []posVal
	sameChecks  []posPos
	boundChecks []posSlot
	// candFused reads only constants and candidate columns (applied once per
	// candidate list); pairFused also reads input slots (applied per pair).
	candFused []fusedCond
	pairFused []fusedCond
}

// admitCand checks the tuple-independent part of admission for dense index k.
func (ad *batchAdmit) admitCand(k int32) bool {
	switch ad.mode {
	case admitOld:
		if k >= ad.bound {
			return false
		}
	case admitNew:
		if k < ad.bound {
			return false
		}
	}
	if ad.c.RowLen(k) != len(ad.ops) {
		return false
	}
	for _, cc := range ad.constChecks {
		if ad.cols[cc.pos][k] != cc.val {
			return false
		}
	}
	for _, sc := range ad.sameChecks {
		if ad.cols[sc.pos][k] != ad.cols[sc.ref][k] {
			return false
		}
	}
	return true
}

// admitTuple checks the tuple-dependent part: bound slots of tuple i against
// candidate k.
func (ad *batchAdmit) admitTuple(st *batchCols, i int, k int32) bool {
	for _, bc := range ad.boundChecks {
		if ad.cols[bc.pos][k] != st.slots[bc.slot][i] {
			return false
		}
	}
	return true
}

// batchExec runs one ordered plan batch-at-a-time. It is immutable after
// construction: parallel chunks of the same pivot share one batchExec, and
// all per-pass mutable state lives in batchCols values and local buffers.
type batchExec struct {
	e      *engine
	p      *plan
	op     *orderedPlan
	in     *term.Interner
	admits []batchAdmit
	// steps[d] is op.steps[d] minus the conditions replaced by fused
	// equality kernels (retained ordering prefilters keep their step).
	steps [][]planStep
}

// ensurePlanColumnar refreshes the columnar index of every body predicate of
// the plan, with sorted runs for exactly the positions some ordered plan of
// the rule can probe — the constant and bound positions of its slot ops;
// write positions only ever need the dense columns. It must run while the
// store is writable — the engine calls it at the start of every batch join,
// before any Freeze — so the per-pivot newBatchExec calls below find every
// run already built.
func (e *engine) ensurePlanColumnar(p *plan) {
	need := make(map[string][]int, len(p.rule.Body))
	for _, a := range p.rule.Body {
		if _, ok := need[a.Predicate]; !ok {
			need[a.Predicate] = nil
		}
	}
	for _, op := range p.orders {
		for d := range op.atoms {
			pa := &op.atoms[d]
			need[pa.Predicate] = append(need[pa.Predicate], probePositions(pa.Ops)...)
		}
	}
	for pred, poss := range need {
		e.store.EnsureColumnarRuns(pred, poss)
	}
}

// probePositions lists the positions of one atom's slot ops that the
// executor could select as a probe: constants and already-bound slots.
func probePositions(ops []database.SlotOp) []int {
	var poss []int
	for pos, sop := range ops {
		if sop.Kind == database.SlotConst || sop.Kind == database.SlotBound {
			poss = append(poss, pos)
		}
	}
	return poss
}

// newBatchExec precompiles one ordered plan against the current columnar
// indexes. pivot < 0 selects the unfiltered full join; otherwise the
// standard pivot filter (atoms before the pivot match only pre-boundary
// facts, the pivot only post-boundary ones) is translated to dense-index
// comparisons. It must run before any Freeze (constant operands of fused
// kernels are resolved against the interner here, once per pass).
func (e *engine) newBatchExec(p *plan, op *orderedPlan, pivot int, boundary database.FactID) *batchExec {
	bx := &batchExec{
		e:      e,
		p:      p,
		op:     op,
		in:     e.store.Interner(),
		admits: make([]batchAdmit, len(op.atoms)),
		steps:  make([][]planStep, len(op.atoms)),
	}
	for d := range op.atoms {
		pa := &op.atoms[d]
		atomIdx := op.order[d]
		c := e.store.EnsureColumnarRuns(pa.Predicate, probePositions(pa.Ops))
		ad := &bx.admits[d]
		ad.atomIdx = atomIdx
		ad.c = c
		ad.ops = pa.Ops
		ad.cols = make([][]term.ValueID, len(pa.Ops))
		for pos, sop := range pa.Ops {
			ad.cols[pos] = c.Col(pos)
			if sop.Kind == database.SlotWrite {
				ad.writePoss = append(ad.writePoss, pos)
				ad.writeSlots = append(ad.writeSlots, sop.Slot)
			}
		}
		if pivot >= 0 && atomIdx <= pivot {
			if atomIdx < pivot {
				ad.mode = admitOld
			} else {
				ad.mode = admitNew
			}
			ad.bound = c.DenseBoundary(boundary)
		}
		// Probe selection: the cheapest of scanning the extent, the exact
		// run of a constant position, and the estimated run of a bound
		// position. Any choice yields the same candidates in the same
		// canonical output; this only sets the work per tuple.
		ad.strategy = scanExtent
		ad.probePos = -1
		bestCost := c.Extent()
		for pos, sop := range pa.Ops {
			switch sop.Kind {
			case database.SlotConst:
				if n := c.RunLen(pos, sop.Val); n < bestCost {
					bestCost = n
					ad.strategy = probeConst
					ad.probePos = pos
					ad.probeVal = sop.Val
				}
			case database.SlotBound:
				if n := c.AvgRun(pos); n < bestCost {
					bestCost = n
					ad.strategy = probeBound
					ad.probePos = pos
					ad.probeSlot = sop.Slot
				}
			}
		}
		// Join-key preference: when the bound probe would not continue the
		// plan's shared variable order (orderedPlan.keyPos) but the chain
		// position is competitive, take the chain position — a merge
		// extension on the chained slot skips its sort entirely.
		if ad.strategy == probeBound && op.keyPos != nil && op.keyPos[d] >= 0 && op.keyPos[d] != ad.probePos {
			if kp := op.keyPos[d]; pa.Ops[kp].Kind == database.SlotBound {
				if n := c.AvgRun(kp); n <= 4*bestCost {
					ad.probePos = kp
					ad.probeSlot = pa.Ops[kp].Slot
				}
			}
		}
		// Split the per-candidate checks: the probed position is guaranteed
		// by the run search and excluded from its own class.
		for pos, sop := range pa.Ops {
			switch sop.Kind {
			case database.SlotConst:
				if ad.strategy == probeConst && pos == ad.probePos {
					continue
				}
				ad.constChecks = append(ad.constChecks, posVal{pos: pos, val: sop.Val})
			case database.SlotBound:
				if ad.strategy == probeBound && pos == ad.probePos {
					continue
				}
				ad.boundChecks = append(ad.boundChecks, posSlot{pos: pos, slot: sop.Slot})
			case database.SlotSame:
				for pos2 := 0; pos2 < pos; pos2++ {
					if pa.Ops[pos2].Kind == database.SlotWrite && pa.Ops[pos2].Slot == sop.Slot {
						ad.sameChecks = append(ad.sameChecks, posPos{pos: pos, ref: pos2})
						break
					}
				}
			}
		}
		bx.steps[d] = bx.fuseSteps(ad, op.steps[d])
	}
	return bx
}

// fuseSteps lowers the fusable conditions of one depth into kernels on the
// admission and returns the remaining step list. A condition fuses when all
// its non-constant operands are atom-bound slots and at least one is
// written by this depth's atom (otherwise the step would gain nothing);
// equality kernels replace their step, ordering kernels keep it as the
// deciding filter (the kernel is a pure never-erroring prefilter).
func (bx *batchExec) fuseSteps(ad *batchAdmit, steps []planStep) []planStep {
	candPosOf := func(slot int) int {
		for w, s := range ad.writeSlots {
			if s == slot {
				return ad.writePoss[w]
			}
		}
		return -1
	}
	fuseOperand := func(o planOperand) (fo fusedOperand, ok, cand bool) {
		if o.isConst {
			fo.isConst = true
			fo.t = o.t
			fo.id = term.NoValue
			if id, found := bx.in.Lookup(o.t); found {
				// Resolved once per pass: the join phase never interns, so
				// the id view is stable until the next newBatchExec.
				fo.id = id
			}
			fo.f, fo.fOK = o.t.AsFloat()
			return fo, true, false
		}
		if o.kind != refSlot {
			return fo, false, false // computed values keep the column filter
		}
		if cp := candPosOf(o.idx); cp >= 0 {
			fo.candCol = ad.cols[cp]
			return fo, true, true
		}
		fo.slot = o.idx
		return fo, true, false
	}
	var kept []planStep
	copied := false
	for si := range steps {
		s := &steps[si]
		dropStep := false
		if c := s.cond; c != nil && !(c.l.isConst && c.r.isConst) {
			l, lok, lcand := fuseOperand(c.l)
			r, rok, rcand := fuseOperand(c.r)
			if lok && rok && (lcand || rcand) {
				fc := fusedCond{op: c.op, l: l, r: r}
				if l.slotRead() || r.slotRead() {
					ad.pairFused = append(ad.pairFused, fc)
				} else {
					ad.candFused = append(ad.candFused, fc)
				}
				// Equality kernels decide exactly and cannot error: drop the
				// step. Ordering kernels are prefilters; the step stays as
				// the deciding (and error-reporting) filter.
				dropStep = c.op == ast.OpEq || c.op == ast.OpNe
			}
		}
		if dropStep {
			if !copied {
				// Copy-on-write so op.steps stays untouched (the frame
				// executor shares it).
				kept = append(kept, steps[:si]...)
				copied = true
			}
			continue
		}
		if copied {
			kept = append(kept, *s)
		}
	}
	if !copied {
		return steps
	}
	return kept
}

// slotRead reports whether the operand reads an input-side slot column (per
// pair), as opposed to constants and candidate columns (per candidate).
func (o *fusedOperand) slotRead() bool {
	return !o.isConst && o.candCol == nil
}

// filterCand builds the admitted candidate list for one probe value: the
// candidate-static checks, the superseded filter, and the candidate-only
// fused kernels — everything tuple-independent, applied once per distinct
// value instead of once per pair. cand is a reusable scratch buffer.
func (bx *batchExec) filterCand(ad *batchAdmit, cand, base, tail []int32) []int32 {
	superseded := bx.e.superseded
	checkSuper := len(superseded) > 0
	for _, run := range [2][]int32{base, tail} {
		for _, k := range run {
			if !ad.admitCand(k) {
				continue
			}
			if checkSuper && superseded[ad.c.ID(k)] {
				continue
			}
			ok := true
			for ci := range ad.candFused {
				if !ad.candFused[ci].hold(bx.in, nil, 0, k) {
					ok = false
					break
				}
			}
			if ok {
				cand = append(cand, k)
			}
		}
	}
	return cand
}

// crossTuple pairs tuple i with every candidate it admits, appending to the
// (src, ks) pair buffers. The bulk path covers the common merge case where
// every per-pair check was hoisted into the candidate list.
func (bx *batchExec) crossTuple(ad *batchAdmit, st *batchCols, i int, cand []int32, src, ks []int32) ([]int32, []int32) {
	if len(ad.boundChecks) == 0 && len(ad.pairFused) == 0 {
		for range cand {
			src = append(src, int32(i))
		}
		return src, append(ks, cand...)
	}
	for _, k := range cand {
		if !ad.admitTuple(st, i, k) {
			continue
		}
		ok := true
		for ci := range ad.pairFused {
			if !ad.pairFused[ci].hold(bx.in, st, i, k) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		src = append(src, int32(i))
		ks = append(ks, k)
	}
	return src, ks
}

// seed runs the depth-0 extension from a single virtual empty tuple,
// producing the batch counterpart of planSeeds. Unfused steps scheduled at
// depth 0 are deliberately not applied here — parallel mode chunks the seed
// set first and lets each chunk filter its own tuples (see planSeeds);
// fused kernels run in the extension, which filters the same final set.
func (bx *batchExec) seed(js *database.ColumnarStats) *batchCols {
	return bx.extend(0, newBatchCols(1, bx.p), js)
}

// extend joins every input tuple with every admissible match of the atom at
// order position d, in two phases: collect (src, k) pairs (4-byte appends),
// then gather every output column in one exact-size allocation per column.
// Probe and scan strategies visit tuples in order and candidates per tuple
// in dense (fact-id) order, preserving canonical order; the merge strategy
// regroups tuples by join-key value and marks the output perturbed (the
// leaf re-sort restores canonical order — see the package comment).
func (bx *batchExec) extend(d int, st *batchCols, js *database.ColumnarStats) *batchCols {
	ad := &bx.admits[d]
	var src, ks, cand []int32
	perturbed := st.perturbed
	sortedBy := st.sortedBy

	switch ad.strategy {
	case probeConst:
		js.ProbePasses++
		base, tail := ad.c.Runs(ad.probePos, ad.probeVal)
		if cand = bx.filterCand(ad, cand, base, tail); len(cand) > 0 {
			for i := 0; i < st.n; i++ {
				src, ks = bx.crossTuple(ad, st, i, cand, src, ks)
			}
		}
	case probeBound:
		col := st.slots[ad.probeSlot]
		it := ad.c.Iter(ad.probePos)
		if st.n >= mergeThreshold {
			// Leapfrog: sort the tuples by the join key (skipped when a
			// previous merge on the same slot left them sorted), then
			// intersect the distinct ascending keys against the sorted runs
			// with one galloping Seek each, filter the candidate list once,
			// and cross it with the whole tuple group.
			js.TriejoinPasses++
			var order []int32
			if sortedBy != ad.probeSlot {
				order = sortPermByKey(col)
			}
			at := func(t int) int {
				if order == nil {
					return t
				}
				return int(order[t])
			}
			for i := 0; i < st.n; {
				ti := at(i)
				v := col[ti]
				j := i + 1
				for j < st.n && col[at(j)] == v {
					j++
				}
				base, tail := it.Seek(v)
				if len(base)+len(tail) > 0 {
					if cand = bx.filterCand(ad, cand[:0], base, tail); len(cand) > 0 {
						for t := i; t < j; t++ {
							src, ks = bx.crossTuple(ad, st, at(t), cand, src, ks)
						}
					}
				}
				i = j
			}
			perturbed, sortedBy = true, ad.probeSlot
		} else {
			js.ProbePasses++
			probed := false
			var lastVal term.ValueID
			for i := 0; i < st.n; i++ {
				if v := col[i]; !probed || v != lastVal {
					base, tail := it.Seek(v)
					cand = bx.filterCand(ad, cand[:0], base, tail)
					lastVal, probed = v, true
				}
				src, ks = bx.crossTuple(ad, st, i, cand, src, ks)
			}
		}
		js.Seeks += it.Seeks
		js.GallopSteps += it.GallopSteps
	default:
		js.ScanPasses++
		lo, hi := int32(0), int32(ad.c.Extent())
		switch ad.mode {
		case admitOld:
			hi = ad.bound
		case admitNew:
			lo = ad.bound
		}
		superseded := bx.e.superseded
		checkSuper := len(superseded) > 0
		for k := lo; k < hi; k++ {
			if !ad.admitCand(k) {
				continue
			}
			if checkSuper && superseded[ad.c.ID(k)] {
				continue
			}
			ok := true
			for ci := range ad.candFused {
				if !ad.candFused[ci].hold(bx.in, nil, 0, k) {
					ok = false
					break
				}
			}
			if ok {
				cand = append(cand, k)
			}
		}
		if len(cand) > 0 {
			for i := 0; i < st.n; i++ {
				src, ks = bx.crossTuple(ad, st, i, cand, src, ks)
			}
		}
	}

	out := bx.gather(ad, st, src, ks)
	out.perturbed = perturbed && out.n > 0
	out.sortedBy = sortedBy
	return out
}

// gather materializes the output columns of one extension from the pair
// buffers: surviving input columns through the src indirection, the write
// slots and the new premise column from the candidate cursors — the
// columnar counterpart of copying the frame per leaf, but one exact-size
// allocation per column instead of per row.
func (bx *batchExec) gather(ad *batchAdmit, st *batchCols, src, ks []int32) *batchCols {
	n := len(src)
	out := &batchCols{
		n:        n,
		slots:    make([][]term.ValueID, len(st.slots)),
		vals:     make([][]term.Term, len(st.vals)),
		facts:    make([][]database.FactID, len(st.facts)),
		sortedBy: -1,
	}
	for s, col := range st.slots {
		if col == nil {
			continue
		}
		g := make([]term.ValueID, n)
		for j, i := range src {
			g[j] = col[i]
		}
		out.slots[s] = g
	}
	for w, slot := range ad.writeSlots {
		colP := ad.cols[ad.writePoss[w]]
		g := make([]term.ValueID, n)
		for j, k := range ks {
			g[j] = colP[k]
		}
		out.slots[slot] = g
	}
	for v, col := range st.vals {
		if col == nil {
			continue
		}
		g := make([]term.Term, n)
		for j, i := range src {
			g[j] = col[i]
		}
		out.vals[v] = g
	}
	for a, col := range st.facts {
		if col == nil {
			continue
		}
		g := make([]database.FactID, n)
		for j, i := range src {
			g[j] = col[i]
		}
		out.facts[a] = g
	}
	newFacts := make([]database.FactID, n)
	for j, k := range ks {
		newFacts[j] = ad.c.ID(k)
	}
	out.facts[ad.atomIdx] = newFacts
	return out
}

// sortPermByKey returns the permutation that sorts the key column ascending,
// stably (ties keep input order). Small inputs use a comparison sort; large
// ones a two-pass LSD radix over the 32-bit id.
func sortPermByKey(keys []term.ValueID) []int32 {
	n := len(keys)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	if n < permRadixMin {
		sort.Slice(perm, func(a, b int) bool {
			ka, kb := keys[perm[a]], keys[perm[b]]
			if ka != kb {
				return ka < kb
			}
			return perm[a] < perm[b]
		})
		return perm
	}
	tmp := make([]int32, n)
	var count [1 << 16]int32
	for shift := 0; shift < 32; shift += 16 {
		for i := range count {
			count[i] = 0
		}
		for _, p := range perm {
			count[uint32(keys[p])>>shift&0xffff]++
		}
		sum := int32(0)
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, p := range perm {
			d := uint32(keys[p]) >> shift & 0xffff
			tmp[count[d]] = p
			count[d]++
		}
		perm, tmp = tmp, perm
	}
	return perm
}

// restoreCanonical re-sorts a perturbed leaf tuple set into the frame
// executor's depth-first order: lexicographic over the per-depth fact-id
// columns. Leaf fact-id tuples are unique (the choice sequence is the
// leaf), so the sort has no ties and the order is fully determined.
func restoreCanonical(st *batchCols, op *orderedPlan) *batchCols {
	if !st.perturbed {
		return st
	}
	if st.n <= 1 {
		st.perturbed = false
		return st
	}
	depthFacts := make([][]database.FactID, len(op.order))
	for d, atomIdx := range op.order {
		depthFacts[d] = st.facts[atomIdx]
	}
	perm := make([]int32, st.n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		for _, col := range depthFacts {
			if col[pa] != col[pb] {
				return col[pa] < col[pb]
			}
		}
		return false
	})
	out := &batchCols{
		n:        st.n,
		slots:    make([][]term.ValueID, len(st.slots)),
		vals:     make([][]term.Term, len(st.vals)),
		facts:    make([][]database.FactID, len(st.facts)),
		sortedBy: -1,
	}
	for s, col := range st.slots {
		if col == nil {
			continue
		}
		g := make([]term.ValueID, st.n)
		for j, i := range perm {
			g[j] = col[i]
		}
		out.slots[s] = g
	}
	for v, col := range st.vals {
		if col == nil {
			continue
		}
		g := make([]term.Term, st.n)
		for j, i := range perm {
			g[j] = col[i]
		}
		out.vals[v] = g
	}
	for a, col := range st.facts {
		if col == nil {
			continue
		}
		g := make([]database.FactID, st.n)
		for j, i := range perm {
			g[j] = col[i]
		}
		out.facts[a] = g
	}
	return out
}

// runSteps applies the unfused steps scheduled at depth d column-wise, in
// the same relative order as the frame executor's runSteps; filters compact
// the tuple set in place of dropping one frame at a time.
func (bx *batchExec) runSteps(d int, st *batchCols) (*batchCols, error) {
	steps := bx.steps[d]
	for i := range steps {
		var err error
		switch s := &steps[i]; {
		case s.assign != nil:
			err = bx.assignCol(s.assign, st)
		case s.cond != nil:
			st, err = bx.filterCond(s.cond, st)
		case s.neg != nil:
			st = bx.filterNeg(s.neg, st)
		}
		if err != nil {
			return nil, err
		}
		if st.n == 0 {
			return st, nil
		}
	}
	return st, nil
}

// resolveAt turns an operand into its term for tuple i.
func (bx *batchExec) resolveAt(o planOperand, st *batchCols, i int) term.Term {
	if o.isConst {
		return o.t
	}
	if o.kind == refVal {
		return st.vals[o.idx][i]
	}
	return bx.in.Value(st.slots[o.idx][i])
}

// evalExprAt evaluates a compiled expression for tuple i with the shared
// arithmetic semantics.
func (bx *batchExec) evalExprAt(e *planExpr, st *batchCols, i int) (term.Term, error) {
	if e.leaf {
		return bx.resolveAt(e.operand, st, i), nil
	}
	l, err := bx.evalExprAt(e.l, st, i)
	if err != nil {
		return term.Term{}, err
	}
	r, err := bx.evalExprAt(e.r, st, i)
	if err != nil {
		return term.Term{}, err
	}
	return arithCombine(e.op, l, r, e.src)
}

// assignCol evaluates one assignment over all tuples into a value column.
func (bx *batchExec) assignCol(a *planAssign, st *batchCols) error {
	col := make([]term.Term, st.n)
	for i := 0; i < st.n; i++ {
		v, err := bx.evalExprAt(a.expr, st, i)
		if err != nil {
			return fmt.Errorf("assignment %s: %w", a.src, err)
		}
		col[i] = v
	}
	st.vals[a.target] = col
	return nil
}

// filterCond drops the tuples for which the condition does not hold. Two
// vectorized fast paths cover the hot cases — Eq/Ne over id space (id
// equality is term equality for interned values) and numeric ordering via
// the interner's Numeric cache — with per-tuple fallback to the shared
// condHolds for everything else, so filter decisions and error messages
// match the frame executor exactly.
func (bx *batchExec) filterCond(c *planCond, st *batchCols) (*batchCols, error) {
	in := bx.in
	keep := make([]bool, st.n)
	kept := 0

	if c.l.isConst && c.r.isConst {
		// Constant condition: evaluate once, keep all or none.
		ok, err := condHolds(c.op, c.l.t, c.r.t, c.src)
		if err != nil {
			return nil, err
		}
		if !ok {
			return &batchCols{
				slots:    make([][]term.ValueID, len(st.slots)),
				vals:     make([][]term.Term, len(st.vals)),
				facts:    make([][]database.FactID, len(st.facts)),
				sortedBy: -1,
			}, nil
		}
		return st, nil
	}

	idSide := func(o planOperand) (col []term.ValueID, val term.ValueID, ok bool) {
		if o.isConst {
			if id, found := in.Lookup(o.t); found {
				return nil, id, true
			}
			// Never interned: no stored value is semantically equal, so
			// NoValue (matched by no slot value) encodes it exactly.
			return nil, term.NoValue, true
		}
		if o.kind == refSlot {
			return st.slots[o.idx], 0, true
		}
		return nil, 0, false
	}

	switch c.op {
	case ast.OpEq, ast.OpNe:
		lCol, lVal, lOK := idSide(c.l)
		rCol, rVal, rOK := idSide(c.r)
		if lOK && rOK {
			want := c.op == ast.OpEq
			for i := 0; i < st.n; i++ {
				l, r := lVal, rVal
				if lCol != nil {
					l = lCol[i]
				}
				if rCol != nil {
					r = rCol[i]
				}
				if (l == r) == want {
					keep[i] = true
					kept++
				}
			}
			return compactCols(st, keep, kept), nil
		}
	default:
		// Numeric ordering fast path: slot operands read the interner's
		// float cache, constants pre-convert; any non-numeric tuple falls
		// back to the shared semantics (string ordering, error parity).
		numAt := func(o planOperand, i int) (float64, bool) {
			if o.isConst {
				return o.t.AsFloat()
			}
			if o.kind == refVal {
				return st.vals[o.idx][i].AsFloat()
			}
			return in.Numeric(st.slots[o.idx][i])
		}
		for i := 0; i < st.n; i++ {
			lf, lok := numAt(c.l, i)
			rf, rok := numAt(c.r, i)
			var ok bool
			if lok && rok {
				switch c.op {
				case ast.OpLt:
					ok = lf < rf
				case ast.OpLe:
					ok = lf <= rf
				case ast.OpGt:
					ok = lf > rf
				case ast.OpGe:
					ok = lf >= rf
				}
			} else {
				var err error
				ok, err = condHolds(c.op, bx.resolveAt(c.l, st, i), bx.resolveAt(c.r, st, i), c.src)
				if err != nil {
					return nil, err
				}
			}
			if ok {
				keep[i] = true
				kept++
			}
		}
		return compactCols(st, keep, kept), nil
	}

	// Generic path (computed-value operands under Eq/Ne).
	for i := 0; i < st.n; i++ {
		ok, err := condHolds(c.op, bx.resolveAt(c.l, st, i), bx.resolveAt(c.r, st, i), c.src)
		if err != nil {
			return nil, err
		}
		if ok {
			keep[i] = true
			kept++
		}
	}
	return compactCols(st, keep, kept), nil
}

// filterNeg drops the tuples for which the negated atom matches some
// current (non-superseded) fact — the same stratified-negation rejection as
// executor.negBlocked, probed per tuple through the store's hash indexes
// (negation probes are point lookups; the columnar index buys nothing).
func (bx *batchExec) filterNeg(ng *planNeg, st *batchCols) *batchCols {
	store := bx.e.store
	in := bx.in
	frame := make([]term.ValueID, bx.p.nslots)
	var scratch []database.SlotOp
	keep := make([]bool, st.n)
	kept := 0
	for i := 0; i < st.n; i++ {
		for s, col := range st.slots {
			if col != nil {
				frame[s] = col[i]
			} else {
				frame[s] = term.NoValue
			}
		}
		pat := ng.pat
		if len(ng.valFixes) > 0 {
			scratch = append(scratch[:0], ng.pat.Ops...)
			resolvable := true
			for _, vf := range ng.valFixes {
				id, ok := in.Lookup(st.vals[vf.val][i])
				if !ok {
					// The computed value was never interned, so no stored
					// fact can contain it: the negated atom has no match.
					resolvable = false
					break
				}
				scratch[vf.pos] = database.SlotOp{Kind: database.SlotConst, Val: id}
			}
			if !resolvable {
				keep[i] = true
				kept++
				continue
			}
			pat = database.SlotPattern{Predicate: ng.pat.Predicate, Ops: scratch}
		}
		blocked := false
		for _, id := range store.CandidatesSlots(pat, frame) {
			if bx.e.superseded[id] {
				continue
			}
			if store.BindRowSlots(pat, id, frame) {
				blocked = true
				break
			}
		}
		if !blocked {
			keep[i] = true
			kept++
		}
	}
	return compactCols(st, keep, kept)
}

// compactCols gathers the kept tuples, preserving order (and hence the
// sort/perturbation flags). It returns the input unchanged when nothing was
// dropped.
func compactCols(st *batchCols, keep []bool, kept int) *batchCols {
	if kept == st.n {
		return st
	}
	out := &batchCols{
		n:         kept,
		slots:     make([][]term.ValueID, len(st.slots)),
		vals:      make([][]term.Term, len(st.vals)),
		facts:     make([][]database.FactID, len(st.facts)),
		perturbed: st.perturbed && kept > 0,
		sortedBy:  st.sortedBy,
	}
	for s, col := range st.slots {
		if col == nil {
			continue
		}
		g := make([]term.ValueID, 0, kept)
		for i, k := range keep {
			if k {
				g = append(g, col[i])
			}
		}
		out.slots[s] = g
	}
	for v, col := range st.vals {
		if col == nil {
			continue
		}
		g := make([]term.Term, 0, kept)
		for i, k := range keep {
			if k {
				g = append(g, col[i])
			}
		}
		out.vals[v] = g
	}
	for a, col := range st.facts {
		if col == nil {
			continue
		}
		g := make([]database.FactID, 0, kept)
		for i, k := range keep {
			if k {
				g = append(g, col[i])
			}
		}
		out.facts[a] = g
	}
	return out
}

// appendBindingsCols converts canonical leaf columns to bindings. Frames and
// value tuples are carved out of two arena allocations (they are transient:
// read once at the emission boundary); the premise fact tuples are allocated
// per binding because Derivation.Premises and Contribution.Premises retain
// them for the lifetime of the result.
func appendBindingsCols(p *plan, st *batchCols, out []binding) []binding {
	if st.n == 0 {
		return out
	}
	nb := len(st.facts)
	frames := make([]term.ValueID, st.n*p.nslots)
	var vals []term.Term
	if p.nvals > 0 {
		vals = make([]term.Term, st.n*p.nvals)
	}
	for i := 0; i < st.n; i++ {
		b := binding{
			frame: frames[i*p.nslots : (i+1)*p.nslots : (i+1)*p.nslots],
			facts: make([]database.FactID, nb),
		}
		for s := 0; s < p.nslots; s++ {
			b.frame[s] = st.slots[s][i]
		}
		for a := 0; a < nb; a++ {
			b.facts[a] = st.facts[a][i]
		}
		if p.nvals > 0 {
			b.vals = vals[i*p.nvals : (i+1)*p.nvals : (i+1)*p.nvals]
			for v := 0; v < p.nvals; v++ {
				b.vals[v] = st.vals[v][i]
			}
		}
		out = append(out, b)
	}
	return out
}

// finish drives a seeded tuple set through the remaining depths — unfused
// steps at the current depth, then the next extension, with a cancellation
// checkpoint per depth — and returns the leaf columns in canonical order.
func (bx *batchExec) finish(st *batchCols, js *database.ColumnarStats) (*batchCols, error) {
	for d := 0; ; d++ {
		if st.n == 0 {
			return st, nil
		}
		if err := bx.e.checkCtx(); err != nil {
			return nil, err
		}
		var err error
		st, err = bx.runSteps(d, st)
		if err != nil {
			return nil, err
		}
		if st.n == 0 {
			return st, nil
		}
		if d+1 == len(bx.op.atoms) {
			return restoreCanonical(st, bx.op), nil
		}
		st = bx.extend(d+1, st, js)
	}
}

// batchUnit is one pivot's (or pivot chunk's) contribution to a batch join,
// in canonical order: leaf columns from a batch pass, or materialized
// bindings from a frame-fallback pivot (or a wantBindings caller).
type batchUnit struct {
	cols  *batchCols
	binds []binding
}

// pivotNewCount is the semi-naive delta size of one pivot: the number of
// live facts of the pivot atom's predicate at or beyond the boundary. It
// depends only on store state, so sequential and parallel mode make the
// same fallback choice.
func (e *engine) pivotNewCount(op *orderedPlan, boundary database.FactID) int {
	c := e.store.EnsureColumnarRuns(op.atoms[0].Predicate, nil)
	return c.Extent() - int(c.DenseBoundary(boundary))
}

// joinBatchUnits evaluates a full (semi=false) or semi-naive batch join and
// returns its units in canonical concatenation order. wantBindings converts
// every unit to bindings (aggregation and constraint callers); the plain-
// rule emission path takes the columns raw.
func (e *engine) joinBatchUnits(p *plan, semi bool, boundary database.FactID, wantBindings bool) ([]batchUnit, error) {
	e.ensurePlanColumnar(p)
	if e.workers > 1 {
		return e.joinBatchUnitsParallel(p, semi, boundary, wantBindings)
	}
	var units []batchUnit
	var js database.ColumnarStats
	defer func() { e.store.AddJoinStats(js) }()
	npiv := 1
	if semi {
		npiv = len(p.orders)
	}
	for pivot := 0; pivot < npiv; pivot++ {
		if err := e.checkCtx(); err != nil {
			return nil, err
		}
		op := p.orders[pivot]
		pv := -1
		if semi {
			pv = pivot
			switch nc := e.pivotNewCount(op, boundary); {
			case nc == 0:
				continue // pivot demands a new fact; there is none
			case nc < frameFallbackMin:
				js.FrameFallbacks++
				x := e.newExecutor(p, op, pivotFilter(pivot, boundary))
				if err := x.extend(0); err != nil {
					return nil, err
				}
				if len(x.out) > 0 {
					units = append(units, batchUnit{binds: x.out})
				}
				continue
			}
		}
		bx := e.newBatchExec(p, op, pv, boundary)
		st, err := bx.finish(bx.seed(&js), &js)
		if err != nil {
			return nil, err
		}
		if st.n == 0 {
			continue
		}
		if wantBindings {
			units = append(units, batchUnit{binds: appendBindingsCols(p, st, nil)})
		} else {
			units = append(units, batchUnit{cols: st})
		}
	}
	return units, nil
}

// joinBatchUnitsParallel is joinBatchUnits with the post-seed depths of
// every non-fallback pivot fanned out over the worker pool. Fallback pivots
// run sequentially before the freeze (the frame executor is cheap on tiny
// deltas and must not race the freeze discipline); merging chunk units in
// (pivot, chunk) order reproduces the sequential concatenation exactly.
func (e *engine) joinBatchUnitsParallel(p *plan, semi bool, boundary database.FactID, wantBindings bool) ([]batchUnit, error) {
	type entry struct {
		binds  []binding
		lo, hi int // chunk-task range; lo == hi marks a fallback entry
	}
	var entries []entry
	var tasks []*batchTask
	var js database.ColumnarStats
	npiv := 1
	if semi {
		npiv = len(p.orders)
	}
	for pivot := 0; pivot < npiv; pivot++ {
		if err := e.checkCtx(); err != nil {
			e.store.AddJoinStats(js)
			return nil, err
		}
		op := p.orders[pivot]
		pv := -1
		if semi {
			pv = pivot
			switch nc := e.pivotNewCount(op, boundary); {
			case nc == 0:
				continue
			case nc < frameFallbackMin:
				js.FrameFallbacks++
				x := e.newExecutor(p, op, pivotFilter(pivot, boundary))
				if err := x.extend(0); err != nil {
					e.store.AddJoinStats(js)
					return nil, err
				}
				if len(x.out) > 0 {
					entries = append(entries, entry{binds: x.out})
				}
				continue
			}
		}
		bx := e.newBatchExec(p, op, pv, boundary)
		lo := len(tasks)
		tasks = appendBatchChunked(tasks, bx, bx.seed(&js), e.workers)
		if len(tasks) > lo {
			entries = append(entries, entry{lo: lo, hi: len(tasks)})
		}
	}
	e.store.AddJoinStats(js)
	if err := e.runBatchTasks(tasks, wantBindings); err != nil {
		return nil, err
	}
	var units []batchUnit
	for _, en := range entries {
		if en.lo == en.hi {
			units = append(units, batchUnit{binds: en.binds})
			continue
		}
		for _, t := range tasks[en.lo:en.hi] {
			switch {
			case wantBindings && len(t.binds) > 0:
				units = append(units, batchUnit{binds: t.binds})
			case !wantBindings && t.cols != nil && t.cols.n > 0:
				units = append(units, batchUnit{cols: t.cols})
			}
		}
	}
	return units, nil
}

// joinBatchBindings flattens a unit join into the classic []binding shape.
func (e *engine) joinBatchBindings(p *plan, semi bool, boundary database.FactID) ([]binding, error) {
	units, err := e.joinBatchUnits(p, semi, boundary, true)
	if err != nil {
		return nil, err
	}
	var all []binding
	for _, u := range units {
		all = append(all, u.binds...)
	}
	if len(all) == 0 {
		return nil, nil
	}
	return all, nil
}

// joinBatchBody is the batch-engine full body join (sequential and parallel
// dispatch internal).
func (e *engine) joinBatchBody(p *plan) ([]binding, error) {
	return e.joinBatchBindings(p, false, 0)
}

// joinBatchSemiNaive is the batch-engine semi-naive join: one batch pass per
// pivot decomposition, outputs concatenated in pivot order exactly like the
// frame and legacy engines.
func (e *engine) joinBatchSemiNaive(p *plan, boundary database.FactID) ([]binding, error) {
	return e.joinBatchBindings(p, true, boundary)
}

// batchTask is one contiguous chunk of a pivot's seed tuples, finished
// independently on the worker pool and merged in task order. js accumulates
// the chunk's join-path counters locally during the frozen phase; they are
// flushed to the store after Thaw.
type batchTask struct {
	bx    *batchExec
	st    *batchCols
	cols  *batchCols
	binds []binding
	js    database.ColumnarStats
}

// sliceCols returns the contiguous sub-range [lo, hi) of a tuple set; the
// sub-columns alias the input, which chunks only read.
func sliceCols(st *batchCols, lo, hi int) *batchCols {
	out := &batchCols{
		n:         hi - lo,
		slots:     make([][]term.ValueID, len(st.slots)),
		vals:      make([][]term.Term, len(st.vals)),
		facts:     make([][]database.FactID, len(st.facts)),
		perturbed: st.perturbed,
		sortedBy:  st.sortedBy,
	}
	for s, col := range st.slots {
		if col != nil {
			out.slots[s] = col[lo:hi]
		}
	}
	for v, col := range st.vals {
		if col != nil {
			out.vals[v] = col[lo:hi]
		}
	}
	for a, col := range st.facts {
		if col != nil {
			out.facts[a] = col[lo:hi]
		}
	}
	return out
}

// appendBatchChunked splits a seeded tuple set into up to
// workers*chunksPerWorker contiguous chunks, preserving tuple order across
// the chunk sequence (the same chunk arithmetic as appendChunked).
func appendBatchChunked(tasks []*batchTask, bx *batchExec, st *batchCols, workers int) []*batchTask {
	if st.n == 0 {
		return tasks
	}
	chunks := workers * chunksPerWorker
	if chunks > st.n {
		chunks = st.n
	}
	for c := 0; c < chunks; c++ {
		lo := c * st.n / chunks
		hi := (c + 1) * st.n / chunks
		tasks = append(tasks, &batchTask{bx: bx, st: sliceCols(st, lo, hi)})
	}
	return tasks
}

// runBatchTasks finishes every chunk on the worker pool under the same
// Freeze/Thaw discipline as runPlanTasks. Chunks only read shared state
// (the store, the columnar indexes — refreshed before the freeze — the
// superseded set, and the shared batchExec); every column a chunk produces
// is freshly allocated, and per-chunk counters are flushed after Thaw.
func (e *engine) runBatchTasks(tasks []*batchTask, wantBindings bool) error {
	if len(tasks) == 0 {
		return nil
	}
	e.store.Freeze()
	err := runParallel(e.workers, len(tasks), func(i int) error {
		t := tasks[i]
		st, err := t.bx.finish(t.st, &t.js)
		if err != nil {
			return err
		}
		if wantBindings {
			t.binds = appendBindingsCols(t.bx.p, st, nil)
		} else {
			t.cols = st
		}
		return nil
	})
	e.store.Thaw()
	for _, t := range tasks {
		e.store.AddJoinStats(t.js)
	}
	return err
}
